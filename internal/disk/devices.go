package disk

import "pcapsim/internal/trace"

// Representative device parameter sets beyond the paper's Fujitsu drive.
// The paper notes the technique "can be applied to other I/O devices such
// as wireless network interfaces"; these profiles let the experiments
// probe how the breakeven time — the knob that changes across device
// classes — moves the predictor trade-offs. Values are representative of
// the device classes of the period (laptop disk, desktop disk, WLAN NIC),
// with breakeven times derived from the other constants via
// ComputeBreakeven.

// Laptop25Inch returns a representative 2.5-inch mobile drive with a
// lighter spin-up than the Fujitsu: breakeven ≈ 3.6 s.
func Laptop25Inch() Params {
	p := Params{
		Name:           "generic 2.5\" mobile disk",
		BusyPower:      2.0,
		IdlePower:      0.85,
		StandbyPower:   0.15,
		SpinUpEnergy:   2.9,
		ShutdownEnergy: 0.25,
		SpinUpTime:     trace.FromSeconds(1.2),
		ShutdownTime:   trace.FromSeconds(0.5),
	}
	p.Breakeven = p.ComputeBreakeven()
	return p
}

// Desktop35Inch returns a representative 3.5-inch desktop drive: heavy
// platters make shutdowns expensive, breakeven ≈ 13 s.
func Desktop35Inch() Params {
	p := Params{
		Name:           "generic 3.5\" desktop disk",
		BusyPower:      8.0,
		IdlePower:      5.0,
		StandbyPower:   1.0,
		SpinUpEnergy:   55.0,
		ShutdownEnergy: 4.0,
		SpinUpTime:     trace.FromSeconds(3.5),
		ShutdownTime:   trace.FromSeconds(1.0),
	}
	p.Breakeven = p.ComputeBreakeven()
	return p
}

// WirelessNIC returns a representative 802.11 interface: "shutdown" is
// entering power-save polling mode, so the transition is cheap and fast
// and the breakeven drops under a second.
func WirelessNIC() Params {
	p := Params{
		Name:           "generic 802.11 interface",
		BusyPower:      1.4,
		IdlePower:      0.9,
		StandbyPower:   0.05,
		SpinUpEnergy:   0.4,
		ShutdownEnergy: 0.1,
		SpinUpTime:     trace.FromSeconds(0.1),
		ShutdownTime:   trace.FromSeconds(0.05),
	}
	p.Breakeven = p.ComputeBreakeven()
	return p
}

// Devices returns the evaluated device profiles, the paper's drive first.
func Devices() []Params {
	return []Params{FujitsuMHF2043AT(), Laptop25Inch(), Desktop35Inch(), WirelessNIC()}
}

package pcapsim

import (
	"io/fs"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"testing"

	"pcapsim/internal/lint"
)

// BenchmarkPcaplintFull times a whole-module pcaplint run — parse,
// DAG-scheduled type-check, every registered analyzer — and reports
// throughput over the module's non-test Go files. The metric rides the
// BENCH_PR*.json artifact for trend visibility but is deliberately NOT
// in the benchjson gate list: a run is one loader-bound iteration whose
// time is dominated by re-type-checking the stdlib from source, far too
// noisy for a 10% regression threshold. ci.sh runs it in its own
// process, after the hot-path sweep — the one-shot ~700 MB loader heap
// measurably skews allocation-sensitive benches sharing the process.
func BenchmarkPcaplintFull(b *testing.B) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	files := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			files++
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	// Match the shipped CLI: cmd/pcaplint trades heap headroom for wall
	// time on its one-shot run, and this benchmark measures the tool as
	// invoked by ci.sh. Restored afterwards so co-resident benchmarks
	// keep the default GC pacing.
	if os.Getenv("GOGC") == "" {
		defer debug.SetGCPercent(debug.SetGCPercent(400))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings, err := lint.RunModule(root, lint.All(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("tree not pcaplint-clean: %s", findings[0])
		}
	}
	b.ReportMetric(float64(files*b.N)/b.Elapsed().Seconds(), "files/s")
}

// Package persist stores trained predictor state across application
// executions, implementing the paper's prediction-table reuse (Section
// 4.2): when the application exits, its trained prediction table is saved
// in the application initialization file; when the application starts
// again, the table is loaded back, eliminating most retraining.
//
// The format is versioned JSON. PCAP tables and Learning Tree state share
// one envelope so an application's initialization file can carry either.
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pcapsim/internal/core"
	"pcapsim/internal/ltree"
	"pcapsim/internal/trace"
)

// formatVersion is the on-disk schema version.
const formatVersion = 1

// ErrMismatch is returned when loading state saved for a different
// predictor configuration.
var ErrMismatch = errors.New("persist: saved state does not match predictor configuration")

// tableEntry is one persisted PCAP prediction-table key.
type tableEntry struct {
	Sig  uint32 `json:"sig"`
	Hist uint16 `json:"hist,omitempty"`
	FD   int32  `json:"fd,omitempty"`
}

// envelope is the on-disk document.
type envelope struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	App     string `json:"app"`

	// PCAP tables.
	Variant    string       `json:"variant,omitempty"`
	HistoryLen int          `json:"historyLen,omitempty"`
	Entries    []tableEntry `json:"entries,omitempty"`

	// Learning Tree state.
	HistoryDepth int               `json:"historyDepth,omitempty"`
	Nodes        []ltree.NodeState `json:"nodes,omitempty"`
}

// SaveTable writes the PCAP prediction table of p for application app.
func SaveTable(w io.Writer, app string, p *core.PCAP) error {
	keys := p.Table().Keys()
	env := envelope{
		Format:     "pcap-table",
		Version:    formatVersion,
		App:        app,
		Variant:    p.Config().Variant.String(),
		HistoryLen: p.Config().HistoryLen,
		Entries:    make([]tableEntry, len(keys)),
	}
	for i, k := range keys {
		env.Entries[i] = tableEntry{Sig: uint32(k.Sig), Hist: k.Hist, FD: int32(k.FD)}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// LoadTable reads a PCAP prediction table previously written by SaveTable
// into p. The saved variant and history length must match p's
// configuration, and a non-empty app must match the saved one.
func LoadTable(r io.Reader, app string, p *core.PCAP) error {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("persist: decoding table: %w", err)
	}
	if env.Format != "pcap-table" {
		return fmt.Errorf("%w: format %q", ErrMismatch, env.Format)
	}
	if env.Version != formatVersion {
		return fmt.Errorf("%w: version %d", ErrMismatch, env.Version)
	}
	if app != "" && env.App != app {
		return fmt.Errorf("%w: saved for app %q, loading for %q", ErrMismatch, env.App, app)
	}
	cfg := p.Config()
	if env.Variant != cfg.Variant.String() {
		return fmt.Errorf("%w: saved variant %q, predictor is %q", ErrMismatch, env.Variant, cfg.Variant)
	}
	if cfg.Variant.UsesHistory() && env.HistoryLen != cfg.HistoryLen {
		return fmt.Errorf("%w: saved history length %d, predictor uses %d", ErrMismatch, env.HistoryLen, cfg.HistoryLen)
	}
	keys := make([]core.Key, len(env.Entries))
	for i, e := range env.Entries {
		keys[i] = core.Key{
			Sig:     core.Signature(e.Sig),
			Hist:    e.Hist,
			HasHist: cfg.Variant.UsesHistory(),
			FD:      trace.FD(e.FD),
			HasFD:   cfg.Variant.UsesFD(),
		}
	}
	p.Table().LoadKeys(keys)
	return nil
}

// SaveTree writes the Learning Tree state of l for application app.
func SaveTree(w io.Writer, app string, l *ltree.LT) error {
	env := envelope{
		Format:       "ltree",
		Version:      formatVersion,
		App:          app,
		HistoryDepth: l.Config().HistoryLen,
		Nodes:        l.Tree().Snapshot(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// LoadTree reads Learning Tree state previously written by SaveTree into
// l. A non-empty app must match the saved one.
func LoadTree(r io.Reader, app string, l *ltree.LT) error {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("persist: decoding tree: %w", err)
	}
	if env.Format != "ltree" {
		return fmt.Errorf("%w: format %q", ErrMismatch, env.Format)
	}
	if env.Version != formatVersion {
		return fmt.Errorf("%w: version %d", ErrMismatch, env.Version)
	}
	if app != "" && env.App != app {
		return fmt.Errorf("%w: saved for app %q, loading for %q", ErrMismatch, env.App, app)
	}
	if env.HistoryDepth != l.Config().HistoryLen {
		return fmt.Errorf("%w: saved history depth %d, predictor uses %d", ErrMismatch, env.HistoryDepth, l.Config().HistoryLen)
	}
	l.Tree().Restore(env.Nodes)
	return nil
}

// TablePath returns the conventional initialization-file path for an
// application's table under dir: <dir>/<app>.<variant>.json.
func TablePath(dir, app string, v core.Variant) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%s.json", app, v))
}

// SaveTableFile writes p's table to the conventional path under dir,
// creating dir if needed.
func SaveTableFile(dir, app string, p *core.PCAP) (path string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path = TablePath(dir, app, p.Config().Variant)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer func() {
		// A failed close after a clean write still means an incomplete
		// initialization file; surface it.
		if cerr := f.Close(); cerr != nil && err == nil {
			path, err = "", cerr
		}
	}()
	if err := SaveTable(f, app, p); err != nil {
		return "", err
	}
	return path, nil
}

// LoadTableFile loads a table from the conventional path under dir. A
// missing file is not an error: it reports found=false, modelling the
// first-ever run of an application.
func LoadTableFile(dir, app string, p *core.PCAP) (found bool, err error) {
	path := TablePath(dir, app, p.Config().Variant)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close() //pcaplint:ignore errcheck-lite file opened read-only; a close failure cannot lose data
	if err := LoadTable(f, app, p); err != nil {
		return false, err
	}
	return true, nil
}

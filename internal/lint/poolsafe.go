package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafe statically enforces the DESIGN.md §10 sync.Pool ownership
// rules at every sync.Pool.Get call site: the gotten value must stay
// function-local — never stored into a struct field, package variable or
// container, never returned, never sent on a channel — and must reach a
// matching Put on every non-panic path before it goes out of scope.
// Violating either rule lets two owners see one pooled object, which is
// exactly the aliasing the arena/pool rewrite's determinism argument
// forbids.
//
// v2 (this implementation) proves the Put obligation with a forward
// may-dataflow over the function's control-flow graph (cfg.go): the
// tracked state is "a path exists on which Get has executed but the
// value has not yet been Put or transferred". The Get binding generates
// the obligation, Put(x)/Put(&x), a call to an //pcaplint:owner-transfer
// function with x as an argument, or a defer doing either kills it (a
// defer is an exit-edge action: it covers exactly the exits reachable
// from its registration point), and any return-sink edge reached while
// the obligation may be outstanding is a leak — reported once per Get
// site at the first (earliest) leaking return, or at the Get itself
// when the leak is falling off the end of the body. Panic exits are
// exempt. Unlike PR 5's structural scan (poolsafe_v1.go), the dataflow
// follows goto, labeled break/continue, switch and select paths, so an
// early error return reached through any of them is covered.
//
// Remaining approximations, all documented in DESIGN.md §17: aliasing
// through a second variable is invisible (the analysis tracks the bound
// ident's types.Object only); rebinding the variable while obligated is
// treated as the same obligation continuing; a value bound by rebinding
// a variable that is declared outside the enclosing function (a
// captured closure variable) is only escape-checked, since its Put may
// legally happen in the enclosing function after the closure returns.
//
// Two escape hatches, both spelled in the source where reviewers see
// them:
//
//   - a function whose doc comment carries //pcaplint:owner-transfer is a
//     designated transfer point. Inside it, Get results may be returned
//     (the caller takes ownership — the repo's get/put accessor pairs);
//     passing a pooled value TO such a function transfers ownership away
//     and satisfies the Put obligation.
//   - a reasoned //pcaplint:ignore poolsafe directive, for cases the
//     analysis cannot follow.
//
// It runs on every package: pooling outside the hot path still needs
// correct ownership.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "sync.Pool.Get value escapes its function or misses Put on a non-panic path (CFG dataflow)",
	Run:  runPoolSafe,
}

func runPoolSafe(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A designated transfer point is audited by hand; its Get may
			// flow to the caller.
			if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil && pass.OwnerTransfer(obj) {
				continue
			}
			checkPoolGets(pass, fd)
		}
	}
}

// checkPoolGets finds every sync.Pool.Get call under fd and vets its
// binding, escapes, and Put coverage.
func checkPoolGets(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok && isPoolMethod(pass.Pkg.Info, call, "Get") {
			checkGetSite(pass, call, append([]ast.Node(nil), stack...))
		}
		return true
	})
}

// isPoolMethod reports whether call invokes the named method of
// sync.Pool.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// checkGetSite classifies how one Get call's result is used. stack runs
// from the enclosing FuncDecl down to the call itself.
func checkGetSite(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	// Walk up through the type assertion / parens wrapping the call.
	i := len(stack) - 2
	for i >= 0 {
		switch stack[i].(type) {
		case *ast.TypeAssertExpr, *ast.ParenExpr:
			i--
			continue
		}
		break
	}
	if i < 0 {
		return
	}
	switch parent := stack[i].(type) {
	case *ast.AssignStmt:
		checkBoundGet(pass, call, parent, stack[:i])
	case *ast.ReturnStmt:
		pass.Reportf(call.Pos(), "sync.Pool value is returned directly; only an //pcaplint:owner-transfer function may hand a pooled value to its caller")
	case *ast.CallExpr:
		if fn := calleeFunc(pass.Pkg.Info, parent); fn != nil && pass.OwnerTransfer(fn) {
			return
		}
		pass.Reportf(call.Pos(), "sync.Pool value is passed straight to a call; bind it to a variable so its Put is checkable")
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "sync.Pool value is discarded; bind it and Put it back")
	default:
		pass.Reportf(call.Pos(), "sync.Pool value is used in an unanalyzed position; bind it with x := pool.Get().(*T)")
	}
}

// checkBoundGet handles `x := pool.Get().(*T)` (plain or comma-ok,
// including as an if/switch init) — the supported binding shapes. It
// runs the escape scan and then the must-reach-Put dataflow over the
// enclosing function's CFG.
func checkBoundGet(pass *Pass, call *ast.CallExpr, assign *ast.AssignStmt, outer []ast.Node) {
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		pass.Reportf(call.Pos(), "sync.Pool value is assigned to a non-variable; bind it with x := pool.Get().(*T)")
		return
	}
	if lhs.Name == "_" {
		pass.Reportf(call.Pos(), "sync.Pool value is discarded; bind it and Put it back")
		return
	}
	info := pass.Pkg.Info
	obj := info.Defs[lhs]
	if obj == nil {
		obj = info.Uses[lhs]
	}
	if obj == nil {
		return
	}

	// The innermost enclosing function owns the CFG the value flows
	// through; a Get inside a closure is checked against the closure's
	// own body.
	body := enclosingFuncBody(outer)
	if body == nil {
		return
	}

	// The comma-ok idiom `if x, ok := pool.Get().(*T); ok { ... }`
	// only yields a live value on the ok branch: the obligation is
	// generated at the then-branch entry, not at the assignment.
	var commaOkIf *ast.IfStmt
	if len(assign.Lhs) == 2 && len(outer) > 0 {
		if ifStmt, ok := outer[len(outer)-1].(*ast.IfStmt); ok && ifStmt.Init == assign {
			commaOkIf = ifStmt
		}
	}

	c := &poolCheck{pass: pass, obj: obj, get: call}
	// Escape scan: AST-structural, over every statement the value can
	// live through (anything ending at or after the binding).
	for _, s := range statementsFrom(body, assign) {
		c.escapes(s)
	}
	if c.done {
		return
	}

	// Rebinding a variable that is declared OUTSIDE this function (a
	// captured closure variable): the enclosing function may Put it
	// after this one returns, so only the escape scan applies.
	if assign.Tok != token.DEFINE && !(body.Pos() <= obj.Pos() && obj.Pos() <= body.End()) {
		return
	}

	c.flow(pass.CFG(body), assign, commaOkIf)
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

// statementsFrom returns the top-level statements of body that end at
// or after the binding — the statements the bound value can live
// through.
func statementsFrom(body *ast.BlockStmt, assign *ast.AssignStmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range body.List {
		if s.End() >= assign.Pos() {
			out = append(out, s)
		}
	}
	return out
}

// poolCheck tracks one bound pool value.
type poolCheck struct {
	pass *Pass
	obj  types.Object
	get  *ast.CallExpr
	done bool // one finding per Get site
}

func (c *poolCheck) violate(pos token.Pos, format string, args ...any) {
	if c.done {
		return
	}
	c.done = true
	c.pass.Reportf(pos, format, args...)
}

// flow runs the must-reach-Put dataflow: a may-analysis of the
// outstanding obligation (state 1 = "some path got the value and has
// not Put it"), joined with OR at merges.
func (c *poolCheck) flow(g *FuncCFG, assign *ast.AssignStmt, commaOkIf *ast.IfStmt) {
	// Locate the generation point.
	var genNode ast.Node = assign
	var genBlock *CFGBlock
	if commaOkIf != nil {
		// The block holding the if's init assignment branches to the
		// then body first (cfg.go's documented edge order).
		for _, blk := range g.Blocks {
			for _, n := range blk.Nodes {
				if n == ast.Node(assign) {
					if len(blk.Succs) > 0 {
						genBlock = blk.Succs[0]
					}
				}
			}
		}
		if genBlock == nil {
			return
		}
		genNode = nil
	}

	transfer := func(blk *CFGBlock, in uint8) uint8 {
		s := in
		if blk == genBlock {
			s = 1
		}
		for _, n := range blk.Nodes {
			if n == genNode {
				s = 1
				continue
			}
			if s == 1 && c.consumesNode(n) {
				s = 0
			}
		}
		return s
	}
	in, reachable := g.Forward(0,
		func(a, b uint8) uint8 { return a | b },
		transfer)

	// Report the earliest return reached while the obligation may be
	// outstanding; falling off the end of the body counts too, blamed
	// on the Get itself. Panic-sink edges are exempt.
	var (
		firstReturn token.Pos
		fallsOff    bool
	)
	for _, blk := range g.Blocks {
		if !reachable[blk.Index] || !hasEdgeTo(blk, g.Return) {
			continue
		}
		s := in[blk.Index]
		if blk == genBlock {
			s = 1
		}
		endsInReturn := false
		for _, n := range blk.Nodes {
			if n == genNode {
				s = 1
				continue
			}
			if s == 1 && c.consumesNode(n) {
				s = 0
			}
			if ret, ok := n.(*ast.ReturnStmt); ok && s == 1 {
				if firstReturn == token.NoPos || ret.Pos() < firstReturn {
					firstReturn = ret.Pos()
				}
			}
			if _, ok := n.(*ast.ReturnStmt); ok {
				endsInReturn = true
			}
		}
		if !endsInReturn && s == 1 {
			fallsOff = true
		}
	}
	switch {
	case firstReturn != token.NoPos:
		c.violate(firstReturn, "sync.Pool value does not reach Put before this return; Put it on every non-panic path or hand it to an //pcaplint:owner-transfer function")
	case fallsOff:
		c.violate(c.get.Pos(), "sync.Pool value goes out of scope without Put; Put it on every non-panic path or hand it to an //pcaplint:owner-transfer function")
	}
}

func hasEdgeTo(from, to *CFGBlock) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// escapes reports stores that would give the pooled value a second
// owner.
func (c *poolCheck) escapes(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		if c.done {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			// Closures are outside the model; defer func(){Put(x)}() is
			// still recognized by the dataflow's subtree search.
			return false
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !c.isObj(rhs) || i >= len(st.Lhs) {
					continue
				}
				switch lhs := ast.Unparen(st.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					c.violate(st.Pos(), "sync.Pool value is stored into field %s; pooled values must stay function-local (DESIGN.md §10)", types.ExprString(lhs))
				case *ast.IndexExpr:
					c.violate(st.Pos(), "sync.Pool value is stored into an element of %s; pooled values must stay function-local (DESIGN.md §10)", types.ExprString(lhs.X))
				case *ast.Ident:
					if obj := c.pass.Pkg.Info.Uses[lhs]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
						c.violate(st.Pos(), "sync.Pool value is stored into package variable %s; pooled values must stay function-local (DESIGN.md §10)", lhs.Name)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if c.mentionsObj(res) {
					c.violate(st.Pos(), "sync.Pool value is returned; only an //pcaplint:owner-transfer function may hand a pooled value to its caller")
					return false
				}
			}
		case *ast.SendStmt:
			if c.mentionsObj(st.Value) {
				c.violate(st.Pos(), "sync.Pool value is sent on a channel; pooled values must stay function-local (DESIGN.md §10)")
			}
		case *ast.GoStmt:
			if c.mentionsObj(st.Call) {
				c.violate(st.Pos(), "sync.Pool value is captured by a go statement; the goroutine may outlive the Put")
			}
		}
		return !c.done
	})
}

// consumesNode reports whether the node's subtree puts the value back
// (pool.Put(x), pool.Put(&x), defer pool.Put(x), including inside a
// deferred closure) or hands it to an //pcaplint:owner-transfer
// function.
func (c *poolCheck) consumesNode(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		transfer := false
		if isPoolMethod(c.pass.Pkg.Info, call, "Put") {
			transfer = true
		} else if fn := calleeFunc(c.pass.Pkg.Info, call); fn != nil && c.pass.OwnerTransfer(fn) {
			transfer = true
		}
		if !transfer {
			return true
		}
		for _, arg := range call.Args {
			a := ast.Unparen(arg)
			if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
				a = ast.Unparen(u.X)
			}
			if c.isObj(a) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isObj reports whether e is exactly the tracked variable.
func (c *poolCheck) isObj(e ast.Expr) bool {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	return ok && c.pass.Pkg.Info.Uses[ident] == c.obj
}

// mentionsObj reports whether the tracked variable appears anywhere in
// e.
func (c *poolCheck) mentionsObj(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && c.pass.Pkg.Info.Uses[ident] == c.obj {
			found = true
		}
		return !found
	})
	return found
}

// isTerminalCall recognizes calls that end the path without returning:
// panic, os.Exit, runtime.Goexit, and Fatal-family helpers.
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin && ident.Name == "panic" {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" && name == "Exit" {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "runtime" && name == "Goexit" {
		return true
	}
	return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
}

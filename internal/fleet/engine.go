package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pcapsim/internal/disk"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
)

// The shared-clock engine.
//
// Machines are sharded across workers in contiguous ID ranges. Each worker
// multiplexes its shard over a binary min-heap of global next-event times:
// the shard's virtual clock is min(next arrival, heap minimum), machines
// materialize state lazily when the clock reaches their arrival, advance
// in batched steps while they hold the earliest scheduled event, and
// retire — releasing their pooled runState and event buffer — the moment
// their session drains. Live memory therefore tracks the number of
// machines whose sessions overlap, not the fleet size or the event count.
//
// Machines never interact, so the interleaving the heap picks cannot
// change any machine's result; it exists to bound memory. Determinism
// across worker counts comes from the fold: per-machine results land in a
// fleet-indexed slice and are committed to the aggregate strictly in
// machine-ID order, fixing every floating-point accumulation order.

// live is one active machine's engine-side state.
type live struct {
	m *sim.Machine
	// arrival offsets the machine's session-relative event times onto the
	// fleet's shared clock.
	arrival trace.Time
}

// heapItem schedules one machine's next event on the shared clock.
type heapItem struct {
	t  trace.Time // global time: arrival + session-relative next event
	id int        // machine ID, the deterministic tie-break
	lm *live
}

// eventHeap is a hand-rolled binary min-heap of scheduled machine events,
// ordered by (time, machine ID).
type eventHeap []heapItem

func (h eventHeap) before(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].id < h[j].id
}

func (h *eventHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).before(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() heapItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = heapItem{} // release the *live reference
	*h = old[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && old.before(left, least) {
			least = left
		}
		if right < n && old.before(right, least) {
			least = right
		}
		if least == i {
			break
		}
		old[i], old[least] = old[least], old[i]
		i = least
	}
	return top
}

// Result is a fleet run's aggregate accounting. Every field is identical
// — byte-for-byte under Render — for a given Config regardless of worker
// count, because the per-machine results are folded in machine-ID order.
type Result struct {
	// Policy is the evaluated policy's name.
	Policy string
	// Machines is the fleet size.
	Machines int
	// Executions, TotalIOs and DiskAccesses total the fleet's sessions.
	Executions   int64
	TotalIOs     int64
	DiskAccesses int64
	// Local and Global accumulate the per-machine idle-period outcome
	// counts (the paper's Figures 6 and 7, fleet-wide).
	Local  sim.Counts
	Global sim.Counts
	// Energy is the fleet's total disk energy.
	Energy disk.EnergyBreakdown
	// Cycles is the number of shutdowns performed fleet-wide.
	Cycles int64
	// Wakeups and WaitTime total the user-visible spin-up latency.
	Wakeups  int64
	WaitTime trace.Time
	// MachineTime is the summed per-machine session length; SimTime is
	// the fleet horizon (the latest session end on the shared clock).
	MachineTime trace.Time
	SimTime     trace.Time
	// PeakConcurrent is the maximum number of simultaneously active
	// sessions, from the arrival/retirement interval sweep. It is a
	// property of the schedule, not of the worker count.
	PeakConcurrent int
	// WaitHist buckets machines by their session's total spin-up wait —
	// the fleet's latency-penalty distribution. Bucket i counts machines
	// with total wait in WaitHistLabels[i].
	WaitHist [7]int64
	// DeviceUse breaks the fleet down by device profile, in catalog
	// order.
	DeviceUse []DeviceUsage
}

// DeviceUsage is one device profile's share of a fleet run.
type DeviceUsage struct {
	Device   string
	Machines int
	EnergyJ  float64
}

// WaitHistLabels names Result.WaitHist's buckets.
var WaitHistLabels = [7]string{"0", "<=2s", "<=5s", "<=15s", "<=60s", "<=300s", ">300s"}

// waitBucket maps a machine's total session wait to its histogram bucket.
func waitBucket(w trace.Time) int {
	switch {
	case w == 0:
		return 0
	case w <= 2*trace.Second:
		return 1
	case w <= 5*trace.Second:
		return 2
	case w <= 15*trace.Second:
		return 3
	case w <= 60*trace.Second:
		return 4
	case w <= 300*trace.Second:
		return 5
	default:
		return 6
	}
}

// Run simulates the fleet and returns its aggregate result.
func (f *Fleet) Run() (*Result, error) {
	n := f.cfg.Machines
	workers := f.cfg.Workers
	if workers > n {
		workers = n
	}
	results := make([]sim.AppResult, n)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		ids := make([]int, hi-lo)
		for i := range ids {
			ids[i] = lo + i
		}
		wg.Add(1)
		go func(w int, ids []int) {
			defer wg.Done()
			errs[w] = f.runShard(ids, results)
		}(w, ids)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f.fold(results), nil
}

// runShard advances the given machines over one shared-clock heap,
// writing each machine's result into results[id]. The ids may arrive in
// any order — the schedule is rebuilt from arrival times, so shard
// composition, not ID insertion order, determines the advancement
// sequence, and machine independence makes even that sequence
// result-neutral.
func (f *Fleet) runShard(ids []int, results []sim.AppResult) error {
	type arrival struct {
		at  trace.Time
		id  int
		dev int
	}
	arr := make([]arrival, 0, len(ids))
	for _, id := range ids {
		s := f.Spec(id)
		arr = append(arr, arrival{at: s.Arrival, id: id, dev: s.Device})
	}
	sort.Slice(arr, func(i, j int) bool {
		if arr[i].at != arr[j].at {
			return arr[i].at < arr[j].at
		}
		return arr[i].id < arr[j].id
	})

	retire := func(id int, lm *live) error {
		res, err := lm.m.Finish()
		if err != nil {
			return fmt.Errorf("fleet: machine %d: %w", id, err)
		}
		results[id] = *res
		return nil
	}

	var h eventHeap
	ai := 0
	for ai < len(arr) || len(h) > 0 {
		if f.cfg.Interrupt != nil {
			if err := f.cfg.Interrupt(); err != nil {
				return fmt.Errorf("fleet: interrupted: %w", err)
			}
		}
		// Admit every machine whose arrival does not come after the next
		// scheduled event: the shard clock is min(next arrival, heap min),
		// and state materializes only when the clock reaches the arrival.
		for ai < len(arr) && (len(h) == 0 || arr[ai].at <= h[0].t) {
			a := arr[ai]
			ai++
			m, err := f.runners[a.dev].NewMachine(f.newMixSource(a.id), f.policies[a.dev])
			if err != nil {
				return fmt.Errorf("fleet: machine %d: %w", a.id, err)
			}
			lm := &live{m: m, arrival: a.at}
			t, ok := m.NextTime()
			if !ok {
				if err := retire(a.id, lm); err != nil {
					return err
				}
				continue
			}
			h.push(heapItem{t: a.at + t, id: a.id, lm: lm})
		}
		if len(h) == 0 {
			continue
		}
		it := h.pop()
		// Batched stepping: keep advancing this machine while it holds the
		// earliest scheduled work, so runs of consecutive events on one
		// machine cost no heap traffic. The batch is bounded only by
		// limit, which is infClock for the last live machine, so the
		// Interrupt hook is polled every interruptStride steps within a
		// batch too — a tail machine must not outrun cancellation by
		// more than a bounded slice of work.
		limit := infClock
		if len(h) > 0 {
			limit = h[0].t
		}
		if ai < len(arr) && arr[ai].at < limit {
			limit = arr[ai].at
		}
		for steps := 1; ; steps++ {
			if steps%interruptStride == 0 && f.cfg.Interrupt != nil {
				if err := f.cfg.Interrupt(); err != nil {
					return fmt.Errorf("fleet: interrupted: %w", err)
				}
			}
			it.lm.m.Step()
			t, ok := it.lm.m.NextTime()
			if !ok {
				if err := retire(it.id, it.lm); err != nil {
					return err
				}
				break
			}
			if gt := it.lm.arrival + t; gt > limit {
				h.push(heapItem{t: gt, id: it.id, lm: it.lm})
				break
			}
		}
	}
	return nil
}

// infClock is a sentinel beyond any event time.
const infClock = trace.Time(1<<63 - 1)

// interruptStride is how many steps a batch may advance one machine
// between Interrupt polls. Large enough that the poll (an atomic load
// for ctx.Err) vanishes against the step work, small enough that
// cancellation latency stays in the microsecond range.
const interruptStride = 4096

// fold commits the per-machine results to the aggregate strictly in
// machine-ID order — the single place the fleet's floating-point
// accumulation order is defined — and sweeps the arrival/retirement
// intervals for the concurrency peak.
func (f *Fleet) fold(results []sim.AppResult) *Result {
	out := &Result{
		Policy:    f.policyName,
		Machines:  len(results),
		DeviceUse: make([]DeviceUsage, len(f.devices)),
	}
	for i := range out.DeviceUse {
		out.DeviceUse[i].Device = f.devices[i].Name
	}
	type edge struct {
		at    trace.Time
		delta int
	}
	edges := make([]edge, 0, 2*len(results))
	for id := range results {
		r := &results[id]
		spec := f.Spec(id)
		out.Executions += int64(r.Executions)
		out.TotalIOs += int64(r.TotalIOs)
		out.DiskAccesses += int64(r.DiskAccesses)
		out.Local.Add(r.Local)
		out.Global.Add(r.Global)
		out.Energy.Add(r.Energy)
		out.Cycles += int64(r.Cycles)
		out.Wakeups += int64(r.Wakeups)
		out.WaitTime += r.WaitTime
		out.MachineTime += r.SimTime
		end := spec.Arrival + r.SimTime
		if end > out.SimTime {
			out.SimTime = end
		}
		out.WaitHist[waitBucket(r.WaitTime)]++
		du := &out.DeviceUse[spec.Device]
		du.Machines++
		du.EnergyJ += r.Energy.Total()
		edges = append(edges, edge{at: spec.Arrival, delta: 1}, edge{at: end, delta: -1})
		if f.cfg.Observe != nil {
			f.cfg.Observe(id, r)
		}
	}
	// Arrivals sort before retirements at the same instant, so a session
	// ending exactly as another starts counts both as concurrent.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta > edges[j].delta
	})
	cur := 0
	for _, e := range edges {
		cur += e.delta
		if cur > out.PeakConcurrent {
			out.PeakConcurrent = cur
		}
	}
	return out
}

// Render formats the aggregate report. The output is byte-identical for a
// given Config at any worker count.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d machines under %s\n", r.Machines, r.Policy)
	fmt.Fprintf(&b, "  sessions:  %d executions, %.1f machine-hours, horizon %.2f h, peak concurrency %d\n",
		r.Executions, r.MachineTime.Seconds()/3600, r.SimTime.Seconds()/3600, r.PeakConcurrent)
	fmt.Fprintf(&b, "  I/O:       %d events, %d disk accesses after cache\n", r.TotalIOs, r.DiskAccesses)
	fmt.Fprintf(&b, "  energy:    %.1f J (busy %.1f, idle-short %.1f, idle-long %.1f, power-cycle %.1f)\n",
		r.Energy.Total(), r.Energy.Busy, r.Energy.IdleShort, r.Energy.IdleLong, r.Energy.PowerCycle)
	fmt.Fprintf(&b, "  shutdowns: %d issued (%d hit, %d miss), %d long periods, %d unexploited\n",
		r.Global.Shutdowns(), r.Global.Hits(), r.Global.Misses(), r.Global.LongPeriods, r.Global.NotPredicted)
	fmt.Fprintf(&b, "  latency:   %d wakeups, %.1f s total wait\n", r.Wakeups, r.WaitTime.Seconds())
	fmt.Fprintf(&b, "  wait/machine:")
	for i, label := range WaitHistLabels {
		fmt.Fprintf(&b, " %s:%d", label, r.WaitHist[i])
	}
	b.WriteString("\n")
	for _, du := range r.DeviceUse {
		fmt.Fprintf(&b, "  device %-32s %6d machines %14.1f J\n", du.Device, du.Machines, du.EnergyJ)
	}
	return b.String()
}

package trace

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// encodeIndexed encodes traces as one v2 file with an index footer,
// using the given block granularity (0 = default).
func encodeIndexed(t testing.TB, blockEvents int, traces ...*Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	ib := NewIndexBuilder()
	for _, tr := range traces {
		enc, err := NewBlockEncoder(&buf, tr.App, tr.Execution, len(tr.Events))
		if err != nil {
			t.Fatal(err)
		}
		if blockEvents > 0 {
			if err := enc.SetBlockEvents(blockEvents); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.SetIndex(ib); err != nil {
			t.Fatal(err)
		}
		for _, e := range tr.Events {
			if err := enc.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ib.WriteFooter(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drainAll fully drains a source into per-execution traces plus the
// terminal error, formatting events with %+v for differential compares.
func drainAll(src Source) (string, error) {
	var sb strings.Builder
	for {
		app, exec, ok := src.NextExec()
		if !ok {
			break
		}
		fmt.Fprintf(&sb, "exec %s/%d\n", app, exec)
		for {
			e, ok := src.Next()
			if !ok {
				break
			}
			fmt.Fprintf(&sb, "%+v\n", e)
		}
	}
	return sb.String(), src.Err()
}

// TestParallelDifferential decodes the same streams through the
// sequential BlockDecoder and the parallel pipeline at several worker
// counts; the %+v-rendered event streams must match byte for byte.
func TestParallelDifferential(t *testing.T) {
	a := seedTraceV2()
	b := seedTraceV2()
	b.App, b.Execution = "other", 5
	empty := &Trace{App: "empty", Execution: 1}
	files := map[string][]byte{
		"plain":       encodeV2(t, a, 16),
		"indexed":     encodeIndexed(t, 16, a, b),
		"empty-mid":   encodeIndexed(t, 8, a, empty, b),
		"empty-only":  encodeIndexed(t, 8, empty),
		"tiny-blocks": encodeIndexed(t, 1, a),
	}
	for name, data := range files {
		want, wantErr := drainAll(NewBlockSource(bytes.NewReader(data)))
		if wantErr != nil {
			t.Fatalf("%s: sequential: %v", name, wantErr)
		}
		for _, workers := range []int{1, 4, 8} {
			ps := NewParallelSource(bytes.NewReader(data), workers)
			got, gotErr := drainAll(ps)
			if gotErr != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, gotErr)
			}
			if got != want {
				t.Fatalf("%s workers=%d: stream mismatch\nwant:\n%s\ngot:\n%s", name, workers, want, got)
			}
			if err := ps.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestParallelAppendExec exercises the batched ExecAppender path against
// the event-at-a-time path.
func TestParallelAppendExec(t *testing.T) {
	data := encodeIndexed(t, 16, seedTraceV2())
	want, err := Collect(NewBlockSource(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	ps := NewParallelSource(bytes.NewReader(data), 4)
	defer ps.Close()
	got, err := Collect(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || !tracesEqual(want[0], got[0]) {
		t.Fatal("AppendExec stream mismatch")
	}
}

// TestParallelReset replays the same stream twice through one source.
func TestParallelReset(t *testing.T) {
	data := encodeIndexed(t, 16, seedTraceV2())
	ps := NewParallelSource(bytes.NewReader(data), 4)
	defer ps.Close()
	first, err := drainAll(ps)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Reset(); err != nil {
		t.Fatal(err)
	}
	second, err := drainAll(ps)
	if err != nil {
		t.Fatal(err)
	}
	if first != second || first == "" {
		t.Fatal("Reset replay mismatch")
	}
}

// TestParallelEarlyClose tears the pipeline down mid-stream; the test
// passes if nothing deadlocks or races.
func TestParallelEarlyClose(t *testing.T) {
	data := encodeIndexed(t, 1, seedTraceV2())
	for _, steps := range []int{0, 1, 3} {
		ps := NewParallelSource(bytes.NewReader(data), 4)
		if _, _, ok := ps.NextExec(); !ok {
			t.Fatal("NextExec failed")
		}
		for i := 0; i < steps; i++ {
			if _, ok := ps.Next(); !ok {
				t.Fatalf("Next %d failed", i)
			}
		}
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelErrorParity corrupts one byte of a block payload and
// requires the parallel pipeline to fail with exactly the sequential
// decoder's error.
func TestParallelErrorParity(t *testing.T) {
	data := encodeV2(t, seedTraceV2(), 16)
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	_, wantErr := drainAll(NewBlockSource(bytes.NewReader(bad)))
	if wantErr == nil {
		t.Skip("flip did not corrupt the stream")
	}
	for _, workers := range []int{1, 4} {
		ps := NewParallelSource(bytes.NewReader(bad), workers)
		_, gotErr := drainAll(ps)
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: error mismatch\nwant: %v\ngot:  %v", workers, wantErr, gotErr)
		}
		ps.Close()
	}
}

// pushdownTrace spreads events over distinct time/pid/pc regions so
// per-block metadata actually discriminates.
func pushdownTrace() *Trace {
	t := &Trace{App: "push", Execution: 0}
	now := Time(0)
	for i := 0; i < 400; i++ {
		now += 500
		t.Events = append(t.Events, Event{
			Time:   now,
			Pid:    PID(1 + i/100), // four pid regions
			Kind:   KindIO,
			Access: AccessRead,
			PC:     PC(0x1000 + 0x100*(i/50)), // eight pc regions
			FD:     3,
			Block:  int64(i) * 8,
			Size:   4096,
		})
	}
	return t
}

// TestPushdownEquivalence checks predicate pushdown against the exact
// decode-then-drop reference: for every predicate, pushdown+filter must
// yield the same stream as filter alone.
func TestPushdownEquivalence(t *testing.T) {
	tr := pushdownTrace()
	data := encodeIndexed(t, 32, tr, seedTraceV2())
	preds := []Predicate{
		{},
		{From: 50_000, To: 120_000},
		{Pid: 3},
		{PCFrom: 0x1200, PCTo: 0x14ff},
		{From: 80_000, Pid: 2},
		{From: 1, To: 2}, // matches nothing
		{Pid: 99},
		{From: 50_000, To: 120_000, Pid: 2, PCFrom: 0x1000, PCTo: 0x1fff},
	}
	for i, p := range preds {
		want, err := drainAll(FilterEvents(NewBlockSource(bytes.NewReader(data)), p))
		if err != nil {
			t.Fatalf("pred %d: reference: %v", i, err)
		}

		bs := NewBlockSource(bytes.NewReader(data))
		if armed := bs.SetPredicate(p); armed == p.IsZero() {
			t.Fatalf("pred %d: SetPredicate armed=%v", i, armed)
		}
		got, err := drainAll(FilterEvents(bs, p))
		if err != nil {
			t.Fatalf("pred %d: pushdown: %v", i, err)
		}
		if got != want {
			t.Fatalf("pred %d: sequential pushdown mismatch\nwant:\n%s\ngot:\n%s", i, want, got)
		}

		ps := NewParallelSource(bytes.NewReader(data), 4)
		ps.SetPredicate(p)
		got, err = drainAll(FilterEvents(ps, p))
		if err != nil {
			t.Fatalf("pred %d: parallel pushdown: %v", i, err)
		}
		if got != want {
			t.Fatalf("pred %d: parallel pushdown mismatch\nwant:\n%s\ngot:\n%s", i, want, got)
		}
		ps.Close()
	}
}

// countingReader counts the bytes served through Read.
type countingReader struct {
	r *bytes.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Seek(off int64, whence int) (int64, error) { return c.r.Seek(off, whence) }

// TestPushdownReadsFewerBytes is the acceptance check that skipped
// blocks are never read: a narrow time slice of a many-block trace must
// read strictly fewer bytes than the full scan while producing the
// events of the filtered reference.
func TestPushdownReadsFewerBytes(t *testing.T) {
	tr := &Trace{App: "big", Execution: 0}
	now := Time(0)
	for i := 0; i < 50_000; i++ {
		now += 100
		tr.Events = append(tr.Events, Event{
			Time: now, Pid: 1, Kind: KindIO, Access: AccessRead,
			PC: PC(0x4000 + 8*(i%64)), FD: 3, Block: int64(i), Size: 4096,
		})
	}
	data := encodeIndexed(t, 512, tr)
	p := Predicate{From: 10_000, To: 60_000} // first ~600 events

	full := &countingReader{r: bytes.NewReader(data)}
	want, err := drainAll(FilterEvents(NewBlockSource(full), p))
	if err != nil {
		t.Fatal(err)
	}

	pushed := &countingReader{r: bytes.NewReader(data)}
	bs := NewBlockSource(pushed)
	if !bs.SetPredicate(p) {
		t.Fatal("SetPredicate did not arm pushdown")
	}
	got, err := drainAll(FilterEvents(bs, p))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("pushdown stream differs from filtered reference")
	}
	if want == "" {
		t.Fatal("predicate selected nothing; test is vacuous")
	}
	if pushed.n >= full.n {
		t.Fatalf("pushdown read %d bytes, full scan %d — expected strictly fewer", pushed.n, full.n)
	}
	t.Logf("pushdown read %d of %d bytes (%.1f%%)", pushed.n, full.n, 100*float64(pushed.n)/float64(full.n))

	par := &countingReader{r: bytes.NewReader(data)}
	ps := NewParallelSource(par, 2)
	ps.SetPredicate(p)
	got, err = drainAll(FilterEvents(ps, p))
	if err != nil {
		t.Fatal(err)
	}
	ps.Close()
	if got != want {
		t.Fatal("parallel pushdown stream differs from filtered reference")
	}
	if par.n >= full.n {
		t.Fatalf("parallel pushdown read %d bytes, full scan %d — expected strictly fewer", par.n, full.n)
	}
}

// TestIndexedFileBackwardCompatible: a footer-bearing file must decode
// identically through the plain sequential path (no predicate, no
// index awareness) — the footer is invisible to old readers.
func TestIndexedFileBackwardCompatible(t *testing.T) {
	tr := seedTraceV2()
	plain := encodeV2(t, tr, 16)
	indexed := encodeIndexed(t, 16, tr)
	if !bytes.HasPrefix(indexed, plain) {
		t.Fatal("indexed file does not extend the plain encoding")
	}
	want, err := drainAll(NewBlockSource(bytes.NewReader(plain)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := drainAll(NewBlockSource(bytes.NewReader(indexed)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("footer changed the decoded stream")
	}
}

// TestOpenTraceFileOpts drives the options path end to end through a
// real file: parallel decode, pushdown, and filtering.
func TestOpenTraceFileOpts(t *testing.T) {
	tr := pushdownTrace()
	data := encodeIndexed(t, 32, tr)
	path := t.TempDir() + "/push.v2"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p := Predicate{From: 50_000, To: 120_000}
	want, err := drainAll(FilterEvents(NewBlockSource(bytes.NewReader(data)), p))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		fs, err := OpenTraceFileOpts(path, OpenOptions{Workers: workers, Pred: p})
		if err != nil {
			t.Fatal(err)
		}
		got, err := drainAll(fs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: filtered open mismatch", workers)
		}
		if err := fs.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// Command traceinspect summarizes a trace file written by tracegen: event
// counts, per-process activity, idle-period structure at a given
// breakeven, and optionally the first events in text form.
//
// The file is processed as a stream in a single pass — events are never
// loaded into memory, so arbitrarily large traces (e.g. tracegen output
// concatenated across executions) inspect in constant memory. Files
// holding several executions get one summary block per execution.
//
// The input format (v1 binary, v2 columnar or text) is auto-detected
// from the leading magic bytes. For v2 columnar files, -blocks prints a
// per-block report: events per block, encoded bytes per event, and the
// per-column compression ratio against the raw struct-of-arrays size;
// -index prints the seekable index footer (per-block offsets and column
// statistics) after verifying its CRC and that every recorded offset
// points at a real execution or block header.
//
// -from/-to/-pid restrict the inspection to matching events. On v2
// files with an index footer the filter is pushed down to the block
// index — non-matching blocks are skipped without being read — and
// -workers N decodes the surviving blocks on a parallel pipeline.
//
// Usage:
//
//	traceinspect traces/mozilla-000.pctr
//	traceinspect -head 25 -breakeven 5.43 traces/nedit-003.pctr
//	traceinspect -blocks traces/mozilla-000.pct2
//	traceinspect -index traces/mozilla-000.pct2
//	traceinspect -from 100s -to 300s -pid 1 -workers 4 traces/mozilla-000.pct2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"pcapsim/internal/cliutil"
	"pcapsim/internal/trace"
)

func main() {
	var (
		headFlag      = flag.Int("head", 0, "print the first N events of each execution as text")
		breakevenFlag = flag.Float64("breakeven", 5.43, "breakeven time in seconds for idle-period stats")
		formatFlag    = flag.String("format", "auto", "input trace format: "+cliutil.TraceFormatsAuto)
		blocksFlag    = flag.Bool("blocks", false, "print per-block stats (v2 columnar files only)")
		indexFlag     = flag.Bool("index", false, "print and verify the index footer (v2 columnar files only)")
		workersFlag   = flag.Int("workers", 0, "decode v2 blocks with N parallel workers (0 = sequential, -1 = one per CPU)")
	)
	var predFlags cliutil.PredicateFlags
	predFlags.Register("")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(cliutil.MissingTraceError("traceinspect [flags] <trace-file>"))
	}
	f, err := cliutil.OpenTrace(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close() //pcaplint:ignore errcheck-lite file opened read-only; a close failure cannot lose data
	if *indexFlag {
		if err := inspectIndex(f); err != nil {
			fatal(err)
		}
		return
	}
	if *blocksFlag {
		if err := inspectBlocks(f); err != nil {
			fatal(err)
		}
		return
	}
	pred, err := predFlags.Predicate()
	if err != nil {
		fatal(err)
	}
	src, err := open(f, *formatFlag, *workersFlag, pred)
	if err != nil {
		fatal(err)
	}
	src = trace.FilterEvents(src, pred)

	execs := 0
	for {
		app, exec, ok := src.NextExec()
		if !ok {
			break
		}
		if execs > 0 {
			fmt.Println()
		}
		execs++
		inspect(src, app, exec, *headFlag, *breakevenFlag)
	}
	if err := src.Err(); err != nil {
		fatal(err)
	}
	if execs == 0 {
		fatal(fmt.Errorf("%s: no executions found", flag.Arg(0)))
	}
}

// inspect consumes one execution from src and prints its summary. All
// statistics are computed incrementally; only the -head buffer and
// per-process aggregates are retained.
func inspect(src trace.Source, app string, exec int, head int, breakeven float64) {
	type pstat struct {
		ios   int
		first trace.Time
		last  trace.Time
	}
	var (
		v         = trace.NewValidator(app, exec)
		validErr  error
		events    int
		ios       int
		duration  trace.Time
		procs     = map[trace.PID]*pstat{}
		be        = trace.FromSeconds(breakeven)
		prev      trace.Time
		havePrev  bool
		short     int
		long      int
		longTotal trace.Time
		headBuf   []trace.Event
	)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if validErr == nil {
			validErr = v.Event(e)
		}
		events++
		duration = e.Time
		if len(headBuf) < head {
			headBuf = append(headBuf, e)
		}
		if !e.IsIO() {
			continue
		}
		ios++
		p := procs[e.Pid]
		if p == nil {
			p = &pstat{first: e.Time}
			procs[e.Pid] = p
		}
		p.ios++
		p.last = e.Time
		if havePrev {
			gap := e.Time - prev
			if gap >= be {
				long++
				longTotal += gap
			} else if gap > 0 {
				short++
			}
		}
		prev = e.Time
		havePrev = true
	}
	if validErr != nil {
		fmt.Fprintln(os.Stderr, "traceinspect: warning:", validErr)
	}

	fmt.Printf("app %s execution %d\n", app, exec)
	fmt.Printf("events %d (I/O %d), duration %.1f s\n", events, ios, duration.Seconds())

	pids := make([]trace.PID, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	fmt.Println("\nprocesses:")
	for _, pid := range pids {
		p := procs[pid]
		fmt.Printf("  pid %-6d %7d I/Os   active %.1f–%.1f s\n",
			pid, p.ios, p.first.Seconds(), p.last.Seconds())
	}

	fmt.Printf("\nidle periods at breakeven %.2f s: %d long (total %.1f s), %d short\n",
		breakeven, long, longTotal.Seconds(), short)

	if head > 0 {
		fmt.Println("\nfirst events:")
		for _, e := range headBuf {
			fmt.Println(" ", e.String())
		}
	}
}

// open wraps the file in the right streaming decoder, sniffing the
// leading magic bytes when the format is auto. v2 files honor the
// worker count and push the predicate down to the block index.
func open(f *os.File, format string, workers int, pred trace.Predicate) (trace.Source, error) {
	if format == "auto" {
		sniffed, err := sniffV2(f)
		if err != nil {
			return nil, err
		}
		if sniffed {
			format = "v2"
		}
	}
	switch format {
	case "binary":
		return trace.NewDecoder(f), nil
	case "v2":
		if workers != 0 {
			ps := trace.NewParallelSource(f, workers)
			ps.SetPredicate(pred)
			return ps, nil
		}
		bs := trace.NewBlockSource(f)
		bs.SetPredicate(pred)
		return bs, nil
	case "text":
		return trace.NewTextDecoder(f), nil
	case "auto":
		return trace.NewSniffedSource(f)
	default:
		return nil, cliutil.UnknownFormatError(format, cliutil.TraceFormatsAuto)
	}
}

// sniffV2 reports whether f starts with the v2 columnar magic, leaving
// the file rewound.
func sniffV2(f *os.File) (bool, error) {
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return false, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return false, err
	}
	return n == len(magic) && string(magic[:]) == "PCT2", nil
}

// inspectIndex prints the index footer after verifying it: ReadIndex
// checks the CRC and the structural invariants, and every recorded
// offset is checked to point at a real execution or block header.
func inspectIndex(f *os.File) error {
	idx, err := trace.ReadIndex(f)
	if err != nil {
		return err
	}
	if idx == nil {
		return fmt.Errorf("%s: no index footer (sequential scan only); regenerate with tracegen -format v2", f.Name())
	}
	fmt.Printf("index footer: %d execution(s), %d block(s)\n", len(idx.Execs), idx.Blocks())
	var magic [4]byte
	checkMagic := func(off int64, want string) error {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return err
		}
		if _, err := io.ReadFull(f, magic[:]); err != nil {
			return fmt.Errorf("offset %d: %w", off, err)
		}
		if string(magic[:]) != want {
			return fmt.Errorf("offset %d: found %q, want %q", off, magic[:], want)
		}
		return nil
	}
	for _, em := range idx.Execs {
		if err := checkMagic(em.Offset, "PCT2"); err != nil {
			return fmt.Errorf("index footer: execution %d: %w", em.Exec, err)
		}
		fmt.Printf("\napp %s execution %d: %d events at offset %d, %d block(s)\n",
			em.App, em.Exec, em.Events, em.Offset, len(em.Blocks))
		fmt.Println("  block    offset  events    ios  forks  time range (s)      pids  pc range")
		for i, bm := range em.Blocks {
			if err := checkMagic(bm.Offset, "PCB2"); err != nil {
				return fmt.Errorf("index footer: execution %d block %d: %w", em.Exec, i, err)
			}
			fmt.Printf("  %5d  %8d  %6d %6d %6d  %8.1f–%-8.1f %5d  %08x–%08x\n",
				i, bm.Offset, bm.Events, bm.IOs, bm.Forks,
				bm.MinTime.Seconds(), bm.MaxTime.Seconds(),
				len(bm.Pids), uint32(bm.PCMin), uint32(bm.PCMax))
		}
	}
	fmt.Println("\nverified: crc ok, offsets consistent, all entries point at headers")
	return nil
}

// inspectBlocks walks a v2 columnar file frame by frame and reports the
// container-level shape of each execution: per-block event counts and
// encoded bytes per event, then per-column encoded sizes against the raw
// struct-of-arrays sizes they decode into.
func inspectBlocks(f *os.File) error {
	src := trace.NewFrameSource(f)
	d := src.Decoder()
	execs := 0
	for {
		app, exec, ok := src.NextExec()
		if !ok {
			break
		}
		if execs > 0 {
			fmt.Println()
		}
		execs++
		fmt.Printf("app %s execution %d (%d events declared)\n", app, exec, d.Count())
		fmt.Println("  block  events    ios  forks    bytes  bytes/event")
		var (
			blocks     int
			events     int
			encoded    int
			colEncoded [trace.NumColumns]int
			colRaw     [trace.NumColumns]int
		)
		for {
			frame, ok := src.NextFrame()
			if !ok {
				break
			}
			st := d.BlockStats()
			total := st.HeaderBytes + st.PayloadBytes
			fmt.Printf("  %5d  %6d %6d %6d %8d %12.2f\n",
				st.Index, st.Events, st.IOs, st.Forks, total,
				float64(total)/float64(st.Events))
			blocks++
			events += frame.Len()
			encoded += total
			for i := 0; i < trace.NumColumns; i++ {
				colEncoded[i] += st.ColBytes[i]
				colRaw[i] += st.RawColBytes(i)
			}
		}
		if err := src.Err(); err != nil {
			return err
		}
		if blocks == 0 {
			continue
		}
		fmt.Printf("  total: %d blocks, %d events, %d bytes (%.2f bytes/event)\n",
			blocks, events, encoded, float64(encoded)/float64(events))
		fmt.Println("\n  column   encoded      raw  ratio")
		for i := 0; i < trace.NumColumns; i++ {
			if colRaw[i] == 0 {
				continue
			}
			fmt.Printf("  %-7s %8d %8d  %5.1f%%\n", trace.ColumnName(i),
				colEncoded[i], colRaw[i], 100*float64(colEncoded[i])/float64(colRaw[i]))
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	if execs == 0 {
		return fmt.Errorf("%s: no executions found (not a v2 columnar trace?)", f.Name())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinspect:", err)
	os.Exit(1)
}

// Package pcapsim's benchmark harness: one benchmark per table and figure
// of the paper plus ablations over the design choices DESIGN.md calls out
// and micro-benchmarks of the hot paths.
//
// Accuracy and energy benchmarks report their headline numbers through
// b.ReportMetric (hit%, miss%, saved%), so `go test -bench .` regenerates
// the paper's results alongside the timing:
//
//	go test -bench 'BenchmarkFig7' -benchmem
package pcapsim

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"pcapsim/internal/classic"
	"pcapsim/internal/core"
	"pcapsim/internal/experiments"
	"pcapsim/internal/fleet"
	"pcapsim/internal/fscache"
	"pcapsim/internal/ltree"
	"pcapsim/internal/predictor"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// --- Full suite: serial vs parallel matrix -------------------------------

// benchSuite regenerates the entire evaluation (all tables and figures)
// from a cold suite. parallel == 0 is the fully serial reference;
// parallel > 0 warms the matrix on that many workers first. Both paths
// produce byte-identical output (see internal/experiments determinism
// tests); the ratio of their wall-clocks is the engine's speedup.
func benchSuite(b *testing.B, parallel int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		if parallel > 0 {
			if err := s.RunMatrix(parallel); err != nil {
				b.Fatal(err)
			}
		}
		out, err := s.RenderAll(false)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) < 5000 {
			b.Fatalf("implausibly short suite output (%d bytes)", len(out))
		}
	}
}

func BenchmarkSuiteSerial(b *testing.B)   { benchSuite(b, 0) }
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 8) }

// --- Tables ------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("short table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		if s.RenderTable2() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(rows[0].Entries[core.VariantBase]), "mozilla-entries")
		}
	}
}

// --- Figures -----------------------------------------------------------

// reportAccuracy surfaces a figure's across-application averages.
func reportAccuracy(b *testing.B, fig func(*experiments.Suite) (*experiments.AccuracyFigure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		f, err := fig(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, name := range f.Policies {
				avg := f.Average[name]
				b.ReportMetric(100*avg.Hit, name+"-hit%")
				b.ReportMetric(100*avg.Miss, name+"-miss%")
			}
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	reportAccuracy(b, (*experiments.Suite).Fig6)
}

func BenchmarkFig7(b *testing.B) {
	reportAccuracy(b, (*experiments.Suite).Fig7)
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		f, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, name := range f.Policies {
				b.ReportMetric(100*f.AverageSavings[name], name+"-saved%")
			}
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	reportAccuracy(b, (*experiments.Suite).Fig9)
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		f, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, name := range f.Policies {
				b.ReportMetric(100*f.Average[name].HitPrimary, name+"-hitprim%")
			}
		}
	}
}

func BenchmarkTPTimeoutSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		rows, err := s.TPSweep()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(100*r.AvgSavings, fmt.Sprintf("tp%gs-saved%%", r.Timeout.Seconds()))
			}
		}
	}
}

func BenchmarkMultiState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		rows, err := s.MultiState()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var plain, multi float64
			for _, r := range rows {
				plain += r.SavedPlain
				multi += r.SavedMulti
			}
			n := float64(len(rows))
			b.ReportMetric(100*plain/n, "pcap-saved%")
			b.ReportMetric(100*multi/n, "pcap+lp-saved%")
		}
	}
}

// --- Ablations (DESIGN.md §6) -------------------------------------------

// runMozilla evaluates one PCAP-family policy on the mozilla workload and
// returns its global counts plus saved energy fraction.
func runMozilla(b *testing.B, runner *sim.Runner, pol sim.Policy) (sim.Counts, float64) {
	b.Helper()
	app, _ := workload.ByName("mozilla")
	traces := app.Traces(experiments.DefaultSeed)
	base, err := runner.RunApp(traces, sim.Policy{
		Name:       "Base",
		NewFactory: func() predictor.Factory { return predictor.AlwaysOn{} },
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := runner.RunApp(traces, pol)
	if err != nil {
		b.Fatal(err)
	}
	return res.Global, 1 - res.Energy.Total()/base.Energy.Total()
}

func pcapPolicy(cfg core.Config) sim.Policy {
	return sim.Policy{
		Name:       "PCAP",
		NewFactory: func() predictor.Factory { return core.MustNew(cfg) },
		Reuse:      true,
	}
}

func BenchmarkAblationWaitWindow(b *testing.B) {
	for _, ms := range []int{250, 500, 1000, 2000, 4000} {
		b.Run(fmt.Sprintf("window=%dms", ms), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runner := sim.MustNewRunner(sim.DefaultConfig())
				cfg := core.DefaultConfig(core.VariantBase)
				cfg.WaitWindow = trace.Time(ms) * trace.Millisecond
				counts, saved := runMozilla(b, runner, pcapPolicy(cfg))
				if i == b.N-1 {
					f := counts.Fractions()
					b.ReportMetric(100*f.Hit, "hit%")
					b.ReportMetric(100*f.Miss, "miss%")
					b.ReportMetric(100*saved, "saved%")
				}
			}
		})
	}
}

func BenchmarkAblationHistoryLen(b *testing.B) {
	for _, h := range []int{2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runner := sim.MustNewRunner(sim.DefaultConfig())
				cfg := core.DefaultConfig(core.VariantH)
				cfg.HistoryLen = h
				counts, saved := runMozilla(b, runner, pcapPolicy(cfg))
				if i == b.N-1 {
					f := counts.Fractions()
					b.ReportMetric(100*f.Hit, "hit%")
					b.ReportMetric(100*f.Miss, "miss%")
					b.ReportMetric(100*saved, "saved%")
				}
			}
		})
	}
}

func BenchmarkAblationLTHistory(b *testing.B) {
	for _, h := range []int{2, 4, 8, 12} {
		b.Run(fmt.Sprintf("depth=%d", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runner := sim.MustNewRunner(sim.DefaultConfig())
				cfg := ltree.DefaultConfig()
				cfg.HistoryLen = h
				pol := sim.Policy{
					Name:       "LT",
					NewFactory: func() predictor.Factory { return ltree.MustNew(cfg) },
					Reuse:      true,
				}
				counts, saved := runMozilla(b, runner, pol)
				if i == b.N-1 {
					f := counts.Fractions()
					b.ReportMetric(100*f.Hit, "hit%")
					b.ReportMetric(100*f.Miss, "miss%")
					b.ReportMetric(100*saved, "saved%")
				}
			}
		})
	}
}

func BenchmarkAblationSignature(b *testing.B) {
	for _, enc := range []core.Encoding{core.EncodingSum, core.EncodingRotXor} {
		b.Run(enc.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runner := sim.MustNewRunner(sim.DefaultConfig())
				cfg := core.DefaultConfig(core.VariantBase)
				cfg.Encoding = enc
				counts, _ := runMozilla(b, runner, pcapPolicy(cfg))
				if i == b.N-1 {
					f := counts.Fractions()
					b.ReportMetric(100*f.Hit, "hit%")
					b.ReportMetric(100*f.Miss, "miss%")
				}
			}
		})
	}
}

func BenchmarkAblationTableBound(b *testing.B) {
	for _, bound := range []int{8, 16, 32, 64, 0} {
		name := fmt.Sprintf("bound=%d", bound)
		if bound == 0 {
			name = "bound=unlimited"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runner := sim.MustNewRunner(sim.DefaultConfig())
				cfg := core.DefaultConfig(core.VariantBase)
				cfg.TableBound = bound
				counts, _ := runMozilla(b, runner, pcapPolicy(cfg))
				if i == b.N-1 {
					f := counts.Fractions()
					b.ReportMetric(100*f.Hit, "hit%")
					b.ReportMetric(100*f.HitPrimary, "hitprim%")
				}
			}
		})
	}
}

func BenchmarkAblationCacheSize(b *testing.B) {
	for _, kb := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("cache=%dKB", kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simCfg := sim.DefaultConfig()
				simCfg.Cache.SizeBytes = kb * 1024
				runner := sim.MustNewRunner(simCfg)
				counts, saved := runMozilla(b, runner, pcapPolicy(core.DefaultConfig(core.VariantBase)))
				if i == b.N-1 {
					b.ReportMetric(float64(counts.LongPeriods), "long-periods")
					b.ReportMetric(100*saved, "saved%")
				}
			}
		})
	}
}

// --- Micro-benchmarks of the hot paths -----------------------------------
//
// Methodology (see EXPERIMENTS.md "Hot-path profile"): every micro
// benchmark accumulates its results into the package-level sinks below so
// the compiler cannot eliminate the measured work, uses fixed seeds
// (experiments.DefaultSeed or literal constants) so numbers are comparable
// across PRs, and reports allocations (-benchmem) — the steady-state event
// loop is expected to stay at ~0 allocs/op.

// Benchmark sinks: assigned, never read. Package-level stores defeat
// dead-code elimination of pure measured expressions.
var (
	sinkBool bool
	sinkInt  int
)

// BenchmarkFSCacheReadHit measures the warm read path: every access hits
// and only refreshes the block's LRU position.
func BenchmarkFSCacheReadHit(b *testing.B) {
	c, err := fscache.New(fscache.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	warm := fscache.DefaultConfig().Blocks()
	ev := trace.Event{Kind: trace.KindIO, Access: trace.AccessRead, Pid: 1, PC: 0x1000, FD: 3, Size: 4096}
	for i := 0; i < warm; i++ {
		ev.Block = int64(i)
		if _, err := c.Apply(ev); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Time = trace.Time(i)
		ev.Block = int64(i % warm)
		out, err := c.Apply(ev)
		if err != nil {
			b.Fatal(err)
		}
		sinkInt += len(out)
	}
}

// BenchmarkFSCacheMissEvict measures the steady-state miss path under a
// full arena: every access misses, evicts the LRU block, and allocates its
// slot from the free list — the worst case of the intrusive rewrite.
func BenchmarkFSCacheMissEvict(b *testing.B) {
	c, err := fscache.New(fscache.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ev := trace.Event{Kind: trace.KindIO, Access: trace.AccessRead, Pid: 1, PC: 0x1000, FD: 3, Size: 4096}
	in := make([]trace.Event, 1)
	var out []trace.Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Time = trace.Time(i)
		ev.Block = int64(i) // strictly increasing: always a miss
		in[0] = ev
		out, err = c.FilterInto(out[:0], in)
		if err != nil {
			b.Fatal(err)
		}
		sinkInt += len(out)
	}
}

// BenchmarkTableTrainEvict measures steady-state training of a bounded
// table: every Train inserts a fresh key and displaces the LRU entry.
func BenchmarkTableTrainEvict(b *testing.B) {
	tab := core.NewTable(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Train(core.Key{Sig: core.Signature(i)})
	}
	sinkInt += tab.Len()
}

// BenchmarkTableTrainRefresh measures re-training resident keys (the
// idempotent MoveToFront path).
func BenchmarkTableTrainRefresh(b *testing.B) {
	tab := core.NewTable(0)
	const n = 512
	for i := 0; i < n; i++ {
		tab.Train(core.Key{Sig: core.Signature(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Train(core.Key{Sig: core.Signature(i % n)})
	}
	sinkInt += tab.Len()
}

func BenchmarkPCAPOnAccess(b *testing.B) {
	p := core.MustNew(core.DefaultConfig(core.VariantBase))
	proc := p.NewProcess(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.OnAccess(predictor.Access{
			Time: trace.Time(i) * 100 * trace.Millisecond,
			PC:   trace.PC(0x1000 + i%7),
			FD:   3,
		})
	}
}

func BenchmarkPCAPOnAccessWithHistory(b *testing.B) {
	p := core.MustNew(core.DefaultConfig(core.VariantFH))
	proc := p.NewProcess(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.OnAccess(predictor.Access{
			Time: trace.Time(i) * 2 * trace.Second,
			PC:   trace.PC(0x1000 + i%7),
			FD:   trace.FD(i % 4),
		})
	}
}

func BenchmarkLTOnAccess(b *testing.B) {
	l := ltree.MustNew(ltree.DefaultConfig())
	proc := l.NewProcess(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gap := 2 * trace.Second
		if i%3 == 0 {
			gap = 30 * trace.Second
		}
		proc.OnAccess(predictor.Access{Time: trace.Time(i) * gap})
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tab := core.NewTable(0)
	for i := 0; i < 1000; i++ {
		tab.Train(core.Key{Sig: core.Signature(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBool = tab.Lookup(core.Key{Sig: core.Signature(i % 2000)})
	}
}

// BenchmarkCacheFilter measures steady-state whole-trace filtering: the
// cache and the output buffer are reused across iterations (Reset +
// FilterInto), the same ownership discipline the simulator's pooled
// runState applies (DESIGN.md §10) — 0 allocs/op.
func BenchmarkCacheFilter(b *testing.B) {
	app, _ := workload.ByName("nedit")
	tr := app.Trace(experiments.DefaultSeed, 0)
	c, err := fscache.New(fscache.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	out := make([]trace.Event, 0, len(tr.Events))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		out, err = c.FilterInto(out[:0], tr.Events)
		if err != nil {
			b.Fatal(err)
		}
		sinkInt += len(out)
	}
}

// benchmarkDecode measures full-stream decode throughput of one on-disk
// format: every execution of xemacs is encoded once, then each iteration
// decodes the whole byte stream execution by execution through
// trace.Drain — exactly how sim.RunSource consumes a file-backed source.
// bytes/op is the encoded size; events/s is the decoded event rate.
func benchmarkDecode(b *testing.B, encode func(io.Writer, *trace.Trace) error, open func(*bytes.Reader) trace.Source) {
	b.Helper()
	app, _ := workload.ByName("xemacs")
	traces := app.Traces(experiments.DefaultSeed)
	var buf bytes.Buffer
	events := 0
	for _, tr := range traces {
		if err := encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
		events += tr.Len()
	}
	data := buf.Bytes()
	drained := make([]trace.Event, 0, 4096)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := open(bytes.NewReader(data))
		n := 0
		for {
			if _, _, ok := src.NextExec(); !ok {
				break
			}
			drained = trace.Drain(src, drained)
			n += len(drained)
		}
		if err := src.Err(); err != nil {
			b.Fatal(err)
		}
		if n != events {
			b.Fatalf("decoded %d events, want %d", n, events)
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkDecodeV1 is the row-oriented v1 binary decoder; the baseline
// BenchmarkDecodeV2 is measured against.
func BenchmarkDecodeV1(b *testing.B) {
	benchmarkDecode(b, trace.WriteBinary, func(r *bytes.Reader) trace.Source { return trace.NewDecoder(r) })
}

// BenchmarkDecodeV2 is the columnar v2 block decoder (batched decode into
// a pooled frame).
func BenchmarkDecodeV2(b *testing.B) {
	benchmarkDecode(b, trace.WriteColumnar, func(r *bytes.Reader) trace.Source { return trace.NewBlockSource(r) })
}

// BenchmarkDecodeV2Parallel is the parallel block pipeline at one worker
// per CPU — the same stream as BenchmarkDecodeV2, so the events/s ratio
// between the two is the pipeline's scaling factor (≈1 minus the
// coordination overhead on a single-CPU host).
func BenchmarkDecodeV2Parallel(b *testing.B) {
	benchmarkDecode(b, trace.WriteColumnar, func(r *bytes.Reader) trace.Source { return trace.NewParallelSource(r, 0) })
}

// countingReaderAt wraps a bytes.Reader and counts bytes read, to report
// how much of the file pushdown actually touches.
type countingReaderAt struct {
	r *bytes.Reader
	n int64
}

func (c *countingReaderAt) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReaderAt) Seek(off int64, whence int) (int64, error) {
	return c.r.Seek(off, whence)
}

// BenchmarkDecodeV2Pushdown decodes an indexed stream under a mid-file
// time window: the index skips non-matching blocks without reading them.
// events/s counts the events actually delivered; read-pct is the
// fraction of the file read from the underlying reader.
func BenchmarkDecodeV2Pushdown(b *testing.B) {
	app, _ := workload.ByName("xemacs")
	traces := app.Traces(experiments.DefaultSeed)
	var buf bytes.Buffer
	// 256-event blocks give the index skip granularity; the default block
	// size would put most of these executions in a single block each.
	ib := trace.NewIndexBuilder()
	for _, tr := range traces {
		enc, err := trace.NewBlockEncoder(&buf, tr.App, tr.Execution, tr.Len())
		if err != nil {
			b.Fatal(err)
		}
		if err := enc.SetBlockEvents(256); err != nil {
			b.Fatal(err)
		}
		if err := enc.SetIndex(ib); err != nil {
			b.Fatal(err)
		}
		for _, e := range tr.Events {
			if err := enc.Write(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := enc.Close(); err != nil {
			b.Fatal(err)
		}
	}
	if err := ib.WriteFooter(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	var maxTime trace.Time
	for _, tr := range traces {
		if last := tr.Events[len(tr.Events)-1].Time; last > maxTime {
			maxTime = last
		}
	}
	pred := trace.Predicate{From: maxTime / 4, To: maxTime / 2}
	drained := make([]trace.Event, 0, 4096)
	var events, read int64
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr := &countingReaderAt{r: bytes.NewReader(data)}
		src := trace.NewBlockSource(cr)
		if !src.SetPredicate(pred) {
			b.Fatal("pushdown did not arm")
		}
		fs := trace.FilterEvents(src, pred)
		for {
			if _, _, ok := fs.NextExec(); !ok {
				break
			}
			drained = trace.Drain(fs, drained)
			events += int64(len(drained))
		}
		if err := fs.Err(); err != nil {
			b.Fatal(err)
		}
		read += cr.n
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(100*float64(read)/(float64(b.N)*float64(len(data))), "read-pct")
}

func BenchmarkTraceGeneration(b *testing.B) {
	app, _ := workload.ByName("mozilla")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := app.Trace(experiments.DefaultSeed, i%app.Executions)
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkBinaryCodec(b *testing.B) {
	app, _ := workload.ByName("xemacs")
	tr := app.Trace(experiments.DefaultSeed, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := trace.WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf))
	}
}

// writeCounter counts bytes without retaining them.
type writeCounter int

func (w *writeCounter) Write(p []byte) (int, error) {
	*w += writeCounter(len(p))
	return len(p), nil
}

func BenchmarkFullSimulation(b *testing.B) {
	app, _ := workload.ByName("writer")
	traces := app.Traces(experiments.DefaultSeed)
	runner := sim.MustNewRunner(sim.DefaultConfig())
	var ios int
	for _, tr := range traces {
		ios += tr.IOCount()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := pcapPolicy(core.DefaultConfig(core.VariantBase))
		if _, err := runner.RunApp(traces, pol); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ios)*float64(b.N)/b.Elapsed().Seconds(), "ios/s")
}

func BenchmarkPredictorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		rows, err := s.Predictors()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(100*r.Saved, r.Policy+"-saved%")
			}
		}
	}
}

func BenchmarkDeviceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		rows, err := s.DevicesExperiment()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(100*r.PCAPSaved, fmt.Sprintf("be%.1fs-pcap-saved%%", r.Breakeven))
			}
		}
	}
}

func BenchmarkAblationUnlearn(b *testing.B) {
	for _, unlearn := range []bool{false, true} {
		name := "paper"
		if unlearn {
			name = "unlearn"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runner := sim.MustNewRunner(sim.DefaultConfig())
				cfg := core.DefaultConfig(core.VariantBase)
				cfg.UnlearnMisses = unlearn
				counts, saved := runMozilla(b, runner, pcapPolicy(cfg))
				if i == b.N-1 {
					f := counts.Fractions()
					b.ReportMetric(100*f.Hit, "hit%")
					b.ReportMetric(100*f.Miss, "miss%")
					b.ReportMetric(100*saved, "saved%")
				}
			}
		})
	}
}

func BenchmarkClassicOnAccess(b *testing.B) {
	for _, f := range []predictor.Factory{
		classic.MustNewExpAverage(classic.DefaultExpAverageConfig()),
		classic.MustNewLShape(classic.DefaultLShapeConfig()),
		classic.MustNewAdaptiveTimeout(classic.DefaultAdaptiveTimeoutConfig()),
	} {
		b.Run(f.Name(), func(b *testing.B) {
			proc := f.NewProcess(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gap := 2 * trace.Second
				if i%3 == 0 {
					gap = 30 * trace.Second
				}
				proc.OnAccess(predictor.Access{Time: trace.Time(i) * gap})
			}
		})
	}
}

// --- Streaming pipeline ---------------------------------------------------

// BenchmarkRunAppMaterialized / BenchmarkRunAppStreaming compare the two
// ends of the pipeline: generating a whole workload into memory and
// simulating the slice, versus streaming executions one at a time through
// RunSource with a recycled buffer. Each iteration includes generation,
// so -benchmem shows the allocation gap between the paths.
func BenchmarkRunAppMaterialized(b *testing.B) {
	app, _ := workload.ByName("nedit")
	runner := sim.MustNewRunner(sim.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traces := app.Traces(experiments.DefaultSeed)
		pol := pcapPolicy(core.DefaultConfig(core.VariantBase))
		if _, err := runner.RunApp(traces, pol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAppStreaming(b *testing.B) {
	app, _ := workload.ByName("nedit")
	runner := sim.MustNewRunner(sim.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := pcapPolicy(core.DefaultConfig(core.VariantBase))
		if _, err := runner.RunSource(app.Stream(experiments.DefaultSeed), pol); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScalePeak measures the peak live heap while simulating an
// N×-scaled workload, sampled via the runner's period hook (a GC before
// each sample leaves only reachable memory). Materialized runs pin the
// whole scaled workload; streaming runs hold one execution — so the
// streaming peak stays flat as the scale grows.
func benchScalePeak(b *testing.B, scale int, streaming bool) {
	b.Helper()
	app, _ := workload.ByName("nedit")
	for i := 0; i < b.N; i++ {
		runner := sim.MustNewRunner(sim.DefaultConfig())
		var peak uint64
		period := 0
		runner.PeriodHook = func(sim.PeriodRecord) {
			period++
			if period%128 != 1 {
				return
			}
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		pol := pcapPolicy(core.DefaultConfig(core.VariantBase))
		src := trace.Scale(app.Stream(experiments.DefaultSeed), scale)
		if streaming {
			if _, err := runner.RunSource(src, pol); err != nil {
				b.Fatal(err)
			}
		} else {
			traces, err := trace.Collect(src)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := runner.RunApp(traces, pol); err != nil {
				b.Fatal(err)
			}
			runtime.KeepAlive(traces)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(peak)/1024, "peak-heap-KB")
		}
	}
}

func BenchmarkScalePeakMaterialized1(b *testing.B)  { benchScalePeak(b, 1, false) }
func BenchmarkScalePeakMaterialized10(b *testing.B) { benchScalePeak(b, 10, false) }
func BenchmarkScalePeakStreaming1(b *testing.B)     { benchScalePeak(b, 1, true) }
func BenchmarkScalePeakStreaming10(b *testing.B)    { benchScalePeak(b, 10, true) }

// --- Fleet engine ---------------------------------------------------------

// fleetBenchConfig is the shared fleet benchmark setup: n machines, one
// execution each, heterogeneous devices from the full catalog, the default
// six-app mix, and arrivals at a constant rate (one machine every 30
// virtual seconds), so the concurrently active set — sessions run tens of
// virtual minutes — is a few dozen machines regardless of fleet size.
func fleetBenchConfig(b *testing.B, n int) fleet.Config {
	b.Helper()
	pf, err := experiments.FleetPolicy("pcap", sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return fleet.Config{
		Machines:   n,
		Seed:       experiments.DefaultSeed,
		Executions: 1,
		Stagger:    trace.Time(n) * 30 * trace.Second,
		Policy:     pf,
	}
}

// benchFleet measures shared-clock fleet throughput (machines/s, events/s).
func benchFleet(b *testing.B, n int) {
	b.Helper()
	cfg := fleetBenchConfig(b, n)
	var events, machines int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fleet.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Machines != n || res.Executions != int64(n) {
			b.Fatalf("fleet ran %d machines / %d executions, want %d / %d",
				res.Machines, res.Executions, n, n)
		}
		events += res.TotalIOs
		machines += int64(res.Machines)
	}
	b.ReportMetric(float64(machines)/b.Elapsed().Seconds(), "machines/s")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkFleet1k(b *testing.B)  { benchFleet(b, 1000) }
func BenchmarkFleet10k(b *testing.B) { benchFleet(b, 10000) }

// BenchmarkFleetReplay1k is BenchmarkFleet1k on recorded traces instead
// of the synthetic generator: every session replays the six apps' first
// recorded executions (round-robin with timestamp warp), the path
// `pcapsim -fleet N -replay file` exercises.
func BenchmarkFleetReplay1k(b *testing.B) {
	var recorded []*trace.Trace
	for _, app := range workload.Apps() {
		recorded = append(recorded, app.Trace(experiments.DefaultSeed, 0))
	}
	cfg := fleetBenchConfig(b, 1000)
	cfg.Replay = recorded
	var machines int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fleet.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Machines != 1000 {
			b.Fatalf("fleet ran %d machines, want 1000", res.Machines)
		}
		machines += int64(res.Machines)
	}
	b.ReportMetric(float64(machines)/b.Elapsed().Seconds(), "machines/s")
}

// benchFleetPeakHeap measures the peak live heap during a fleet run,
// sampled by a GC-then-read goroutine — the number that demonstrates
// O(active machines) memory: at a constant arrival rate it stays
// near-flat from FleetPeakHeap1k to FleetPeakHeap10k while total work
// grows 10x. It is separate from the throughput benchmarks because the
// forced GCs distort timing.
func benchFleetPeakHeap(b *testing.B, n int) {
	b.Helper()
	cfg := fleetBenchConfig(b, n)
	for i := 0; i < b.N; i++ {
		stop := make(chan struct{})
		sampled := make(chan struct{})
		var peak uint64
		go func() {
			defer close(sampled)
			var ms runtime.MemStats
			for {
				select {
				case <-stop:
					return
				case <-time.After(150 * time.Millisecond):
					runtime.GC()
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peak {
						peak = ms.HeapAlloc
					}
				}
			}
		}()
		f, err := fleet.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		close(stop)
		<-sampled
		if i == b.N-1 {
			b.ReportMetric(float64(peak)/1024, "peak-heap-KB")
			b.ReportMetric(float64(res.PeakConcurrent), "peak-active")
		}
	}
}

func BenchmarkFleetPeakHeap1k(b *testing.B)  { benchFleetPeakHeap(b, 1000) }
func BenchmarkFleetPeakHeap10k(b *testing.B) { benchFleetPeakHeap(b, 10000) }

func BenchmarkPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewDefaultSuite()
		rows, err := s.Prefetch()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var g, p float64
			for _, r := range rows {
				g += r.Global.MissRate()
				p += r.PC.MissRate()
			}
			n := float64(len(rows))
			b.ReportMetric(100*g/n, "readahead-miss%")
			b.ReportMetric(100*p/n, "pc-miss%")
		}
	}
}

// Command tracegen generates the synthetic application traces used by the
// experiments and writes them to disk, one file per execution.
//
// Generation streams: executions are produced one at a time into a
// recycled buffer and written through the streaming encoder, so peak
// memory is one execution regardless of workload size.
//
// v2 files carry a seekable index footer by default (per-block offsets
// and column statistics, enabling parallel decode with predicate
// pushdown); -noindex omits it for strict byte-compatibility with
// pre-footer consumers — though footer-bearing files remain readable by
// them too.
//
// Usage:
//
//	tracegen -app mozilla -out traces/            # all executions, v1 binary
//	tracegen -app mozilla -format v2 -out traces/ # columnar v2 container
//	tracegen -app nedit -exec 3 -format text -out .   # one execution, text
//	tracegen -app all -out traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pcapsim/internal/cliutil"
	"pcapsim/internal/experiments"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

func main() {
	var (
		appFlag    = flag.String("app", "all", "application name or 'all'")
		execFlag   = flag.Int("exec", -1, "single execution index (default: all)")
		seedFlag   = flag.Uint64("seed", experiments.DefaultSeed, "workload seed")
		formatFlag = flag.String("format", "binary", "output trace format: "+cliutil.TraceFormats)
		outFlag    = flag.String("out", ".", "output directory")
		noIndex    = flag.Bool("noindex", false, "omit the seekable index footer from v2 files")
	)
	flag.Parse()

	var apps []*workload.App
	if *appFlag == "all" {
		apps = workload.Apps()
	} else {
		a, ok := workload.ByName(*appFlag)
		if !ok {
			fatal(fmt.Errorf("unknown application %q (known: %v)", *appFlag, workload.Names()))
		}
		apps = []*workload.App{a}
	}
	if *formatFlag != "binary" && *formatFlag != "v2" && *formatFlag != "text" {
		fatal(cliutil.UnknownFormatError(*formatFlag, cliutil.TraceFormats))
	}
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		fatal(err)
	}

	for _, a := range apps {
		if *execFlag >= a.Executions {
			fatal(fmt.Errorf("%s has %d executions; -exec %d out of range", a.Name, a.Executions, *execFlag))
		}
		src := a.Stream(*seedFlag)
		for {
			app, exec, ok := src.NextExec()
			if !ok {
				break
			}
			// The stream's recycled buffer holds the execution; borrow it
			// instead of copying.
			events := src.ExecEvents()
			if *execFlag >= 0 && exec != *execFlag {
				continue
			}
			ext := "pctr"
			switch *formatFlag {
			case "text":
				ext = "txt"
			case "v2":
				ext = "pct2"
			}
			path := filepath.Join(*outFlag, fmt.Sprintf("%s-%03d.%s", app, exec, ext))
			if err := writeTrace(path, app, exec, events, *formatFlag, !*noIndex); err != nil {
				fatal(err)
			}
			view := trace.Trace{App: app, Execution: exec, Events: events}
			fmt.Printf("%s: %d events, %d I/Os, %.1f s\n",
				path, view.Len(), view.IOCount(), view.Duration().Seconds())
		}
	}
}

func writeTrace(path, app string, exec int, events []trace.Event, format string, index bool) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		// A failed close after a clean encode still means a truncated
		// trace file; surface it.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	switch format {
	case "text":
		view := &trace.Trace{App: app, Execution: exec, Events: events}
		if err := trace.WriteText(f, view); err != nil {
			return err
		}
	case "v2":
		enc, err := trace.NewBlockEncoder(f, app, exec, len(events))
		if err != nil {
			return err
		}
		var ib *trace.IndexBuilder
		if index {
			ib = trace.NewIndexBuilder()
			if err := enc.SetIndex(ib); err != nil {
				return err
			}
		}
		for _, e := range events {
			if err := enc.Write(e); err != nil {
				return err
			}
		}
		if err := enc.Close(); err != nil {
			return err
		}
		if ib != nil {
			if err := ib.WriteFooter(f); err != nil {
				return err
			}
		}
	default:
		enc, err := trace.NewEncoder(f, app, exec, len(events))
		if err != nil {
			return err
		}
		for _, e := range events {
			if err := enc.Write(e); err != nil {
				return err
			}
		}
		if err := enc.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

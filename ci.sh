#!/usr/bin/env bash
# Tier-1 gate. Run before merging:
#
#   ./ci.sh          # build + vet + tests + race detector
#   ./ci.sh quick    # build + vet + tests (skips the race pass)
#
# The race pass re-runs every test under the race detector — this is what
# proves the parallel experiment engine (internal/experiments.RunMatrix,
# internal/workload.TraceCache) is data-race free, so do not skip it when
# touching the engine, the simulator, or the workload generators.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt -l"
fmt_out="$(gofmt -l .)"
if [[ -n "$fmt_out" ]]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt_out" >&2
	exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

# Fast lint smoke: the analyzer corpora and CFG unit tests finish in a
# couple of seconds and catch a broken analyzer before the full-tree
# lint pass and the race suite spend minutes on it.
echo "== lint smoke (go test -short ./internal/lint)"
go test -short -count=1 ./internal/lint

# Blocking: the repo's own static-analysis suite (internal/lint). Any
# finding — determinism, pool-ownership, context/goroutine discipline,
# float fold order, error handling, or a malformed suppression
# directive — fails the gate; fix it or suppress it with a reasoned
# //pcaplint:ignore. The JSON finding list is kept as a build artifact
# (pcaplint.json, gitignored) for tooling.
echo "== pcaplint ./... (artifact: pcaplint.json)"
if ! go run ./cmd/pcaplint -json ./... >pcaplint.json; then
	echo "ci: pcaplint findings:" >&2
	cat pcaplint.json >&2
	exit 1
fi

echo "== go test ./..."
go test ./...

if [[ "${1:-}" != "quick" ]]; then
	# -short trims the differential determinism test to one worker count
	# and the streaming differential test to a reduced app × policy matrix
	# (the race detector is 5-20x slower and the full matrix blows the
	# default 10m per-package budget on small machines); every concurrent
	# code path — including the streamed RunSource pipeline — still runs
	# under the detector.
	echo "== go test -race -short ./..."
	go test -race -short -timeout 30m ./...
fi

# Server smoke: boot a real pcapd, drive it with pcapload at 32
# concurrent clients over loopback, and shut it down with SIGTERM. This
# is blocking — a failed job, a non-zero pcapload exit, or an unclean
# drain fails the gate. The recorded run (jobs/s, events/s, latency) is
# appended to the bench artifact below so it lands in BENCH_PR*.json
# alongside the in-process benchmarks. LOAD_TIME stretches the window
# for recorded runs; the default keeps CI fast.
echo "== pcapd/pcapload smoke (32 clients, ${LOAD_TIME:-3s})"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
go build -o "${smoke_dir}/pcapd" ./cmd/pcapd
go build -o "${smoke_dir}/pcapload" ./cmd/pcapload
"${smoke_dir}/pcapd" -addr 127.0.0.1:0 -addrfile "${smoke_dir}/addr" 2>"${smoke_dir}/pcapd.log" &
pcapd_pid=$!
for _ in $(seq 1 100); do
	[[ -s "${smoke_dir}/addr" ]] && break
	kill -0 "${pcapd_pid}" 2>/dev/null || break
	sleep 0.1
done
if [[ ! -s "${smoke_dir}/addr" ]]; then
	echo "ci: pcapd failed to start:" >&2
	cat "${smoke_dir}/pcapd.log" >&2
	exit 1
fi
"${smoke_dir}/pcapload" -addr "$(cat "${smoke_dir}/addr")" -c 32 \
	-duration "${LOAD_TIME:-3s}" -benchline | tee "${smoke_dir}/load.txt"
kill -TERM "${pcapd_pid}"
wait "${pcapd_pid}"

# Hot-path benchmarks. The sweep itself stays non-blocking (a failed
# bench run or missing artifact never fails the gate), but the recorded
# throughput trajectory now pays rent: once the JSON report is written,
# the benchjson fitness gate compares the headline throughput metrics
# (FullSimulation ios/s, v2 decode events/s) against a baseline report
# and FAILS the build on a >10% regression.
#
# The default baseline is self-anchoring: the committed version of the
# current artifact (snapshotted before the fresh sweep overwrites it),
# falling back to the previous PR's artifact when none exists yet. This
# keeps the gate about *this tree's* code — absolute throughput drifts
# with the machine across days (measured ~20% between the PR 5 and PR 6
# recordings with bit-identical code; see EXPERIMENTS.md), so gating
# across machine-days compares hardware, not code. Point BENCH_BASELINE
# at an older BENCH_PR*.json for an explicit cross-PR comparison, or
# disable with BENCH_GATE=off on a known-noisy runner. The default
# filter is the allocation-sensitive hot path; BENCH_FILTER='.' sweeps
# everything.
bench_artifact="${BENCH_ARTIFACT:-bench.txt}"
bench_filter="${BENCH_FILTER:-FSCache|TableTrain|TableLookup|CacheFilter|RunApp(Materialized|Streaming)\$|FullSimulation|PCAPOnAccess\$|DecodeV[12]\$|DecodeV2(Parallel|Pushdown)\$|Fleet(1k|10k)\$|FleetReplay1k\$|PcapdSustained\$|Counters(Coalesced|Atomic|Mutex)\$}"
echo "== go test -bench (hot path) -benchmem (artifact: ${bench_artifact})"
if go test -run '^$' -bench "${bench_filter}" -benchmem -benchtime "${BENCH_TIME:-1s}" . >"${bench_artifact}" 2>&1; then
	# PcaplintFull runs in its own process, appended to the artifact: it
	# is recorded for trend visibility but deliberately NOT in the gate
	# metric list below (one loader-bound iteration, stdlib re-type-check
	# dominates — far too noisy for the 10% threshold), and its one-shot
	# ~700 MB loader heap measurably perturbs the allocation-sensitive
	# hot-path benches when they share the sweep process.
	echo "== go test -bench PcaplintFull (own process, not gated)"
	if ! go test -run '^$' -bench 'PcaplintFull$' -benchmem . >>"${bench_artifact}" 2>&1; then
		echo "ci: pcaplint bench failed (non-blocking); see ${bench_artifact}" >&2
	fi
	# Fold the recorded pcapload run (already in bench-line format) into
	# the artifact so the load-generator numbers ride the same JSON.
	if [[ -s "${smoke_dir}/load.txt" ]]; then
		cat "${smoke_dir}/load.txt" >>"${bench_artifact}"
	fi
	grep '^Benchmark' "${bench_artifact}" || true
	# Machine-readable perf trajectory: benchmark name → iterations and
	# every metric (ns/op, B/op, allocs/op, ios/s, events/s, ...). The
	# JSON is committed per PR so perf history survives in-repo; schema
	# in EXPERIMENTS.md.
	bench_json="${BENCH_JSON:-BENCH_PR10.json}"
	bench_baseline="${BENCH_BASELINE:-}"
	if [[ -z "${bench_baseline}" ]]; then
		if [[ -f "${bench_json}" ]]; then
			bench_baseline="$(mktemp)"
			cp "${bench_json}" "${bench_baseline}"
		else
			bench_baseline="BENCH_PR9.json"
		fi
	fi
	if go run ./cmd/benchjson -o "${bench_json}" "${bench_artifact}"; then
		echo "ci: wrote ${bench_json}"
		if [[ "${BENCH_GATE:-on}" != "off" && -f "${bench_baseline}" ]]; then
			echo "== benchjson -gate ${bench_baseline} (blocking)"
			go run ./cmd/benchjson -gate "${bench_baseline}" \
				-metrics "BenchmarkFullSimulation:ios/s,BenchmarkDecodeV2:events/s,BenchmarkDecodeV2Parallel:events/s,BenchmarkFleet1k:machines/s,BenchmarkPcapdSustained:jobs/s,BenchmarkCountersCoalesced:adds/s" \
				-threshold 0.10 "${bench_json}"
		fi
	else
		echo "ci: benchjson failed (non-blocking)" >&2
	fi
else
	echo "ci: benchmarks failed (non-blocking); see ${bench_artifact}" >&2
fi

echo "ci: all gates green"

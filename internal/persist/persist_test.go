package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pcapsim/internal/core"
	"pcapsim/internal/ltree"
	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

func trainedPCAP(t *testing.T, v core.Variant) *core.PCAP {
	t.Helper()
	p, err := core.New(core.DefaultConfig(v))
	if err != nil {
		t.Fatal(err)
	}
	proc := p.NewProcess(1)
	now := 0.0
	for i := 0; i < 5; i++ {
		proc.OnAccess(predictor.Access{Time: trace.FromSeconds(now), PC: trace.PC(0x100 * (i + 1)), FD: trace.FD(i)})
		now += 30
	}
	if p.Table().Len() == 0 {
		t.Fatal("training produced no entries")
	}
	return p
}

func TestTableRoundTrip(t *testing.T) {
	for _, v := range []core.Variant{core.VariantBase, core.VariantH, core.VariantF, core.VariantFH} {
		p := trainedPCAP(t, v)
		var buf bytes.Buffer
		if err := SaveTable(&buf, "demo", p); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		fresh, _ := core.New(core.DefaultConfig(v))
		if err := LoadTable(&buf, "demo", fresh); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		want := p.Table().Keys()
		got := fresh.Table().Keys()
		if len(got) != len(want) {
			t.Fatalf("%v: %d keys, want %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: key %d: %v != %v", v, i, got[i], want[i])
			}
		}
	}
}

func TestTableMismatches(t *testing.T) {
	p := trainedPCAP(t, core.VariantH)
	var buf bytes.Buffer
	if err := SaveTable(&buf, "demo", p); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// Wrong variant.
	other, _ := core.New(core.DefaultConfig(core.VariantBase))
	if err := LoadTable(bytes.NewReader(saved), "demo", other); !errors.Is(err, ErrMismatch) {
		t.Errorf("variant mismatch: %v", err)
	}
	// Wrong app.
	same, _ := core.New(core.DefaultConfig(core.VariantH))
	if err := LoadTable(bytes.NewReader(saved), "elsewhere", same); !errors.Is(err, ErrMismatch) {
		t.Errorf("app mismatch: %v", err)
	}
	// Empty app skips the check.
	if err := LoadTable(bytes.NewReader(saved), "", same); err != nil {
		t.Errorf("empty app rejected: %v", err)
	}
	// Wrong history length.
	cfg := core.DefaultConfig(core.VariantH)
	cfg.HistoryLen = 4
	short, _ := core.New(cfg)
	if err := LoadTable(bytes.NewReader(saved), "demo", short); !errors.Is(err, ErrMismatch) {
		t.Errorf("history mismatch: %v", err)
	}
	// Not a table document at all.
	lt, _ := ltree.New(ltree.DefaultConfig())
	var tbuf bytes.Buffer
	if err := SaveTree(&tbuf, "demo", lt); err != nil {
		t.Fatal(err)
	}
	fresh, _ := core.New(core.DefaultConfig(core.VariantH))
	if err := LoadTable(&tbuf, "demo", fresh); !errors.Is(err, ErrMismatch) {
		t.Errorf("tree-as-table: %v", err)
	}
	// Garbage input.
	if err := LoadTable(strings.NewReader("{"), "demo", fresh); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTreeRoundTrip(t *testing.T) {
	l, _ := ltree.New(ltree.DefaultConfig())
	proc := l.NewProcess(1)
	now := 0.0
	for i := 0; i < 8; i++ {
		proc.OnAccess(predictor.Access{Time: trace.FromSeconds(now)})
		if i%2 == 0 {
			now += 2
		} else {
			now += 40
		}
	}
	var buf bytes.Buffer
	if err := SaveTree(&buf, "demo", l); err != nil {
		t.Fatal(err)
	}
	fresh, _ := ltree.New(ltree.DefaultConfig())
	if err := LoadTree(&buf, "demo", fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Tree().Nodes() != l.Tree().Nodes() {
		t.Fatalf("restored %d nodes, want %d", fresh.Tree().Nodes(), l.Tree().Nodes())
	}
}

func TestTreeMismatches(t *testing.T) {
	l, _ := ltree.New(ltree.DefaultConfig())
	var buf bytes.Buffer
	if err := SaveTree(&buf, "demo", l); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()
	cfg := ltree.DefaultConfig()
	cfg.HistoryLen = 4
	other, _ := ltree.New(cfg)
	if err := LoadTree(bytes.NewReader(saved), "demo", other); !errors.Is(err, ErrMismatch) {
		t.Errorf("depth mismatch: %v", err)
	}
	same, _ := ltree.New(ltree.DefaultConfig())
	if err := LoadTree(bytes.NewReader(saved), "other", same); !errors.Is(err, ErrMismatch) {
		t.Errorf("app mismatch: %v", err)
	}
}

func TestTableFileHelpers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "init-files")
	p := trainedPCAP(t, core.VariantBase)

	// Loading before any save reports not-found without error: the
	// application's first-ever run.
	fresh, _ := core.New(core.DefaultConfig(core.VariantBase))
	found, err := LoadTableFile(dir, "demo", fresh)
	if err != nil || found {
		t.Fatalf("first run: found=%v err=%v", found, err)
	}

	path, err := SaveTableFile(dir, "demo", p)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "demo.PCAP.json" {
		t.Errorf("path %q", path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	found, err = LoadTableFile(dir, "demo", fresh)
	if err != nil || !found {
		t.Fatalf("reload: found=%v err=%v", found, err)
	}
	if fresh.Table().Len() != p.Table().Len() {
		t.Errorf("reloaded %d entries, want %d", fresh.Table().Len(), p.Table().Len())
	}
}

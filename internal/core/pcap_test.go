package core

import (
	"testing"

	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

// access builds a predictor access at t seconds.
func access(tSec float64, pc trace.PC, fd trace.FD) predictor.Access {
	return predictor.Access{Time: trace.FromSeconds(tSec), PC: pc, FD: fd, Access: trace.AccessRead}
}

func newBase(t *testing.T, v Variant) *PCAP {
	t.Helper()
	p, err := New(DefaultConfig(v))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFigure3Example replays the paper's Figure 3 walk-through: the path
// {PC1, PC2, PC1} at 0.1 s spacing, followed by a 20 s idle period. The
// first occurrence trains the table; the second occurrence predicts the
// idle period; a third occurrence followed closely by PC2 (subpath
// aliasing) schedules a shutdown that the wait-window cancels.
func TestFigure3Example(t *testing.T) {
	const pc1, pc2 = 0x1000, 0x2000
	p := newBase(t, VariantBase)
	proc := p.NewProcess(1)

	// First sequence: 0.1, 0.2, 0.3 — all decisions are backup (training).
	for i, tm := range []float64{0.1, 0.2, 0.3} {
		d := proc.OnAccess(access(tm, []trace.PC{pc1, pc2, pc1}[i], 3))
		if d.Source != predictor.SourceBackup {
			t.Fatalf("access %d: source %v during training", i, d.Source)
		}
	}
	if p.Table().Len() != 0 {
		t.Fatalf("table trained before any long idle period")
	}

	// Second sequence at 20.1, 20.2, 20.3: the 19.8 s gap trains
	// {PC1,PC2,PC1}; at 20.3 the signature matches and PCAP predicts.
	var last predictor.Decision
	for i, tm := range []float64{20.1, 20.2, 20.3} {
		last = proc.OnAccess(access(tm, []trace.PC{pc1, pc2, pc1}[i], 3))
	}
	if p.Table().Len() != 1 {
		t.Fatalf("table entries = %d after first long idle", p.Table().Len())
	}
	if last.Source != predictor.SourcePrimary || !last.Shutdown {
		t.Fatalf("second occurrence not predicted: %+v", last)
	}
	if last.Delay != trace.Second {
		t.Fatalf("primary delay %v, want the 1 s wait-window", last.Delay)
	}

	// Third sequence at 40.1..40.3 predicts again; PC2 arrives at 40.4 —
	// inside the wait-window — so the simulator would cancel the shutdown
	// (delay 1 s > 0.1 s gap). Path collection continues uninterrupted:
	// the signature now covers {PC1,PC2,PC1,PC2}.
	for i, tm := range []float64{40.1, 40.2, 40.3} {
		last = proc.OnAccess(access(tm, []trace.PC{pc1, pc2, pc1}[i], 3))
	}
	if last.Source != predictor.SourcePrimary {
		t.Fatalf("third occurrence not predicted: %+v", last)
	}
	d := proc.OnAccess(access(40.4, pc2, 3))
	if d.Source != predictor.SourceBackup {
		t.Fatalf("extended path should be untrained, got %+v", d)
	}
}

// TestSignatureReset verifies the paper's signature rule: after an idle
// period longer than breakeven, the signature is overwritten by the first
// I/O's PC; otherwise PCs accumulate.
func TestSignatureReset(t *testing.T) {
	p := newBase(t, VariantBase)
	proc := p.NewProcess(1)
	proc.OnAccess(access(0.1, 0x10, 3))
	proc.OnAccess(access(0.2, 0x20, 3)) // sig = 0x30
	proc.OnAccess(access(30, 0x40, 3))  // long gap: trains 0x30, sig = 0x40
	keys := p.Table().Keys()
	if len(keys) != 1 || keys[0].Sig != 0x30 {
		t.Fatalf("trained keys %v, want sig 0x30", keys)
	}
	proc.OnAccess(access(60, 0x40, 3)) // long gap: trains 0x40
	keys = p.Table().Keys()
	if len(keys) != 2 || keys[1].Sig != 0x40 {
		t.Fatalf("trained keys %v, want sigs 0x30 and 0x40", keys)
	}
}

// TestTrainingIsExactKey ensures the trained key is the one probed at the
// access preceding the idle period — including history and fd context.
func TestTrainingIsExactKey(t *testing.T) {
	cfg := DefaultConfig(VariantFH)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proc := p.NewProcess(1)
	proc.OnAccess(access(0.1, 0x10, 7))
	proc.OnAccess(access(30, 0x99, 3)) // trains {sig=0x10, hist=0, fd=7}
	keys := p.Table().Keys()
	if len(keys) != 1 {
		t.Fatalf("keys %v", keys)
	}
	k := keys[0]
	if k.Sig != 0x10 || !k.HasHist || k.Hist != 0 || !k.HasFD || k.FD != 7 {
		t.Fatalf("trained key %+v", k)
	}
}

// TestHistoryDisambiguation: with the h variant, the same signature under
// different idle histories is distinct; base PCAP conflates them.
func TestHistoryDisambiguation(t *testing.T) {
	run := func(v Variant) predictor.Decision {
		p := newBase(t, v)
		proc := p.NewProcess(1)
		// Build history "...01": a short then a long period, then train
		// sig 0x10 under that history.
		proc.OnAccess(access(1, 0x10, 3))
		proc.OnAccess(access(3, 0x10, 3))  // short period (2 s): hist 0
		proc.OnAccess(access(30, 0x10, 3)) // long: trains, hist now 01
		proc.OnAccess(access(60, 0x10, 3)) // long: trains sig 0x10 @ hist 01
		// New process: same signature but no history.
		proc2 := p.NewProcess(2)
		return proc2.OnAccess(access(100, 0x10, 3))
	}
	if d := run(VariantBase); d.Source != predictor.SourcePrimary {
		t.Fatalf("base variant should match on signature alone: %+v", d)
	}
	if d := run(VariantH); d.Source != predictor.SourceBackup {
		t.Fatalf("h variant should distinguish histories: %+v", d)
	}
}

// TestFDDisambiguation: the f variant distinguishes same-signature paths
// through different descriptors.
func TestFDDisambiguation(t *testing.T) {
	p := newBase(t, VariantF)
	proc := p.NewProcess(1)
	proc.OnAccess(access(1, 0x10, 4))
	proc.OnAccess(access(30, 0x10, 4)) // trains {0x10, fd 4}; sig reset
	d := proc.OnAccess(access(31, 0x10, 7))
	if d.Source != predictor.SourceBackup {
		t.Fatalf("fd 7 should not match entry trained for fd 4: %+v", d)
	}
	d = proc.OnAccess(access(90, 0x10, 4)) // long gap trains {2×0x10? no: reset}
	_ = d
	// Same signature with the trained descriptor matches.
	p2 := newBase(t, VariantF)
	proc3 := p2.NewProcess(1)
	proc3.OnAccess(access(1, 0x10, 4))
	proc3.OnAccess(access(30, 0x10, 4))
	d = proc3.OnAccess(access(60, 0x10, 4))
	if d.Source != predictor.SourcePrimary {
		t.Fatalf("same fd should match: %+v", d)
	}
}

// TestWaitWindowFiltersHistory: idle periods shorter than the wait-window
// do not enter the history vector.
func TestWaitWindowFiltersHistory(t *testing.T) {
	p := newBase(t, VariantH)
	proc := p.NewProcess(1)
	proc.OnAccess(access(1.0, 0x10, 3))
	proc.OnAccess(access(1.5, 0x20, 3)) // 0.5 s gap: filtered, no history bit
	proc.OnAccess(access(30, 0x30, 3))  // long: trains {0x30-sum, hist=0 (empty)}
	keys := p.Table().Keys()
	if len(keys) != 1 {
		t.Fatalf("keys %v", keys)
	}
	if keys[0].Hist != 0 {
		t.Fatalf("filtered gap entered history: %+v", keys[0])
	}
	if keys[0].Sig != 0x30 {
		t.Fatalf("signature %x, want 0x30 (accumulated)", keys[0].Sig)
	}
}

func TestSharedTableAcrossProcesses(t *testing.T) {
	p := newBase(t, VariantBase)
	a := p.NewProcess(1)
	a.OnAccess(access(1, 0x10, 3))
	a.OnAccess(access(30, 0x10, 3)) // trains 0x10
	// A different process benefits immediately: per-application table.
	b := p.NewProcess(2)
	if d := b.OnAccess(access(31, 0x10, 3)); d.Source != predictor.SourcePrimary {
		t.Fatalf("process 2 did not see shared table: %+v", d)
	}
}

func TestBackupDecisionShape(t *testing.T) {
	cfg := DefaultConfig(VariantBase)
	p, _ := New(cfg)
	proc := p.NewProcess(1)
	d := proc.OnAccess(access(1, 0x10, 3))
	if !d.Shutdown || d.Delay != cfg.BackupTimeout || d.Source != predictor.SourceBackup {
		t.Fatalf("untrained decision %+v, want backup timeout", d)
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(VariantBase)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.WaitWindow = 0 },
		func(c *Config) { c.BackupTimeout = 0 },
		func(c *Config) { c.Breakeven = 0 },
		func(c *Config) { c.WaitWindow = c.Breakeven },
		func(c *Config) { c.Variant = VariantH; c.HistoryLen = 0 },
		func(c *Config) { c.Variant = VariantH; c.HistoryLen = 17 },
		func(c *Config) { c.TableBound = -1 },
	}
	for i, m := range bad {
		c := DefaultConfig(VariantBase)
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestVariantNames(t *testing.T) {
	names := map[Variant]string{
		VariantBase: "PCAP", VariantH: "PCAPh", VariantF: "PCAPf", VariantFH: "PCAPfh",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d = %q", v, v.String())
		}
	}
	if Variant(9).String() != "variant(9)" {
		t.Error("unknown variant formatting")
	}
	if VariantBase.UsesHistory() || VariantBase.UsesFD() {
		t.Error("base variant claims augmentations")
	}
	if !VariantFH.UsesHistory() || !VariantFH.UsesFD() {
		t.Error("fh variant missing augmentations")
	}
}

func TestObserver(t *testing.T) {
	cfg := DefaultConfig(VariantBase)
	var trains, lookups, matches int
	cfg.Observer = func(ev ObserveEvent) {
		if ev.Trained {
			trains++
		} else {
			lookups++
			if ev.Matched {
				matches++
			}
		}
	}
	p, _ := New(cfg)
	proc := p.NewProcess(1)
	proc.OnAccess(access(1, 0x10, 3))
	proc.OnAccess(access(30, 0x10, 3))
	proc.OnAccess(access(60, 0x10, 3))
	// Both long gaps fire a training event (the second is an idempotent
	// re-train of the same key); the reset signature 0x10 matches at both
	// later accesses.
	if trains != 2 || lookups != 3 || matches != 2 {
		t.Errorf("trains=%d lookups=%d matches=%d", trains, lookups, matches)
	}
}

func TestHistoryMask(t *testing.T) {
	if histMask(0) != 0 {
		t.Error("mask(0)")
	}
	if histMask(3) != 0b111 {
		t.Error("mask(3)")
	}
	if histMask(16) != 0xffff || histMask(20) != 0xffff {
		t.Error("mask(>=16)")
	}
}

func TestStateSize(t *testing.T) {
	p := newBase(t, VariantBase)
	if p.StateSize() != 0 {
		t.Error("fresh predictor has state")
	}
	proc := p.NewProcess(1)
	proc.OnAccess(access(1, 0x10, 3))
	proc.OnAccess(access(30, 0x10, 3))
	if p.StateSize() != 1 {
		t.Errorf("state size %d", p.StateSize())
	}
}

// TestUnlearnMisses: with the option on, an entry that fires into a short
// period is retracted; with it off (the paper's behaviour), it keeps
// firing.
func TestUnlearnMisses(t *testing.T) {
	run := func(unlearn bool) int {
		cfg := DefaultConfig(VariantBase)
		cfg.UnlearnMisses = unlearn
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		proc := p.NewProcess(1)
		proc.OnAccess(access(1, 0x10, 3))
		proc.OnAccess(access(30, 0x10, 3)) // long gap trains {0x10}
		primaries := 0
		now := 30.0
		for i := 0; i < 5; i++ {
			// The signature {0x10} fires at the start of each round…
			now += 30
			d := proc.OnAccess(access(now, 0x10, 3))
			if d.Source == predictor.SourcePrimary {
				primaries++
			}
			// …but a different access follows after only 3 s, so every
			// primary prediction above was a misprediction.
			now += 3
			proc.OnAccess(access(now, 0x20, 3))
		}
		return primaries
	}
	withUnlearn := run(true)
	withoutUnlearn := run(false)
	if withoutUnlearn != 5 {
		t.Fatalf("paper behaviour should keep firing: %d primary decisions", withoutUnlearn)
	}
	if withUnlearn >= 3 {
		t.Fatalf("unlearning did not retract the entry: %d primary decisions", withUnlearn)
	}
}

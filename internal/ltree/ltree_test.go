package ltree

import (
	"testing"

	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

func access(tSec float64) predictor.Access {
	return predictor.Access{Time: trace.FromSeconds(tSec)}
}

func newLT(t *testing.T) *LT {
	t.Helper()
	l, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.HistoryLen = 0 },
		func(c *Config) { c.HistoryLen = 33 },
		func(c *Config) { c.WaitWindow = 0 },
		func(c *Config) { c.BackupTimeout = -1 },
		func(c *Config) { c.Breakeven = 0 },
		func(c *Config) { c.WaitWindow = c.Breakeven + 1 },
		func(c *Config) { c.ConfidenceMax = 0 },
		func(c *Config) { c.ConfidenceThreshold = 0 },
		func(c *Config) { c.ConfidenceThreshold = c.ConfidenceMax + 1 },
	}
	for i, m := range bad {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestLearnsRepetitivePattern replays the paper's Figure 2 behaviour: two
// short idle periods followed by a long one, repeating. After training,
// LT must predict the long period at the end of each group.
func TestLearnsRepetitivePattern(t *testing.T) {
	l := newLT(t)
	p := l.NewProcess(1)
	now := 0.0
	var atLongPosition []predictor.Decision
	for cycle := 0; cycle < 6; cycle++ {
		p.OnAccess(access(now))
		now += 2 // short
		p.OnAccess(access(now))
		now += 2 // short
		d := p.OnAccess(access(now))
		atLongPosition = append(atLongPosition, d)
		now += 30 // long
	}
	// Early cycles train; late cycles must predict with the wait-window.
	last := atLongPosition[len(atLongPosition)-1]
	if last.Source != predictor.SourcePrimary || last.Delay != trace.Second {
		t.Fatalf("pattern not learned: %+v", last)
	}
	// And the mid-group positions must not predict long.
	p2 := l.NewProcess(2)
	p2.OnAccess(access(1000))
	p2.OnAccess(access(1002))
	d := p2.OnAccess(access(1032)) // history: short, long — next is short
	_ = d
	dMid := p2.OnAccess(access(1034)) // history: long, short... position before 2nd short
	if dMid.Source == predictor.SourcePrimary {
		t.Fatalf("mid-group position predicted long: %+v", dMid)
	}
}

func TestUntrainedFallsToBackup(t *testing.T) {
	l := newLT(t)
	p := l.NewProcess(1)
	d := p.OnAccess(access(0))
	if d.Source != predictor.SourceBackup || d.Delay != l.Config().BackupTimeout {
		t.Fatalf("first decision %+v, want backup", d)
	}
}

func TestSubWaitWindowGapsFiltered(t *testing.T) {
	l := newLT(t)
	p := l.NewProcess(1)
	p.OnAccess(access(0))
	p.OnAccess(access(0.5)) // filtered: no history, no training
	if l.Tree().Nodes() != 0 {
		t.Fatalf("filtered gap trained the tree: %d nodes", l.Tree().Nodes())
	}
}

func TestBackupNeverSuppressed(t *testing.T) {
	// Even when the tree confidently predicts a short period, the backup
	// timeout remains the floor: the decision still schedules a shutdown
	// at the timer.
	l := newLT(t)
	p := l.NewProcess(1)
	now := 0.0
	var d predictor.Decision
	for i := 0; i < 10; i++ {
		d = p.OnAccess(access(now))
		now += 2 // all short periods: tree learns "short follows short"
	}
	if !d.Shutdown || d.Source != predictor.SourceBackup || d.Delay != l.Config().BackupTimeout {
		t.Fatalf("confident-short decision %+v, want backup floor", d)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	l := newLT(t)
	p := l.NewProcess(1)
	now := 0.0
	for cycle := 0; cycle < 5; cycle++ {
		p.OnAccess(access(now))
		now += 2
		p.OnAccess(access(now))
		now += 30
	}
	snap := l.Tree().Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot after training")
	}
	fresh := newLT(t)
	fresh.Tree().Restore(snap)
	if fresh.Tree().Nodes() != l.Tree().Nodes() {
		t.Fatalf("restored %d nodes, want %d", fresh.Tree().Nodes(), l.Tree().Nodes())
	}
	snap2 := fresh.Tree().Snapshot()
	if len(snap2) != len(snap) {
		t.Fatalf("second snapshot has %d nodes, want %d", len(snap2), len(snap))
	}
	for i := range snap {
		if snap[i] != snap2[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, snap[i], snap2[i])
		}
	}
	// The restored tree behaves like the original.
	pOld := l.NewProcess(2)
	pNew := fresh.NewProcess(2)
	now2 := 5000.0
	for i := 0; i < 4; i++ {
		dOld := pOld.OnAccess(access(now2))
		dNew := pNew.OnAccess(access(now2))
		if dOld != dNew {
			t.Fatalf("decision %d differs: %+v vs %+v", i, dOld, dNew)
		}
		now2 += 2
	}
}

func TestReliableBackoff(t *testing.T) {
	// A deep once-visited node must not override a reliable shallow node.
	tree := NewTree()
	cfg := DefaultConfig()
	// Train depth-1 node [0] as long, repeatedly.
	for i := 0; i < 4; i++ {
		tree.train(0b0, 1, true, &cfg)
	}
	// Train an 8-deep path once, with a short outcome.
	tree.train(0b0, 8, false, &cfg)
	counter, ok := tree.predict(0b0, 8)
	if !ok {
		t.Fatal("prediction unavailable")
	}
	if counter < cfg.ConfidenceThreshold {
		t.Fatalf("deep weak node overrode reliable shallow node: counter %d", counter)
	}
}

func TestStateSizeAndName(t *testing.T) {
	l := newLT(t)
	if l.Name() != "LT" {
		t.Errorf("name %q", l.Name())
	}
	if l.StateSize() != 0 {
		t.Error("fresh tree has nodes")
	}
	p := l.NewProcess(1)
	p.OnAccess(access(0))
	// The first period carries no history context, so it trains nothing;
	// the second period trains under the history of the first.
	p.OnAccess(access(10))
	if l.StateSize() != 0 {
		t.Error("first period trained despite empty history")
	}
	p.OnAccess(access(12))
	if l.StateSize() == 0 {
		t.Error("training created no nodes")
	}
}

package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Seekable index footer ("PCI2")
//
// A v2 trace file may end with an index footer describing every
// execution and block in the file: where each one starts, how many
// events it holds, and conservative per-block column statistics (time
// range, pid set, PC range). The footer is what turns a multi-GB trace
// from a mandatory full scan into a seekable structure — predicate
// pushdown (Predicate.MatchMeta) selects blocks from the index and the
// decoder seeks straight to them, never reading the skipped bytes.
//
// The footer is strictly backward compatible: it sits after the last
// execution, and a sequential BlockDecoder that reaches its leading
// "PCI2" magic skips it via the skip-length field and keeps scanning —
// so concatenated trace files (each trailing its own footer) still
// decode in full, and a footer at EOF reads as a clean end of stream.
// Old files without a footer keep working (ReadIndex reports "no
// index", and every consumer falls back to the sequential scan).
//
// Footer layout (all integers varint unless noted):
//
//	magic   "PCI2" (4 bytes)
//	skip    uint32 (little endian): bytes remaining after this field,
//	        through the trailing magic — how far a forward-streaming
//	        reader jumps to land just past the footer (equals length)
//	body    region covered by the footer CRC:
//	    version   byte = 1
//	    coverage  uvarint: size of the data region the footer describes —
//	              must equal the footer's own start offset, which pins a
//	              footer to its stream (a concatenation's trailing footer
//	              covers only its own segment and is rejected)
//	    nexecs    uvarint
//	    per execution:
//	        app      uvarint length + bytes
//	        exec     uvarint
//	        events   uvarint
//	        offset   uvarint (absolute file offset of the "PCT2" magic)
//	        nblocks  uvarint
//	        per block:
//	            offset   uvarint delta from the previous record's offset
//	                     (first delta is from the execution offset)
//	            events   uvarint
//	            ios      uvarint
//	            forks    uvarint
//	            mintime  uvarint
//	            maxtime  uvarint delta from mintime
//	            npids    uvarint
//	            pids     first varint, then uvarint deltas (sorted, unique)
//	            pcmin    uvarint
//	            pcmax    uvarint delta from pcmin
//	crc32   uint32 (little endian, IEEE) of the body
//	length  uint32 (little endian): bytes from the leading magic through
//	        the CRC — the footer's size excluding this field and the
//	        trailer magic (numerically equal to skip)
//	magic   "PCI2" (4 bytes, the file's final bytes)
//
// Detection walks backward: the trailing magic marks "a footer may be
// present", the length field locates its start, and the leading magic
// plus CRC confirm it. The CRC covers the body, so any single-bit flip
// inside the footer is detected (a flip in the trailer magic makes the
// file look index-less, which is the safe fallback; a flip in the
// length field moves the claimed start, where the leading-magic and CRC
// checks reject it). Structural validation on top of the CRC — offsets
// strictly increasing and inside the data region, block event counts
// summing to the execution's — means a footer that passes ReadIndex
// can be trusted for seeking.

const indexMagic = "PCI2"

const indexVersion = 1

// BlockMeta is one block's index entry: its file offset plus the exact
// column statistics pushdown predicates are evaluated against.
type BlockMeta struct {
	// Offset is the absolute file offset of the block's "PCB2" magic.
	Offset int64
	// Events, IOs and Forks are the block's event populations.
	Events, IOs, Forks int
	// MinTime and MaxTime span the block's event timestamps.
	MinTime, MaxTime Time
	// Pids is the sorted set of process ids appearing in the block.
	Pids []PID
	// PCMin and PCMax bound the program counters of the block's I/O
	// events; both are zero when the block has no I/O.
	PCMin, PCMax PC
}

// ExecMeta is one execution's index entry.
type ExecMeta struct {
	// App and Exec identify the execution (the header's app name and
	// execution number).
	App  string
	Exec int
	// Events is the execution's declared event count.
	Events uint64
	// Offset is the absolute file offset of the execution's "PCT2" magic.
	Offset int64
	// Blocks lists the execution's blocks in file order.
	Blocks []BlockMeta
}

// Index is a v2 trace file's decoded index footer.
type Index struct {
	Execs []ExecMeta
}

// Blocks returns the total number of indexed blocks.
func (x *Index) Blocks() int {
	n := 0
	for i := range x.Execs {
		n += len(x.Execs[i].Blocks)
	}
	return n
}

// IndexBuilder accumulates index metadata while one or more
// BlockEncoders write executions to the same file, then writes the
// footer. Attach it to each encoder with SetIndex (in file order —
// the builder tracks the running file offset), and call WriteFooter
// after the last encoder's Close.
type IndexBuilder struct {
	off int64
	idx Index
}

// NewIndexBuilder returns a builder whose running offset starts at 0
// (the encoders' output begins at the start of the file).
func NewIndexBuilder() *IndexBuilder { return &IndexBuilder{} }

// beginExec records the next execution's identity at the current offset
// and advances past its wire header.
func (b *IndexBuilder) beginExec(app string, exec int, events uint64, headerWire int) {
	b.idx.Execs = append(b.idx.Execs, ExecMeta{
		App:    app,
		Exec:   exec,
		Events: events,
		Offset: b.off,
	})
	b.off += int64(headerWire)
}

// addBlock records a flushed block at the current offset and advances
// past its wire size.
func (b *IndexBuilder) addBlock(m BlockMeta, wire int) {
	m.Offset = b.off
	em := &b.idx.Execs[len(b.idx.Execs)-1]
	em.Blocks = append(em.Blocks, m)
	b.off += int64(wire)
}

// Index returns the collected index. The returned value aliases the
// builder's state; treat it as read-only.
func (b *IndexBuilder) Index() *Index { return &b.idx }

// WriteFooter appends the index footer to w, which must be positioned at
// the end of the last encoded execution.
func (b *IndexBuilder) WriteFooter(w io.Writer) error {
	body := []byte{indexVersion}
	// Coverage: the footer describes exactly the b.off data bytes before
	// it. A reader finding the footer anywhere else (e.g. the last
	// footer of a concatenation, whose offsets are segment-relative)
	// must not seek by it.
	body = binary.AppendUvarint(body, uint64(b.off))
	body = binary.AppendUvarint(body, uint64(len(b.idx.Execs)))
	for i := range b.idx.Execs {
		em := &b.idx.Execs[i]
		body = binary.AppendUvarint(body, uint64(len(em.App)))
		body = append(body, em.App...)
		body = binary.AppendUvarint(body, uint64(em.Exec))
		body = binary.AppendUvarint(body, em.Events)
		body = binary.AppendUvarint(body, uint64(em.Offset))
		body = binary.AppendUvarint(body, uint64(len(em.Blocks)))
		prevOff := em.Offset
		for j := range em.Blocks {
			bm := &em.Blocks[j]
			body = binary.AppendUvarint(body, uint64(bm.Offset-prevOff))
			prevOff = bm.Offset
			body = binary.AppendUvarint(body, uint64(bm.Events))
			body = binary.AppendUvarint(body, uint64(bm.IOs))
			body = binary.AppendUvarint(body, uint64(bm.Forks))
			body = binary.AppendUvarint(body, uint64(bm.MinTime))
			body = binary.AppendUvarint(body, uint64(bm.MaxTime-bm.MinTime))
			body = binary.AppendUvarint(body, uint64(len(bm.Pids)))
			for k, pid := range bm.Pids {
				if k == 0 {
					body = binary.AppendVarint(body, int64(pid))
				} else {
					body = binary.AppendUvarint(body, uint64(pid)-uint64(bm.Pids[k-1]))
				}
			}
			body = binary.AppendUvarint(body, uint64(bm.PCMin))
			body = binary.AppendUvarint(body, uint64(bm.PCMax-bm.PCMin))
		}
	}
	var out []byte
	out = append(out, indexMagic...)
	var le [12]byte
	// skip: body+crc+length+trailer — everything after this field.
	binary.LittleEndian.PutUint32(le[:4], uint32(len(body)+12))
	out = append(out, le[:4]...)
	out = append(out, body...)
	binary.LittleEndian.PutUint32(le[4:8], crc32.ChecksumIEEE(body))
	out = append(out, le[4:8]...)
	binary.LittleEndian.PutUint32(le[8:], uint32(len(out))) // magic+skip+body+crc
	out = append(out, le[8:]...)
	out = append(out, indexMagic...)
	_, err := w.Write(out)
	return err
}

// failIndex wraps an index-footer validation error.
func failIndex(format string, args ...any) error {
	return fmt.Errorf("%w: index footer: %s", ErrBadFormat, fmt.Sprintf(format, args...))
}

// ReadIndex looks for an index footer at the end of r and decodes it.
// It returns (nil, nil) when the file carries no footer — the sequential
// scan is then the only access path — and an error when a footer is
// present but truncated, corrupt, or structurally inconsistent. The
// reader's position is unspecified afterwards; seek before reusing it.
func ReadIndex(r io.ReadSeeker) (*Index, error) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	const tail = 8 // length field + trailer magic
	if size < tail {
		return nil, nil
	}
	var tb [tail]byte
	if _, err := r.Seek(size-tail, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, tb[:]); err != nil {
		return nil, err
	}
	if string(tb[4:]) != indexMagic {
		return nil, nil // no footer: plain sequential file
	}
	flen := int64(binary.LittleEndian.Uint32(tb[:4]))
	// Minimum footer: magic + skip length + version + coverage + nexecs=0 + crc.
	if flen < 15 || flen+tail > size {
		return nil, failIndex("length %d out of range for a %d-byte file", flen, size)
	}
	start := size - tail - flen
	buf := make([]byte, flen)
	if _, err := r.Seek(start, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if string(buf[:4]) != indexMagic {
		return nil, failIndex("bad magic %q", buf[:4])
	}
	if skip := int64(binary.LittleEndian.Uint32(buf[4:8])); skip != flen {
		return nil, failIndex("skip length %d inconsistent with footer length %d", skip, flen)
	}
	body := buf[8 : flen-4]
	stored := binary.LittleEndian.Uint32(buf[flen-4:])
	if crc := crc32.ChecksumIEEE(body); crc != stored {
		return nil, failIndex("checksum mismatch: stored %08x, computed %08x", stored, crc)
	}
	return parseIndex(body, start)
}

// parseIndex decodes and structurally validates the footer body.
// dataEnd is the file offset the footer starts at — every record offset
// must fall strictly inside [0, dataEnd).
func parseIndex(body []byte, dataEnd int64) (*Index, error) {
	p := 0
	uv := func(what string) (uint64, error) {
		v, np := uvarintAt(body, p)
		if np < 0 {
			return 0, failIndex("truncated %s", what)
		}
		p = np
		return v, nil
	}
	if body[0] != indexVersion {
		return nil, failIndex("unsupported version %d", body[0])
	}
	p = 1
	coverage, err := uv("coverage")
	if err != nil {
		return nil, err
	}
	if int64(coverage) != dataEnd {
		// The footer describes a different (usually shorter) data region
		// — e.g. the trailing footer of concatenated files, whose
		// offsets are segment-relative. Seeking by it would be wrong.
		return nil, failIndex("footer covers %d bytes but sits after %d — not this stream's index", coverage, dataEnd)
	}
	nexecs, err := uv("execution count")
	if err != nil {
		return nil, err
	}
	if nexecs > uint64(len(body)) { // each entry needs at least one byte
		return nil, failIndex("execution count %d exceeds footer size", nexecs)
	}
	idx := &Index{}
	prevEnd := int64(0) // previous record's offset + 1 (offsets strictly increase)
	for e := uint64(0); e < nexecs; e++ {
		var em ExecMeta
		nameLen, err := uv("app name length")
		if err != nil {
			return nil, err
		}
		if nameLen > uint64(len(body)-p) {
			return nil, failIndex("app name overruns footer")
		}
		em.App = string(body[p : p+int(nameLen)])
		p += int(nameLen)
		exec, err := uv("execution number")
		if err != nil {
			return nil, err
		}
		em.Exec = int(exec)
		if em.Events, err = uv("event count"); err != nil {
			return nil, err
		}
		off, err := uv("execution offset")
		if err != nil {
			return nil, err
		}
		em.Offset = int64(off)
		if em.Offset < prevEnd || em.Offset >= dataEnd {
			return nil, failIndex("execution %d offset %d out of order or past the data region (%d)",
				em.Exec, em.Offset, dataEnd)
		}
		prevEnd = em.Offset + 1
		nblocks, err := uv("block count")
		if err != nil {
			return nil, err
		}
		if nblocks > uint64(len(body)) {
			return nil, failIndex("block count %d exceeds footer size", nblocks)
		}
		var sum uint64
		for b := uint64(0); b < nblocks; b++ {
			var bm BlockMeta
			delta, err := uv("block offset")
			if err != nil {
				return nil, err
			}
			prev := em.Offset
			if b > 0 {
				prev = em.Blocks[b-1].Offset
			}
			bm.Offset = prev + int64(delta)
			if bm.Offset < prevEnd || bm.Offset >= dataEnd {
				return nil, failIndex("block offset %d out of order or past the data region (%d)",
					bm.Offset, dataEnd)
			}
			prevEnd = bm.Offset + 1
			events, err := uv("block event count")
			if err != nil {
				return nil, err
			}
			if events == 0 || events > maxBlockEvents {
				return nil, failIndex("block event count %d out of range", events)
			}
			bm.Events = int(events)
			ios, err := uv("block io count")
			if err != nil {
				return nil, err
			}
			forks, err := uv("block fork count")
			if err != nil {
				return nil, err
			}
			if ios > events || forks > events {
				return nil, failIndex("block populations %d/%d exceed events %d", ios, forks, events)
			}
			bm.IOs, bm.Forks = int(ios), int(forks)
			minT, err := uv("block min time")
			if err != nil {
				return nil, err
			}
			dT, err := uv("block time span")
			if err != nil {
				return nil, err
			}
			bm.MinTime = Time(minT)
			bm.MaxTime = bm.MinTime + Time(dT)
			npids, err := uv("block pid count")
			if err != nil {
				return nil, err
			}
			if npids > events {
				return nil, failIndex("block pid count %d exceeds events %d", npids, events)
			}
			bm.Pids = make([]PID, npids)
			for k := range bm.Pids {
				if k == 0 {
					v, np := varintAt(body, p)
					if np < 0 {
						return nil, failIndex("truncated pid set")
					}
					p = np
					bm.Pids[0] = PID(v)
					continue
				}
				d, err := uv("pid delta")
				if err != nil {
					return nil, err
				}
				if d == 0 {
					return nil, failIndex("pid set not strictly sorted")
				}
				bm.Pids[k] = PID(uint64(bm.Pids[k-1]) + d)
			}
			pcMin, err := uv("block pc min")
			if err != nil {
				return nil, err
			}
			dPC, err := uv("block pc span")
			if err != nil {
				return nil, err
			}
			bm.PCMin = PC(pcMin)
			bm.PCMax = bm.PCMin + PC(dPC)
			sum += events
			em.Blocks = append(em.Blocks, bm)
		}
		if sum != em.Events {
			return nil, failIndex("execution %d blocks hold %d events, header declares %d",
				em.Exec, sum, em.Events)
		}
		idx.Execs = append(idx.Execs, em)
	}
	if p != len(body) {
		return nil, failIndex("%d trailing bytes", len(body)-p)
	}
	return idx, nil
}

// WriteColumnarIndexed encodes the traces to w as one v2 columnar file —
// each trace one execution, in order — followed by the index footer. It
// is the indexed counterpart of calling WriteColumnar per trace.
func WriteColumnarIndexed(w io.Writer, traces ...*Trace) error {
	ib := NewIndexBuilder()
	for _, t := range traces {
		enc, err := NewBlockEncoder(w, t.App, t.Execution, len(t.Events))
		if err != nil {
			return err
		}
		if err := enc.SetIndex(ib); err != nil {
			return err
		}
		for _, e := range t.Events {
			if err := enc.Write(e); err != nil {
				return err
			}
		}
		if err := enc.Close(); err != nil {
			return err
		}
	}
	return ib.WriteFooter(w)
}

package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTestModule lays out a small module with a three-package
// dependency chain and one violation per layer, so the parallel loader
// has real DAG edges to schedule and real findings to order.
func writeTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module pcapsim\n\ngo 1.21\n")
	write("internal/sim/a.go", `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	write("internal/trace/b.go", `package trace

import "pcapsim/internal/sim"

func Total(m map[string]float64) float64 {
	_ = sim.Stamp()
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
`)
	write("cmd/x/main.go", `package main

import (
	"os"

	"pcapsim/internal/trace"
)

func main() {
	f, _ := os.Create("out")
	f.Close()
	_ = trace.Total(map[string]float64{"a": 1})
}
`)
	return root
}

// TestRunModuleWorkersDeterministic pins the parallel contract: the
// finding list is identical at any worker count, including a count far
// above the package count.
func TestRunModuleWorkersDeterministic(t *testing.T) {
	root := writeTestModule(t)
	seq, err := RunModuleWorkers(root, All(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("seeded module produced no findings")
	}
	// Every layer of the dependency chain must have contributed: the
	// leaf (nondet), the middle (floatdet over the map fold), and the
	// root command (errcheck).
	byAnalyzer := make(map[string]bool)
	for _, f := range seq {
		byAnalyzer[f.Analyzer] = true
	}
	for _, want := range []string{"nondet-source", "floatdet", "errcheck-lite"} {
		if !byAnalyzer[want] {
			t.Errorf("seeded module produced no %s finding: %v", want, seq)
		}
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := RunModuleWorkers(root, All(), nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d findings differ from sequential:\nseq: %v\npar: %v", workers, seq, par)
		}
	}
}

// TestCheckParallelPropagatesFailure pins error behavior: a type error
// in a leaf package surfaces as that package's error — not a confusing
// downstream import failure — at any worker count.
func TestCheckParallelPropagatesFailure(t *testing.T) {
	root := writeTestModule(t)
	bad := filepath.Join(root, "internal/sim/bad.go")
	if err := os.WriteFile(bad, []byte("package sim\n\nfunc Broken() int { return \"no\" }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		_, err := RunModuleWorkers(root, All(), nil, workers)
		if err == nil {
			t.Fatalf("workers=%d: broken module loaded without error", workers)
		}
		if got := err.Error(); !strings.Contains(got, "pcapsim/internal/sim") {
			t.Errorf("workers=%d: error %q does not name the failing package", workers, got)
		}
	}
}

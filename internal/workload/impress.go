package workload

// Impress: the Open Office presentation editor. Like writer it is an
// editor at heart, but preparing slides keeps pulling in graphic filters,
// templates and clipart — much more I/O per action — while the user still
// thinks for long stretches about slide content. Applying a template
// reads the same template data whether the user then studies the result
// or immediately flips onward, which makes it impress's ambiguous action.

// Impress I/O call sites.
const (
	impPCLibOpen  = 0x41651950
	impPCLibRead  = 0x48d0d864
	impPCDocOpen  = 0x081529a0
	impPCDocRead  = 0x0826ac88
	impPCTemplate = 0x4783bea4
	impPCClipart  = 0x08119e54
	impPCGfxRead  = 0x0812f034
	impPCAutoSave = 0x0810c49c
	impPCSaveWr   = 0x080919b8
	impPCFilter   = 0x414b9124 // graphics filter helper
	impPCFiltBulk = 0x4333bd90
	impPCFontRead = 0x48f62fcc // font/preview helper
	impPCFontBulk = 0x470093d0
	impPCBakRead  = 0x082a99bc // read-back during save
	impPCExitWr   = 0x0831929c
)

func init() {
	register(&App{
		Name:       "impress",
		Executions: 19,
		Describe: "Open Office presentation editor: graphics-heavy slide operations, " +
			"template and filter loads, long slide-composition periods.",
		generate: func(b *B) { interactiveSession(b, impressModel()) },
	})
}

func impressModel() *Model {
	return &Model{
		StartupPath: []Site{O(impPCLibOpen), R(impPCLibRead), O(impPCDocOpen), R(impPCDocRead)},
		BulkSite:    R(impPCLibRead),
		StartupBulk: 4400,
		StartupFD:   3,
		Helpers: []Helper{
			{ // graphics filter helper
				StartupPath: []Site{O(impPCFilter), R(impPCFiltBulk)},
				BulkSite:    R(impPCFiltBulk),
				StartupBulk: 800,
				FD:          3,
				AssistPath:  []Site{R(impPCFilter), R(impPCFiltBulk)},
				AssistBulk:  220,
			},
			{ // font/preview helper
				StartupPath: []Site{O(impPCFontRead), R(impPCFontBulk)},
				BulkSite:    R(impPCFontBulk),
				StartupBulk: 500,
				FD:          3,
				AssistPath:  []Site{R(impPCFontRead), R(impPCFontBulk)},
				AssistBulk:  80,
			},
		},
		Kinds: []Kind{
			{
				Name:        "compose-slide", // think about content
				Path:        []Site{R(impPCDocRead), R(impPCTemplate)},
				FD:          4,
				BulkSite:    R(impPCDocRead),
				Bulk:        150,
				BulkQuick:   50,
				DirtySite:   W(impPCAutoSave),
				Dirty:       0,
				Helper:      -1,
				WeightQuick: 1, WeightSettle: 4,
			},
			{
				Name:        "insert-clipart", // browse and insert clipart
				Path:        []Site{R(impPCClipart), R(impPCGfxRead)},
				FD:          5,
				BulkSite:    R(impPCGfxRead),
				Bulk:        600,
				BulkQuick:   200,
				DirtySite:   W(impPCAutoSave),
				Dirty:       0,
				Helper:      0,
				WeightQuick: 1.5, WeightSettle: 1.4,
			},
			{
				Name:        "apply-template", // restyle: ambiguous continuation
				Path:        []Site{R(impPCTemplate), R(impPCGfxRead)},
				FD:          6,
				BulkSite:    R(impPCTemplate),
				Bulk:        350,
				BulkQuick:   0, // ambiguous
				DirtySite:   W(impPCAutoSave),
				Dirty:       0,
				Helper:      -1,
				WeightQuick: 0.25, WeightSettle: 0.9,
			},
			{
				Name:        "next-slide", // quick slide flip during review
				Path:        []Site{R(impPCDocRead)},
				FD:          4,
				BulkSite:    R(impPCGfxRead),
				Bulk:        220,
				BulkQuick:   100,
				DirtySite:   W(impPCAutoSave),
				Dirty:       0,
				Helper:      -1,
				WeightQuick: 4, WeightSettle: 0.6,
			},
			{
				Name: "save",
				// Writes are absorbed by the write-back cache; the disk
				// sees the post-save read-back of the document.
				Path:        []Site{R(impPCBakRead), W(impPCSaveWr)},
				FD:          7,
				BulkSite:    R(impPCBakRead),
				Bulk:        60,
				BulkQuick:   25,
				DirtySite:   W(impPCAutoSave),
				Dirty:       2,
				Helper:      1,
				WeightQuick: 1, WeightSettle: 0.9,
			},
		},
		EpisodesMin: 4, EpisodesMax: 5,
		RunMin: 1, RunMax: 3,
		RhythmWeights:  []float64{0.2, 0.7, 0.1},
		PChangeRhythm:  0.12,
		PQuickMicro:    0,
		PRestlessStart: 0.3, PersistPhase: 0.72,
		PSettleShortCalm: 0.04, PSettleShortRestless: 0.18,
		ShortLo: 1.4, ShortHi: 5.2,
		LongBands:   [3][2]float64{{6.5, 10}, {10.3, 15.2}, {18, 700}},
		LongWeights: [3]float64{0.44, 0.02, 0.54},
		ExitPath:    []Site{O(impPCExitWr), W(impPCExitWr)},
		ExitFD:      7,
		ExitDirty:   4,
		ExitSite:    W(impPCSaveWr),
		IntraLo:     0.005, IntraHi: 0.025,
	}
}

// Package sim is the ctxflow corpus: contexts must be threaded, not
// retained, and unbounded loops must observe cancellation (DESIGN.md
// §17). Type-checked as pcapsim/internal/sim so result-affecting
// scoping applies.
package sim

import (
	"context"
	"math"
	"sync/atomic"
)

type handler struct {
	ctx  context.Context
	stop func() error
}

var globalCtx context.Context

func step() {}

// StoreInField is the canonical violation: the request context is
// parked on the struct and outlives the call.
func (h *handler) StoreInField(ctx context.Context) {
	h.ctx = ctx // want "stored into field h.ctx"
}

// NewHandler smuggles the context in through a composite literal.
func NewHandler(ctx context.Context) *handler {
	return &handler{ctx: ctx} // want "stored into a composite literal"
}

// StoreInGlobal retains the context for the life of the process.
func StoreInGlobal(ctx context.Context) {
	globalCtx = ctx // want "stored into package variable globalCtx"
}

// StoreClosure retains the context transitively: the stored closure
// captures it.
func (h *handler) StoreClosure(ctx context.Context) {
	h.stop = func() error { return ctx.Err() } // want "stored into field h.stop"
}

// SendCtx hands the context to whoever drains the channel.
func SendCtx(ctx context.Context, c chan context.Context) {
	c <- ctx // want "sent on a channel"
}

// BoundProbe is the sanctioned idiom: storing the cancellation probe
// ctx.Err (a bound method value) threads cancellation into
// context-free layers without retaining the context itself.
func (h *handler) BoundProbe(ctx context.Context) {
	h.stop = ctx.Err
}

// Threaded passes the context down the call chain — the rule's whole
// point.
func Threaded(ctx context.Context, f func(context.Context) error) error {
	return f(ctx)
}

// SuppressedStore documents a deliberate retention.
func (h *handler) SuppressedStore(ctx context.Context) {
	//pcaplint:ignore ctxflow corpus: long-lived watchdog keeps its root context by design
	h.ctx = ctx
}

// SpinNoCheck is the loop-rule true positive: a context is in scope
// but the condition-less loop never consults it.
func SpinNoCheck(ctx context.Context) {
	n := 0
	for { // want "no cancellation check reachable on its back edge"
		n++
	}
}

// SpinWithSelect observes cancellation through a select every
// iteration.
func SpinWithSelect(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case w := <-work:
			_ = w
		}
	}
}

// SpinWithErrPoll polls ctx.Err on the back edge.
func SpinWithErrPoll(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		step()
	}
}

// Drain is the worklist true positive: the condition reads len(q), the
// body grows q, and nothing checks for cancellation.
func Drain(ctx context.Context, q []int) int {
	total := 0
	for len(q) > 0 { // want "no cancellation check reachable on its back edge"
		x := q[0]
		q = q[1:]
		if x > 1 {
			q = append(q, x/2)
		}
		total++
	}
	return total
}

// DrainChecked is the same worklist with the check in place.
func DrainChecked(ctx context.Context, q []int) int {
	total := 0
	for len(q) > 0 {
		if ctx.Err() != nil {
			return total
		}
		x := q[0]
		q = q[1:]
		if x > 1 {
			q = append(q, x/2)
		}
		total++
	}
	return total
}

// Bounded loops with a real termination condition are not subjects.
func Bounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// AddFloat is a lock-free retry loop: bounded by contention, exempt by
// the CompareAndSwap rule.
func AddFloat(ctx context.Context, bits *uint64, v float64) {
	for {
		old := atomic.LoadUint64(bits)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(bits, old, nw) {
			return
		}
	}
}

// decodeAll has no cancellation facility in scope: its loop is bounded
// by its input and cancellation is enforced at the exec boundary.
func decodeAll(xs []int) int {
	i, total := 0, 0
	for {
		if i >= len(xs) {
			return total
		}
		total += xs[i]
		i++
	}
}

// pump cancels through send, whose select sits one call deep in the
// same package.
func pump(ctx context.Context, out chan int) {
	v := 0
	for {
		if !send(ctx, out, v) {
			return
		}
		v++
	}
}

func send(ctx context.Context, out chan int, v int) bool {
	select {
	case out <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

type shard struct {
	interrupt func() error
}

// drainHeap mirrors the fleet shard: no context in scope, but the
// error-returning interrupt hook is both the facility and the check.
func (s *shard) drainHeap(q []int) int {
	total := 0
	for len(q) > 0 {
		if s.interrupt() != nil {
			return total
		}
		x := q[0]
		q = q[1:]
		if x > 1 {
			q = append(q, x-2)
		}
		total++
	}
	return total
}

// SuppressedSpin documents a deliberate busy-wait.
func SuppressedSpin(ctx context.Context) {
	//pcaplint:ignore ctxflow corpus: busy-wait is bounded by the test harness
	for {
		step()
	}
}

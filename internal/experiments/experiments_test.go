package experiments

import (
	"strings"
	"testing"

	"pcapsim/internal/core"
	"pcapsim/internal/sim"
)

// The experiment suite is exercised end to end on the full workloads;
// these tests pin the qualitative results the paper reports — the "shape"
// of each table and figure — rather than exact percentages.

func newSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(DefaultSeed, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTable1Shape(t *testing.T) {
	s := newSuite(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byApp := map[string]Table1Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.GlobalIdle <= 0 || r.TotalIOs <= 0 {
			t.Errorf("%s: degenerate row %+v", r.App, r)
		}
		if r.LocalIdle < r.GlobalIdle && r.App != "xemacs" && r.App != "nedit" {
			// Multi-process apps accumulate more local than global
			// periods (xemacs is borderline single-process; nedit equal).
			t.Errorf("%s: local %d < global %d", r.App, r.LocalIdle, r.GlobalIdle)
		}
	}
	// Table 1's qualitative orderings.
	if byApp["nedit"].LocalIdle != byApp["nedit"].GlobalIdle {
		t.Error("nedit (single process) must have local == global")
	}
	if byApp["mplayer"].TotalIOs < byApp["nedit"].TotalIOs*10 {
		t.Error("mplayer must dwarf nedit in I/O volume")
	}
	if byApp["mozilla"].GlobalIdle < byApp["mplayer"].GlobalIdle {
		t.Error("mozilla must have the most shutdown opportunities")
	}
}

func TestRenderers(t *testing.T) {
	s := newSuite(t)
	if out := s.RenderTable2(); !strings.Contains(out, "5.43") || !strings.Contains(out, "Fujitsu") {
		t.Errorf("table 2 rendering:\n%s", out)
	}
	out, err := s.RenderTable1()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"mozilla", "writer", "impress", "xemacs", "nedit", "mplayer"} {
		if !strings.Contains(out, app) {
			t.Errorf("table 1 missing %s", app)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	s := newSuite(t)
	f, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	tp := f.Average["TP"]
	lt := f.Average["LT"]
	pcap := f.Average["PCAP"]
	// The paper's headline ordering: PCAP > LT > TP in coverage.
	if !(pcap.Hit > lt.Hit && lt.Hit > tp.Hit) {
		t.Errorf("hit ordering violated: TP %.2f LT %.2f PCAP %.2f", tp.Hit, lt.Hit, pcap.Hit)
	}
	// PCAP mispredicts roughly half as often as LT (paper: 10%% vs 20%%).
	if pcap.Miss >= lt.Miss {
		t.Errorf("PCAP miss %.2f not below LT %.2f", pcap.Miss, lt.Miss)
	}
	// Everything stays within sane bounds.
	for name, avg := range f.Average {
		if avg.Hit < 0 || avg.Hit > 1.001 {
			t.Errorf("%s hit out of range: %v", name, avg.Hit)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	s := newSuite(t)
	f, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	av := f.AverageSavings
	// Paper ordering: Ideal ≥ PCAP ≥ LT ≥ TP ≥ Base (= 0).
	if !(av["Ideal"] >= av["PCAP"] && av["PCAP"] >= av["LT"] && av["LT"] >= av["TP"] && av["TP"] > 0) {
		t.Errorf("savings ordering violated: %v", av)
	}
	if av["Base"] != 0 {
		t.Errorf("base savings %v", av["Base"])
	}
	// PCAP lands within a few points of the ideal predictor (paper: 2%).
	if av["Ideal"]-av["PCAP"] > 0.06 {
		t.Errorf("PCAP %.3f too far from ideal %.3f", av["PCAP"], av["Ideal"])
	}
	// Per-cell sanity: every policy's bar is ≤ ~101% of base.
	for _, c := range f.Cells {
		if _, _, _, _, total := c.Normalized(); total > 1.01 {
			t.Errorf("%s/%s exceeds base energy: %.3f", c.App, c.Policy, total)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	s := newSuite(t)
	f, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	base := f.Average["PCAP"]
	h := f.Average["PCAPh"]
	fh := f.Average["PCAPfh"]
	// History cuts mispredictions (paper: 10% → 5%).
	if h.Miss >= base.Miss {
		t.Errorf("history did not reduce misses: %.3f vs %.3f", h.Miss, base.Miss)
	}
	if fh.Miss > h.Miss+0.01 {
		t.Errorf("fh misses %.3f above h %.3f", fh.Miss, h.Miss)
	}
	// And costs extra training: more backup involvement.
	if h.HitBackup <= base.HitBackup {
		t.Errorf("history did not increase backup share: %.3f vs %.3f", h.HitBackup, base.HitBackup)
	}
}

func TestFig10Shape(t *testing.T) {
	s := newSuite(t)
	f, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	pcap := f.Average["PCAP"]
	pcapa := f.Average["PCAPa"]
	lt := f.Average["LT"]
	lta := f.Average["LTa"]
	// Table reuse multiplies primary coverage (paper: fourfold for PCAP,
	// double for LT).
	if pcap.HitPrimary < 3*pcapa.HitPrimary {
		t.Errorf("PCAP reuse gain too small: %.3f vs %.3f", pcap.HitPrimary, pcapa.HitPrimary)
	}
	if lt.HitPrimary < 1.5*lta.HitPrimary {
		t.Errorf("LT reuse gain too small: %.3f vs %.3f", lt.HitPrimary, lta.HitPrimary)
	}
	// Without reuse, the backup predictor carries the load.
	if pcapa.HitBackup < pcapa.HitPrimary {
		t.Errorf("PCAPa should lean on its backup: %.3f vs %.3f", pcapa.HitBackup, pcapa.HitPrimary)
	}
}

func TestTable3Shape(t *testing.T) {
	s := newSuite(t)
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Table3Row{}
	for _, r := range rows {
		byApp[r.App] = r
		// History-augmented tables cannot be smaller than the base.
		if r.Entries[core.VariantH] < r.Entries[core.VariantBase] {
			t.Errorf("%s: PCAPh %d < PCAP %d", r.App, r.Entries[core.VariantH], r.Entries[core.VariantBase])
		}
		if r.Entries[core.VariantFH] < r.Entries[core.VariantH] {
			t.Errorf("%s: PCAPfh %d < PCAPh %d", r.App, r.Entries[core.VariantFH], r.Entries[core.VariantH])
		}
	}
	// Paper orderings: mozilla's table is the largest, nedit's tiny.
	if byApp["mozilla"].Entries[core.VariantBase] <= byApp["xemacs"].Entries[core.VariantBase] {
		t.Error("mozilla should need the largest table")
	}
	if byApp["nedit"].Entries[core.VariantBase] > 10 {
		t.Errorf("nedit table too large: %d", byApp["nedit"].Entries[core.VariantBase])
	}
}

func TestTPSweepShape(t *testing.T) {
	s := newSuite(t)
	rows, err := s.TPSweep()
	if err != nil {
		t.Fatal(err)
	}
	// Longer timers monotonically reduce miss pressure at the cost of
	// energy beyond ~10 s (the paper's §6.3 trade-off).
	var at10, at60 float64
	for _, r := range rows {
		switch r.Timeout.Seconds() {
		case 10:
			at10 = r.AvgSavings
		case 60:
			at60 = r.AvgSavings
		}
	}
	if at60 >= at10 {
		t.Errorf("60 s timer saves %.3f ≥ 10 s timer %.3f", at60, at10)
	}
}

func TestMultiStateGains(t *testing.T) {
	s := newSuite(t)
	rows, err := s.MultiState()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SavedMulti < r.SavedPlain-1e-9 {
			t.Errorf("%s: extension lost energy: %.4f vs %.4f", r.App, r.SavedMulti, r.SavedPlain)
		}
	}
}

func TestSuiteMemoization(t *testing.T) {
	s := newSuite(t)
	app := s.Apps()[4] // nedit: cheapest
	a, err := s.Run(app, s.PolicyTP())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(app, s.PolicyTP())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoization returned distinct results")
	}
}

func TestSeedSensitivity(t *testing.T) {
	// A different seed changes the traces but must preserve the headline
	// ordering — the reproduction is not an artifact of one seed.
	s, err := NewSuite(99, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	tp, lt, pcap := f.Average["TP"], f.Average["LT"], f.Average["PCAP"]
	if !(pcap.Hit > lt.Hit && lt.Hit > tp.Hit) {
		t.Errorf("seed 99: ordering violated: TP %.2f LT %.2f PCAP %.2f", tp.Hit, lt.Hit, pcap.Hit)
	}
}

func TestPredictorsShape(t *testing.T) {
	s := newSuite(t)
	rows, err := s.Predictors()
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]PredictorRow{}
	for _, r := range rows {
		by[r.Policy] = r
	}
	// The paper's survey conclusion (§2): pre-PCAP dynamic predictors shut
	// down immediately but with much lower accuracy. Both classic dynamic
	// predictors must mispredict far more than PCAP.
	if by["ExpAvg"].Miss < 2*by["PCAP"].Miss {
		t.Errorf("ExpAvg miss %.3f not well above PCAP %.3f", by["ExpAvg"].Miss, by["PCAP"].Miss)
	}
	if by["LShape"].Miss < 2*by["PCAP"].Miss {
		t.Errorf("LShape miss %.3f not well above PCAP %.3f", by["LShape"].Miss, by["PCAP"].Miss)
	}
	// PCAP still saves the most energy of the real predictors.
	for _, name := range []string{"TP", "AdaptTP", "ExpAvg", "LShape", "LT"} {
		if by[name].Saved > by["PCAP"].Saved+1e-9 {
			t.Errorf("%s saves %.4f, above PCAP %.4f", name, by[name].Saved, by["PCAP"].Saved)
		}
	}
	if by["Ideal"].Hit < 0.999 || by["Ideal"].Miss > 1e-9 {
		t.Errorf("ideal row %+v", by["Ideal"])
	}
}

func TestDevicesShape(t *testing.T) {
	s := newSuite(t)
	rows, err := s.DevicesExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d device rows", len(rows))
	}
	var wlanOpps, desktopOpps int
	for _, r := range rows {
		// Savings order on every device: TP ≤ PCAP ≤ Ideal (small
		// tolerance for the boundary-sensitive profiles).
		if r.PCAPSaved < r.TPSaved-0.02 || r.IdealSaved < r.PCAPSaved-1e-9 {
			t.Errorf("%s: savings ordering violated: TP %.3f PCAP %.3f Ideal %.3f",
				r.Device, r.TPSaved, r.PCAPSaved, r.IdealSaved)
		}
		switch {
		case r.Breakeven < 1:
			wlanOpps = r.Long
		case r.Breakeven > 10:
			desktopOpps = r.Long
		}
	}
	// Shorter breakeven ⇒ many more shutdown opportunities.
	if wlanOpps <= desktopOpps {
		t.Errorf("opportunity counts: wlan %d, desktop %d", wlanOpps, desktopOpps)
	}
}

func TestPrefetchShape(t *testing.T) {
	s := newSuite(t)
	rows, err := s.Prefetch()
	if err != nil {
		t.Fatal(err)
	}
	interleavedWins := 0
	for _, r := range rows {
		// Prefetching can only reduce demand misses.
		if r.Global.MissRate() > r.BaseMiss+1e-9 || r.PC.MissRate() > r.BaseMiss+1e-9 {
			t.Errorf("%s: prefetching increased misses", r.App)
		}
		if r.PC.MissRate() < r.Global.MissRate() {
			interleavedWins++
		}
		// Sequential workloads keep accuracy high for both.
		if r.PC.Accuracy() < 0.5 {
			t.Errorf("%s: PC accuracy %.2f", r.App, r.PC.Accuracy())
		}
	}
	// The PC-keyed prefetcher must win on the multi-process, interleaved
	// applications (the package's reason to exist).
	if interleavedWins < 3 {
		t.Errorf("PC readahead won on only %d apps", interleavedWins)
	}
}

// TestGoldenTable1 pins Table 1 at the default seed exactly. These are
// the numbers EXPERIMENTS.md publishes; if a workload change moves them,
// update both this test and EXPERIMENTS.md deliberately.
func TestGoldenTable1(t *testing.T) {
	s := newSuite(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Table1Row{
		"mozilla": {App: "mozilla", Executions: 49, GlobalIdle: 360, LocalIdle: 739, TotalIOs: 89931},
		"writer":  {App: "writer", Executions: 33, GlobalIdle: 114, LocalIdle: 244, TotalIOs: 113699},
		"impress": {App: "impress", Executions: 19, GlobalIdle: 91, LocalIdle: 170, TotalIOs: 162448},
		"xemacs":  {App: "xemacs", Executions: 37, GlobalIdle: 104, LocalIdle: 102, TotalIOs: 64463},
		"nedit":   {App: "nedit", Executions: 29, GlobalIdle: 29, LocalIdle: 29, TotalIOs: 5507},
		"mplayer": {App: "mplayer", Executions: 31, GlobalIdle: 52, LocalIdle: 107, TotalIOs: 501276},
	}
	for _, r := range rows {
		if w := want[r.App]; r != w {
			t.Errorf("%s: got %+v, want %+v", r.App, r, w)
		}
	}
}

// TestAllRenderers drives every text renderer end to end (the CLI's
// surface) and checks each produces a non-trivial table.
func TestAllRenderers(t *testing.T) {
	s := newSuite(t)
	renderers := map[string]func() (string, error){
		"table1":     s.RenderTable1,
		"table3":     s.RenderTable3,
		"tpsweep":    s.RenderTPSweep,
		"multistate": s.RenderMultiState,
		"predictors": s.RenderPredictors,
		"devices":    s.RenderDevices,
		"prefetch":   s.RenderPrefetch,
	}
	for name, render := range renderers {
		out, err := render()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 100 || !strings.Contains(out, "---") {
			t.Errorf("%s: implausible rendering:\n%s", name, out)
		}
	}
	for name, fig := range map[string]func() (*AccuracyFigure, error){
		"fig6": s.Fig6, "fig7": s.Fig7, "fig9": s.Fig9, "fig10": s.Fig10,
	} {
		f, err := fig()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out := f.Render(); !strings.Contains(out, "average") {
			t.Errorf("%s: rendering lacks averages", name)
		}
	}
	f8, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if out := f8.Render(); !strings.Contains(out, "average savings") {
		t.Error("fig8 rendering lacks averages")
	}
}

func TestRenderBars(t *testing.T) {
	s := newSuite(t)
	f, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	out := f.RenderBars()
	for _, want := range []string{"legend:", "mozilla", "█", "|", "hit"} {
		if !strings.Contains(out, want) {
			t.Errorf("bar rendering missing %q:\n%s", want, out)
		}
	}
	// Every bar line carries the 100% marker exactly once.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "█") || strings.Contains(line, "░") {
			if strings.Count(line, "|") != 1 {
				t.Errorf("bar line without single marker: %q", line)
			}
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// ErrcheckLite flags calls whose error result is silently discarded in
// the packages where that silence corrupts data: the trace codecs
// (internal/trace), predictor-state persistence (internal/persist), and
// every command. A dropped Close or Flush error from an encoder means a
// truncated trace file that decodes as valid-but-short — precisely the
// corruption the v2 container's CRCs exist to surface (DESIGN.md §11).
//
// A call is unchecked when it appears as a bare statement, or as a defer
// or go statement, and its signature includes an error result. Assigning
// the error to `_` is treated as checked: the discard is explicit and
// visible in review. Writes to fmt's stdout/stderr convenience printers,
// and to bytes.Buffer / strings.Builder (documented to never fail), are
// exempt.
var ErrcheckLite = &Analyzer{
	Name: "errcheck-lite",
	Doc:  "discarded error result (including dropped Close/Flush) in codec, persist, or cmd code",
	Run:  runErrcheckLite,
}

func runErrcheckLite(pass *Pass) {
	if !errcheckScope(pass.Pkg.RelPath) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, st.X, "")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, st.Call, "deferred ")
			case *ast.GoStmt:
				checkDiscardedCall(pass, st.Call, "spawned ")
			}
			return true
		})
	}
}

// checkDiscardedCall reports e when it is a call returning an error that
// nothing receives.
func checkDiscardedCall(pass *Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok { // builtin (panic, append, ...)
		return
	}
	if !returnsError(sig) || exemptCallee(info, call) {
		return
	}
	pass.Reportf(call.Pos(), "error returned by %s%s is dropped; check it or assign it to _ with a comment", how, types.ExprString(call.Fun))
}

// returnsError reports whether any result of the signature has type
// error.
func returnsError(sig *types.Signature) bool {
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// exemptCallee excludes the conventional can't-meaningfully-fail calls:
// fmt printers targeting stdout/stderr, and the never-failing
// bytes.Buffer / strings.Builder writers.
func exemptCallee(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			owner := named.Obj()
			if owner.Pkg() != nil {
				full := owner.Pkg().Path() + "." + owner.Name()
				if full == "bytes.Buffer" || full == "strings.Builder" {
					return true
				}
			}
		}
		return false
	}
	if pkg != "fmt" {
		return false
	}
	switch name {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && isStdStream(info, call.Args[0])
	}
	return false
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

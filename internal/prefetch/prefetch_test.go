package prefetch

import (
	"testing"

	"pcapsim/internal/trace"
)

// seqTrace builds a trace of per-PC sequential streams, optionally
// interleaved access by access.
func seqTrace(interleaved bool, perStream int) *trace.Trace {
	tr := &trace.Trace{App: "seq"}
	var now trace.Time
	add := func(pc trace.PC, block int64) {
		now += 1000
		tr.Events = append(tr.Events, trace.Event{
			Time: now, Pid: 1, Kind: trace.KindIO, Access: trace.AccessRead,
			PC: pc, FD: 3, Block: block, Size: 4096,
		})
	}
	if interleaved {
		for i := 0; i < perStream; i++ {
			add(0x100, int64(i))
			add(0x200, int64(100000+i))
		}
	} else {
		for i := 0; i < perStream; i++ {
			add(0x100, int64(i))
		}
		for i := 0; i < perStream; i++ {
			add(0x200, int64(100000+i))
		}
	}
	return tr
}

func TestNoPrefetchBaseline(t *testing.T) {
	res, err := Evaluate([]*trace.Trace{seqTrace(false, 50)}, 64, None{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandReads != 100 || res.DemandMisses != 100 {
		t.Fatalf("baseline %+v", res)
	}
	if res.Prefetched != 0 || res.Coverage() != 0 {
		t.Fatalf("None prefetched: %+v", res)
	}
}

func TestGlobalReadaheadOnCleanStream(t *testing.T) {
	res, err := Evaluate([]*trace.Trace{seqTrace(false, 50)}, 64, NewGlobalReadahead(8))
	if err != nil {
		t.Fatal(err)
	}
	// Two un-interleaved sequential streams: readahead must eliminate most
	// misses once warmed up.
	if res.MissRate() > 0.2 {
		t.Fatalf("clean stream miss rate %.2f: %+v", res.MissRate(), res)
	}
	if res.Accuracy() < 0.8 {
		t.Fatalf("clean stream accuracy %.2f", res.Accuracy())
	}
}

// TestPCBeatsGlobalOnInterleavedStreams is the package's reason to exist:
// interleaving two sequential streams destroys the PC-blind readahead's
// score but leaves the per-PC contexts untouched.
func TestPCBeatsGlobalOnInterleavedStreams(t *testing.T) {
	traces := []*trace.Trace{seqTrace(true, 200)}
	global, err := Evaluate(traces, 128, NewGlobalReadahead(8))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Evaluate(traces, 128, NewPCReadahead(8))
	if err != nil {
		t.Fatal(err)
	}
	if pc.MissRate() > 0.2 {
		t.Fatalf("pc readahead missed %.2f on interleaved streams", pc.MissRate())
	}
	if global.MissRate() < 0.9 {
		t.Fatalf("global readahead unexpectedly survived interleaving: %.2f", global.MissRate())
	}
	if pc.Coverage() <= global.Coverage() {
		t.Fatalf("pc coverage %.2f not above global %.2f", pc.Coverage(), global.Coverage())
	}
}

func TestPCReadaheadRandomSiteStaysQuiet(t *testing.T) {
	// A site issuing random blocks must never become confident.
	tr := &trace.Trace{App: "rand"}
	var now trace.Time
	blocks := []int64{900, 17, 4242, 33, 991, 5, 777, 102, 64, 8000}
	for _, b := range blocks {
		now += 1000
		tr.Events = append(tr.Events, trace.Event{
			Time: now, Pid: 1, Kind: trace.KindIO, Access: trace.AccessRead,
			PC: 0x300, FD: 3, Block: b, Size: 4096,
		})
	}
	res, err := Evaluate([]*trace.Trace{tr}, 64, NewPCReadahead(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefetched != 0 {
		t.Fatalf("random site prefetched %d blocks", res.Prefetched)
	}
}

func TestPCReadaheadSiteCap(t *testing.T) {
	p := NewPCReadahead(4)
	p.MaxSites = 2
	p.OnRead(1, 10)
	p.OnRead(2, 20)
	p.OnRead(3, 30) // beyond the cap: ignored, no panic, no growth
	if len(p.sites) != 2 {
		t.Fatalf("site map grew past cap: %d", len(p.sites))
	}
}

func TestEvaluateRejectsBadCapacity(t *testing.T) {
	if _, err := Evaluate(nil, 0, None{}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestResultRatios(t *testing.T) {
	r := Result{DemandReads: 100, DemandMisses: 25, PrefetchHits: 50, Prefetched: 80, Wasted: 30}
	if r.MissRate() != 0.25 || r.Coverage() != 0.5 || r.Accuracy() != 0.625 {
		t.Fatalf("ratios: %.2f %.2f %.2f", r.MissRate(), r.Coverage(), r.Accuracy())
	}
	var zero Result
	if zero.MissRate() != 0 || zero.Coverage() != 0 || zero.Accuracy() != 0 {
		t.Fatal("zero-value ratios must be zero")
	}
}

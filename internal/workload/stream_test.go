package workload

import (
	"reflect"
	"testing"

	"pcapsim/internal/trace"
)

const streamTestSeed = 20040214

func TestStreamMatchesTraces(t *testing.T) {
	for _, app := range Apps() {
		want := app.Traces(streamTestSeed)
		got, err := trace.Collect(app.Stream(streamTestSeed))
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d executions, want %d", app.Name, len(got), len(want))
		}
		for i := range got {
			if got[i].App != want[i].App || got[i].Execution != want[i].Execution {
				t.Errorf("%s exec %d: header %s/%d, want %s/%d",
					app.Name, i, got[i].App, got[i].Execution, want[i].App, want[i].Execution)
			}
			if !reflect.DeepEqual(got[i].Events, want[i].Events) {
				t.Errorf("%s exec %d: streamed events differ from Traces", app.Name, i)
			}
		}
	}
}

func TestStreamResetReplaysIdentically(t *testing.T) {
	app := Apps()[0]
	s := app.Stream(streamTestSeed)
	first, err := trace.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	second, err := trace.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("replay after Reset differs from first pass")
	}
}

func TestStreamRecyclesBuffer(t *testing.T) {
	app := Apps()[0]
	if app.Executions < 2 {
		t.Skip("needs a multi-execution app")
	}
	s := app.Stream(streamTestSeed)
	if _, _, ok := s.NextExec(); !ok {
		t.Fatal("NextExec failed")
	}
	firstCap := cap(s.cur)
	for i := 1; i < app.Executions; i++ {
		if _, _, ok := s.NextExec(); !ok {
			t.Fatalf("NextExec %d failed", i)
		}
		// Buffer capacity only ever grows to the largest single execution;
		// it is never reallocated when the next execution fits.
		if len(s.cur) <= firstCap && cap(s.cur) < firstCap {
			t.Errorf("execution %d shrank the recycled buffer: cap %d < %d", i, cap(s.cur), firstCap)
		}
	}
}

func TestStreamExecEvents(t *testing.T) {
	app := Apps()[0]
	s := app.Stream(streamTestSeed)
	if _, _, ok := s.NextExec(); !ok {
		t.Fatal("NextExec failed")
	}
	events := s.ExecEvents()
	want := app.Trace(streamTestSeed, 0).Events
	if !reflect.DeepEqual(events, want) {
		t.Error("ExecEvents differs from Trace")
	}
	if _, ok := s.Next(); ok {
		t.Error("Next should report drained after ExecEvents")
	}
}

func TestCacheSourcePinnedMode(t *testing.T) {
	c := NewTraceCache()
	app := Apps()[1]
	src := c.Source(app, streamTestSeed)
	got, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Traces(app, streamTestSeed)
	if len(got) != len(want) {
		t.Fatalf("source yielded %d executions, want %d", len(got), len(want))
	}
	if c.Generations() != 1 {
		t.Errorf("pinned mode generated %d times, want 1 (slice shared)", c.Generations())
	}
	// A second source shares the same pinned generation.
	if _, err := trace.Collect(c.Source(app, streamTestSeed)); err != nil {
		t.Fatal(err)
	}
	if c.Generations() != 1 {
		t.Errorf("second source regenerated (gens=%d)", c.Generations())
	}
}

func TestCacheSourceOnDemandMode(t *testing.T) {
	c := NewTraceCache()
	c.SetOnDemand(true)
	if !c.OnDemand() {
		t.Fatal("OnDemand not set")
	}
	app := Apps()[1]
	got, err := trace.Collect(c.Source(app, streamTestSeed))
	if err != nil {
		t.Fatal(err)
	}
	want := app.Traces(streamTestSeed)
	if len(got) != len(want) {
		t.Fatalf("on-demand source yielded %d executions, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Events, want[i].Events) {
			t.Errorf("execution %d differs between on-demand source and Traces", i)
		}
	}
	if c.Len() != 0 {
		t.Errorf("on-demand mode pinned %d entries, want 0", c.Len())
	}
}

func TestCacheRelease(t *testing.T) {
	c := NewTraceCache()
	app := Apps()[2]
	c.Traces(app, streamTestSeed)
	if c.Len() != 1 || c.Generations() != 1 {
		t.Fatalf("setup: len=%d gens=%d", c.Len(), c.Generations())
	}
	if !c.Release(app, streamTestSeed) {
		t.Error("Release should report a dropped entry")
	}
	if c.Release(app, streamTestSeed) {
		t.Error("second Release should find nothing")
	}
	if c.Len() != 0 {
		t.Errorf("after Release: len=%d, want 0", c.Len())
	}
	// Re-request regenerates deterministically.
	again := c.Traces(app, streamTestSeed)
	if c.Generations() != 2 {
		t.Errorf("re-request after Release generated %d times total, want 2", c.Generations())
	}
	want := app.Traces(streamTestSeed)
	for i := range again {
		if !reflect.DeepEqual(again[i].Events, want[i].Events) {
			t.Errorf("regenerated execution %d differs", i)
		}
	}
}

func TestSetOnDemandReleasesPinned(t *testing.T) {
	c := NewTraceCache()
	c.Traces(Apps()[0], streamTestSeed)
	c.SetOnDemand(true)
	if c.Len() != 0 {
		t.Errorf("SetOnDemand(true) left %d pinned entries", c.Len())
	}
}

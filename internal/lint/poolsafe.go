package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafe statically enforces the DESIGN.md §10 sync.Pool ownership
// rules at every sync.Pool.Get call site: the gotten value must stay
// function-local — never stored into a struct field, package variable or
// container, never returned, never sent on a channel — and must reach a
// matching Put on every non-panic path before it goes out of scope.
// Violating either rule lets two owners see one pooled object, which is
// exactly the aliasing the arena/pool rewrite's determinism argument
// forbids.
//
// Two escape hatches, both spelled in the source where reviewers see
// them:
//
//   - a function whose doc comment carries //pcaplint:owner-transfer is a
//     designated transfer point. Inside it, Get results may be returned
//     (the caller takes ownership — the repo's get/put accessor pairs);
//     passing a pooled value TO such a function transfers ownership away
//     and satisfies the Put obligation.
//   - a reasoned //pcaplint:ignore poolsafe directive, for cases the
//     structural analysis cannot follow.
//
// The analysis is intentionally structural, not a full CFG: it scans the
// statements of the value's scope in order, branching through
// if/else, and treats panic/os.Exit/Fatal-style calls as path ends.
// Aliasing through a second variable and closures that capture the value
// (other than `defer func() { pool.Put(x) }()`, which counts as a Put)
// are outside the model. It runs on every package: pooling outside the
// hot path still needs correct ownership.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "sync.Pool.Get value escapes its function or misses Put on a non-panic path",
	Run:  runPoolSafe,
}

func runPoolSafe(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A designated transfer point is audited by hand; its Get may
			// flow to the caller.
			if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil && pass.OwnerTransfer(obj) {
				continue
			}
			checkPoolGets(pass, fd)
		}
	}
}

// checkPoolGets finds every sync.Pool.Get call under fd and vets its
// binding, escapes, and Put coverage.
func checkPoolGets(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok && isPoolMethod(pass.Pkg.Info, call, "Get") {
			checkGetSite(pass, call, append([]ast.Node(nil), stack...))
		}
		return true
	})
}

// isPoolMethod reports whether call invokes the named method of
// sync.Pool.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// checkGetSite classifies how one Get call's result is used. stack runs
// from the enclosing FuncDecl down to the call itself.
func checkGetSite(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	// Walk up through the type assertion / parens wrapping the call.
	i := len(stack) - 2
	for i >= 0 {
		switch stack[i].(type) {
		case *ast.TypeAssertExpr, *ast.ParenExpr:
			i--
			continue
		}
		break
	}
	if i < 0 {
		return
	}
	switch parent := stack[i].(type) {
	case *ast.AssignStmt:
		checkBoundGet(pass, call, parent, stack[:i])
	case *ast.ReturnStmt:
		pass.Reportf(call.Pos(), "sync.Pool value is returned directly; only an //pcaplint:owner-transfer function may hand a pooled value to its caller")
	case *ast.CallExpr:
		if fn := calleeFunc(pass.Pkg.Info, parent); fn != nil && pass.OwnerTransfer(fn) {
			return
		}
		pass.Reportf(call.Pos(), "sync.Pool value is passed straight to a call; bind it to a variable so its Put is checkable")
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "sync.Pool value is discarded; bind it and Put it back")
	default:
		pass.Reportf(call.Pos(), "sync.Pool value is used in an unanalyzed position; bind it with x := pool.Get().(*T)")
	}
}

// checkBoundGet handles `x := pool.Get().(*T)` (plain or comma-ok, at
// block level or as an if statement's init) — the supported binding
// shapes. It then runs the escape scan and the Put path scan over the
// variable's scope.
func checkBoundGet(pass *Pass, call *ast.CallExpr, assign *ast.AssignStmt, outer []ast.Node) {
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		pass.Reportf(call.Pos(), "sync.Pool value is assigned to a non-variable; bind it with x := pool.Get().(*T)")
		return
	}
	if lhs.Name == "_" {
		pass.Reportf(call.Pos(), "sync.Pool value is discarded; bind it and Put it back")
		return
	}
	info := pass.Pkg.Info
	obj := info.Defs[lhs]
	if obj == nil {
		obj = info.Uses[lhs]
	}
	if obj == nil {
		return
	}
	c := &poolCheck{pass: pass, obj: obj, get: call}

	// Scope: statements the value lives through.
	var scope []ast.Stmt
	declared := assign.Tok == token.DEFINE
	if len(outer) > 0 {
		if ifStmt, ok := outer[len(outer)-1].(*ast.IfStmt); ok && ifStmt.Init == assign {
			// The comma-ok idiom: if x, ok := pool.Get().(*T); ok { ... }.
			// The value only exists on the ok branch.
			scope = ifStmt.Body.List
			c.run(scope, declared)
			return
		}
	}
	block := enclosingBlock(outer)
	if block == nil {
		pass.Reportf(call.Pos(), "sync.Pool value is bound in an unanalyzed position; bind it at statement level")
		return
	}
	for idx, s := range block.List {
		if s == assign {
			scope = block.List[idx+1:]
			break
		}
	}
	c.run(scope, declared)
}

func enclosingBlock(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// poolCheck scans the scope of one bound pool value.
type poolCheck struct {
	pass *Pass
	obj  types.Object
	get  *ast.CallExpr
	done bool // one finding per Get site
}

func (c *poolCheck) violate(pos token.Pos, format string, args ...any) {
	if c.done {
		return
	}
	c.done = true
	c.pass.Reportf(pos, format, args...)
}

// run performs the escape scan, then the Put path scan. declared is
// false for a plain `=` rebinding of an outer variable, where the value
// outlives the scanned block and the end-of-scope obligation cannot be
// checked locally (escapes and early returns still are).
func (c *poolCheck) run(scope []ast.Stmt, declared bool) {
	for _, s := range scope {
		c.escapes(s)
	}
	if c.done {
		return
	}
	fallsThrough, satisfied := c.scan(scope, false)
	if c.done {
		return
	}
	if fallsThrough && !satisfied && declared {
		c.violate(c.get.Pos(), "sync.Pool value goes out of scope without Put; Put it on every non-panic path or hand it to an //pcaplint:owner-transfer function")
	}
}

// escapes reports stores that would give the pooled value a second
// owner.
func (c *poolCheck) escapes(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		if c.done {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			// Closures are outside the model; defer func(){Put(x)}() is
			// still recognized by the path scan's subtree search.
			return false
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !c.isObj(rhs) || i >= len(st.Lhs) {
					continue
				}
				switch lhs := ast.Unparen(st.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					c.violate(st.Pos(), "sync.Pool value is stored into field %s; pooled values must stay function-local (DESIGN.md §10)", types.ExprString(lhs))
				case *ast.IndexExpr:
					c.violate(st.Pos(), "sync.Pool value is stored into an element of %s; pooled values must stay function-local (DESIGN.md §10)", types.ExprString(lhs.X))
				case *ast.Ident:
					if obj := c.pass.Pkg.Info.Uses[lhs]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
						c.violate(st.Pos(), "sync.Pool value is stored into package variable %s; pooled values must stay function-local (DESIGN.md §10)", lhs.Name)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if c.mentionsObj(res) {
					c.violate(st.Pos(), "sync.Pool value is returned; only an //pcaplint:owner-transfer function may hand a pooled value to its caller")
					return false
				}
			}
		case *ast.SendStmt:
			if c.mentionsObj(st.Value) {
				c.violate(st.Pos(), "sync.Pool value is sent on a channel; pooled values must stay function-local (DESIGN.md §10)")
			}
		case *ast.GoStmt:
			if c.mentionsObj(st.Call) {
				c.violate(st.Pos(), "sync.Pool value is captured by a go statement; the goroutine may outlive the Put")
			}
		}
		return !c.done
	})
}

// scan walks a statement list in order, tracking whether the Put
// obligation is satisfied. It returns whether control can fall off the
// end of the list and the obligation state if it does.
func (c *poolCheck) scan(stmts []ast.Stmt, sat bool) (fallsThrough, satAfter bool) {
	for _, s := range stmts {
		ft, after := c.scanStmt(s, sat)
		if !ft {
			return false, after
		}
		sat = after
	}
	return true, sat
}

func (c *poolCheck) scanStmt(s ast.Stmt, sat bool) (fallsThrough, satAfter bool) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		if !sat {
			c.violate(st.Pos(), "sync.Pool value does not reach Put before this return; Put it on every non-panic path or hand it to an //pcaplint:owner-transfer function")
		}
		return false, sat
	case *ast.BlockStmt:
		return c.scan(st.List, sat)
	case *ast.IfStmt:
		if st.Init != nil {
			_, sat = c.scanStmt(st.Init, sat)
		}
		thenFT, thenSat := c.scan(st.Body.List, sat)
		elseFT, elseSat := true, sat
		if st.Else != nil {
			elseFT, elseSat = c.scanStmt(st.Else, sat)
		}
		switch {
		case !thenFT && !elseFT:
			return false, sat
		case !thenFT:
			return true, elseSat
		case !elseFT:
			return true, thenSat
		default:
			return true, thenSat && elseSat
		}
	case *ast.ForStmt:
		// The loop may run zero times: Put inside it cannot satisfy the
		// obligation after it, but violations inside are still reported.
		c.scan(st.Body.List, sat)
		return true, sat
	case *ast.RangeStmt:
		c.scan(st.Body.List, sat)
		return true, sat
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Conservative: scan case bodies for violations; a Put inside a
		// case does not satisfy the obligation afterwards.
		ast.Inspect(st, func(n ast.Node) bool {
			if clause, ok := n.(*ast.CaseClause); ok {
				c.scan(clause.Body, sat)
				return false
			}
			if clause, ok := n.(*ast.CommClause); ok {
				c.scan(clause.Body, sat)
				return false
			}
			return true
		})
		return true, sat
	case *ast.LabeledStmt:
		return c.scanStmt(st.Stmt, sat)
	case *ast.BranchStmt:
		// break/continue/goto leave this statement sequence; where they
		// rejoin is beyond the structural model, so neither report nor
		// satisfy.
		return false, sat
	case *ast.ExprStmt:
		if isTerminalCall(c.pass.Pkg.Info, st.X) {
			return false, sat
		}
		return true, sat || c.consumes(st)
	default:
		return true, sat || c.consumes(st)
	}
}

// consumes reports whether the statement's subtree puts the value back
// (pool.Put(x), pool.Put(&x), defer pool.Put(x), including inside a
// deferred closure) or hands it to an //pcaplint:owner-transfer
// function.
func (c *poolCheck) consumes(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		transfer := false
		if isPoolMethod(c.pass.Pkg.Info, call, "Put") {
			transfer = true
		} else if fn := calleeFunc(c.pass.Pkg.Info, call); fn != nil && c.pass.OwnerTransfer(fn) {
			transfer = true
		}
		if !transfer {
			return true
		}
		for _, arg := range call.Args {
			a := ast.Unparen(arg)
			if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
				a = ast.Unparen(u.X)
			}
			if c.isObj(a) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isObj reports whether e is exactly the tracked variable.
func (c *poolCheck) isObj(e ast.Expr) bool {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	return ok && c.pass.Pkg.Info.Uses[ident] == c.obj
}

// mentionsObj reports whether the tracked variable appears anywhere in
// e.
func (c *poolCheck) mentionsObj(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && c.pass.Pkg.Info.Uses[ident] == c.obj {
			found = true
		}
		return !found
	})
	return found
}

// isTerminalCall recognizes calls that end the path without returning:
// panic, os.Exit, runtime.Goexit, and Fatal-family helpers.
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin && ident.Name == "panic" {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" && name == "Exit" {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "runtime" && name == "Goexit" {
		return true
	}
	return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
}

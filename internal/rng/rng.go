// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by the synthetic workload generators.
//
// Reproducibility is a hard requirement for the experiment harness: every
// table and figure must regenerate identically on every run and platform.
// math/rand's global source and version-dependent algorithms make that
// fragile, so this package implements a fixed SplitMix64/PCG-style
// generator whose output is pinned by golden tests.
package rng

import "math"

// Source is a deterministic pseudo-random source. The zero value is not
// usable; construct with New.
type Source struct {
	state uint64
	inc   uint64
}

// New returns a Source seeded by seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	s := &Source{inc: 0xda3e39cb94b95bdb}
	s.state = splitmix(&seed)
	// Warm up so that nearby seeds decorrelate quickly.
	s.Uint64()
	s.Uint64()
	return s
}

// splitmix advances a SplitMix64 state and returns the next output.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child Source. The child's stream is a pure
// function of the parent's seed and the label, so splitting is itself
// deterministic and order-independent with respect to draws from the
// parent.
func (s *Source) Split(label uint64) *Source {
	seed := s.state ^ (label+1)*0x9e3779b97f4a7c15
	return New(splitmix(&seed))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	// xorshift64* — small, fast, well-understood; quality is ample for
	// workload synthesis.
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return (x * 0x2545f4914f6cdd1d) + s.inc
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponentially distributed float64 with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation (Box–Muller).
func (s *Source) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	u2 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	r := math.Sqrt(-2 * math.Log(u1))
	return mean + stddev*r*math.Cos(2*math.Pi*u2)
}

// Pick returns a random index weighted by weights. Zero or negative
// weights are treated as zero. If all weights are zero it returns 0.
func (s *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	target := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if target < w {
			return i
		}
		target -= w
	}
	return len(weights) - 1
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatDet flags floating-point accumulation whose result depends on an
// unordered visitation: float addition and multiplication are not
// associative, so summing in map-iteration order or goroutine-completion
// order makes the simulator's energy/delay aggregates differ run to run
// — exactly the nondeterminism the determinism contract (DESIGN.md §8)
// and the ID-ordered fold rule (§14) exist to prevent.
//
// Two shapes are flagged, in result-affecting packages only:
//
//   - an accumulator declared outside a range-over-map body that the
//     body compound-assigns (+=, -=, *=, /=, ++/--, or the spelled-out
//     `x = x + e`) with a float type;
//   - the same accumulation inside a go-launched function literal when
//     the target is captured from the enclosing function — completion
//     order then picks the fold order.
//
// Per-iteration locals (declared inside the loop body) reset each pass
// and carry no cross-iteration order dependence; they are exempt.
// Targets that are fields or elements are always treated as shared.
// The overlap with detmap on map-ranged bodies is deliberate: detmap
// flags order-dependent map iteration generally, floatdet names the
// numeric mechanism and fires even where detmap's heuristics are
// silent. Approximation notes live in DESIGN.md §17.
var FloatDet = &Analyzer{
	Name: "floatdet",
	Doc:  "float accumulation in map-iteration or goroutine-completion order",
	Run:  runFloatDet,
}

func runFloatDet(pass *Pass) {
	if !resultAffecting(pass.Pkg.RelPath) {
		return
	}
	// A map range inside a go-launched literal matches both shapes;
	// report each accumulation site once.
	reported := make(map[token.Pos]bool)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := pass.Pkg.Info.Types[st.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						scanFloatAccum(pass, st.Body, reported,
							"float accumulation in map iteration order is nondeterministic; collect into an ID-ordered slice and fold sequentially (DESIGN.md §14)")
					}
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
					scanFloatAccum(pass, lit.Body, reported,
						"float accumulation into a captured variable from a goroutine folds in completion order; accumulate locally and merge in ID order (DESIGN.md §14)")
				}
			}
			return true
		})
	}
}

// scanFloatAccum reports float accumulations in body whose target lives
// outside body. Nested function literals are skipped: a closure's own
// accumulation belongs to whatever launches the closure.
func scanFloatAccum(pass *Pass, body *ast.BlockStmt, reported map[token.Pos]bool, msg string) {
	info := pass.Pkg.Info
	report := func(pos token.Pos) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, "%s", msg)
		}
	}
	shallowInspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(st.Lhs) == 1 && isSharedFloatTarget(info, st.Lhs[0], body) {
					report(st.Pos())
				}
			case token.ASSIGN:
				// The spelled-out form: x = x + e / x = e * x.
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) || !isSharedFloatTarget(info, lhs, body) {
						continue
					}
					if bin, ok := ast.Unparen(st.Rhs[i]).(*ast.BinaryExpr); ok && isFoldOp(bin.Op) {
						ls := types.ExprString(ast.Unparen(lhs))
						if types.ExprString(ast.Unparen(bin.X)) == ls || types.ExprString(ast.Unparen(bin.Y)) == ls {
							report(st.Pos())
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if isSharedFloatTarget(info, st.X, body) {
				report(st.Pos())
			}
		}
		return true
	})
}

func isFoldOp(op token.Token) bool {
	return op == token.ADD || op == token.SUB || op == token.MUL || op == token.QUO
}

// isSharedFloatTarget reports whether e is a float-typed store target
// that outlives one body iteration: a variable declared outside body,
// or any field/element (always shared).
func isSharedFloatTarget(info *types.Info, e ast.Expr, body *ast.BlockStmt) bool {
	e = ast.Unparen(e)
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return false
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	}
	return true
}

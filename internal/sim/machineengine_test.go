package sim

import (
	"math"
	"testing"

	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// TestEnginesAgree cross-validates the analytic per-period energy
// accounting against the explicit disk state machine on real workloads
// under several policies. The engines differ only by bounded per-cycle
// modelling choices (see machineengine.go), so totals must agree within
// EngineDivergenceBound.
func TestEnginesAgree(t *testing.T) {
	r := mustRunner(t)
	app, _ := workload.ByName("xemacs")
	traces := app.Traces(31)[:10]
	for _, pol := range []Policy{
		basePolicy(),
		tpPolicy(10 * trace.Second),
		idealPolicy(r.Config().Disk.Breakeven),
	} {
		analytic, err := r.RunApp(traces, pol)
		if err != nil {
			t.Fatal(err)
		}
		machine, err := r.MachineEnergy(traces, pol)
		if err != nil {
			t.Fatal(err)
		}
		bound := EngineDivergenceBound(r.Config().Disk, analytic.Cycles)
		diff := math.Abs(machine.Total() - analytic.Energy.Total())
		if diff > bound {
			t.Errorf("%s: engines diverge by %.3f J over %d cycles (bound %.3f);"+
				" analytic %.1f machine %.1f",
				pol.Name, diff, analytic.Cycles, bound,
				analytic.Energy.Total(), machine.Total())
		}
		// With no shutdowns the two engines must agree almost exactly.
		if pol.Name == "Base" && diff > 1e-6 {
			t.Errorf("base case diverges by %.9f J", diff)
		}
	}
}

func TestEngineDivergenceBound(t *testing.T) {
	p := mustRunner(t).Config().Disk
	if EngineDivergenceBound(p, 0) > 1e-5 {
		t.Error("zero cycles should have (near) zero bound")
	}
	if EngineDivergenceBound(p, 10) <= EngineDivergenceBound(p, 1) {
		t.Error("bound must grow with cycles")
	}
}

// Command traceinspect summarizes a trace file written by tracegen: event
// counts, per-process activity, idle-period structure at a given
// breakeven, and optionally the first events in text form.
//
// The file is processed as a stream in a single pass — events are never
// loaded into memory, so arbitrarily large traces (e.g. tracegen output
// concatenated across executions) inspect in constant memory. Files
// holding several executions get one summary block per execution.
//
// The input format (v1 binary, v2 columnar or text) is auto-detected
// from the leading magic bytes. For v2 columnar files, -blocks prints a
// per-block report: events per block, encoded bytes per event, and the
// per-column compression ratio against the raw struct-of-arrays size.
//
// Usage:
//
//	traceinspect traces/mozilla-000.pctr
//	traceinspect -head 25 -breakeven 5.43 traces/nedit-003.pctr
//	traceinspect -blocks traces/mozilla-000.pct2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pcapsim/internal/trace"
)

func main() {
	var (
		headFlag      = flag.Int("head", 0, "print the first N events of each execution as text")
		breakevenFlag = flag.Float64("breakeven", 5.43, "breakeven time in seconds for idle-period stats")
		formatFlag    = flag.String("format", "auto", "input format: binary, v2, text or auto")
		blocksFlag    = flag.Bool("blocks", false, "print per-block stats (v2 columnar files only)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: traceinspect [flags] <trace-file>"))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close() //pcaplint:ignore errcheck-lite file opened read-only; a close failure cannot lose data
	if *blocksFlag {
		if err := inspectBlocks(f); err != nil {
			fatal(err)
		}
		return
	}
	src, err := open(f, *formatFlag)
	if err != nil {
		fatal(err)
	}

	execs := 0
	for {
		app, exec, ok := src.NextExec()
		if !ok {
			break
		}
		if execs > 0 {
			fmt.Println()
		}
		execs++
		inspect(src, app, exec, *headFlag, *breakevenFlag)
	}
	if err := src.Err(); err != nil {
		fatal(err)
	}
	if execs == 0 {
		fatal(fmt.Errorf("%s: no executions found", flag.Arg(0)))
	}
}

// inspect consumes one execution from src and prints its summary. All
// statistics are computed incrementally; only the -head buffer and
// per-process aggregates are retained.
func inspect(src trace.Source, app string, exec int, head int, breakeven float64) {
	type pstat struct {
		ios   int
		first trace.Time
		last  trace.Time
	}
	var (
		v         = trace.NewValidator(app, exec)
		validErr  error
		events    int
		ios       int
		duration  trace.Time
		procs     = map[trace.PID]*pstat{}
		be        = trace.FromSeconds(breakeven)
		prev      trace.Time
		havePrev  bool
		short     int
		long      int
		longTotal trace.Time
		headBuf   []trace.Event
	)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if validErr == nil {
			validErr = v.Event(e)
		}
		events++
		duration = e.Time
		if len(headBuf) < head {
			headBuf = append(headBuf, e)
		}
		if !e.IsIO() {
			continue
		}
		ios++
		p := procs[e.Pid]
		if p == nil {
			p = &pstat{first: e.Time}
			procs[e.Pid] = p
		}
		p.ios++
		p.last = e.Time
		if havePrev {
			gap := e.Time - prev
			if gap >= be {
				long++
				longTotal += gap
			} else if gap > 0 {
				short++
			}
		}
		prev = e.Time
		havePrev = true
	}
	if validErr != nil {
		fmt.Fprintln(os.Stderr, "traceinspect: warning:", validErr)
	}

	fmt.Printf("app %s execution %d\n", app, exec)
	fmt.Printf("events %d (I/O %d), duration %.1f s\n", events, ios, duration.Seconds())

	pids := make([]trace.PID, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	fmt.Println("\nprocesses:")
	for _, pid := range pids {
		p := procs[pid]
		fmt.Printf("  pid %-6d %7d I/Os   active %.1f–%.1f s\n",
			pid, p.ios, p.first.Seconds(), p.last.Seconds())
	}

	fmt.Printf("\nidle periods at breakeven %.2f s: %d long (total %.1f s), %d short\n",
		breakeven, long, longTotal.Seconds(), short)

	if head > 0 {
		fmt.Println("\nfirst events:")
		for _, e := range headBuf {
			fmt.Println(" ", e.String())
		}
	}
}

// open wraps the file in the right streaming decoder, sniffing the
// leading magic bytes when the format is auto.
func open(f *os.File, format string) (trace.Source, error) {
	switch format {
	case "binary":
		return trace.NewDecoder(f), nil
	case "v2":
		return trace.NewBlockSource(f), nil
	case "text":
		return trace.NewTextDecoder(f), nil
	case "auto":
		return trace.NewSniffedSource(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

// inspectBlocks walks a v2 columnar file frame by frame and reports the
// container-level shape of each execution: per-block event counts and
// encoded bytes per event, then per-column encoded sizes against the raw
// struct-of-arrays sizes they decode into.
func inspectBlocks(f *os.File) error {
	src := trace.NewFrameSource(f)
	d := src.Decoder()
	execs := 0
	for {
		app, exec, ok := src.NextExec()
		if !ok {
			break
		}
		if execs > 0 {
			fmt.Println()
		}
		execs++
		fmt.Printf("app %s execution %d (%d events declared)\n", app, exec, d.Count())
		fmt.Println("  block  events    ios  forks    bytes  bytes/event")
		var (
			blocks     int
			events     int
			encoded    int
			colEncoded [trace.NumColumns]int
			colRaw     [trace.NumColumns]int
		)
		for {
			frame, ok := src.NextFrame()
			if !ok {
				break
			}
			st := d.BlockStats()
			total := st.HeaderBytes + st.PayloadBytes
			fmt.Printf("  %5d  %6d %6d %6d %8d %12.2f\n",
				st.Index, st.Events, st.IOs, st.Forks, total,
				float64(total)/float64(st.Events))
			blocks++
			events += frame.Len()
			encoded += total
			for i := 0; i < trace.NumColumns; i++ {
				colEncoded[i] += st.ColBytes[i]
				colRaw[i] += st.RawColBytes(i)
			}
		}
		if err := src.Err(); err != nil {
			return err
		}
		if blocks == 0 {
			continue
		}
		fmt.Printf("  total: %d blocks, %d events, %d bytes (%.2f bytes/event)\n",
			blocks, events, encoded, float64(encoded)/float64(events))
		fmt.Println("\n  column   encoded      raw  ratio")
		for i := 0; i < trace.NumColumns; i++ {
			if colRaw[i] == 0 {
				continue
			}
			fmt.Printf("  %-7s %8d %8d  %5.1f%%\n", trace.ColumnName(i),
				colEncoded[i], colRaw[i], 100*float64(colEncoded[i])/float64(colRaw[i]))
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	if execs == 0 {
		return fmt.Errorf("%s: no executions found (not a v2 columnar trace?)", f.Name())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinspect:", err)
	os.Exit(1)
}

// Package hypothesis turns the simulator into a verification instrument:
// a structured experiment spec — hypothesis statement, parameters,
// controls, success criteria — runs candidate and baseline policies over
// one workload, records every shutdown decision, and renders a verdict
// with per-decision energy attribution and an optional counterfactual
// replay that re-runs the simulation with selected decisions flipped.
//
// The spec is JSON on disk (see examples/pcap-vs-timeout.json) and is
// executed by `pcapsim -experiment spec.json`. DESIGN.md §13 documents
// the schema and the flip-replay equivalence argument the attribution
// rests on.
package hypothesis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"pcapsim/internal/disk"
	"pcapsim/internal/experiments"
	"pcapsim/internal/workload"
)

// Criterion is one success criterion: a named metric compared against a
// threshold. The metric names are listed by MetricNames; Op is one of
// ">=", ">", "<=", "<", "==", "!=". Tolerance applies to the equality
// operators: "==" passes when |actual-value| <= tolerance, "!=" when it
// exceeds it.
type Criterion struct {
	Metric    string  `json:"metric"`
	Op        string  `json:"op"`
	Value     float64 `json:"value"`
	Tolerance float64 `json:"tolerance,omitempty"`
}

// validOps are the comparison operators a criterion may use.
var validOps = map[string]bool{
	">=": true, ">": true, "<=": true, "<": true, "==": true, "!=": true,
}

// Counterfactual selects decisions of the candidate run to flip in a
// replay. Flip is "worst" (the decision whose inversion saves the most
// energy, i.e. most negative FlipDelta) or "index" (the decision at
// Index). TopN bounds the attribution table (default 5).
type Counterfactual struct {
	Flip  string `json:"flip"`
	Index int64  `json:"index,omitempty"`
	TopN  int    `json:"topn,omitempty"`
}

// Spec is one executable hypothesis. Candidate and Baseline name policies
// from experiments.ReplayPolicyNames; App names one of the paper's
// applications; Device optionally selects a drive profile from
// disk.Devices (default: the paper's Fujitsu drive). Seed defaults to
// experiments.DefaultSeed and Scale to 1 — the controls that pin the
// workload, so a spec re-run anywhere reproduces the same virtual world
// byte for byte.
type Spec struct {
	Name           string          `json:"name"`
	Hypothesis     string          `json:"hypothesis"`
	App            string          `json:"app"`
	Candidate      string          `json:"candidate"`
	Baseline       string          `json:"baseline"`
	Seed           uint64          `json:"seed,omitempty"`
	Scale          int             `json:"scale,omitempty"`
	Device         string          `json:"device,omitempty"`
	Criteria       []Criterion     `json:"criteria"`
	Counterfactual *Counterfactual `json:"counterfactual,omitempty"`
}

// Parse decodes and validates a spec. Unknown fields, trailing data and
// semantic errors (unknown app, policy, device, metric or operator) all
// error; a nil error guarantees the spec is runnable.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("hypothesis: parsing spec: %w", err)
	}
	// A second Decode must hit EOF: concatenated JSON documents are not a
	// spec.
	if dec.More() {
		return nil, fmt.Errorf("hypothesis: parsing spec: trailing data after JSON document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec against the registries it draws from.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("hypothesis: spec needs a name")
	}
	if s.Hypothesis == "" {
		return fmt.Errorf("hypothesis: spec %q needs a hypothesis statement", s.Name)
	}
	if _, ok := workload.ByName(s.App); !ok {
		return fmt.Errorf("hypothesis: spec %q: unknown app %q (known: %s)", s.Name, s.App, appNames())
	}
	for _, role := range []struct{ label, policy string }{
		{"candidate", s.Candidate}, {"baseline", s.Baseline},
	} {
		if !knownPolicy(role.policy) {
			return fmt.Errorf("hypothesis: spec %q: unknown %s policy %q (known: %s)",
				s.Name, role.label, role.policy, strings.Join(experiments.ReplayPolicyNames(), ", "))
		}
	}
	if s.Scale < 0 {
		return fmt.Errorf("hypothesis: spec %q: negative scale %d", s.Name, s.Scale)
	}
	if s.Device != "" {
		if _, ok := DeviceByName(s.Device); !ok {
			return fmt.Errorf("hypothesis: spec %q: unknown device %q (known: %s)", s.Name, s.Device, deviceNames())
		}
	}
	if len(s.Criteria) == 0 {
		return fmt.Errorf("hypothesis: spec %q needs at least one criterion", s.Name)
	}
	for i, c := range s.Criteria {
		if !knownMetric(c.Metric) {
			return fmt.Errorf("hypothesis: spec %q criterion %d: unknown metric %q (known: %s)",
				s.Name, i, c.Metric, strings.Join(MetricNames(), ", "))
		}
		if !validOps[c.Op] {
			return fmt.Errorf("hypothesis: spec %q criterion %d: unknown op %q", s.Name, i, c.Op)
		}
		if c.Tolerance < 0 {
			return fmt.Errorf("hypothesis: spec %q criterion %d: negative tolerance", s.Name, i)
		}
	}
	if cf := s.Counterfactual; cf != nil {
		switch cf.Flip {
		case "worst":
		case "index":
			if cf.Index < 0 {
				return fmt.Errorf("hypothesis: spec %q: negative counterfactual index", s.Name)
			}
		default:
			return fmt.Errorf("hypothesis: spec %q: counterfactual flip must be \"worst\" or \"index\", got %q", s.Name, cf.Flip)
		}
		if cf.TopN < 0 {
			return fmt.Errorf("hypothesis: spec %q: negative counterfactual topn", s.Name)
		}
	}
	return nil
}

// Encode renders the spec in canonical form: indented JSON, struct field
// order, no HTML escaping (operators like ">=" stay literal), trailing
// newline. Encode∘Parse is a fixed point — re-encoding a parsed canonical
// spec reproduces it byte for byte (the fuzz target enforces this).
func (s *Spec) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("hypothesis: encoding spec: %w", err)
	}
	return buf.Bytes(), nil
}

// seed returns the effective workload seed.
func (s *Spec) seed() uint64 {
	if s.Seed == 0 {
		return experiments.DefaultSeed
	}
	return s.Seed
}

// scale returns the effective workload scale.
func (s *Spec) scale() int {
	if s.Scale == 0 {
		return 1
	}
	return s.Scale
}

// DeviceByName resolves a case-insensitive device name against
// disk.Devices.
func DeviceByName(name string) (disk.Params, bool) {
	for _, d := range disk.Devices() {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return disk.Params{}, false
}

// knownPolicy reports whether name is an accepted replay policy.
func knownPolicy(name string) bool {
	for _, n := range experiments.ReplayPolicyNames() {
		if strings.EqualFold(name, n) {
			return true
		}
	}
	return false
}

// appNames lists the workload registry for error messages.
func appNames() string {
	apps := workload.Apps()
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// deviceNames lists the device registry for error messages.
func deviceNames() string {
	devs := disk.Devices()
	names := make([]string, len(devs))
	for i, d := range devs {
		names[i] = d.Name
	}
	return strings.Join(names, ", ")
}

// Package core implements PCAP, the Program-Counter Access Predictor —
// the paper's primary contribution.
//
// PCAP observes the sequence of program counters (PCs) that trigger a
// process's disk I/Os. The PCs accumulated since the last long idle period
// form a *path*, encoded as a 4-byte *signature* by arithmetic addition
// (after Lai & Falsafi's last-touch predictor). When an idle period longer
// than the disk's breakeven time ends, the signature that led into it is
// recorded in the application's prediction table; when the same signature
// recurs, PCAP predicts a long idle period and schedules an immediate
// shutdown, guarded by a sliding wait-window that cancels the shutdown if
// another access arrives quickly. While a signature is untrained, a backup
// timeout predictor covers the idle period.
//
// The optimizations of the paper's Section 4 are all here:
//
//   - PCAPh: an idle-period history bit-vector (0 = idle shorter than
//     breakeven, 1 = longer; periods under the wait-window are skipped)
//     augments the table key and disambiguates subpath aliasing.
//   - PCAPf: the file descriptor of the access preceding the idle period
//     augments the table key.
//   - Prediction-table reuse: the table is application-wide state, shared
//     by all processes of the application and across executions, and can
//     be serialized to the application's initialization file (package
//     persist). Discarding it between executions yields the paper's PCAPa.
//   - LRU bounding of the table for long-running workloads.
package core

import (
	"fmt"

	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

// Encoding selects how a PC path folds into a 4-byte signature.
type Encoding uint8

// Path encodings.
const (
	// EncodingSum is the paper's arithmetic addition of PCs: order
	// insensitive, one add per access. The paper observed no aliasing
	// with it.
	EncodingSum Encoding = iota
	// EncodingRotXor rotates the signature left by five bits and XORs the
	// PC in, making the encoding order sensitive — an ablation point for
	// the paper's choice of addition.
	EncodingRotXor
)

// String returns the encoding name.
func (e Encoding) String() string {
	switch e {
	case EncodingSum:
		return "sum"
	case EncodingRotXor:
		return "rotxor"
	default:
		return fmt.Sprintf("encoding(%d)", uint8(e))
	}
}

// extend folds one more PC into a signature.
func (e Encoding) extend(sig Signature, pc trace.PC) Signature {
	switch e {
	case EncodingRotXor:
		return (sig<<5 | sig>>27) ^ Signature(pc)
	default:
		return sig + Signature(pc)
	}
}

// Variant names a PCAP configuration from the paper.
type Variant uint8

// PCAP variants (Figure 9's A–D).
const (
	// VariantBase is plain path-signature PCAP.
	VariantBase Variant = iota
	// VariantH adds the idle-period history bit-vector (PCAPh).
	VariantH
	// VariantF adds the file descriptor to the table key (PCAPf).
	VariantF
	// VariantFH combines history and file descriptor (PCAPfh).
	VariantFH
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantBase:
		return "PCAP"
	case VariantH:
		return "PCAPh"
	case VariantF:
		return "PCAPf"
	case VariantFH:
		return "PCAPfh"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// UsesHistory reports whether the variant keys on the idle-history vector.
func (v Variant) UsesHistory() bool { return v == VariantH || v == VariantFH }

// UsesFD reports whether the variant keys on the file descriptor.
func (v Variant) UsesFD() bool { return v == VariantF || v == VariantFH }

// Config parameterizes a PCAP predictor.
type Config struct {
	// Variant selects base PCAP or one of the optimized variants.
	Variant Variant
	// WaitWindow is the sliding wait-window: primary predictions shut the
	// disk down this long after the triggering access, and an access
	// inside the window cancels the shutdown. The paper uses 1 s.
	WaitWindow trace.Time
	// BackupTimeout is the backup timeout predictor's timer, used when
	// the current signature is untrained. The paper uses 10 s.
	BackupTimeout trace.Time
	// Breakeven is the disk's breakeven time; idle periods at least this
	// long are the training targets.
	Breakeven trace.Time
	// HistoryLen is the idle-history bit-vector length for the h/fh
	// variants. The paper uses 6. Maximum 16.
	HistoryLen int
	// TableBound, if positive, caps the prediction table at that many
	// entries with LRU replacement. Zero means unbounded.
	TableBound int
	// Encoding selects the path-to-signature fold; the zero value is the
	// paper's arithmetic sum.
	Encoding Encoding
	// UnlearnMisses, when set, removes a table entry after it causes a
	// misprediction (the entry matched, the disk was shut down, and the
	// idle period turned out shorter than breakeven). The paper keeps
	// entries forever and relies on LRU replacement to age out stale
	// behaviour; this option trades coverage on genuinely bimodal paths
	// for fewer repeat misses.
	UnlearnMisses bool
	// Observer, if non-nil, receives every lookup and training event —
	// instrumentation for tests and debugging only.
	Observer func(ev ObserveEvent)
}

// ObserveEvent reports one PCAP predictor event to a Config.Observer.
type ObserveEvent struct {
	// Pid is the observed process.
	Pid trace.PID
	// Time and PC identify the triggering access.
	Time trace.Time
	PC   trace.PC
	// Key is the probed (on lookups) or trained (on training) table key.
	Key Key
	// Trained marks a training insert; otherwise the event is a lookup
	// whose result is Matched.
	Trained bool
	Matched bool
}

// DefaultConfig returns the paper's configuration for the given variant:
// 1 s wait-window, 10 s backup timeout, 5.43 s breakeven, history length 6.
func DefaultConfig(v Variant) Config {
	return Config{
		Variant:       v,
		WaitWindow:    trace.Second,
		BackupTimeout: 10 * trace.Second,
		Breakeven:     trace.FromSeconds(5.43),
		HistoryLen:    6,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.WaitWindow <= 0:
		return fmt.Errorf("core: wait window must be positive, got %v", c.WaitWindow)
	case c.BackupTimeout <= 0:
		return fmt.Errorf("core: backup timeout must be positive, got %v", c.BackupTimeout)
	case c.Breakeven <= 0:
		return fmt.Errorf("core: breakeven must be positive, got %v", c.Breakeven)
	case c.WaitWindow >= c.Breakeven:
		return fmt.Errorf("core: wait window %v must be below breakeven %v", c.WaitWindow, c.Breakeven)
	case c.Variant.UsesHistory() && (c.HistoryLen < 1 || c.HistoryLen > 16):
		return fmt.Errorf("core: history length must be in [1,16], got %d", c.HistoryLen)
	case c.TableBound < 0:
		return fmt.Errorf("core: table bound must be non-negative, got %d", c.TableBound)
	}
	return nil
}

// PCAP is the application-wide predictor: it owns the prediction table
// shared by all of the application's processes and implements
// predictor.Factory. It is safe for concurrent use by multiple process
// instances.
type PCAP struct {
	cfg   Config
	table *Table
}

var _ predictor.Factory = (*PCAP)(nil)

// New returns a PCAP factory with an empty prediction table.
func New(cfg Config) (*PCAP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PCAP{cfg: cfg, table: NewTable(cfg.TableBound)}, nil
}

// MustNew is New, panicking on configuration errors. Intended for
// tests and examples with literal configurations.
func MustNew(cfg Config) *PCAP {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements predictor.Factory.
func (p *PCAP) Name() string { return p.cfg.Variant.String() }

// Config returns the configuration.
func (p *PCAP) Config() Config { return p.cfg }

// Table returns the application's prediction table.
func (p *PCAP) Table() *Table { return p.table }

// NewProcess implements predictor.Factory. The returned process predictor
// holds the per-process context the paper keeps in the kernel process
// status structure (current signature, idle-history register) and shares
// the application's prediction table.
func (p *PCAP) NewProcess(pid trace.PID) predictor.Process {
	return &processPredictor{owner: p, pid: pid}
}

// processPredictor is PCAP's per-process state.
type processPredictor struct {
	owner *PCAP
	pid   trace.PID

	// started reports whether the process has performed an access.
	started bool
	// last is the time of the most recent access.
	last trace.Time
	// sig is the current path signature: the arithmetic sum of the PCs of
	// the I/Os since the last long idle period.
	sig Signature
	// hist is the idle-period history register; bit 0 is the most recent
	// period (1 = long).
	hist uint16
	// lastKey is the exact table key probed at the previous access; it is
	// what gets trained if the following idle period turns out long.
	lastKey Key
	// lastMatched records whether lastKey matched (for UnlearnMisses).
	lastMatched bool
}

// OnAccess implements predictor.Process.
func (pp *processPredictor) OnAccess(a predictor.Access) predictor.Decision {
	cfg := &pp.owner.cfg
	if !pp.started {
		pp.started = true
		pp.sig = Signature(a.PC)
	} else {
		gap := a.Time - pp.last
		if cfg.UnlearnMisses && pp.lastMatched && gap >= cfg.WaitWindow && gap < cfg.Breakeven {
			// The previous prediction shut the disk down into a short
			// period: retract the offending entry.
			pp.owner.table.Forget(pp.lastKey)
		}
		if gap >= cfg.Breakeven {
			// The previous access led into a long idle period: train the
			// key probed there, then start a fresh path at this access.
			pp.owner.table.Train(pp.lastKey)
			if cfg.Observer != nil {
				cfg.Observer(ObserveEvent{Pid: pp.pid, Time: a.Time, PC: a.PC, Key: pp.lastKey, Trained: true})
			}
			pp.pushHistory(1)
			pp.sig = Signature(a.PC)
		} else {
			if gap >= cfg.WaitWindow {
				// A short-but-unfiltered idle period: history bit 0.
				// Periods under the wait-window are filtered at run time
				// and never enter the history.
				pp.pushHistory(0)
			}
			pp.sig = cfg.Encoding.extend(pp.sig, a.PC)
		}
	}
	pp.last = a.Time

	key := Key{Sig: pp.sig}
	if cfg.Variant.UsesHistory() {
		key.Hist = pp.hist & histMask(cfg.HistoryLen)
		key.HasHist = true
	}
	if cfg.Variant.UsesFD() {
		key.FD = a.FD
		key.HasFD = true
	}
	pp.lastKey = key

	matched := pp.owner.table.Lookup(key)
	pp.lastMatched = matched
	if cfg.Observer != nil {
		cfg.Observer(ObserveEvent{Pid: pp.pid, Time: a.Time, PC: a.PC, Key: key, Matched: matched})
	}
	if matched {
		return predictor.Decision{
			Shutdown: true,
			Delay:    cfg.WaitWindow,
			Source:   predictor.SourcePrimary,
		}
	}
	// Untrained signature: the backup timeout predictor covers the idle
	// period. This is the only time the timeout predictor overrides the
	// implied "no idle" prediction.
	return predictor.Decision{
		Shutdown: true,
		Delay:    cfg.BackupTimeout,
		Source:   predictor.SourceBackup,
	}
}

func (pp *processPredictor) pushHistory(bit uint16) {
	pp.hist = pp.hist<<1 | bit
}

func histMask(n int) uint16 {
	if n >= 16 {
		return ^uint16(0)
	}
	return uint16(1)<<uint(n) - 1
}

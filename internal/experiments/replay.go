package experiments

import (
	"fmt"
	"strings"

	"pcapsim/internal/core"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
)

// Trace replay: run recorded trace files (any on-disk format — v1 binary,
// v2 columnar or text) through the simulator under a chosen set of
// policies, without going through the synthetic workload generator. This
// is the path external traces take into the simulator.

// replayPolicyNames lists the policy names PolicyByName accepts, in
// render order.
var replayPolicyNames = []string{
	"base", "tp", "lt", "lta", "pcap", "pcaph", "pcapf", "pcapfh", "pcapa", "ideal",
}

// ReplayPolicyNames returns the policy names accepted by PolicyByName.
func ReplayPolicyNames() []string {
	return append([]string(nil), replayPolicyNames...)
}

// PolicyByName resolves a case-insensitive policy name ("base", "tp",
// "lt", "lta", "pcap", "pcaph", "pcapf", "pcapfh", "pcapa", "ideal") to
// the suite's policy of that name.
func (s *Suite) PolicyByName(name string) (sim.Policy, bool) {
	switch strings.ToLower(name) {
	case "base":
		return s.PolicyBase(), true
	case "tp":
		return s.PolicyTP(), true
	case "lt":
		return s.PolicyLT(), true
	case "lta":
		return s.PolicyLTa(), true
	case "pcap":
		return s.PolicyPCAP(core.VariantBase), true
	case "pcaph":
		return s.PolicyPCAP(core.VariantH), true
	case "pcapf":
		return s.PolicyPCAP(core.VariantF), true
	case "pcapfh":
		return s.PolicyPCAP(core.VariantFH), true
	case "pcapa":
		return s.PolicyPCAPa(), true
	case "ideal":
		return s.PolicyIdeal(), true
	default:
		return sim.Policy{}, false
	}
}

// DefaultReplayPolicies is the policy list replay runs use when none is
// given: the paper's base/timeout/PCAP/oracle comparison.
var DefaultReplayPolicies = []string{"base", "tp", "pcap", "ideal"}

// ReplayRow is one policy's outcome in a replay run: the resolved policy
// name and the full simulation result. Rows are data, not presentation —
// RenderReplayRows turns a row slice into the comparison table, and the
// simulation daemon accounts energy and event totals straight off the
// Result fields.
type ReplayRow struct {
	Policy string
	Result *sim.AppResult
}

// ReplayRows runs every named policy over the source and returns one row
// per policy, in order. The source is Reset between policies, so it must
// be resettable (file-backed sources are).
func (s *Suite) ReplayRows(src trace.Source, policies []string) ([]ReplayRow, error) {
	return s.ReplayRowsObserved(src, policies, nil)
}

// ReplayRowsObserved is ReplayRows with a per-policy completion hook:
// observe (when non-nil) receives each row as soon as its policy's run
// finishes, on the calling goroutine — the daemon's per-policy progress
// stream. The returned rows are identical to ReplayRows'.
func (s *Suite) ReplayRowsObserved(src trace.Source, policies []string, observe func(ReplayRow)) ([]ReplayRow, error) {
	if len(policies) == 0 {
		policies = DefaultReplayPolicies
	}
	rows := make([]ReplayRow, 0, len(policies))
	for i, name := range policies {
		pol, ok := s.PolicyByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown policy %q (known: %s)",
				name, strings.Join(replayPolicyNames, ", "))
		}
		if i > 0 {
			if err := src.Reset(); err != nil {
				return nil, fmt.Errorf("experiments: resetting trace source: %w", err)
			}
		}
		res, err := s.runner.RunSource(src, pol)
		if err != nil {
			return nil, fmt.Errorf("experiments: replay under %s: %w", pol.Name, err)
		}
		row := ReplayRow{Policy: pol.Name, Result: res}
		rows = append(rows, row)
		if observe != nil {
			observe(row)
		}
	}
	return rows, nil
}

// RenderReplayRows renders replay rows as the policy comparison table.
// Energy savings are reported against the first row's energy, so leading
// with "base" gives the paper's savings-versus-always-on numbers.
func RenderReplayRows(rows []ReplayRow) string {
	tbl := newTable("Policy", "Execs", "I/Os", "Disk", "Energy (J)", "Savings", "Shutdowns", "Wakeups", "Wait (s)")
	var baseline float64
	for i, row := range rows {
		res := row.Result
		total := res.Energy.Total()
		savings := "—"
		if i == 0 {
			baseline = total
		} else if baseline > 0 {
			savings = pct(1 - total/baseline)
		}
		tbl.Row(row.Policy,
			fmt.Sprintf("%d", res.Executions),
			fmt.Sprintf("%d", res.TotalIOs),
			fmt.Sprintf("%d", res.DiskAccesses),
			fmt.Sprintf("%.1f", total),
			savings,
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", res.Wakeups),
			fmt.Sprintf("%.1f", res.WaitTime.Seconds()))
	}
	return tbl.String()
}

// ReplaySource runs every named policy over the source and renders one
// result row per policy — ReplayRows followed by RenderReplayRows.
func (s *Suite) ReplaySource(src trace.Source, policies []string) (string, error) {
	rows, err := s.ReplayRows(src, policies)
	if err != nil {
		return "", err
	}
	return RenderReplayRows(rows), nil
}

// ReplayOptions tune how ReplayFileOpts decodes the trace before it
// reaches the simulator.
type ReplayOptions struct {
	// Workers selects parallel block decode for v2 files (see
	// trace.OpenOptions.Workers): 0 is the sequential reference path,
	// < 0 means one worker per CPU.
	Workers int
	// Pred restricts the replay to matching events. Index-bearing v2
	// files skip non-matching blocks without reading them; the stream
	// is always filtered exactly, so every format and decode path
	// simulates the same events.
	Pred trace.Predicate
}

// ReplayFile opens a trace file (v1 binary, v2 columnar or text — the
// format is sniffed from the leading bytes) and replays it under the
// named policies; see ReplaySource.
func (s *Suite) ReplayFile(path string, policies []string) (string, error) {
	return s.ReplayFileOpts(path, policies, ReplayOptions{})
}

// ReplayFileOpts is ReplayFile with decode options: parallel block
// decode and predicate pushdown. The zero options replay exactly like
// ReplayFile.
func (s *Suite) ReplayFileOpts(path string, policies []string, opts ReplayOptions) (string, error) {
	fs, err := trace.OpenTraceFileOpts(path, trace.OpenOptions{Workers: opts.Workers, Pred: opts.Pred})
	if err != nil {
		return "", err
	}
	defer fs.Close()
	out, err := s.ReplaySource(fs, policies)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("replay %s\n\n%s", path, out), nil
}

package fleet

import (
	"fmt"
	"testing"

	"pcapsim/internal/disk"
	"pcapsim/internal/predictor"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
)

// tpPolicy is a device-independent 10 s timeout policy — enough machinery
// to drive the engine without importing the experiments suite.
func tpPolicy() func(disk.Params) (sim.Policy, error) {
	return StaticPolicy(sim.Policy{
		Name:       "TP",
		NewFactory: func() predictor.Factory { return predictor.NewTimeout(10 * trace.Second) },
	})
}

func testConfig(machines int) Config {
	return Config{
		Machines: machines,
		Seed:     7,
		Session:  300 * trace.Second,
		Policy:   tpPolicy(),
		Workers:  1,
	}
}

// TestHeapOrdering drains a hand-loaded heap and checks (time, id) order,
// including the ID tie-break.
func TestHeapOrdering(t *testing.T) {
	var h eventHeap
	times := []trace.Time{40, 7, 7, 99, 0, 23, 7, 40, 1}
	for i, tm := range times {
		h.push(heapItem{t: tm, id: i})
	}
	var last heapItem
	for i := 0; len(h) > 0; i++ {
		it := h.pop()
		if i > 0 && (it.t < last.t || (it.t == last.t && it.id < last.id)) {
			t.Fatalf("pop %d: (%v, %d) after (%v, %d)", i, it.t, it.id, last.t, last.id)
		}
		last = it
	}
}

// TestSpecDeterminism checks machine identity derivation is a pure
// function of (seed, id): two fleets with the same config agree, and the
// mix source replays byte-identically after Reset.
func TestSpecDeterminism(t *testing.T) {
	f1, err := New(testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := New(testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 16; id++ {
		if s1, s2 := f1.Spec(id), f2.Spec(id); s1 != s2 {
			t.Fatalf("machine %d: spec %+v vs %+v", id, s1, s2)
		}
	}
	if s0, s1 := f1.Spec(0), f1.Spec(1); s0 == s1 {
		t.Fatalf("machines 0 and 1 drew identical specs %+v", s0)
	}

	src := f1.newMixSource(3)
	var first []trace.Event
	app1, _, ok := src.NextExec()
	if !ok {
		t.Fatal("empty session")
	}
	first = append(first, src.ExecEvents()...)
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	app2, _, ok := src.NextExec()
	if !ok {
		t.Fatal("empty session after Reset")
	}
	if app1 != app2 {
		t.Fatalf("first app %q, after Reset %q", app1, app2)
	}
	replay := src.ExecEvents()
	if len(replay) != len(first) {
		t.Fatalf("replay has %d events, first pass %d", len(replay), len(first))
	}
	for i := range replay {
		if replay[i] != first[i] {
			t.Fatalf("event %d: %+v vs %+v", i, replay[i], first[i])
		}
	}
}

// TestShardInsertionOrder runs the same shard with ascending, reversed and
// interleaved machine-ID insertion orders: the schedule is rebuilt from
// arrival times, so per-machine results must not depend on the order ids
// were handed to the shard.
func TestShardInsertionOrder(t *testing.T) {
	const n = 24
	f, err := New(testConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	run := func(ids []int) []sim.AppResult {
		results := make([]sim.AppResult, n)
		if err := f.runShard(ids, results); err != nil {
			t.Fatal(err)
		}
		return results
	}
	asc := make([]int, n)
	rev := make([]int, n)
	mix := make([]int, 0, n)
	for i := 0; i < n; i++ {
		asc[i] = i
		rev[i] = n - 1 - i
	}
	for i := 0; i < n; i += 2 {
		mix = append(mix, i)
	}
	for i := 1; i < n; i += 2 {
		mix = append(mix, i)
	}
	want := run(asc)
	for name, ids := range map[string][]int{"reversed": rev, "interleaved": mix} {
		got := run(ids)
		for id := range want {
			if fmt.Sprintf("%+v", got[id]) != fmt.Sprintf("%+v", want[id]) {
				t.Fatalf("%s insertion: machine %d result differs:\n got %+v\nwant %+v",
					name, id, got[id], want[id])
			}
		}
	}
}

// TestSessionBounds checks both session modes: a time-bounded session
// simulates at least Session virtual time, and an execution-bounded one
// runs exactly the requested count.
func TestSessionBounds(t *testing.T) {
	cfg := testConfig(8)
	perMachine := make([]sim.AppResult, 8)
	cfg.Observe = func(id int, res *sim.AppResult) { perMachine[id] = *res }
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	for id, res := range perMachine {
		if res.Executions < 1 {
			t.Errorf("machine %d ran %d executions, want >= 1", id, res.Executions)
		}
		if res.SimTime < cfg.Session {
			t.Errorf("machine %d simulated %v, want >= %v", id, res.SimTime, cfg.Session)
		}
	}

	cfg = testConfig(8)
	cfg.Session = 0
	cfg.Executions = 3
	cfg.Stagger = 60 * trace.Second
	cfg.Observe = func(id int, res *sim.AppResult) { perMachine[id] = *res }
	f, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	for id, res := range perMachine {
		if res.Executions != 3 {
			t.Errorf("machine %d ran %d executions, want exactly 3", id, res.Executions)
		}
	}
}

// replayTrace builds a small recorded trace for replay tests.
func replayTrace(app string, exec int, pcBase trace.PC, n int) *trace.Trace {
	tr := &trace.Trace{App: app, Execution: exec}
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, trace.Event{
			Time: trace.Time(i+1) * 2 * trace.Second, Pid: 1, Kind: trace.KindIO,
			Access: trace.AccessRead, PC: pcBase + trace.PC(i%4), FD: 3,
			Block: int64(i), Size: 4096,
		})
	}
	return tr
}

// TestReplayApps checks the recorded-trace workload adapter: traces
// group by app name in first-appearance order, execution i round-robins
// over a group's recordings, and repeat passes warp timestamps exactly
// like the synthetic generator's drift model.
func TestReplayApps(t *testing.T) {
	a0 := replayTrace("editor", 0, 0x1000, 8)
	b0 := replayTrace("browser", 0, 0x2000, 5)
	a1 := replayTrace("editor", 1, 0x1100, 6)
	apps, weights, err := replayApps([]*trace.Trace{a0, b0, a1})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 2 || apps[0].name != "editor" || apps[1].name != "browser" {
		t.Fatalf("grouping: got %d apps, want editor,browser first-appearance order", len(apps))
	}
	if len(weights) != 2 || weights[0] != weights[1] {
		t.Fatalf("weights = %v, want equal", weights)
	}
	for exec, want := range []*trace.Trace{a0, a1, a0, a1} {
		got := apps[0].appendEvents(nil, 7, exec)
		if len(got) != len(want.Events) {
			t.Fatalf("exec %d: %d events, want %d", exec, len(got), len(want.Events))
		}
		pass := exec / 2
		for i, e := range got {
			src := want.Events[i]
			src.Time = trace.WarpTime(src.Time, pass)
			if e != src {
				t.Fatalf("exec %d event %d: %+v, want %+v", exec, i, e, src)
			}
		}
	}
	// Pass 1 must drift relative to pass 0 — otherwise every machine
	// replays an identical session and the fleet degenerates.
	first := apps[0].appendEvents(nil, 7, 0)
	repeat := apps[0].appendEvents(nil, 7, 2)
	if first[len(first)-1].Time >= repeat[len(repeat)-1].Time {
		t.Fatalf("pass 1 did not warp time forward: %v vs %v",
			first[len(first)-1].Time, repeat[len(repeat)-1].Time)
	}
}

// TestReplayFleet runs a fleet on recorded traces: the run must be
// deterministic across identical configs, and every session must draw
// from the recorded apps only.
func TestReplayFleet(t *testing.T) {
	traces := []*trace.Trace{
		replayTrace("editor", 0, 0x1000, 40),
		replayTrace("browser", 0, 0x2000, 30),
	}
	run := func() []sim.AppResult {
		cfg := testConfig(6)
		cfg.Replay = traces
		perMachine := make([]sim.AppResult, 6)
		cfg.Observe = func(id int, res *sim.AppResult) { perMachine[id] = *res }
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(); err != nil {
			t.Fatal(err)
		}
		return perMachine
	}
	first, second := run(), run()
	for id := range first {
		if fmt.Sprintf("%+v", first[id]) != fmt.Sprintf("%+v", second[id]) {
			t.Fatalf("machine %d: replay fleet nondeterministic:\n %+v\nvs %+v",
				id, first[id], second[id])
		}
		if first[id].Executions < 1 {
			t.Errorf("machine %d ran %d executions, want >= 1", id, first[id].Executions)
		}
	}
}

// TestNewValidation exercises the config error paths.
func TestNewValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"no machines":    func(c *Config) { c.Machines = 0 },
		"nil policy":     func(c *Config) { c.Policy = nil },
		"unknown app":    func(c *Config) { c.Mix = []AppShare{{Name: "solitaire", Weight: 1}} },
		"bad app weight": func(c *Config) { c.Mix = []AppShare{{Name: "mozilla", Weight: -1}} },
		"bad dev weight": func(c *Config) { c.Devices = []DeviceShare{{Device: disk.FujitsuMHF2043AT(), Weight: 0}} },
		"negative execs": func(c *Config) { c.Executions = -1 },
		"empty replay trace": func(c *Config) {
			c.Replay = []*trace.Trace{{App: "editor", Execution: 0}}
		},
		"replay plus mix": func(c *Config) {
			c.Replay = []*trace.Trace{replayTrace("editor", 0, 0x1000, 4)}
			c.Mix = []AppShare{{Name: "mozilla", Weight: 1}}
		},
		"negative window": func(c *Config) { c.Stagger = -trace.Second },
		"mixed policy names": func(c *Config) {
			n := 0
			c.Policy = func(disk.Params) (sim.Policy, error) {
				n++
				return sim.Policy{
					Name:       fmt.Sprintf("TP%d", n),
					NewFactory: func() predictor.Factory { return predictor.NewTimeout(10 * trace.Second) },
				}, nil
			}
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(4)
			mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("New accepted an invalid config")
			}
		})
	}
}

// TestPeakConcurrency checks the interval sweep: with no stagger every
// session overlaps at time zero, and with a stagger far longer than the
// sessions the peak collapses below the fleet size.
func TestPeakConcurrency(t *testing.T) {
	cfg := testConfig(12)
	cfg.Executions = 1
	cfg.Session = 0
	cfg.Stagger = 0 // all sessions arrive at t=0
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakConcurrent != 12 {
		t.Errorf("unstaggered peak = %d, want 12", res.PeakConcurrent)
	}

	cfg = testConfig(12)
	cfg.Executions = 1
	cfg.Session = 0
	cfg.Stagger = 40 * 3600 * trace.Second // ~3.3 h between arrivals on average
	f, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakConcurrent >= 12 {
		t.Errorf("widely staggered peak = %d, want < 12", res.PeakConcurrent)
	}
	if res.PeakConcurrent < 1 {
		t.Errorf("peak = %d, want >= 1", res.PeakConcurrent)
	}
}

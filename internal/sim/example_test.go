package sim_test

import (
	"fmt"

	"pcapsim/internal/core"
	"pcapsim/internal/predictor"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
)

// Example simulates a hand-made two-period trace under the timeout
// predictor: one 30-second idle period (hit, off-time 20 s) and one
// 12-second period (miss, off-time 2 s).
func Example() {
	tr := &trace.Trace{App: "demo"}
	for i, sec := range []float64{0, 30, 42} {
		tr.Events = append(tr.Events, trace.Event{
			Time: trace.FromSeconds(sec), Pid: 1, Kind: trace.KindIO,
			Access: trace.AccessRead, PC: 0x1000, FD: 3,
			Block: int64(i * 100), Size: 4096,
		})
	}
	tr.Events = append(tr.Events, trace.Event{
		Time: trace.FromSeconds(42.1), Pid: 1, Kind: trace.KindExit,
	})

	runner := sim.MustNewRunner(sim.DefaultConfig())
	res, _ := runner.RunApp([]*trace.Trace{tr}, sim.Policy{
		Name:       "TP",
		NewFactory: func() predictor.Factory { return predictor.NewTimeout(10 * trace.Second) },
	})
	g := res.Global
	fmt.Printf("long periods: %d, hits: %d, misses: %d\n", g.LongPeriods, g.Hits(), g.Misses())
	fmt.Printf("shutdowns: %d, spin-up waits: %d\n", res.Cycles, res.Wakeups)
	// Output:
	// long periods: 2, hits: 1, misses: 1
	// shutdowns: 2, spin-up waits: 2
}

// ExamplePolicy_reuse contrasts prediction-table reuse with per-execution
// discard on a repetitive workload: two executions of the same session.
func ExamplePolicy_reuse() {
	session := func(exec int) *trace.Trace {
		tr := &trace.Trace{App: "editor", Execution: exec}
		for i, sec := range []float64{0, 0.2, 40, 40.1} {
			tr.Events = append(tr.Events, trace.Event{
				Time: trace.FromSeconds(sec), Pid: 1, Kind: trace.KindIO,
				Access: trace.AccessRead, PC: trace.PC(0x100 * (i%2 + 1)), FD: 3,
				Block: int64(exec*1000 + i*10), Size: 4096,
			})
		}
		tr.Events = append(tr.Events, trace.Event{
			Time: trace.FromSeconds(40.2), Pid: 1, Kind: trace.KindExit,
		})
		return tr
	}
	traces := []*trace.Trace{session(0), session(1)}
	runner := sim.MustNewRunner(sim.DefaultConfig())

	for _, reuse := range []bool{false, true} {
		res, _ := runner.RunApp(traces, sim.Policy{
			Name:       "PCAP",
			NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) },
			Reuse:      reuse,
		})
		fmt.Printf("reuse=%-5v primary hits: %d, backup hits: %d\n",
			reuse, res.Global.HitPrimary, res.Global.HitBackup)
	}
	// Output:
	// reuse=false primary hits: 0, backup hits: 2
	// reuse=true  primary hits: 1, backup hits: 1
}

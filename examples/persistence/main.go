// Prediction-table persistence: the paper's Section 4.2 end to end. The
// application's trained table is saved to its initialization file when it
// exits and loaded when it starts again; this example runs the first half
// of mozilla's executions, persists the table to disk, reloads it into a
// fresh predictor, and shows the second half starting warm — against a
// cold run of the same executions.
package main

import (
	"fmt"
	"os"

	"pcapsim/internal/core"
	"pcapsim/internal/persist"
	"pcapsim/internal/predictor"
	"pcapsim/internal/sim"
	"pcapsim/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "pcap-init-files")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	runner := sim.MustNewRunner(sim.DefaultConfig())
	app, _ := workload.ByName("mozilla")
	traces := app.Traces(20040214)
	first, second := traces[:len(traces)/2], traces[len(traces)/2:]

	// Phase 1: run the first half with one shared predictor and persist
	// its table — what the application does at exit.
	warm := core.MustNew(core.DefaultConfig(core.VariantBase))
	keep := sim.Policy{
		Name:       "train",
		NewFactory: func() predictor.Factory { return warm },
		Reuse:      true,
	}
	if _, err := runner.RunApp(first, keep); err != nil {
		panic(err)
	}
	path, err := persist.SaveTableFile(dir, "mozilla", warm)
	if err != nil {
		panic(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("trained on %d executions: %d table entries persisted to %s (%d bytes on disk)\n\n",
		len(first), warm.Table().Len(), path, fi.Size())

	// Phase 2: a fresh predictor loads the initialization file — what the
	// application does at startup — and runs the second half.
	run := func(name string, loaded bool) sim.Counts {
		pol := sim.Policy{
			Name: name,
			NewFactory: func() predictor.Factory {
				p := core.MustNew(core.DefaultConfig(core.VariantBase))
				if loaded {
					found, err := persist.LoadTableFile(dir, "mozilla", p)
					if err != nil {
						panic(err)
					}
					if !found {
						panic("initialization file missing")
					}
				}
				return p
			},
			Reuse: true,
		}
		res, err := runner.RunApp(second, pol)
		if err != nil {
			panic(err)
		}
		return res.Global
	}

	cold := run("cold", false)
	warmC := run("warm", true)
	fc, fw := cold.Fractions(), warmC.Fractions()
	fmt.Printf("second half (%d executions), cold start: primary hits %.1f%%, backup hits %.1f%%\n",
		len(second), 100*fc.HitPrimary, 100*fc.HitBackup)
	fmt.Printf("second half (%d executions), warm start: primary hits %.1f%%, backup hits %.1f%%\n",
		len(second), 100*fw.HitPrimary, 100*fw.HitBackup)
	fmt.Println("\nthe loaded table converts backup-timer shutdowns into immediate")
	fmt.Println("primary shutdowns — the effect behind the paper's Figure 10.")
}

package core

// Differential tests: the arena-backed intrusive-LRU prediction table
// against a retained copy of the original container/list + map
// implementation. Identical operation sequences must produce identical
// lookup results, counters, eviction victims, and key sets.

import (
	"container/list"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pcapsim/internal/trace"
)

// refTable is the original implementation, kept as the oracle.
type refTable struct {
	bound   int
	entries map[Key]*list.Element
	lru     *list.List
	stats   Stats
}

func newRefTable(bound int) *refTable {
	if bound < 0 {
		bound = 0
	}
	return &refTable{
		bound:   bound,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
	}
}

func (t *refTable) Len() int     { return len(t.entries) }
func (t *refTable) Stats() Stats { return t.stats }

func (t *refTable) Lookup(key Key) bool {
	t.stats.Lookups++
	el, ok := t.entries[key]
	if ok {
		t.stats.Hits++
		t.lru.MoveToFront(el)
	}
	return ok
}

func (t *refTable) Train(key Key) {
	if el, ok := t.entries[key]; ok {
		t.lru.MoveToFront(el)
		return
	}
	t.entries[key] = t.lru.PushFront(key)
	t.stats.Inserts++
	if t.bound > 0 && len(t.entries) > t.bound {
		oldest := t.lru.Back()
		t.lru.Remove(oldest)
		delete(t.entries, oldest.Value.(Key))
		t.stats.Evictions++
	}
}

func (t *refTable) Forget(key Key) bool {
	el, ok := t.entries[key]
	if !ok {
		return false
	}
	t.lru.Remove(el)
	delete(t.entries, key)
	return true
}

func (t *refTable) Keys() []Key {
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// lruKeys lists the reference table's keys MRU-first.
func (t *refTable) lruKeys() []Key {
	var keys []Key
	for el := t.lru.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(Key))
	}
	return keys
}

// lruKeys lists the intrusive table's keys MRU-first.
func (t *Table) lruKeys() []Key {
	t.mu.Lock()
	defer t.mu.Unlock()
	var keys []Key
	for i := t.arena[0].next; i != 0; i = t.arena[i].next {
		keys = append(keys, t.arena[i].key)
	}
	return keys
}

// randKey draws from a small key space (forcing hits, re-trains, and
// evictions) across all augmentation shapes.
func randKey(r *rand.Rand) Key {
	k := Key{Sig: Signature(r.Intn(40))}
	switch r.Intn(4) {
	case 1:
		k.HasHist, k.Hist = true, uint16(r.Intn(8))
	case 2:
		k.HasFD, k.FD = true, trace.FD(r.Intn(6))
	case 3:
		k.HasHist, k.Hist = true, uint16(r.Intn(8))
		k.HasFD, k.FD = true, trace.FD(r.Intn(6))
	}
	return k
}

// TestTableDifferentialRandomized drives both tables through randomized
// Train/Lookup/Forget sequences at several LRU bounds (including the
// degenerate bound of one and the unbounded table) and demands identical
// observable state throughout.
func TestTableDifferentialRandomized(t *testing.T) {
	for _, bound := range []int{0, 1, 2, 7, 16} {
		for seed := int64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("bound=%d/seed=%d", bound, seed), func(t *testing.T) {
				tab := NewTable(bound)
				ref := newRefTable(bound)
				r := rand.New(rand.NewSource(seed))
				for step := 0; step < 4000; step++ {
					key := randKey(r)
					switch r.Intn(10) {
					case 0:
						if got, want := tab.Forget(key), ref.Forget(key); got != want {
							t.Fatalf("step %d: Forget(%v) = %v, reference %v", step, key, got, want)
						}
					case 1, 2, 3, 4:
						tab.Train(key)
						ref.Train(key)
					default:
						if got, want := tab.Lookup(key), ref.Lookup(key); got != want {
							t.Fatalf("step %d: Lookup(%v) = %v, reference %v", step, key, got, want)
						}
					}
					if tab.Len() != ref.Len() {
						t.Fatalf("step %d: Len %d vs %d", step, tab.Len(), ref.Len())
					}
					if step%97 == 0 {
						if g, w := tab.lruKeys(), ref.lruKeys(); !reflect.DeepEqual(g, w) {
							t.Fatalf("step %d: LRU order diverges\n got %v\nwant %v", step, g, w)
						}
					}
				}
				if tab.Stats() != ref.Stats() {
					t.Fatalf("stats diverge: %+v vs %+v", tab.Stats(), ref.Stats())
				}
				if g, w := tab.Keys(), ref.Keys(); !reflect.DeepEqual(g, w) {
					t.Fatalf("key sets diverge\n got %v\nwant %v", g, w)
				}
				if g, w := tab.lruKeys(), ref.lruKeys(); !reflect.DeepEqual(g, w) {
					t.Fatalf("final LRU order diverges\n got %v\nwant %v", g, w)
				}
			})
		}
	}
}

// TestTableBoundOneEvictsEveryInsert checks the degenerate bound: each new
// key displaces the previous one, and re-training the resident key evicts
// nothing.
func TestTableBoundOneEvictsEveryInsert(t *testing.T) {
	tab := NewTable(1)
	a, b := Key{Sig: 1}, Key{Sig: 2}
	tab.Train(a)
	tab.Train(a) // idempotent re-train: no eviction
	if st := tab.Stats(); st.Inserts != 1 || st.Evictions != 0 {
		t.Fatalf("after re-train: %+v", st)
	}
	tab.Train(b)
	if tab.Lookup(a) {
		t.Error("evicted key still trained")
	}
	if !tab.Lookup(b) {
		t.Error("resident key lost")
	}
	if st := tab.Stats(); st.Evictions != 1 || tab.Len() != 1 {
		t.Fatalf("after displacement: %+v len=%d", st, tab.Len())
	}
}

// TestTableArenaRecycling forgets and retrains many keys so arena slots
// cycle through the free list; the observable key set must stay exact.
func TestTableArenaRecycling(t *testing.T) {
	tab := NewTable(0)
	ref := newRefTable(0)
	r := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		// Train a batch...
		for i := 0; i < 20; i++ {
			k := Key{Sig: Signature(r.Intn(100))}
			tab.Train(k)
			ref.Train(k)
		}
		// ...then forget a random half of the trained set.
		for _, k := range ref.Keys() {
			if r.Intn(2) == 0 {
				tab.Forget(k)
				ref.Forget(k)
			}
		}
		if g, w := tab.Keys(), ref.Keys(); !reflect.DeepEqual(g, w) {
			t.Fatalf("round %d: key sets diverge (%d vs %d keys)", round, len(g), len(w))
		}
	}
}

package hypothesis

import (
	"math"
	"strings"
	"testing"

	"pcapsim/internal/trace"
)

// testSpec returns a small runnable spec (nedit is the lightest
// workload).
func testSpec() *Spec {
	return &Spec{
		Name:       "pcap-beats-timeout-nedit",
		Hypothesis: "PCAP saves energy vs a 10s timeout on nedit",
		App:        "nedit",
		Candidate:  "pcap",
		Baseline:   "tp",
		Criteria: []Criterion{
			{Metric: "savings_pct", Op: ">=", Value: 0},
			{Metric: "candidate_energy_j", Op: ">", Value: 0},
		},
		Counterfactual: &Counterfactual{Flip: "worst", TopN: 3},
	}
}

func TestRunEndToEnd(t *testing.T) {
	spec := testSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions != res.Candidate.DiskAccesses {
		t.Errorf("recorded %d decisions for %d disk accesses", res.Decisions, res.Candidate.DiskAccesses)
	}
	if got, _ := metricValue(res.Metrics, "candidate_energy_j"); got != res.Candidate.Energy.Total() {
		t.Errorf("candidate_energy_j = %g, result says %g", got, res.Candidate.Energy.Total())
	}
	if got, _ := metricValue(res.Metrics, "baseline_energy_j"); got != res.Baseline.Energy.Total() {
		t.Errorf("baseline_energy_j = %g, result says %g", got, res.Baseline.Energy.Total())
	}
	if len(res.Attribution) != 3 {
		t.Errorf("attribution table has %d rows, want 3", len(res.Attribution))
	}
	for i := 1; i < len(res.Attribution); i++ {
		if res.Attribution[i-1].FlipDelta > res.Attribution[i].FlipDelta {
			t.Errorf("attribution not sorted by FlipDelta: row %d", i)
		}
	}
	cf := res.Counterfactual
	if cf == nil {
		t.Fatal("counterfactual requested but absent")
	}
	if !cf.Matches {
		t.Errorf("counterfactual replay disagrees with attribution: predicted %g measured %g (wait %v vs %v)",
			cf.PredictedEnergyDelta, cf.MeasuredEnergyDelta, cf.PredictedWaitDelta, cf.MeasuredWaitDelta)
	}
	if cf.Record.Index != res.Attribution[0].Index {
		t.Errorf("worst flip chose decision %d, attribution ranks %d first", cf.Record.Index, res.Attribution[0].Index)
	}
	// Flipping the worst decision must measurably change energy: if the
	// best possible single flip were a no-op the attribution would be
	// vacuous.
	if math.Abs(cf.MeasuredEnergyDelta) == 0 {
		t.Error("flipping the worst decision did not change energy")
	}
	if !res.Supported {
		t.Errorf("verdict REFUTED; criteria: %+v", res.Criteria)
	}
}

// TestRunIsDeterministic: two runs of one spec produce identical reports.
func TestRunIsDeterministic(t *testing.T) {
	spec := testSpec()
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := Render(a), Render(b)
	if ra != rb {
		t.Fatalf("reports differ between identical runs:\n%s\nvs\n%s", ra, rb)
	}
	for _, want := range []string{
		"Hypothesis: pcap-beats-timeout-nedit",
		"Decision attribution",
		"Counterfactual: decision #",
		"VERDICT:",
	} {
		if !strings.Contains(ra, want) {
			t.Errorf("report missing %q:\n%s", want, ra)
		}
	}
}

// TestRunFlipByIndex exercises the "index" selector and the exact wait
// accounting it must preserve.
func TestRunFlipByIndex(t *testing.T) {
	spec := testSpec()
	spec.Counterfactual = &Counterfactual{Flip: "index", Index: 0, TopN: 1}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cf := res.Counterfactual
	if cf.Record.Index != 0 {
		t.Fatalf("flip by index chose decision %d", cf.Record.Index)
	}
	if !cf.Matches {
		t.Errorf("index flip: predicted %g measured %g", cf.PredictedEnergyDelta, cf.MeasuredEnergyDelta)
	}
}

func TestRunErrors(t *testing.T) {
	spec := testSpec()
	spec.Counterfactual = &Counterfactual{Flip: "index", Index: 1 << 40}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range flip index: err = %v", err)
	}
}

// TestCriterionOps pins the operator semantics, including tolerance.
func TestCriterionOps(t *testing.T) {
	cases := []struct {
		c      Criterion
		actual float64
		want   bool
	}{
		{Criterion{Op: ">=", Value: 5}, 5, true},
		{Criterion{Op: ">=", Value: 5}, 4.9, false},
		{Criterion{Op: ">", Value: 5}, 5, false},
		{Criterion{Op: "<=", Value: 5}, 5, true},
		{Criterion{Op: "<", Value: 5}, 5, false},
		{Criterion{Op: "==", Value: 5, Tolerance: 0.1}, 5.05, true},
		{Criterion{Op: "==", Value: 5, Tolerance: 0.1}, 5.2, false},
		{Criterion{Op: "==", Value: 5}, 5, true},
		{Criterion{Op: "!=", Value: 5, Tolerance: 0.1}, 5.05, false},
		{Criterion{Op: "!=", Value: 5, Tolerance: 0.1}, 5.2, true},
	}
	for _, tc := range cases {
		if got := tc.c.evaluate(tc.actual); got != tc.want {
			t.Errorf("%s %g (tol %g) against %g = %v, want %v",
				tc.c.Op, tc.c.Value, tc.c.Tolerance, tc.actual, got, tc.want)
		}
	}
}

// TestRankDecisions pins the deterministic ordering contract.
func TestRankDecisions(t *testing.T) {
	recs := []trace.DecisionRecord{
		{Index: 0, FlipDelta: 1},
		{Index: 1, FlipDelta: -3},
		{Index: 2, FlipDelta: -3},
		{Index: 3, FlipDelta: -7},
	}
	ranked := rankDecisions(recs, 3)
	if ranked[0].Index != 3 || ranked[1].Index != 1 || ranked[2].Index != 2 {
		t.Fatalf("ranked order = %d, %d, %d", ranked[0].Index, ranked[1].Index, ranked[2].Index)
	}
	if len(rankDecisions(recs, 10)) != len(recs) {
		t.Fatal("over-long topn not clamped")
	}
}

package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// tracesEqual compares two traces field by field, treating a nil event
// slice and an empty one as equal (decoding never returns nil vs non-nil
// distinctions callers should care about).
func tracesEqual(a, b *Trace) bool {
	if a.App != b.App || a.Execution != b.Execution || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}

// traceFromBytes deterministically derives a structurally valid trace
// from arbitrary fuzz input: 8-byte chunks become events with
// monotonically non-decreasing times, valid kinds, and signed fields that
// exercise the varint paths (negative FDs and blocks included).
func traceFromBytes(data []byte) *Trace {
	t := &Trace{App: "fuzz", Execution: 3}
	if len(data) > 0 {
		// Vary the header fields too.
		t.App = string(rune('a' + data[0]%26))
		t.Execution = int(data[0])
	}
	var now Time
	for len(data) >= 8 {
		c := data[:8]
		data = data[8:]
		now += Time(binary.LittleEndian.Uint16(c[0:2]))
		e := Event{Time: now, Pid: PID(c[2])}
		switch c[3] % 3 {
		case 0:
			e.Kind = KindIO
			e.Access = Access(c[4] % 4)
			e.PC = PC(uint32(c[5])<<8 | uint32(c[6]))
			e.FD = FD(int8(c[6])) // negative FDs hit the varint sign path
			e.Block = int64(int8(c[7])) * 1_000_003
			e.Size = int32(c[4]) << 4
		case 1:
			e.Kind = KindFork
			e.Child = PID(c[4])
		case 2:
			e.Kind = KindExit
		}
		t.Events = append(t.Events, e)
	}
	return t
}

// FuzzCodecRoundTrip fuzzes the binary trace codec from both ends:
//
//  1. the decoder must never panic on arbitrary (corrupt) input, and
//     anything it does accept must re-encode and re-decode to the same
//     trace;
//  2. a structurally valid trace derived from the input must survive
//     encode → decode unchanged (decode(encode(t)) == t).
func FuzzCodecRoundTrip(f *testing.F) {
	// Seed corpus: a real encoded trace, truncations and corruptions of
	// it, plus raw structured-input seeds. testdata/fuzz/FuzzCodecRoundTrip
	// commits additional generated seeds.
	valid := encodedSeedTrace(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("PCTR"))
	f.Add([]byte("PCTR\x01\x00"))
	f.Add([]byte("XXXX\x01\x00\x04name"))
	corrupt := append([]byte(nil), valid...)
	for i := 10; i < len(corrupt); i += 7 {
		corrupt[i] ^= 0x55
	}
	f.Add(corrupt)
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})

	f.Fuzz(func(t *testing.T, data []byte) {
		// (1) Decoder safety on arbitrary bytes.
		if tr, err := ReadBinary(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, tr); err != nil {
				t.Fatalf("re-encoding a decoded trace failed: %v", err)
			}
			tr2, err := ReadBinary(&buf)
			if err != nil {
				t.Fatalf("re-decoding failed: %v", err)
			}
			if !tracesEqual(tr, tr2) {
				t.Fatal("decode(encode(decode(data))) != decode(data)")
			}
		}

		// (2) Round trip of a derived valid trace.
		orig := traceFromBytes(data)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, orig); err != nil {
			t.Fatalf("encoding a valid derived trace failed: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("decoding a just-encoded trace failed: %v", err)
		}
		if !tracesEqual(orig, got) {
			t.Fatalf("round trip mismatch:\norig: %+v\ngot:  %+v", orig, got)
		}
	})
}

// encodedSeedTrace builds a small representative trace and returns its
// binary encoding.
func encodedSeedTrace(f *testing.F) []byte {
	f.Helper()
	t := &Trace{App: "seed", Execution: 2, Events: []Event{
		{Time: 0, Pid: 1, Kind: KindIO, Access: AccessOpen, PC: 0x1000, FD: 3, Block: 10, Size: 4096},
		{Time: 1500, Pid: 1, Kind: KindFork, Child: 2},
		{Time: 2000, Pid: 2, Kind: KindIO, Access: AccessRead, PC: 0x2000, FD: -1, Block: -5, Size: 8192},
		{Time: 9000, Pid: 1, Kind: KindIO, Access: AccessWrite, PC: 0x3000, FD: 4, Block: 1 << 40, Size: 512},
		{Time: 12000, Pid: 2, Kind: KindExit},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, t); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

package core

import (
	"fmt"
	"sort"
	"sync"

	"pcapsim/internal/trace"
)

// Signature is the 4-byte encoded path of I/O-triggering program
// counters: the arithmetic sum (mod 2³²) of the PCs in the path. The
// encoding minimizes storage and makes comparison a single word compare,
// at the cost of possible (never observed in the paper) aliasing between
// permutations of the same PCs.
type Signature uint32

// AddPC returns the signature extended by one program counter.
func (s Signature) AddPC(pc trace.PC) Signature { return s + Signature(pc) }

// Key is a prediction-table key: the path signature, optionally augmented
// with the idle-period history vector (PCAPh) and/or the file descriptor
// of the access preceding the idle period (PCAPf).
type Key struct {
	// Sig is the encoded PC path.
	Sig Signature
	// Hist is the idle-history bit-vector, valid when HasHist.
	Hist uint16
	// HasHist marks history-augmented keys (PCAPh, PCAPfh).
	HasHist bool
	// FD is the file descriptor, valid when HasFD.
	FD trace.FD
	// HasFD marks fd-augmented keys (PCAPf, PCAPfh).
	HasFD bool
}

// String renders the key compactly for debugging and persistence.
func (k Key) String() string {
	s := fmt.Sprintf("sig=0x%08x", uint32(k.Sig))
	if k.HasHist {
		s += fmt.Sprintf(" hist=0b%016b", k.Hist)
	}
	if k.HasFD {
		s += fmt.Sprintf(" fd=%d", int32(k.FD))
	}
	return s
}

// less orders keys deterministically (for stable snapshots). The order is
// total: the augmentation flags participate, so tables mixing key shapes
// (which no single PCAP variant produces, but tests do) still sort
// reproducibly.
func (k Key) less(o Key) bool {
	if k.Sig != o.Sig {
		return k.Sig < o.Sig
	}
	if k.HasHist != o.HasHist {
		return !k.HasHist
	}
	if k.Hist != o.Hist {
		return k.Hist < o.Hist
	}
	if k.HasFD != o.HasFD {
		return !k.HasFD
	}
	return k.FD < o.FD
}

// hash mixes every key field into a table-probe position (splitmix64-style
// finalizer). Only determinism matters for correctness; quality just keeps
// probe chains short.
func (k Key) hash() uint64 {
	x := uint64(k.Sig) | uint64(k.Hist)<<32
	if k.HasHist {
		x ^= 1 << 62
	}
	if k.HasFD {
		x ^= 1 << 63
	}
	x ^= uint64(uint32(k.FD)) * 0xBF58476D1CE4E5B9
	x *= 0x94D049BB133111EB
	return x ^ x>>29
}

// Stats counts prediction-table activity.
type Stats struct {
	// Lookups is the number of probes.
	Lookups int64
	// Hits is the number of probes that matched.
	Hits int64
	// Inserts is the number of new signatures learned.
	Inserts int64
	// Evictions is the number of entries displaced by the LRU bound.
	Evictions int64
}

// tableEntry is one arena slot: a trained key plus its intrusive LRU
// links. Slot 0 is the list sentinel (next = MRU, prev = LRU); free slots
// are chained through next.
type tableEntry struct {
	key        Key
	next, prev int32
}

// Table is a prediction table: a set of trained keys with optional LRU
// bounding. It is safe for concurrent use; the paper shares one table
// among all processes of an application.
//
// Storage is an entry arena threaded by an intrusive LRU list and indexed
// by an open-addressed hash table, so steady-state Lookup/Train/Forget
// perform no allocations (an unbounded table grows its arena and index
// geometrically as it learns). LRU semantics — refresh on Lookup and
// Train, evict the least recently used entry past the bound — are
// byte-identical to the reference container/list implementation retained
// in table_test.go.
type Table struct {
	mu    sync.Mutex
	bound int
	arena []tableEntry
	free  int32 // head of the free-slot chain (0 = none)
	count int
	// Open-addressed index: key → arena slot; idxSlot[i] == 0 marks an
	// empty bucket.
	idxKey  []Key
	idxSlot []int32
	idxMask uint64
	stats   Stats
}

// NewTable returns an empty table. A positive bound caps the entry count
// with least-recently-used replacement; zero means unbounded.
func NewTable(bound int) *Table {
	if bound < 0 {
		bound = 0
	}
	slots := 64
	if bound > 0 {
		slots = bound
	}
	t := &Table{
		bound: bound,
		arena: make([]tableEntry, 1, slots+1),
	}
	t.growIndex(slots)
	return t
}

// growIndex (re)builds the open-addressed index with room for at least
// want entries at half load.
func (t *Table) growIndex(want int) {
	size := uint64(16)
	for size < 2*uint64(want) {
		size *= 2
	}
	oldKey, oldSlot := t.idxKey, t.idxSlot
	t.idxKey = make([]Key, size)
	t.idxSlot = make([]int32, size)
	t.idxMask = size - 1
	for i, s := range oldSlot {
		if s != 0 {
			t.indexPut(oldKey[i], s)
		}
	}
}

// lookupSlot returns the arena slot holding key, or 0.
func (t *Table) lookupSlot(key Key) int32 {
	for i := key.hash() & t.idxMask; ; i = (i + 1) & t.idxMask {
		s := t.idxSlot[i]
		if s == 0 {
			return 0
		}
		if t.idxKey[i] == key {
			return s
		}
	}
}

// indexPut records key → slot; the index is kept at most half full, so an
// empty bucket always exists.
func (t *Table) indexPut(key Key, slot int32) {
	i := key.hash() & t.idxMask
	for t.idxSlot[i] != 0 {
		i = (i + 1) & t.idxMask
	}
	t.idxKey[i] = key
	t.idxSlot[i] = slot
}

// indexDelete removes key with backward-shift deletion (no tombstones).
func (t *Table) indexDelete(key Key) {
	i := key.hash() & t.idxMask
	for t.idxKey[i] != key || t.idxSlot[i] == 0 {
		i = (i + 1) & t.idxMask
	}
	for {
		t.idxSlot[i] = 0
		j := i
		for {
			j = (j + 1) & t.idxMask
			if t.idxSlot[j] == 0 {
				return
			}
			h := t.idxKey[j].hash() & t.idxMask
			if (j-h)&t.idxMask >= (j-i)&t.idxMask {
				t.idxKey[i] = t.idxKey[j]
				t.idxSlot[i] = t.idxSlot[j]
				i = j
				break
			}
		}
	}
}

// listUnlink removes slot i from the LRU list.
func (t *Table) listUnlink(i int32) {
	e := &t.arena[i]
	t.arena[e.prev].next = e.next
	t.arena[e.next].prev = e.prev
}

// listPushFront makes slot i the MRU entry.
func (t *Table) listPushFront(i int32) {
	first := t.arena[0].next
	e := &t.arena[i]
	e.prev, e.next = 0, first
	t.arena[first].prev = i
	t.arena[0].next = i
}

// moveToFront refreshes slot i's LRU position.
func (t *Table) moveToFront(i int32) {
	if t.arena[0].next == i {
		return
	}
	t.listUnlink(i)
	t.listPushFront(i)
}

// alloc returns a free arena slot, growing the arena if needed.
func (t *Table) alloc() int32 {
	if t.free != 0 {
		s := t.free
		t.free = t.arena[s].next
		return s
	}
	t.arena = append(t.arena, tableEntry{})
	return int32(len(t.arena) - 1)
}

// Len returns the number of trained entries (the paper's Table 3 metric).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Lookup probes the table and reports whether key is trained, refreshing
// its LRU position on a match.
func (t *Table) Lookup(key Key) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Lookups++
	s := t.lookupSlot(key)
	if s == 0 {
		return false
	}
	t.stats.Hits++
	t.moveToFront(s)
	return true
}

// Train records key in the table (idempotently), evicting the least
// recently used entry if a bound is configured and exceeded.
func (t *Table) Train(key Key) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.lookupSlot(key); s != 0 {
		t.moveToFront(s)
		return
	}
	// Evict-before-insert is observably identical to the reference
	// insert-then-evict: with bound ≥ 1 the victim is always the
	// pre-insert LRU entry, never the newcomer.
	if t.bound > 0 && t.count == t.bound {
		victim := t.arena[0].prev
		t.listUnlink(victim)
		t.indexDelete(t.arena[victim].key)
		t.arena[victim].next = t.free
		t.free = victim
		t.count--
		t.stats.Evictions++
	}
	if 2*(t.count+1) > len(t.idxSlot) {
		t.growIndex(t.count + 1)
	}
	s := t.alloc()
	t.arena[s].key = key
	t.listPushFront(s)
	t.indexPut(key, s)
	t.count++
	t.stats.Inserts++
}

// Forget removes key from the table, reporting whether it was present.
// The base paper never unlearns, but changed application behaviour can be
// aged out this way (or by the LRU bound).
func (t *Table) Forget(key Key) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.lookupSlot(key)
	if s == 0 {
		return false
	}
	t.listUnlink(s)
	t.indexDelete(key)
	t.arena[s].next = t.free
	t.free = s
	t.count--
	return true
}

// Keys returns the trained keys in deterministic (sorted) order.
func (t *Table) Keys() []Key {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]Key, 0, t.count)
	for i := t.arena[0].next; i != 0; i = t.arena[i].next {
		keys = append(keys, t.arena[i].key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// LoadKeys trains all the given keys, preserving their order as
// most-recent-last. Used when restoring a persisted table.
func (t *Table) LoadKeys(keys []Key) {
	for _, k := range keys {
		t.Train(k)
	}
}

// StorageBytes returns the persisted size of the table under the paper's
// encoding: each entry packs into one 4-byte word (the signature; history
// and fd variants fold their context into the stored word the same way
// the signature itself is an additive fold).
func (t *Table) StorageBytes() int { return 4 * t.Len() }

// StateSize reports the number of learned entries; it satisfies the
// simulator's SizedFactory on *PCAP via the method below.
func (p *PCAP) StateSize() int { return p.table.Len() }

package trace

// Predicate selects a slice of a trace: a time range, a process, and/or
// a program-counter range. The zero value matches every event.
//
// Predicates drive two layers that compose:
//
//   - Block pushdown (BlockDecoder.SetPredicate, ParallelSource,
//     OpenTraceFileOpts): MatchMeta is evaluated against per-block index
//     entries, and blocks that cannot contain a matching event are
//     skipped without being read. This is conservative — a surviving
//     block may still hold events the predicate rejects — which is what
//     makes it sound: MatchEvent(e) implies MatchMeta(block containing
//     e), so a skipped block never hides a matching event.
//   - Exact filtering (FilterEvents): MatchEvent is applied per event on
//     whatever the lower layer delivers.
//
// Pushdown-then-filter therefore yields exactly the same event stream
// as filter alone, just without reading the skipped bytes.
type Predicate struct {
	// From and To bound event times inclusively. To == 0 means
	// unbounded above (the formats' timestamps are non-negative, and a
	// trace sliced to the single instant 0 is not a useful query).
	From, To Time
	// Pid, when nonzero, keeps only events whose Pid field matches. A
	// fork's child process is selected by its own later events, not by
	// the fork record (which belongs to the parent).
	Pid PID
	// PCFrom and PCTo bound the program counter of I/O events
	// inclusively; both zero means no PC constraint. When set, only
	// KindIO events can match.
	PCFrom, PCTo PC
}

// IsZero reports whether the predicate matches everything.
func (p Predicate) IsZero() bool { return p == Predicate{} }

// hasPC reports whether a PC constraint is set.
func (p Predicate) hasPC() bool { return p.PCFrom != 0 || p.PCTo != 0 }

// MatchEvent reports whether the event satisfies the predicate.
func (p Predicate) MatchEvent(e Event) bool {
	if e.Time < p.From {
		return false
	}
	if p.To != 0 && e.Time > p.To {
		return false
	}
	if p.Pid != 0 && e.Pid != p.Pid {
		return false
	}
	if p.hasPC() {
		if e.Kind != KindIO || e.PC < p.PCFrom || e.PC > p.PCTo {
			return false
		}
	}
	return true
}

// MatchMeta reports whether a block with the given index entry could
// contain a matching event. It is conservative: false means no event in
// the block can match (the block is safe to skip), true means the block
// must be decoded and filtered.
func (p Predicate) MatchMeta(m *BlockMeta) bool {
	if m.MaxTime < p.From {
		return false
	}
	if p.To != 0 && m.MinTime > p.To {
		return false
	}
	if p.Pid != 0 && !pidInSorted(m.Pids, p.Pid) {
		return false
	}
	if p.hasPC() {
		if m.IOs == 0 || m.PCMax < p.PCFrom || m.PCMin > p.PCTo {
			return false
		}
	}
	return true
}

// pidInSorted reports whether pid appears in the sorted set.
func pidInSorted(pids []PID, pid PID) bool {
	lo, hi := 0, len(pids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pids[mid] < pid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(pids) && pids[lo] == pid
}

// FilterEvents wraps src so only events matching p are delivered —
// exact, decode-then-drop filtering. It is both the layer that makes
// block pushdown exact and the differential reference pushdown is
// tested against. A zero predicate returns src unchanged.
func FilterEvents(src Source, p Predicate) Source {
	if p.IsZero() {
		return src
	}
	return &filterSource{src: src, p: p}
}

// filterSource is FilterEvents' implementation. It forwards the
// execution structure unchanged (an execution with no matching events
// is delivered empty, preserving execution indices) and filters the
// event stream.
type filterSource struct {
	src Source
	p   Predicate
}

// NextExec implements Source.
func (f *filterSource) NextExec() (string, int, bool) { return f.src.NextExec() }

// Next implements Source.
func (f *filterSource) Next() (Event, bool) {
	for {
		e, ok := f.src.Next()
		if !ok {
			return Event{}, false
		}
		if f.p.MatchEvent(e) {
			return e, true
		}
	}
}

// AppendExec implements ExecAppender: the inner source's batch path
// fills the caller's buffer and the predicate compacts it in place.
// ExecSlicer-lent slices are borrowed, never mutated — matching events
// are copied out.
func (f *filterSource) AppendExec(buf []Event) []Event {
	if es, ok := f.src.(ExecSlicer); ok {
		for _, e := range es.ExecEvents() {
			if f.p.MatchEvent(e) {
				buf = append(buf, e)
			}
		}
		return buf
	}
	if ea, ok := f.src.(ExecAppender); ok {
		base := len(buf)
		buf = ea.AppendExec(buf)
		kept := buf[:base]
		for _, e := range buf[base:] {
			if f.p.MatchEvent(e) {
				kept = append(kept, e)
			}
		}
		return kept
	}
	for {
		e, ok := f.src.Next()
		if !ok {
			return buf
		}
		if f.p.MatchEvent(e) {
			buf = append(buf, e)
		}
	}
}

// Err implements Source.
func (f *filterSource) Err() error { return f.src.Err() }

// Reset implements Source.
func (f *filterSource) Reset() error { return f.src.Reset() }

module pcapsim

go 1.22

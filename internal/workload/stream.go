package workload

import (
	"sync"

	"pcapsim/internal/trace"
)

// eventBufPool recycles per-execution event buffers between Streams (and
// therefore between the TraceCache's on-demand sources, which hand out
// Streams). A Stream owns its buffer from its first NextExec until the
// call that reports exhaustion, at which point the buffer returns to the
// pool — consistent with the trace.ExecSlicer contract that borrowed
// event slices are invalid after the next NextExec.
var eventBufPool sync.Pool // of *[]trace.Event

// getEventBuf fetches a recycled (empty, capacity-preserving) buffer.
// The caller takes ownership and must pair it with putEventBuf.
//
//pcaplint:owner-transfer
func getEventBuf() []trace.Event {
	if p, ok := eventBufPool.Get().(*[]trace.Event); ok {
		return (*p)[:0]
	}
	return nil
}

// putEventBuf returns a buffer to the pool.
func putEventBuf(buf []trace.Event) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	eventBufPool.Put(&buf)
}

// Stream is a trace.Source that generates an application's executions on
// demand, one at a time, into a single recycled event buffer. Peak memory
// is one execution regardless of how many the workload has — the
// streaming alternative to App.Traces, which pins every execution at
// once. Like all Sources, a Stream is a single-goroutine iterator: share
// the App, not the Stream.
type Stream struct {
	app  *App
	seed uint64
	next int           // next execution index to generate
	cur  []trace.Event // current execution's events (recycled buffer)
	pos  int           // next event within cur
}

// Stream returns a Source over the app's executions (Table 1 counts) for
// seed. It yields exactly the events App.Traces(seed) would materialize,
// in the same order.
func (a *App) Stream(seed uint64) *Stream {
	return &Stream{app: a, seed: seed}
}

// NextExec implements trace.Source. It generates the next execution,
// reusing the previous execution's buffer; the first call draws the
// buffer from the shared pool and the exhausting call gives it back.
func (s *Stream) NextExec() (string, int, bool) {
	if s.next >= s.app.Executions {
		if s.cur != nil {
			putEventBuf(s.cur)
			s.cur = nil
		}
		s.pos = 0
		return "", 0, false
	}
	if s.next == 0 && s.cur == nil {
		s.cur = getEventBuf()
	}
	exec := s.next
	s.next++
	s.cur = s.app.generateEvents(s.seed, exec, s.cur)
	s.pos = 0
	return s.app.Name, exec, true
}

// Next implements trace.Source.
func (s *Stream) Next() (trace.Event, bool) {
	if s.pos >= len(s.cur) {
		return trace.Event{}, false
	}
	e := s.cur[s.pos]
	s.pos++
	return e, true
}

// ExecEvents implements trace.ExecSlicer: the current execution is already
// materialized in the recycled buffer, so consumers can borrow it without
// copying. The slice is invalidated by the next NextExec.
func (s *Stream) ExecEvents() []trace.Event {
	events := s.cur[s.pos:]
	s.pos = len(s.cur)
	return events
}

// Err implements trace.Source; generation cannot fail.
func (s *Stream) Err() error { return nil }

// Reset implements trace.Source, rewinding to execution 0. Regeneration
// is deterministic, so a replay is identical to the first pass.
func (s *Stream) Reset() error {
	s.next = 0
	s.cur = s.cur[:0]
	s.pos = 0
	return nil
}

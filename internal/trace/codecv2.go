package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
)

// Columnar trace container ("tracev2")
//
// The v1 binary format is row oriented: every event is a contiguous run
// of varints, so decoding pays per-field dispatch and bufio calls for
// every event. v2 is a block-structured struct-of-arrays layout built for
// batched decode: executions are split into fixed-size event blocks, each
// block storing its events as per-field columns with encodings matched to
// the field's statistics. Blocks are independently decodable (every block
// header carries the base timestamp and the first value of each delta
// chain is absolute within the block) and integrity-checked — a CRC32
// covers the block header and all column payloads, so a flipped bit is
// reported as an error naming the block, never as silently wrong events.
//
// Execution layout:
//
//	magic   "PCT2" (4 bytes)
//	header  region covered by the header CRC:
//	    version uint16 (little endian) = 1
//	    app     uvarint length + bytes
//	    exec    uvarint
//	    count   uvarint (total events in the execution)
//	crc32   uint32 (little endian, IEEE) of the header region
//	blocks  until count events have been delivered
//
// Block layout:
//
//	magic   "PCB2" (4 bytes)
//	header  region covered by the block CRC:
//	    events uvarint (1..maxBlockEvents)
//	    ios    uvarint (number of KindIO events)
//	    forks  uvarint (number of KindFork events)
//	    base   uvarint (absolute time of the first event, µs)
//	    ncols  byte    = 9
//	    len[9] uvarint (encoded byte length of each column)
//	crc32   uint32 (little endian, IEEE) of header region + payload
//	payload concatenated column encodings, in column order
//
// Columns and their encodings (time/pid/kind have one entry per event;
// access/pc/fd/block/size one per KindIO event; child one per KindFork):
//
//	time    uvarint deltas from the previous event (prev starts at base)
//	pid     dictionary + run length: uvarint dict size, dict values as
//	        varints, then (uvarint dict index, uvarint run) pairs
//	kind    run length: (byte kind, uvarint run) pairs
//	access  run length: (byte access, uvarint run) pairs
//	pc      varint deltas from the previous I/O's PC (prev starts at 0)
//	fd      varint deltas from the previous I/O's FD (prev starts at 0)
//	block   varint deltas from the previous I/O's block (prev starts at 0)
//	size    run length: (varint size, uvarint run) pairs
//	child   varints, one per fork
//
// Timestamps and PCs are highly local (think times accumulate in small
// steps; I/O bursts replay short PC loops), so their deltas are mostly
// one byte; pids, kinds, accesses and sizes come in long runs, so their
// run-length columns cost near zero per event. The result is both smaller
// than v1 (no per-event pid/kind bytes, no absolute PCs) and much faster
// to decode: whole columns are parsed in tight loops over an in-memory
// payload instead of per-field reads through a bufio.Reader.

const (
	blockFileMagic = "PCT2"
	blockMagic     = "PCB2"
	blockVersion   = 1

	// DefaultBlockEvents is the number of events per block written by
	// BlockEncoder. Bigger blocks amortize header cost and lengthen RLE
	// runs; smaller blocks bound the working set of a batched consumer.
	DefaultBlockEvents = 4096

	// maxBlockEvents bounds the per-block event count a decoder accepts,
	// so corrupt headers cannot demand absurd allocations.
	maxBlockEvents = 1 << 20
	// maxColumnBytes bounds a single column's declared encoded size.
	maxColumnBytes = 1 << 28
)

// Column indices of the v2 block layout, in payload order.
const (
	colTime = iota
	colPid
	colKind
	colAccess
	colPC
	colFD
	colBlock
	colSize
	colChild
	// NumColumns is the number of per-block columns in the v2 layout.
	NumColumns
)

var columnNames = [NumColumns]string{
	"time", "pid", "kind", "access", "pc", "fd", "block", "size", "child",
}

// ColumnName returns the name of column i of the v2 block layout.
func ColumnName(i int) string { return columnNames[i] }

// BlockEncoder writes one execution in the columnar v2 format with the
// same surface as the v1 Encoder: one event per Write call, the event
// count declared up front, I/O errors sticky in the buffered writer and
// surfaced at Close. Events are buffered and flushed as full blocks of
// BlockEvents events (plus one final partial block).
type BlockEncoder struct {
	bw      *bufio.Writer
	count   int
	written int
	prev    Time

	blockEvents int
	buf         []Event
	cols        [NumColumns][]byte
	hdr         []byte
	pidDict     []PID

	ib         *IndexBuilder // optional: collects per-block index metadata
	headerWire int           // bytes the execution header occupies on the wire
	app        string        // execution identity, retained for the index
	exec       int
}

// NewBlockEncoder writes the v2 execution header for an execution of
// count events and returns an encoder for its event stream.
func NewBlockEncoder(w io.Writer, app string, exec int, count int) (*BlockEncoder, error) {
	if count < 0 {
		return nil, fmt.Errorf("trace: negative event count %d", count)
	}
	if exec < 0 {
		return nil, fmt.Errorf("trace: negative execution index %d", exec)
	}
	if len(app) > 1<<20 {
		return nil, fmt.Errorf("trace: app name too long (%d bytes)", len(app))
	}
	enc := &BlockEncoder{count: count, blockEvents: DefaultBlockEvents, app: app, exec: exec}
	hdr := enc.hdr[:0]
	hdr = append(hdr, byte(blockVersion), byte(blockVersion>>8)) // uint16 LE
	hdr = binary.AppendUvarint(hdr, uint64(len(app)))
	hdr = append(hdr, app...)
	hdr = binary.AppendUvarint(hdr, uint64(exec))
	hdr = binary.AppendUvarint(hdr, uint64(count))
	enc.hdr = hdr
	enc.headerWire = len(blockFileMagic) + len(hdr) + 4
	enc.bw = bufio.NewWriter(w)
	enc.bw.WriteString(blockFileMagic) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
	enc.bw.Write(hdr)                  //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
	writeCRC32(enc.bw, crc32.ChecksumIEEE(hdr))
	return enc, nil
}

// SetIndex attaches an IndexBuilder that collects per-block metadata
// (file offsets, event populations, time range, pid set, PC range) while
// the encoder writes. The builder's running offset must equal the file
// offset this encoder's execution header was written at; after the final
// encoder's Close, IndexBuilder.WriteFooter appends the seekable "PCI2"
// footer. SetIndex must be called before the first Write.
func (enc *BlockEncoder) SetIndex(ib *IndexBuilder) error {
	if enc.written > 0 {
		return fmt.Errorf("trace: SetIndex after Write")
	}
	enc.ib = ib
	ib.beginExec(enc.app, enc.exec, uint64(enc.count), enc.headerWire)
	return nil
}

// SetBlockEvents overrides the events-per-block target (mainly for tests
// and size/latency tuning). It must be called before the first Write.
func (enc *BlockEncoder) SetBlockEvents(n int) error {
	if enc.written > 0 {
		return fmt.Errorf("trace: SetBlockEvents after Write")
	}
	if n < 1 || n > maxBlockEvents {
		return fmt.Errorf("trace: block size %d out of range [1, %d]", n, maxBlockEvents)
	}
	enc.blockEvents = n
	return nil
}

// Write encodes the next event. Events must arrive in non-decreasing time
// order and must not exceed the declared count.
func (enc *BlockEncoder) Write(e Event) error {
	i := enc.written
	if i >= enc.count {
		return fmt.Errorf("trace: event %d exceeds declared count %d", i, enc.count)
	}
	if e.Time < enc.prev {
		return fmt.Errorf("trace: event %d out of order; call SortStable before encoding", i)
	}
	if e.Kind > KindExit {
		return fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
	}
	if e.Kind == KindIO && e.Access > AccessClose {
		return fmt.Errorf("trace: event %d has unknown access %d", i, e.Access)
	}
	enc.prev = e.Time
	enc.buf = append(enc.buf, e)
	enc.written++
	if len(enc.buf) >= enc.blockEvents {
		return enc.flush()
	}
	return nil
}

// Close flushes the final block, verifying every declared event was
// written.
func (enc *BlockEncoder) Close() error {
	if enc.written != enc.count {
		return fmt.Errorf("trace: wrote %d of %d declared events", enc.written, enc.count)
	}
	if err := enc.flush(); err != nil {
		return err
	}
	return enc.bw.Flush()
}

// flush encodes the buffered events as one block.
func (enc *BlockEncoder) flush() error {
	n := len(enc.buf)
	if n == 0 {
		return nil
	}
	for i := range enc.cols {
		enc.cols[i] = enc.cols[i][:0]
	}
	buf := enc.buf
	base := buf[0].Time

	// time: uvarint deltas; pid: dictionary + RLE; kind: RLE. One pass
	// builds time and counts the per-kind populations.
	nIO, nFork := 0, 0
	prev := base
	tcol := enc.cols[colTime]
	for i := range buf {
		tcol = binary.AppendUvarint(tcol, uint64(buf[i].Time-prev))
		prev = buf[i].Time
		switch buf[i].Kind {
		case KindIO:
			nIO++
		case KindFork:
			nFork++
		}
	}
	enc.cols[colTime] = tcol

	dict := enc.pidDict[:0]
	for i := range buf {
		if pidIndex(dict, buf[i].Pid) < 0 {
			dict = append(dict, buf[i].Pid)
		}
	}
	enc.pidDict = dict
	pcol := enc.cols[colPid]
	pcol = binary.AppendUvarint(pcol, uint64(len(dict)))
	for _, p := range dict {
		pcol = binary.AppendVarint(pcol, int64(p))
	}
	for i := 0; i < n; {
		j := i + 1
		for j < n && buf[j].Pid == buf[i].Pid {
			j++
		}
		pcol = binary.AppendUvarint(pcol, uint64(pidIndex(dict, buf[i].Pid)))
		pcol = binary.AppendUvarint(pcol, uint64(j-i))
		i = j
	}
	enc.cols[colPid] = pcol

	kcol := enc.cols[colKind]
	for i := 0; i < n; {
		j := i + 1
		for j < n && buf[j].Kind == buf[i].Kind {
			j++
		}
		kcol = append(kcol, byte(buf[i].Kind))
		kcol = binary.AppendUvarint(kcol, uint64(j-i))
		i = j
	}
	enc.cols[colKind] = kcol

	// I/O columns: access RLE, pc/fd/block varint delta chains, size RLE.
	// Delta chains restart at zero each block so blocks decode alone.
	acol, pccol := enc.cols[colAccess], enc.cols[colPC]
	fcol, bcol, scol := enc.cols[colFD], enc.cols[colBlock], enc.cols[colSize]
	var prevPC, prevFD, prevBlock int64
	var runAcc Access
	var runSize int32
	runAccN, runSizeN := 0, 0
	flushAcc := func() {
		if runAccN > 0 {
			acol = append(acol, byte(runAcc))
			acol = binary.AppendUvarint(acol, uint64(runAccN))
		}
	}
	flushSize := func() {
		if runSizeN > 0 {
			scol = binary.AppendVarint(scol, int64(runSize))
			scol = binary.AppendUvarint(scol, uint64(runSizeN))
		}
	}
	ccol := enc.cols[colChild]
	for i := range buf {
		e := &buf[i]
		switch e.Kind {
		case KindFork:
			ccol = binary.AppendVarint(ccol, int64(e.Child))
		case KindIO:
			if runAccN > 0 && e.Access == runAcc {
				runAccN++
			} else {
				flushAcc()
				runAcc, runAccN = e.Access, 1
			}
			if runSizeN > 0 && e.Size == runSize {
				runSizeN++
			} else {
				flushSize()
				runSize, runSizeN = e.Size, 1
			}
			pccol = binary.AppendVarint(pccol, int64(e.PC)-prevPC)
			prevPC = int64(e.PC)
			fcol = binary.AppendVarint(fcol, int64(e.FD)-prevFD)
			prevFD = int64(e.FD)
			bcol = binary.AppendVarint(bcol, e.Block-prevBlock)
			prevBlock = e.Block
		}
	}
	flushAcc()
	flushSize()
	enc.cols[colAccess], enc.cols[colPC] = acol, pccol
	enc.cols[colFD], enc.cols[colBlock], enc.cols[colSize] = fcol, bcol, scol
	enc.cols[colChild] = ccol

	// Header + CRC over header and payload.
	hdr := enc.hdr[:0]
	hdr = binary.AppendUvarint(hdr, uint64(n))
	hdr = binary.AppendUvarint(hdr, uint64(nIO))
	hdr = binary.AppendUvarint(hdr, uint64(nFork))
	hdr = binary.AppendUvarint(hdr, uint64(base))
	hdr = append(hdr, byte(NumColumns))
	for i := range enc.cols {
		hdr = binary.AppendUvarint(hdr, uint64(len(enc.cols[i])))
	}
	enc.hdr = hdr
	crc := crc32.ChecksumIEEE(hdr)
	for i := range enc.cols {
		crc = crc32.Update(crc, crc32.IEEETable, enc.cols[i])
	}
	enc.bw.WriteString(blockMagic) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
	enc.bw.Write(hdr)              //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
	writeCRC32(enc.bw, crc)
	total := 0
	for i := range enc.cols {
		enc.bw.Write(enc.cols[i]) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
		total += len(enc.cols[i])
	}
	if enc.ib != nil {
		enc.ib.addBlock(enc.blockMeta(n, nIO, nFork, base),
			len(blockMagic)+len(hdr)+4+total)
	}
	enc.buf = enc.buf[:0]
	return nil
}

// blockMeta summarizes the buffered block for the index footer. The
// stats are exact over the block's events — MinTime/MaxTime span the
// block, Pids is the sorted set of every Pid field, PCMin/PCMax bound
// the I/O events' program counters — which is what makes index-driven
// block skipping sound (Predicate.MatchMeta is conservative over them).
func (enc *BlockEncoder) blockMeta(n, nIO, nFork int, base Time) BlockMeta {
	buf := enc.buf
	m := BlockMeta{
		Events:  n,
		IOs:     nIO,
		Forks:   nFork,
		MinTime: base,
		MaxTime: buf[n-1].Time,
	}
	m.Pids = append(m.Pids, enc.pidDict...) // flush already deduplicated them
	sort.Slice(m.Pids, func(i, j int) bool { return m.Pids[i] < m.Pids[j] })
	first := true
	for i := range buf {
		if buf[i].Kind != KindIO {
			continue
		}
		pc := buf[i].PC
		if first || pc < m.PCMin {
			m.PCMin = pc
		}
		if first || pc > m.PCMax {
			m.PCMax = pc
		}
		first = false
	}
	return m
}

func pidIndex(dict []PID, p PID) int {
	for i := range dict {
		if dict[i] == p {
			return i
		}
	}
	return -1
}

func writeCRC32(w *bufio.Writer, crc uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], crc)
	w.Write(b[:]) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at the encoder's Flush
}

// WriteColumnar encodes the trace to w in the columnar v2 format — the v2
// counterpart of WriteBinary.
func WriteColumnar(w io.Writer, t *Trace) error {
	enc, err := NewBlockEncoder(w, t.App, t.Execution, len(t.Events))
	if err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := enc.Write(e); err != nil {
			return err
		}
	}
	return enc.Close()
}

// Frame is one decoded block as struct-of-arrays columns, the batch
// counterpart of a []Event run. All columns have one entry per event
// (Len() entries); fields that do not apply to an event's kind are zero,
// so Event(i) reassembles the exact original record.
//
// Ownership: frames returned by BlockDecoder.NextFrame are owned by the
// decoder and recycled — a frame is valid only until the next NextFrame,
// NextExec or Reset call on its decoder. Batch consumers must process (or
// copy) a frame before pulling the next one.
type Frame struct {
	Times    []Time
	Pids     []PID
	Kinds    []Kind
	Accesses []Access
	PCs      []PC
	FDs      []FD
	Blocks   []int64
	Sizes    []int32
	Children []PID
}

// Len returns the number of events in the frame.
func (f *Frame) Len() int { return len(f.Times) }

// Event reassembles event i of the frame.
func (f *Frame) Event(i int) Event {
	return Event{
		Time:   f.Times[i],
		Pid:    f.Pids[i],
		Kind:   f.Kinds[i],
		Access: f.Accesses[i],
		PC:     f.PCs[i],
		FD:     f.FDs[i],
		Block:  f.Blocks[i],
		Size:   f.Sizes[i],
		Child:  f.Children[i],
	}
}

// AppendTo appends events from..Len() of the frame to dst in one batched
// assembly pass — the hot path for draining a whole execution without a
// per-event interface call. The destination is grown once up front so the
// scatter loop runs without per-event capacity checks.
func (f *Frame) AppendTo(dst []Event, from int) []Event {
	n := len(f.Times)
	if from >= n {
		return dst
	}
	base := len(dst)
	need := base + n - from
	if cap(dst) < need {
		grown := make([]Event, base, need+need/4)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	out := dst[base:]
	times := f.Times[from:n]
	pids := f.Pids[from:n]
	kinds := f.Kinds[from:n]
	accs := f.Accesses[from:n]
	pcs := f.PCs[from:n]
	fds := f.FDs[from:n]
	blocks := f.Blocks[from:n]
	sizes := f.Sizes[from:n]
	children := f.Children[from:n]
	for i := range out {
		out[i] = Event{
			Time:   times[i],
			Pid:    pids[i],
			Kind:   kinds[i],
			Access: accs[i],
			PC:     pcs[i],
			FD:     fds[i],
			Block:  blocks[i],
			Size:   sizes[i],
			Child:  children[i],
		}
	}
	return dst
}

// resize sets every column to length n, growing capacity as needed.
func (f *Frame) resize(n int) {
	f.Times = growSlice(f.Times, n)
	f.Pids = growSlice(f.Pids, n)
	f.Kinds = growSlice(f.Kinds, n)
	f.Accesses = growSlice(f.Accesses, n)
	f.PCs = growSlice(f.PCs, n)
	f.FDs = growSlice(f.FDs, n)
	f.Blocks = growSlice(f.Blocks, n)
	f.Sizes = growSlice(f.Sizes, n)
	f.Children = growSlice(f.Children, n)
}

// growSlice returns s with length n, reusing capacity when possible.
func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// framePool recycles decoded frames (and their column capacity) across
// BlockDecoders: a decoder draws one frame at its first NextFrame and
// returns it when its stream ends cleanly, so steady-state decoding
// allocates nothing.
var framePool sync.Pool

// getFrame fetches a recycled frame. The caller takes ownership and must
// return it with framePool.Put when its stream ends.
//
//pcaplint:owner-transfer
func getFrame() *Frame {
	if f, ok := framePool.Get().(*Frame); ok {
		return f
	}
	return &Frame{}
}

// BlockStats describes the last block a BlockDecoder decoded — the raw
// material for traceinspect's per-block report.
type BlockStats struct {
	// Index is the zero-based block ordinal within its execution.
	Index int
	// Events, IOs and Forks are the block's event populations.
	Events, IOs, Forks int
	// HeaderBytes and PayloadBytes are the encoded sizes (the block magic
	// and CRC add another 8 bytes on the wire).
	HeaderBytes, PayloadBytes int
	// ColBytes is the encoded size of each column, by column index.
	ColBytes [NumColumns]int
}

// RawColBytes returns the in-memory (decoded struct-of-arrays) size of
// column i, the denominator of a column's compression ratio.
func (bs BlockStats) RawColBytes(i int) int {
	switch i {
	case colTime:
		return 8 * bs.Events
	case colPid:
		return 4 * bs.Events
	case colKind:
		return 1 * bs.Events
	case colAccess:
		return 1 * bs.IOs
	case colPC:
		return 4 * bs.IOs
	case colFD:
		return 4 * bs.IOs
	case colBlock:
		return 8 * bs.IOs
	case colSize:
		return 4 * bs.IOs
	case colChild:
		return 4 * bs.Forks
	}
	return 0
}

// BlockDecoder is a streaming reader of the columnar v2 format. It
// decodes one whole block at a time into a reusable Frame: NextExec /
// NextFrame / Err / Reset mirror the Source protocol at block
// granularity, for batch-aware consumers; BlockSource adapts it to the
// per-event Source contract.
type BlockDecoder struct {
	r     io.Reader
	seek  io.Seeker
	br    *bufio.Reader
	err   error
	ended bool

	app       string
	nameBuf   []byte // app name bytes backing the reused app string
	exec      int
	count     uint64
	remaining uint64
	blockIdx  int
	inExec    bool

	hdr     []byte  // scratch: CRC-covered header bytes of the record being read
	payload []byte  // scratch: current block's column payload
	scratch [8]byte // fixed-width read scratch (kept on the decoder so it never escapes)
	frame   *Frame
	stats   BlockStats
	pidDict []PID

	// Predicate pushdown (SetPredicate): when plan is non-nil the decoder
	// walks only the index-selected blocks, seeking past the rest.
	plan       []planExec
	planPos    int         // next plan execution
	planCur    planExec    // plan entry being decoded, for header verification
	planBlocks []planBlock // kept blocks of the current execution
	planNext   int         // next kept block within planBlocks
}

// planExec is one execution of a pushdown plan: the file offset of its
// header, the identity the index claims for it (verified against the
// decoded header — a stale or transplanted footer must fail loudly, not
// mis-skip), and the blocks whose index metadata could match the
// predicate.
type planExec struct {
	off    int64
	app    string
	exec   int
	events uint64
	blocks []planBlock
}

// planBlock locates one kept block: its file offset and its ordinal
// within the execution (so error messages still name the on-disk block).
type planBlock struct {
	off     int64
	ordinal int
}

// NewBlockDecoder returns a streaming v2 decoder over r. If r is also an
// io.Seeker, the decoder supports Reset.
func NewBlockDecoder(r io.Reader) *BlockDecoder {
	seek, _ := r.(io.Seeker)
	return &BlockDecoder{r: r, seek: seek, br: bufio.NewReader(r)}
}

// Count returns the number of events the current execution's header
// declared.
func (d *BlockDecoder) Count() uint64 { return d.count }

// BlockStats returns statistics of the most recently decoded block.
func (d *BlockDecoder) BlockStats() BlockStats { return d.stats }

// end marks a clean end of stream, returning the pooled frame.
func (d *BlockDecoder) end() {
	d.ended = true
	if d.frame != nil {
		framePool.Put(d.frame)
		d.frame = nil
	}
}

// seekTo repositions the underlying reader at an absolute file offset,
// discarding buffered read-ahead.
func (d *BlockDecoder) seekTo(off int64) bool {
	if d.seek == nil {
		d.fail("pushdown requires a seekable input")
		return false
	}
	if _, err := d.seek.Seek(off, io.SeekStart); err != nil {
		d.fail("%v", err)
		return false
	}
	d.br.Reset(d.r)
	return true
}

// SetPredicate arms index-backed predicate pushdown: when the input is
// seekable and carries a valid "PCI2" footer, blocks whose index metadata
// cannot match p are skipped with seeks — their bytes are never read.
// Surviving blocks still carry events the predicate rejects (block stats
// are conservative), so exact filtering composes FilterEvents on top.
//
// It returns whether pushdown is active. A missing, truncated or corrupt
// footer deactivates pushdown and the decoder falls back to the full
// sequential scan, preserving plain-decoder behavior byte for byte. It
// must be called before the first NextExec.
func (d *BlockDecoder) SetPredicate(p Predicate) bool {
	if p.IsZero() || d.seek == nil {
		return false
	}
	rs, ok := d.r.(io.ReadSeeker)
	if !ok {
		return false
	}
	idx, err := ReadIndex(rs)
	active := err == nil && idx != nil
	if active {
		plan := make([]planExec, 0, len(idx.Execs))
		for _, em := range idx.Execs {
			pe := planExec{off: em.Offset, app: em.App, exec: em.Exec, events: em.Events}
			for bi := range em.Blocks {
				bm := &em.Blocks[bi]
				if p.MatchMeta(bm) {
					pe.blocks = append(pe.blocks, planBlock{off: bm.Offset, ordinal: bi})
				}
			}
			plan = append(plan, pe)
		}
		d.plan = plan
		d.planPos = 0
	}
	// ReadIndex moved the reader; restore the stream start either way.
	if !d.seekTo(0) {
		return false
	}
	return active
}

// fail records a sticky decode error.
func (d *BlockDecoder) fail(format string, args ...any) {
	d.err = fmt.Errorf("%w: %s", ErrBadFormat, fmt.Sprintf(format, args...))
	d.inExec = false
}

// failBlock records a sticky decode error naming the current block.
func (d *BlockDecoder) failBlock(format string, args ...any) {
	d.err = fmt.Errorf("%w: execution %d block %d: %s",
		ErrBadFormat, d.exec, d.blockIdx, fmt.Sprintf(format, args...))
	d.inExec = false
}

// NextExec advances to the next execution's header, draining any
// undecoded blocks of the current one first. ok=false with a nil Err
// means the stream ended cleanly at an execution boundary.
func (d *BlockDecoder) NextExec() (string, int, bool) {
	if d.err != nil || d.ended {
		return "", 0, false
	}
	if d.plan != nil {
		// Pushdown: seek straight to the next execution's header instead
		// of decoding through the rest of the current one.
		if d.planPos >= len(d.plan) {
			d.end()
			return "", 0, false
		}
		pe := d.plan[d.planPos]
		d.planPos++
		d.planCur = pe
		d.inExec = false
		d.planBlocks, d.planNext = pe.blocks, 0
		if !d.seekTo(pe.off) {
			return "", 0, false
		}
	}
	for d.inExec { // discard the rest of the current execution
		if _, ok := d.NextFrame(); !ok {
			if d.err != nil {
				return "", 0, false
			}
		}
	}
	magic := d.scratch[:4]
	for {
		if _, err := io.ReadFull(d.br, magic); err != nil {
			if err == io.EOF {
				d.end() // clean boundary: no more executions
			} else {
				d.fail("%v", err)
			}
			return "", 0, false
		}
		if string(magic) == blockFileMagic {
			break
		}
		if string(magic) == indexMagic {
			// An index footer trails each indexed write. Skip it by its
			// length field and keep scanning: concatenated trace files
			// interleave footers with executions, and a footer at EOF
			// reads as a clean end of stream on the next iteration.
			if _, err := io.ReadFull(d.br, d.scratch[:4]); err != nil {
				d.fail("truncated index footer: %v", err)
				return "", 0, false
			}
			skip := int64(binary.LittleEndian.Uint32(d.scratch[:4]))
			if _, err := io.CopyN(io.Discard, d.br, skip); err != nil {
				d.fail("truncated index footer: %v", err)
				return "", 0, false
			}
			continue
		}
		d.fail("bad magic %q", magic)
		return "", 0, false
	}
	d.hdr = d.hdr[:0]
	if !d.readFullTee(d.scratch[:2]) {
		return "", 0, false
	}
	if v := binary.LittleEndian.Uint16(d.scratch[:2]); v != blockVersion {
		d.fail("unsupported version %d", v)
		return "", 0, false
	}
	nameLen, ok := d.readUvarintTee()
	if !ok {
		return "", 0, false
	}
	if nameLen > 1<<20 {
		d.fail("app name too long (%d)", nameLen)
		return "", 0, false
	}
	nameStart := len(d.hdr)
	if cap(d.hdr) < nameStart+int(nameLen) {
		grown := make([]byte, nameStart, nameStart+int(nameLen))
		copy(grown, d.hdr)
		d.hdr = grown
	}
	d.hdr = d.hdr[:nameStart+int(nameLen)]
	if _, err := io.ReadFull(d.br, d.hdr[nameStart:]); err != nil {
		d.fail("%v", err)
		return "", 0, false
	}
	exec, ok := d.readUvarintTee()
	if !ok {
		return "", 0, false
	}
	count, ok := d.readUvarintTee()
	if !ok {
		return "", 0, false
	}
	if !d.checkCRC(crc32.ChecksumIEEE(d.hdr), "execution header") {
		return "", 0, false
	}
	if name := d.hdr[nameStart : nameStart+int(nameLen)]; !bytes.Equal(d.nameBuf, name) {
		d.nameBuf = append(d.nameBuf[:0], name...)
		d.app = string(name)
	}
	d.exec = int(exec)
	d.count = count
	d.remaining = count
	d.blockIdx = 0
	d.inExec = count > 0
	if d.plan != nil {
		// Pushdown trusted the footer for the seek; the header is the
		// ground truth. A mismatch means the footer describes some other
		// stream (stale, transplanted, or a concatenation artifact) —
		// skipping by it could silently drop or misattribute events.
		pe := d.planCur
		if d.app != pe.app || d.exec != pe.exec || d.count != pe.events {
			d.fail("index footer: execution at offset %d is %s/%d (%d events), index says %s/%d (%d events)",
				pe.off, d.app, d.exec, d.count, pe.app, pe.exec, pe.events)
			return "", 0, false
		}
	}
	return d.app, d.exec, true
}

// NextFrame decodes the next block of the current execution into the
// decoder's reusable frame. ok=false means the execution's blocks are
// exhausted or the decoder failed (see Err). The returned frame is valid
// until the next NextFrame, NextExec or Reset call.
func (d *BlockDecoder) NextFrame() (*Frame, bool) {
	var h blockHeader
	if !d.readBlock(&h) {
		return nil, false
	}
	if d.frame == nil {
		d.frame = getFrame()
	}
	if !d.decodeBlock(h.events, h.ios, h.forks, h.base, h.colLen) {
		return nil, false
	}
	d.finishBlock(&h)
	return d.frame, true
}

// blockHeader carries one block's validated header between readBlock and
// the two decode paths (SoA frame, direct events).
type blockHeader struct {
	events, ios, forks int
	base               Time
	colLen             [NumColumns]int
	total              int
	storedCRC          uint32
}

// readBlock reads, validates and CRC-checks the next block, leaving its
// payload in d.payload. On any failure the decoder's error names the
// block index.
func (d *BlockDecoder) readBlock(h *blockHeader) bool {
	return d.readBlockRaw(h) && d.verifyBlockCRC(h.storedCRC)
}

// readBlockRaw reads and structurally validates the next block's magic,
// header and payload without verifying the CRC (h.storedCRC carries it
// for a later verifyBlockCRC — the parallel pipeline's workers run the
// CRC and column decode off the reading goroutine). Under a pushdown
// plan it first seeks to the next kept block, ending the execution when
// the plan is exhausted.
func (d *BlockDecoder) readBlockRaw(h *blockHeader) bool {
	if d.err != nil || !d.inExec {
		return false
	}
	if d.plan != nil {
		if d.planNext >= len(d.planBlocks) {
			d.inExec = false
			return false
		}
		pb := d.planBlocks[d.planNext]
		d.planNext++
		d.blockIdx = pb.ordinal
		if !d.seekTo(pb.off) {
			return false
		}
	}
	magic := d.scratch[:4]
	if _, err := io.ReadFull(d.br, magic); err != nil {
		d.failBlock("%v", err)
		return false
	}
	if string(magic) != blockMagic {
		d.failBlock("bad block magic %q", magic)
		return false
	}
	d.hdr = d.hdr[:0]
	nEvents, ok1 := d.readUvarintTee()
	nIO, ok2 := d.readUvarintTee()
	nFork, ok3 := d.readUvarintTee()
	base, ok4 := d.readUvarintTee()
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return false
	}
	ncols, err := d.br.ReadByte()
	if err != nil {
		d.failBlock("%v", err)
		return false
	}
	d.hdr = append(d.hdr, ncols)
	switch {
	case nEvents == 0 || nEvents > maxBlockEvents:
		d.failBlock("event count %d out of range", nEvents)
		return false
	case nEvents > d.remaining:
		d.failBlock("event count %d exceeds remaining %d", nEvents, d.remaining)
		return false
	case nIO > nEvents || nFork > nEvents:
		d.failBlock("population counts %d/%d exceed events %d", nIO, nFork, nEvents)
		return false
	case int(ncols) != NumColumns:
		d.failBlock("column count %d, want %d", ncols, NumColumns)
		return false
	}
	total := 0
	for i := range h.colLen {
		n, ok := d.readUvarintTee()
		if !ok {
			return false
		}
		if n > maxColumnBytes {
			d.failBlock("column %s length %d out of range", columnNames[i], n)
			return false
		}
		h.colLen[i] = int(n)
		total += int(n)
	}
	if _, err := io.ReadFull(d.br, d.scratch[4:8]); err != nil {
		d.failBlock("%v", err)
		return false
	}
	h.storedCRC = binary.LittleEndian.Uint32(d.scratch[4:8])
	d.payload = growSlice(d.payload, total)
	if _, err := io.ReadFull(d.br, d.payload); err != nil {
		d.failBlock("%v", err)
		return false
	}
	h.events, h.ios, h.forks = int(nEvents), int(nIO), int(nFork)
	h.base = Time(base)
	h.total = total
	return true
}

// verifyBlockCRC checks the stored block CRC against d.hdr + d.payload.
func (d *BlockDecoder) verifyBlockCRC(stored uint32) bool {
	crc := crc32.ChecksumIEEE(d.hdr)
	crc = crc32.Update(crc, crc32.IEEETable, d.payload)
	if stored != crc {
		d.failBlock("checksum mismatch (corrupt block): stored %08x, computed %08x", stored, crc)
		return false
	}
	return true
}

// finishBlock records the decoded block's stats and advances the
// execution cursor.
func (d *BlockDecoder) finishBlock(h *blockHeader) {
	d.stats = BlockStats{
		Index:        d.blockIdx,
		Events:       h.events,
		IOs:          h.ios,
		Forks:        h.forks,
		HeaderBytes:  len(d.hdr),
		PayloadBytes: h.total,
		ColBytes:     h.colLen,
	}
	d.remaining -= uint64(h.events)
	d.blockIdx++
	if d.remaining == 0 {
		d.inExec = false
	}
}

// appendBlock decodes the next block of the current execution directly
// into dst (the fused drain path: every event byte is written exactly
// once, skipping the intermediate SoA frame). It returns the extended
// slice; ok=false means end of execution or error.
func (d *BlockDecoder) appendBlock(dst []Event) ([]Event, bool) {
	var h blockHeader
	if !d.readBlock(&h) {
		return dst, false
	}
	base := len(dst)
	need := base + h.events
	if cap(dst) < need {
		grown := make([]Event, base, need+need/4)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	if !d.decodeBlockInto(dst[base:], &h) {
		return dst[:base], false
	}
	d.finishBlock(&h)
	return dst, true
}

// uvarintAt decodes a uvarint at offset p of b, with an inlined fast
// path for the one- and two-byte encodings that dominate the delta
// columns. It returns the value and the offset past it; a negative
// offset means truncation or overflow.
func uvarintAt(b []byte, p int) (uint64, int) {
	if uint(p)+1 < uint(len(b)) {
		c0 := b[p]
		if c0 < 0x80 {
			return uint64(c0), p + 1
		}
		if c1 := b[p+1]; c1 < 0x80 {
			return uint64(c0&0x7f) | uint64(c1)<<7, p + 2
		}
	}
	v, m := binary.Uvarint(b[p:])
	if m <= 0 {
		return 0, -1
	}
	return v, p + m
}

// varintAt is uvarintAt for zigzag-signed varints.
func varintAt(b []byte, p int) (int64, int) {
	if uint(p)+1 < uint(len(b)) {
		c0 := b[p]
		if c0 < 0x80 {
			u := uint64(c0)
			return int64(u>>1) ^ -int64(u&1), p + 1
		}
		if c1 := b[p+1]; c1 < 0x80 {
			u := uint64(c0&0x7f) | uint64(c1)<<7
			return int64(u>>1) ^ -int64(u&1), p + 2
		}
	}
	v, m := binary.Varint(b[p:])
	if m <= 0 {
		return 0, -1
	}
	return v, p + m
}

// decodeBlock parses the payload's columns into the frame.
func (d *BlockDecoder) decodeBlock(n, nIO, nFork int, base Time, colLen [NumColumns]int) bool {
	f := d.frame
	f.resize(n)
	var cols [NumColumns][]byte
	off := 0
	for i, l := range colLen {
		cols[i] = d.payload[off : off+l]
		off += l
	}

	// time: delta chain from base.
	col, p := cols[colTime], 0
	prev := base
	for i := 0; i < n; i++ {
		v, np := uvarintAt(col, p)
		if np < 0 {
			d.failBlock("time column truncated at event %d", i)
			return false
		}
		p = np
		prev += Time(v)
		f.Times[i] = prev
	}
	if p != len(col) {
		d.failBlock("time column has %d trailing bytes", len(col)-p)
		return false
	}

	// pid: dictionary + RLE.
	col, p = cols[colPid], 0
	dictLen, m := binary.Uvarint(col)
	if m <= 0 || dictLen > uint64(n) {
		d.failBlock("bad pid dictionary length")
		return false
	}
	p += m
	dict := growSlice(d.pidDict, int(dictLen))
	d.pidDict = dict
	for i := range dict {
		v, np := varintAt(col, p)
		if np < 0 {
			d.failBlock("pid dictionary truncated at entry %d", i)
			return false
		}
		p = np
		dict[i] = PID(v)
	}
	for i := 0; i < n; {
		idx, np := uvarintAt(col, p)
		if np < 0 || idx >= uint64(len(dict)) {
			d.failBlock("bad pid run at event %d", i)
			return false
		}
		p = np
		run, np := uvarintAt(col, p)
		if np < 0 || run == 0 || run > uint64(n-i) {
			d.failBlock("bad pid run length at event %d", i)
			return false
		}
		p = np
		pid := dict[idx]
		for j := 0; j < int(run); j++ {
			f.Pids[i] = pid
			i++
		}
	}
	if p != len(col) {
		d.failBlock("pid column has %d trailing bytes", len(col)-p)
		return false
	}

	// kind: RLE; recount the populations against the header.
	col, p = cols[colKind], 0
	gotIO, gotFork := 0, 0
	for i := 0; i < n; {
		if p >= len(col) {
			d.failBlock("kind column truncated at event %d", i)
			return false
		}
		k := Kind(col[p])
		p++
		if k > KindExit {
			d.failBlock("unknown kind %d at event %d", k, i)
			return false
		}
		run, np := uvarintAt(col, p)
		if np < 0 || run == 0 || run > uint64(n-i) {
			d.failBlock("bad kind run length at event %d", i)
			return false
		}
		p = np
		switch k {
		case KindIO:
			gotIO += int(run)
		case KindFork:
			gotFork += int(run)
		}
		for j := 0; j < int(run); j++ {
			f.Kinds[i] = k
			i++
		}
	}
	if p != len(col) {
		d.failBlock("kind column has %d trailing bytes", len(col)-p)
		return false
	}
	if gotIO != nIO || gotFork != nFork {
		d.failBlock("kind column populations %d/%d disagree with header %d/%d",
			gotIO, gotFork, nIO, nFork)
		return false
	}

	// Scatter the I/O and fork columns across the frame in one pass,
	// zeroing fields that do not apply to an event's kind (frames are
	// recycled, so stale values must not leak through).
	acc, ap := cols[colAccess], 0
	pcc, pcp := cols[colPC], 0
	fdc, fdp := cols[colFD], 0
	blc, blp := cols[colBlock], 0
	szc, szp := cols[colSize], 0
	chc, chp := cols[colChild], 0
	var curAcc Access
	accRun := 0
	var curSize int32
	sizeRun := 0
	var prevPC, prevFD, prevBlock int64
	for i := 0; i < n; i++ {
		switch f.Kinds[i] {
		case KindIO:
			if accRun == 0 {
				if ap >= len(acc) {
					d.failBlock("access column truncated at event %d", i)
					return false
				}
				curAcc = Access(acc[ap])
				ap++
				if curAcc > AccessClose {
					d.failBlock("unknown access %d at event %d", curAcc, i)
					return false
				}
				run, np := uvarintAt(acc, ap)
				if np < 0 || run == 0 || run > uint64(nIO) {
					d.failBlock("bad access run length at event %d", i)
					return false
				}
				ap = np
				accRun = int(run)
			}
			accRun--
			if sizeRun == 0 {
				v, np := varintAt(szc, szp)
				if np < 0 {
					d.failBlock("size column truncated at event %d", i)
					return false
				}
				szp = np
				curSize = int32(v)
				run, np := uvarintAt(szc, szp)
				if np < 0 || run == 0 || run > uint64(nIO) {
					d.failBlock("bad size run length at event %d", i)
					return false
				}
				szp = np
				sizeRun = int(run)
			}
			sizeRun--
			dpc, np := varintAt(pcc, pcp)
			if np < 0 {
				d.failBlock("pc column truncated at event %d", i)
				return false
			}
			pcp = np
			prevPC += dpc
			dfd, np := varintAt(fdc, fdp)
			if np < 0 {
				d.failBlock("fd column truncated at event %d", i)
				return false
			}
			fdp = np
			prevFD += dfd
			dbl, np := varintAt(blc, blp)
			if np < 0 {
				d.failBlock("block column truncated at event %d", i)
				return false
			}
			blp = np
			prevBlock += dbl
			f.Accesses[i] = curAcc
			f.PCs[i] = PC(prevPC)
			f.FDs[i] = FD(prevFD)
			f.Blocks[i] = prevBlock
			f.Sizes[i] = curSize
			f.Children[i] = 0
		case KindFork:
			v, np := varintAt(chc, chp)
			if np < 0 {
				d.failBlock("child column truncated at event %d", i)
				return false
			}
			chp = np
			f.Accesses[i], f.PCs[i], f.FDs[i] = 0, 0, 0
			f.Blocks[i], f.Sizes[i] = 0, 0
			f.Children[i] = PID(v)
		default:
			f.Accesses[i], f.PCs[i], f.FDs[i] = 0, 0, 0
			f.Blocks[i], f.Sizes[i] = 0, 0
			f.Children[i] = 0
		}
	}
	if accRun != 0 || sizeRun != 0 {
		d.failBlock("access/size runs overrun the block's I/O count")
		return false
	}
	if ap != len(acc) || pcp != len(pcc) || fdp != len(fdc) ||
		blp != len(blc) || szp != len(szc) || chp != len(chc) {
		d.failBlock("I/O columns have trailing bytes")
		return false
	}
	return true
}

// decodeBlockInto parses the payload's columns straight into out (length
// h.events), the allocation-free fast path behind ExecAppender. It
// performs exactly the validation decodeBlock does — the two paths must
// accept and reject the same inputs (covered by the codec fuzz harness).
func (d *BlockDecoder) decodeBlockInto(out []Event, h *blockHeader) bool {
	n, nIO, nFork := h.events, h.ios, h.forks
	var cols [NumColumns][]byte
	off := 0
	for i, l := range h.colLen {
		cols[i] = d.payload[off : off+l]
		off += l
	}

	// time: delta chain from base.
	col, p := cols[colTime], 0
	prev := h.base
	for i := 0; i < n; i++ {
		v, np := uvarintAt(col, p)
		if np < 0 {
			d.failBlock("time column truncated at event %d", i)
			return false
		}
		p = np
		prev += Time(v)
		out[i].Time = prev
	}
	if p != len(col) {
		d.failBlock("time column has %d trailing bytes", len(col)-p)
		return false
	}

	// pid: dictionary + RLE.
	col, p = cols[colPid], 0
	dictLen, m := binary.Uvarint(col)
	if m <= 0 || dictLen > uint64(n) {
		d.failBlock("bad pid dictionary length")
		return false
	}
	p += m
	dict := growSlice(d.pidDict, int(dictLen))
	d.pidDict = dict
	for i := range dict {
		v, np := varintAt(col, p)
		if np < 0 {
			d.failBlock("pid dictionary truncated at entry %d", i)
			return false
		}
		p = np
		dict[i] = PID(v)
	}
	for i := 0; i < n; {
		idx, np := uvarintAt(col, p)
		if np < 0 || idx >= uint64(len(dict)) {
			d.failBlock("bad pid run at event %d", i)
			return false
		}
		p = np
		run, np := uvarintAt(col, p)
		if np < 0 || run == 0 || run > uint64(n-i) {
			d.failBlock("bad pid run length at event %d", i)
			return false
		}
		p = np
		pid := dict[idx]
		for j := 0; j < int(run); j++ {
			out[i].Pid = pid
			i++
		}
	}
	if p != len(col) {
		d.failBlock("pid column has %d trailing bytes", len(col)-p)
		return false
	}

	// kind: RLE; recount the populations against the header.
	col, p = cols[colKind], 0
	gotIO, gotFork := 0, 0
	for i := 0; i < n; {
		if p >= len(col) {
			d.failBlock("kind column truncated at event %d", i)
			return false
		}
		k := Kind(col[p])
		p++
		if k > KindExit {
			d.failBlock("unknown kind %d at event %d", k, i)
			return false
		}
		run, np := uvarintAt(col, p)
		if np < 0 || run == 0 || run > uint64(n-i) {
			d.failBlock("bad kind run length at event %d", i)
			return false
		}
		p = np
		switch k {
		case KindIO:
			gotIO += int(run)
		case KindFork:
			gotFork += int(run)
		}
		for j := 0; j < int(run); j++ {
			out[i].Kind = k
			i++
		}
	}
	if p != len(col) {
		d.failBlock("kind column has %d trailing bytes", len(col)-p)
		return false
	}
	if gotIO != nIO || gotFork != nFork {
		d.failBlock("kind column populations %d/%d disagree with header %d/%d",
			gotIO, gotFork, nIO, nFork)
		return false
	}

	// Scatter the I/O and fork columns, zeroing fields that do not apply
	// to an event's kind (the destination buffer is recycled, so stale
	// values must not leak through).
	acc, ap := cols[colAccess], 0
	pcc, pcp := cols[colPC], 0
	fdc, fdp := cols[colFD], 0
	blc, blp := cols[colBlock], 0
	szc, szp := cols[colSize], 0
	chc, chp := cols[colChild], 0
	var curAcc Access
	accRun := 0
	var curSize int32
	sizeRun := 0
	var prevPC, prevFD, prevBlock int64
	for i := 0; i < n; i++ {
		e := &out[i]
		switch e.Kind {
		case KindIO:
			if accRun == 0 {
				if ap >= len(acc) {
					d.failBlock("access column truncated at event %d", i)
					return false
				}
				curAcc = Access(acc[ap])
				ap++
				if curAcc > AccessClose {
					d.failBlock("unknown access %d at event %d", curAcc, i)
					return false
				}
				run, np := uvarintAt(acc, ap)
				if np < 0 || run == 0 || run > uint64(nIO) {
					d.failBlock("bad access run length at event %d", i)
					return false
				}
				ap = np
				accRun = int(run)
			}
			accRun--
			if sizeRun == 0 {
				v, np := varintAt(szc, szp)
				if np < 0 {
					d.failBlock("size column truncated at event %d", i)
					return false
				}
				szp = np
				curSize = int32(v)
				run, np := uvarintAt(szc, szp)
				if np < 0 || run == 0 || run > uint64(nIO) {
					d.failBlock("bad size run length at event %d", i)
					return false
				}
				szp = np
				sizeRun = int(run)
			}
			sizeRun--
			dpc, np := varintAt(pcc, pcp)
			if np < 0 {
				d.failBlock("pc column truncated at event %d", i)
				return false
			}
			pcp = np
			prevPC += dpc
			dfd, np := varintAt(fdc, fdp)
			if np < 0 {
				d.failBlock("fd column truncated at event %d", i)
				return false
			}
			fdp = np
			prevFD += dfd
			dbl, np := varintAt(blc, blp)
			if np < 0 {
				d.failBlock("block column truncated at event %d", i)
				return false
			}
			blp = np
			prevBlock += dbl
			e.Access = curAcc
			e.PC = PC(prevPC)
			e.FD = FD(prevFD)
			e.Block = prevBlock
			e.Size = curSize
			e.Child = 0
		case KindFork:
			v, np := varintAt(chc, chp)
			if np < 0 {
				d.failBlock("child column truncated at event %d", i)
				return false
			}
			chp = np
			e.Access, e.PC, e.FD = 0, 0, 0
			e.Block, e.Size = 0, 0
			e.Child = PID(v)
		default:
			e.Access, e.PC, e.FD = 0, 0, 0
			e.Block, e.Size = 0, 0
			e.Child = 0
		}
	}
	if accRun != 0 || sizeRun != 0 {
		d.failBlock("access/size runs overrun the block's I/O count")
		return false
	}
	if ap != len(acc) || pcp != len(pcc) || fdp != len(fdc) ||
		blp != len(blc) || szp != len(szc) || chp != len(chc) {
		d.failBlock("I/O columns have trailing bytes")
		return false
	}
	return true
}

// readUvarintTee reads a uvarint from the stream, appending its raw bytes
// to the CRC-covered header scratch.
func (d *BlockDecoder) readUvarintTee() (uint64, bool) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := d.br.ReadByte()
		if err != nil {
			d.fail("%v", err)
			return 0, false
		}
		d.hdr = append(d.hdr, b)
		if b < 0x80 {
			if i == 9 && b > 1 {
				d.fail("uvarint overflows 64 bits")
				return 0, false
			}
			return x | uint64(b)<<s, true
		}
		if i >= 9 {
			d.fail("uvarint overflows 64 bits")
			return 0, false
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// readFullTee reads len(p) bytes, appending them to the header scratch.
func (d *BlockDecoder) readFullTee(p []byte) bool {
	if _, err := io.ReadFull(d.br, p); err != nil {
		d.fail("%v", err)
		return false
	}
	d.hdr = append(d.hdr, p...)
	return true
}

// checkCRC reads a stored little-endian CRC32 and compares it.
func (d *BlockDecoder) checkCRC(computed uint32, what string) bool {
	if _, err := io.ReadFull(d.br, d.scratch[4:8]); err != nil {
		d.fail("%v", err)
		return false
	}
	if stored := binary.LittleEndian.Uint32(d.scratch[4:8]); stored != computed {
		d.fail("%s checksum mismatch: stored %08x, computed %08x", what, stored, computed)
		return false
	}
	return true
}

// Err implements the Source error contract.
func (d *BlockDecoder) Err() error { return d.err }

// Reset rewinds seekable inputs to the start of the stream.
func (d *BlockDecoder) Reset() error {
	if d.seek == nil {
		return fmt.Errorf("trace: decoder input is not seekable")
	}
	if _, err := d.seek.Seek(0, io.SeekStart); err != nil {
		return err
	}
	d.br.Reset(d.r)
	d.err = nil
	d.ended = false
	d.inExec = false
	d.count, d.remaining = 0, 0
	d.blockIdx = 0
	d.planPos = 0
	d.planBlocks, d.planNext = nil, 0
	return nil
}

// BlockSource adapts a BlockDecoder to the per-event Source contract: it
// decodes a whole block at a time into the decoder's reusable frame and
// hands out events from the frame — the drop-in replacement for Decoder
// over v2 files, with batched decode underneath.
type BlockSource struct {
	d   *BlockDecoder
	f   *Frame
	pos int
}

// NewBlockSource returns a Source over the v2 columnar stream on r. If r
// is also an io.Seeker, the source supports Reset.
func NewBlockSource(r io.Reader) *BlockSource {
	return &BlockSource{d: NewBlockDecoder(r)}
}

// Decoder exposes the underlying block decoder (for block-level stats).
func (s *BlockSource) Decoder() *BlockDecoder { return s.d }

// SetPredicate arms index-backed predicate pushdown on the underlying
// decoder (see BlockDecoder.SetPredicate); it reports whether pushdown
// is active. Must be called before the first NextExec.
func (s *BlockSource) SetPredicate(p Predicate) bool { return s.d.SetPredicate(p) }

// Count returns the number of events the current execution's header
// declared.
func (s *BlockSource) Count() uint64 { return s.d.Count() }

// NextExec implements Source.
func (s *BlockSource) NextExec() (string, int, bool) {
	s.f, s.pos = nil, 0
	return s.d.NextExec()
}

// Next implements Source.
func (s *BlockSource) Next() (Event, bool) {
	for s.f == nil || s.pos >= s.f.Len() {
		f, ok := s.d.NextFrame()
		if !ok {
			s.f = nil
			return Event{}, false
		}
		s.f, s.pos = f, 0
	}
	e := s.f.Event(s.pos)
	s.pos++
	return e, true
}

// AppendExec implements ExecAppender: it appends the remaining events of
// the current execution to buf a whole block at a time, decoding straight
// into the destination (no per-event Next call, no intermediate frame).
// The returned slice is caller-owned.
func (s *BlockSource) AppendExec(buf []Event) []Event {
	if s.f != nil {
		buf = s.f.AppendTo(buf, s.pos)
		s.f, s.pos = nil, 0
	}
	for {
		var ok bool
		buf, ok = s.d.appendBlock(buf)
		if !ok {
			return buf
		}
	}
}

// Err implements Source.
func (s *BlockSource) Err() error { return s.d.Err() }

// Reset implements Source.
func (s *BlockSource) Reset() error {
	s.f, s.pos = nil, 0
	return s.d.Reset()
}

// FrameSource is the batch-level counterpart of BlockSource: instead of
// handing out one Event at a time it yields whole decoded frames, so
// batch-aware consumers can process a column at a time. The returned
// Frame (and its column slices) is only valid until the next NextFrame,
// NextExec or Reset call — copy out anything that must outlive it.
type FrameSource struct {
	d *BlockDecoder
}

// NewFrameSource returns a FrameSource over the v2 columnar stream on r.
// If r is also an io.Seeker, the source supports Reset.
func NewFrameSource(r io.Reader) *FrameSource {
	return &FrameSource{d: NewBlockDecoder(r)}
}

// Decoder exposes the underlying block decoder (for block-level stats).
func (s *FrameSource) Decoder() *BlockDecoder { return s.d }

// SetPredicate arms index-backed predicate pushdown on the underlying
// decoder (see BlockDecoder.SetPredicate); it reports whether pushdown
// is active. Must be called before the first NextExec.
func (s *FrameSource) SetPredicate(p Predicate) bool { return s.d.SetPredicate(p) }

// NextExec advances to the next execution, returning its app name and
// execution number.
func (s *FrameSource) NextExec() (string, int, bool) { return s.d.NextExec() }

// NextFrame decodes and returns the next block of the current execution
// as a reusable SoA frame. It returns false at the end of the execution
// or on error (check Err).
func (s *FrameSource) NextFrame() (*Frame, bool) { return s.d.NextFrame() }

// Err reports the first error encountered.
func (s *FrameSource) Err() error { return s.d.Err() }

// Reset rewinds seekable inputs to the start of the stream.
func (s *FrameSource) Reset() error { return s.d.Reset() }

package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// funcSpan returns the line range of a named function in the corpus
// package.
func funcSpan(t *testing.T, mod *Module, pkg *Package, name string) (lo, hi int) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return mod.Fset.Position(fd.Pos()).Line, mod.Fset.Position(fd.End()).Line
			}
		}
	}
	t.Fatalf("function %s not in corpus", name)
	return 0, 0
}

func findingsIn(fs []Finding, lo, hi int) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Line >= lo && f.Line <= hi {
			out = append(out, f)
		}
	}
	return out
}

// TestPoolSafeV2FindsWhatV1Missed is the acceptance regression for the
// CFG rewrite: the corpus plants a leak-on-error-path reached only
// through a goto (GotoLeak), which PR 5's structural scan provably
// missed — its statement walk stops at BranchStmt without following
// the jump — while the v2 dataflow reports it. Both implementations
// run over the same loaded corpus so the comparison is apples to
// apples.
func TestPoolSafeV2FindsWhatV1Missed(t *testing.T) {
	mod, pkg := loadCorpus(t, "poolsafe", "internal/pool")
	v1 := runPackage(mod, pkg, []*Analyzer{poolSafeV1}, KnownNames())
	v2 := runPackage(mod, pkg, []*Analyzer{PoolSafe}, KnownNames())

	lo, hi := funcSpan(t, mod, pkg, "GotoLeak")
	if got := findingsIn(v1, lo, hi); len(got) != 0 {
		t.Errorf("structural v1 unexpectedly reports the goto leak: %v", got)
	}
	got := findingsIn(v2, lo, hi)
	if len(got) != 1 {
		t.Fatalf("CFG v2 findings in GotoLeak = %v, want exactly one", got)
	}
	const want = "does not reach Put before this return"
	if msg := got[0].Message; !strings.Contains(msg, want) {
		t.Errorf("v2 goto-leak message = %q, want substring %q", msg, want)
	}

	// The rewrite also retires a v1 false positive: a Put inside every
	// switch case satisfies the obligation under the dataflow, while
	// the structural scan could not credit it.
	lo, hi = funcSpan(t, mod, pkg, "PutInEveryCase")
	if got := findingsIn(v2, lo, hi); len(got) != 0 {
		t.Errorf("v2 reports the switch-covered Put: %v", got)
	}
	if got := findingsIn(v1, lo, hi); len(got) == 0 {
		t.Error("expected v1's documented false positive on PutInEveryCase to still fire (keeps the reference honest)")
	}
}

// Package fleet simulates a fleet of concurrent user machines on a shared
// virtual clock.
//
// The single-machine simulator (internal/sim) answers "what does a policy
// save on one machine's disk over one session". The fleet engine answers
// the production-scale question: what do PCAP/TP/LT save across
// thousands-to-millions of machines with heterogeneous disks, per-machine
// application mixes, and staggered session arrivals. It is built directly
// on the stepable sim.Machine extracted from the run loop: every machine
// is one Machine, the engine multiplexes their next-event times over a
// min-heap, and aggregate accounting is coalesced per machine and
// committed in machine-ID order so the report is byte-identical at any
// worker count.
//
// Determinism contract: everything a machine does is a pure function of
// (Config.Seed, machine ID) — its arrival time, its device, its workload
// seed and its per-execution application picks all derive from one
// splittable rng chain (see Spec). Worker count, shard assignment and heap
// interleaving only change the order independent machines are advanced
// in, never any machine's own event sequence, and the final fold walks
// machine IDs in increasing order, fixing every floating-point
// accumulation order.
//
// Memory contract: live state is O(active machines), not O(events) and
// not O(total machines beyond one small summary each). A machine
// materializes its runState (borrowed from the per-device runner's
// sync.Pool) only between its arrival and its retirement; its trace
// events stream through one pooled per-machine buffer, one execution at a
// time.
package fleet

import (
	"fmt"
	"runtime"

	"pcapsim/internal/disk"
	"pcapsim/internal/rng"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// AppShare weights one application in the fleet's workload mix.
type AppShare struct {
	// Name is a registered workload application ("mozilla", "xemacs", …).
	Name string
	// Weight is the share's relative probability mass (must be positive).
	Weight float64
}

// DeviceShare weights one device profile in the fleet's hardware mix.
type DeviceShare struct {
	Device disk.Params
	Weight float64
}

// Config parameterizes a fleet simulation.
type Config struct {
	// Machines is the number of simulated user machines.
	Machines int
	// Seed is the fleet's master seed; every machine derives its own
	// randomness from (Seed, machine ID).
	Seed uint64
	// Session is each machine's target virtual session length: a machine
	// keeps starting executions until its session clock reaches Session,
	// always completing at least one. Zero defaults to 30 virtual
	// minutes (unless Executions is set).
	Session trace.Time
	// Executions, if positive, gives every machine exactly that many
	// executions instead of a time-bounded session.
	Executions int
	// Stagger is the arrival window: machine session arrivals are uniform
	// in [0, Stagger). It defaults to Session — sessions ramp up over one
	// session length — and only shapes how many machines are concurrently
	// active (and therefore peak memory), never any machine's results.
	Stagger trace.Time
	// Mix is the application mix; each machine draws an app per execution
	// from these weights. Empty defaults to the paper's six applications,
	// equally weighted.
	Mix []AppShare
	// Replay, if non-empty, replaces the synthetic workload generator
	// with recorded traces: machines draw applications from the distinct
	// app names in Replay (equally weighted) and execution i of an app
	// replays recorded execution i mod n with pass i/n's deterministic
	// timestamp warp (trace.WarpTime) — the same drift model
	// trace.Scale uses, so a replayed fleet session keeps each trace's
	// I/O structure without microsecond-identical repeats. Mutually
	// exclusive with Mix.
	Replay []*trace.Trace
	// Devices is the hardware mix; each machine draws its disk once from
	// these weights. Empty defaults to the full disk.Catalog, equally
	// weighted.
	Devices []DeviceShare
	// Base is the simulator configuration shared by every machine; the
	// Disk field is replaced per machine by its drawn device. The zero
	// value defaults to sim.DefaultConfig.
	Base sim.Config
	// Policy builds the shutdown policy for a device. It is invoked once
	// per distinct device; predictors typically derive their thresholds
	// (breakeven, wait window) from the device, which is why the policy
	// is a function of it. Every returned policy must carry the same
	// Name.
	Policy func(dev disk.Params) (sim.Policy, error)
	// Workers is the worker count; machines are sharded across workers in
	// contiguous ID ranges. Zero defaults to GOMAXPROCS. The rendered
	// report is byte-identical at any worker count.
	Workers int
	// Observe, if non-nil, receives every machine's individual result
	// during the final commit, in increasing machine-ID order on the
	// calling goroutine. The pointed-to result is owned by the engine;
	// copy it to retain it.
	Observe func(id int, res *sim.AppResult)
	// Interrupt, if non-nil, is polled by every shard between machine
	// advances and at a fixed step stride inside long advancement
	// batches; a non-nil return aborts the run with that error. Wire
	// ctx.Err here to make a fleet run cancelable (the daemon's per-job
	// timeouts and client disconnects). Interrupt must be safe for
	// concurrent calls and cheap — it runs on the shard hot loop.
	Interrupt func() error
}

// Spec is one machine's derived identity: everything that makes machine
// id's session different from machine id+1's.
type Spec struct {
	// Arrival is the global virtual time the machine's session starts.
	Arrival trace.Time
	// Device indexes the fleet's device list.
	Device int
	// WorkloadSeed seeds the machine's workload generators.
	WorkloadSeed uint64
}

// fleetLabel separates the fleet's rng chain from the workload chains.
const fleetLabel = 0xF1EE7

// sessionApp is one drawable application in a fleet session: a name and
// an execution generator. Synthetic mixes bind it to a workload.App's
// generator; trace replay binds it to recorded executions. Both are pure
// functions of (seed, exec), which is what keeps the fleet's determinism
// contract independent of where events come from.
type sessionApp struct {
	name         string
	appendEvents func(buf []trace.Event, seed uint64, exec int) []trace.Event
}

// replayApps builds the drawable app set from recorded traces: traces
// group by app name (first-appearance order), and execution i of a
// group with n recorded executions replays recording i mod n under pass
// i/n's timestamp warp.
func replayApps(traces []*trace.Trace) ([]sessionApp, []float64, error) {
	index := make(map[string]int)
	var groups [][]*trace.Trace
	var names []string
	for i, tr := range traces {
		if tr == nil || len(tr.Events) == 0 {
			return nil, nil, fmt.Errorf("fleet: replay trace %d is empty", i)
		}
		gi, ok := index[tr.App]
		if !ok {
			gi = len(groups)
			index[tr.App] = gi
			groups = append(groups, nil)
			names = append(names, tr.App)
		}
		groups[gi] = append(groups[gi], tr)
	}
	apps := make([]sessionApp, len(groups))
	weights := make([]float64, len(groups))
	for gi := range groups {
		group := groups[gi]
		apps[gi] = sessionApp{
			name: names[gi],
			appendEvents: func(buf []trace.Event, _ uint64, exec int) []trace.Event {
				rec := group[exec%len(group)]
				pass := exec / len(group)
				for _, e := range rec.Events {
					e.Time = trace.WarpTime(e.Time, pass)
					buf = append(buf, e)
				}
				return buf
			},
		}
		weights[gi] = 1
	}
	return apps, weights, nil
}

// Fleet is a validated, ready-to-run fleet simulation.
type Fleet struct {
	cfg        Config
	apps       []sessionApp
	appWeights []float64
	devices    []disk.Params
	devWeights []float64
	runners    []*sim.Runner
	policies   []sim.Policy
	policyName string
}

// New validates cfg, applies defaults, and builds the per-device runners
// and policies.
func New(cfg Config) (*Fleet, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 machine, got %d", cfg.Machines)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("fleet: Config.Policy is required")
	}
	if cfg.Executions < 0 {
		return nil, fmt.Errorf("fleet: negative Executions %d", cfg.Executions)
	}
	if cfg.Session < 0 || cfg.Stagger < 0 {
		return nil, fmt.Errorf("fleet: negative Session or Stagger")
	}
	if cfg.Session == 0 && cfg.Executions == 0 {
		cfg.Session = 1800 * trace.Second
	}
	if cfg.Stagger == 0 {
		cfg.Stagger = cfg.Session
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if len(cfg.Replay) > 0 && len(cfg.Mix) > 0 {
		return nil, fmt.Errorf("fleet: Replay and Mix are mutually exclusive")
	}
	if len(cfg.Replay) == 0 && len(cfg.Mix) == 0 {
		for _, a := range workload.Apps() {
			cfg.Mix = append(cfg.Mix, AppShare{Name: a.Name, Weight: 1})
		}
	}
	if len(cfg.Devices) == 0 {
		for _, d := range disk.Catalog() {
			cfg.Devices = append(cfg.Devices, DeviceShare{Device: d, Weight: 1})
		}
	}
	if cfg.Base == (sim.Config{}) {
		cfg.Base = sim.DefaultConfig()
	}

	f := &Fleet{cfg: cfg}
	if len(cfg.Replay) > 0 {
		apps, weights, err := replayApps(cfg.Replay)
		if err != nil {
			return nil, err
		}
		f.apps, f.appWeights = apps, weights
	}
	for _, share := range cfg.Mix {
		app, ok := workload.ByName(share.Name)
		if !ok {
			return nil, fmt.Errorf("fleet: unknown application %q in mix", share.Name)
		}
		if share.Weight <= 0 {
			return nil, fmt.Errorf("fleet: non-positive weight %g for application %q", share.Weight, share.Name)
		}
		f.apps = append(f.apps, sessionApp{name: app.Name, appendEvents: app.AppendEvents})
		f.appWeights = append(f.appWeights, share.Weight)
	}
	for _, share := range cfg.Devices {
		if share.Weight <= 0 {
			return nil, fmt.Errorf("fleet: non-positive weight %g for device %q", share.Weight, share.Device.Name)
		}
		rc := cfg.Base
		rc.Disk = share.Device
		runner, err := sim.NewRunner(rc)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %q: %w", share.Device.Name, err)
		}
		pol, err := cfg.Policy(share.Device)
		if err != nil {
			return nil, fmt.Errorf("fleet: policy for device %q: %w", share.Device.Name, err)
		}
		if err := pol.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: policy for device %q: %w", share.Device.Name, err)
		}
		if f.policyName == "" {
			f.policyName = pol.Name
		} else if pol.Name != f.policyName {
			return nil, fmt.Errorf("fleet: policy name %q for device %q differs from %q — one fleet evaluates one policy",
				pol.Name, share.Device.Name, f.policyName)
		}
		f.devices = append(f.devices, share.Device)
		f.devWeights = append(f.devWeights, share.Weight)
		f.runners = append(f.runners, runner)
		f.policies = append(f.policies, pol)
	}
	return f, nil
}

// Config returns the fleet's configuration after defaulting.
func (f *Fleet) Config() Config { return f.cfg }

// Spec derives machine id's identity. It is a pure function of
// (Config.Seed, id): the machine's rng chain is
// rng.New(Seed).Split(fleetLabel).Split(id+1), and the draws are, in
// order, the arrival offset, the device pick, and the workload seed; the
// per-execution app-pick stream is an independent split of the same chain
// (see newMixSource).
func (f *Fleet) Spec(id int) Spec {
	return f.specFrom(f.machineRNG(id))
}

// specFrom consumes the Spec draws from a machine's root rng chain, in
// the fixed order the determinism contract pins: arrival offset, device
// pick, workload seed. newMixSource replays these before splitting off
// the app-pick stream, so Spec and the source agree on the chain state.
func (f *Fleet) specFrom(r *rng.Source) Spec {
	var arrival trace.Time
	if f.cfg.Stagger > 0 {
		arrival = trace.FromSeconds(r.Range(0, f.cfg.Stagger.Seconds()))
	}
	dev := r.Pick(f.devWeights)
	seed := r.Uint64()
	return Spec{Arrival: arrival, Device: dev, WorkloadSeed: seed}
}

// machineRNG returns machine id's root rng.
func (f *Fleet) machineRNG(id int) *rng.Source {
	return rng.New(f.cfg.Seed).Split(fleetLabel).Split(uint64(id) + 1)
}

// appPickLabel splits the per-execution app-pick stream off the machine
// rng chain, after the Spec draws.
const appPickLabel = 0xA44

// Device returns the fleet's device list (after defaulting).
func (f *Fleet) Device(i int) disk.Params { return f.devices[i] }

// StaticPolicy adapts a fixed policy to Config.Policy for policies whose
// predictors do not depend on the device (Base, TP with an absolute
// timeout, the oracle).
func StaticPolicy(pol sim.Policy) func(disk.Params) (sim.Policy, error) {
	return func(disk.Params) (sim.Policy, error) { return pol, nil }
}

// Package server is pcapd's HTTP daemon: simulation as a service.
//
// The daemon accepts policy-evaluation, trace-replay and fleet jobs as
// JSON, runs them on a bounded pool of workers with pooled, reusable job
// contexts, and returns the exact same rendered reports the pcapsim CLI
// prints — byte for byte, at any worker count. Three design rules keep it
// honest:
//
//   - Determinism across the network boundary. A job's Output string is
//     produced by the same library entry points the CLI calls
//     (experiments.ReplayRows/RenderReplayRows and experiments.FleetResults/
//     RenderFleetComparison), over the same sources, so a server response
//     is byte-identical to the equivalent local run. The differential
//     tests pin this.
//
//   - Pooled job contexts. Workers draw a jobContext — memoized
//     experiment suites plus a private stats shard — from a sync.Pool and
//     return it when the job ends, extending the runState pooling
//     discipline (DESIGN.md §10) to whole jobs: a burst of jobs against
//     the same seed reuses generated workloads instead of regenerating
//     them per request.
//
//   - Contention-free live counters. Per-job accounting flows through
//     internal/server/stats Local shards (VSA-style delta coalescing) and
//     commits to one global atomic view, so /stats stays cheap to serve
//     and free of hot-path contention no matter how many workers run.
//
// Cancellation is cooperative and complete: every job runs under a
// context bounded by its own timeout, a cancel endpoint, and — for
// synchronous requests — the client connection, and that context is
// threaded through the simulation itself (the meter source for
// eval/replay, fleet.Config.Interrupt for fleets), so a disconnected
// client frees its worker and pooled context promptly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"pcapsim/internal/experiments"
	"pcapsim/internal/server/stats"
	"pcapsim/internal/sim"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the job worker pool size; 0 defaults to GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 503. 0 defaults to 64.
	QueueDepth int
	// DefaultTimeout bounds jobs whose spec carries no timeout_sec;
	// 0 defaults to 5 minutes.
	DefaultTimeout time.Duration
	// TraceDir is the root for trace path references in job specs.
	// Empty means path references are rejected (uploads still work).
	TraceDir string
}

// Server is the pcapd daemon: an http.Handler plus the worker pool
// behind it. Construct with New, serve via Handler, stop via Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	queue    chan *Job
	ctxPool  sync.Pool
	counters stats.Counters

	// baseCtx parents every job context; cancel it to abort running jobs.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string // job IDs in submission order, for deterministic listings
	jobSeq   int
	uploads  map[string]string // upload ID -> stored file path
	upSeq    int
	upDir    string // lazily created upload directory
	draining bool

	wg sync.WaitGroup // running workers
}

// New validates cfg, starts the worker pool, and returns the server.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Minute
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		queue:     make(chan *Job, cfg.QueueDepth),
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*Job),
		uploads:   make(map[string]string),
	}
	s.ctxPool.New = func() any {
		return &jobContext{
			suites: make(map[suiteKey]*experiments.Suite),
			local:  stats.NewLocal(&s.counters, stats.Options{MaxLag: time.Second}),
		}
	}
	s.routes()
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Config returns the server's configuration after defaulting.
func (s *Server) Config() Config { return s.cfg }

// Counters exposes the live counter view (tests, /stats).
func (s *Server) Counters() *stats.Counters { return &s.counters }

// worker is one pool goroutine: it drains the job queue until the queue
// closes, running each job inside a pooled jobContext.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job inside a pooled context. The jobContext is
// drawn from and returned to the pool here — never retained past the
// job — and its stats shard is flushed before the context goes back, so
// a parked context holds no uncommitted counter deltas.
func (s *Server) runJob(job *Job) {
	jc := s.ctxPool.Get().(*jobContext)
	defer s.ctxPool.Put(jc)
	defer jc.local.Flush()

	if !job.start() {
		return // canceled while queued
	}
	s.counters.JobStarted()

	timeout := s.cfg.DefaultTimeout
	if job.Spec.TimeoutSec > 0 {
		timeout = time.Duration(job.Spec.TimeoutSec * float64(time.Second))
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	job.bindCancel(cancel)
	out, err := s.execute(ctx, job, jc)
	cancel()

	switch {
	case err == nil:
		job.finish(StateDone, out, "")
		s.counters.JobDone(false)
	case errors.Is(err, context.Canceled):
		job.finish(StateCanceled, "", "canceled: "+err.Error())
		s.counters.JobDone(true)
	case errors.Is(err, context.DeadlineExceeded):
		job.finish(StateFailed, "", fmt.Sprintf("timeout after %s: %v", timeout, err))
		s.counters.JobDone(true)
	default:
		job.finish(StateFailed, "", err.Error())
		s.counters.JobDone(true)
	}
}

// suiteKey identifies a reusable experiment suite inside a jobContext.
// Scale is part of the key because a Suite memoizes results per scale.
type suiteKey struct {
	seed  uint64
	scale int
}

// maxPooledSuites bounds a parked context's memoized suites so a pool of
// contexts cannot accumulate one workload cache per distinct seed ever
// seen.
const maxPooledSuites = 8

// jobContext is one worker's reusable job state: memoized experiment
// suites keyed by (seed, scale) and a private stats shard. It is
// single-owner while held — exactly a pooled runState writ large — and
// crosses goroutines only through the pool's happens-before edges.
type jobContext struct {
	suites map[suiteKey]*experiments.Suite
	local  *stats.Local
}

// suite returns the context's memoized suite for (seed, scale), building
// it on first use.
func (jc *jobContext) suite(seed uint64, scale int) (*experiments.Suite, error) {
	if scale < 1 {
		scale = 1
	}
	key := suiteKey{seed: seed, scale: scale}
	if st, ok := jc.suites[key]; ok {
		return st, nil
	}
	st, err := experiments.NewSuite(seed, sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	st.SetScale(scale)
	if len(jc.suites) >= maxPooledSuites {
		clear(jc.suites)
	}
	jc.suites[key] = st
	return st, nil
}

// routes installs the HTTP surface.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /traces", s.handleUpload)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// handleSubmit accepts a job spec. With ?wait=1 the response is written
// only when the job finishes (and a client disconnect cancels it);
// otherwise the job is accepted with 202 and polled via /jobs/{id}.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding job spec: %v", err))
		return
	}
	if err := spec.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := s.enqueue(&spec)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if r.URL.Query().Get("wait") != "1" {
		writeJSON(w, http.StatusAccepted, job.view())
		return
	}
	// Synchronous mode: the job lives and dies with this request — a
	// client that hangs up takes its job (and the worker slot it holds)
	// down with it.
	stop := context.AfterFunc(r.Context(), func() {
		job.Cancel("client disconnected")
	})
	defer stop()
	<-job.Done()
	writeJSON(w, http.StatusOK, job.view())
}

// enqueue registers a job and places it on the bounded queue.
func (s *Server) enqueue(spec *JobSpec) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errors.New("server is shutting down")
	}
	s.jobSeq++
	job := newJob(fmt.Sprintf("j%d", s.jobSeq), spec)
	select {
	case s.queue <- job:
	default:
		s.jobSeq--
		return nil, fmt.Errorf("job queue full (%d queued)", cap(s.queue))
	}
	s.jobs[job.ID] = job
	s.jobOrder = append(s.jobOrder, job.ID)
	return job, nil
}

// job looks up a registered job.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	job.Cancel("canceled by request")
	writeJSON(w, http.StatusOK, job.view())
}

// handleUpload stores a raw trace file (any on-disk format) and returns
// its reference ID for job specs.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	dir, err := s.uploadDir()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	f, err := os.CreateTemp(dir, "trace-*")
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	_, cpErr := io.Copy(f, r.Body)
	clErr := f.Close()
	if cpErr == nil {
		cpErr = clErr
	}
	if cpErr != nil {
		_ = os.Remove(f.Name()) //pcaplint:ignore errcheck-lite best-effort cleanup of a failed upload; the copy error below is authoritative
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("storing trace: %v", cpErr))
		return
	}
	s.mu.Lock()
	s.upSeq++
	id := "t" + strconv.Itoa(s.upSeq)
	s.uploads[id] = f.Name()
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// uploadDir lazily creates the server's upload directory.
func (s *Server) uploadDir() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.upDir != "" {
		return s.upDir, nil
	}
	dir, err := os.MkdirTemp("", "pcapd-uploads-")
	if err != nil {
		return "", fmt.Errorf("creating upload dir: %w", err)
	}
	s.upDir = dir
	return dir, nil
}

// resolveTrace maps a job spec's trace reference to an on-disk path:
// upload IDs first, then paths inside Config.TraceDir. Path references
// must stay inside the trace directory.
func (s *Server) resolveTrace(ref string) (string, error) {
	s.mu.Lock()
	path, ok := s.uploads[ref]
	s.mu.Unlock()
	if ok {
		return path, nil
	}
	if s.cfg.TraceDir == "" {
		return "", fmt.Errorf("unknown trace reference %q (no upload by that ID, and the server has no trace directory)", ref)
	}
	if !filepath.IsLocal(ref) {
		return "", fmt.Errorf("trace reference %q escapes the trace directory", ref)
	}
	return filepath.Join(s.cfg.TraceDir, ref), nil
}

// statsView is the /stats response: the live counter snapshot plus the
// pool's occupancy.
type statsView struct {
	stats.Snapshot
	Workers int `json:"workers"`
	Queued  int `json:"queued"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsView{
		Snapshot: s.counters.Snapshot(),
		Workers:  s.cfg.Workers,
		Queued:   len(s.queue),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n") //pcaplint:ignore errcheck-lite health probe response; a failed write only matters to the prober
}

// Shutdown drains the server: new submissions are rejected immediately,
// queued and running jobs are given until ctx expires to finish, then
// running jobs are canceled and the pool is awaited. After Shutdown
// returns, no worker goroutine remains.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue) // workers exit once the backlog drains
	}
	s.mu.Unlock()
	if already {
		return errors.New("server: Shutdown called twice")
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: cancel every running job and wait for the pool
		// to notice.
		s.cancelAll()
		<-done
		err = ctx.Err()
	}
	s.removeUploads()
	return err
}

// removeUploads deletes the upload directory, if one was created.
func (s *Server) removeUploads() {
	s.mu.Lock()
	dir := s.upDir
	s.upDir = ""
	s.mu.Unlock()
	if dir != "" {
		_ = os.RemoveAll(dir) //pcaplint:ignore errcheck-lite best-effort cleanup of temp uploads at shutdown
	}
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeJSON writes v as the response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //pcaplint:ignore errcheck-lite response write failure means the client went away; nothing to report to
}

package workload

import "pcapsim/internal/trace"

// This file implements the shared generative engine behind the four
// interactive applications (mozilla, writer, impress, xemacs).
//
// An execution is: application startup (library loads, helper forks), a
// sequence of user *episodes*, and shutdown. Following the repetitive
// structure the paper's Figure 2 describes, an episode is a run of quick
// actions — each an I/O burst followed by a micro pause (filtered by the
// wait-window) or a short idle period — capped by a settle action whose
// think time is long (a shutdown opportunity). The run length is the
// user's current *rhythm*; it persists across episodes with occasional
// changes, which is exactly the regularity the Learning Tree's
// idle-length histories can learn.
//
// Two more mechanisms give each predictor its paper-shaped failure mode:
//
//   - Quick appearances of an action use a *partial* I/O burst
//     (interrupted page load, skimmed file) while settles use the full
//     burst, so PC-path signatures genuinely distinguish most outcomes.
//     Kinds whose quick burst equals their settle burst are ambiguous —
//     the paper's subpath aliasing — and mislead PCAP.
//   - The user oscillates between *calm* and *restless* phases. Restless
//     settles often abort into another short period before the real long
//     idle arrives: PCAP's trained signature fires and misses, while the
//     restless phase's extra short periods shift the idle-history
//     bit-vector, which is how PCAPh dodges the same miss.

// Kind is one user-action kind in an application's catalog.
type Kind struct {
	// Name describes the action ("follow link", "open file", …).
	Name string
	// Path is the fixed PC path of the action's I/O burst.
	Path []Site
	// FD is the descriptor the action's I/Os use.
	FD trace.FD
	// BulkSite/Bulk add the bulk-data run (images, file contents) after
	// Path when the action is a settle.
	BulkSite Site
	Bulk     int
	// BulkQuick is the bulk when the action is a quick (interrupted)
	// visit. Zero means "same as Bulk": an ambiguous kind whose quick and
	// settle appearances are indistinguishable to a path predictor.
	BulkQuick int
	// DirtySite/Dirty re-dirty the application's writable blocks (history
	// databases, autosave files) at the end of the action.
	DirtySite Site
	Dirty     int
	// Helper, if non-negative, makes that helper process perform its
	// assist burst right after the action.
	Helper int
	// WeightQuick/WeightSettle are the selection weights for quick and
	// settle appearances.
	WeightQuick, WeightSettle float64
}

// Helper is a helper process of an interactive application.
type Helper struct {
	// StartupPath/StartupBulk is the helper's I/O at fork time.
	StartupPath []Site
	BulkSite    Site
	StartupBulk int
	FD          trace.FD
	// AssistPath/AssistBulk is the helper's burst when a Kind names it.
	AssistPath []Site
	AssistBulk int
	// Prob, if non-zero, is the probability the helper exists at all in a
	// given execution (xemacs only sometimes spawns a subprocess).
	Prob float64
}

// Model parameterizes one interactive application.
type Model struct {
	// Startup is the root process's launch-time I/O.
	StartupPath []Site
	BulkSite    Site
	StartupBulk int
	StartupFD   trace.FD
	// Helpers are forked right after startup.
	Helpers []Helper
	// Kinds is the action catalog.
	Kinds []Kind

	// EpisodesMin/EpisodesMax bound the episodes per execution (uniform).
	EpisodesMin, EpisodesMax int
	// RunMin/RunMax bound the rhythm (quick actions per episode).
	RunMin, RunMax int
	// PChangeRhythm is the per-episode probability of redrawing the
	// rhythm.
	PChangeRhythm float64
	// PQuickMicro is the probability a quick action's pause is a
	// sub-wait-window micro pause instead of a short idle period.
	PQuickMicro float64
	// RhythmWeights, if non-empty, weights the rhythm draw over
	// RunMin..RunMax (users have a dominant habit — the regularity that
	// makes idle-length histories learnable). Empty means uniform.
	RhythmWeights []float64

	// PRestlessStart is the probability the session starts restless;
	// PersistPhase is the per-episode probability the phase persists.
	PRestlessStart, PersistPhase float64
	// PSettleShortCalm / PSettleShortRestless are the probabilities that
	// a settle aborts into a short period first (retried up to twice).
	PSettleShortCalm, PSettleShortRestless float64

	// ShortLo/ShortHi bound short thinks (seconds); they must sit between
	// the wait-window and the breakeven time.
	ShortLo, ShortHi float64
	// LongBands and LongWeights shape the long-think distribution: three
	// uniform bands (seconds) chosen around the timeout predictor's
	// behaviour: below its timer, near it, and far above it.
	LongBands   [3][2]float64
	LongWeights [3]float64

	// Exit is the shutdown-time I/O.
	ExitPath  []Site
	ExitFD    trace.FD
	ExitDirty int
	ExitSite  Site
	// IntraLo/IntraHi bound intra-burst gaps (seconds).
	IntraLo, IntraHi float64
}

// interactiveSession generates one execution of m into b.
func interactiveSession(b *B, m *Model) {
	root := b.Root()

	// The writable working set (history db, autosave area): a small fixed
	// block range re-dirtied by actions, flushed by the cache's timer.
	dirtyBase := b.FreshBlocks(8)

	// Launch.
	b.AdvanceRange(0.05, 0.3)
	b.Path(root, m.StartupFD, m.StartupPath, m.IntraLo, m.IntraHi)
	if m.StartupBulk > 0 {
		b.Advance(b.R.Range(m.IntraLo, m.IntraHi))
		b.Burst(root, m.BulkSite, m.StartupFD, m.StartupBulk, m.IntraLo, m.IntraHi)
	}
	st := &session{
		m:          m,
		helperPids: make([]trace.PID, len(m.Helpers)),
		helperFree: make([]trace.Time, len(m.Helpers)),
		dirtyBase:  dirtyBase,
	}
	helperPids := st.helperPids
	for i, h := range m.Helpers {
		if h.Prob > 0 && !b.R.Bool(h.Prob) {
			continue // helper absent this execution; pid stays 0
		}
		b.AdvanceRange(0.02, 0.1)
		pid := b.Fork(root)
		helperPids[i] = pid
		b.AdvanceRange(0.02, 0.08)
		b.Path(pid, h.FD, h.StartupPath, m.IntraLo, m.IntraHi)
		if h.StartupBulk > 0 {
			b.Advance(b.R.Range(m.IntraLo, m.IntraHi))
			b.Burst(pid, h.BulkSite, h.FD, h.StartupBulk, m.IntraLo, m.IntraHi)
		}
		st.helperFree[i] = b.Now()
	}

	// The user starts working right away (a micro pause only, filtered
	// by the wait-window).
	b.AdvanceRange(0.3, 0.9)

	episodes := m.EpisodesMin
	if m.EpisodesMax > m.EpisodesMin {
		episodes += b.R.Intn(m.EpisodesMax - m.EpisodesMin + 1)
	}
	rhythm := m.drawRhythm(b)
	restless := b.R.Bool(m.PRestlessStart)

	for e := 0; e < episodes; e++ {
		if b.R.Bool(m.PChangeRhythm) {
			rhythm = m.drawRhythm(b)
		}

		// The quick run.
		for k := 0; k < rhythm; k++ {
			kind := pickKind(b, m, false)
			st.emitAction(b, root, kind, false)
			if b.R.Bool(m.PQuickMicro) {
				b.AdvanceRange(0.2, 0.9)
			} else {
				b.AdvanceRange(m.ShortLo, m.ShortHi)
			}
		}

		// The settle: possibly aborted into short periods first.
		pAbort := m.PSettleShortCalm
		if restless {
			pAbort = m.PSettleShortRestless
		}
		for try := 0; ; try++ {
			kind := pickKind(b, m, true)
			st.emitAction(b, root, kind, true)
			if try < 2 && b.R.Bool(pAbort) {
				b.AdvanceRange(m.ShortLo, m.ShortHi)
				continue
			}
			b.Advance(drawLong(b, m))
			break
		}

		if !b.R.Bool(m.PersistPhase) {
			restless = !restless
		}
	}

	// Shutdown: final saves, helpers exit, root exits.
	b.Path(root, m.ExitFD, m.ExitPath, m.IntraLo, m.IntraHi)
	if m.ExitDirty > 0 {
		b.Advance(b.R.Range(m.IntraLo, m.IntraHi))
		b.BurstAt(root, m.ExitSite, m.ExitFD, dirtyBase, 8, m.ExitDirty, m.IntraLo, m.IntraHi)
	}
	for _, pid := range helperPids {
		if pid == 0 {
			continue
		}
		b.AdvanceRange(0.02, 0.08)
		b.Exit(pid)
	}
	b.AdvanceRange(0.05, 0.2)
	b.Exit(root)
}

// session carries per-execution emission state: the helper pids and the
// times at which each helper finishes its in-flight burst.
type session struct {
	m          *Model
	helperPids []trace.PID
	helperFree []trace.Time
	dirtyBase  int64
}

// emitAction emits one action's I/O: the PC path, the (full or quick)
// bulk, any helper assist, and the dirty-block writes. Helper assists run
// *concurrently* with the root's burst — they start shortly after the
// action begins and the clock returns to the root's own timeline
// afterwards, so a slow helper never inflates the root process's idle
// periods.
func (st *session) emitAction(b *B, root trace.PID, kind *Kind, settle bool) {
	m := st.m
	start := b.Now()
	b.Path(root, kind.FD, kind.Path, m.IntraLo, m.IntraHi)
	bulk := kind.Bulk
	if !settle && kind.BulkQuick > 0 {
		bulk = kind.BulkQuick
	}
	if bulk > 0 {
		b.Advance(b.R.Range(m.IntraLo, m.IntraHi))
		b.Burst(root, kind.BulkSite, kind.FD, bulk, m.IntraLo, m.IntraHi)
	}
	rootEnd := b.Now()
	if kind.Helper >= 0 && kind.Helper < len(st.helperPids) && st.helperPids[kind.Helper] != 0 {
		h := m.Helpers[kind.Helper]
		pid := st.helperPids[kind.Helper]
		hstart := start + trace.FromSeconds(b.R.Range(0.03, 0.12))
		if hstart < st.helperFree[kind.Helper] {
			hstart = st.helperFree[kind.Helper]
		}
		b.Warp(hstart)
		b.Path(pid, h.FD, h.AssistPath, m.IntraLo, m.IntraHi)
		if h.AssistBulk > 0 {
			b.Advance(b.R.Range(m.IntraLo, m.IntraHi))
			b.Burst(pid, h.BulkSite, h.FD, h.AssistBulk, m.IntraLo, m.IntraHi)
		}
		st.helperFree[kind.Helper] = b.Now()
		b.Warp(rootEnd)
	}
	if kind.Dirty > 0 {
		b.AdvanceRange(0.01, 0.05)
		b.BurstAt(root, kind.DirtySite, kind.FD, st.dirtyBase, 8, kind.Dirty, m.IntraLo, m.IntraHi)
	}
}

func (m *Model) drawRhythm(b *B) int {
	if m.RunMax <= m.RunMin {
		return m.RunMin
	}
	if len(m.RhythmWeights) > 0 {
		return m.RunMin + b.R.Pick(m.RhythmWeights)
	}
	return m.RunMin + b.R.Intn(m.RunMax-m.RunMin+1)
}

// pickKind draws an action kind by quick or settle weights.
func pickKind(b *B, m *Model, settle bool) *Kind {
	weights := make([]float64, len(m.Kinds))
	for i := range m.Kinds {
		if settle {
			weights[i] = m.Kinds[i].WeightSettle
		} else {
			weights[i] = m.Kinds[i].WeightQuick
		}
	}
	return &m.Kinds[b.R.Pick(weights)]
}

// drawLong draws a long think time from the model's banded mixture.
func drawLong(b *B, m *Model) float64 {
	band := b.R.Pick(m.LongWeights[:])
	return b.R.Range(m.LongBands[band][0], m.LongBands[band][1])
}

// Package classic implements the pre-PCAP shutdown predictors the paper's
// Section 2 surveys, beyond the timeout predictor and Learning Tree that
// the paper evaluates directly:
//
//   - ExpAverage — Hwang & Wu's predictive shutdown: the next idle
//     period's length is forecast as an exponentially weighted average of
//     predicted and actual previous lengths; a forecast above breakeven
//     triggers an immediate (wait-window guarded) shutdown.
//   - LShape — Srivastava, Chandrakasan & Brodersen's observation that
//     long idle periods follow *short* busy periods (the L-shaped
//     scatter): a busy period under the threshold predicts a long idle
//     period.
//   - AdaptiveTimeout — Douglis, Krishnan & Bershad's feedback timer: the
//     timeout shrinks after correct shutdowns and grows after premature
//     ones, bounded to [Min, Max].
//
// All three follow the same contract as PCAP and LT: they accelerate the
// backup timeout, never suppress it, and an access inside the scheduled
// delay cancels the shutdown (the sliding wait-window).
package classic

import (
	"fmt"

	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

// ExpAverageConfig parameterizes the exponential-average predictor.
type ExpAverageConfig struct {
	// Alpha is the smoothing factor: forecast' = Alpha·actual +
	// (1−Alpha)·forecast. Hwang & Wu use 0.5.
	Alpha float64
	// WaitWindow guards predicted shutdowns (1 s).
	WaitWindow trace.Time
	// BackupTimeout is the fallback timer (10 s).
	BackupTimeout trace.Time
	// Breakeven is the shutdown-worthiness threshold.
	Breakeven trace.Time
}

// DefaultExpAverageConfig returns Hwang & Wu's α = 0.5 with the study's
// standard wait-window, backup timer and breakeven.
func DefaultExpAverageConfig() ExpAverageConfig {
	return ExpAverageConfig{
		Alpha:         0.5,
		WaitWindow:    trace.Second,
		BackupTimeout: 10 * trace.Second,
		Breakeven:     trace.FromSeconds(5.43),
	}
}

// Validate checks the configuration.
func (c ExpAverageConfig) Validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("classic: alpha must be in (0,1], got %g", c.Alpha)
	case c.WaitWindow <= 0:
		return fmt.Errorf("classic: wait window must be positive")
	case c.BackupTimeout <= 0:
		return fmt.Errorf("classic: backup timeout must be positive")
	case c.Breakeven <= 0:
		return fmt.Errorf("classic: breakeven must be positive")
	}
	return nil
}

// ExpAverage is the Hwang & Wu predictor factory.
type ExpAverage struct{ cfg ExpAverageConfig }

var _ predictor.Factory = (*ExpAverage)(nil)

// NewExpAverage returns an ExpAverage factory.
func NewExpAverage(cfg ExpAverageConfig) (*ExpAverage, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ExpAverage{cfg: cfg}, nil
}

// MustNewExpAverage is NewExpAverage, panicking on error.
func MustNewExpAverage(cfg ExpAverageConfig) *ExpAverage {
	e, err := NewExpAverage(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements predictor.Factory.
func (e *ExpAverage) Name() string { return "ExpAvg" }

// NewProcess implements predictor.Factory.
func (e *ExpAverage) NewProcess(trace.PID) predictor.Process {
	return &expAverageProcess{cfg: &e.cfg}
}

type expAverageProcess struct {
	cfg      *ExpAverageConfig
	started  bool
	last     trace.Time
	forecast float64 // seconds
	trained  bool
}

// OnAccess implements predictor.Process.
func (p *expAverageProcess) OnAccess(a predictor.Access) predictor.Decision {
	if p.started {
		gap := a.Time - p.last
		if gap >= p.cfg.WaitWindow {
			// Update the forecast with the completed idle period.
			actual := gap.Seconds()
			if !p.trained {
				p.forecast = actual
				p.trained = true
			} else {
				p.forecast = p.cfg.Alpha*actual + (1-p.cfg.Alpha)*p.forecast
			}
		}
	}
	p.started = true
	p.last = a.Time
	if p.trained && p.forecast >= p.cfg.Breakeven.Seconds() {
		return predictor.Decision{Shutdown: true, Delay: p.cfg.WaitWindow, Source: predictor.SourcePrimary}
	}
	return predictor.Decision{Shutdown: true, Delay: p.cfg.BackupTimeout, Source: predictor.SourceBackup}
}

// LShapeConfig parameterizes the busy-period predictor.
type LShapeConfig struct {
	// BusyThreshold: busy periods shorter than this predict a long idle
	// period (the corner of the L).
	BusyThreshold trace.Time
	// WaitWindow guards predicted shutdowns and separates bursts from
	// idle periods.
	WaitWindow trace.Time
	// BackupTimeout is the fallback timer.
	BackupTimeout trace.Time
}

// DefaultLShapeConfig returns a 3 s busy threshold with the study's
// standard wait-window and backup timer.
func DefaultLShapeConfig() LShapeConfig {
	return LShapeConfig{
		BusyThreshold: 3 * trace.Second,
		WaitWindow:    trace.Second,
		BackupTimeout: 10 * trace.Second,
	}
}

// Validate checks the configuration.
func (c LShapeConfig) Validate() error {
	switch {
	case c.BusyThreshold <= 0:
		return fmt.Errorf("classic: busy threshold must be positive")
	case c.WaitWindow <= 0:
		return fmt.Errorf("classic: wait window must be positive")
	case c.BackupTimeout <= 0:
		return fmt.Errorf("classic: backup timeout must be positive")
	}
	return nil
}

// LShape is the Srivastava et al. predictor factory.
type LShape struct{ cfg LShapeConfig }

var _ predictor.Factory = (*LShape)(nil)

// NewLShape returns an LShape factory.
func NewLShape(cfg LShapeConfig) (*LShape, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &LShape{cfg: cfg}, nil
}

// MustNewLShape is NewLShape, panicking on error.
func MustNewLShape(cfg LShapeConfig) *LShape {
	l, err := NewLShape(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// Name implements predictor.Factory.
func (l *LShape) Name() string { return "LShape" }

// NewProcess implements predictor.Factory.
func (l *LShape) NewProcess(trace.PID) predictor.Process {
	return &lShapeProcess{cfg: &l.cfg}
}

type lShapeProcess struct {
	cfg       *LShapeConfig
	started   bool
	last      trace.Time
	busyStart trace.Time
}

// OnAccess implements predictor.Process.
func (p *lShapeProcess) OnAccess(a predictor.Access) predictor.Decision {
	if !p.started {
		p.started = true
		p.busyStart = a.Time
	} else if a.Time-p.last >= p.cfg.WaitWindow {
		// The previous burst ended with an idle period; a new busy
		// period begins at this access.
		p.busyStart = a.Time
	}
	p.last = a.Time
	busy := a.Time - p.busyStart
	if busy < p.cfg.BusyThreshold {
		// Short busy period so far: the L-shape predicts the next idle
		// period will be long.
		return predictor.Decision{Shutdown: true, Delay: p.cfg.WaitWindow, Source: predictor.SourcePrimary}
	}
	return predictor.Decision{Shutdown: true, Delay: p.cfg.BackupTimeout, Source: predictor.SourceBackup}
}

// AdaptiveTimeoutConfig parameterizes the feedback timer.
type AdaptiveTimeoutConfig struct {
	// Initial, Min and Max bound the timer.
	Initial, Min, Max trace.Time
	// Grow and Shrink are the multiplicative feedback factors applied
	// after premature and correct shutdowns respectively.
	Grow, Shrink float64
	// Breakeven classifies the observed idle periods for the feedback.
	Breakeven trace.Time
}

// DefaultAdaptiveTimeoutConfig returns a 10 s initial timer bounded to
// [2 s, 60 s] with ×2 growth and ×0.5 shrink.
func DefaultAdaptiveTimeoutConfig() AdaptiveTimeoutConfig {
	return AdaptiveTimeoutConfig{
		Initial:   10 * trace.Second,
		Min:       2 * trace.Second,
		Max:       60 * trace.Second,
		Grow:      2.0,
		Shrink:    0.5,
		Breakeven: trace.FromSeconds(5.43),
	}
}

// Validate checks the configuration.
func (c AdaptiveTimeoutConfig) Validate() error {
	switch {
	case c.Min <= 0 || c.Max < c.Min:
		return fmt.Errorf("classic: timer bounds [%v,%v] invalid", c.Min, c.Max)
	case c.Initial < c.Min || c.Initial > c.Max:
		return fmt.Errorf("classic: initial timer %v outside [%v,%v]", c.Initial, c.Min, c.Max)
	case c.Grow <= 1:
		return fmt.Errorf("classic: grow factor must exceed 1, got %g", c.Grow)
	case c.Shrink <= 0 || c.Shrink >= 1:
		return fmt.Errorf("classic: shrink factor must be in (0,1), got %g", c.Shrink)
	case c.Breakeven <= 0:
		return fmt.Errorf("classic: breakeven must be positive")
	}
	return nil
}

// AdaptiveTimeout is the Douglis et al. predictor factory.
type AdaptiveTimeout struct{ cfg AdaptiveTimeoutConfig }

var _ predictor.Factory = (*AdaptiveTimeout)(nil)

// NewAdaptiveTimeout returns an AdaptiveTimeout factory.
func NewAdaptiveTimeout(cfg AdaptiveTimeoutConfig) (*AdaptiveTimeout, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &AdaptiveTimeout{cfg: cfg}, nil
}

// MustNewAdaptiveTimeout is NewAdaptiveTimeout, panicking on error.
func MustNewAdaptiveTimeout(cfg AdaptiveTimeoutConfig) *AdaptiveTimeout {
	a, err := NewAdaptiveTimeout(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Name implements predictor.Factory.
func (a *AdaptiveTimeout) Name() string { return "AdaptTP" }

// NewProcess implements predictor.Factory.
func (a *AdaptiveTimeout) NewProcess(trace.PID) predictor.Process {
	return &adaptiveProcess{cfg: &a.cfg, timer: a.cfg.Initial}
}

type adaptiveProcess struct {
	cfg     *AdaptiveTimeoutConfig
	started bool
	last    trace.Time
	timer   trace.Time
}

// OnAccess implements predictor.Process.
func (p *adaptiveProcess) OnAccess(a predictor.Access) predictor.Decision {
	if p.started {
		gap := a.Time - p.last
		switch {
		case gap > p.timer && gap-p.timer < p.cfg.Breakeven:
			// The timer expired but the disk woke before breaking even:
			// a premature shutdown — back off.
			p.timer = clampTimer(trace.Time(float64(p.timer)*p.cfg.Grow), p.cfg)
		case gap >= p.timer+p.cfg.Breakeven:
			// A correct shutdown: the timer can afford to be more eager.
			p.timer = clampTimer(trace.Time(float64(p.timer)*p.cfg.Shrink), p.cfg)
		}
	}
	p.started = true
	p.last = a.Time
	// The adaptive timer is the primary mechanism itself.
	return predictor.Decision{Shutdown: true, Delay: p.timer, Source: predictor.SourcePrimary}
}

func clampTimer(t trace.Time, cfg *AdaptiveTimeoutConfig) trace.Time {
	if t < cfg.Min {
		return cfg.Min
	}
	if t > cfg.Max {
		return cfg.Max
	}
	return t
}

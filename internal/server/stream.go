package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Streamed progress: GET /jobs/{id}/events serves the job's lifecycle as
// Server-Sent Events. Each observable change (state transition, finished
// policy run) emits one "progress" event whose data is the job's View;
// the final event is named after the terminal state and carries the full
// view including Output. The stream is change-driven — watchers park on
// the job's change channel, no polling — so an idle job costs nothing.

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	for {
		// Snapshot after grabbing the change channel: changes landing
		// between the two are covered by the snapshot and re-delivered
		// (harmlessly) by the already-closed channel.
		_, changed := job.watch()
		v := job.view()
		terminal := v.State == StateDone || v.State == StateFailed || v.State == StateCanceled
		name := "progress"
		if terminal {
			name = v.State
		}
		if err := writeEvent(w, name, v); err != nil {
			return // client went away
		}
		fl.Flush()
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame.
func writeEvent(w http.ResponseWriter, name string, v View) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
	return err
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): it wires the synthetic workloads, the file
// cache, the disk model, the predictors and the simulator together, one
// driver per experiment, and renders results in the paper's units.
package experiments

import (
	"bytes"
	"fmt"

	"pcapsim/internal/core"
	"pcapsim/internal/ltree"
	"pcapsim/internal/persist"
	"pcapsim/internal/predictor"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// DefaultSeed is the workload seed used by the CLI and the benchmarks.
// All numbers in EXPERIMENTS.md are produced with this seed.
const DefaultSeed uint64 = 20040214 // HPCA-10 opened February 14, 2004

// Suite generates workloads once and runs policies over them, memoizing
// per-(app, policy) results so that figures sharing runs (6/7, 8, 9, 10)
// do not recompute them.
//
// A Suite is safe for concurrent use: trace generation and every result
// computation sit behind singleflight caches (see engine.go), so
// RunMatrix can fan the evaluation matrix across workers while the
// renderers keep reading memoized values.
type Suite struct {
	seed   uint64
	cfg    sim.Config
	runner *sim.Runner
	// scale repeats every workload scale times (1 = the paper's
	// workloads); see trace.Scale. Set it before the first run.
	scale int

	// traces memoizes per-(app, seed) generated traces; device sub-suites
	// share it with their parent, since traces are device independent.
	traces *workload.TraceCache
	// memo memoizes every derived result: simulation cells, per-app
	// experiment rows, and per-device sub-suites.
	memo memo
}

// NewSuite returns a Suite over the given workload seed and simulator
// configuration.
func NewSuite(seed uint64, cfg sim.Config) (*Suite, error) {
	return newSharedSuite(seed, cfg, workload.NewTraceCache())
}

// newSharedSuite builds a Suite around an existing trace cache, so
// derived suites (the per-device sub-suites) reuse generated traces.
func newSharedSuite(seed uint64, cfg sim.Config, traces *workload.TraceCache) (*Suite, error) {
	r, err := sim.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return &Suite{
		seed:   seed,
		cfg:    cfg,
		runner: r,
		scale:  1,
		traces: traces,
	}, nil
}

// NewDefaultSuite returns a Suite with the paper's configuration and the
// default seed.
func NewDefaultSuite() *Suite {
	s, err := NewSuite(DefaultSeed, sim.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the simulator configuration.
func (s *Suite) Config() sim.Config { return s.cfg }

// Seed returns the workload seed.
func (s *Suite) Seed() uint64 { return s.seed }

// Apps returns the paper's six applications.
func (s *Suite) Apps() []*workload.App { return workload.Apps() }

// Traces returns (and caches) all execution traces of app. The slice is
// shared read-only across every policy run: traces are replayed, never
// mutated.
func (s *Suite) Traces(app *workload.App) []*trace.Trace {
	return s.traces.Traces(app, s.seed)
}

// SourceFor returns a fresh trace source over app's workload, scaled by
// the suite's scale factor. In the default (pinned) cache mode all
// sources of one app share a single generated slice; in on-demand mode
// each source regenerates its executions as it is consumed. Every call
// returns an independent iterator — sources are single-goroutine values.
func (s *Suite) SourceFor(app *workload.App) trace.Source {
	return trace.Scale(s.traces.Source(app, s.seed), s.scale)
}

// SetScale makes every policy run consume the workload scale times over
// (see trace.Scale; scale 1 — the default — is byte-for-byte the paper's
// workload). Set it before the first run: results are memoized, so
// changing the scale mid-suite would mix scales in one output.
func (s *Suite) SetScale(scale int) {
	if scale < 1 {
		scale = 1
	}
	s.scale = scale
}

// Scale returns the suite's workload scale factor.
func (s *Suite) Scale() int { return s.scale }

// SetOnDemand switches the shared trace cache between pinned slices (the
// default) and regenerate-on-demand streaming, which holds at most one
// execution of one app in memory per concurrent run. Like SetScale, set
// it before the first run.
func (s *Suite) SetOnDemand(v bool) { s.traces.SetOnDemand(v) }

// OnDemand reports whether the suite streams workloads on demand.
func (s *Suite) OnDemand() bool { return s.traces.OnDemand() }

// Run simulates app under pol, memoized by (app, policy name). Concurrent
// callers of the same cell block on one simulation and share its result.
func (s *Suite) Run(app *workload.App, pol sim.Policy) (*sim.AppResult, error) {
	v, err := s.memo.do("run/"+app.Name+"/"+pol.Name, func() (any, error) {
		res, err := s.runner.RunSource(s.SourceFor(app), pol)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s under %s: %w", app.Name, pol.Name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*sim.AppResult), nil
}

// --- Standard policies -----------------------------------------------

// PolicyBase never shuts the disk down (Figure 8's "Base").
func (s *Suite) PolicyBase() sim.Policy {
	return sim.Policy{
		Name:       "Base",
		NewFactory: func() predictor.Factory { return predictor.AlwaysOn{} },
	}
}

// PolicyIdeal shuts down exactly at the start of every long global idle
// period (Figure 8's "Ideal").
func (s *Suite) PolicyIdeal() sim.Policy {
	breakeven := s.cfg.Disk.Breakeven
	return sim.Policy{
		Name:         "Ideal",
		NewFactory:   func() predictor.Factory { return predictor.NewOracle(breakeven) },
		GlobalOracle: true,
	}
}

// PolicyTP is the paper's 10-second timeout predictor.
func (s *Suite) PolicyTP() sim.Policy { return s.PolicyTPWith("TP", 10*trace.Second) }

// PolicyTPWith is a timeout predictor with an explicit timer.
func (s *Suite) PolicyTPWith(name string, timeout trace.Time) sim.Policy {
	return sim.Policy{
		Name:       name,
		NewFactory: func() predictor.Factory { return predictor.NewTimeout(timeout) },
	}
}

// PolicyLT is the Learning Tree with tree reuse across executions; the
// reuse path round-trips the tree through its persistence format.
func (s *Suite) PolicyLT() sim.Policy {
	return sim.Policy{
		Name:       "LT",
		NewFactory: func() predictor.Factory { return ltree.MustNew(s.ltConfig()) },
		Reuse:      true,
		RoundTrip: func(f predictor.Factory) (predictor.Factory, error) {
			old := f.(*ltree.LT)
			var buf bytes.Buffer
			if err := persist.SaveTree(&buf, "", old); err != nil {
				return nil, err
			}
			fresh := ltree.MustNew(s.ltConfig())
			if err := persist.LoadTree(&buf, "", fresh); err != nil {
				return nil, err
			}
			return fresh, nil
		},
	}
}

// PolicyLTa is the Learning Tree discarding its tree after every
// execution (Figure 10's LTa).
func (s *Suite) PolicyLTa() sim.Policy {
	return sim.Policy{
		Name:       "LTa",
		NewFactory: func() predictor.Factory { return ltree.MustNew(s.ltConfig()) },
	}
}

func (s *Suite) ltConfig() ltree.Config {
	cfg := ltree.DefaultConfig()
	cfg.Breakeven = s.cfg.Disk.Breakeven
	cfg.WaitWindow = s.waitWindow()
	return cfg
}

// waitWindow returns the paper's 1 s sliding wait-window, scaled down for
// devices whose breakeven time is itself below a second (e.g. a wireless
// interface): the window must leave room for the shutdown to pay off.
func (s *Suite) waitWindow() trace.Time {
	w := trace.Second
	if half := s.cfg.Disk.Breakeven / 2; half < w {
		w = half
	}
	return w
}

// PolicyPCAP is a PCAP variant with prediction-table reuse; the reuse
// path round-trips the table through the initialization-file format.
func (s *Suite) PolicyPCAP(v core.Variant) sim.Policy {
	return sim.Policy{
		Name:       v.String(),
		NewFactory: func() predictor.Factory { return core.MustNew(s.pcapConfig(v)) },
		Reuse:      true,
		RoundTrip: func(f predictor.Factory) (predictor.Factory, error) {
			old := f.(*core.PCAP)
			var buf bytes.Buffer
			if err := persist.SaveTable(&buf, "", old); err != nil {
				return nil, err
			}
			fresh := core.MustNew(s.pcapConfig(v))
			if err := persist.LoadTable(&buf, "", fresh); err != nil {
				return nil, err
			}
			return fresh, nil
		},
	}
}

// PolicyPCAPa is base PCAP discarding its table after every execution
// (Figure 10's PCAPa).
func (s *Suite) PolicyPCAPa() sim.Policy {
	return sim.Policy{
		Name:       "PCAPa",
		NewFactory: func() predictor.Factory { return core.MustNew(s.pcapConfig(core.VariantBase)) },
	}
}

func (s *Suite) pcapConfig(v core.Variant) core.Config {
	cfg := core.DefaultConfig(v)
	cfg.Breakeven = s.cfg.Disk.Breakeven
	cfg.WaitWindow = s.waitWindow()
	return cfg
}

// Command pcapsim regenerates the paper's tables and figures from the
// synthetic workloads.
//
// Usage:
//
//	pcapsim -exp all
//	pcapsim -exp fig7 -seed 42
//	pcapsim -exp table1,fig6,fig8
//
// Experiments: table1, table2, table3, fig6, fig7, fig8, fig9, fig10,
// tpsweep, multistate, predictors, devices, prefetch, and "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pcapsim/internal/experiments"
	"pcapsim/internal/sim"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiments (table1,table2,table3,fig6,fig7,fig8,fig9,fig10,tpsweep,multistate,predictors,devices,prefetch,all)")
		seedFlag = flag.Uint64("seed", experiments.DefaultSeed, "workload seed")
		barsFlag = flag.Bool("bars", false, "render accuracy figures as stacked bars instead of tables")
	)
	flag.Parse()

	suite, err := experiments.NewSuite(*seedFlag, sim.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	order := []string{"table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "tpsweep", "multistate", "predictors", "devices", "prefetch"}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		if e == "" {
			continue
		}
		if e == "all" {
			for _, o := range order {
				want[o] = true
			}
			continue
		}
		want[e] = true
	}
	known := map[string]bool{}
	for _, o := range order {
		known[o] = true
	}
	for e := range want {
		if !known[e] {
			fatal(fmt.Errorf("unknown experiment %q", e))
		}
	}

	for _, e := range order {
		if !want[e] {
			continue
		}
		out, err := run(suite, e, *barsFlag)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
}

func run(s *experiments.Suite, exp string, bars bool) (string, error) {
	renderAcc := func(f *experiments.AccuracyFigure, err error) (string, error) {
		if err != nil {
			return "", err
		}
		if bars {
			return f.RenderBars(), nil
		}
		return f.Render(), nil
	}
	switch exp {
	case "table1":
		return s.RenderTable1()
	case "table2":
		return s.RenderTable2(), nil
	case "table3":
		return s.RenderTable3()
	case "fig6":
		return renderAcc(s.Fig6())
	case "fig7":
		return renderAcc(s.Fig7())
	case "fig8":
		f, err := s.Fig8()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	case "fig9":
		return renderAcc(s.Fig9())
	case "fig10":
		return renderAcc(s.Fig10())
	case "tpsweep":
		return s.RenderTPSweep()
	case "multistate":
		return s.RenderMultiState()
	case "predictors":
		return s.RenderPredictors()
	case "devices":
		return s.RenderDevices()
	case "prefetch":
		return s.RenderPrefetch()
	default:
		return "", fmt.Errorf("unknown experiment %q", exp)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcapsim:", err)
	os.Exit(1)
}

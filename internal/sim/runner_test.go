package sim

import (
	"math"
	"testing"

	"pcapsim/internal/core"
	"pcapsim/internal/disk"
	"pcapsim/internal/fscache"
	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// fastCfg is the default configuration (kept as a helper so tests read
// clearly).
func fastCfg() Config { return DefaultConfig() }

func mustRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// handTrace builds a minimal single-process trace with accesses at the
// given times (seconds); every access reads a fresh block so the cache
// never absorbs them.
func handTrace(times ...float64) *trace.Trace {
	tr := &trace.Trace{App: "hand"}
	for i, sec := range times {
		tr.Events = append(tr.Events, trace.Event{
			Time: trace.FromSeconds(sec), Pid: 1, Kind: trace.KindIO,
			Access: trace.AccessRead, PC: 0x1000, FD: 3,
			Block: int64(i * 1000), Size: 4096,
		})
	}
	tr.Events = append(tr.Events, trace.Event{
		Time: trace.FromSeconds(times[len(times)-1] + 0.1), Pid: 1, Kind: trace.KindExit,
	})
	return tr
}

func tpPolicy(timeout trace.Time) Policy {
	return Policy{
		Name:       "TP",
		NewFactory: func() predictor.Factory { return predictor.NewTimeout(timeout) },
	}
}

func basePolicy() Policy {
	return Policy{Name: "Base", NewFactory: func() predictor.Factory { return predictor.AlwaysOn{} }}
}

func idealPolicy(breakeven trace.Time) Policy {
	return Policy{
		Name:         "Ideal",
		NewFactory:   func() predictor.Factory { return predictor.NewOracle(breakeven) },
		GlobalOracle: true,
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.ServiceBase = -1
	if err := c.Validate(); err == nil {
		t.Error("negative service base accepted")
	}
	c = DefaultConfig()
	c.ServiceBandwidth = 0
	if err := c.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	c = DefaultConfig()
	c.Disk.BusyPower = -1
	if _, err := NewRunner(c); err == nil {
		t.Error("bad disk accepted")
	}
}

func TestPolicyValidation(t *testing.T) {
	if err := (Policy{}).Validate(); err == nil {
		t.Error("empty policy accepted")
	}
	if err := (Policy{Name: "x"}).Validate(); err == nil {
		t.Error("factory-less policy accepted")
	}
	if err := (Policy{Name: "x", GlobalOracle: true}).Validate(); err != nil {
		t.Errorf("oracle policy rejected: %v", err)
	}
	p := basePolicy()
	p.RoundTrip = func(f predictor.Factory) (predictor.Factory, error) { return f, nil }
	if err := p.Validate(); err == nil {
		t.Error("RoundTrip without Reuse accepted")
	}
}

// TestTimeoutClassification pins the classification taxonomy on hand-made
// idle periods under a 10 s timeout predictor:
//   - 30 s gap  → hit (off 20 s ≥ breakeven)
//   - 12 s gap  → miss (off 2 s < breakeven)
//   - 7 s gap   → not predicted (timer never expires)
//   - 2 s gap   → short period, no shutdown possible
func TestTimeoutClassification(t *testing.T) {
	r := mustRunner(t)
	tr := handTrace(0, 30, 42, 49, 51)
	res, err := r.RunApp([]*trace.Trace{tr}, tpPolicy(10*trace.Second))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Global
	if g.LongPeriods != 3 || g.ShortPeriods != 1 {
		t.Fatalf("periods: %+v", g)
	}
	if g.HitPrimary != 1 || g.MissPrimary != 1 || g.NotPredicted != 1 {
		t.Fatalf("classification: %+v", g)
	}
	if res.Local != res.Global {
		t.Fatalf("single process: local %+v != global %+v", res.Local, res.Global)
	}
	if res.Cycles != 2 {
		t.Fatalf("cycles = %d (hit + miss shutdowns)", res.Cycles)
	}
}

// TestWaitWindowCancellation: a 1 s-delay decision is cancelled by an
// access arriving inside the window.
func TestWaitWindowCancellation(t *testing.T) {
	r := mustRunner(t)
	// Oracle-like: use PCAP trained by construction? Simpler: a TP with a
	// 1 s timer: gaps of 0.5 s must yield no shutdowns at all.
	tr := handTrace(0, 0.5, 1.0, 1.5)
	res, err := r.RunApp([]*trace.Trace{tr}, tpPolicy(trace.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.Global.Misses() != 0 {
		t.Fatalf("wait window failed: %+v cycles=%d", res.Global, res.Cycles)
	}
}

// TestIdealIsUpperBound: on every application, the oracle's energy is a
// lower bound (≤) of every other policy's, and Base is the upper bound.
func TestIdealIsUpperBound(t *testing.T) {
	r := mustRunner(t)
	app, _ := workload.ByName("xemacs")
	traces := app.Traces(42)[:8]

	ideal, err := r.RunApp(traces, idealPolicy(r.Config().Disk.Breakeven))
	if err != nil {
		t.Fatal(err)
	}
	base, err := r.RunApp(traces, basePolicy())
	if err != nil {
		t.Fatal(err)
	}
	tp, err := r.RunApp(traces, tpPolicy(10*trace.Second))
	if err != nil {
		t.Fatal(err)
	}
	pc := Policy{
		Name:       "PCAP",
		NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) },
		Reuse:      true,
	}
	pcap, err := r.RunApp(traces, pc)
	if err != nil {
		t.Fatal(err)
	}
	iE, bE, tE, pE := ideal.Energy.Total(), base.Energy.Total(), tp.Energy.Total(), pcap.Energy.Total()
	if !(iE <= tE && iE <= pE && tE <= bE && pE <= bE) {
		t.Fatalf("energy ordering violated: ideal=%.1f tp=%.1f pcap=%.1f base=%.1f", iE, tE, pE, bE)
	}
	if base.Cycles != 0 {
		t.Fatalf("base performed %d shutdowns", base.Cycles)
	}
	if ideal.Global.Misses() != 0 {
		t.Fatalf("oracle mispredicted: %+v", ideal.Global)
	}
	if ideal.Global.NotPredicted != 0 {
		t.Fatalf("oracle missed opportunities: %+v", ideal.Global)
	}
	// Identical traces ⇒ identical period structure across policies.
	if base.Global.LongPeriods != pcap.Global.LongPeriods {
		t.Fatalf("long-period counts differ across policies")
	}
	if base.TotalIOs != pcap.TotalIOs || base.DiskAccesses != pcap.DiskAccesses {
		t.Fatalf("trace-level counters differ across policies")
	}
}

// TestBaseEnergyMatchesHandComputation integrates Base energy analytically
// on a trivial trace and compares.
func TestBaseEnergyMatchesHandComputation(t *testing.T) {
	cfg := fastCfg()
	r, _ := NewRunner(cfg)
	tr := handTrace(0, 10) // exit at 10.1
	res, err := r.RunApp([]*trace.Trace{tr}, basePolicy())
	if err != nil {
		t.Fatal(err)
	}
	svc := cfg.ServiceBase + trace.FromSeconds(4096/cfg.ServiceBandwidth)
	busy := 2 * svc.Seconds() * cfg.Disk.BusyPower
	// Idle: [svcEnd0, 10) long period + [10+svc, 10.1) tail.
	idle := (trace.FromSeconds(10) - svc).Seconds() * cfg.Disk.IdlePower
	tail := (trace.FromSeconds(10.1) - trace.FromSeconds(10) - svc).Seconds() * cfg.Disk.IdlePower
	want := busy + idle + tail
	if got := res.Energy.Total(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("base energy %.9f, want %.9f", got, want)
	}
	if res.Energy.PowerCycle != 0 {
		t.Fatal("base charged power cycles")
	}
}

// TestGlobalBlocksOnOtherProcess: a second process whose timer has not
// expired must delay the global shutdown (the paper's Figure 5 semantics).
func TestGlobalBlocksOnOtherProcess(t *testing.T) {
	r := mustRunner(t)
	tr := &trace.Trace{App: "two"}
	add := func(sec float64, pid trace.PID, block int64) {
		tr.Events = append(tr.Events, trace.Event{
			Time: trace.FromSeconds(sec), Pid: pid, Kind: trace.KindIO,
			Access: trace.AccessRead, PC: 0x1, FD: 3, Block: block, Size: 4096,
		})
	}
	// Process 1 accesses at 0; process 2 at 8; next access at 8+30.
	// TP(10 s): p1 ready at 10, p2 ready at 18 ⇒ shutdown at 18, off 20 s.
	add(0, 1, 0)
	add(8, 2, 100)
	add(38, 1, 200)
	tr.SortStable()
	res, err := r.RunApp([]*trace.Trace{tr}, tpPolicy(10*trace.Second))
	if err != nil {
		t.Fatal(err)
	}
	// The 8→38 global period is long and hit; shutdown at t=18 gives
	// off-time 20 s ≥ breakeven.
	if res.Global.HitPrimary != 1 || res.Global.Misses() != 0 {
		t.Fatalf("global %+v", res.Global)
	}
	// Local: p1's 0→38 gap is the only per-process period (p2 never
	// accesses again, so its tail is not a period).
	if res.Local.LongPeriods != 1 || res.Local.HitPrimary != 1 {
		t.Fatalf("local %+v", res.Local)
	}
}

// TestExitUnblocksGlobal: a process that exits stops constraining the
// global predictor.
func TestExitUnblocksGlobal(t *testing.T) {
	r := mustRunner(t)
	tr := &trace.Trace{App: "exit"}
	ev := func(sec float64, pid trace.PID, kind trace.Kind, block int64) trace.Event {
		e := trace.Event{Time: trace.FromSeconds(sec), Pid: pid, Kind: kind}
		if kind == trace.KindIO {
			e.Access = trace.AccessRead
			e.PC = 0x1
			e.FD = 3
			e.Block = block
			e.Size = 4096
		}
		return e
	}
	tr.Events = []trace.Event{
		ev(0, 1, trace.KindIO, 0),
		ev(0.05, 1, trace.KindFork, 0), // child 0? Fork needs Child field
	}
	tr.Events[1].Child = 2
	tr.Events = append(tr.Events,
		ev(0.1, 2, trace.KindIO, 100),
		ev(2, 1, trace.KindIO, 200),
		// Process 2 exits at t=4 with its 10 s timer pending; process 1's
		// timer expires at 12; the disk must shut down at 12, not be
		// blocked forever by process 2.
		ev(4, 2, trace.KindExit, 0),
		ev(40, 1, trace.KindIO, 300),
		ev(40.2, 1, trace.KindExit, 0),
	)
	res, err := r.RunApp([]*trace.Trace{tr}, tpPolicy(10*trace.Second))
	if err != nil {
		t.Fatal(err)
	}
	// 2→40 global period: shutdown at 12 (p1's timer; p2 exited at 4).
	// Off-time 28 s ⇒ hit.
	if res.Global.Hits() != 1 {
		t.Fatalf("global %+v", res.Global)
	}
	if res.Cycles != 1 {
		t.Fatalf("cycles %d", res.Cycles)
	}
}

func TestPeriodHook(t *testing.T) {
	r := mustRunner(t)
	var records []PeriodRecord
	r.PeriodHook = func(p PeriodRecord) { records = append(records, p) }
	tr := handTrace(0, 30, 32)
	if _, err := r.RunApp([]*trace.Trace{tr}, tpPolicy(10*trace.Second)); err != nil {
		t.Fatal(err)
	}
	// Two non-terminal periods: 0→30 and 30→32.
	if len(records) != 2 {
		t.Fatalf("%d records", len(records))
	}
	if !records[0].Shutdown || records[0].At != trace.FromSeconds(10) {
		t.Fatalf("record 0: %+v", records[0])
	}
	if records[1].Shutdown {
		t.Fatalf("record 1: %+v", records[1])
	}
}

// TestReuseVsDiscard: with table reuse, PCAP's primary coverage across
// executions must exceed the discard variant's (the paper's Figure 10).
func TestReuseVsDiscard(t *testing.T) {
	r := mustRunner(t)
	app, _ := workload.ByName("nedit")
	traces := app.Traces(123)

	reuse := Policy{
		Name:       "PCAP",
		NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) },
		Reuse:      true,
	}
	discard := Policy{
		Name:       "PCAPa",
		NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) },
	}
	a, err := r.RunApp(traces, reuse)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunApp(traces, discard)
	if err != nil {
		t.Fatal(err)
	}
	if a.Global.HitPrimary <= b.Global.HitPrimary {
		t.Fatalf("reuse primary hits %d not above discard %d", a.Global.HitPrimary, b.Global.HitPrimary)
	}
	// nedit has exactly one shutdown opportunity per execution, so the
	// discard variant can never make a primary prediction.
	if b.Global.HitPrimary != 0 {
		t.Fatalf("discard primary hits = %d on nedit", b.Global.HitPrimary)
	}
	if a.StateEntries <= 0 {
		t.Fatalf("state entries %d", a.StateEntries)
	}
}

// TestRoundTripHookRuns verifies the persistence round-trip path is
// exercised and preserves behaviour.
func TestRoundTripHookRuns(t *testing.T) {
	r := mustRunner(t)
	app, _ := workload.ByName("nedit")
	traces := app.Traces(123)[:6]
	calls := 0
	pol := Policy{
		Name:       "PCAP",
		NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) },
		Reuse:      true,
		RoundTrip: func(f predictor.Factory) (predictor.Factory, error) {
			calls++
			return f, nil
		},
	}
	if _, err := r.RunApp(traces, pol); err != nil {
		t.Fatal(err)
	}
	if calls != len(traces)-1 {
		t.Fatalf("round trip ran %d times, want %d", calls, len(traces)-1)
	}
}

func TestRunAppErrors(t *testing.T) {
	r := mustRunner(t)
	if _, err := r.RunApp(nil, basePolicy()); err == nil {
		t.Error("empty trace list accepted")
	}
	if _, err := r.RunApp([]*trace.Trace{handTrace(0)}, Policy{}); err == nil {
		t.Error("invalid policy accepted")
	}
}

// TestEnergyConservation: for any policy, total energy must lie between
// the all-standby floor and the all-busy ceiling for the simulated time.
func TestEnergyConservation(t *testing.T) {
	r := mustRunner(t)
	app, _ := workload.ByName("writer")
	traces := app.Traces(5)[:4]
	for _, pol := range []Policy{basePolicy(), tpPolicy(10 * trace.Second), idealPolicy(r.Config().Disk.Breakeven)} {
		res, err := r.RunApp(traces, pol)
		if err != nil {
			t.Fatal(err)
		}
		secs := res.SimTime.Seconds()
		floor := secs * r.Config().Disk.StandbyPower
		ceil := secs*r.Config().Disk.BusyPower + float64(res.Cycles)*r.Config().Disk.CycleEnergy() + 1
		total := res.Energy.Total()
		if total < floor || total > ceil {
			t.Errorf("%s: energy %.1f outside [%.1f, %.1f]", pol.Name, total, floor, ceil)
		}
	}
}

// TestFlushDaemonExcludedFromLocal: the kernel flush daemon participates
// globally but not in per-process statistics.
func TestFlushDaemonExcludedFromLocal(t *testing.T) {
	r := mustRunner(t)
	tr := &trace.Trace{App: "flush"}
	// A write dirties a block at t=1; the flush daemon writes it at 35 s;
	// the next app access is at 200 s.
	tr.Events = []trace.Event{
		{Time: trace.FromSeconds(0), Pid: 1, Kind: trace.KindIO, Access: trace.AccessRead, PC: 0x1, FD: 3, Block: 0, Size: 4096},
		{Time: trace.FromSeconds(1), Pid: 1, Kind: trace.KindIO, Access: trace.AccessWrite, PC: 0x2, FD: 3, Block: 50, Size: 4096},
		{Time: trace.FromSeconds(200), Pid: 1, Kind: trace.KindIO, Access: trace.AccessRead, PC: 0x1, FD: 3, Block: 60, Size: 4096},
		{Time: trace.FromSeconds(201), Pid: 1, Kind: trace.KindExit},
	}
	res, err := r.RunApp([]*trace.Trace{tr}, tpPolicy(10*trace.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Global: 0→35 (flush) and 35→200 periods, both long.
	if res.Global.LongPeriods != 2 {
		t.Fatalf("global %+v", res.Global)
	}
	// Local: only the app's own 0→200 gap (the write was absorbed by the
	// cache, so the app performed just two disk accesses).
	if res.Local.LongPeriods != 1 {
		t.Fatalf("local %+v", res.Local)
	}
	if res.Cache.FlushWrites != 1 {
		t.Fatalf("cache stats %+v", res.Cache)
	}
}

var _ = fscache.KernelFlushPID // document the dependency under test

var _ = disk.Params{}

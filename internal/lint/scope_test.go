package lint

import "testing"

// TestResultAffectingScope pins the analyzer scope: every package on the
// generation → simulation → rendering path (including the hypothesis
// harness, which feeds verdicts from simulation results, and the
// parallel decode pipeline in internal/trace, whose worker/reorder
// pool handoffs poolsafe vets) is covered by detmap/nondet-source,
// while the sanctioned exceptions stay out. The pcapd server packages
// are in scope too: a server job's output carries the same determinism
// contract as a CLI run (byte-identical at any pool size), so handler
// and counter code must not smuggle wall-clock or map-order state into
// results, and poolsafe vets the pooled job-context ownership. The
// decode pipeline's CLI consumers (tracegen, traceinspect, pcapsim)
// stay outside — they only render what the in-scope packages produce.
func TestResultAffectingScope(t *testing.T) {
	for _, p := range []string{
		"internal/sim", "internal/trace", "internal/experiments",
		"internal/hypothesis", "internal/workload", "internal/predictor",
		"internal/fleet", "internal/server", "internal/server/stats",
	} {
		if !resultAffecting(p) {
			t.Errorf("%s not in the result-affecting scope", p)
		}
	}
	for _, p := range []string{
		"internal/rng", "cmd/pcapsim", "cmd/tracegen", "cmd/traceinspect",
		"cmd/pcapd", "cmd/pcapload", "internal/lint",
	} {
		if resultAffecting(p) {
			t.Errorf("%s must stay outside the result-affecting scope", p)
		}
	}
}

func TestErrcheckScope(t *testing.T) {
	for _, p := range []string{
		"internal/trace", "internal/persist", "cmd/benchjson",
		"cmd/pcapd", "cmd/pcapload",
		"internal/server", "internal/server/stats",
	} {
		if !errcheckScope(p) {
			t.Errorf("%s not in the errcheck-lite scope", p)
		}
	}
	if errcheckScope("internal/sim") {
		t.Error("internal/sim must stay outside the errcheck-lite scope")
	}
}

package trace

import "fmt"

// Validator checks the structural invariants of an event stream
// incrementally, one event at a time, so arbitrarily long traces can be
// validated in constant memory (per-pid state only). Trace.Validate is
// implemented on top of it; streaming consumers (traceinspect) feed it
// directly from a Source.
//
// The invariants are those of Trace.Validate: non-decreasing time order;
// every I/O or exit belongs to a live (started, unexited) process; forks
// do not reuse a live pid; sizes are non-negative and I/O events carry a
// PC. Any pid seen before its fork is treated as a root process.
type Validator struct {
	// App and Exec label error messages ("trace app/exec: ...").
	App  string
	Exec int

	i      int
	last   Time
	live   map[PID]bool
	exited map[PID]bool
}

// NewValidator returns a Validator labelling errors with app and exec.
func NewValidator(app string, exec int) *Validator {
	return &Validator{
		App:    app,
		Exec:   exec,
		live:   map[PID]bool{},
		exited: map[PID]bool{},
	}
}

// root reports whether pid may act now, registering first sightings as
// root processes (the parent exists before tracing starts) — unless the
// pid already exited.
func (v *Validator) root(pid PID) bool {
	if v.live[pid] {
		return true
	}
	if v.exited[pid] {
		return false
	}
	v.live[pid] = true
	return true
}

// Event checks the next event of the stream.
func (v *Validator) Event(e Event) error {
	i := v.i
	v.i++
	if e.Time < v.last {
		return fmt.Errorf("trace %s/%d: event %d time %v before previous %v", v.App, v.Exec, i, e.Time, v.last)
	}
	v.last = e.Time
	switch e.Kind {
	case KindFork:
		if e.Child == e.Pid {
			return fmt.Errorf("trace %s/%d: event %d fork child equals parent %d", v.App, v.Exec, i, e.Pid)
		}
		if !v.root(e.Pid) {
			return fmt.Errorf("trace %s/%d: event %d fork by exited pid %d", v.App, v.Exec, i, e.Pid)
		}
		if v.live[e.Child] || v.exited[e.Child] {
			return fmt.Errorf("trace %s/%d: event %d fork reuses pid %d", v.App, v.Exec, i, e.Child)
		}
		v.live[e.Child] = true
	case KindExit:
		if !v.live[e.Pid] {
			return fmt.Errorf("trace %s/%d: event %d exit of non-live pid %d", v.App, v.Exec, i, e.Pid)
		}
		delete(v.live, e.Pid)
		v.exited[e.Pid] = true
	case KindIO:
		if !v.root(e.Pid) {
			return fmt.Errorf("trace %s/%d: event %d io by exited pid %d", v.App, v.Exec, i, e.Pid)
		}
		if e.Size < 0 {
			return fmt.Errorf("trace %s/%d: event %d negative size %d", v.App, v.Exec, i, e.Size)
		}
		if e.PC == 0 {
			return fmt.Errorf("trace %s/%d: event %d io with zero PC", v.App, v.Exec, i)
		}
	default:
		return fmt.Errorf("trace %s/%d: event %d unknown kind %d", v.App, v.Exec, i, e.Kind)
	}
	return nil
}

// Media player study: mplayer is the paper's hardest energy case — the
// disk stays busy refilling the playback buffer for the whole movie, and
// the only shutdown opportunities are chapter pauses and the final buffer
// drain. This example shows how PCAP learns the *cumulative* PC path of a
// whole movie, and evaluates the paper's future-work multi-state extension
// (low-power idle during the wait-window).
package main

import (
	"fmt"

	"pcapsim/internal/core"
	"pcapsim/internal/predictor"
	"pcapsim/internal/sim"
	"pcapsim/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig()
	runner := sim.MustNewRunner(cfg)
	app, _ := workload.ByName("mplayer")
	traces := app.Traces(20040214)

	base := sim.Policy{Name: "Base", NewFactory: func() predictor.Factory { return predictor.AlwaysOn{} }}
	pcap := sim.Policy{
		Name:       "PCAP",
		NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) },
		Reuse:      true,
	}

	baseRes, err := runner.RunApp(traces, base)
	if err != nil {
		panic(err)
	}
	pcapRes, err := runner.RunApp(traces, pcap)
	if err != nil {
		panic(err)
	}

	fmt.Println("== mplayer energy profile ==")
	fmt.Printf("base: busy %.0f J, idle<breakeven %.0f J, idle>breakeven %.0f J\n",
		baseRes.Energy.Busy, baseRes.Energy.IdleShort, baseRes.Energy.IdleLong)
	fmt.Printf("the refill stream keeps the disk spinning: only %.0f%% of energy is reclaimable\n\n",
		100*baseRes.Energy.IdleLong/baseRes.Energy.Total())

	f := pcapRes.Global.Fractions()
	fmt.Printf("PCAP: hit %.1f%% of the %d shutdown opportunities (chapter pauses + buffer drains)\n",
		100*f.Hit, pcapRes.Global.LongPeriods)
	fmt.Printf("      energy saved %.1f%% (table: %d movie signatures)\n\n",
		100*(1-pcapRes.Energy.Total()/baseRes.Energy.Total()), pcapRes.StateEntries)

	// The multi-state extension: drop into a low-power idle state during
	// the wait-window instead of idling at full power.
	lpCfg := cfg
	lpCfg.Disk = lpCfg.Disk.WithLowPowerIdle(0.55)
	lpCfg.LowPowerWaitWindow = true
	lpRunner := sim.MustNewRunner(lpCfg)
	lpRes, err := lpRunner.RunApp(traces, sim.Policy{
		Name:       "PCAP+lp",
		NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) },
		Reuse:      true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("with the multi-state wait-window (0.55 W low-power idle): saved %.1f%%\n",
		100*(1-lpRes.Energy.Total()/baseRes.Energy.Total()))
}

// pcapd benchmarks: the coalesced counter layer against its naive
// shared-atomic and mutex baselines, and the daemon's sustained job
// throughput under 32 concurrent closed-loop clients. The counter
// benches quantify the VSA-style "commit information, not traffic"
// claim: a shard pays one plain add per event and one atomic commit per
// threshold batch, so its per-add cost should sit well below a shared
// atomic's and far below a mutex's. The sustained bench is the recorded
// jobs/s / events/s headline in BENCH_PR9.json and feeds the benchjson
// gate in ci.sh.
package pcapsim

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pcapsim/internal/server"
	"pcapsim/internal/server/stats"
)

// benchParallelism fans each counter benchmark out to this many
// goroutines per GOMAXPROCS so the shared-state baselines feel
// contention even on small CI machines.
const benchParallelism = 8

// BenchmarkCountersCoalesced measures the per-add cost of the sharded
// counter layer: each goroutine owns a stats.Local committing to one
// shared stats.Counters. The exactness contract is asserted after the
// timer stops — the global view must equal b.N exactly.
func BenchmarkCountersCoalesced(b *testing.B) {
	var c stats.Counters
	b.SetParallelism(benchParallelism)
	b.RunParallel(func(pb *testing.PB) {
		l := stats.NewLocal(&c, stats.Options{})
		for pb.Next() {
			l.AddEvents(1)
		}
		l.Flush()
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "adds/s")
	if got := c.Snapshot().Events; got != int64(b.N) {
		b.Fatalf("coalesced counters lost deltas: %d adds, global view %d", b.N, got)
	}
}

// BenchmarkCountersAtomic is the naive baseline the coalesced layer
// replaces: every add is an atomic RMW on one shared cache line.
func BenchmarkCountersAtomic(b *testing.B) {
	var c stats.AtomicCounters
	b.SetParallelism(benchParallelism)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.AddEvents(1)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "adds/s")
	if got := c.Events(); got != int64(b.N) {
		b.Fatalf("atomic counters lost adds: %d adds, view %d", b.N, got)
	}
}

// BenchmarkCountersMutex is the lock-per-add strawman.
func BenchmarkCountersMutex(b *testing.B) {
	var c stats.MutexCounters
	b.SetParallelism(benchParallelism)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.AddEvents(1)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "adds/s")
	if got := c.Events(); got != int64(b.N) {
		b.Fatalf("mutex counters lost adds: %d adds, view %d", b.N, got)
	}
}

// BenchmarkPcapdSustained drives a full in-process pcapd (HTTP transport
// included) with 32 concurrent closed-loop clients submitting small
// synchronous eval jobs — the same shape as the recorded pcapload run.
// One iteration is one completed job round-trip; events/s comes from the
// server's own coalesced counters over the measured window, so it
// reflects simulation throughput rather than transport overhead.
func BenchmarkPcapdSustained(b *testing.B) {
	srv, err := server.New(server.Config{QueueDepth: 256, DefaultTimeout: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	}()

	spec := []byte(`{"kind":"eval","app":"nedit","policies":["base","tp","pcap"],"execs":5}`)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	post := func() error {
		resp, err := client.Post(ts.URL+"/jobs?wait=1", "application/json", bytes.NewReader(spec))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		var v struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		if v.State != "done" {
			b.Errorf("job finished %q: %s", v.State, data)
		}
		return nil
	}

	// Warmup primes the pooled job contexts (workload generation happens
	// once, outside the measured window) and validates the wire path.
	if err := post(); err != nil {
		b.Fatal(err)
	}
	before := srv.Counters().Snapshot().Events

	const clients = 32
	work := make(chan struct{})
	var failed atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				if err := post(); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	b.StopTimer()

	if n := failed.Load(); n > 0 {
		b.Fatalf("%d/%d jobs failed", n, b.N)
	}
	elapsed := b.Elapsed().Seconds()
	b.ReportMetric(float64(b.N)/elapsed, "jobs/s")
	b.ReportMetric(float64(srv.Counters().Snapshot().Events-before)/elapsed, "events/s")
}

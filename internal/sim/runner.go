// Package sim is the trace-driven multiprocess simulator: it replays
// application traces through the file cache, drives per-process shutdown
// predictors, combines their decisions with the global shutdown predictor
// of the paper's Figure 5, classifies every idle period, and integrates
// disk energy.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pcapsim/internal/disk"
	"pcapsim/internal/fscache"
	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

// infTime marks "no shutdown scheduled".
const infTime = trace.Time(math.MaxInt64)

// Config parameterizes the simulator.
type Config struct {
	// Disk is the drive power model.
	Disk disk.Params
	// Cache is the file cache configuration.
	Cache fscache.Config
	// ServiceBase is the fixed per-access disk service time.
	ServiceBase trace.Time
	// ServiceBandwidth is the transfer rate in bytes per second used for
	// the size-dependent part of the service time.
	ServiceBandwidth float64
	// LowPowerWaitWindow enables the paper's future-work extension: when
	// a primary prediction is pending, the disk drops into the drive's
	// intermediate low-power idle state (Disk.LowPowerIdlePower) for the
	// wait-window instead of idling at full power. It requires a drive
	// with a low-power idle state.
	LowPowerWaitWindow bool
}

// DefaultConfig returns the paper's setup: the Fujitsu MHF 2043AT drive,
// the 256 KB / 30 s file cache, and a 2 ms + 20 MB/s disk service model.
func DefaultConfig() Config {
	return Config{
		Disk:             disk.FujitsuMHF2043AT(),
		Cache:            fscache.DefaultConfig(),
		ServiceBase:      2 * trace.Millisecond,
		ServiceBandwidth: 20e6,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if c.ServiceBase < 0 {
		return fmt.Errorf("sim: service base must be non-negative, got %v", c.ServiceBase)
	}
	if c.ServiceBandwidth <= 0 {
		return fmt.Errorf("sim: service bandwidth must be positive, got %g", c.ServiceBandwidth)
	}
	if c.LowPowerWaitWindow && c.Disk.LowPowerIdlePower <= 0 {
		return fmt.Errorf("sim: LowPowerWaitWindow requires a drive with a low-power idle state")
	}
	return nil
}

// AppResult aggregates one policy's run over all executions of one
// application.
type AppResult struct {
	// App and Policy identify the run.
	App    string
	Policy string
	// Executions is the number of executions simulated.
	Executions int
	// TotalIOs is the pre-cache I/O event count (Table 1's "Total I/Os").
	TotalIOs int
	// DiskAccesses is the post-cache disk access count.
	DiskAccesses int
	// Local accumulates per-process idle-period outcomes (Figure 6).
	Local Counts
	// Global accumulates merged-stream outcomes under the global
	// shutdown predictor (Figure 7).
	Global Counts
	// Energy is the disk energy under this policy's global decisions
	// (Figure 8).
	Energy disk.EnergyBreakdown
	// Cycles is the number of shutdowns actually performed.
	Cycles int
	// Wakeups counts accesses that found the disk spun down and had to
	// wait for a spin-up; WaitTime is the total user-visible latency so
	// incurred (the paper's "irritate the user who has to wait for the
	// disk to spin up").
	Wakeups  int
	WaitTime trace.Time
	// SimTime is the total simulated time across executions.
	SimTime trace.Time
	// StateEntries is the predictor's learned-state size after the final
	// execution (Table 3), or -1 if the policy has no learned state.
	StateEntries int
	// Cache aggregates file cache activity.
	Cache fscache.Stats
}

// PeriodRecord describes one evaluated global idle period; see
// Runner.PeriodHook.
type PeriodRecord struct {
	// Execution is the execution index within the run.
	Execution int
	// Start and End delimit the period (arrival to arrival).
	Start, End trace.Time
	// LastPid / LastPC identify the access leading into the period.
	LastPid trace.PID
	LastPC  trace.PC
	// Shutdown reports whether a shutdown occurred, at time At, decided
	// by a process whose decision came from Source.
	Shutdown bool
	At       trace.Time
	Source   predictor.Source
	// DeciderPid is the process whose decision set the shutdown time.
	DeciderPid trace.PID
}

// Runner executes policies over application traces.
//
// A Runner is safe for concurrent RunApp/RunSource calls: cfg is
// immutable after construction and all per-run state lives in the
// per-call execution and AppResult (the file cache is built inside
// prepare, and traces are read only — events are copied by value into the
// access stream). The parallel experiment engine
// (internal/experiments.RunMatrix) relies on this. Sources themselves are
// single-goroutine iterators: concurrent RunSource calls need distinct
// Source values (over shared read-only traces is fine).
// The one caveat is PeriodHook: it fires synchronously on the goroutine
// calling RunApp, so a hook installed on a shared Runner must itself be
// safe for concurrent use (set it before the first RunApp; the hook is a
// serial debugging aid and the experiment engine never installs one).
type Runner struct {
	cfg Config
	// PeriodHook, if non-nil, receives a record for every evaluated
	// global idle period — a debugging and testing aid.
	PeriodHook func(PeriodRecord)
	// statePool recycles per-run scratch state (file cache arena, event
	// buffers, per-pid maps) across RunSource calls, so repeated runs on
	// one Runner allocate only what a single run's high-water mark needs.
	statePool sync.Pool
}

// NewRunner returns a Runner, validating the configuration.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg}, nil
}

// MustNewRunner is NewRunner, panicking on configuration errors.
func MustNewRunner(cfg Config) *Runner {
	r, err := NewRunner(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// serviceTime models the disk time to serve one access.
func (r *Runner) serviceTime(e trace.Event) trace.Time {
	transfer := trace.FromSeconds(float64(e.Size) / r.cfg.ServiceBandwidth)
	return r.cfg.ServiceBase + transfer
}

// RunApp simulates every execution trace of one application under the
// given policy and returns the aggregated result. It is a thin wrapper
// over RunSource with the traces adapted to a Source.
func (r *Runner) RunApp(traces []*trace.Trace, pol Policy) (*AppResult, error) {
	return r.RunSource(trace.NewSliceSource(traces...), pol)
}

// RunSource simulates every execution yielded by src under the given
// policy and returns the aggregated result. Executions are consumed one
// at a time: peak memory is one execution's events (and zero extra for
// sources that already hold them, via trace.ExecSlicer), independent of
// how many executions the source yields. The source must yield at least
// one execution; all executions are expected to belong to one
// application (the result is labelled with the first one's name).
//
// RunSource over a source yielding the same executions as a []*trace.Trace
// produces a result identical to RunApp over that slice — the simulation
// per execution, including floating-point accumulation order, is shared
// code.
func (r *Runner) RunSource(src trace.Source, pol Policy) (*AppResult, error) {
	return r.runSource(src, pol, nil)
}

// runSource is the shared body of RunSource and RunSourceTraced: a thin
// driver over the stepable machine (machine.go) that advances it event by
// event until the source is exhausted. tr is nil for plain runs; a traced
// run threads it into every step so decision records and counterfactual
// flips share the single simulation loop.
func (r *Runner) runSource(src trace.Source, pol Policy, tr *tracedRun) (*AppResult, error) {
	m, err := r.newMachine(src, pol, tr)
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := m.nextTime(); !ok {
			break
		}
		m.step()
	}
	return m.finish()
}

// decisionState is a process's standing decision: the absolute time at
// which it is ready for the disk to shut down (infTime = blocks shutdown).
type decisionState struct {
	ready  trace.Time
	source predictor.Source
}

// combine implements the Global Shutdown Predictor: the disk shuts down at
// the earliest instant in [T0, T1) at which every live process that has
// performed I/O is ready. Processes exiting during the window stop
// constraining it from their exit on. The returned source belongs to the
// process that made the last (latest-ready) decision.
func (r *Runner) combine(ex *execution, dec map[trace.PID]decisionState, decided []trace.PID, T0, T1 trace.Time) (trace.Time, predictor.Source, bool, trace.PID) {
	// Exit events strictly inside the window split it into segments with
	// a fixed constraint set each.
	eidx := sort.Search(len(ex.exits), func(i int) bool { return ex.exits[i].Time > T0 })
	segStart := T0
	for {
		segEnd := T1
		if eidx < len(ex.exits) && ex.exits[eidx].Time < T1 {
			segEnd = ex.exits[eidx].Time
		}
		ready := trace.Time(math.MinInt64)
		src := predictor.SourceBackup
		var decider trace.PID
		blocked := false
		any := false
		for _, pid := range decided {
			pi := ex.procs[pid]
			if pi.hasExit && pi.exit <= segStart {
				continue
			}
			any = true
			st := dec[pid]
			if st.ready == infTime {
				blocked = true
				continue
			}
			if st.ready >= ready {
				ready = st.ready
				src = st.source
				decider = pid
			}
		}
		if !any {
			// Every process that ever accessed the disk has exited: shut
			// down as soon as the segment starts.
			return segStart, predictor.SourceBackup, true, 0
		}
		if !blocked && ready < segEnd {
			s := ready
			if s < segStart {
				s = segStart
			}
			return s, src, true, decider
		}
		if segEnd == T1 {
			return 0, predictor.SourceNone, false, 0
		}
		segStart = segEnd
		eidx++
	}
}

// classify scores one idle period of length gap under a decision, per the
// taxonomy in DESIGN.md.
func classify(c *Counts, gap trace.Time, d predictor.Decision, breakeven trace.Time) {
	long := gap >= breakeven
	if long {
		c.LongPeriods++
	} else {
		c.ShortPeriods++
	}
	if !d.Shutdown || d.Delay >= gap {
		// No shutdown happens (a timer or wait-window outlasting the
		// period is cancelled by the next access).
		if long {
			c.NotPredicted++
		}
		return
	}
	off := gap - d.Delay
	primary := d.Source != predictor.SourceBackup
	if off >= breakeven {
		if primary {
			c.HitPrimary++
		} else {
			c.HitBackup++
		}
	} else {
		if primary {
			c.MissPrimary++
		} else {
			c.MissBackup++
		}
	}
}

// accountIdle charges unmanaged spinning idle time for [from, to).
func (r *Runner) accountIdle(res *AppResult, from, to trace.Time) {
	if to <= from {
		return
	}
	gap := to - from
	j := gap.Seconds() * r.cfg.Disk.IdlePower
	if gap >= r.cfg.Disk.Breakeven {
		res.Energy.IdleLong += j
	} else {
		res.Energy.IdleShort += j
	}
}

// accountPeriod charges the non-busy energy of one global period: the disk
// idles from svcEnd until the shutdown point s (if found), then stands by
// until T1; the fixed power-cycle energy is charged per shutdown.
func (r *Runner) accountPeriod(res *AppResult, svcEnd, T1, s trace.Time, shutdown, long bool, src predictor.Source) {
	d := &r.cfg.Disk
	idleStart := svcEnd
	if idleStart > T1 {
		return // queued service spills past the next arrival: no idle at all
	}
	bucket := &res.Energy.IdleShort
	if long {
		bucket = &res.Energy.IdleLong
	}
	// With the multi-state extension, a pending primary prediction parks
	// the disk in the low-power idle state for its wait-window.
	preShutdownPower := d.IdlePower
	if r.cfg.LowPowerWaitWindow && src == predictor.SourcePrimary && d.LowPowerIdlePower > 0 {
		preShutdownPower = d.LowPowerIdlePower
	}
	if !shutdown || s >= T1 {
		*bucket += (T1 - idleStart).Seconds() * d.IdlePower
		return
	}
	if s < idleStart {
		s = idleStart
	}
	*bucket += (s-idleStart).Seconds()*preShutdownPower + (T1-s).Seconds()*d.StandbyPower
	res.Energy.PowerCycle += d.CycleEnergy()
	res.Cycles++
	// The access ending this period finds the disk off: it waits for the
	// spin-up, plus the tail of the shutdown transition if it arrived
	// mid-transition.
	res.Wakeups++
	wait := d.SpinUpTime
	if pending := s + d.ShutdownTime - T1; pending > 0 {
		wait += pending
	}
	res.WaitTime += wait
}

package trace

import (
	"bytes"
	"testing"
)

// encodeColumnarFuzz encodes a trace with a block size derived from the
// input so the fuzzer exercises single-block, block-aligned and
// many-tiny-block layouts.
func encodeColumnarFuzz(t *testing.T, tr *Trace, blockEvents int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc, err := NewBlockEncoder(&buf, tr.App, tr.Execution, len(tr.Events))
	if err != nil {
		t.Fatalf("encoding a valid derived trace failed: %v", err)
	}
	if err := enc.SetBlockEvents(blockEvents); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := enc.Write(e); err != nil {
			t.Fatalf("encoding a valid derived trace failed: %v", err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("encoding a valid derived trace failed: %v", err)
	}
	return buf.Bytes()
}

// collectBatched is Collect over the ExecAppender drain path — the fused
// decode that writes events straight into the destination buffer. The
// fuzz harness runs it differentially against the per-event Next path:
// the two decode implementations must accept and reject exactly the same
// inputs and produce identical events.
func collectBatched(data []byte) ([]*Trace, error) {
	src := NewBlockSource(bytes.NewReader(data))
	var out []*Trace
	for {
		app, exec, ok := src.NextExec()
		if !ok {
			break
		}
		t := &Trace{App: app, Execution: exec}
		t.Events = src.AppendExec(t.Events)
		out = append(out, t)
	}
	return out, src.Err()
}

// FuzzBlockCodecRoundTrip fuzzes the v2 columnar codec from three sides:
//
//  1. the block decoder must never panic on arbitrary (corrupt) input,
//     anything it does accept must re-encode and re-decode to the same
//     executions, and the per-event and batched decode paths must agree
//     byte for byte — including on whether the input is an error;
//  2. a structurally valid trace derived from the input must survive
//     encode → decode unchanged at an input-derived block size;
//  3. flipping any single bit of a valid encoding must surface as an
//     error (the header and block CRCs leave no unprotected bytes) —
//     never a panic, never silently different events.
func FuzzBlockCodecRoundTrip(f *testing.F) {
	valid := encodedColumnarSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("PCT2"))
	f.Add([]byte("PCT2\x01\x00"))
	f.Add([]byte("PCT2\x01\x00\x04name"))
	f.Add([]byte("XXXX\x01\x00\x04name"))
	f.Add([]byte("PCB2\x10\x00\x00"))
	corrupt := append([]byte(nil), valid...)
	for i := 10; i < len(corrupt); i += 7 {
		corrupt[i] ^= 0x55
	}
	f.Add(corrupt)
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})

	f.Fuzz(func(t *testing.T, data []byte) {
		// (1) Decoder safety on arbitrary bytes, plus per-event vs batched
		// path agreement.
		traces, err := Collect(NewBlockSource(bytes.NewReader(data)))
		batched, berr := collectBatched(data)
		if (err == nil) != (berr == nil) {
			t.Fatalf("decode paths disagree on validity: Next err=%v, AppendExec err=%v", err, berr)
		}
		if err == nil {
			if len(traces) != len(batched) {
				t.Fatalf("decode paths yield %d vs %d executions", len(traces), len(batched))
			}
			for i := range traces {
				if !tracesEqual(traces[i], batched[i]) {
					t.Fatalf("decode paths disagree on execution %d", i)
				}
			}
		}
		if err == nil {
			var buf bytes.Buffer
			for _, tr := range traces {
				if err := WriteColumnar(&buf, tr); err != nil {
					t.Fatalf("re-encoding a decoded trace failed: %v", err)
				}
			}
			traces2, err := Collect(NewBlockSource(bytes.NewReader(buf.Bytes())))
			if err != nil {
				t.Fatalf("re-decoding failed: %v", err)
			}
			if len(traces) != len(traces2) {
				t.Fatalf("re-decode yields %d executions, want %d", len(traces2), len(traces))
			}
			for i := range traces {
				if !tracesEqual(traces[i], traces2[i]) {
					t.Fatal("decode(encode(decode(data))) != decode(data)")
				}
			}
		}

		// (2) Round trip of a derived valid trace, with an input-derived
		// block size so block boundaries move with the fuzz corpus.
		orig := traceFromBytes(data)
		blockEvents := 1
		if len(data) > 0 {
			blockEvents += int(data[len(data)-1]) % 64
		}
		enc := encodeColumnarFuzz(t, orig, blockEvents)
		got, err := Collect(NewBlockSource(bytes.NewReader(enc)))
		if err != nil {
			t.Fatalf("decoding a just-encoded trace failed: %v", err)
		}
		if len(got) != 1 || !tracesEqual(orig, got[0]) {
			t.Fatalf("round trip mismatch:\norig: %+v\ngot:  %+v", orig, got)
		}

		// (3) Any single-bit flip must be reported as an error. The flip
		// position and bit are chosen by the input.
		if len(data) >= 2 && len(enc) > 0 {
			pos := (int(data[0])<<8 | int(data[1])) % len(enc)
			bit := byte(1) << (data[0] % 8)
			flipped := append([]byte(nil), enc...)
			flipped[pos] ^= bit
			if _, err := Collect(NewBlockSource(bytes.NewReader(flipped))); err == nil {
				t.Fatalf("bit flip at byte %d (mask %#02x) decoded without error", pos, bit)
			}
			if _, err := collectBatched(flipped); err == nil {
				t.Fatalf("bit flip at byte %d (mask %#02x) decoded without error (batched path)", pos, bit)
			}
		}
	})
}

// encodedColumnarSeed builds a small representative trace and returns its
// v2 encoding split across several blocks.
func encodedColumnarSeed(f *testing.F) []byte {
	f.Helper()
	t := &Trace{App: "seed", Execution: 2, Events: []Event{
		{Time: 0, Pid: 1, Kind: KindIO, Access: AccessOpen, PC: 0x1000, FD: 3, Block: 10, Size: 4096},
		{Time: 1500, Pid: 1, Kind: KindFork, Child: 2},
		{Time: 2000, Pid: 2, Kind: KindIO, Access: AccessRead, PC: 0x2000, FD: -1, Block: -5, Size: 8192},
		{Time: 9000, Pid: 1, Kind: KindIO, Access: AccessWrite, PC: 0x3000, FD: 4, Block: 1 << 40, Size: 512},
		{Time: 12000, Pid: 2, Kind: KindExit},
	}}
	var buf bytes.Buffer
	enc, err := NewBlockEncoder(&buf, t.App, t.Execution, len(t.Events))
	if err != nil {
		f.Fatal(err)
	}
	if err := enc.SetBlockEvents(2); err != nil {
		f.Fatal(err)
	}
	for _, e := range t.Events {
		if err := enc.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildTestCFG type-checks a single-file package and returns the CFG of
// the function named fn, plus the package's type info.
func buildTestCFG(t *testing.T, src, fn string) (*FuncCFG, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: corpusImporter}
	if _, err := conf.Check("cfgtest", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Name.Name == fn {
			return BuildCFG(info, fd.Body), info
		}
	}
	t.Fatalf("no function %q in source", fn)
	return nil, nil
}

// blockCalling finds the unique block containing a call to the named
// function.
func blockCalling(t *testing.T, g *FuncCFG, name string) *CFGBlock {
	t.Helper()
	var found *CFGBlock
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			calls := false
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						calls = true
					}
				}
				return !calls
			})
			if calls {
				if found != nil && found != blk {
					t.Fatalf("call to %s in more than one block", name)
				}
				found = blk
			}
		}
	}
	if found == nil {
		t.Fatalf("no block calls %s", name)
	}
	return found
}

func canReach(g *FuncCFG, from, to *CFGBlock) bool {
	return g.reachableFrom(from)[to.Index]
}

const cfgTestHeader = `package cfgtest

func mark()  {}
func work()  {}
func after() {}
func done()  {}
`

func TestCFGIfElseJoin(t *testing.T) {
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(x bool) {
	if x {
		work()
	} else {
		mark()
	}
	after()
}
`, "F")
	wb, mb, ab := blockCalling(t, g, "work"), blockCalling(t, g, "mark"), blockCalling(t, g, "after")
	for _, blk := range []*CFGBlock{wb, mb} {
		if !canReach(g, blk, ab) {
			t.Errorf("branch block %d does not reach the join", blk.Index)
		}
	}
	if canReach(g, wb, mb) || canReach(g, mb, wb) {
		t.Error("then and else branches reach each other")
	}
	if !canReach(g, ab, g.Return) {
		t.Error("join does not reach the return sink")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(xs []int) {
outer:
	for {
		for _, x := range xs {
			if x > 0 {
				break outer
			}
			work()
		}
		mark()
	}
	after()
}
`, "F")
	ab := blockCalling(t, g, "after")
	wb := blockCalling(t, g, "work")
	mb := blockCalling(t, g, "mark")
	// break outer jumps straight past both loops: after() is reachable
	// even though the outer loop is `for {}` with no condition exit.
	if !canReach(g, g.Entry, ab) {
		t.Fatal("break outer does not reach the code after the outer loop")
	}
	// An unlabeled break would have landed in the outer loop body
	// (mark's block); the labeled break must not be mark's only entry.
	if !canReach(g, wb, mb) {
		t.Error("inner range exit does not continue the outer body")
	}
}

func TestCFGSelectWithDefault(t *testing.T) {
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(c chan int) {
	select {
	case <-c:
		work()
	default:
		mark()
	}
	after()
}
`, "F")
	var head *CFGBlock
	for _, blk := range g.Blocks {
		if _, ok := blk.Head.(*ast.SelectStmt); ok {
			head = blk
		}
	}
	if head == nil {
		t.Fatal("no block heads the select")
	}
	wb, mb, ab := blockCalling(t, g, "work"), blockCalling(t, g, "mark"), blockCalling(t, g, "after")
	// One edge per clause, and no head→after shortcut: a select always
	// runs exactly one clause.
	for _, s := range head.Succs {
		if s == ab {
			t.Error("select head has a direct edge past its clauses")
		}
	}
	if !canReach(g, head, wb) || !canReach(g, head, mb) {
		t.Error("select head does not reach every clause body")
	}
	if !canReach(g, wb, ab) || !canReach(g, mb, ab) {
		t.Error("clause bodies do not rejoin after the select")
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(xs []int) {
	for range xs {
		defer work()
	}
	after()
}
`, "F")
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	db := blockCalling(t, g, "work")
	// The defer node sits in the loop body; its registration point is
	// reachable from entry and reaches the return sink.
	if !canReach(g, g.Entry, db) || !canReach(g, db, g.Return) {
		t.Error("defer registration point not on an entry→return path")
	}
}

func TestCFGGoto(t *testing.T) {
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(x bool) {
	if x {
		goto out
	}
	work()
out:
	after()
}
`, "F")
	wb, ab := blockCalling(t, g, "work"), blockCalling(t, g, "after")
	if len(ab.Preds) != 2 {
		t.Errorf("label block has %d preds, want 2 (fallthrough + goto)", len(ab.Preds))
	}
	// The goto edge bypasses work(): some pred of the label block does
	// not pass through work's block.
	bypass := false
	for _, p := range ab.Preds {
		if p != wb && !canReach(g, wb, p) {
			bypass = true
		}
	}
	if !bypass {
		t.Error("no goto path bypasses the skipped statement")
	}
}

func TestCFGPanicExit(t *testing.T) {
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(x bool) {
	if x {
		panic("boom")
	}
	after()
}
`, "F")
	if len(g.Panic.Preds) != 1 {
		t.Errorf("panic sink has %d preds, want 1", len(g.Panic.Preds))
	}
	pb := g.Panic.Preds[0]
	if canReach(g, pb, g.Return) {
		t.Error("panic block reaches the return sink")
	}
	if !canReach(g, blockCalling(t, g, "after"), g.Return) {
		t.Error("non-panic path does not reach the return sink")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(x int) {
	switch x {
	case 0:
		work()
		fallthrough
	case 1:
		mark()
	default:
		done()
	}
	after()
}
`, "F")
	wb, mb, db := blockCalling(t, g, "work"), blockCalling(t, g, "mark"), blockCalling(t, g, "done")
	if !hasSucc(wb, mb) {
		t.Error("fallthrough case does not edge into the next case body")
	}
	if canReach(g, wb, db) {
		t.Error("fallthrough reaches the default clause")
	}
	ab := blockCalling(t, g, "after")
	for _, blk := range []*CFGBlock{wb, mb, db} {
		if !canReach(g, blk, ab) {
			t.Errorf("case block %d does not rejoin after the switch", blk.Index)
		}
	}
}

func TestCFGForPostContinue(t *testing.T) {
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(n int) {
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		work()
	}
	after()
}
`, "F")
	wb, ab := blockCalling(t, g, "work"), blockCalling(t, g, "after")
	if !canReach(g, wb, wb) {
		t.Error("loop body cannot reach itself around the back edge")
	}
	if !canReach(g, wb, ab) {
		t.Error("loop body cannot exit the loop")
	}
	if len(g.Loops) != 1 {
		t.Fatalf("Loops records %d loops, want 1", len(g.Loops))
	}
	for _, lb := range g.Loops {
		inLoop := g.NaturalLoop(lb.Header)
		if !inLoop[wb.Index] {
			t.Error("work's block not in the natural loop")
		}
		if inLoop[ab.Index] {
			t.Error("after's block leaked into the natural loop")
		}
	}
}

func TestCFGInfiniteLoopUnreachableExit(t *testing.T) {
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F() {
	for {
		work()
	}
}
`, "F")
	if len(g.Return.Preds) != 0 {
		t.Errorf("return sink of an infinite loop has %d preds, want 0", len(g.Return.Preds))
	}
}

func TestCFGNestedLoopNaturalLoopIsTight(t *testing.T) {
	// A cancellation check in the OUTER loop must not count as part of
	// the inner loop's natural loop: naive reachability-based back-edge
	// detection gets this wrong (the outer body is reachable from the
	// inner header via the outer back edge).
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(stop func() bool) {
	for {
		mark()
		if stop() {
			return
		}
		for {
			work()
		}
	}
}
`, "F")
	wb, mb := blockCalling(t, g, "work"), blockCalling(t, g, "mark")
	var inner *LoopBlocks
	for st, lb := range g.Loops {
		fs := st.(*ast.ForStmt)
		if g.NaturalLoop(lb.Header)[wb.Index] && len(fs.Body.List) == 1 {
			inner = lb
		}
	}
	if inner == nil {
		t.Fatal("inner loop not found in Loops")
	}
	if g.NaturalLoop(inner.Header)[mb.Index] {
		t.Error("outer-body block misclassified into the inner natural loop")
	}
}

func hasSucc(from, to *CFGBlock) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGForwardFixedPoint(t *testing.T) {
	// A may-analysis over `if x { mark() } ; after()`: state 1 is
	// generated in the then branch and must survive the join (OR).
	g, _ := buildTestCFG(t, cfgTestHeader+`
func F(x bool) {
	if x {
		mark()
	}
	after()
}
`, "F")
	mb := blockCalling(t, g, "mark")
	in, reachable := g.Forward(0,
		func(a, b uint8) uint8 { return a | b },
		func(blk *CFGBlock, s uint8) uint8 {
			if blk == mb {
				return 1
			}
			return s
		})
	if !reachable[g.Return.Index] {
		t.Fatal("return sink unreachable")
	}
	if in[g.Return.Index] != 1 {
		t.Errorf("may-state at return = %d, want 1 (then-branch gen survives the join)", in[g.Return.Index])
	}
	ab := blockCalling(t, g, "after")
	if in[ab.Index] != 1 {
		t.Errorf("join in-state = %d, want 1", in[ab.Index])
	}
}

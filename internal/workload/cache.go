package workload

import (
	"sync"
	"sync/atomic"

	"pcapsim/internal/trace"
)

// TraceCache memoizes generated execution traces per (application, seed).
// Generation is deterministic — App.Trace is a pure function of
// (seed, execution index) — so the cached slice can be shared read-only by
// any number of concurrent policy runs: traces are replayed, never
// mutated.
//
// The cache is safe for concurrent use. For each (app, seed) pair
// generation runs exactly once; concurrent callers block on the first
// generation and all receive the identical slice. Distinct seeds never
// share an entry.
//
// In on-demand mode (SetOnDemand) the cache stops pinning slices: Source
// hands out regenerating streams instead, trading repeated generation for
// O(one execution) memory. Release drops an already-pinned entry.
type TraceCache struct {
	mu       sync.Mutex
	m        map[traceKey]*traceEntry
	gens     atomic.Int64
	onDemand bool
}

type traceKey struct {
	app  string
	seed uint64
}

type traceEntry struct {
	once   sync.Once
	traces []*trace.Trace
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{m: make(map[traceKey]*traceEntry)}
}

// Traces returns all execution traces of app for seed, generating them on
// first use. The returned slice is shared: callers must treat it (and the
// traces it holds) as read-only.
func (c *TraceCache) Traces(app *App, seed uint64) []*trace.Trace {
	c.mu.Lock()
	key := traceKey{app: app.Name, seed: seed}
	e, ok := c.m[key]
	if !ok {
		e = &traceEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.gens.Add(1)
		e.traces = app.Traces(seed)
	})
	return e.traces
}

// Source returns a trace.Source over the app's executions for seed. In
// the default (pinned) mode it wraps the cached slice, so concurrent
// callers share one generation; in on-demand mode it returns a fresh
// regenerating Stream and pins nothing. Each call returns an independent
// iterator — sources are single-goroutine values.
func (c *TraceCache) Source(app *App, seed uint64) trace.Source {
	c.mu.Lock()
	onDemand := c.onDemand
	c.mu.Unlock()
	if onDemand {
		return app.Stream(seed)
	}
	return trace.NewSliceSource(c.Traces(app, seed)...)
}

// SetOnDemand switches the cache between pinned (false, the default) and
// regenerate-on-demand (true) modes. Enabling it releases every pinned
// entry. Already-issued sources are unaffected.
func (c *TraceCache) SetOnDemand(v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onDemand = v
	if v {
		c.m = make(map[traceKey]*traceEntry)
	}
}

// OnDemand reports whether the cache is in regenerate-on-demand mode.
func (c *TraceCache) OnDemand() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.onDemand
}

// Release drops the pinned entry for (app, seed), if any, making its
// traces collectable once outstanding references end. It reports whether
// an entry was present. A later Traces or Source call regenerates.
func (c *TraceCache) Release(app *App, seed uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := traceKey{app: app.Name, seed: seed}
	_, ok := c.m[key]
	delete(c.m, key)
	return ok
}

// Generations reports how many trace generations have actually run — one
// per distinct (app, seed) pair requested, regardless of caller count.
func (c *TraceCache) Generations() int64 { return c.gens.Load() }

// Len returns the number of (app, seed) entries in the cache.
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Command pcaplint runs the module's static-analysis suite
// (internal/lint) over the repository: stdlib-only analyzers that
// enforce the determinism, pool-ownership, and error-handling contracts
// of DESIGN.md §§8, 10 and 11 at the source level.
//
// Usage:
//
//	pcaplint ./...                      # whole module (the ci.sh gate)
//	pcaplint ./internal/sim ./cmd/...   # a package and a subtree
//	pcaplint -list                      # describe the analyzers
//	pcaplint -only detmap,poolsafe ./...
//	pcaplint -skip errcheck-lite -json ./...
//
// Findings print as `file:line: [analyzer] message` (or a JSON array
// with -json) and make the exit status 1; load or usage errors exit 2.
// Suppress an individual finding with an inline directive on or directly
// above its line — the reason is mandatory:
//
//	//pcaplint:ignore detmap free-list order is reset before reuse
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"

	"pcapsim/internal/lint"
)

func main() {
	var (
		jsonFlag = flag.Bool("json", false, "emit findings as a JSON array")
		listFlag = flag.Bool("list", false, "list analyzers and exit")
		onlyFlag = flag.String("only", "", "comma-separated analyzers to run (default: all)")
		skipFlag = flag.String("skip", "", "comma-separated analyzers to skip")
		parFlag  = flag.Int("parallel", runtime.GOMAXPROCS(0), "type-check and analysis workers; findings are identical at any count")
	)
	flag.Parse()

	// Type-checking the stdlib from source allocates heavily and this
	// process is one-shot: trading heap headroom for wall time is free
	// (~15% measured). An explicit GOGC from the user wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.Select(*onlyFlag, *skipFlag)
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	findings, err := lint.RunModuleWorkers(root, analyzers, flag.Args(), *parFlag)
	if err != nil {
		fatal(err)
	}

	if *jsonFlag {
		if findings == nil {
			findings = []lint.Finding{} // a clean run is [], not null
		}
		out, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fatal(err)
		}
		out = append(out, '\n')
		if _, err := os.Stdout.Write(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonFlag {
			fmt.Printf("pcaplint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcaplint:", err)
	os.Exit(2)
}

//go:build race

package trace

// Under the race detector, allocation counts are meaningless: the
// instrumentation itself allocates, and sync.Pool deliberately sheds
// items at random to shake out races, so recycled-buffer high-water
// marks never stabilize. Allocation tests skip themselves when this is
// set; the counts are still enforced by the non-race `go test` pass.
func init() { raceDetectorEnabled = true }

package classic

import (
	"testing"

	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

func access(tSec float64) predictor.Access {
	return predictor.Access{Time: trace.FromSeconds(tSec)}
}

func TestExpAverageLearnsLongIdles(t *testing.T) {
	e := MustNewExpAverage(DefaultExpAverageConfig())
	p := e.NewProcess(1)
	// First decision: untrained → backup.
	if d := p.OnAccess(access(0)); d.Source != predictor.SourceBackup {
		t.Fatalf("untrained decision %+v", d)
	}
	// A stream of 30 s idle periods drives the forecast above breakeven.
	now := 0.0
	var d predictor.Decision
	for i := 0; i < 5; i++ {
		now += 30
		d = p.OnAccess(access(now))
	}
	if d.Source != predictor.SourcePrimary || d.Delay != trace.Second {
		t.Fatalf("long-idle stream not predicted: %+v", d)
	}
	// A stream of short periods drags the forecast back down.
	for i := 0; i < 8; i++ {
		now += 2
		d = p.OnAccess(access(now))
	}
	if d.Source != predictor.SourceBackup {
		t.Fatalf("short-idle stream still predicting: %+v", d)
	}
}

func TestExpAverageFiltersSubWindowGaps(t *testing.T) {
	e := MustNewExpAverage(DefaultExpAverageConfig())
	p := e.NewProcess(1)
	p.OnAccess(access(0))
	p.OnAccess(access(30)) // forecast = 30 s → predicting
	// Sub-wait-window gaps must not dilute the forecast.
	now := 30.0
	var d predictor.Decision
	for i := 0; i < 20; i++ {
		now += 0.3
		d = p.OnAccess(access(now))
	}
	if d.Source != predictor.SourcePrimary {
		t.Fatalf("filtered gaps polluted the forecast: %+v", d)
	}
}

func TestExpAverageConfigValidation(t *testing.T) {
	bad := []func(*ExpAverageConfig){
		func(c *ExpAverageConfig) { c.Alpha = 0 },
		func(c *ExpAverageConfig) { c.Alpha = 1.5 },
		func(c *ExpAverageConfig) { c.WaitWindow = 0 },
		func(c *ExpAverageConfig) { c.BackupTimeout = 0 },
		func(c *ExpAverageConfig) { c.Breakeven = 0 },
	}
	for i, m := range bad {
		c := DefaultExpAverageConfig()
		m(&c)
		if _, err := NewExpAverage(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLShape(t *testing.T) {
	l := MustNewLShape(DefaultLShapeConfig())
	p := l.NewProcess(1)
	// A short burst (two accesses 0.1 s apart): busy < 3 s → predict long.
	p.OnAccess(access(0))
	if d := p.OnAccess(access(0.1)); d.Source != predictor.SourcePrimary {
		t.Fatalf("short busy period not predicted: %+v", d)
	}
	// Sustained activity: after 3 s of busy the prediction stops.
	now := 0.1
	var d predictor.Decision
	for now < 4 {
		now += 0.4
		d = p.OnAccess(access(now))
	}
	if d.Source != predictor.SourceBackup {
		t.Fatalf("long busy period still predicting: %+v", d)
	}
	// An idle period resets the busy clock.
	now += 20
	if d := p.OnAccess(access(now)); d.Source != predictor.SourcePrimary {
		t.Fatalf("busy clock not reset after idle: %+v", d)
	}
}

func TestLShapeConfigValidation(t *testing.T) {
	bad := []func(*LShapeConfig){
		func(c *LShapeConfig) { c.BusyThreshold = 0 },
		func(c *LShapeConfig) { c.WaitWindow = 0 },
		func(c *LShapeConfig) { c.BackupTimeout = 0 },
	}
	for i, m := range bad {
		c := DefaultLShapeConfig()
		m(&c)
		if _, err := NewLShape(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAdaptiveTimeoutFeedback(t *testing.T) {
	cfg := DefaultAdaptiveTimeoutConfig()
	a := MustNewAdaptiveTimeout(cfg)
	p := a.NewProcess(1)
	d := p.OnAccess(access(0))
	if d.Delay != cfg.Initial || d.Source != predictor.SourcePrimary {
		t.Fatalf("initial decision %+v", d)
	}
	// A premature shutdown (gap just past the timer) grows the timer.
	d = p.OnAccess(access(11)) // gap 11 s: timer 10 expired, off 1 s < breakeven
	if d.Delay != 20*trace.Second {
		t.Fatalf("timer after premature shutdown: %v", d.Delay)
	}
	// A clearly correct shutdown shrinks it.
	d = p.OnAccess(access(11 + 120))
	if d.Delay != 10*trace.Second {
		t.Fatalf("timer after correct shutdown: %v", d.Delay)
	}
	// Gaps below the timer leave it unchanged.
	d = p.OnAccess(access(131 + 3))
	if d.Delay != 10*trace.Second {
		t.Fatalf("timer after cancelled shutdown: %v", d.Delay)
	}
}

func TestAdaptiveTimeoutBounds(t *testing.T) {
	cfg := DefaultAdaptiveTimeoutConfig()
	a := MustNewAdaptiveTimeout(cfg)
	p := a.NewProcess(1)
	now := 0.0
	p.OnAccess(access(now))
	// Repeated correct shutdowns shrink to the floor, never below.
	var d predictor.Decision
	for i := 0; i < 10; i++ {
		now += 500
		d = p.OnAccess(access(now))
	}
	if d.Delay != cfg.Min {
		t.Fatalf("timer floor: %v, want %v", d.Delay, cfg.Min)
	}
	// Repeated premature shutdowns grow to the ceiling, never above.
	for i := 0; i < 12; i++ {
		now += d.Delay.Seconds() + 1
		d = p.OnAccess(access(now))
	}
	if d.Delay != cfg.Max {
		t.Fatalf("timer ceiling: %v, want %v", d.Delay, cfg.Max)
	}
}

func TestAdaptiveTimeoutConfigValidation(t *testing.T) {
	bad := []func(*AdaptiveTimeoutConfig){
		func(c *AdaptiveTimeoutConfig) { c.Min = 0 },
		func(c *AdaptiveTimeoutConfig) { c.Max = c.Min - 1 },
		func(c *AdaptiveTimeoutConfig) { c.Initial = c.Max + trace.Second },
		func(c *AdaptiveTimeoutConfig) { c.Grow = 1 },
		func(c *AdaptiveTimeoutConfig) { c.Shrink = 1 },
		func(c *AdaptiveTimeoutConfig) { c.Breakeven = 0 },
	}
	for i, m := range bad {
		c := DefaultAdaptiveTimeoutConfig()
		m(&c)
		if _, err := NewAdaptiveTimeout(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNames(t *testing.T) {
	if MustNewExpAverage(DefaultExpAverageConfig()).Name() != "ExpAvg" {
		t.Error("ExpAvg name")
	}
	if MustNewLShape(DefaultLShapeConfig()).Name() != "LShape" {
		t.Error("LShape name")
	}
	if MustNewAdaptiveTimeout(DefaultAdaptiveTimeoutConfig()).Name() != "AdaptTP" {
		t.Error("AdaptTP name")
	}
}

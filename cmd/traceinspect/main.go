// Command traceinspect summarizes a trace file written by tracegen: event
// counts, per-process activity, idle-period structure at a given
// breakeven, and optionally the first events in text form.
//
// Usage:
//
//	traceinspect traces/mozilla-000.pctr
//	traceinspect -head 25 -breakeven 5.43 traces/nedit-003.pctr
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pcapsim/internal/trace"
)

func main() {
	var (
		headFlag      = flag.Int("head", 0, "print the first N events as text")
		breakevenFlag = flag.Float64("breakeven", 5.43, "breakeven time in seconds for idle-period stats")
		formatFlag    = flag.String("format", "auto", "input format: binary, text or auto")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: traceinspect [flags] <trace-file>"))
	}
	tr, err := read(flag.Arg(0), *formatFlag)
	if err != nil {
		fatal(err)
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "traceinspect: warning:", err)
	}

	fmt.Printf("app %s execution %d\n", tr.App, tr.Execution)
	fmt.Printf("events %d (I/O %d), duration %.1f s\n", tr.Len(), tr.IOCount(), tr.Duration().Seconds())

	// Per-process activity.
	type pstat struct {
		ios   int
		first trace.Time
		last  trace.Time
	}
	procs := map[trace.PID]*pstat{}
	for _, e := range tr.Events {
		if !e.IsIO() {
			continue
		}
		p := procs[e.Pid]
		if p == nil {
			p = &pstat{first: e.Time}
			procs[e.Pid] = p
		}
		p.ios++
		p.last = e.Time
	}
	pids := make([]trace.PID, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	fmt.Println("\nprocesses:")
	for _, pid := range pids {
		p := procs[pid]
		fmt.Printf("  pid %-6d %7d I/Os   active %.1f–%.1f s\n",
			pid, p.ios, p.first.Seconds(), p.last.Seconds())
	}

	// Idle-period structure of the merged I/O stream.
	be := trace.FromSeconds(*breakevenFlag)
	var prev trace.Time
	havePrev := false
	short, long := 0, 0
	var longTotal trace.Time
	for _, e := range tr.Events {
		if !e.IsIO() {
			continue
		}
		if havePrev {
			gap := e.Time - prev
			if gap >= be {
				long++
				longTotal += gap
			} else if gap > 0 {
				short++
			}
		}
		prev = e.Time
		havePrev = true
	}
	fmt.Printf("\nidle periods at breakeven %.2f s: %d long (total %.1f s), %d short\n",
		*breakevenFlag, long, longTotal.Seconds(), short)

	if *headFlag > 0 {
		fmt.Println("\nfirst events:")
		n := *headFlag
		if n > tr.Len() {
			n = tr.Len()
		}
		for _, e := range tr.Events[:n] {
			fmt.Println(" ", e.String())
		}
	}
}

func read(path, format string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "binary":
		return trace.ReadBinary(f)
	case "text":
		return trace.ReadText(f)
	case "auto":
		// Sniff the magic.
		var magic [4]byte
		if _, err := f.Read(magic[:]); err != nil {
			return nil, err
		}
		if _, err := f.Seek(0, 0); err != nil {
			return nil, err
		}
		if string(magic[:]) == "PCTR" {
			return trace.ReadBinary(f)
		}
		return trace.ReadText(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinspect:", err)
	os.Exit(1)
}

package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"pcapsim/internal/experiments"
	"pcapsim/internal/fleet"
	"pcapsim/internal/server/stats"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// JobKind names the three job families the daemon runs.
const (
	KindEval   = "eval"   // named app workload through named policies
	KindReplay = "replay" // recorded trace file through named policies
	KindFleet  = "fleet"  // fleet comparison across named policies
)

// JobSpec is the JSON body of POST /jobs. Exactly the knobs the pcapsim
// CLI exposes, so every server job has a byte-identical local
// counterpart.
type JobSpec struct {
	// Kind selects the job family: "eval", "replay" or "fleet".
	Kind string `json:"kind"`
	// Seed is the workload seed; 0 means experiments.DefaultSeed.
	Seed uint64 `json:"seed,omitempty"`
	// Policies is the policy list (default: base,tp,pcap,ideal).
	Policies []string `json:"policies,omitempty"`

	// App names the workload application for eval jobs.
	App string `json:"app,omitempty"`
	// Scale repeats the eval workload N times with warped timestamps.
	Scale int `json:"scale,omitempty"`
	// Execs, if positive, caps eval and replay jobs at the workload's
	// first N executions (trace.LimitExecs).
	Execs int `json:"execs,omitempty"`

	// Trace references the trace file for replay jobs (and fleet replay):
	// an upload ID from POST /traces, or a path inside the server's
	// trace directory.
	Trace string `json:"trace,omitempty"`
	// Workers selects parallel block decode for v2 trace files, and the
	// fleet engine's worker count. 0 is the sequential reference path.
	Workers int `json:"workers,omitempty"`
	// FromSec/ToSec/Pid/PCFrom/PCTo assemble the replay predicate,
	// mirroring pcapsim's -from/-to/-pid/-pcfrom/-pcto.
	FromSec float64 `json:"from_sec,omitempty"`
	ToSec   float64 `json:"to_sec,omitempty"`
	Pid     int     `json:"pid,omitempty"`
	PCFrom  uint64  `json:"pc_from,omitempty"`
	PCTo    uint64  `json:"pc_to,omitempty"`

	// Machines is the fleet size for fleet jobs.
	Machines int `json:"machines,omitempty"`
	// DurationSec is the fleet's per-machine virtual session length in
	// seconds (default 30 virtual minutes).
	DurationSec float64 `json:"duration_sec,omitempty"`
	// Mix is the fleet application mix, "app:weight,app:weight"
	// (fleet.ParseMix syntax, same as pcapsim -mix).
	Mix string `json:"mix,omitempty"`

	// TimeoutSec bounds the job's wall-clock run time; 0 means the
	// server's default timeout.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// validate rejects malformed specs before they reach the queue.
func (spec *JobSpec) validate() error {
	switch spec.Kind {
	case KindEval:
		if spec.App == "" {
			return errors.New("eval job needs an app")
		}
		if _, ok := workload.ByName(spec.App); !ok {
			return fmt.Errorf("unknown application %q", spec.App)
		}
	case KindReplay:
		if spec.Trace == "" {
			return errors.New("replay job needs a trace reference")
		}
	case KindFleet:
		if spec.Machines < 1 {
			return fmt.Errorf("fleet job needs a positive machine count, got %d", spec.Machines)
		}
		if _, err := fleet.ParseMix(spec.Mix); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown job kind %q (want %s, %s or %s)", spec.Kind, KindEval, KindReplay, KindFleet)
	}
	if spec.Scale < 0 || spec.Execs < 0 || spec.Workers < 0 ||
		spec.Machines < 0 || spec.DurationSec < 0 || spec.TimeoutSec < 0 ||
		spec.FromSec < 0 || spec.ToSec < 0 || spec.Pid < 0 {
		return errors.New("job spec fields must be non-negative")
	}
	return nil
}

// seed returns the effective workload seed.
func (spec *JobSpec) seed() uint64 {
	if spec.Seed == 0 {
		return experiments.DefaultSeed
	}
	return spec.Seed
}

// predicate assembles the spec's event filter.
func (spec *JobSpec) predicate() trace.Predicate {
	return trace.Predicate{
		From:   trace.FromSeconds(spec.FromSec),
		To:     trace.FromSeconds(spec.ToSec),
		Pid:    trace.PID(spec.Pid),
		PCFrom: trace.PC(spec.PCFrom),
		PCTo:   trace.PC(spec.PCTo),
	}
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one submitted unit of work and its observable lifecycle.
type Job struct {
	ID   string
	Spec JobSpec

	// Progress counters, written by the running job and read by views
	// and the SSE stream.
	events     atomic.Int64
	execs      atomic.Int64
	machines   atomic.Int64
	energyBits atomic.Uint64
	polsDone   atomic.Int64

	mu      sync.Mutex
	state   string
	output  string
	errMsg  string
	cancel  context.CancelFunc // set while running
	wantCxl string             // cancel reason received before the run started
	version int64
	changed chan struct{} // closed and replaced on every observable change
	done    chan struct{} // closed on reaching a terminal state
}

func newJob(id string, spec *JobSpec) *Job {
	return &Job{
		ID:      id,
		Spec:    *spec,
		state:   StateQueued,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// start transitions queued → running; false means the job was canceled
// while queued and must not run.
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.bumpLocked()
	return true
}

// bindCancel installs the running job's context cancel so Cancel can
// reach it. A cancel requested while the job was still queued is applied
// immediately.
func (j *Job) bindCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	pending := j.wantCxl
	j.mu.Unlock()
	if pending != "" {
		cancel()
	}
}

// finish records the terminal state.
func (j *Job) finish(state, output, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		return
	}
	j.state = state
	j.output = output
	j.errMsg = errMsg
	j.cancel = nil
	j.bumpLocked()
	close(j.done)
}

// Cancel requests cancellation: a queued job is terminated in place, a
// running job has its context canceled (the run then winds down through
// the meter / fleet Interrupt checks). Terminal jobs are unaffected.
func (j *Job) Cancel(reason string) {
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.errMsg = "canceled: " + reason
		j.bumpLocked()
		close(j.done)
		j.mu.Unlock()
	case StateRunning:
		cancel := j.cancel
		if cancel == nil {
			j.wantCxl = reason
		}
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// bumpLocked wakes every watcher; callers hold j.mu.
func (j *Job) bumpLocked() {
	j.version++
	close(j.changed)
	j.changed = make(chan struct{})
}

// progressed records batch progress and wakes watchers.
func (j *Job) progressed(events, execs, machines int64, energy float64) {
	if events != 0 {
		j.events.Add(events)
	}
	if execs != 0 {
		j.execs.Add(execs)
	}
	if machines != 0 {
		j.machines.Add(machines)
	}
	if energy != 0 {
		for {
			old := j.energyBits.Load()
			val := math.Float64frombits(old) + energy
			if j.energyBits.CompareAndSwap(old, math.Float64bits(val)) {
				break
			}
		}
	}
}

// policyDone records one finished policy run and wakes watchers.
func (j *Job) policyDone() {
	j.polsDone.Add(1)
	j.mu.Lock()
	j.bumpLocked()
	j.mu.Unlock()
}

// watch returns the current version and a channel closed at the next
// change.
func (j *Job) watch() (int64, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.version, j.changed
}

// View is a job's JSON representation.
type View struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Output is the finished job's rendered report — byte-identical to
	// the equivalent pcapsim run.
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	// Live progress: totals accounted so far by the running job.
	Events       int64   `json:"events"`
	Execs        int64   `json:"execs"`
	Machines     int64   `json:"machines,omitempty"`
	EnergyJ      float64 `json:"energy_j"`
	PoliciesDone int64   `json:"policies_done"`
}

// view snapshots the job.
func (j *Job) view() View {
	j.mu.Lock()
	state, output, errMsg := j.state, j.output, j.errMsg
	j.mu.Unlock()
	return View{
		ID:           j.ID,
		Kind:         j.Spec.Kind,
		State:        state,
		Output:       output,
		Error:        errMsg,
		Events:       j.events.Load(),
		Execs:        j.execs.Load(),
		Machines:     j.machines.Load(),
		EnergyJ:      math.Float64frombits(j.energyBits.Load()),
		PoliciesDone: j.polsDone.Load(),
	}
}

// execute dispatches a job to its kind's runner. The returned string is
// the job's Output.
func (s *Server) execute(ctx context.Context, job *Job, jc *jobContext) (string, error) {
	switch job.Spec.Kind {
	case KindEval:
		return s.runEval(ctx, job, jc)
	case KindReplay:
		return s.runReplay(ctx, job, jc)
	case KindFleet:
		return s.runFleet(ctx, job, jc)
	default:
		return "", fmt.Errorf("unknown job kind %q", job.Spec.Kind) // unreachable past validate
	}
}

// runEval runs a named app's workload through the named policies — the
// server-side twin of the CLI's per-app experiment path. Output equals
// "eval <app>\n\n" + the same table ReplaySource renders locally.
func (s *Server) runEval(ctx context.Context, job *Job, jc *jobContext) (string, error) {
	spec := &job.Spec
	suite, err := jc.suite(spec.seed(), spec.Scale)
	if err != nil {
		return "", err
	}
	app, ok := workload.ByName(spec.App)
	if !ok {
		return "", fmt.Errorf("unknown application %q", spec.App)
	}
	src := suite.SourceFor(app)
	if spec.Execs > 0 {
		src = trace.LimitExecs(src, spec.Execs)
	}
	m := newMeter(ctx, src, jc.local, job)
	rows, err := suite.ReplayRowsObserved(m, spec.Policies, func(row experiments.ReplayRow) {
		jc.local.AddEnergy(row.Result.Energy.Total())
		job.progressed(0, 0, 0, row.Result.Energy.Total())
		job.policyDone()
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("eval %s\n\n%s", spec.App, experiments.RenderReplayRows(rows)), nil
}

// runReplay replays a referenced or uploaded trace file under the named
// policies. Output is byte-identical to pcapsim -replay over the
// resolved path.
func (s *Server) runReplay(ctx context.Context, job *Job, jc *jobContext) (string, error) {
	spec := &job.Spec
	suite, err := jc.suite(spec.seed(), 1)
	if err != nil {
		return "", err
	}
	path, err := s.resolveTrace(spec.Trace)
	if err != nil {
		return "", err
	}
	fs, err := trace.OpenTraceFileOpts(path, trace.OpenOptions{Workers: spec.Workers, Pred: spec.predicate()})
	if err != nil {
		return "", err
	}
	defer fs.Close() //pcaplint:ignore errcheck-lite file opened read-only; a close failure cannot lose data
	var src trace.Source = fs
	if spec.Execs > 0 {
		src = trace.LimitExecs(src, spec.Execs)
	}
	m := newMeter(ctx, src, jc.local, job)
	rows, err := suite.ReplayRowsObserved(m, spec.Policies, func(row experiments.ReplayRow) {
		jc.local.AddEnergy(row.Result.Energy.Total())
		job.progressed(0, 0, 0, row.Result.Energy.Total())
		job.policyDone()
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("replay %s\n\n%s", path, experiments.RenderReplayRows(rows)), nil
}

// runFleet runs one fleet per named policy. Output is byte-identical to
// pcapsim -fleet with the same parameters.
func (s *Server) runFleet(ctx context.Context, job *Job, jc *jobContext) (string, error) {
	spec := &job.Spec
	mix, err := fleet.ParseMix(spec.Mix)
	if err != nil {
		return "", err
	}
	session := 1800.0 // pcapsim's -duration default: 30 virtual minutes
	if spec.DurationSec > 0 {
		session = spec.DurationSec
	}
	cfg := fleet.Config{
		Machines:  spec.Machines,
		Seed:      spec.seed(),
		Session:   trace.FromSeconds(session),
		Mix:       mix,
		Workers:   spec.Workers,
		Interrupt: ctx.Err,
		// Observe runs on this goroutine during each run's fold, so the
		// single-owner stats shard is safe to touch here.
		Observe: func(id int, res *sim.AppResult) {
			jc.local.AddMachines(1)
			jc.local.AddEvents(int64(res.TotalIOs))
			jc.local.AddExecs(int64(res.Executions))
			jc.local.AddEnergy(res.Energy.Total())
			job.progressed(int64(res.TotalIOs), int64(res.Executions), 1, res.Energy.Total())
		},
	}
	if spec.Trace != "" {
		path, err := s.resolveTrace(spec.Trace)
		if err != nil {
			return "", err
		}
		fs, err := trace.OpenTraceFileOpts(path, trace.OpenOptions{Workers: spec.Workers, Pred: spec.predicate()})
		if err != nil {
			return "", err
		}
		traces, err := trace.Collect(fs)
		_ = fs.Close() //pcaplint:ignore errcheck-lite read-only handle; the decode error below is authoritative
		if err != nil {
			return "", err
		}
		cfg.Replay = traces
	}
	policies := spec.Policies
	if len(policies) == 0 {
		policies = experiments.DefaultReplayPolicies
	}
	results, err := experiments.FleetResultsObserved(cfg, policies, func(string, *fleet.Result) {
		job.policyDone()
	})
	if err != nil {
		return "", err
	}
	return experiments.RenderFleetComparison(policies, results), nil
}

// meter wraps a trace source with the server's two cross-cutting
// concerns — cancellation and accounting — without touching the event
// stream itself: every event passes through unmodified, so a metered
// replay is result-identical to a bare one. Cancellation is checked at
// execution boundaries (thousands of events apart), and counts flow into
// the coalescing stats shard and the job's progress counters in
// per-execution batches, so neither concern adds per-event overhead.
type meter struct {
	src   trace.Source
	ctx   context.Context
	local *stats.Local
	job   *Job

	execEvents int64 // events seen in the current execution
	err        error // sticky cancellation error
}

func newMeter(ctx context.Context, src trace.Source, local *stats.Local, job *Job) *meter {
	//pcaplint:ignore ctxflow request-scoped by construction: the meter lives strictly inside the job's exec call and cannot outlive ctx
	return &meter{src: src, ctx: ctx, local: local, job: job}
}

// flushExec commits the finished execution's event count.
func (m *meter) flushExec() {
	if m.execEvents > 0 {
		m.local.AddEvents(m.execEvents)
		m.job.progressed(m.execEvents, 0, 0, 0)
		m.execEvents = 0
	}
}

func (m *meter) NextExec() (string, int, bool) {
	m.flushExec()
	if m.err == nil {
		m.err = m.ctx.Err()
	}
	if m.err != nil {
		return "", 0, false
	}
	app, exec, ok := m.src.NextExec()
	if ok {
		m.local.AddExecs(1)
		m.job.progressed(0, 1, 0, 0)
	}
	return app, exec, ok
}

func (m *meter) Next() (trace.Event, bool) {
	e, ok := m.src.Next()
	if ok {
		m.execEvents++
	}
	return e, ok
}

// AppendExec implements trace.ExecAppender so metering does not demote
// the inner source's batch decode path (mirrors trace.LimitExecs).
func (m *meter) AppendExec(buf []trace.Event) []trace.Event {
	n := len(buf)
	if es, ok := m.src.(trace.ExecSlicer); ok {
		buf = append(buf, es.ExecEvents()...)
	} else if ea, ok := m.src.(trace.ExecAppender); ok {
		buf = ea.AppendExec(buf)
	} else {
		for {
			e, ok := m.src.Next()
			if !ok {
				break
			}
			buf = append(buf, e)
		}
	}
	m.execEvents += int64(len(buf) - n)
	return buf
}

func (m *meter) Err() error {
	if m.err != nil {
		return m.err
	}
	return m.src.Err()
}

func (m *meter) Reset() error {
	m.flushExec()
	if m.err != nil {
		return m.err
	}
	return m.src.Reset()
}

package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// TestIndexRoundTrip checks the footer against ground truth: every
// recorded offset must point at the right magic in the encoded bytes,
// and the per-block statistics must exactly summarize the block's
// events.
func TestIndexRoundTrip(t *testing.T) {
	a := seedTraceV2()
	b := pushdownTrace()
	b.Execution = 3
	data := encodeIndexed(t, 16, a, b)
	idx, err := ReadIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if idx == nil {
		t.Fatal("no index found")
	}
	if len(idx.Execs) != 2 {
		t.Fatalf("execs = %d, want 2", len(idx.Execs))
	}
	traces := []*Trace{a, b}
	for i, em := range idx.Execs {
		tr := traces[i]
		if em.App != tr.App || em.Exec != tr.Execution || em.Events != uint64(len(tr.Events)) {
			t.Fatalf("exec %d: meta %q/%d/%d does not match trace", i, em.App, em.Exec, em.Events)
		}
		if string(data[em.Offset:em.Offset+4]) != blockFileMagic {
			t.Fatalf("exec %d: offset %d does not point at %q", i, em.Offset, blockFileMagic)
		}
		seen := 0
		for j, bm := range em.Blocks {
			if string(data[bm.Offset:bm.Offset+4]) != blockMagic {
				t.Fatalf("exec %d block %d: offset %d does not point at %q", i, j, bm.Offset, blockMagic)
			}
			ev := tr.Events[seen : seen+bm.Events]
			seen += bm.Events
			if bm.MinTime != ev[0].Time || bm.MaxTime != ev[len(ev)-1].Time {
				t.Fatalf("exec %d block %d: time range [%d,%d] vs events [%d,%d]",
					i, j, bm.MinTime, bm.MaxTime, ev[0].Time, ev[len(ev)-1].Time)
			}
			pids := map[PID]bool{}
			ios, forks := 0, 0
			var pcMin, pcMax PC
			first := true
			for _, e := range ev {
				pids[e.Pid] = true
				switch e.Kind {
				case KindIO:
					ios++
					if first || e.PC < pcMin {
						pcMin = e.PC
					}
					if first || e.PC > pcMax {
						pcMax = e.PC
					}
					first = false
				case KindFork:
					forks++
				}
			}
			if bm.IOs != ios || bm.Forks != forks {
				t.Fatalf("exec %d block %d: ios/forks %d/%d, want %d/%d", i, j, bm.IOs, bm.Forks, ios, forks)
			}
			if len(bm.Pids) != len(pids) {
				t.Fatalf("exec %d block %d: pid set size %d, want %d", i, j, len(bm.Pids), len(pids))
			}
			for k, pid := range bm.Pids {
				if !pids[pid] {
					t.Fatalf("exec %d block %d: pid %d not in block", i, j, pid)
				}
				if k > 0 && bm.Pids[k-1] >= pid {
					t.Fatalf("exec %d block %d: pid set not strictly sorted", i, j)
				}
			}
			if bm.PCMin != pcMin || bm.PCMax != pcMax {
				t.Fatalf("exec %d block %d: pc range [%x,%x], want [%x,%x]", i, j, bm.PCMin, bm.PCMax, pcMin, pcMax)
			}
		}
		if seen != len(tr.Events) {
			t.Fatalf("exec %d: block events sum %d, want %d", i, seen, len(tr.Events))
		}
	}
}

// TestIndexNegativePids checks the signed-pid delta encoding: negative
// pids (kernel threads by convention) must round-trip through the
// footer.
func TestIndexNegativePids(t *testing.T) {
	tr := &Trace{App: "neg", Execution: 0}
	for i, pid := range []PID{-7, -3, 1, 5} {
		tr.Events = append(tr.Events, Event{
			Time: Time(1000 * (i + 1)), Pid: pid, Kind: KindIO,
			Access: AccessRead, PC: 0x100, FD: 3, Block: int64(i), Size: 512,
		})
	}
	data := encodeIndexed(t, 0, tr)
	idx, err := ReadIndex(bytes.NewReader(data))
	if err != nil || idx == nil {
		t.Fatalf("ReadIndex: %v, %v", idx, err)
	}
	got := idx.Execs[0].Blocks[0].Pids
	want := []PID{-7, -3, 1, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pid set = %v, want %v", got, want)
	}
}

// TestReadIndexNoFooter: files without a footer — including files too
// short to hold one — report (nil, nil), the sequential-scan fallback.
func TestReadIndexNoFooter(t *testing.T) {
	cases := map[string][]byte{
		"plain":   encodeV2(t, seedTraceV2(), 16),
		"empty":   {},
		"short":   []byte("PC"),
		"garbage": bytes.Repeat([]byte{0xAB}, 64),
	}
	for name, data := range cases {
		idx, err := ReadIndex(bytes.NewReader(data))
		if idx != nil || err != nil {
			t.Fatalf("%s: ReadIndex = %v, %v; want nil, nil", name, idx, err)
		}
	}
}

// footerStart locates the leading byte of the footer in an indexed file.
func footerStart(t *testing.T, data []byte) int {
	t.Helper()
	if len(data) < 8 || string(data[len(data)-4:]) != indexMagic {
		t.Fatal("no trailing footer magic")
	}
	flen := int(uint32(data[len(data)-8]) | uint32(data[len(data)-7])<<8 |
		uint32(data[len(data)-6])<<16 | uint32(data[len(data)-5])<<24)
	return len(data) - 8 - flen
}

// TestIndexFooterBitFlips flips every bit of the footer region, one at
// a time; no flip may yield a usable index — each must be detected as
// an error or demoted to the no-footer fallback.
func TestIndexFooterBitFlips(t *testing.T) {
	data := encodeIndexed(t, 16, seedTraceV2())
	start := footerStart(t, data)
	if idx, err := ReadIndex(bytes.NewReader(data)); idx == nil || err != nil {
		t.Fatalf("pristine file: ReadIndex = %v, %v", idx, err)
	}
	for off := start; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			idx, err := ReadIndex(bytes.NewReader(mut))
			if idx != nil {
				t.Fatalf("flip at byte %d bit %d yielded an index (err=%v)", off-start, bit, err)
			}
		}
	}
}

// TestIndexFooterTruncated: every truncation of the footer must error
// or fall back, never produce an index.
func TestIndexFooterTruncated(t *testing.T) {
	data := encodeIndexed(t, 16, seedTraceV2())
	start := footerStart(t, data)
	for cut := start; cut < len(data); cut++ {
		idx, _ := ReadIndex(bytes.NewReader(data[:cut]))
		if idx != nil {
			t.Fatalf("truncation at %d yielded an index", cut)
		}
	}
}

// TestIndexedConcatenation: concatenating footer-bearing files must keep
// the documented cat-tracegen-output workflow working — every execution
// decodes, sequentially and in parallel — while the trailing footer
// (whose offsets are segment-relative) must be rejected for seeking, so
// pushdown falls back to the full scan instead of mis-skipping.
func TestIndexedConcatenation(t *testing.T) {
	a := seedTraceV2()
	b := pushdownTrace()
	b.Execution = 7
	one := encodeIndexed(t, 16, a)
	two := encodeIndexed(t, 32, b)
	cat := append(append([]byte(nil), one...), two...)
	selfCat := append(append([]byte(nil), one...), one...)

	for name, data := range map[string][]byte{"a+b": cat, "a+a": selfCat} {
		got, err := Collect(NewBlockSource(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		if len(got) != 2 {
			t.Fatalf("%s: decoded %d executions, want 2", name, len(got))
		}
		ps := NewParallelSource(bytes.NewReader(data), 4)
		pgot, err := Collect(ps)
		ps.Close()
		if err != nil {
			t.Fatalf("%s: parallel: %v", name, err)
		}
		if len(pgot) != 2 || !tracesEqual(got[0], pgot[0]) || !tracesEqual(got[1], pgot[1]) {
			t.Fatalf("%s: parallel decode diverged", name)
		}

		if idx, err := ReadIndex(bytes.NewReader(data)); idx != nil {
			t.Fatalf("%s: trailing footer accepted for a concatenation (err=%v)", name, err)
		}
		p := Predicate{From: 1}
		bs := NewBlockSource(bytes.NewReader(data))
		if bs.SetPredicate(p) {
			t.Fatalf("%s: pushdown armed on a concatenation", name)
		}
		want, err := drainAll(FilterEvents(NewBlockSource(bytes.NewReader(data)), p))
		if err != nil {
			t.Fatal(err)
		}
		fgot, err := drainAll(FilterEvents(bs, p))
		if err != nil || fgot != want {
			t.Fatalf("%s: fallback decode diverged (%v)", name, err)
		}
	}
}

// TestWriteColumnarIndexed: the convenience writer produces a decodable
// stream plus a footer consistent with it.
func TestWriteColumnarIndexed(t *testing.T) {
	a := seedTraceV2()
	b := seedTraceV2()
	b.App, b.Execution = "other", 9
	var buf bytes.Buffer
	if err := WriteColumnarIndexed(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewBlockSource(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !tracesEqual(a, got[0]) || !tracesEqual(b, got[1]) {
		t.Fatal("indexed write round trip mismatch")
	}
	idx, err := ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil || idx == nil || len(idx.Execs) != 2 {
		t.Fatalf("ReadIndex = %v, %v", idx, err)
	}
}

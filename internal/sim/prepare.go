package sim

import (
	"fmt"

	"pcapsim/internal/fscache"
	"pcapsim/internal/trace"
)

// procInfo tracks one process's lifetime and access stream within an
// execution.
type procInfo struct {
	pid   trace.PID
	start trace.Time
	// exit is the exit time; hasExit reports whether the process exited
	// within the trace.
	exit    trace.Time
	hasExit bool
	// accesses are indices into execution.accesses belonging to this pid.
	accesses []int
}

// liveAt reports whether the process exists (has started, has not exited)
// at time t.
func (p *procInfo) liveAt(t trace.Time) bool {
	return p.start <= t && (!p.hasExit || p.exit > t)
}

// execution is one application execution prepared for simulation: the
// trace filtered through the file cache into disk accesses, partitioned by
// process.
type execution struct {
	app string
	// index is the execution's position within the workload.
	index int
	// accesses is the merged disk-access stream in time order.
	accesses []trace.Event
	// nextLocal[i] is the index (into accesses) of the next access by the
	// same process after accesses[i], or -1.
	nextLocal []int
	// procs maps pid to lifetime and access info.
	procs map[trace.PID]*procInfo
	// exits lists processes' exit events sorted by time.
	exits []trace.Event
	// totalIOs is the pre-cache I/O event count.
	totalIOs int
	// cacheStats is the file cache activity for this execution.
	cacheStats fscache.Stats
	// end is the time of the last trace event.
	end trace.Time
}

// prepare filters one execution trace through a fresh file cache and
// indexes the resulting disk accesses for the runner.
func prepare(tr *trace.Trace, cacheCfg fscache.Config) (*execution, error) {
	cache, err := fscache.New(cacheCfg)
	if err != nil {
		return nil, err
	}
	filtered, err := cache.Filter(tr.Events)
	if err != nil {
		return nil, fmt.Errorf("sim: filtering %s/%d: %w", tr.App, tr.Execution, err)
	}
	ex := &execution{
		app:        tr.App,
		index:      tr.Execution,
		procs:      make(map[trace.PID]*procInfo),
		cacheStats: cache.Stats(),
		end:        tr.Duration(),
	}
	for _, e := range tr.Events {
		if e.IsIO() {
			ex.totalIOs++
		}
	}
	proc := func(pid trace.PID, t trace.Time) *procInfo {
		p, ok := ex.procs[pid]
		if !ok {
			// First sighting without a fork: a root process, alive from
			// the start of the execution.
			p = &procInfo{pid: pid}
			ex.procs[pid] = p
			_ = t
		}
		return p
	}
	for _, e := range filtered {
		switch e.Kind {
		case trace.KindFork:
			proc(e.Pid, e.Time)
			child, ok := ex.procs[e.Child]
			if !ok {
				child = &procInfo{pid: e.Child}
				ex.procs[e.Child] = child
			}
			child.start = e.Time
		case trace.KindExit:
			p := proc(e.Pid, e.Time)
			p.exit = e.Time
			p.hasExit = true
			ex.exits = append(ex.exits, e)
		case trace.KindIO:
			p := proc(e.Pid, e.Time)
			idx := len(ex.accesses)
			ex.accesses = append(ex.accesses, e)
			p.accesses = append(p.accesses, idx)
		}
	}
	// Index each access's successor within its own process.
	ex.nextLocal = make([]int, len(ex.accesses))
	for i := range ex.nextLocal {
		ex.nextLocal[i] = -1
	}
	for _, p := range ex.procs {
		for j := 0; j+1 < len(p.accesses); j++ {
			ex.nextLocal[p.accesses[j]] = p.accesses[j+1]
		}
	}
	return ex, nil
}

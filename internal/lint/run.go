package lint

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// All returns the registered analyzers in stable order. Every analyzer
// name is valid in //pcaplint:ignore directives and -only/-skip filters.
func All() []*Analyzer {
	return []*Analyzer{
		DetMap,
		NondetSource,
		PoolSafe,
		ErrcheckLite,
		CtxFlow,
		GoroLeak,
		FloatDet,
	}
}

// KnownNames returns the set of registered analyzer names.
func KnownNames() map[string]bool {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// Select resolves -only/-skip comma-separated filters against the
// registry. Empty strings mean "no filter".
func Select(only, skip string) ([]*Analyzer, error) {
	known := KnownNames()
	parse := func(list string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(sortedNames(known), ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range All() {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// RunModule loads the module at root and runs the analyzers over every
// package matching one of the patterns ("./..." for everything,
// "./dir/..." for a subtree, "./dir" for one package). Suppression
// directives are applied; directive errors are returned as findings under
// the FrameworkName analyzer. Findings come back in stable file/line
// order with file paths relative to the module root.
func RunModule(root string, analyzers []*Analyzer, patterns []string) ([]Finding, error) {
	return RunModuleWorkers(root, analyzers, patterns, runtime.GOMAXPROCS(0))
}

// RunModuleWorkers is RunModule with an explicit worker count for both
// loading and analysis. Findings are byte-identical at any worker
// count: each package's findings land in that package's slot and the
// concatenation follows the deterministic dependency order before the
// final sort.
func RunModuleWorkers(root string, analyzers []*Analyzer, patterns []string, workers int) ([]Finding, error) {
	mod, err := LoadModuleWorkers(root, workers)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	known := KnownNames()
	var targets []*Package
	for _, pkg := range mod.Packages {
		if matchAny(pkg.RelPath, patterns, mod.Path) {
			targets = append(targets, pkg)
		}
	}
	perPkg := make([][]Finding, len(targets))
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers > 1 {
		// Packages are independent at analysis time: the shared Module
		// state (type results, owner-transfer set) is read-only now, and
		// each Pass memoizes CFGs on its own package.
		var wg sync.WaitGroup
		idx := make(chan int, len(targets))
		for i := range targets {
			idx <- i
		}
		close(idx)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					perPkg[i] = runPackage(mod, targets[i], analyzers, known)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, pkg := range targets {
			perPkg[i] = runPackage(mod, pkg, analyzers, known)
		}
	}
	var all []Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	for i := range all {
		if rel, err := filepath.Rel(root, all[i].File); err == nil {
			all[i].File = filepath.ToSlash(rel)
		}
	}
	sortFindings(all)
	return all, nil
}

// runPackage runs the analyzers over one loaded package, validating and
// applying its suppression directives.
func runPackage(mod *Module, pkg *Package, analyzers []*Analyzer, known map[string]bool) []Finding {
	ignores, findings := collectDirectives(mod.Fset, pkg.Files, known)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:      a,
			Fset:          mod.Fset,
			Pkg:           pkg,
			OwnerTransfer: mod.IsOwnerTransfer,
			findings:      &findings,
		}
		a.Run(pass)
	}
	kept := findings[:0]
	for _, f := range findings {
		if !ignores.suppressed(f) {
			kept = append(kept, f)
		}
	}
	return kept
}

// matchAny reports whether a module-relative package path matches any
// pattern. Patterns may be "./..."-style relative paths or full import
// paths ("pcapsim/internal/sim").
func matchAny(relPath string, patterns []string, modPath string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(strings.TrimSpace(pat), "./")
		pat = strings.TrimPrefix(pat, modPath+"/")
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "..." || pat == "" || pat == modPath:
			return true
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if relPath == base || strings.HasPrefix(relPath, base+"/") {
				return true
			}
		case relPath == pat:
			return true
		}
	}
	return false
}

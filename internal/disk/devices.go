package disk

import "pcapsim/internal/trace"

// Representative device parameter sets beyond the paper's Fujitsu drive.
// The paper notes the technique "can be applied to other I/O devices such
// as wireless network interfaces"; these profiles let the experiments
// probe how the breakeven time — the knob that changes across device
// classes — moves the predictor trade-offs. Values are representative of
// the device classes of the period (laptop disk, desktop disk, WLAN NIC),
// with breakeven times derived from the other constants via
// ComputeBreakeven.

// Laptop25Inch returns a representative 2.5-inch mobile drive with a
// lighter spin-up than the Fujitsu: breakeven ≈ 3.6 s.
func Laptop25Inch() Params {
	p := Params{
		Name:           "generic 2.5\" mobile disk",
		BusyPower:      2.0,
		IdlePower:      0.85,
		StandbyPower:   0.15,
		SpinUpEnergy:   2.9,
		ShutdownEnergy: 0.25,
		SpinUpTime:     trace.FromSeconds(1.2),
		ShutdownTime:   trace.FromSeconds(0.5),
	}
	p.Breakeven = p.ComputeBreakeven()
	return p
}

// Desktop35Inch returns a representative 3.5-inch desktop drive: heavy
// platters make shutdowns expensive, breakeven ≈ 13 s.
func Desktop35Inch() Params {
	p := Params{
		Name:           "generic 3.5\" desktop disk",
		BusyPower:      8.0,
		IdlePower:      5.0,
		StandbyPower:   1.0,
		SpinUpEnergy:   55.0,
		ShutdownEnergy: 4.0,
		SpinUpTime:     trace.FromSeconds(3.5),
		ShutdownTime:   trace.FromSeconds(1.0),
	}
	p.Breakeven = p.ComputeBreakeven()
	return p
}

// WirelessNIC returns a representative 802.11 interface: "shutdown" is
// entering power-save polling mode, so the transition is cheap and fast
// and the breakeven drops under a second.
func WirelessNIC() Params {
	p := Params{
		Name:           "generic 802.11 interface",
		BusyPower:      1.4,
		IdlePower:      0.9,
		StandbyPower:   0.05,
		SpinUpEnergy:   0.4,
		ShutdownEnergy: 0.1,
		SpinUpTime:     trace.FromSeconds(0.1),
		ShutdownTime:   trace.FromSeconds(0.05),
	}
	p.Breakeven = p.ComputeBreakeven()
	return p
}

// Devices returns the evaluated device profiles, the paper's drive first.
func Devices() []Params {
	return []Params{FujitsuMHF2043AT(), Laptop25Inch(), Desktop35Inch(), WirelessNIC()}
}

// The fleet catalog extends the evaluated profiles with further device
// classes for heterogeneous-fleet simulation (internal/fleet): drives a
// large user population would actually mix — a slow consumer 5400 rpm
// laptop drive, a server-class enterprise drive whose heavy platters make
// shutdowns rarely worthwhile, and an aggressively power-managed mobile
// drive with a fast unload path and an intermediate low-power idle state.
// Constants follow the same calibration discipline as the profiles above:
// per-state powers and fixed transition energies are representative of the
// class, and the breakeven time is derived, not asserted.

// Laptop5400RPM returns a representative consumer 5400 rpm 2.5-inch
// drive: slower electronics than Laptop25Inch, heavier spin-up, breakeven
// ≈ 6.5 s.
func Laptop5400RPM() Params {
	p := Params{
		Name:           "5400 rpm laptop disk",
		BusyPower:      2.3,
		IdlePower:      1.1,
		StandbyPower:   0.2,
		SpinUpEnergy:   5.5,
		ShutdownEnergy: 0.5,
		SpinUpTime:     trace.FromSeconds(1.9),
		ShutdownTime:   trace.FromSeconds(0.8),
	}
	p.Breakeven = p.ComputeBreakeven()
	return p
}

// Enterprise10K returns a representative enterprise 10k rpm drive:
// massive spin-up energy and a high idle floor push the breakeven near
// twenty seconds, so shutdown opportunities are rare and expensive to
// mispredict.
func Enterprise10K() Params {
	p := Params{
		Name:           "enterprise 10k rpm disk",
		BusyPower:      13.5,
		IdlePower:      9.0,
		StandbyPower:   2.0,
		SpinUpEnergy:   135.0,
		ShutdownEnergy: 9.0,
		SpinUpTime:     trace.FromSeconds(6.0),
		ShutdownTime:   trace.FromSeconds(1.5),
	}
	p.Breakeven = p.ComputeBreakeven()
	return p
}

// AggressiveMobile returns a representative aggressively power-managed
// mobile drive: fast head unload, cheap transitions, and an intermediate
// low-power idle state (for the multi-state wait-window extension), with
// a breakeven around three seconds.
func AggressiveMobile() Params {
	p := Params{
		Name:              "aggressive low-power mobile disk",
		BusyPower:         1.8,
		IdlePower:         0.65,
		StandbyPower:      0.1,
		LowPowerIdlePower: 0.35,
		SpinUpEnergy:      1.6,
		ShutdownEnergy:    0.15,
		SpinUpTime:        trace.FromSeconds(0.7),
		ShutdownTime:      trace.FromSeconds(0.3),
	}
	p.Breakeven = p.ComputeBreakeven()
	return p
}

// Catalog returns every device profile available to heterogeneous fleet
// simulation: the evaluated set of Devices plus the fleet-only classes,
// in a fixed order (the paper's drive first). Devices() itself is
// unchanged so the device-sweep experiment keeps its published rows.
func Catalog() []Params {
	return append(Devices(), Laptop5400RPM(), Enterprise10K(), AggressiveMobile())
}

// Command pcapload drives a pcapd daemon with sustained synchronous job
// traffic and reports throughput and latency — the measurement harness
// behind the recorded numbers in BENCH_PR9.json.
//
// Usage:
//
//	pcapload -addr 127.0.0.1:8080 -c 32 -duration 10s
//	pcapload -addr $(cat pcapd.addr) -c 32 -jobs eval:9,fleet:1 -json
//
// -c clients each run a closed loop: submit one job with ?wait=1, wait
// for the full result, submit the next. The -jobs mix weights job kinds
// ("eval:9,fleet:1"); each client walks a deterministic weighted
// schedule, so two runs against equal servers issue identical job
// sequences. Throughput (jobs/s) is completed jobs over the measurement
// wall clock; events/s is the delta of the server's own /stats event
// counter over the same window, so it measures simulation throughput,
// not transport. Latency percentiles are per-job round-trip times.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// jobSpec mirrors internal/server.JobSpec; pcapload speaks only the wire
// format, like any external client would.
type jobSpec struct {
	Kind        string   `json:"kind"`
	Policies    []string `json:"policies,omitempty"`
	App         string   `json:"app,omitempty"`
	Execs       int      `json:"execs,omitempty"`
	Machines    int      `json:"machines,omitempty"`
	DurationSec float64  `json:"duration_sec,omitempty"`
	TimeoutSec  float64  `json:"timeout_sec,omitempty"`
}

// statsSnap is the subset of /stats pcapload reads.
type statsSnap struct {
	Events   int64 `json:"events"`
	Execs    int64 `json:"execs"`
	JobsDone int64 `json:"jobs_done"`
}

// report is the run summary (also emitted as JSON with -json).
type report struct {
	Clients      int     `json:"clients"`
	DurationSec  float64 `json:"duration_sec"`
	Jobs         int64   `json:"jobs"`
	Errors       int64   `json:"errors"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`
}

func main() {
	var (
		addrFlag     = flag.String("addr", "", "pcapd address (host:port), required")
		clientsFlag  = flag.Int("c", 32, "concurrent closed-loop clients")
		durationFlag = flag.Duration("duration", 10*time.Second, "measurement window")
		jobsFlag     = flag.String("jobs", "eval:1", "job mix as kind:weight,kind:weight (kinds: eval, fleet)")
		appFlag      = flag.String("app", "nedit", "application for eval jobs")
		policiesFlag = flag.String("policies", "base,tp,pcap", "policy list for every job")
		execsFlag    = flag.Int("execs", 5, "execution cap per eval job")
		machinesFlag = flag.Int("machines", 20, "machines per fleet job")
		sessionFlag  = flag.Float64("session", 120, "fleet per-machine session length (virtual seconds)")
		jsonFlag     = flag.Bool("json", false, "emit the report as JSON on stdout")
		benchFlag    = flag.Bool("benchline", false, "emit a go-bench-style result line (for benchjson / BENCH_PR*.json)")
	)
	flag.Parse()
	if *addrFlag == "" {
		fatal(fmt.Errorf("-addr is required (the pcapd host:port)"))
	}
	base := "http://" + strings.TrimPrefix(*addrFlag, "http://")
	policies := splitList(*policiesFlag)

	schedule, err := buildSchedule(*jobsFlag, func(kind string) jobSpec {
		switch kind {
		case "eval":
			return jobSpec{Kind: "eval", App: *appFlag, Policies: policies, Execs: *execsFlag}
		case "fleet":
			return jobSpec{Kind: "fleet", Machines: *machinesFlag, DurationSec: *sessionFlag, Policies: policies}
		}
		return jobSpec{}
	})
	if err != nil {
		fatal(err)
	}

	// One warmup job primes the server's pooled contexts (workload
	// generation happens once, not inside the measured window).
	if _, err := runJob(base, schedule[0]); err != nil {
		fatal(fmt.Errorf("warmup job: %w", err))
	}

	before, err := readStats(base)
	if err != nil {
		fatal(err)
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		jobs      int64
		errs      int64
	)
	start := time.Now()
	deadline := start.Add(*durationFlag)
	var wg sync.WaitGroup
	for c := 0; c < *clientsFlag; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Stagger schedule entry per client so mixed kinds interleave.
			for i := c; time.Now().Before(deadline); i++ {
				spec := schedule[i%len(schedule)]
				t0 := time.Now()
				_, err := runJob(base, spec)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					errs++
				} else {
					jobs++
					latencies = append(latencies, lat)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	after, err := readStats(base)
	if err != nil {
		fatal(err)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep := report{
		Clients:      *clientsFlag,
		DurationSec:  elapsed.Seconds(),
		Jobs:         jobs,
		Errors:       errs,
		JobsPerSec:   float64(jobs) / elapsed.Seconds(),
		EventsPerSec: float64(after.Events-before.Events) / elapsed.Seconds(),
		LatencyP50Ms: ms(percentile(latencies, 50)),
		LatencyP90Ms: ms(percentile(latencies, 90)),
		LatencyP99Ms: ms(percentile(latencies, 99)),
		LatencyMaxMs: ms(percentile(latencies, 100)),
	}
	if *benchFlag {
		// One line in `go test -bench` output format so cmd/benchjson can
		// fold the recorded load-generator run into the same BENCH_PR*.json
		// artifact as the in-process benchmarks. The client count is part
		// of the name: runs at different concurrency are different series.
		fmt.Printf("BenchmarkPcapdLoad%d \t%d\t%.1f jobs/s\t%.0f events/s\t%.3f p50-ms\t%.3f p99-ms\n",
			rep.Clients, rep.Jobs, rep.JobsPerSec, rep.EventsPerSec, rep.LatencyP50Ms, rep.LatencyP99Ms)
	} else if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("pcapload: %d clients, %.1fs, mix %s\n", rep.Clients, rep.DurationSec, *jobsFlag)
		fmt.Printf("  jobs:     %d completed, %d errors, %.1f jobs/s\n", rep.Jobs, rep.Errors, rep.JobsPerSec)
		fmt.Printf("  events:   %.0f events/s (server-side, from /stats)\n", rep.EventsPerSec)
		fmt.Printf("  latency:  p50 %.1f ms, p90 %.1f ms, p99 %.1f ms, max %.1f ms\n",
			rep.LatencyP50Ms, rep.LatencyP90Ms, rep.LatencyP99Ms, rep.LatencyMaxMs)
	}
	if errs > 0 {
		os.Exit(1)
	}
}

// buildSchedule expands a kind:weight mix into a repeating schedule of
// specs, e.g. "eval:3,fleet:1" → [eval eval eval fleet].
func buildSchedule(mix string, build func(kind string) jobSpec) ([]jobSpec, error) {
	var schedule []jobSpec
	for _, part := range splitList(mix) {
		kind, weightStr, hasWeight := strings.Cut(part, ":")
		kind = strings.TrimSpace(kind)
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil || w < 1 {
				return nil, fmt.Errorf("-jobs: bad weight in %q", part)
			}
			weight = w
		}
		spec := build(kind)
		if spec.Kind == "" {
			return nil, fmt.Errorf("-jobs: unknown job kind %q (want eval or fleet)", kind)
		}
		for i := 0; i < weight; i++ {
			schedule = append(schedule, spec)
		}
	}
	if len(schedule) == 0 {
		return nil, fmt.Errorf("-jobs: empty job mix")
	}
	return schedule, nil
}

// runJob submits one synchronous job and returns its terminal state.
func runJob(base string, spec jobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close() //pcaplint:ignore errcheck-lite response body fully read below; close failure loses nothing
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var v struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return "", err
	}
	if v.State != "done" {
		return v.State, fmt.Errorf("job %s: %s", v.State, v.Error)
	}
	return v.State, nil
}

// readStats fetches the server's live counters.
func readStats(base string) (statsSnap, error) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return statsSnap{}, err
	}
	defer resp.Body.Close() //pcaplint:ignore errcheck-lite response body fully decoded below; close failure loses nothing
	var s statsSnap
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return statsSnap{}, err
	}
	return s, nil
}

// percentile returns the p-th percentile of sorted latencies (nearest
// rank; p=100 is the max).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted)*p/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcapload:", err)
	os.Exit(1)
}

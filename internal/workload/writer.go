package workload

// Writer: the Open Office word processor. The user mostly composes text —
// long stretches of typing and thinking with no disk activity — broken by
// autosaves, spell-checker dictionary loads, and the occasional insertion
// of an object that pulls in filter libraries through a helper process.
// After proofreading come flurries of quick fixes. An explicit save looks
// the same whether the user then keeps working or walks away, which makes
// "save" writer's ambiguous action.

// Writer I/O call sites.
const (
	wrtPCLibOpen  = 0x480289e0
	wrtPCLibRead  = 0x4009f000
	wrtPCDocOpen  = 0x08166a88
	wrtPCDocRead  = 0x08065080
	wrtPCDictRead = 0x47f453a0
	wrtPCAutoSave = 0x080f8d2c
	wrtPCSaveWr   = 0x0810bd1c
	wrtPCFilter   = 0x481df638 // filter helper
	wrtPCFiltBulk = 0x46378390
	wrtPCFontRead = 0x42ed0d50 // font/UI helper
	wrtPCFontBulk = 0x454dc778
	wrtPCBakRead  = 0x08191328 // backup read-back during save
	wrtPCExitWr   = 0x080c01f8
)

func init() {
	register(&App{
		Name:       "writer",
		Executions: 33,
		Describe: "Open Office word processor: long composing periods, autosave and " +
			"dictionary bursts, filter and font helper processes.",
		generate: func(b *B) { interactiveSession(b, writerModel()) },
	})
}

func writerModel() *Model {
	return &Model{
		StartupPath: []Site{O(wrtPCLibOpen), R(wrtPCLibRead), O(wrtPCDocOpen), R(wrtPCDocRead)},
		BulkSite:    R(wrtPCLibRead),
		StartupBulk: 2500,
		StartupFD:   3,
		Helpers: []Helper{
			{ // import/export filter helper
				StartupPath: []Site{O(wrtPCFilter), R(wrtPCFiltBulk)},
				BulkSite:    R(wrtPCFiltBulk),
				StartupBulk: 300,
				FD:          3,
				AssistPath:  []Site{R(wrtPCFilter), R(wrtPCFiltBulk)},
				AssistBulk:  60,
			},
			{ // font and UI resource helper
				StartupPath: []Site{O(wrtPCFontRead), R(wrtPCFontBulk)},
				BulkSite:    R(wrtPCFontBulk),
				StartupBulk: 180,
				FD:          3,
				AssistPath:  []Site{R(wrtPCFontRead), R(wrtPCFontBulk)},
				AssistBulk:  20,
			},
		},
		Kinds: []Kind{
			{
				Name:        "compose", // a paragraph of typing, then the spell checker
				Path:        []Site{R(wrtPCDictRead), R(wrtPCDictRead)},
				FD:          4,
				BulkSite:    R(wrtPCDictRead),
				Bulk:        60,
				BulkQuick:   16,
				DirtySite:   W(wrtPCAutoSave),
				Dirty:       0,
				Helper:      1,
				WeightQuick: 1, WeightSettle: 5,
			},
			{
				Name:        "quickfix", // proofreading correction
				Path:        []Site{R(wrtPCDocRead)},
				FD:          4,
				BulkSite:    R(wrtPCDocRead),
				Bulk:        20,
				BulkQuick:   8,
				DirtySite:   W(wrtPCAutoSave),
				Dirty:       0,
				Helper:      -1,
				WeightQuick: 5, WeightSettle: 0.8,
			},
			{
				Name:        "insert-object", // clipart/table: filter helper loads libraries
				Path:        []Site{R(wrtPCDocRead), R(wrtPCFilter)},
				FD:          5,
				BulkSite:    R(wrtPCDocRead),
				Bulk:        150,
				BulkQuick:   40,
				DirtySite:   W(wrtPCAutoSave),
				Dirty:       0,
				Helper:      0,
				WeightQuick: 0.8, WeightSettle: 1.4,
			},
			{
				Name: "save", // explicit save: ambiguous continuation
				// The writes themselves are absorbed by the write-back
				// cache; what the disk sees is the backup read-back.
				Path:        []Site{R(wrtPCBakRead), W(wrtPCSaveWr)},
				FD:          6,
				BulkSite:    R(wrtPCBakRead),
				Bulk:        30,
				BulkQuick:   0, // ambiguous
				DirtySite:   W(wrtPCAutoSave),
				Dirty:       2,
				Helper:      -1,
				WeightQuick: 0.15, WeightSettle: 1.0,
			},
		},
		EpisodesMin: 3, EpisodesMax: 4,
		RunMin: 1, RunMax: 3,
		RhythmWeights:  []float64{0.25, 0.7, 0.05},
		PChangeRhythm:  0.12,
		PQuickMicro:    0,
		PRestlessStart: 0.3, PersistPhase: 0.74,
		PSettleShortCalm: 0.03, PSettleShortRestless: 0.14,
		ShortLo: 1.4, ShortHi: 5.2,
		LongBands:   [3][2]float64{{6.5, 10}, {10.3, 15.2}, {18, 900}},
		LongWeights: [3]float64{0.44, 0.02, 0.54},
		ExitPath:    []Site{O(wrtPCExitWr), W(wrtPCExitWr)},
		ExitFD:      6,
		ExitDirty:   4,
		ExitSite:    W(wrtPCSaveWr),
		IntraLo:     0.006, IntraHi: 0.03,
	}
}

// Differential tests for the parallel v2 decode pipeline at the
// workload level: every synthetic application, encoded with the index
// footer, must decode event-identically through the parallel pipeline
// at any worker count, and predicate-pushdown replay must produce the
// same simulation results as the filtered sequential reference path.
package pcapsim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pcapsim/internal/experiments"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// TestParallelDecodeAllApps encodes every execution of each application
// into one indexed v2 stream and checks the parallel pipeline against
// the sequential BlockSource at workers 1, 4 and 8: same executions,
// same events, in the same order.
func TestParallelDecodeAllApps(t *testing.T) {
	for _, app := range workload.Apps() {
		traces := app.Traces(experiments.DefaultSeed)
		var buf bytes.Buffer
		if err := trace.WriteColumnarIndexed(&buf, traces...); err != nil {
			t.Fatalf("%s: encode: %v", app.Name, err)
		}
		data := buf.Bytes()
		want, err := trace.Collect(trace.NewBlockSource(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("%s: sequential decode: %v", app.Name, err)
		}
		for _, workers := range []int{1, 4, 8} {
			src := trace.NewParallelSource(bytes.NewReader(data), workers)
			got, err := trace.Collect(src)
			if cerr := src.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			if err != nil {
				t.Fatalf("%s workers=%d: parallel decode: %v", app.Name, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d executions, want %d", app.Name, workers, len(got), len(want))
			}
			for i := range want {
				w, g := want[i], got[i]
				if g.App != w.App || g.Execution != w.Execution || len(g.Events) != len(w.Events) {
					t.Fatalf("%s workers=%d exec %d: header %s/%d/%d events, want %s/%d/%d",
						app.Name, workers, i, g.App, g.Execution, len(g.Events),
						w.App, w.Execution, len(w.Events))
				}
				for j := range w.Events {
					if g.Events[j] != w.Events[j] {
						t.Fatalf("%s workers=%d exec %d event %d:\n got %+v\nwant %+v",
							app.Name, workers, i, j, g.Events[j], w.Events[j])
					}
				}
			}
		}
	}
}

// writeReplayFiles encodes one app's executions twice into a temp dir:
// with the index footer (pushdown-capable) and without (the fallback
// that must filter every event after decoding).
func writeReplayFiles(t *testing.T) (indexed, plain string) {
	t.Helper()
	app, _ := workload.ByName("nedit")
	traces := app.Traces(experiments.DefaultSeed)
	dir := t.TempDir()
	write := func(name string, encode func(*bytes.Buffer) error) string {
		var buf bytes.Buffer
		if err := encode(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	indexed = write("indexed.pct2", func(b *bytes.Buffer) error {
		return trace.WriteColumnarIndexed(b, traces...)
	})
	plain = write("plain.pct2", func(b *bytes.Buffer) error {
		for _, tr := range traces {
			if err := trace.WriteColumnar(b, tr); err != nil {
				return err
			}
		}
		return nil
	})
	return indexed, plain
}

// replayTable strips ReplayFileOpts' per-path header so results from
// different file names compare directly.
func replayTable(t *testing.T, out string) string {
	t.Helper()
	_, tbl, ok := strings.Cut(out, "\n\n")
	if !ok {
		t.Fatalf("unexpected replay output:\n%s", out)
	}
	return tbl
}

// TestPushdownReplaySimEquivalence runs the simulator over the same
// recorded workload through four decode paths — sequential, parallel,
// pushdown-armed and footerless fallback — and requires identical
// policy results. This is the end-to-end soundness check: skipping
// non-matching blocks via the index must be invisible to the simulation.
func TestPushdownReplaySimEquivalence(t *testing.T) {
	indexed, plain := writeReplayFiles(t)
	s := experiments.NewDefaultSuite()
	policies := []string{"base", "tp", "pcap"}
	replay := func(path string, opts experiments.ReplayOptions) string {
		out, err := s.ReplayFileOpts(path, policies, opts)
		if err != nil {
			t.Fatalf("replay %s %+v: %v", path, opts, err)
		}
		return replayTable(t, out)
	}

	// Full replay: parallel must match sequential exactly.
	full := replay(indexed, experiments.ReplayOptions{})
	if got := replay(indexed, experiments.ReplayOptions{Workers: 4}); got != full {
		t.Fatalf("parallel full replay diverged:\n got:\n%s\nwant:\n%s", got, full)
	}

	// Filtered replay: the footerless file cannot push down, so it is the
	// filter-only reference; the indexed file skips blocks via the index
	// on both the sequential and parallel paths. Guard against a vacuous
	// window first: the predicate must keep some events and drop others.
	app, _ := workload.ByName("nedit")
	traces := app.Traces(experiments.DefaultSeed)
	var maxTime trace.Time
	for _, tr := range traces {
		if last := tr.Events[len(tr.Events)-1].Time; last > maxTime {
			maxTime = last
		}
	}
	pred := trace.Predicate{From: maxTime / 4, To: maxTime / 2}
	kept, total := 0, 0
	for _, tr := range traces {
		for _, e := range tr.Events {
			total++
			if pred.MatchEvent(e) {
				kept++
			}
		}
	}
	if kept == 0 || kept == total {
		t.Fatalf("degenerate predicate window: keeps %d of %d events", kept, total)
	}
	ref := replay(plain, experiments.ReplayOptions{Pred: pred})
	for name, opts := range map[string]experiments.ReplayOptions{
		"sequential pushdown": {Pred: pred},
		"parallel pushdown":   {Workers: 4, Pred: pred},
	} {
		if got := replay(indexed, opts); got != ref {
			t.Fatalf("%s diverged from filtered reference:\n got:\n%s\nwant:\n%s", name, got, ref)
		}
	}
}

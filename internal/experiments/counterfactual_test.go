package experiments

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"testing"

	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
)

// TestCounterfactualDifferential extends the PR 1 differential harness to
// the traced runner: for every app × policy in the default suite, a
// RunSourceTraced call with a recording sink and an empty flip-set must
// produce a result %+v-identical and deeply equal to the plain RunSource
// run — decision tracing observes the simulation without perturbing a
// digit of it, which is what keeps suite.golden byte-identical with the
// feature merged. Under -short (the CI race pass) the matrix is trimmed
// like TestStreamingDifferential's.
func TestCounterfactualDifferential(t *testing.T) {
	s := NewDefaultSuite()
	runner, err := sim.NewRunner(s.Config())
	if err != nil {
		t.Fatal(err)
	}
	apps := s.Apps()
	pols := suitePolicies(s)
	if testing.Short() {
		apps = apps[:2] // mozilla (multi-process) and writer
		short := []sim.Policy{s.PolicyBase(), s.PolicyTP(), s.PolicyLT()}
		short = append(short, s.table3Policies()...)
		seen := make(map[string]bool)
		pols = pols[:0]
		for _, p := range short {
			if !seen[p.Name] {
				seen[p.Name] = true
				pols = append(pols, p)
			}
		}
	}
	neverFlip := func(k int64, shutdown bool, pc trace.PC) bool { return false }
	for _, app := range apps {
		traces := s.Traces(app)
		for _, pol := range pols {
			pol := pol
			t.Run(app.Name+"/"+pol.Name, func(t *testing.T) {
				want, err := runner.RunApp(traces, pol)
				if err != nil {
					t.Fatalf("RunApp: %v", err)
				}
				var log trace.DecisionLog
				got, err := runner.RunSourceTraced(trace.NewSliceSource(traces...), pol, sim.TraceOptions{
					Sink: &log,
					Flip: neverFlip,
				})
				if err != nil {
					t.Fatalf("RunSourceTraced: %v", err)
				}
				if wt, gt := fmt.Sprintf("%+v", want), fmt.Sprintf("%+v", got); wt != gt {
					t.Errorf("traced result text differs:\n got %s\nwant %s", gt, wt)
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("traced AppResult not deeply equal to plain one")
				}
				if len(log.Records) != want.DiskAccesses {
					t.Errorf("recorded %d decisions for %d disk accesses", len(log.Records), want.DiskAccesses)
				}
				for i, rec := range log.Records {
					if rec.Flipped() {
						t.Fatalf("record %d flagged flipped under an empty flip-set", i)
					}
				}
			})
		}
	}
}

// decisionGoldenPath holds the committed decision trace of the first
// xemacs execution under PCAP at the default seed.
const decisionGoldenPath = "testdata/xemacs-pcap.pcd"

// goldenDecisionRun records the fixed-seed decision stream the golden
// file pins: xemacs execution 0, PCAP, default configuration.
func goldenDecisionRun(t *testing.T) []trace.DecisionRecord {
	t.Helper()
	s := NewDefaultSuite()
	runner, err := sim.NewRunner(s.Config())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := s.Apps()[0], 0
	for _, a := range s.Apps() {
		if a.Name == "xemacs" {
			app = a
		}
	}
	if app.Name != "xemacs" {
		t.Fatal("xemacs workload missing")
	}
	pol, ok := s.PolicyByName("pcap")
	if !ok {
		t.Fatal("pcap policy missing")
	}
	var log trace.DecisionLog
	src := trace.Limit(trace.NewSliceSource(s.Traces(app)...), 1)
	if _, err := runner.RunSourceTraced(src, pol, sim.TraceOptions{Sink: &log}); err != nil {
		t.Fatal(err)
	}
	return log.Records
}

// TestDecisionTraceGolden pins the decision-trace codec's on-disk bytes:
// the fixed-seed run must encode to exactly the committed file, the file
// must decode field-for-field to the live records, and — mirroring the v2
// block contract — any single-bit corruption of the file must surface as
// a decode error. Refresh with -update after an intentional format or
// simulator change.
func TestDecisionTraceGolden(t *testing.T) {
	recs := goldenDecisionRun(t)
	if len(recs) == 0 {
		t.Fatal("golden run produced no decisions")
	}
	var buf bytes.Buffer
	if err := trace.WriteDecisions(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(decisionGoldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d records, %d bytes)", decisionGoldenPath, len(recs), buf.Len())
		return
	}
	want, err := os.ReadFile(decisionGoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("decision trace encoding changed: %d bytes vs committed %d (run with -update after an intentional change)",
			buf.Len(), len(want))
	}
	decoded, err := trace.ReadDecisions(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("decoding committed golden: %v", err)
	}
	if !reflect.DeepEqual(decoded, recs) {
		t.Fatal("decoded golden records differ field-for-field from the live run")
	}
}

// TestDecisionTraceGoldenBitFlips corrupts the committed golden file one
// bit at a time; every mutation must fail decoding, never silently alter
// records. The file is a few KB, so the sweep covers every bit. Skipped
// under -short (the race pass) — the contract is format-level, already
// enforced per-encoding by the trace package's own bit-flip test.
func TestDecisionTraceGoldenBitFlips(t *testing.T) {
	if testing.Short() {
		t.Skip("bit sweep over the golden file; covered by the long pass")
	}
	want, err := os.ReadFile(decisionGoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	orig, err := trace.ReadDecisions(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(want)*8; i++ {
		mut := append([]byte(nil), want...)
		mut[i/8] ^= 1 << (i % 8)
		got, err := trace.ReadDecisions(bytes.NewReader(mut))
		if err == nil {
			if reflect.DeepEqual(got, orig) {
				t.Fatalf("bit flip at %d decoded to the original records", i)
			}
			t.Fatalf("bit flip at %d decoded cleanly (%d records)", i, len(got))
		}
	}
}

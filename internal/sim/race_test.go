//go:build race

package sim

// Under the race detector, allocation counts are inflated by the
// instrumentation; allocation-sensitive tests consult this flag and skip.
func init() { raceDetectorEnabled = true }

// Custom workload: builds a brand-new application model with the workload
// builder — a photo organizer the paper never studied — and evaluates the
// standard predictor lineup on it. This is the path a downstream user
// takes to try PCAP on their own application's I/O behaviour.
package main

import (
	"fmt"

	"pcapsim/internal/core"
	"pcapsim/internal/ltree"
	"pcapsim/internal/predictor"
	"pcapsim/internal/rng"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// The photo organizer's I/O call sites.
const (
	pcLibLoad   = 0x4a10_2240
	pcCatalog   = 0x0805_9c70
	pcThumbRead = 0x0806_21b4
	pcFullRead  = 0x0806_4e88
	pcTagWrite  = 0x0806_8d3c
	pcExportWr  = 0x0807_1f60
)

// photoTrace generates one execution: the user flips through thumbnails
// (short pauses), opens a full-resolution image and studies it (long
// pause), occasionally tags or exports.
func photoTrace(seed uint64, exec int) *trace.Trace {
	b := workload.NewBuilder(rng.New(seed).Split(uint64(exec)+1), exec)
	root := b.Root()

	// Startup: library load and catalog scan.
	b.AdvanceRange(0.1, 0.3)
	b.Burst(root, workload.R(pcLibLoad), 3, 150, 0.005, 0.02)
	b.Advance(0.1)
	b.Burst(root, workload.R(pcCatalog), 4, 80, 0.005, 0.02)

	albums := 3 + b.R.Intn(3)
	for a := 0; a < albums; a++ {
		// Flip through thumbnails: short pauses between rows.
		rows := 2 + b.R.Intn(2)
		for r := 0; r < rows; r++ {
			b.AdvanceRange(1.5, 4.5)
			b.Burst(root, workload.R(pcThumbRead), 5, 40, 0.003, 0.012)
		}
		// Open one image full-size and study it: the long idle period.
		b.AdvanceRange(0.3, 0.8)
		b.Burst(root, workload.R(pcFullRead), 6, 120, 0.003, 0.012)
		if b.R.Bool(0.4) {
			b.AdvanceRange(0.05, 0.15)
			b.BurstAt(root, workload.W(pcTagWrite), 6, 0, 4, 2, 0.01, 0.02)
		}
		b.Advance(b.R.Range(15, 240))
	}

	// Export the selection and quit.
	b.Burst(root, workload.W(pcExportWr), 7, 60, 0.005, 0.02)
	b.AdvanceRange(0.2, 0.5)
	b.IO(root, workload.O(pcCatalog), 3, b.FreshBlocks(1))
	b.AdvanceRange(0.05, 0.2)
	b.Exit(root)

	tr := b.Build("photo-organizer", exec)
	return tr
}

func main() {
	const executions = 25
	traces := make([]*trace.Trace, executions)
	for i := range traces {
		traces[i] = photoTrace(99, i)
		if err := traces[i].Validate(); err != nil {
			panic(err)
		}
	}
	fmt.Printf("photo-organizer: %d executions, %d I/Os in the first one\n\n",
		executions, traces[0].IOCount())

	runner := sim.MustNewRunner(sim.DefaultConfig())
	policies := []sim.Policy{
		{Name: "Base", NewFactory: func() predictor.Factory { return predictor.AlwaysOn{} }},
		{Name: "TP", NewFactory: func() predictor.Factory { return predictor.NewTimeout(10 * trace.Second) }},
		{Name: "LT", NewFactory: func() predictor.Factory { return ltree.MustNew(ltree.DefaultConfig()) }, Reuse: true},
		{Name: "PCAP", NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) }, Reuse: true},
	}
	var baseTotal float64
	for _, pol := range policies {
		res, err := runner.RunApp(traces, pol)
		if err != nil {
			panic(err)
		}
		if pol.Name == "Base" {
			baseTotal = res.Energy.Total()
			fmt.Printf("%-5s %d long idle periods, %.0f J total\n",
				pol.Name, res.Global.LongPeriods, baseTotal)
			continue
		}
		f := res.Global.Fractions()
		fmt.Printf("%-5s hit %5.1f%%  miss %5.1f%%  saved %5.1f%%\n",
			pol.Name, 100*f.Hit, 100*f.Miss, 100*(1-res.Energy.Total()/baseTotal))
	}
}

package workload

import (
	"reflect"
	"testing"

	"pcapsim/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	apps := Apps()
	if len(apps) != 6 {
		t.Fatalf("%d apps", len(apps))
	}
	// The paper's Table 1 execution counts.
	want := map[string]int{
		"mozilla": 49, "writer": 33, "impress": 19,
		"xemacs": 37, "nedit": 29, "mplayer": 31,
	}
	for _, a := range apps {
		if a.Executions != want[a.Name] {
			t.Errorf("%s: %d executions, want %d", a.Name, a.Executions, want[a.Name])
		}
		if a.Describe == "" {
			t.Errorf("%s: no description", a.Name)
		}
	}
	if _, ok := ByName("mozilla"); !ok {
		t.Error("ByName(mozilla) failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName(nonesuch) succeeded")
	}
	if len(Names()) != 6 {
		t.Errorf("Names: %v", Names())
	}
}

func TestDeterminism(t *testing.T) {
	for _, a := range Apps() {
		t1 := a.Trace(123, 0)
		t2 := a.Trace(123, 0)
		if !reflect.DeepEqual(t1, t2) {
			t.Errorf("%s: same (seed, exec) produced different traces", a.Name)
		}
		t3 := a.Trace(124, 0)
		if reflect.DeepEqual(t1.Events, t3.Events) {
			t.Errorf("%s: different seeds produced identical traces", a.Name)
		}
		t4 := a.Trace(123, 1)
		if reflect.DeepEqual(t1.Events, t4.Events) {
			t.Errorf("%s: different executions produced identical traces", a.Name)
		}
	}
}

func TestAllTracesValidate(t *testing.T) {
	for _, a := range Apps() {
		for exec := 0; exec < a.Executions; exec++ {
			tr := a.Trace(7, exec)
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", a.Name, exec, err)
			}
			if tr.App != a.Name || tr.Execution != exec {
				t.Fatalf("%s/%d: labels %q/%d", a.Name, exec, tr.App, tr.Execution)
			}
			if tr.IOCount() == 0 {
				t.Fatalf("%s/%d: no I/O", a.Name, exec)
			}
		}
	}
}

// TestPCStabilityAcrossExecutions: the PC sets of different executions of
// the same application must coincide — the property PCAP's cross-execution
// table reuse depends on.
func TestPCStabilityAcrossExecutions(t *testing.T) {
	for _, a := range Apps() {
		pcs := func(exec int) map[trace.PC]bool {
			set := map[trace.PC]bool{}
			for _, e := range a.Trace(9, exec).Events {
				if e.IsIO() {
					set[e.PC] = true
				}
			}
			return set
		}
		// Not every execution exercises every site (optional helpers,
		// rare actions), so compare a later window against the union of
		// an earlier one: no new call sites may ever appear.
		early := map[trace.PC]bool{}
		for exec := 0; exec < 10 && exec < a.Executions; exec++ {
			for pc := range pcs(exec) {
				early[pc] = true
			}
		}
		for exec := 10; exec < 15 && exec < a.Executions; exec++ {
			for pc := range pcs(exec) {
				if !early[pc] {
					t.Errorf("%s: execution %d introduced new PC 0x%x", a.Name, exec, uint32(pc))
				}
			}
		}
	}
}

func TestNeditSingleProcess(t *testing.T) {
	a, _ := ByName("nedit")
	for exec := 0; exec < 5; exec++ {
		tr := a.Trace(11, exec)
		if got := tr.Pids(); len(got) != 1 {
			t.Fatalf("nedit exec %d has %d processes", exec, len(got))
		}
	}
}

func TestMultiProcessApps(t *testing.T) {
	for _, name := range []string{"mozilla", "writer", "impress", "mplayer"} {
		a, _ := ByName(name)
		tr := a.Trace(11, 0)
		if got := tr.Pids(); len(got) < 2 {
			t.Errorf("%s has %d processes, want ≥2", name, len(got))
		}
	}
}

func TestEventsSortedAndExitLast(t *testing.T) {
	for _, a := range Apps() {
		tr := a.Trace(5, 0)
		var last trace.Time
		for i, e := range tr.Events {
			if e.Time < last {
				t.Fatalf("%s: event %d out of order", a.Name, i)
			}
			last = e.Time
		}
		// Every execution ends with the root's exit.
		final := tr.Events[len(tr.Events)-1]
		if final.Kind != trace.KindExit {
			t.Errorf("%s: final event is %v, want exit", a.Name, final.Kind)
		}
	}
}

func TestBuilderHelpers(t *testing.T) {
	b := &B{nextPid: 2}
	if b.Root() != 1 {
		t.Error("root pid")
	}
	b.Advance(1.5)
	if b.Now() != trace.FromSeconds(1.5) {
		t.Errorf("now %v", b.Now())
	}
	child := b.Fork(b.Root())
	if child != 2 {
		t.Errorf("child pid %d", child)
	}
	b.IO(child, R(0x10), 3, b.FreshBlocks(1))
	b.Exit(child)
	if len(b.events) != 3 {
		t.Errorf("%d events", len(b.events))
	}
	if base := b.FreshBlocks(5); base != 1 {
		t.Errorf("fresh base %d", base)
	}
	if base := b.FreshBlocks(1); base != 6 {
		t.Errorf("fresh base %d", base)
	}
	b.Warp(trace.Second)
	if b.Now() != trace.Second {
		t.Error("warp")
	}
}

func TestBuilderPanics(t *testing.T) {
	b := &B{}
	for name, fn := range map[string]func(){
		"negative advance": func() { b.Advance(-1) },
		"negative warp":    func() { b.Warp(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSiteConstructors(t *testing.T) {
	if r := R(5); r.Access != trace.AccessRead || r.Size != 4096 {
		t.Error("R")
	}
	if w := W(5); w.Access != trace.AccessWrite {
		t.Error("W")
	}
	if o := O(5); o.Access != trace.AccessOpen {
		t.Error("O")
	}
}

func TestTable1Scale(t *testing.T) {
	// Sanity bands around the paper's Table 1 I/O totals (±40%): the
	// generators must stay in the right order of magnitude even if exact
	// calibration drifts.
	want := map[string]int{
		"mozilla": 90843, "writer": 133016, "impress": 220455,
		"xemacs": 79720, "nedit": 6663, "mplayer": 512433,
	}
	for _, a := range Apps() {
		total := 0
		for exec := 0; exec < a.Executions; exec++ {
			total += a.Trace(20040214, exec).IOCount()
		}
		lo, hi := int(float64(want[a.Name])*0.6), int(float64(want[a.Name])*1.4)
		if total < lo || total > hi {
			t.Errorf("%s: %d I/Os, want within [%d, %d]", a.Name, total, lo, hi)
		}
	}
}

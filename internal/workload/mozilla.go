package workload

// Mozilla: the web browser. The paper calls it the hardest application to
// predict: the user follows links in quick flurries (many short idle
// periods) and settles into reading pages (long periods); page content
// decides how much I/O a visit needs, and some pages pull in extra
// libraries through helper processes. A page opened from a bookmark loads
// exactly like an article read from a link — the same PC path and the
// same full burst — so its quick appearances alias PCAP's trained
// signatures; restless browsing phases abort settles into short periods,
// the misses that PCAPh's idle history later removes.

// Mozilla I/O call sites.
const (
	mozPCLibOpen  = 0x440b2d00
	mozPCLibRead  = 0x4536e95c
	mozPCHTML     = 0x081120cc
	mozPCCSS      = 0x0813e43c
	mozPCImage    = 0x0810dc3c
	mozPCCacheWr  = 0x080bdd2c
	mozPCHistWr   = 0x08173570
	mozPCFormWr   = 0x0822faa8
	mozPCPlugin   = 0x48ed2304
	mozPCRender   = 0x49c8052c // render helper
	mozPCRendBulk = 0x43ce1268
	mozPCNetIO    = 0x080dcf64 // network/profile helper
	mozPCProfile  = 0x082813b4
	mozPCExitWr   = 0x082cdc94
)

func init() {
	register(&App{
		Name:       "mozilla",
		Executions: 49,
		Describe: "Web browser: link-following flurries with short idle periods, " +
			"long page-reading periods, helper processes for rendering and the profile.",
		generate: func(b *B) { interactiveSession(b, mozillaModel()) },
	})
}

func mozillaModel() *Model {
	return &Model{
		StartupPath: []Site{O(mozPCLibOpen), R(mozPCLibRead), R(mozPCLibRead), O(mozPCLibOpen)},
		BulkSite:    R(mozPCLibRead),
		StartupBulk: 420,
		StartupFD:   3,
		Helpers: []Helper{
			{ // render helper: fonts and image decoders
				StartupPath: []Site{O(mozPCRender), R(mozPCRendBulk)},
				BulkSite:    R(mozPCRendBulk),
				StartupBulk: 70,
				FD:          3,
				AssistPath:  []Site{R(mozPCRender), R(mozPCRendBulk)},
				AssistBulk:  36,
			},
			{ // profile helper: bookmarks, cookies, settings
				StartupPath: []Site{O(mozPCNetIO), R(mozPCProfile)},
				BulkSite:    R(mozPCProfile),
				StartupBulk: 40,
				FD:          3,
				AssistPath:  []Site{R(mozPCNetIO), W(mozPCProfile)},
				AssistBulk:  6,
			},
		},
		Kinds: []Kind{
			{
				Name:        "hop", // quick link follow; loads abort early
				Path:        []Site{R(mozPCHTML), R(mozPCCSS)},
				FD:          4,
				BulkSite:    R(mozPCImage),
				Bulk:        24,
				BulkQuick:   14,
				DirtySite:   W(mozPCCacheWr),
				Dirty:       0,
				Helper:      -1,
				WeightQuick: 6, WeightSettle: 0.5,
			},
			{
				Name:        "article", // settle in and read; render helper decodes
				Path:        []Site{R(mozPCHTML), R(mozPCCSS), R(mozPCImage)},
				FD:          4,
				BulkSite:    R(mozPCImage),
				Bulk:        90,
				BulkQuick:   30,
				DirtySite:   W(mozPCHistWr),
				Dirty:       0,
				Helper:      0,
				WeightQuick: 1.2, WeightSettle: 4,
			},
			{
				// Same PC path and the same full burst as "article"
				// (bookmarked pages always load completely), so quick
				// appearances alias the trained signature; only the file
				// descriptor differs — the PCAPf differentiator.
				Name:        "bookmark",
				Path:        []Site{R(mozPCHTML), R(mozPCCSS), R(mozPCImage)},
				FD:          7,
				BulkSite:    R(mozPCImage),
				Bulk:        90,
				BulkQuick:   0, // ambiguous
				DirtySite:   W(mozPCHistWr),
				Dirty:       0,
				Helper:      -1,
				WeightQuick: 1.4, WeightSettle: 1.5,
			},
			{
				Name:        "media", // multimedia page decoded by the render helper
				Path:        []Site{R(mozPCHTML), R(mozPCCSS), R(mozPCPlugin)},
				FD:          5,
				BulkSite:    R(mozPCPlugin),
				Bulk:        110,
				BulkQuick:   35,
				DirtySite:   W(mozPCCacheWr),
				Dirty:       0,
				Helper:      0,
				WeightQuick: 0.8, WeightSettle: 2,
			},
			{
				Name:        "form", // submit a form; the profile helper records it
				Path:        []Site{R(mozPCHTML), W(mozPCFormWr)},
				FD:          6,
				BulkSite:    R(mozPCImage),
				Bulk:        8,
				BulkQuick:   5,
				DirtySite:   W(mozPCHistWr),
				Dirty:       2,
				Helper:      1,
				WeightQuick: 1.8, WeightSettle: 0.8,
			},
			{
				Name:        "newtab", // home page from cache
				Path:        []Site{R(mozPCHTML)},
				FD:          4,
				BulkSite:    R(mozPCImage),
				Bulk:        6,
				BulkQuick:   4,
				DirtySite:   W(mozPCCacheWr),
				Dirty:       0,
				Helper:      -1,
				WeightQuick: 2.5, WeightSettle: 0.2,
			},
		},
		EpisodesMin: 6, EpisodesMax: 8,
		RunMin: 1, RunMax: 3,
		RhythmWeights:  []float64{0.2, 0.65, 0.15},
		PChangeRhythm:  0.12,
		PQuickMicro:    0,
		PRestlessStart: 0.35, PersistPhase: 0.72,
		PSettleShortCalm: 0.06, PSettleShortRestless: 0.22,
		ShortLo: 1.3, ShortHi: 5.2,
		LongBands:   [3][2]float64{{6.5, 10}, {10.3, 15.2}, {16, 700}},
		LongWeights: [3]float64{0.50, 0.02, 0.48},
		ExitPath:    []Site{O(mozPCExitWr), W(mozPCExitWr)},
		ExitFD:      6,
		ExitDirty:   2,
		ExitSite:    W(mozPCHistWr),
		IntraLo:     0.008, IntraHi: 0.035,
	}
}

package hypothesis

import (
	"fmt"
	"math"
	"sort"

	"pcapsim/internal/experiments"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// defaultTopN bounds the attribution table when the spec does not say.
const defaultTopN = 5

// CounterfactualResult reports one flip replay: the simulation re-run
// with the selected decision inverted, compared against what the
// attribution table predicted for it.
type CounterfactualResult struct {
	// Record is the flipped decision as originally made.
	Record trace.DecisionRecord `json:"record"`
	// PredictedEnergyDelta is the record's FlipDelta; MeasuredEnergyDelta
	// is the replayed run's total energy minus the candidate's. The two
	// must agree to float tolerance — Matches reports the check.
	PredictedEnergyDelta float64 `json:"predicted_energy_delta"`
	MeasuredEnergyDelta  float64 `json:"measured_energy_delta"`
	// PredictedWaitDelta / MeasuredWaitDelta are the same comparison for
	// user-visible spin-up wait; being integer microseconds they must
	// agree exactly.
	PredictedWaitDelta trace.Time `json:"predicted_wait_delta"`
	MeasuredWaitDelta  trace.Time `json:"measured_wait_delta"`
	// ReplayEnergyJ is the flipped run's total energy.
	ReplayEnergyJ float64 `json:"replay_energy_j"`
	// Matches reports whether measurement and attribution agree.
	Matches bool `json:"matches"`
}

// Result is one executed hypothesis.
type Result struct {
	Spec      *Spec          `json:"spec"`
	Candidate *sim.AppResult `json:"candidate"`
	Baseline  *sim.AppResult `json:"baseline"`
	// Decisions is the number of shutdown decisions the candidate run
	// evaluated (one per disk access).
	Decisions int `json:"decisions"`
	// Metrics holds the full metric registry, sorted by name.
	Metrics []Metric `json:"metrics"`
	// Criteria holds each spec criterion with its actual value.
	Criteria []CriterionResult `json:"criteria"`
	// Attribution ranks the candidate's decisions by the energy their
	// inversion would save (most negative FlipDelta first): the
	// "worst" decisions of the run.
	Attribution []trace.DecisionRecord `json:"attribution"`
	// Counterfactual is the flip replay, when the spec requested one.
	Counterfactual *CounterfactualResult `json:"counterfactual,omitempty"`
	// Supported reports the verdict: every criterion passed and, if a
	// counterfactual was requested, its measurement matched the
	// attribution.
	Supported bool `json:"supported"`
}

// Run executes the spec: candidate run with decision tracing, baseline
// run, metric evaluation, attribution ranking, and — if requested — the
// counterfactual flip replay. The spec must be valid (Parse validates).
func Run(spec *Spec) (*Result, error) {
	cfg := sim.DefaultConfig()
	if spec.Device != "" {
		dev, ok := DeviceByName(spec.Device)
		if !ok {
			return nil, fmt.Errorf("hypothesis: unknown device %q", spec.Device)
		}
		cfg.Disk = dev
	}
	suite, err := experiments.NewSuite(spec.seed(), cfg)
	if err != nil {
		return nil, err
	}
	suite.SetScale(spec.scale())
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	app, ok := workload.ByName(spec.App)
	if !ok {
		return nil, fmt.Errorf("hypothesis: unknown app %q", spec.App)
	}
	candPol, ok := suite.PolicyByName(spec.Candidate)
	if !ok {
		return nil, fmt.Errorf("hypothesis: unknown candidate policy %q", spec.Candidate)
	}
	basePol, ok := suite.PolicyByName(spec.Baseline)
	if !ok {
		return nil, fmt.Errorf("hypothesis: unknown baseline policy %q", spec.Baseline)
	}

	var log trace.DecisionLog
	cand, err := runner.RunSourceTraced(suite.SourceFor(app), candPol, sim.TraceOptions{Sink: &log})
	if err != nil {
		return nil, fmt.Errorf("hypothesis: candidate run: %w", err)
	}
	base, err := runner.RunSource(suite.SourceFor(app), basePol)
	if err != nil {
		return nil, fmt.Errorf("hypothesis: baseline run: %w", err)
	}

	res := &Result{
		Spec:      spec,
		Candidate: cand,
		Baseline:  base,
		Decisions: len(log.Records),
		Metrics:   computeMetrics(cand, base),
	}
	res.Supported = true
	for _, c := range spec.Criteria {
		actual, ok := metricValue(res.Metrics, c.Metric)
		if !ok {
			return nil, fmt.Errorf("hypothesis: unknown metric %q", c.Metric)
		}
		cr := CriterionResult{Criterion: c, Actual: actual, Pass: c.evaluate(actual)}
		if !cr.Pass {
			res.Supported = false
		}
		res.Criteria = append(res.Criteria, cr)
	}

	res.Attribution = rankDecisions(log.Records, topN(spec))
	if spec.Counterfactual != nil {
		cf, err := replayFlip(runner, suite, app, candPol, spec, cand, log.Records)
		if err != nil {
			return nil, err
		}
		res.Counterfactual = cf
		if !cf.Matches {
			res.Supported = false
		}
	}
	return res, nil
}

// topN returns the spec's attribution-table size.
func topN(spec *Spec) int {
	if cf := spec.Counterfactual; cf != nil && cf.TopN > 0 {
		return cf.TopN
	}
	return defaultTopN
}

// rankDecisions returns the n decisions whose inversion saves the most
// energy: FlipDelta ascending, Index breaking ties for determinism.
func rankDecisions(recs []trace.DecisionRecord, n int) []trace.DecisionRecord {
	ranked := append([]trace.DecisionRecord(nil), recs...)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].FlipDelta != ranked[j].FlipDelta {
			return ranked[i].FlipDelta < ranked[j].FlipDelta
		}
		return ranked[i].Index < ranked[j].Index
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}

// replayFlip re-runs the candidate with the selected decision inverted
// and compares the measured energy/latency change with the attribution.
func replayFlip(runner *sim.Runner, suite *experiments.Suite, app *workload.App,
	pol sim.Policy, spec *Spec, cand *sim.AppResult, recs []trace.DecisionRecord) (*CounterfactualResult, error) {

	if len(recs) == 0 {
		return nil, fmt.Errorf("hypothesis: counterfactual requested but the run made no decisions")
	}
	var target trace.DecisionRecord
	switch spec.Counterfactual.Flip {
	case "worst":
		target = rankDecisions(recs, 1)[0]
	case "index":
		idx := spec.Counterfactual.Index
		if idx >= int64(len(recs)) {
			return nil, fmt.Errorf("hypothesis: counterfactual index %d out of range (run made %d decisions)", idx, len(recs))
		}
		target = recs[idx]
	default:
		return nil, fmt.Errorf("hypothesis: counterfactual flip %q", spec.Counterfactual.Flip)
	}

	flipped, err := runner.RunSourceTraced(suite.SourceFor(app), pol, sim.TraceOptions{
		Flip: func(k int64, shutdown bool, pc trace.PC) bool { return k == target.Index },
	})
	if err != nil {
		return nil, fmt.Errorf("hypothesis: counterfactual replay: %w", err)
	}
	cf := &CounterfactualResult{
		Record:               target,
		PredictedEnergyDelta: target.FlipDelta,
		MeasuredEnergyDelta:  flipped.Energy.Total() - cand.Energy.Total(),
		PredictedWaitDelta:   target.FlipWait,
		MeasuredWaitDelta:    flipped.WaitTime - cand.WaitTime,
		ReplayEnergyJ:        flipped.Energy.Total(),
	}
	// The deltas differ only by float summation order across the run's
	// accumulation, so the agreement tolerance scales with the total.
	tol := 1e-9 * math.Max(1, cand.Energy.Total())
	cf.Matches = math.Abs(cf.MeasuredEnergyDelta-cf.PredictedEnergyDelta) <= tol &&
		cf.MeasuredWaitDelta == cf.PredictedWaitDelta
	return cf, nil
}

package fleet

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseMix parses an application-mix string of the form
// "app:weight,app:weight" into Config.Mix shares. Weights default to 1
// when omitted ("mozilla,xemacs" is two equal shares); blanks around
// commas and colons are ignored. The empty string returns nil — the
// fleet's default mix (all registered applications, equally weighted).
// Both the pcapsim -mix flag and pcapd job specs parse through here, so
// the two front ends accept the identical syntax.
func ParseMix(s string) ([]AppShare, error) {
	var mix []AppShare
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, ":")
		share := AppShare{Name: strings.TrimSpace(name), Weight: 1}
		if hasWeight {
			w, err := strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
			if err != nil {
				return nil, fmt.Errorf("fleet: bad weight in mix entry %q: %w", part, err)
			}
			share.Weight = w
		}
		mix = append(mix, share)
	}
	return mix, nil
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestGoldenSequence(t *testing.T) {
	// Pins the generator's output: experiment reproducibility depends on
	// this never changing.
	s := New(20040214)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	s2 := New(20040214)
	want := []uint64{s2.Uint64(), s2.Uint64(), s2.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("golden mismatch at %d", i)
		}
	}
	// Different seeds must diverge immediately.
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("seeds 1 and 2 produced the same first draw")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different labels coincide")
	}
	// Splitting is a pure function of parent state and label.
	p1 := New(7)
	p2 := New(7)
	if p1.Split(9).Uint64() != p2.Split(9).Uint64() {
		t.Fatal("same-label splits of identical parents diverge")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestIntn(t *testing.T) {
	s := New(4)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never drawn in 1000 tries", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Range(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Range out of bounds: %g", v)
		}
	}
}

func TestBool(t *testing.T) {
	s := New(6)
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if s.Bool(0.25) {
			n++
		}
	}
	frac := float64(n) / trials
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("Bool(0.25) frequency %.3f", frac)
	}
}

func TestExpMean(t *testing.T) {
	s := New(8)
	var sum float64
	const trials = 50000
	for i := 0; i < trials; i++ {
		v := s.Exp(3.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %g", v)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("Exp mean %.3f, want ~3.0", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(9)
	var sum, sumSq float64
	const trials = 50000
	for i := 0; i < trials; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Normal mean %.3f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("Normal stddev %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestPick(t *testing.T) {
	s := New(10)
	weights := []float64{0, 1, 3, 0, 4}
	counts := make([]int, len(weights))
	const trials = 80000
	for i := 0; i < trials; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight entries picked: %v", counts)
	}
	if math.Abs(float64(counts[2])/float64(counts[1])-3) > 0.3 {
		t.Fatalf("weight ratio off: %v", counts)
	}
}

func TestPickDegenerate(t *testing.T) {
	s := New(11)
	if got := s.Pick([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("all-zero weights: got %d, want 0", got)
	}
	if got := s.Pick([]float64{-1, -2}); got != 0 {
		t.Fatalf("negative weights: got %d, want 0", got)
	}
	if got := s.Pick([]float64{5}); got != 0 {
		t.Fatalf("single weight: got %d, want 0", got)
	}
}

func TestQuickProperties(t *testing.T) {
	// Same seed ⇒ same k-th draw, for arbitrary seeds and positions.
	sameDraws := func(seed uint64, k uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(k); i++ {
			a.Uint64()
			b.Uint64()
		}
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(sameDraws, nil); err != nil {
		t.Error(err)
	}
	// Range stays within bounds for arbitrary bounds.
	inRange := func(seed uint64, lo float64, span uint16) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.Abs(lo) > 1e12 {
			return true // ignore absurd inputs
		}
		hi := lo + float64(span) + 1
		v := New(seed).Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Error(err)
	}
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format
//
//	magic  "PCTR" (4 bytes)
//	version uint16 (little endian) = 1
//	app     uvarint length + bytes
//	exec    uvarint
//	count   uvarint (number of events)
//	events  delta-encoded records:
//	    dt     uvarint (time delta in µs from previous event)
//	    pid    uvarint
//	    kind   byte
//	    KindIO:   access byte, pc uvarint, fd varint, block varint, size varint
//	    KindFork: child uvarint
//	    KindExit: (nothing)
//
// Delta timing plus varints keeps multi-hundred-thousand-event traces
// compact without pulling in any non-stdlib dependency.

const (
	binaryMagic   = "PCTR"
	binaryVersion = 1
)

// ErrBadFormat is returned when decoding input that is not a valid binary
// trace.
var ErrBadFormat = errors.New("trace: bad format")

// Encoder writes one execution in the binary trace format, one event per
// Write call, so producers stream events straight to disk instead of
// materializing a Trace first. The event count is part of the header and
// must therefore be known up front; per-execution producers (the workload
// builder, tracegen) know it from their reorder buffer. Output is
// byte-identical to WriteBinary over the same events.
type Encoder struct {
	bw      *bufio.Writer
	count   int
	written int
	prev    Time
}

// NewEncoder writes the binary header for an execution of count events
// and returns an encoder for its event stream. I/O errors are sticky in
// the buffered writer and surface at Close.
func NewEncoder(w io.Writer, app string, exec int, count int) (*Encoder, error) {
	if count < 0 {
		return nil, fmt.Errorf("trace: negative event count %d", count)
	}
	if exec < 0 {
		return nil, fmt.Errorf("trace: negative execution index %d", exec)
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryMagic) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
	var v2 [2]byte
	binary.LittleEndian.PutUint16(v2[:], binaryVersion)
	bw.Write(v2[:]) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
	writeUvarint(bw, uint64(len(app)))
	bw.WriteString(app) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
	writeUvarint(bw, uint64(exec))
	writeUvarint(bw, uint64(count))
	return &Encoder{bw: bw, count: count}, nil
}

// Write encodes the next event. Events must arrive in non-decreasing time
// order and must not exceed the declared count.
func (enc *Encoder) Write(e Event) error {
	i := enc.written
	if i >= enc.count {
		return fmt.Errorf("trace: event %d exceeds declared count %d", i, enc.count)
	}
	if e.Time < enc.prev {
		return fmt.Errorf("trace: event %d out of order; call SortStable before encoding", i)
	}
	writeUvarint(enc.bw, uint64(e.Time-enc.prev))
	enc.prev = e.Time
	writeUvarint(enc.bw, uint64(e.Pid))
	enc.bw.WriteByte(byte(e.Kind)) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
	switch e.Kind {
	case KindIO:
		enc.bw.WriteByte(byte(e.Access)) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at Close's Flush
		writeUvarint(enc.bw, uint64(e.PC))
		writeVarint(enc.bw, int64(e.FD))
		writeVarint(enc.bw, e.Block)
		writeVarint(enc.bw, int64(e.Size))
	case KindFork:
		writeUvarint(enc.bw, uint64(e.Child))
	case KindExit:
	default:
		return fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
	}
	enc.written++
	return nil
}

// Close flushes the encoder, verifying every declared event was written.
func (enc *Encoder) Close() error {
	if enc.written != enc.count {
		return fmt.Errorf("trace: wrote %d of %d declared events", enc.written, enc.count)
	}
	return enc.bw.Flush()
}

// WriteBinary encodes the trace to w in the binary trace format.
func WriteBinary(w io.Writer, t *Trace) error {
	enc, err := NewEncoder(w, t.App, t.Execution, len(t.Events))
	if err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := enc.Write(e); err != nil {
			return err
		}
	}
	return enc.Close()
}

// Decoder is a streaming reader of the binary trace format: a Source over
// one or more consecutive binary traces (executions) on r, decoding one
// event per Next call so multi-gigabyte files replay in constant memory.
// Reset rewinds when r is an io.Seeker.
type Decoder struct {
	r     io.Reader
	seek  io.Seeker
	br    *bufio.Reader
	err   error
	ended bool // clean end of stream reached

	app    string
	exec   int
	count  uint64 // events declared by the current execution's header
	read   uint64 // events decoded from the current execution
	inExec bool
	prev   Time
}

// NewDecoder returns a streaming decoder over r. If r is also an
// io.Seeker (os.File, bytes.Reader), the decoder supports Reset.
func NewDecoder(r io.Reader) *Decoder {
	seek, _ := r.(io.Seeker)
	return &Decoder{r: r, seek: seek, br: bufio.NewReader(r)}
}

// Count returns the number of events the current execution's header
// declared — the streaming counterpart of len(t.Events).
func (d *Decoder) Count() uint64 { return d.count }

// NextExec implements Source: it reads the next execution's header,
// draining any undecoded events of the current one first. ok=false with a
// nil Err means the stream ended cleanly at an execution boundary.
func (d *Decoder) NextExec() (string, int, bool) {
	if d.err != nil || d.ended {
		return "", 0, false
	}
	for d.inExec { // discard the rest of the current execution
		if _, ok := d.Next(); !ok {
			if d.err != nil {
				return "", 0, false
			}
		}
	}
	var magic [4]byte
	if _, err := io.ReadFull(d.br, magic[:]); err != nil {
		if err == io.EOF {
			d.ended = true // clean boundary: no more executions
		} else {
			d.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		return "", 0, false
	}
	if string(magic[:]) != binaryMagic {
		d.err = fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic[:])
		return "", 0, false
	}
	var v2 [2]byte
	if _, err := io.ReadFull(d.br, v2[:]); err != nil {
		d.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return "", 0, false
	}
	if v := binary.LittleEndian.Uint16(v2[:]); v != binaryVersion {
		d.err = fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
		return "", 0, false
	}
	nameLen, err := binary.ReadUvarint(d.br)
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return "", 0, false
	}
	if nameLen > 1<<20 {
		d.err = fmt.Errorf("%w: app name too long (%d)", ErrBadFormat, nameLen)
		return "", 0, false
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(d.br, name); err != nil {
		d.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return "", 0, false
	}
	exec, err := binary.ReadUvarint(d.br)
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return "", 0, false
	}
	count, err := binary.ReadUvarint(d.br)
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return "", 0, false
	}
	d.app = string(name)
	d.exec = int(exec)
	d.count = count
	d.read = 0
	d.prev = 0
	d.inExec = count > 0
	return d.app, d.exec, true
}

// Next implements Source: it decodes the next event of the current
// execution.
func (d *Decoder) Next() (Event, bool) {
	if d.err != nil || !d.inExec {
		return Event{}, false
	}
	i := d.read
	fail := func(err error) (Event, bool) {
		d.err = fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
		d.inExec = false
		return Event{}, false
	}
	dt, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fail(err)
	}
	pid, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fail(err)
	}
	kindByte, err := d.br.ReadByte()
	if err != nil {
		return fail(err)
	}
	e := Event{Time: d.prev + Time(dt), Pid: PID(pid), Kind: Kind(kindByte)}
	d.prev = e.Time
	switch e.Kind {
	case KindIO:
		accessByte, err := d.br.ReadByte()
		if err != nil {
			return fail(err)
		}
		e.Access = Access(accessByte)
		pc, err := binary.ReadUvarint(d.br)
		if err != nil {
			return fail(err)
		}
		e.PC = PC(pc)
		fd, err := binary.ReadVarint(d.br)
		if err != nil {
			return fail(err)
		}
		e.FD = FD(fd)
		block, err := binary.ReadVarint(d.br)
		if err != nil {
			return fail(err)
		}
		e.Block = block
		size, err := binary.ReadVarint(d.br)
		if err != nil {
			return fail(err)
		}
		e.Size = int32(size)
	case KindFork:
		child, err := binary.ReadUvarint(d.br)
		if err != nil {
			return fail(err)
		}
		e.Child = PID(child)
	case KindExit:
	default:
		d.err = fmt.Errorf("%w: event %d has unknown kind %d", ErrBadFormat, i, kindByte)
		d.inExec = false
		return Event{}, false
	}
	d.read++
	if d.read >= d.count {
		d.inExec = false
	}
	return e, true
}

// Err implements Source.
func (d *Decoder) Err() error { return d.err }

// Reset implements Source, rewinding seekable inputs to the start.
func (d *Decoder) Reset() error {
	if d.seek == nil {
		return fmt.Errorf("trace: decoder input is not seekable")
	}
	if _, err := d.seek.Seek(0, io.SeekStart); err != nil {
		return err
	}
	d.br.Reset(d.r)
	d.err = nil
	d.ended = false
	d.inExec = false
	d.count, d.read = 0, 0
	return nil
}

// ReadBinary decodes a trace previously encoded with WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	d := NewDecoder(r)
	app, exec, ok := d.NextExec()
	if !ok {
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, io.EOF)
	}
	t := &Trace{App: app, Execution: exec}
	if count := d.Count(); count < 1<<20 {
		t.Events = make([]Event, 0, count)
	}
	for {
		e, ok := d.Next()
		if !ok {
			break
		}
		t.Events = append(t.Events, e)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at the encoder's Flush
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n]) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at the encoder's Flush
}

// WriteText encodes the trace in a line-oriented, human-readable format:
//
//	# pcap-trace v1
//	# app <name> exec <n>
//	<time-µs> io <pid> <access> pc=0x<hex> fd=<n> block=<n> size=<n>
//	<time-µs> fork <pid> child=<pid>
//	<time-µs> exit <pid>
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# pcap-trace v1\n# app %s exec %d\n", t.App, t.Execution); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a trace in the text format written by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			// "# app <name> exec <n>"
			if len(fields) >= 5 && fields[1] == "app" && fields[3] == "exec" {
				t.App = fields[2]
				exec, err := strconv.Atoi(fields[4])
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad exec: %v", line, err)
				}
				t.Execution = exec
			}
			continue
		}
		e, err := parseTextEvent(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseTextEvent(text string) (Event, error) {
	fields := strings.Fields(text)
	if len(fields) < 3 {
		return Event{}, fmt.Errorf("too few fields in %q", text)
	}
	us, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad time: %v", err)
	}
	pid, err := strconv.ParseInt(fields[2], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("bad pid: %v", err)
	}
	e := Event{Time: Time(us), Pid: PID(pid)}
	switch fields[1] {
	case "fork":
		e.Kind = KindFork
		if len(fields) < 4 {
			return Event{}, fmt.Errorf("fork missing child in %q", text)
		}
		child, err := parseKV(fields[3], "child")
		if err != nil {
			return Event{}, err
		}
		e.Child = PID(child)
	case "exit":
		e.Kind = KindExit
	case "io":
		e.Kind = KindIO
		if len(fields) < 8 {
			return Event{}, fmt.Errorf("io event has too few fields in %q", text)
		}
		switch fields[3] {
		case "read":
			e.Access = AccessRead
		case "write":
			e.Access = AccessWrite
		case "open":
			e.Access = AccessOpen
		case "close":
			e.Access = AccessClose
		default:
			return Event{}, fmt.Errorf("unknown access %q", fields[3])
		}
		pc, err := parseKV(fields[4], "pc")
		if err != nil {
			return Event{}, err
		}
		e.PC = PC(pc)
		fd, err := parseKV(fields[5], "fd")
		if err != nil {
			return Event{}, err
		}
		e.FD = FD(fd)
		block, err := parseKV(fields[6], "block")
		if err != nil {
			return Event{}, err
		}
		e.Block = block
		size, err := parseKV(fields[7], "size")
		if err != nil {
			return Event{}, err
		}
		e.Size = int32(size)
	default:
		return Event{}, fmt.Errorf("unknown event kind %q", fields[1])
	}
	return e, nil
}

// TextDecoder is a streaming reader of the text trace format: a Source
// over one or more concatenated text traces, one line per event, in
// constant memory. An "# app <name> exec <n>" header starts a new
// execution; events before any header belong to an unnamed execution 0.
// Reset rewinds when r is an io.Seeker.
type TextDecoder struct {
	r    io.Reader
	seek io.Seeker
	sc   *bufio.Scanner
	line int
	err  error

	app, nextApp   string
	exec, nextExec int
	haveHeader     bool  // an unconsumed header was seen
	pending        Event // parsed but undelivered event
	havePending    bool
	inExec         bool
}

// NewTextDecoder returns a streaming decoder over the text format.
func NewTextDecoder(r io.Reader) *TextDecoder {
	seek, _ := r.(io.Seeker)
	d := &TextDecoder{r: r, seek: seek}
	d.newScanner()
	return d
}

func (d *TextDecoder) newScanner() {
	d.sc = bufio.NewScanner(d.r)
	d.sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
}

// scanLine advances to the next meaningful line: it returns an event to
// deliver, records headers, and reports the end of input.
// kind: 0 = event (in e), 1 = header, 2 = end of input.
func (d *TextDecoder) scanLine() (e Event, kind int) {
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 5 && fields[1] == "app" && fields[3] == "exec" {
				exec, err := strconv.Atoi(fields[4])
				if err != nil {
					d.err = fmt.Errorf("trace: line %d: bad exec: %v", d.line, err)
					return Event{}, 2
				}
				d.nextApp, d.nextExec = fields[2], exec
				d.haveHeader = true
				return Event{}, 1
			}
			continue
		}
		ev, err := parseTextEvent(text)
		if err != nil {
			d.err = fmt.Errorf("trace: line %d: %v", d.line, err)
			return Event{}, 2
		}
		return ev, 0
	}
	if err := d.sc.Err(); err != nil && d.err == nil {
		d.err = err
	}
	return Event{}, 2
}

// NextExec implements Source.
func (d *TextDecoder) NextExec() (string, int, bool) {
	if d.err != nil {
		return "", 0, false
	}
	for d.inExec { // discard the rest of the current execution
		if _, ok := d.Next(); !ok && d.err != nil {
			return "", 0, false
		}
	}
	for {
		if d.havePending || d.haveHeader {
			// A stashed event starts the next execution under the most
			// recent header; a bare header starts an (empty-so-far) one.
			d.app, d.exec = d.nextApp, d.nextExec
			d.haveHeader = false
			d.inExec = true
			return d.app, d.exec, true
		}
		e, kind := d.scanLine()
		switch kind {
		case 0:
			d.pending, d.havePending = e, true
		case 1:
			// header recorded; loop to start the execution
		case 2:
			return "", 0, false
		}
	}
}

// Next implements Source.
func (d *TextDecoder) Next() (Event, bool) {
	if d.err != nil || !d.inExec {
		return Event{}, false
	}
	if d.havePending {
		d.havePending = false
		return d.pending, true
	}
	e, kind := d.scanLine()
	switch kind {
	case 0:
		return e, true
	case 1:
		d.inExec = false // a new header ends the current execution
		return Event{}, false
	default:
		d.inExec = false
		return Event{}, false
	}
}

// Err implements Source.
func (d *TextDecoder) Err() error { return d.err }

// Reset implements Source, rewinding seekable inputs to the start.
func (d *TextDecoder) Reset() error {
	if d.seek == nil {
		return fmt.Errorf("trace: decoder input is not seekable")
	}
	if _, err := d.seek.Seek(0, io.SeekStart); err != nil {
		return err
	}
	d.newScanner()
	d.line = 0
	d.err = nil
	d.app, d.nextApp = "", ""
	d.exec, d.nextExec = 0, 0
	d.haveHeader, d.havePending, d.inExec = false, false, false
	return nil
}

func parseKV(field, key string) (int64, error) {
	prefix := key + "="
	if !strings.HasPrefix(field, prefix) {
		return 0, fmt.Errorf("expected %s=..., got %q", key, field)
	}
	val := field[len(prefix):]
	if strings.HasPrefix(val, "0x") || strings.HasPrefix(val, "0X") {
		v, err := strconv.ParseUint(val[2:], 16, 64)
		return int64(v), err
	}
	return strconv.ParseInt(val, 10, 64)
}

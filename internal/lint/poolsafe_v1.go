package lint

// poolSafeV1 is PR 5's structural poolsafe scan, retained unregistered
// as the reference implementation for the v2 regression test: the
// statement-order walk silently drops goto paths (scanStmt returns at
// BranchStmt without following the jump), so a leak reached only
// through `goto` is provably invisible to it while the CFG dataflow in
// poolsafe.go reports it. Nothing outside poolsafe_v1_test.go runs it.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var poolSafeV1 = &Analyzer{
	Name: "poolsafe",
	Doc:  "structural PR 5 poolsafe (regression reference only)",
	Run:  runPoolSafeV1,
}

func runPoolSafeV1(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A designated transfer point is audited by hand; its Get may
			// flow to the caller.
			if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil && pass.OwnerTransfer(obj) {
				continue
			}
			checkPoolGetsV1(pass, fd)
		}
	}
}

// checkPoolGetsV1 finds every sync.Pool.Get call under fd and vets its
// binding, escapes, and Put coverage.
func checkPoolGetsV1(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok && isPoolMethod(pass.Pkg.Info, call, "Get") {
			checkGetSiteV1(pass, call, append([]ast.Node(nil), stack...))
		}
		return true
	})
}

// checkGetSiteV1 classifies how one Get call's result is used. stack runs
// from the enclosing FuncDecl down to the call itself.
func checkGetSiteV1(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	// Walk up through the type assertion / parens wrapping the call.
	i := len(stack) - 2
	for i >= 0 {
		switch stack[i].(type) {
		case *ast.TypeAssertExpr, *ast.ParenExpr:
			i--
			continue
		}
		break
	}
	if i < 0 {
		return
	}
	switch parent := stack[i].(type) {
	case *ast.AssignStmt:
		checkBoundGetV1(pass, call, parent, stack[:i])
	case *ast.ReturnStmt:
		pass.Reportf(call.Pos(), "sync.Pool value is returned directly; only an //pcaplint:owner-transfer function may hand a pooled value to its caller")
	case *ast.CallExpr:
		if fn := calleeFunc(pass.Pkg.Info, parent); fn != nil && pass.OwnerTransfer(fn) {
			return
		}
		pass.Reportf(call.Pos(), "sync.Pool value is passed straight to a call; bind it to a variable so its Put is checkable")
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "sync.Pool value is discarded; bind it and Put it back")
	default:
		pass.Reportf(call.Pos(), "sync.Pool value is used in an unanalyzed position; bind it with x := pool.Get().(*T)")
	}
}

// checkBoundGetV1 handles `x := pool.Get().(*T)` (plain or comma-ok, at
// block level or as an if statement's init) — the supported binding
// shapes. It then runs the escape scan and the Put path scan over the
// variable's scope.
func checkBoundGetV1(pass *Pass, call *ast.CallExpr, assign *ast.AssignStmt, outer []ast.Node) {
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		pass.Reportf(call.Pos(), "sync.Pool value is assigned to a non-variable; bind it with x := pool.Get().(*T)")
		return
	}
	if lhs.Name == "_" {
		pass.Reportf(call.Pos(), "sync.Pool value is discarded; bind it and Put it back")
		return
	}
	info := pass.Pkg.Info
	obj := info.Defs[lhs]
	if obj == nil {
		obj = info.Uses[lhs]
	}
	if obj == nil {
		return
	}
	c := &poolCheckV1{pass: pass, obj: obj, get: call}

	// Scope: statements the value lives through.
	var scope []ast.Stmt
	declared := assign.Tok == token.DEFINE
	if len(outer) > 0 {
		if ifStmt, ok := outer[len(outer)-1].(*ast.IfStmt); ok && ifStmt.Init == assign {
			// The comma-ok idiom: if x, ok := pool.Get().(*T); ok { ... }.
			// The value only exists on the ok branch.
			scope = ifStmt.Body.List
			c.run(scope, declared)
			return
		}
	}
	block := enclosingBlockV1(outer)
	if block == nil {
		pass.Reportf(call.Pos(), "sync.Pool value is bound in an unanalyzed position; bind it at statement level")
		return
	}
	for idx, s := range block.List {
		if s == assign {
			scope = block.List[idx+1:]
			break
		}
	}
	c.run(scope, declared)
}

func enclosingBlockV1(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// poolCheckV1 scans the scope of one bound pool value.
type poolCheckV1 struct {
	pass *Pass
	obj  types.Object
	get  *ast.CallExpr
	done bool // one finding per Get site
}

func (c *poolCheckV1) violate(pos token.Pos, format string, args ...any) {
	if c.done {
		return
	}
	c.done = true
	c.pass.Reportf(pos, format, args...)
}

// run performs the escape scan, then the Put path scan. declared is
// false for a plain `=` rebinding of an outer variable, where the value
// outlives the scanned block and the end-of-scope obligation cannot be
// checked locally (escapes and early returns still are).
func (c *poolCheckV1) run(scope []ast.Stmt, declared bool) {
	for _, s := range scope {
		c.escapes(s)
	}
	if c.done {
		return
	}
	fallsThrough, satisfied := c.scan(scope, false)
	if c.done {
		return
	}
	if fallsThrough && !satisfied && declared {
		c.violate(c.get.Pos(), "sync.Pool value goes out of scope without Put; Put it on every non-panic path or hand it to an //pcaplint:owner-transfer function")
	}
}

// escapes reports stores that would give the pooled value a second
// owner.
func (c *poolCheckV1) escapes(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		if c.done {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			// Closures are outside the model; defer func(){Put(x)}() is
			// still recognized by the path scan's subtree search.
			return false
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !c.isObj(rhs) || i >= len(st.Lhs) {
					continue
				}
				switch lhs := ast.Unparen(st.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					c.violate(st.Pos(), "sync.Pool value is stored into field %s; pooled values must stay function-local (DESIGN.md §10)", types.ExprString(lhs))
				case *ast.IndexExpr:
					c.violate(st.Pos(), "sync.Pool value is stored into an element of %s; pooled values must stay function-local (DESIGN.md §10)", types.ExprString(lhs.X))
				case *ast.Ident:
					if obj := c.pass.Pkg.Info.Uses[lhs]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
						c.violate(st.Pos(), "sync.Pool value is stored into package variable %s; pooled values must stay function-local (DESIGN.md §10)", lhs.Name)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if c.mentionsObj(res) {
					c.violate(st.Pos(), "sync.Pool value is returned; only an //pcaplint:owner-transfer function may hand a pooled value to its caller")
					return false
				}
			}
		case *ast.SendStmt:
			if c.mentionsObj(st.Value) {
				c.violate(st.Pos(), "sync.Pool value is sent on a channel; pooled values must stay function-local (DESIGN.md §10)")
			}
		case *ast.GoStmt:
			if c.mentionsObj(st.Call) {
				c.violate(st.Pos(), "sync.Pool value is captured by a go statement; the goroutine may outlive the Put")
			}
		}
		return !c.done
	})
}

// scan walks a statement list in order, tracking whether the Put
// obligation is satisfied. It returns whether control can fall off the
// end of the list and the obligation state if it does.
func (c *poolCheckV1) scan(stmts []ast.Stmt, sat bool) (fallsThrough, satAfter bool) {
	for _, s := range stmts {
		ft, after := c.scanStmt(s, sat)
		if !ft {
			return false, after
		}
		sat = after
	}
	return true, sat
}

func (c *poolCheckV1) scanStmt(s ast.Stmt, sat bool) (fallsThrough, satAfter bool) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		if !sat {
			c.violate(st.Pos(), "sync.Pool value does not reach Put before this return; Put it on every non-panic path or hand it to an //pcaplint:owner-transfer function")
		}
		return false, sat
	case *ast.BlockStmt:
		return c.scan(st.List, sat)
	case *ast.IfStmt:
		if st.Init != nil {
			_, sat = c.scanStmt(st.Init, sat)
		}
		thenFT, thenSat := c.scan(st.Body.List, sat)
		elseFT, elseSat := true, sat
		if st.Else != nil {
			elseFT, elseSat = c.scanStmt(st.Else, sat)
		}
		switch {
		case !thenFT && !elseFT:
			return false, sat
		case !thenFT:
			return true, elseSat
		case !elseFT:
			return true, thenSat
		default:
			return true, thenSat && elseSat
		}
	case *ast.ForStmt:
		// The loop may run zero times: Put inside it cannot satisfy the
		// obligation after it, but violations inside are still reported.
		c.scan(st.Body.List, sat)
		return true, sat
	case *ast.RangeStmt:
		c.scan(st.Body.List, sat)
		return true, sat
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Conservative: scan case bodies for violations; a Put inside a
		// case does not satisfy the obligation afterwards.
		ast.Inspect(st, func(n ast.Node) bool {
			if clause, ok := n.(*ast.CaseClause); ok {
				c.scan(clause.Body, sat)
				return false
			}
			if clause, ok := n.(*ast.CommClause); ok {
				c.scan(clause.Body, sat)
				return false
			}
			return true
		})
		return true, sat
	case *ast.LabeledStmt:
		return c.scanStmt(st.Stmt, sat)
	case *ast.BranchStmt:
		// break/continue/goto leave this statement sequence; where they
		// rejoin is beyond the structural model, so neither report nor
		// satisfy.
		return false, sat
	case *ast.ExprStmt:
		if isTerminalCall(c.pass.Pkg.Info, st.X) {
			return false, sat
		}
		return true, sat || c.consumes(st)
	default:
		return true, sat || c.consumes(st)
	}
}

// consumes reports whether the statement's subtree puts the value back
// (pool.Put(x), pool.Put(&x), defer pool.Put(x), including inside a
// deferred closure) or hands it to an //pcaplint:owner-transfer
// function.
func (c *poolCheckV1) consumes(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		transfer := false
		if isPoolMethod(c.pass.Pkg.Info, call, "Put") {
			transfer = true
		} else if fn := calleeFunc(c.pass.Pkg.Info, call); fn != nil && c.pass.OwnerTransfer(fn) {
			transfer = true
		}
		if !transfer {
			return true
		}
		for _, arg := range call.Args {
			a := ast.Unparen(arg)
			if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
				a = ast.Unparen(u.X)
			}
			if c.isObj(a) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isObj reports whether e is exactly the tracked variable.
func (c *poolCheckV1) isObj(e ast.Expr) bool {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	return ok && c.pass.Pkg.Info.Uses[ident] == c.obj
}

// mentionsObj reports whether the tracked variable appears anywhere in
// e.
func (c *poolCheckV1) mentionsObj(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && c.pass.Pkg.Info.Uses[ident] == c.obj {
			found = true
		}
		return !found
	})
	return found
}

package sim

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

// raceDetectorEnabled is flipped to true by race_test.go when the race
// detector is compiled in (see TestDecisionRecordingDisabledAllocs).
var raceDetectorEnabled bool

// TestTracedZeroOptionsMatchesRunSource: a traced run with zero options
// must be deeply equal to a plain run — they are the same code path. The
// full app × policy matrix version of this lives in internal/experiments.
func TestTracedZeroOptionsMatchesRunSource(t *testing.T) {
	r := mustRunner(t)
	tr := handTrace(0, 30, 42, 49, 51)
	for _, pol := range []Policy{basePolicy(), tpPolicy(10 * trace.Second), idealPolicy(r.Config().Disk.Breakeven)} {
		want, err := r.RunApp([]*trace.Trace{tr}, pol)
		if err != nil {
			t.Fatalf("%s: RunApp: %v", pol.Name, err)
		}
		got, err := r.RunSourceTraced(trace.NewSliceSource(tr), pol, TraceOptions{})
		if err != nil {
			t.Fatalf("%s: RunSourceTraced: %v", pol.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: zero-option traced run differs:\n got %+v\nwant %+v", pol.Name, got, want)
		}
	}
}

// TestDecisionRecordInvariants runs a traced timeout simulation over a
// hand-made trace and checks the structural contract of the records:
// dense indices, period bounds matching the access stream, and the
// energy-delta identities that make attribution sound.
func TestDecisionRecordInvariants(t *testing.T) {
	r := mustRunner(t)
	tr := handTrace(0, 30, 42, 49, 51)
	var log trace.DecisionLog
	res, err := r.RunSourceTraced(trace.NewSliceSource(tr), tpPolicy(10*trace.Second), TraceOptions{Sink: &log})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != res.DiskAccesses {
		t.Fatalf("recorded %d decisions for %d disk accesses", len(log.Records), res.DiskAccesses)
	}
	shutdowns := 0
	for i, rec := range log.Records {
		if rec.Index != int64(i) {
			t.Fatalf("record %d has index %d", i, rec.Index)
		}
		if rec.Exec != 0 {
			t.Fatalf("record %d in execution %d", i, rec.Exec)
		}
		if rec.End < rec.Start {
			t.Fatalf("record %d: End %v before Start %v", i, rec.End, rec.Start)
		}
		if rec.Flipped() {
			t.Fatalf("record %d flagged flipped in a flip-free run", i)
		}
		if rec.Shutdown() {
			shutdowns++
			if rec.At < rec.Start || rec.At > rec.End {
				t.Fatalf("record %d: shutdown at %v outside [%v, %v]", i, rec.At, rec.Start, rec.End)
			}
			// Flipping a shutdown yields the keep-spinning outcome, so the
			// two deltas are exact negations (same two floats, same order).
			if rec.FlipDelta != -rec.EnergyDelta {
				t.Fatalf("record %d: FlipDelta %g != -EnergyDelta %g", i, rec.FlipDelta, rec.EnergyDelta)
			}
		} else {
			// A keep-spinning decision costs exactly the spinning baseline.
			if rec.EnergyDelta != 0 {
				t.Fatalf("record %d: keep-spinning EnergyDelta = %g", i, rec.EnergyDelta)
			}
			if rec.Wait != 0 {
				t.Fatalf("record %d: keep-spinning Wait = %v", i, rec.Wait)
			}
		}
	}
	if shutdowns != res.Cycles {
		t.Fatalf("%d shutdown records, result reports %d cycles", shutdowns, res.Cycles)
	}
	if !log.Records[len(log.Records)-1].Terminal() {
		t.Fatal("last record not flagged terminal")
	}
}

// TestFlipMatchesAttribution is the core counterfactual contract: re-run
// with decision k inverted, and the total-energy change must equal the
// FlipDelta recorded for k (up to float summation order), while the
// latency change equals FlipWait exactly (integer microseconds).
func TestFlipMatchesAttribution(t *testing.T) {
	r := mustRunner(t)
	tr := handTrace(0, 30, 42, 49, 51)
	pol := tpPolicy(10 * trace.Second)

	var log trace.DecisionLog
	base, err := r.RunSourceTraced(trace.NewSliceSource(tr), pol, TraceOptions{Sink: &log})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range log.Records {
		rec := rec
		var flippedLog trace.DecisionLog
		flip := func(k int64, shutdown bool, pc trace.PC) bool { return k == rec.Index }
		got, err := r.RunSourceTraced(trace.NewSliceSource(tr), pol, TraceOptions{Sink: &flippedLog, Flip: flip})
		if err != nil {
			t.Fatalf("flip %d: %v", rec.Index, err)
		}
		wantE := base.Energy.Total() + rec.FlipDelta
		if diff := math.Abs(got.Energy.Total() - wantE); diff > 1e-9*math.Max(1, wantE) {
			t.Errorf("flip %d: energy %.9f, attribution predicts %.9f (Δ %g)",
				rec.Index, got.Energy.Total(), wantE, diff)
		}
		if got.WaitTime-base.WaitTime != rec.FlipWait {
			t.Errorf("flip %d: wait delta %v, attribution predicts %v",
				rec.Index, got.WaitTime-base.WaitTime, rec.FlipWait)
		}
		fr := flippedLog.Records[rec.Index]
		if !fr.Flipped() {
			t.Errorf("flip %d: record not flagged flipped", rec.Index)
		}
		if fr.Shutdown() == rec.Shutdown() {
			t.Errorf("flip %d: shutdown flag did not invert", rec.Index)
		}
		// For a flipped keep-spinning decision the round trip is exact: the
		// synthetic shutdown's own flip is keep-spinning again. (A flipped
		// shutdown is not symmetric — its re-flip shuts down at the period
		// start, not at the original predictor's chosen instant.)
		if !rec.Shutdown() && fr.FlipDelta != -rec.FlipDelta {
			t.Errorf("flip %d: flipped record's FlipDelta %g, want %g", rec.Index, fr.FlipDelta, -rec.FlipDelta)
		}
	}
}

// TestFlipRoundTripsThroughCodec: a recorded decision stream survives the
// on-disk codec between the record and replay phases — the workflow the
// hypothesis harness uses.
func TestFlipRoundTripsThroughCodec(t *testing.T) {
	r := mustRunner(t)
	tr := handTrace(0, 30, 42, 49, 51)
	pol := tpPolicy(10 * trace.Second)

	var buf bytes.Buffer
	enc, err := trace.NewDecisionEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunSourceTraced(trace.NewSliceSource(tr), pol, TraceOptions{Sink: enc}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadDecisions(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var log trace.DecisionLog
	if _, err := r.RunSourceTraced(trace.NewSliceSource(tr), pol, TraceOptions{Sink: &log}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, log.Records) {
		t.Fatal("decoded decision stream differs from an in-memory re-recording")
	}
}

// TestDecisionRecordingDisabledAllocs: the traced entry point with zero
// options must not add a single allocation over the plain path — disabled
// recording is free. With a warmed sink it may add exactly the tracedRun
// frame. Mirrors TestBlockSourceSteadyStateAllocs' race-detector skip.
func TestDecisionRecordingDisabledAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; the non-race pass enforces the count")
	}
	r := mustRunner(t)
	var buf bytes.Buffer
	if err := trace.WriteColumnar(&buf, handTrace(0, 30, 42, 49, 51)); err != nil {
		t.Fatal(err)
	}
	src := trace.NewBlockSource(bytes.NewReader(buf.Bytes()))
	pol := basePolicy()
	run := func(opts *TraceOptions) {
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
		var err error
		if opts == nil {
			_, err = r.RunSource(src, pol)
		} else {
			_, err = r.RunSourceTraced(src, pol, *opts)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	run(nil) // warmup: pooled runState reaches its high-water mark
	plain := testing.AllocsPerRun(20, func() { run(nil) })
	zero := &TraceOptions{}
	disabled := testing.AllocsPerRun(20, func() { run(zero) })
	if disabled > plain+0.5 {
		t.Fatalf("disabled recording: %.2f allocs vs %.2f plain", disabled, plain)
	}

	var log trace.DecisionLog
	opts := &TraceOptions{Sink: &log}
	run(opts) // warmup: log capacity reaches its high-water mark
	log.Reset()
	traced := testing.AllocsPerRun(20, func() { log.Reset(); run(opts) })
	// One allocation is the tracedRun frame itself; the recording path
	// must add nothing per decision.
	if traced > plain+1.5 {
		t.Fatalf("recording to a warmed sink: %.2f allocs vs %.2f plain", traced, plain)
	}
}

// TestFlipOfSpinningDecisionUsesBackupSource pins the flip semantics for
// the keep-spinning → shutdown direction: the synthetic shutdown starts at
// the period's arrival, is attributed to the backup source, and charges a
// power cycle.
func TestFlipOfSpinningDecisionUsesBackupSource(t *testing.T) {
	r := mustRunner(t)
	tr := handTrace(0, 30)
	var log trace.DecisionLog
	res, err := r.RunSourceTraced(trace.NewSliceSource(tr), basePolicy(), TraceOptions{
		Sink: &log,
		Flip: func(k int64, shutdown bool, pc trace.PC) bool { return k == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := log.Records[0]
	if !rec.Flipped() || !rec.Shutdown() {
		t.Fatalf("record 0 = %+v, want flipped shutdown", rec)
	}
	if rec.At != rec.Start {
		t.Fatalf("synthetic shutdown at %v, want period start %v", rec.At, rec.Start)
	}
	if predictor.Source(rec.Source) != predictor.SourceBackup {
		t.Fatalf("synthetic shutdown source %d, want backup", rec.Source)
	}
	if res.Cycles != 1 || res.Wakeups != 1 {
		t.Fatalf("flipped run performed %d cycles, %d wakeups; want 1, 1", res.Cycles, res.Wakeups)
	}
}

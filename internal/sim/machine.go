package sim

import (
	"fmt"

	"pcapsim/internal/fscache"
	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

// The stepable per-machine state machine.
//
// A machine is one simulated user machine: a policy, its predictor state,
// a pooled runState, and a cursor into a stream of executions. It is the
// unit the fleet engine (internal/fleet) multiplexes over a shared virtual
// clock, and RunSource/RunSourceTraced are thin drivers over it — the
// single-machine run is exactly "step the machine until it has no next
// event". The extraction preserves the original runSource/runExecution
// operation order bit for bit: every float accumulation into the AppResult
// happens at the same point in the same sequence, so results are
// byte-identical to the pre-extraction simulator (enforced by the
// experiments suite golden and the differential tests).
//
// Step protocol:
//
//	m, err := r.newMachine(src, pol, tr)
//	for { if _, ok := m.nextTime(); !ok { break }; m.step() }
//	res, err := m.finish()
//
// nextTime returns the session time of the machine's next disk access —
// the local virtual clock, where executions abut end-to-start (execution
// k+1's time 0 is the session instant at which execution k ended). It
// transparently pulls, prepares and opens executions from the source as
// the current one drains; executions with no disk accesses are accounted
// (pure idle) and skipped in the same call. step processes exactly one
// access: the per-process predictor update, the global combiner decision
// for the period the access opens, its classification and its energy
// accounting. finish validates the source, resolves StateEntries and
// returns the pooled scratch state; it must be called exactly once, after
// which the machine is dead.
type machine struct {
	r   *Runner
	src trace.Source
	pol Policy
	tr  *tracedRun
	rs  *runState
	res *AppResult
	// hook receives a record per evaluated global idle period. It is
	// captured from Runner.PeriodHook at construction (the documented
	// contract: install hooks before the first run) so the machine layer
	// never reads runner state mid-run.
	hook func(PeriodRecord)

	newFactory func() predictor.Factory
	f          predictor.Factory
	borrows    bool
	execIdx    int // number of executions pulled from the source

	ex   *execution // current open execution, nil before the first pull
	i    int        // next access index within ex
	base trace.Time // session time at which the current execution began

	err  error
	done bool // source exhausted or failed; no further pulls
}

// newMachine validates the policy and assembles a machine over src. The
// machine owns a pooled runState from construction until finish.
func (r *Runner) newMachine(src trace.Source, pol Policy, tr *tracedRun) (*machine, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	newFactory := pol.NewFactory
	if newFactory == nil {
		// GlobalOracle without an explicit factory: use the local oracle
		// so per-process (local) statistics stay meaningful.
		breakeven := r.cfg.Disk.Breakeven
		newFactory = func() predictor.Factory { return predictor.NewOracle(breakeven) }
	}
	// Sources that expose their current execution as a slice (ExecSlicer)
	// lend that slice out only until their next NextExec; it must not be
	// adopted as the reusable drain buffer, or a pooled runState could
	// later scribble over a buffer the source has recycled elsewhere.
	_, borrows := src.(trace.ExecSlicer)
	return &machine{
		r:   r,
		src: src,
		pol: pol,
		tr:  tr,
		rs:  r.getState(),
		res: &AppResult{
			Policy:       pol.Name,
			StateEntries: -1,
		},
		hook:       r.PeriodHook,
		newFactory: newFactory,
		borrows:    borrows,
	}, nil
}

// nextTime returns the session time of the machine's next access, pulling
// and opening executions from the source as needed. ok=false means the
// machine has no further events — the source is exhausted or failed (see
// finish) — and step must not be called.
func (m *machine) nextTime() (trace.Time, bool) {
	for m.ex == nil || m.i >= len(m.ex.accesses) {
		if m.ex != nil {
			// The current execution is fully processed: advance the
			// session clock past it. Executions abut end-to-start.
			m.base += m.ex.end
			m.ex = nil
		}
		if m.done || !m.pullExecution() {
			return 0, false
		}
	}
	return m.base + m.ex.accesses[m.i].Time, true
}

// pullExecution advances the source to its next execution, runs the
// per-execution factory policy (fresh, reused, or round-tripped), prepares
// the trace through the file cache, and opens the execution for stepping.
// It returns false when the source is exhausted or an error occurred.
func (m *machine) pullExecution() bool {
	app, exec, ok := m.src.NextExec()
	if !ok {
		m.done = true
		return false
	}
	if m.execIdx == 0 {
		m.res.App = app
	}
	switch {
	case m.f == nil || !m.pol.Reuse:
		m.f = m.newFactory()
	case m.execIdx > 0 && m.pol.RoundTrip != nil:
		nf, err := m.pol.RoundTrip(m.f)
		if err != nil {
			m.fail(fmt.Errorf("sim: round-tripping %s after execution %d: %w", m.pol.Name, m.execIdx-1, err))
			return false
		}
		m.f = nf
	}
	rs := m.rs
	events := trace.Drain(m.src, rs.buf)
	if !m.borrows {
		rs.buf = events
	}
	rs.view.App, rs.view.Execution, rs.view.Events = app, exec, events
	ex, err := rs.prepare(&rs.view, m.r.cfg.Cache)
	if err != nil {
		m.fail(err)
		return false
	}
	m.execIdx++
	m.openExecution(ex)
	m.res.Executions++
	return true
}

// fail latches the machine's first error and stops further pulls.
func (m *machine) fail(err error) {
	if m.err == nil {
		m.err = err
	}
	m.done = true
}

// openExecution runs the per-execution accounting prologue: totals, the
// FIFO busy-time schedule, the leading unmanaged idle, and the reset of
// the per-pid predictor and decision working set.
func (m *machine) openExecution(ex *execution) {
	r, rs, res := m.r, m.rs, m.res
	d := &r.cfg.Disk
	res.TotalIOs += ex.totalIOs
	res.DiskAccesses += len(ex.accesses)
	res.SimTime += ex.end
	res.Cache.Reads += ex.cacheStats.Reads
	res.Cache.Writes += ex.cacheStats.Writes
	res.Cache.ReadHits += ex.cacheStats.ReadHits
	res.Cache.DiskReads += ex.cacheStats.DiskReads
	res.Cache.FlushWrites += ex.cacheStats.FlushWrites
	res.Cache.EvictionWrites += ex.cacheStats.EvictionWrites

	m.ex = ex
	m.i = 0

	if len(ex.accesses) == 0 {
		// A silent execution: the disk just idles. nextTime retires it
		// immediately (there is nothing to step).
		r.accountIdle(res, 0, ex.end)
		return
	}

	// Busy-time model: accesses queue FIFO; service i starts at
	// max(arrival, previous completion).
	serviceEnd := rs.serviceEnd[:0]
	for range ex.accesses {
		serviceEnd = append(serviceEnd, 0)
	}
	rs.serviceEnd = serviceEnd
	var prevEnd trace.Time
	for i, a := range ex.accesses {
		start := a.Time
		if prevEnd > start {
			start = prevEnd
		}
		prevEnd = start + r.serviceTime(a)
		serviceEnd[i] = prevEnd
		res.Energy.Busy += r.serviceTime(a).Seconds() * d.BusyPower
	}

	// Leading idle before the first access: the disk spins unmanaged.
	r.accountIdle(res, 0, ex.accesses[0].Time)

	if rs.preds == nil {
		rs.preds = make(map[trace.PID]predictor.Process)
		rs.dec = make(map[trace.PID]decisionState)
	}
	clear(rs.preds)
	clear(rs.dec)
	rs.decided = rs.decided[:0] // sorted pids with decisions, for determinism
}

// step processes the machine's next access: it feeds the access to its
// process's predictor, merges the standing decisions through the global
// combiner over the idle period the access opens, classifies the period
// and charges its energy. Callers must have observed ok=true from
// nextTime since the last step.
func (m *machine) step() {
	r, rs, res, ex, f, pol, d := m.r, m.rs, m.res, m.ex, m.f, m.pol, &m.r.cfg.Disk
	i := m.i
	m.i++
	a := ex.accesses[i]
	preds, dec := rs.preds, rs.dec
	serviceEnd := rs.serviceEnd

	pred, ok := preds[a.Pid]
	if !ok {
		pred = f.NewProcess(a.Pid)
		preds[a.Pid] = pred
	}
	nextLocal := ex.nextLocal[i]
	if fa, isFA := pred.(predictor.FutureAware); isFA {
		if nextLocal >= 0 {
			fa.SetNextGap(ex.accesses[nextLocal].Time-a.Time, true)
		} else {
			fa.SetNextGap(0, false)
		}
	}
	decision := pred.OnAccess(predictor.Access{
		Time:   a.Time,
		PC:     a.PC,
		FD:     a.FD,
		Access: a.Access,
		Block:  a.Block,
	})

	// Local (per-process) classification of the period that follows.
	// The kernel flush daemon is not one of the application's
	// processes, so it stays out of the per-process statistics (it
	// still feeds the global combiner below).
	if nextLocal >= 0 && a.Pid != fscache.KernelFlushPID {
		gap := ex.accesses[nextLocal].Time - a.Time
		classify(&res.Local, gap, decision, d.Breakeven)
	}

	// Update the standing decision for the global combiner.
	st := decisionState{ready: infTime, source: decision.Source}
	if decision.Shutdown {
		st.ready = a.Time + decision.Delay
	}
	if _, had := dec[a.Pid]; !had {
		// Insert a.Pid at its sorted position (equivalent to the
		// append-and-sort it replaces, without sort.Slice's allocation).
		decided := rs.decided
		j := len(decided)
		decided = append(decided, 0)
		for j > 0 && decided[j-1] > a.Pid {
			decided[j] = decided[j-1]
			j--
		}
		decided[j] = a.Pid
		rs.decided = decided
	}
	dec[a.Pid] = st

	// Global period from this access to the next one in the merged
	// stream (or the tail of the execution).
	T0 := a.Time
	T1 := ex.end
	terminal := i+1 >= len(ex.accesses)
	if !terminal {
		T1 = ex.accesses[i+1].Time
	}
	if T1 < T0 {
		T1 = T0
	}
	gap := T1 - T0
	long := gap >= d.Breakeven

	var s trace.Time
	var src predictor.Source
	var found bool
	var decider trace.PID
	if pol.GlobalOracle {
		if long {
			s, src, found = T0, predictor.SourcePrimary, true
			decider = a.Pid
		}
	} else {
		s, src, found, decider = r.combine(ex, dec, rs.decided, T0, T1)
	}
	if m.tr != nil {
		s, src, found = m.tr.decide(r, ex, a, serviceEnd[i], T0, T1, s, src, found, terminal, long)
	}
	if m.hook != nil && !terminal {
		m.hook(PeriodRecord{
			Execution: ex.index,
			Start:     T0, End: T1,
			LastPid: a.Pid, LastPC: a.PC,
			Shutdown: found, At: s, Source: src, DeciderPid: decider,
		})
	}

	if !terminal {
		globalDecision := predictor.Decision{Shutdown: found, Delay: s - T0, Source: src}
		classify(&res.Global, gap, globalDecision, d.Breakeven)
	}
	r.accountPeriod(res, serviceEnd[i], T1, s, found, long, src)
}

// finish closes the machine: it surfaces any latched or source error,
// rejects empty workloads, resolves the policy's learned-state size, and
// returns the scratch state to the runner's pool. The machine must not be
// used afterwards.
func (m *machine) finish() (*AppResult, error) {
	defer m.release()
	if m.err != nil {
		return nil, m.err
	}
	if err := m.src.Err(); err != nil {
		return nil, fmt.Errorf("sim: reading trace source: %w", err)
	}
	if m.res.Executions == 0 {
		return nil, fmt.Errorf("sim: no traces")
	}
	if sf, ok := m.f.(SizedFactory); ok {
		m.res.StateEntries = sf.StateSize()
	}
	return m.res, nil
}

// release returns the pooled state exactly once.
func (m *machine) release() {
	if m.rs != nil {
		m.r.putState(m.rs)
		m.rs = nil
		m.ex = nil
	}
}

// Machine is the exported stepable simulation of one machine's session: a
// policy replayed over a stream of executions, advanced one disk access at
// a time. It is the building block of the fleet engine (internal/fleet),
// which orders many machines' next events on a shared virtual clock.
//
// A Machine is a single-goroutine value. Drive it with NextTime/Step until
// NextTime reports ok=false, then call Finish exactly once; Finish returns
// the aggregated result (or the first error) and recycles the machine's
// pooled scratch state, after which the Machine is dead. Abandoning a
// Machine without Finish leaks its runState from the runner's pool — it
// is garbage collected, but the recycling benefit is lost.
type Machine struct {
	m *machine
}

// NewMachine returns a stepable Machine simulating src under pol. The
// Machine borrows a pooled runState from the Runner; Finish returns it.
func (r *Runner) NewMachine(src trace.Source, pol Policy) (*Machine, error) {
	m, err := r.newMachine(src, pol, nil)
	if err != nil {
		return nil, err
	}
	return &Machine{m: m}, nil
}

// NextTime returns the session-clock time of the machine's next disk
// access. The session clock starts at 0 and runs across executions, which
// abut end-to-start. ok=false means the session is over (or the source
// failed — Finish reports which).
func (fm *Machine) NextTime() (trace.Time, bool) { return fm.m.nextTime() }

// Step processes the machine's next access. It must only be called after
// NextTime reported ok=true.
func (fm *Machine) Step() { fm.m.step() }

// Finish completes the session and returns the aggregated result. It must
// be called exactly once.
func (fm *Machine) Finish() (*AppResult, error) { return fm.m.finish() }

// Package prefetch implements the paper's closing future-work direction:
// "PCAP opens a new direction for the development of predictor-based
// techniques suitable for many other aspects of the operating system,
// such as file buffer management and I/O prefetching."
//
// The same observation that powers PCAP — the program counter of an I/O
// identifies *which loop* in the application is executing — applies to
// readahead. A PC-blind sequential readahead sees one interleaved block
// stream and loses the pattern whenever two sequential streams (two
// processes, or two files) interleave; a PC-based prefetcher keeps one
// stream context per call site, so each loop's sequentiality survives the
// interleaving. (This is the direction the authors later developed into
// PC-based buffer-cache classification.)
//
// The package provides both prefetchers and an evaluation harness that
// replays workload traces through a block cache and scores demand misses,
// prefetch coverage and accuracy.
package prefetch

import (
	"container/list"
	"fmt"

	"pcapsim/internal/trace"
)

// Prefetcher decides which blocks to fetch ahead after each read access.
type Prefetcher interface {
	// Name returns a short identifier for result tables.
	Name() string
	// OnRead observes a demand read and returns the blocks to prefetch.
	OnRead(pc trace.PC, block int64) []int64
}

// None never prefetches — the demand-fetch baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// OnRead implements Prefetcher.
func (None) OnRead(trace.PC, int64) []int64 { return nil }

// sequentialState tracks one stream's recent behaviour.
type sequentialState struct {
	last  int64
	score int
}

// observe updates the stream with a block and reports the new score.
func (s *sequentialState) observe(block int64, max int) int {
	if block == s.last+1 {
		if s.score < max {
			s.score++
		}
	} else if s.score > 0 {
		s.score--
	}
	s.last = block
	return s.score
}

// GlobalReadahead is the PC-blind baseline: one stream context for the
// whole disk. Interleaved sequential streams destroy its score.
type GlobalReadahead struct {
	// Degree is how many blocks to fetch ahead once confident.
	Degree int
	// Threshold is the score at which prefetching starts.
	Threshold int
	state     sequentialState
}

// NewGlobalReadahead returns the baseline with the given degree and a
// confidence threshold of 2.
func NewGlobalReadahead(degree int) *GlobalReadahead {
	return &GlobalReadahead{Degree: degree, Threshold: 2}
}

// Name implements Prefetcher.
func (g *GlobalReadahead) Name() string { return "readahead" }

// OnRead implements Prefetcher.
func (g *GlobalReadahead) OnRead(_ trace.PC, block int64) []int64 {
	if g.state.observe(block, g.Threshold+2) >= g.Threshold {
		return ahead(block, g.Degree)
	}
	return nil
}

// PCReadahead keeps one stream context per program counter — the paper's
// insight applied to prefetching.
type PCReadahead struct {
	// Degree is how many blocks to fetch ahead once a site is confident.
	Degree int
	// Threshold is the per-site score at which prefetching starts.
	Threshold int
	// MaxSites bounds the per-PC state (LRU would be the production
	// answer; the site sets here are tiny, so a hard cap suffices).
	MaxSites int
	sites    map[trace.PC]*sequentialState
}

// NewPCReadahead returns a PC-keyed prefetcher with the given degree, a
// confidence threshold of 2, and room for 4096 sites.
func NewPCReadahead(degree int) *PCReadahead {
	return &PCReadahead{
		Degree:    degree,
		Threshold: 2,
		MaxSites:  4096,
		sites:     make(map[trace.PC]*sequentialState),
	}
}

// Name implements Prefetcher.
func (p *PCReadahead) Name() string { return "pc-readahead" }

// OnRead implements Prefetcher.
func (p *PCReadahead) OnRead(pc trace.PC, block int64) []int64 {
	st, ok := p.sites[pc]
	if !ok {
		if len(p.sites) >= p.MaxSites {
			return nil
		}
		st = &sequentialState{last: block - 1} // optimistic: first touch scores
		p.sites[pc] = st
	}
	if st.observe(block, p.Threshold+2) >= p.Threshold {
		return ahead(block, p.Degree)
	}
	return nil
}

func ahead(block int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = block + int64(i+1)
	}
	return out
}

// Result scores one prefetcher over one trace set.
type Result struct {
	Prefetcher string
	// DemandReads is the number of block reads issued by the workload.
	DemandReads int
	// DemandMisses is how many of them had to go to disk (cache and
	// prefetch misses).
	DemandMisses int
	// PrefetchHits is how many demand reads were served by a previously
	// prefetched block.
	PrefetchHits int
	// Prefetched is the number of blocks fetched ahead; Wasted counts
	// those evicted unused.
	Prefetched int
	Wasted     int
}

// MissRate returns demand misses over demand reads.
func (r Result) MissRate() float64 {
	if r.DemandReads == 0 {
		return 0
	}
	return float64(r.DemandMisses) / float64(r.DemandReads)
}

// Coverage returns the fraction of demand reads served by prefetched
// blocks.
func (r Result) Coverage() float64 {
	if r.DemandReads == 0 {
		return 0
	}
	return float64(r.PrefetchHits) / float64(r.DemandReads)
}

// Accuracy returns the fraction of prefetched blocks that were used.
func (r Result) Accuracy() float64 {
	if r.Prefetched == 0 {
		return 0
	}
	return float64(r.PrefetchHits) / float64(r.Prefetched)
}

// blockCache is a read-only LRU block cache that distinguishes demand
// from prefetched residency.
type blockCache struct {
	cap     int
	entries map[int64]*list.Element
	lru     *list.List // of cacheEntry
}

type cacheEntry struct {
	block      int64
	prefetched bool
}

func newBlockCache(capBlocks int) *blockCache {
	return &blockCache{
		cap:     capBlocks,
		entries: make(map[int64]*list.Element),
		lru:     list.New(),
	}
}

// touch looks a block up as a demand read. It reports whether the block
// was resident and whether it was resident *because of a prefetch*.
func (c *blockCache) touch(block int64) (hit, wasPrefetched bool) {
	el, ok := c.entries[block]
	if !ok {
		c.insert(block, false)
		return false, false
	}
	e := el.Value.(*cacheEntry)
	wasPrefetched = e.prefetched
	e.prefetched = false // now demand-owned
	c.lru.MoveToFront(el)
	return true, wasPrefetched
}

// insert adds a block, reporting a wasted prefetch if one was evicted
// unused.
func (c *blockCache) insert(block int64, prefetched bool) (wastedEviction bool) {
	if el, ok := c.entries[block]; ok {
		c.lru.MoveToFront(el)
		return false
	}
	c.entries[block] = c.lru.PushFront(&cacheEntry{block: block, prefetched: prefetched})
	if len(c.entries) <= c.cap {
		return false
	}
	oldest := c.lru.Back()
	victim := oldest.Value.(*cacheEntry)
	c.lru.Remove(oldest)
	delete(c.entries, victim.block)
	return victim.prefetched
}

// Evaluate replays the I/O events of the given traces through a block
// cache of capBlocks blocks with the prefetcher attached and returns the
// score. Only reads participate (readahead does not interact with the
// write-back path); multi-block reads are split per block, as in the file
// cache simulator.
func Evaluate(traces []*trace.Trace, capBlocks int, p Prefetcher) (Result, error) {
	return EvaluateSource(trace.NewSliceSource(traces...), capBlocks, p)
}

// EvaluateSource is Evaluate over a streaming trace source: events are
// scored as they are pulled, so memory stays constant in workload length.
// The prefetcher's learned state persists across executions (as with
// Evaluate); the block cache starts cold for each one.
func EvaluateSource(src trace.Source, capBlocks int, p Prefetcher) (Result, error) {
	if capBlocks <= 0 {
		return Result{}, fmt.Errorf("prefetch: cache capacity must be positive, got %d", capBlocks)
	}
	res := Result{Prefetcher: p.Name()}
	for {
		if _, _, ok := src.NextExec(); !ok {
			break
		}
		cache := newBlockCache(capBlocks)
		for {
			e, ok := src.Next()
			if !ok {
				break
			}
			if e.Kind != trace.KindIO || e.Access != trace.AccessRead && e.Access != trace.AccessOpen {
				continue
			}
			blocks := int(e.Size) / 4096
			if blocks < 1 {
				blocks = 1
			}
			for i := 0; i < blocks; i++ {
				block := e.Block + int64(i)
				res.DemandReads++
				hit, wasPrefetched := cache.touch(block)
				if !hit {
					res.DemandMisses++
				} else if wasPrefetched {
					res.PrefetchHits++
				}
				// Prefetches are background I/O: they do not count as
				// demand misses, but unused ones count as waste.
				for _, pb := range p.OnRead(e.PC, block) {
					if _, resident := cache.entries[pb]; resident {
						continue
					}
					res.Prefetched++
					if cache.insert(pb, true) {
						res.Wasted++
					}
				}
			}
		}
		// Prefetched blocks never touched before the execution ended were
		// fetched for nothing.
		for el := cache.lru.Front(); el != nil; el = el.Next() {
			if el.Value.(*cacheEntry).prefetched {
				res.Wasted++
			}
		}
	}
	if err := src.Err(); err != nil {
		return Result{}, fmt.Errorf("prefetch: reading trace source: %w", err)
	}
	return res, nil
}

package classic_test

import (
	"fmt"

	"pcapsim/internal/classic"
	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

// ExampleAdaptiveTimeout shows the feedback timer reacting to outcomes: it
// doubles after a premature shutdown and halves after a clearly correct
// one.
func ExampleAdaptiveTimeout() {
	at := classic.MustNewAdaptiveTimeout(classic.DefaultAdaptiveTimeoutConfig())
	proc := at.NewProcess(1)

	d := proc.OnAccess(predictor.Access{Time: 0})
	fmt.Println("initial timer:", d.Delay.Duration())

	// The next access arrives 11 s later: the 10 s timer had expired but
	// the disk was off for only 1 s — premature.
	d = proc.OnAccess(predictor.Access{Time: trace.FromSeconds(11)})
	fmt.Println("after premature shutdown:", d.Delay.Duration())

	// Then a two-minute idle period — clearly correct.
	d = proc.OnAccess(predictor.Access{Time: trace.FromSeconds(131)})
	fmt.Println("after correct shutdown:", d.Delay.Duration())

	// Output:
	// initial timer: 10s
	// after premature shutdown: 20s
	// after correct shutdown: 10s
}

// ExampleExpAverage shows the forecast following the idle-length stream.
func ExampleExpAverage() {
	ea := classic.MustNewExpAverage(classic.DefaultExpAverageConfig())
	proc := ea.NewProcess(1)

	proc.OnAccess(predictor.Access{Time: 0})
	// One 40 s idle period: forecast 40 s ≥ breakeven → predict.
	d := proc.OnAccess(predictor.Access{Time: trace.FromSeconds(40)})
	fmt.Println("after a long period:", d.Source)

	// Four 2 s periods drag the forecast under breakeven
	// (40 → 21 → 11.5 → 6.75 → 4.4 with α = 0.5).
	now := 40.0
	for i := 0; i < 4; i++ {
		now += 2
		d = proc.OnAccess(predictor.Access{Time: trace.FromSeconds(now)})
	}
	fmt.Println("after short periods:", d.Source)

	// Output:
	// after a long period: primary
	// after short periods: backup
}

package trace

import (
	"bytes"
	"testing"
)

// encodedIndexedSeed builds a small valid indexed file for fuzz seeding.
func encodedIndexedSeed(f *testing.F) []byte {
	f.Helper()
	tr := seedTraceV2()
	var buf bytes.Buffer
	ib := NewIndexBuilder()
	enc, err := NewBlockEncoder(&buf, tr.App, tr.Execution, len(tr.Events))
	if err != nil {
		f.Fatal(err)
	}
	if err := enc.SetBlockEvents(16); err != nil {
		f.Fatal(err)
	}
	if err := enc.SetIndex(ib); err != nil {
		f.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := enc.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		f.Fatal(err)
	}
	if err := ib.WriteFooter(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzIndexFooter fuzzes the index footer path end to end:
//
//  1. ReadIndex must never panic on arbitrary bytes; a truncated,
//     corrupt, or missing footer must come back as a clean error or the
//     (nil, nil) no-footer fallback;
//  2. whenever pushdown arms — whatever ReadIndex accepted — the
//     index-driven decode must agree with the sequential decode-then-
//     drop reference on the same bytes: same events, or both error. A
//     bad footer may cost the seeks, never correctness;
//  3. the same holds through the parallel pipeline.
func FuzzIndexFooter(f *testing.F) {
	valid := encodedIndexedSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                          // clipped trailer magic
	f.Add(valid[:len(valid)-9])                          // footer body truncated
	f.Add(encodeColumnarSeedNoIndex(f))                  // no footer at all
	f.Add([]byte{})                                      //
	f.Add([]byte(indexMagic))                            // magic only
	f.Add(append([]byte(nil), valid[len(valid)-64:]...)) // footer with no data
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-12] ^= 0x01 // inside the CRC field
	f.Add(corrupt)
	shifted := append(append([]byte(nil), valid...), valid[len(valid)-8:]...)
	f.Add(shifted) // duplicated tail: length points mid-footer

	p := Predicate{From: 1} // permissive but non-zero, so pushdown arms

	f.Fuzz(func(t *testing.T, data []byte) {
		// (1) ReadIndex is total: index, clean error, or fallback.
		idx, err := ReadIndex(bytes.NewReader(data))
		if err != nil && idx != nil {
			t.Fatal("ReadIndex returned both an index and an error")
		}

		// Sequential decode-then-drop reference.
		want, wantErr := drainAll(FilterEvents(NewBlockSource(bytes.NewReader(data)), p))

		// (2) Sequential pushdown.
		bs := NewBlockSource(bytes.NewReader(data))
		armed := bs.SetPredicate(p)
		if armed && idx == nil {
			t.Fatal("pushdown armed on a file ReadIndex rejected")
		}
		got, gotErr := drainAll(FilterEvents(bs, p))
		if wantErr == nil && gotErr == nil && got != want {
			t.Fatalf("pushdown decoded different events\nwant:\n%s\ngot:\n%s", want, got)
		}
		if !armed && ((gotErr == nil) != (wantErr == nil) || got != want) {
			t.Fatal("unarmed pushdown diverged from plain sequential decode")
		}

		// (3) Parallel pipeline, with and without pushdown.
		for _, pred := range []Predicate{{}, p} {
			ref, refErr := drainAll(FilterEvents(NewBlockSource(bytes.NewReader(data)), pred))
			ps := NewParallelSource(bytes.NewReader(data), 2)
			ps.SetPredicate(pred)
			pgot, perr := drainAll(FilterEvents(Source(ps), pred))
			if pred.IsZero() {
				// No pushdown: the parallel path must agree exactly,
				// including on validity.
				if (perr == nil) != (refErr == nil) {
					t.Fatalf("parallel decode validity diverged: %v vs %v", perr, refErr)
				}
				if perr == nil && pgot != ref {
					t.Fatalf("parallel decode differs\nwant:\n%s\ngot:\n%s", ref, pgot)
				}
			} else if refErr == nil && perr == nil && pgot != ref {
				t.Fatalf("parallel pushdown decoded different events\nwant:\n%s\ngot:\n%s", ref, pgot)
			}
			ps.Close()
		}
	})
}

// encodeColumnarSeedNoIndex is the footer-less counterpart of
// encodedIndexedSeed.
func encodeColumnarSeedNoIndex(f *testing.F) []byte {
	f.Helper()
	tr := seedTraceV2()
	var buf bytes.Buffer
	if err := WriteColumnar(&buf, tr); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// benchFixture is a canned `go test -bench` transcript: environment
// header, plain and -benchmem result lines, a custom b.ReportMetric
// unit, a repeated -count entry, test chatter, and two malformed lines
// (a truncated result and a non-numeric count) that must be skipped.
const benchFixture = `goos: linux
goarch: amd64
pkg: pcapsim/internal/sim
cpu: AMD EPYC 7B13
BenchmarkSimulate-8   	     100	  11500000 ns/op	 5242880 B/op	      12 allocs/op
BenchmarkSimulate-8   	     102	  11400000 ns/op	 5242881 B/op	      12 allocs/op
BenchmarkDecode-8     	    5000	    240000 ns/op	  880.21 MB/s	  104857 events/s
BenchmarkBroken-8     	    5000
BenchmarkAlsoBroken-8 	    many	    240000 ns/op
--- BENCH: BenchmarkSimulate-8
    sim_test.go:42: warmup done
PASS
ok  	pcapsim/internal/sim	4.2s
`

func TestParseFixture(t *testing.T) {
	rep, err := parse(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "pcapsim-bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "pcapsim/internal/sim" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("header = %q/%q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3 (malformed lines must be skipped): %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	first := rep.Benchmarks[0]
	if first.Name != "BenchmarkSimulate" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.Iterations != 100 {
		t.Errorf("iterations = %d, want 100", first.Iterations)
	}
	if first.Metrics["ns/op"] != 11500000 || first.Metrics["B/op"] != 5242880 || first.Metrics["allocs/op"] != 12 {
		t.Errorf("metrics = %v", first.Metrics)
	}

	// Repeated -count runs stay as separate entries in input order.
	second := rep.Benchmarks[1]
	if second.Name != "BenchmarkSimulate" || second.Iterations != 102 {
		t.Errorf("repeated entry = %q/%d", second.Name, second.Iterations)
	}

	// Custom b.ReportMetric units ride along with the standard ones.
	decode := rep.Benchmarks[2]
	if decode.Metrics["MB/s"] != 880.21 || decode.Metrics["events/s"] != 104857 {
		t.Errorf("decode metrics = %v", decode.Metrics)
	}
}

// TestRoundTrip pins the JSON wire shape: marshal the parsed report and
// decode it back, so a schema drift breaks loudly here rather than in
// whatever later consumes the committed BENCH_*.json artifacts.
func TestRoundTrip(t *testing.T) {
	rep, err := parse(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || back.Pkg != rep.Pkg || len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip changed the document: %+v vs %+v", back, rep)
	}
	for i := range back.Benchmarks {
		a, b := rep.Benchmarks[i], back.Benchmarks[i]
		if a.Name != b.Name || a.Iterations != b.Iterations || len(a.Metrics) != len(b.Metrics) {
			t.Errorf("benchmark %d changed: %+v vs %+v", i, a, b)
		}
		for unit, v := range a.Metrics {
			if b.Metrics[unit] != v {
				t.Errorf("benchmark %d metric %s: %v vs %v", i, unit, v, b.Metrics[unit])
			}
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok  \tpcapsim\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("benchmarks = %+v, want none", rep.Benchmarks)
	}
}

// Package lint is a self-contained static-analysis framework for this
// module, built only on the standard library's go/parser, go/ast and
// go/types (no golang.org/x/tools). It exists to turn the repository's
// dynamically-tested invariants — the determinism contract of DESIGN.md
// §8, the pool-ownership rules of §10 and the codec error discipline of
// §11 — into compile-time checks: cmd/pcaplint runs every registered
// analyzer over the module and fails CI on any finding.
//
// The framework has three parts:
//
//   - a module loader (load.go) that parses every non-test package in the
//     module, topologically sorts them by their internal imports and
//     type-checks them with the stdlib source importer, so analyzers see
//     full type information without any third-party package driver;
//   - an Analyzer interface plus a Pass carrying one type-checked package,
//     mirroring golang.org/x/tools/go/analysis in miniature;
//   - a suppression layer: `//pcaplint:ignore <analyzer> <reason>` on the
//     finding's line (or the line above) silences that analyzer there.
//     A directive without a reason, or naming an unknown analyzer, is
//     itself reported as an error, so suppressions cannot rot silently.
//
// Function declarations may additionally carry `//pcaplint:owner-transfer`
// in their doc comment, marking them as deliberate sync.Pool ownership
// transfer points for the poolsafe analyzer (see poolsafe.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings, -only/-skip filters and
	// ignore directives.
	Name string
	// Doc is a one-line description, shown by `pcaplint -list`.
	Doc string
	// Run inspects the Pass's package and reports findings through it.
	Run func(*Pass)
}

// A Pass carries one type-checked package to an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// OwnerTransfer reports whether a function object is annotated
	// //pcaplint:owner-transfer anywhere in the module.
	OwnerTransfer func(types.Object) bool

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Finding is one reported problem. Findings with Analyzer ==
// FrameworkName are framework errors (malformed directives, unknown
// analyzer names) and cannot be suppressed.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// FrameworkName is the pseudo-analyzer name under which directive errors
// are reported.
const FrameworkName = "pcaplint"

const (
	directivePrefix        = "//pcaplint:"
	ignoreDirective        = "ignore"
	ownerTransferDirective = "owner-transfer"
)

// ignoreIndex records, per file and line, which analyzers are suppressed
// there. A directive suppresses findings on its own line and on the line
// directly below it (the standalone-comment-above-the-statement form).
type ignoreIndex map[string]map[int]map[string]bool

// collectDirectives scans a package's comments for pcaplint directives.
// It returns the suppression index and one framework Finding per
// malformed directive: a missing analyzer name, a missing reason, an
// analyzer name not in known, an unknown directive verb, or an
// owner-transfer annotation that is not part of a function declaration's
// doc comment.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (ignoreIndex, []Finding) {
	idx := make(ignoreIndex)
	var errs []Finding

	// owner-transfer is only meaningful on a function declaration's doc
	// comment; gather the legal positions first.
	fnDocs := make(map[*ast.CommentGroup]bool)
	for _, file := range files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				fnDocs[fd.Doc] = true
			}
		}
	}

	report := func(pos token.Pos, format string, args ...any) {
		position := fset.Position(pos)
		errs = append(errs, Finding{
			File:     position.Filename,
			Line:     position.Line,
			Col:      position.Column,
			Analyzer: FrameworkName,
			Message:  fmt.Sprintf(format, args...),
		})
	}

	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				switch verb {
				case ownerTransferDirective:
					if !fnDocs[group] {
						report(c.Pos(), "//pcaplint:%s must be in a function declaration's doc comment", ownerTransferDirective)
					}
				case ignoreDirective:
					name, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
					if name == "" {
						report(c.Pos(), "ignore directive needs an analyzer name and a reason: //pcaplint:ignore <analyzer> <reason>")
						continue
					}
					if !known[name] {
						report(c.Pos(), "ignore directive names unknown analyzer %q (known: %s)", name, strings.Join(sortedNames(known), ", "))
						continue
					}
					if strings.TrimSpace(reason) == "" {
						report(c.Pos(), "ignore directive for %q needs a reason", name)
						continue
					}
					pos := fset.Position(c.Pos())
					byLine := idx[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						idx[pos.Filename] = byLine
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if byLine[line] == nil {
							byLine[line] = make(map[string]bool)
						}
						byLine[line][name] = true
					}
				default:
					report(c.Pos(), "unknown pcaplint directive %q (known: ignore, owner-transfer)", verb)
				}
			}
		}
	}
	return idx, errs
}

// suppressed reports whether the finding is covered by an ignore
// directive. Framework errors are never suppressible.
func (idx ignoreIndex) suppressed(f Finding) bool {
	if f.Analyzer == FrameworkName {
		return false
	}
	return idx[f.File][f.Line][f.Analyzer]
}

// ownerTransferFuncs returns the objects of all functions in the package
// whose doc comment carries //pcaplint:owner-transfer.
func ownerTransferFuncs(info *types.Info, files []*ast.File) map[types.Object]bool {
	set := make(map[types.Object]bool)
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, directivePrefix+ownerTransferDirective) {
					if obj := info.Defs[fd.Name]; obj != nil {
						set[obj] = true
					}
				}
			}
		}
	}
	return set
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// sortFindings orders findings by file, line, column, analyzer — the
// stable presentation order of cmd/pcaplint.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

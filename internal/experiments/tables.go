package experiments

import (
	"fmt"

	"pcapsim/internal/core"
	"pcapsim/internal/sim"
)

// Table1Row is one application's execution details (the paper's Table 1).
type Table1Row struct {
	App        string
	Executions int
	// GlobalIdle and LocalIdle count idle periods long enough to save
	// energy, over the app's merged stream and per process respectively.
	GlobalIdle int
	LocalIdle  int
	TotalIOs   int
}

// Table1 reproduces the paper's Table 1: applications and execution
// details. Idle-period counts are policy-independent, so they are taken
// from the Base run.
func (s *Suite) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, app := range s.Apps() {
		res, err := s.Run(app, s.PolicyBase())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			App:        app.Name,
			Executions: res.Executions,
			GlobalIdle: res.Global.LongPeriods,
			LocalIdle:  res.Local.LongPeriods,
			TotalIOs:   res.TotalIOs,
		})
	}
	return rows, nil
}

// RenderTable1 renders Table1 as text.
func (s *Suite) RenderTable1() (string, error) {
	rows, err := s.Table1()
	if err != nil {
		return "", err
	}
	t := newTable("Appl.", "Executions", "Idle (global)", "Idle (local)", "Total I/Os")
	for _, r := range rows {
		t.Row(r.App, fmt.Sprint(r.Executions), fmt.Sprint(r.GlobalIdle),
			fmt.Sprint(r.LocalIdle), fmt.Sprint(r.TotalIOs))
	}
	return "Table 1: applications and execution details\n\n" + t.String(), nil
}

// RenderTable2 renders the disk model parameters (the paper's Table 2).
func (s *Suite) RenderTable2() string {
	d := s.cfg.Disk
	t := newTable("State / transition", "Value")
	t.Row("Drive", d.Name)
	t.Row("Busy power", fmt.Sprintf("%.2f W", d.BusyPower))
	t.Row("Idle power", fmt.Sprintf("%.2f W", d.IdlePower))
	t.Row("Standby power", fmt.Sprintf("%.2f W", d.StandbyPower))
	t.Row("Spin-up energy", fmt.Sprintf("%.2f J", d.SpinUpEnergy))
	t.Row("Shutdown energy", fmt.Sprintf("%.2f J", d.ShutdownEnergy))
	t.Row("Spin-up time", fmt.Sprintf("%.2f s", d.SpinUpTime.Seconds()))
	t.Row("Shutdown time", fmt.Sprintf("%.2f s", d.ShutdownTime.Seconds()))
	t.Row("Breakeven time", fmt.Sprintf("%.2f s", d.Breakeven.Seconds()))
	return "Table 2: states and state transitions of the simulated disk\n\n" + t.String()
}

// Table3Row is one application's prediction-table storage (Table 3).
type Table3Row struct {
	App     string
	Entries map[core.Variant]int
}

// table3Variants are the columns of Table 3.
var table3Variants = []core.Variant{core.VariantBase, core.VariantH, core.VariantF, core.VariantFH}

// table3Policies are Table 3's runs, one per PCAP variant.
func (s *Suite) table3Policies() []sim.Policy {
	pols := make([]sim.Policy, len(table3Variants))
	for i, v := range table3Variants {
		pols[i] = s.PolicyPCAP(v)
	}
	return pols
}

// Table3 reproduces the paper's Table 3: prediction-table entries per
// application for every PCAP variant after all executions.
func (s *Suite) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, app := range s.Apps() {
		row := Table3Row{App: app.Name, Entries: make(map[core.Variant]int)}
		for _, v := range table3Variants {
			res, err := s.Run(app, s.PolicyPCAP(v))
			if err != nil {
				return nil, err
			}
			row.Entries[v] = res.StateEntries
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 renders Table3 as text, including the paper's 4-byte-per-
// entry storage figure.
func (s *Suite) RenderTable3() (string, error) {
	rows, err := s.Table3()
	if err != nil {
		return "", err
	}
	t := newTable("Application", "PCAP", "PCAPh", "PCAPf", "PCAPfh", "PCAPfh bytes")
	for _, r := range rows {
		t.Row(r.App,
			fmt.Sprint(r.Entries[core.VariantBase]),
			fmt.Sprint(r.Entries[core.VariantH]),
			fmt.Sprint(r.Entries[core.VariantF]),
			fmt.Sprint(r.Entries[core.VariantFH]),
			fmt.Sprint(4*r.Entries[core.VariantFH]))
	}
	return "Table 3: prediction-table storage requirements (entries)\n\n" + t.String(), nil
}

package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestBinaryRejectsOutOfOrder(t *testing.T) {
	tr := &Trace{App: "x", Events: []Event{{Time: 10}, {Time: 5}}}
	if err := WriteBinary(&bytes.Buffer{}, tr); err == nil {
		t.Fatal("out-of-order trace encoded without error")
	}
}

func TestBinaryBadInput(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("PCTR"),              // truncated after magic
		[]byte("PCTR\x09\x00"),      // bad version
		[]byte("PCTR\x01\x00\x05"),  // name length but no name
		[]byte("PCTR\x01\x00\x00y"), // garbage after empty name
	}
	for i, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: error %v, want ErrBadFormat", i, err)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# app demo exec 0") {
		t.Fatalf("header missing:\n%s", buf.String())
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestTextParseErrors(t *testing.T) {
	bad := []string{
		"oops",
		"12 frobnicate 1",
		"x io 1 read pc=0x1 fd=1 block=1 size=1",
		"12 io 1 read pc=0x1",                      // too few fields
		"12 io 1 shred pc=0x1 fd=1 block=1 size=1", // bad access
		"12 io 1 read pc=zz fd=1 block=1 size=1",   // bad pc
		"12 io 1 read fd=1 pc=0x1 block=1 size=1",  // wrong key order
		"12 fork 1",                                // fork without child
		"12 io notanumber read pc=1 fd=1 block=1 size=1",
	}
	for _, line := range bad {
		if _, err := ReadText(strings.NewReader(line)); err == nil {
			t.Errorf("line %q parsed without error", line)
		}
	}
}

func TestTextSkipsBlanksAndComments(t *testing.T) {
	in := "# pcap-trace v1\n\n# app foo exec 3\n\n100 exit 1\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.App != "foo" || tr.Execution != 3 || len(tr.Events) != 1 {
		t.Fatalf("parsed %+v", tr)
	}
}

// randomTrace builds an arbitrary well-formed trace for property tests.
func randomTrace(r *rand.Rand) *Trace {
	tr := &Trace{App: "prop", Execution: r.Intn(100)}
	var now Time
	for i := 0; i < r.Intn(200); i++ {
		now += Time(r.Intn(1_000_000))
		e := Event{Time: now, Pid: PID(1 + r.Intn(5))}
		switch r.Intn(6) {
		case 0:
			e.Kind = KindFork
			e.Child = e.Pid + 100 + PID(i)
		case 1:
			e.Kind = KindExit
		default:
			e.Kind = KindIO
			e.Access = Access(r.Intn(4))
			e.PC = PC(r.Uint32() | 1)
			e.FD = FD(r.Intn(64))
			e.Block = int64(r.Intn(1 << 30))
			e.Size = int32(r.Intn(1 << 20))
		}
		tr.Events = append(tr.Events, e)
	}
	return tr
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(tr.Events) == 0 {
			return len(got.Events) == 0 && got.App == tr.App
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		if err != nil {
			return false
		}
		if len(tr.Events) == 0 {
			return len(got.Events) == 0
		}
		return reflect.DeepEqual(tr.Events, got.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryCompactness(t *testing.T) {
	// Delta-encoded varints should beat a naive fixed-size encoding by a
	// wide margin on realistic traces.
	tr := &Trace{App: "compact"}
	var now Time
	for i := 0; i < 10000; i++ {
		now += Time(20000)
		tr.Events = append(tr.Events, Event{
			Time: now, Pid: 1, Kind: KindIO, Access: AccessRead,
			PC: 0x08049a10, FD: 3, Block: int64(i), Size: 4096,
		})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / float64(len(tr.Events))
	if perEvent > 20 {
		t.Errorf("binary encoding too large: %.1f bytes/event", perEvent)
	}
}

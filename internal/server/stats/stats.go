// Package stats is pcapd's contention-free live counter layer.
//
// A long-lived simulation daemon wants live global counters — jobs
// served, events simulated, disk energy accounted — visible at any
// moment from a monitoring endpoint, while dozens of workers hammer the
// simulation hot path. The naive designs put that hot path through
// shared state on every increment: a shared atomic turns every
// per-event add into a cross-core RMW on one cache line, a mutex is
// worse. This package instead commits information, not traffic
// (VSA-style delta coalescing): each worker accumulates deltas in a
// private, unsynchronized Local shard and commits the batch to the
// global atomic view only when the pending volume crosses a threshold
// or the view would grow stale past a deadline. The per-add cost is a
// couple of plain register-width additions; the shared cache line is
// touched once per thousands of adds.
//
// Exactness contract: coalescing trades freshness, never correctness.
// Every delta added to a Local is committed to the global view exactly
// once — on a threshold commit, a deadline commit, or the final Flush
// that every owner performs when it releases the shard — so after all
// shards are flushed the global counters equal the exact sums, add for
// add. The only thing a reader can observe mid-run is a slightly stale
// (always internally committed) view, bounded by the threshold and the
// deadline. TestCoalescedExactSum pins this under the race detector.
//
// Ownership: a Local is single-owner state, exactly like the pooled
// runState of DESIGN.md §10 — one goroutine adds and flushes; sharing a
// Local is a data race by construction. The global Counters value is
// safe for any number of concurrent committers and readers.
package stats

import (
	"math"
	"sync/atomic"
	"time"
)

// Counters is the global, always-consistent-to-read counter view.
// All mutation arrives either through the direct Job* methods (job
// lifecycle transitions are rare — they pay the atomic directly) or
// through Local shard commits.
type Counters struct {
	jobsStarted atomic.Int64
	jobsDone    atomic.Int64
	jobsFailed  atomic.Int64

	events   atomic.Int64
	execs    atomic.Int64
	machines atomic.Int64
	adds     atomic.Int64
	commits  atomic.Int64

	energyBits atomic.Uint64 // float64 bits; see addFloat
}

// Snapshot is one coherent-enough read of the counters. Fields are read
// individually (each is atomic); a snapshot taken while shards hold
// uncommitted deltas lags by at most each shard's threshold/deadline.
type Snapshot struct {
	// JobsStarted / JobsDone / JobsFailed count job lifecycle
	// transitions; failed jobs (including canceled and timed-out ones)
	// are counted in both JobsDone and JobsFailed.
	JobsStarted int64 `json:"jobs_started"`
	JobsDone    int64 `json:"jobs_done"`
	JobsFailed  int64 `json:"jobs_failed"`
	// Events and Execs count simulated trace events and executions
	// delivered to policies; Machines counts retired fleet machines.
	Events   int64 `json:"events"`
	Execs    int64 `json:"execs"`
	Machines int64 `json:"machines"`
	// EnergyJ totals the disk energy of every simulated policy run.
	EnergyJ float64 `json:"energy_j"`
	// Adds is the number of Local add operations absorbed; Commits is
	// the number of coalesced commits that carried them to this view.
	// Adds/Commits is the live coalescing ratio.
	Adds    int64 `json:"adds"`
	Commits int64 `json:"commits"`
}

// Snapshot reads the current global view.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		JobsStarted: c.jobsStarted.Load(),
		JobsDone:    c.jobsDone.Load(),
		JobsFailed:  c.jobsFailed.Load(),
		Events:      c.events.Load(),
		Execs:       c.execs.Load(),
		Machines:    c.machines.Load(),
		EnergyJ:     math.Float64frombits(c.energyBits.Load()),
		Adds:        c.adds.Load(),
		Commits:     c.commits.Load(),
	}
}

// JobStarted records a job leaving the queue for a worker.
func (c *Counters) JobStarted() { c.jobsStarted.Add(1) }

// JobDone records a finished job; failed also counts it as a failure
// (errors, cancellations, timeouts).
func (c *Counters) JobDone(failed bool) {
	c.jobsDone.Add(1)
	if failed {
		c.jobsFailed.Add(1)
	}
}

// addFloat adds delta to a float64 stored as atomic bits, with the
// standard CAS loop. Each delta is applied exactly once; only the
// accumulation order (and therefore the usual floating-point rounding
// of concurrent sums) is scheduling-dependent.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		val := math.Float64frombits(old) + delta
		if bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// commit applies one shard's pending deltas to the global view.
func (c *Counters) commit(d *delta) {
	if d.events != 0 {
		c.events.Add(d.events)
	}
	if d.execs != 0 {
		c.execs.Add(d.execs)
	}
	if d.machines != 0 {
		c.machines.Add(d.machines)
	}
	if d.adds != 0 {
		c.adds.Add(d.adds)
	}
	if d.energy != 0 {
		addFloat(&c.energyBits, d.energy)
	}
	c.commits.Add(1)
	*d = delta{}
}

// delta is a shard's pending, uncommitted contribution.
type delta struct {
	events   int64
	execs    int64
	machines int64
	adds     int64
	energy   float64
}

// DefaultThreshold is the pending-unit volume (events + execs +
// machines) at which a Local commits. Thousands of units per commit
// amortizes the shared-cache-line traffic to noise while keeping the
// global view fresh within a fraction of a second at simulation speed.
const DefaultThreshold = 1 << 14

// lagCheckEvery bounds how many adds may pass between wall-clock reads
// on the deadline path: the clock (a vDSO call, but still tens of
// nanoseconds) must not be consulted per add, or it would itself become
// the overhead the coalescing removes.
const lagCheckEvery = 256

// Local is one owner's private delta shard over a global Counters.
// Adds are plain arithmetic; commits happen on the threshold, on the
// deadline, and on Flush. The zero Local is not usable — construct with
// NewLocal.
type Local struct {
	c       *Counters
	pending delta
	// units counts threshold-relevant pending volume.
	units     int64
	threshold int64
	// Deadline machinery: nowNanos is nil when deadline commits are
	// disabled (threshold-only coalescing — fully deterministic, used by
	// tests and benchmarks that want stable commit counts).
	nowNanos     func() int64
	maxLagNanos  int64
	lastCommitNs int64
	sinceCheck   int64
}

// Options tune a Local shard.
type Options struct {
	// Threshold is the pending-unit volume that forces a commit; 0
	// means DefaultThreshold.
	Threshold int64
	// MaxLag bounds how stale the global view may grow while this
	// shard sits on a small pending delta; 0 disables deadline commits
	// (the shard then commits on threshold and Flush only).
	MaxLag time.Duration
	// NowNanos overrides the deadline clock (tests). Nil with a
	// nonzero MaxLag selects the wall clock.
	NowNanos func() int64
}

// NewLocal returns a shard committing into c.
func NewLocal(c *Counters, opts Options) *Local {
	l := &Local{c: c, threshold: opts.Threshold}
	if l.threshold <= 0 {
		l.threshold = DefaultThreshold
	}
	if opts.MaxLag > 0 {
		l.maxLagNanos = int64(opts.MaxLag)
		l.nowNanos = opts.NowNanos
		if l.nowNanos == nil {
			// The wall clock here feeds only commit pacing — how fresh
			// the monitoring view is — never any simulated quantity, so
			// the determinism contract is untouched.
			l.nowNanos = func() int64 { return time.Now().UnixNano() } //pcaplint:ignore nondet-source deadline commits pace monitoring freshness only; no simulated result reads this clock
		}
		l.lastCommitNs = l.nowNanos()
	}
	return l
}

// AddEvents records n simulated events.
func (l *Local) AddEvents(n int64) {
	l.pending.events += n
	l.pending.adds++
	l.bump(n)
}

// AddExecs records n simulated executions.
func (l *Local) AddExecs(n int64) {
	l.pending.execs += n
	l.pending.adds++
	l.bump(n)
}

// AddMachines records n retired fleet machines.
func (l *Local) AddMachines(n int64) {
	l.pending.machines += n
	l.pending.adds++
	l.bump(n)
}

// AddEnergy records j joules of simulated disk energy. Energy rides
// along with whatever commit the unit counters trigger; it never
// triggers one itself.
func (l *Local) AddEnergy(j float64) {
	l.pending.energy += j
	l.pending.adds++
}

// bump advances the pending volume and commits on threshold or
// deadline.
func (l *Local) bump(n int64) {
	l.units += n
	if l.units >= l.threshold {
		l.Flush()
		return
	}
	if l.nowNanos == nil {
		return
	}
	if l.sinceCheck++; l.sinceCheck < lagCheckEvery {
		return
	}
	l.sinceCheck = 0
	if l.nowNanos()-l.lastCommitNs >= l.maxLagNanos {
		l.Flush()
	}
}

// Flush commits every pending delta to the global view. Owners must
// Flush before releasing the shard (job end, worker exit); Flush on an
// empty shard is a no-op.
func (l *Local) Flush() {
	if l.pending == (delta{}) {
		l.resetPacing()
		return
	}
	l.c.commit(&l.pending)
	l.units = 0
	l.resetPacing()
}

func (l *Local) resetPacing() {
	l.sinceCheck = 0
	if l.nowNanos != nil {
		l.lastCommitNs = l.nowNanos()
	}
}

// Pending reports the shard's uncommitted unit volume — test and
// debugging visibility into the coalescing state.
func (l *Local) Pending() int64 { return l.units }

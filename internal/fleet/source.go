package fleet

import (
	"sync"

	"pcapsim/internal/rng"
	"pcapsim/internal/trace"
)

// mixBufPool recycles per-machine event buffers across machine lifetimes:
// a mixSource owns one buffer from its first NextExec to the call that
// reports exhaustion, so a fleet's live buffer count tracks the number of
// concurrently active machines, not the total machine count.
var mixBufPool sync.Pool // of *[]trace.Event

// getMixBuf fetches a recycled (empty, capacity-preserving) buffer.
// The caller takes ownership and must pair it with putMixBuf.
//
//pcaplint:owner-transfer
func getMixBuf() []trace.Event {
	if p, ok := mixBufPool.Get().(*[]trace.Event); ok {
		return (*p)[:0]
	}
	return nil
}

// putMixBuf returns a buffer to the pool.
func putMixBuf(buf []trace.Event) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	mixBufPool.Put(&buf)
}

// mixSource is one machine's session as a trace.Source: a sequence of
// application executions drawn per execution from the fleet's app mix,
// generated on demand into a single recycled buffer. It is the fleet
// analogue of workload.Stream — same pooled-buffer ownership, same
// ExecSlicer lending contract — with two differences: the application is
// re-drawn each execution from the machine's deterministic pick stream,
// and the session is bounded by virtual time (Config.Session) or an
// execution count (Config.Executions) instead of an app's recorded
// executions.
//
// The per-app execution indices advance independently (the third mozilla
// session a machine starts is mozilla execution 2 regardless of what ran
// in between), so every machine walks each application's canonical
// execution sequence for its workload seed — indices past an app's
// recorded count extrapolate deterministically.
type mixSource struct {
	f     *Fleet
	id    int
	seed  uint64      // the machine's workload seed (Spec.WorkloadSeed)
	picks *rng.Source // per-execution app pick stream

	execIdx []int         // next execution index per mix entry
	emitted int           // executions started
	elapsed trace.Time    // session clock: sum of finished execution durations
	cur     []trace.Event // current execution's events (recycled buffer)
	pos     int           // next event within cur
}

// newMixSource builds machine id's session source. The rng draw order is
// part of the determinism contract: the machine root chain first yields
// the Spec draws, then splits off the app-pick stream.
func (f *Fleet) newMixSource(id int) *mixSource {
	r := f.machineRNG(id)
	spec := f.specFrom(r)
	return &mixSource{
		f:       f,
		id:      id,
		seed:    spec.WorkloadSeed,
		picks:   r.Split(appPickLabel),
		execIdx: make([]int, len(f.apps)),
	}
}

// exhausted reports whether the session bound has been reached. A session
// always completes at least one execution.
func (s *mixSource) exhausted() bool {
	if s.f.cfg.Executions > 0 {
		return s.emitted >= s.f.cfg.Executions
	}
	return s.emitted > 0 && s.elapsed >= s.f.cfg.Session
}

// NextExec implements trace.Source: draw the next application, generate
// its next execution into the recycled buffer, and advance the session
// clock by the previous execution's duration — mirroring the simulator's
// session clock, under which executions abut end-to-start.
func (s *mixSource) NextExec() (string, int, bool) {
	if len(s.cur) > 0 {
		// The duration the simulator charges an execution is its last
		// event's time (trace.Trace.Duration), so the session clock is the
		// sum of those.
		s.elapsed += s.cur[len(s.cur)-1].Time
	}
	if s.exhausted() {
		if s.cur != nil {
			putMixBuf(s.cur)
			s.cur = nil
		}
		s.pos = 0
		return "", 0, false
	}
	if s.emitted == 0 && s.cur == nil {
		s.cur = getMixBuf()
	}
	app := s.picks.Pick(s.f.appWeights)
	exec := s.execIdx[app]
	s.execIdx[app]++
	s.emitted++
	s.cur = s.f.apps[app].appendEvents(s.cur, s.seed, exec)
	s.pos = 0
	return s.f.apps[app].name, exec, true
}

// Next implements trace.Source.
func (s *mixSource) Next() (trace.Event, bool) {
	if s.pos >= len(s.cur) {
		return trace.Event{}, false
	}
	e := s.cur[s.pos]
	s.pos++
	return e, true
}

// ExecEvents implements trace.ExecSlicer: the current execution is already
// materialized in the recycled buffer, so the simulator borrows it instead
// of re-buffering. The slice is invalidated by the next NextExec.
func (s *mixSource) ExecEvents() []trace.Event {
	events := s.cur[s.pos:]
	s.pos = len(s.cur)
	return events
}

// Err implements trace.Source; generation cannot fail.
func (s *mixSource) Err() error { return nil }

// Reset implements trace.Source, rewinding to the session start. Replays
// are identical: the pick stream is re-derived from the machine's root rng
// chain.
func (s *mixSource) Reset() error {
	r := s.f.machineRNG(s.id)
	s.f.specFrom(r)
	s.picks = r.Split(appPickLabel)
	for i := range s.execIdx {
		s.execIdx[i] = 0
	}
	s.emitted = 0
	s.elapsed = 0
	s.cur = s.cur[:0]
	s.pos = 0
	return nil
}

// Package nondettest is the nondet-source analyzer's corpus. The corpus
// is type-checked as if it were a result-affecting package.
package nondettest

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// Stamp is a true positive: wall-clock time leaks into results.
func Stamp() int64 {
	return time.Now().UnixNano() // want "wall clock"
}

// Elapsed is a true positive: time.Since reads the clock too.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall clock"
}

// Roll is a true positive: the global generator's state is shared
// process-wide and unseeded.
func Roll() int {
	return rand.Intn(6) // want "process-global random state"
}

// Home is a true positive: environment reads make output
// machine-dependent.
func Home() string {
	return os.Getenv("HOME") // want "depend on the environment"
}

// Render is a true positive: fmt's map rendering becomes part of the
// output bytes.
func Render(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want "map rendering"
}

// SeededRoll is a true negative: constructors and methods on a seeded
// *rand.Rand are the sanctioned pattern.
func SeededRoll(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// RenderCount is a true negative: only a derived scalar reaches fmt.
func RenderCount(m map[string]int) string {
	return fmt.Sprintf("%d entries", len(m))
}

// Progress carries a suppressed finding with its mandatory reason.
func Progress() time.Time {
	return time.Now() //pcaplint:ignore nondet-source wall clock feeds stderr progress output, never results
}

// Package workload synthesizes application I/O traces with the structure
// the paper's predictors exploit.
//
// The paper evaluates on strace-collected traces of six interactive Linux
// applications (its Table 1). Those traces are not available, so this
// package substitutes deterministic generative models — one per
// application — that reproduce the properties every predictor in the
// study keys on:
//
//   - I/O operations are triggered from a small, stable set of program
//     counters (call sites), identical across executions;
//   - user actions produce bursts of closely spaced I/Os followed by
//     think times that are either short (below the disk breakeven time)
//     or long (shutdown opportunities);
//   - the PC paths leading into long idle periods recur within and across
//     executions, with bounded variety (a per-application scenario
//     catalog), including prefix-aliased paths that mislead path
//     predictors and modal user behaviour that idle-period history
//     disambiguates;
//   - applications are multi-process where the paper says so, with forks
//     and exits recorded in the trace.
//
// Every generator is a pure function of (seed, execution index), so all
// experiments are reproducible bit-for-bit.
package workload

import (
	"fmt"
	"sort"

	"pcapsim/internal/rng"
	"pcapsim/internal/trace"
)

// App is a synthetic application model.
type App struct {
	// Name is the application name as in the paper's Table 1.
	Name string
	// Executions is the number of recorded executions (Table 1).
	Executions int
	// Describe summarizes the modelled user behaviour.
	Describe string
	// generate appends one execution's events to the builder.
	generate func(b *B)
}

// registry holds the six paper applications, keyed by name.
var registry = map[string]*App{}

// register adds an app at package init time.
func register(a *App) *App {
	if _, dup := registry[a.Name]; dup {
		panic("workload: duplicate app " + a.Name)
	}
	registry[a.Name] = a
	return a
}

// Apps returns the six applications in the paper's Table 1 order.
func Apps() []*App {
	names := []string{"mozilla", "writer", "impress", "xemacs", "nedit", "mplayer"}
	out := make([]*App, len(names))
	for i, n := range names {
		a, ok := registry[n]
		if !ok {
			panic("workload: missing app " + n)
		}
		out[i] = a
	}
	return out
}

// ByName returns the named application model.
func ByName(name string) (*App, bool) {
	a, ok := registry[name]
	return a, ok
}

// Names returns all registered application names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Trace generates the trace of one execution. The same (seed, exec) pair
// always yields an identical trace.
func (a *App) Trace(seed uint64, exec int) *trace.Trace {
	return &trace.Trace{App: a.Name, Execution: exec, Events: a.generateEvents(seed, exec, nil)}
}

// generateEvents produces one execution's sorted event stream, reusing
// buf's capacity. It is the allocation seam between the materialized API
// (Trace, which passes a nil buffer) and the streaming one (Stream, which
// recycles a single buffer across executions).
func (a *App) generateEvents(seed uint64, exec int, buf []trace.Event) []trace.Event {
	if exec < 0 {
		panic("workload: negative execution index")
	}
	b := &B{
		// Catalog randomness is shared by every execution of the app so
		// that scenario catalogs — and therefore PC paths and signatures —
		// are stable across executions.
		CatalogR: rng.New(seed).Split(hashName(a.Name)),
		R:        rng.New(seed).Split(hashName(a.Name)).Split(uint64(exec) + 1),
		Exec:     exec,
		nextPid:  rootPid + 1,
		events:   buf[:0],
	}
	a.generate(b)
	// Builders may Warp the clock backwards to interleave processes, so
	// the emitted order is not the time order.
	trace.SortEvents(b.events)
	return b.events
}

// AppendEvents generates execution exec's sorted event stream into buf
// (reusing its capacity) and returns the filled slice — the exported
// buffer-recycling seam for consumers that compose their own streams, such
// as the fleet engine's per-machine app-mix sources. The generators are
// pure functions of (seed, exec), and exec may exceed the app's recorded
// Executions count: the models extrapolate, so an arbitrarily long session
// of further executions is well-defined and deterministic.
func (a *App) AppendEvents(buf []trace.Event, seed uint64, exec int) []trace.Event {
	return a.generateEvents(seed, exec, buf)
}

// Traces generates all of the app's executions (Table 1 counts).
func (a *App) Traces(seed uint64) []*trace.Trace {
	out := make([]*trace.Trace, a.Executions)
	for i := range out {
		out[i] = a.Trace(seed, i)
	}
	return out
}

// hashName derives a stable 64-bit label from an app name (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// rootPid is the initial process of every execution.
const rootPid trace.PID = 1

// Site is one I/O call site in an application: the program counter plus
// the operation it performs.
type Site struct {
	PC     trace.PC
	Access trace.Access
	// Size is the bytes per operation (0 defaults to 4 KB).
	Size int32
}

// R returns a read site.
func R(pc trace.PC) Site { return Site{PC: pc, Access: trace.AccessRead, Size: 4096} }

// W returns a write site.
func W(pc trace.PC) Site { return Site{PC: pc, Access: trace.AccessWrite, Size: 4096} }

// O returns an open site (the cache treats it as a metadata read).
func O(pc trace.PC) Site { return Site{PC: pc, Access: trace.AccessOpen, Size: 4096} }

// B builds one execution's event stream. Application models drive it
// turn-by-turn: emit I/O bursts for a process, advance the clock, fork and
// exit processes.
type B struct {
	// R is the per-execution randomness (user behaviour).
	R *rng.Source
	// CatalogR is shared across all executions of the app; use it only to
	// build catalogs deterministically (it must be consumed identically
	// in every execution).
	CatalogR *rng.Source
	// Exec is the execution index.
	Exec int

	now       trace.Time
	events    []trace.Event
	nextPid   trace.PID
	nextBlock int64
}

// NewBuilder returns a builder for hand-written application models (the
// six paper applications construct theirs through App.Trace). The catalog
// source defaults to an independent split of r.
func NewBuilder(r *rng.Source, exec int) *B {
	return &B{
		R:        r,
		CatalogR: r.Split(0xCA7A_106),
		Exec:     exec,
		nextPid:  rootPid + 1,
	}
}

// Build finalizes the builder into a sorted, labelled trace.
func (b *B) Build(app string, exec int) *trace.Trace {
	t := &trace.Trace{App: app, Execution: exec, Events: b.events}
	t.SortStable()
	return t
}

// Root returns the execution's initial process id.
func (b *B) Root() trace.PID { return rootPid }

// Now returns the builder clock.
func (b *B) Now() trace.Time { return b.now }

// Warp sets the builder clock, allowing concurrent activity of several
// processes to be emitted one process at a time (helper bursts overlap the
// root's). Out-of-order emission is safe: App.Trace sorts the events.
func (b *B) Warp(t trace.Time) {
	if t < 0 {
		panic("workload: negative warp target")
	}
	b.now = t
}

// Advance moves the clock forward by seconds.
func (b *B) Advance(seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("workload: negative advance %g", seconds))
	}
	b.now += trace.FromSeconds(seconds)
}

// AdvanceRange moves the clock forward by a uniform draw from [lo, hi)
// seconds and returns the drawn value.
func (b *B) AdvanceRange(lo, hi float64) float64 {
	d := b.R.Range(lo, hi)
	b.Advance(d)
	return d
}

// Fork creates a child of parent and returns its pid.
func (b *B) Fork(parent trace.PID) trace.PID {
	child := b.nextPid
	b.nextPid++
	b.events = append(b.events, trace.Event{
		Time: b.now, Pid: parent, Kind: trace.KindFork, Child: child,
	})
	return child
}

// Exit terminates pid.
func (b *B) Exit(pid trace.PID) {
	b.events = append(b.events, trace.Event{Time: b.now, Pid: pid, Kind: trace.KindExit})
}

// IO emits one I/O event for pid at the current time.
func (b *B) IO(pid trace.PID, s Site, fd trace.FD, block int64) {
	size := s.Size
	if size == 0 {
		size = 4096
	}
	b.events = append(b.events, trace.Event{
		Time:   b.now,
		Pid:    pid,
		Kind:   trace.KindIO,
		Access: s.Access,
		PC:     s.PC,
		FD:     fd,
		Block:  block,
		Size:   size,
	})
}

// FreshBlocks reserves n never-before-used disk blocks and returns the
// first. Reads of fresh blocks model cold data (file cache misses).
func (b *B) FreshBlocks(n int) int64 {
	base := b.nextBlock
	b.nextBlock += int64(n)
	return base
}

// Burst emits count I/Os for pid at site s, touching consecutive fresh
// blocks, with intra-burst gaps uniform in [minGap, maxGap) seconds.
// Intra-burst gaps are kept well under the predictors' wait-window, so a
// burst reads as one unit of I/O activity.
func (b *B) Burst(pid trace.PID, s Site, fd trace.FD, count int, minGap, maxGap float64) {
	base := b.FreshBlocks(count)
	for i := 0; i < count; i++ {
		if i > 0 {
			b.Advance(b.R.Range(minGap, maxGap))
		}
		b.IO(pid, s, fd, base+int64(i))
	}
}

// BurstAt is Burst over an explicit block range (for re-reads that should
// hit the file cache), wrapping within n blocks.
func (b *B) BurstAt(pid trace.PID, s Site, fd trace.FD, base int64, n int, count int, minGap, maxGap float64) {
	for i := 0; i < count; i++ {
		if i > 0 {
			b.Advance(b.R.Range(minGap, maxGap))
		}
		b.IO(pid, s, fd, base+int64(i%n))
	}
}

// Path emits one I/O per site in order, each on a fresh block, with
// intra-burst spacing. It is the unit from which PC paths are composed.
func (b *B) Path(pid trace.PID, fd trace.FD, sites []Site, minGap, maxGap float64) {
	for i, s := range sites {
		if i > 0 {
			b.Advance(b.R.Range(minGap, maxGap))
		}
		b.IO(pid, s, fd, b.FreshBlocks(1))
	}
}

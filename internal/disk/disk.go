// Package disk models the power behaviour of a hard disk drive for
// dynamic power management studies.
//
// The model is the analytic state machine the paper evaluates on (its
// Table 2): a disk is either busy serving I/O, idle but spinning, in a
// shutdown transition, standing by (spun down), or in a spin-up
// transition. Energy is the integral of per-state power plus fixed
// per-transition energies.
package disk

import (
	"fmt"

	"pcapsim/internal/trace"
)

// Params describes a disk's power states and transition costs.
type Params struct {
	// Name identifies the modelled drive.
	Name string
	// BusyPower is consumed while serving I/O (watts).
	BusyPower float64
	// IdlePower is consumed while spinning idle (watts).
	IdlePower float64
	// StandbyPower is consumed while spun down (watts).
	StandbyPower float64
	// SpinUpEnergy is the fixed energy of one spin-up (joules).
	SpinUpEnergy float64
	// ShutdownEnergy is the fixed energy of one shutdown (joules).
	ShutdownEnergy float64
	// SpinUpTime is the duration of a spin-up transition.
	SpinUpTime trace.Time
	// ShutdownTime is the duration of a shutdown transition.
	ShutdownTime trace.Time
	// Breakeven is the minimum device-off time for a shutdown to save
	// energy.
	Breakeven trace.Time
	// LowPowerIdlePower, if positive, is an intermediate low-power idle
	// state the drive can enter instantly (unloaded heads, reduced
	// electronics). It implements the paper's future-work extension: the
	// sliding wait-window can park the disk in this state immediately and
	// only spin down fully once the window elapses. Zero means the drive
	// has no such state.
	LowPowerIdlePower float64
}

// WithLowPowerIdle returns a copy of p with the intermediate low-power
// idle state set (see Params.LowPowerIdlePower).
func (p Params) WithLowPowerIdle(watts float64) Params {
	p.LowPowerIdlePower = watts
	return p
}

// FujitsuMHF2043AT returns the parameters of the Fujitsu MHF 2043AT drive
// used throughout the paper (Table 2).
func FujitsuMHF2043AT() Params {
	return Params{
		Name:           "Fujitsu MHF 2043AT",
		BusyPower:      2.2,
		IdlePower:      0.95,
		StandbyPower:   0.13,
		SpinUpEnergy:   4.4,
		ShutdownEnergy: 0.36,
		SpinUpTime:     trace.FromSeconds(1.6),
		ShutdownTime:   trace.FromSeconds(0.67),
		Breakeven:      trace.FromSeconds(5.43),
	}
}

// Validate checks that the parameters are physically sensible.
func (p Params) Validate() error {
	switch {
	case p.BusyPower <= 0:
		return fmt.Errorf("disk: busy power must be positive, got %g", p.BusyPower)
	case p.IdlePower <= 0:
		return fmt.Errorf("disk: idle power must be positive, got %g", p.IdlePower)
	case p.StandbyPower < 0:
		return fmt.Errorf("disk: standby power must be non-negative, got %g", p.StandbyPower)
	case p.StandbyPower >= p.IdlePower:
		return fmt.Errorf("disk: standby power %g must be below idle power %g", p.StandbyPower, p.IdlePower)
	case p.IdlePower > p.BusyPower:
		return fmt.Errorf("disk: idle power %g must not exceed busy power %g", p.IdlePower, p.BusyPower)
	case p.SpinUpEnergy < 0 || p.ShutdownEnergy < 0:
		return fmt.Errorf("disk: transition energies must be non-negative")
	case p.SpinUpTime < 0 || p.ShutdownTime < 0:
		return fmt.Errorf("disk: transition times must be non-negative")
	case p.Breakeven <= 0:
		return fmt.Errorf("disk: breakeven must be positive, got %v", p.Breakeven)
	case p.LowPowerIdlePower != 0 && (p.LowPowerIdlePower <= p.StandbyPower || p.LowPowerIdlePower >= p.IdlePower):
		return fmt.Errorf("disk: low-power idle %g must lie between standby %g and idle %g",
			p.LowPowerIdlePower, p.StandbyPower, p.IdlePower)
	}
	return nil
}

// CycleEnergy returns the fixed energy cost of one shutdown + spin-up
// cycle (joules).
func (p Params) CycleEnergy() float64 { return p.ShutdownEnergy + p.SpinUpEnergy }

// CycleTime returns the total duration of one shutdown + spin-up cycle.
func (p Params) CycleTime() trace.Time { return p.ShutdownTime + p.SpinUpTime }

// ComputeBreakeven derives the breakeven time from the other parameters:
// the idle-period length T at which staying idle costs exactly as much as
// shutting down, standing by for the remainder, and spinning back up.
//
//	IdlePower·T = ShutdownEnergy + SpinUpEnergy
//	            + StandbyPower·(T − ShutdownTime − SpinUpTime)
//
// The returned value is clamped to be at least the cycle time, since a
// shutdown cannot pay off before the transitions themselves complete.
func (p Params) ComputeBreakeven() trace.Time {
	denom := p.IdlePower - p.StandbyPower
	if denom <= 0 {
		return p.CycleTime()
	}
	cycle := p.CycleTime().Seconds()
	t := (p.CycleEnergy() - p.StandbyPower*cycle) / denom
	if t < cycle {
		t = cycle
	}
	return trace.FromSeconds(t)
}

// ShutdownSavings returns the energy saved (possibly negative) by shutting
// the disk down for an off-period of the given length, relative to idling
// through it. The off period includes the transition times.
func (p Params) ShutdownSavings(off trace.Time) float64 {
	if off < 0 {
		off = 0
	}
	idleCost := p.IdlePower * off.Seconds()
	standby := off - p.CycleTime()
	if standby < 0 {
		standby = 0
	}
	shutdownCost := p.CycleEnergy() + p.StandbyPower*standby.Seconds()
	return idleCost - shutdownCost
}

// State enumerates disk power states.
type State uint8

// Disk power states.
const (
	// StateIdle: platters spinning, no I/O in service.
	StateIdle State = iota
	// StateBusy: serving I/O.
	StateBusy
	// StateShuttingDown: spinning down; cannot serve I/O.
	StateShuttingDown
	// StateStandby: spun down.
	StateStandby
	// StateSpinningUp: spinning up; cannot serve I/O yet.
	StateSpinningUp
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	case StateShuttingDown:
		return "shutting-down"
	case StateStandby:
		return "standby"
	case StateSpinningUp:
		return "spinning-up"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// EnergyBreakdown accumulates energy by accounting bucket (joules).
type EnergyBreakdown struct {
	// Busy is energy consumed serving I/O.
	Busy float64
	// IdleShort is idle-state energy spent inside idle periods shorter
	// than breakeven.
	IdleShort float64
	// IdleLong is idle-state plus standby energy spent inside idle
	// periods at least as long as breakeven.
	IdleLong float64
	// PowerCycle is the fixed shutdown + spin-up energy of every issued
	// shutdown, correct or not.
	PowerCycle float64
}

// Total returns the sum of all buckets.
func (b EnergyBreakdown) Total() float64 {
	return b.Busy + b.IdleShort + b.IdleLong + b.PowerCycle
}

// Add accumulates o into b.
func (b *EnergyBreakdown) Add(o EnergyBreakdown) {
	b.Busy += o.Busy
	b.IdleShort += o.IdleShort
	b.IdleLong += o.IdleLong
	b.PowerCycle += o.PowerCycle
}

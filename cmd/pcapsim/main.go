// Command pcapsim regenerates the paper's tables and figures from the
// synthetic workloads.
//
// Usage:
//
//	pcapsim -exp all
//	pcapsim -exp fig7 -seed 42
//	pcapsim -exp table1,fig6,fig8 -parallel 8
//	pcapsim -replay traces/mozilla-000.pct2 -policies base,tp,pcap,ideal
//	pcapsim -experiment examples/pcap-vs-timeout.json
//	pcapsim -fleet 1000 -duration 30m -mix mozilla:2,xemacs:1 -policies base,tp,pcap
//
// Experiments: table1, table2, table3, fig6, fig7, fig8, fig9, fig10,
// tpsweep, multistate, predictors, devices, prefetch, and "all".
//
// -fleet N simulates a fleet of N machines on a shared virtual clock
// (internal/fleet) instead of the paper's per-app experiments: machines
// draw heterogeneous devices from the disk catalog and per-execution
// applications from the -mix weights ("app:weight,app:weight"; default
// all six apps equally), run sessions of -duration virtual time with
// arrivals staggered across one session, and the run prints each
// policy's aggregate fleet report plus a cross-policy comparison. The
// output is byte-identical for a seed at any -parallel value.
//
// -experiment runs an executable hypothesis (internal/hypothesis): the
// JSON spec names an app, a candidate and a baseline policy, success
// criteria, and optionally a counterfactual decision flip; the report
// carries the verdict and a per-decision energy attribution. Exit status:
// 0 when the hypothesis is supported, 3 when it is refuted, 1 on errors —
// so a spec can gate a CI pipeline.
//
// The evaluation matrix fans out across -parallel workers (default: one
// per CPU). Output is deterministic: the same seed produces byte-identical
// tables and figures at any worker count. Wall-clock is reported on
// stderr so stdout stays byte-comparable.
//
// -replay runs a recorded trace file (v1 binary, v2 columnar or text;
// the format is sniffed from the leading bytes) through the simulator
// under the -policies list instead of the generated workloads.
//
// For profiling the simulation hot path, -cpuprofile and -memprofile
// write pprof files covering the whole run:
//
//	pcapsim -exp all -cpuprofile cpu.out
//	go tool pprof -top cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pcapsim/internal/cliutil"
	"pcapsim/internal/experiments"
	"pcapsim/internal/fleet"
	"pcapsim/internal/hypothesis"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
)

func main() {
	var (
		expFlag      = flag.String("exp", "all", "comma-separated experiments (table1,table2,table3,fig6,fig7,fig8,fig9,fig10,tpsweep,multistate,predictors,devices,prefetch,all)")
		seedFlag     = flag.Uint64("seed", experiments.DefaultSeed, "workload seed")
		barsFlag     = flag.Bool("bars", false, "render accuracy figures as stacked bars instead of tables")
		parallelFlag = flag.Int("parallel", runtime.NumCPU(), "worker count for the experiment matrix (1 = serial)")
		scaleFlag    = flag.Int("scale", 1, "repeat every workload N times with warped timestamps (1 = the paper's workloads)")
		onDemandFlag = flag.Bool("ondemand", false, "stream workloads on demand instead of pinning generated traces in memory")
		replayFlag   = flag.String("replay", "", "replay a recorded trace file instead of running experiments (with -fleet N: replay it as the fleet's workload)")
		hypoFlag     = flag.String("experiment", "", "run an executable hypothesis from a JSON spec file")
		fleetFlag    = flag.Int("fleet", 0, "simulate a fleet of N machines instead of running experiments")
		mixFlag      = flag.String("mix", "", "fleet application mix as app:weight,app:weight (default: all apps, equal weights)")
		durationFlag = flag.Duration("duration", 30*time.Minute, "fleet per-machine virtual session length")
		policiesFlag = flag.String("policies", "base,tp,pcap,ideal", "comma-separated policies for -replay and -fleet ("+strings.Join(experiments.ReplayPolicyNames(), ",")+")")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the run to the given file")
		memProfile   = flag.String("memprofile", "", "write a heap profile (after the run) to the given file")
	)
	var predFlags cliutil.PredicateFlags
	predFlags.Register("with -replay: ")
	flag.Parse()
	if *parallelFlag < 1 {
		*parallelFlag = 1
	}
	if *scaleFlag < 1 {
		fatal(fmt.Errorf("-scale must be at least 1, got %d", *scaleFlag))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pcapsim: closing cpu profile:", err)
			}
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcapsim: -memprofile:", err)
				return
			}
			runtime.GC() // profile only live, post-run memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pcapsim: -memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pcapsim: closing mem profile:", err)
			}
		}()
	}

	if *hypoFlag != "" {
		data, err := os.ReadFile(*hypoFlag)
		if err != nil {
			fatal(err)
		}
		spec, err := hypothesis.Parse(data)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		res, err := hypothesis.Run(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Print(hypothesis.Render(res))
		fmt.Fprintf(os.Stderr, "pcapsim: hypothesis %q in %s\n",
			spec.Name, time.Since(start).Round(time.Millisecond))
		if !res.Supported {
			os.Exit(3)
		}
		return
	}

	pred, err := predFlags.Predicate()
	if err != nil {
		fatal(err)
	}

	if *fleetFlag != 0 {
		if *fleetFlag < 0 {
			fatal(fmt.Errorf("fleet: machine count must be positive, got %d", *fleetFlag))
		}
		mix, err := fleet.ParseMix(*mixFlag)
		if err != nil {
			fatal(fmt.Errorf("-mix: %w", err))
		}
		cfg := fleet.Config{
			Machines: *fleetFlag,
			Seed:     *seedFlag,
			Session:  trace.FromSeconds(durationFlag.Seconds()),
			Mix:      mix,
			Workers:  *parallelFlag,
		}
		if *replayFlag != "" {
			// Fleet trace replay: the file's executions (decoded in
			// parallel, predicate pushed down to the block index) become
			// the fleet's workload instead of the synthetic generators.
			fs, err := trace.OpenTraceFileOpts(*replayFlag, trace.OpenOptions{Workers: *parallelFlag, Pred: pred})
			if err != nil {
				fatal(cliutil.TraceFileError(*replayFlag, err))
			}
			traces, err := trace.Collect(fs)
			_ = fs.Close() // read-only handle; the decode error below is authoritative
			if err != nil {
				fatal(cliutil.TraceFileError(*replayFlag, err))
			}
			cfg.Replay = traces
		}
		start := time.Now()
		out, err := experiments.FleetComparison(cfg, splitList(*policiesFlag))
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "pcapsim: fleet of %d machines in %s (parallel=%d)\n",
			*fleetFlag, time.Since(start).Round(time.Millisecond), *parallelFlag)
		return
	}

	suite, err := experiments.NewSuite(*seedFlag, sim.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	suite.SetScale(*scaleFlag)
	suite.SetOnDemand(*onDemandFlag)

	if *replayFlag != "" {
		start := time.Now()
		out, err := suite.ReplayFileOpts(*replayFlag, splitList(*policiesFlag),
			experiments.ReplayOptions{Workers: *parallelFlag, Pred: pred})
		if err != nil {
			fatal(cliutil.TraceFileError(*replayFlag, err))
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "pcapsim: replay of %s in %s\n",
			*replayFlag, time.Since(start).Round(time.Millisecond))
		return
	}

	order := experiments.ExperimentNames()
	known := map[string]bool{}
	for _, o := range order {
		known[o] = true
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		if e == "" {
			continue
		}
		if e == "all" {
			for _, o := range order {
				want[o] = true
			}
			continue
		}
		if !known[e] {
			fatal(fmt.Errorf("unknown experiment %q", e))
		}
		want[e] = true
	}
	var wanted []string
	for _, e := range order {
		if want[e] {
			wanted = append(wanted, e)
		}
	}

	start := time.Now()
	if *parallelFlag > 1 {
		// Warm every memoized cell in parallel; the serial rendering below
		// then reads caches only, keeping output byte-identical to -parallel 1.
		if err := suite.RunMatrix(*parallelFlag, wanted...); err != nil {
			fatal(err)
		}
	}
	for _, e := range wanted {
		out, err := suite.RenderExperiment(e, *barsFlag)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	fmt.Fprintf(os.Stderr, "pcapsim: %d experiment(s) in %s (parallel=%d)\n",
		len(wanted), time.Since(start).Round(time.Millisecond), *parallelFlag)
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcapsim:", err)
	os.Exit(1)
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pcapsim/internal/experiments"
	"pcapsim/internal/fleet"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// newTestServer starts a server over a real TCP listener (httptest) so
// requests cross an actual network boundary, and tears it down with the
// test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, hs
}

// submitWait posts a job spec with ?wait=1 and decodes the final view.
func submitWait(t *testing.T, base string, spec JobSpec) View {
	t.Helper()
	v, status := submitWaitStatus(t, base, spec)
	if status != http.StatusOK {
		t.Fatalf("POST /jobs?wait=1 status %d: %+v", status, v)
	}
	return v
}

func submitWaitStatus(t *testing.T, base string, spec JobSpec) (View, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && resp.StatusCode == http.StatusOK {
		t.Fatalf("decoding job view: %v", err)
	}
	return v, resp.StatusCode
}

// submitAsync posts a job spec without waiting and returns its view.
func submitAsync(t *testing.T, base string, spec JobSpec) View {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs status %d: %s", resp.StatusCode, b)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// getJob polls a job's view.
func getJob(t *testing.T, base, id string) View {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// writeTraceFile writes nedit's generated workload as a v2 columnar
// file and returns its path. Small but real: every policy sees the same
// executions the generator produces.
func writeTraceFile(t *testing.T, dir string) string {
	t.Helper()
	app, _ := workload.ByName("nedit")
	suite, err := experiments.NewSuite(experiments.DefaultSeed, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tr := range suite.Traces(app) {
		if err := trace.WriteColumnar(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "nedit.pct2")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// evalPolicies keeps test jobs fast.
var evalPolicies = []string{"base", "tp", "pcap"}

// TestEvalMatchesLocalAtAnyPoolSize is the determinism contract across
// the network boundary: an eval job's Output must be byte-identical to
// the local library run, at every worker-pool size.
func TestEvalMatchesLocalAtAnyPoolSize(t *testing.T) {
	suite, err := experiments.NewSuite(experiments.DefaultSeed, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("nedit")
	rows, err := suite.ReplayRows(suite.SourceFor(app), evalPolicies)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("eval %s\n\n%s", "nedit", experiments.RenderReplayRows(rows))

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, hs := newTestServer(t, Config{Workers: workers})
			v := submitWait(t, hs.URL, JobSpec{Kind: KindEval, App: "nedit", Policies: evalPolicies})
			if v.State != StateDone {
				t.Fatalf("state = %q, error = %q", v.State, v.Error)
			}
			if v.Output != want {
				t.Errorf("server output differs from local run:\n--- server ---\n%s\n--- local ---\n%s", v.Output, want)
			}
		})
	}
}

// TestReplayMatchesLocal covers both trace reference styles — an upload
// and a path inside the server's trace directory — against the local
// ReplayFileOpts rendering, including a predicate and parallel decode.
func TestReplayMatchesLocal(t *testing.T) {
	dir := t.TempDir()
	path := writeTraceFile(t, dir)
	suite, err := experiments.NewSuite(experiments.DefaultSeed, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	srv, hs := newTestServer(t, Config{Workers: 2, TraceDir: dir})

	t.Run("path", func(t *testing.T) {
		want, err := suite.ReplayFileOpts(path, evalPolicies, experiments.ReplayOptions{})
		if err != nil {
			t.Fatal(err)
		}
		v := submitWait(t, hs.URL, JobSpec{Kind: KindReplay, Trace: "nedit.pct2", Policies: evalPolicies})
		if v.State != StateDone {
			t.Fatalf("state = %q, error = %q", v.State, v.Error)
		}
		if v.Output != want {
			t.Errorf("server replay differs from local:\n--- server ---\n%s\n--- local ---\n%s", v.Output, want)
		}
	})

	t.Run("upload", func(t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(hs.URL+"/traces", "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var up struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&up)
		resp.Body.Close()
		if err != nil || up.ID == "" {
			t.Fatalf("upload: id=%q err=%v", up.ID, err)
		}
		// The server renders the upload's stored path; replay that same
		// path locally.
		storedPath, err := srv.resolveTrace(up.ID)
		if err != nil {
			t.Fatal(err)
		}
		want, err := suite.ReplayFileOpts(storedPath, evalPolicies, experiments.ReplayOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		v := submitWait(t, hs.URL, JobSpec{Kind: KindReplay, Trace: up.ID, Policies: evalPolicies, Workers: 2})
		if v.State != StateDone {
			t.Fatalf("state = %q, error = %q", v.State, v.Error)
		}
		if v.Output != want {
			t.Errorf("server replay differs from local:\n--- server ---\n%s\n--- local ---\n%s", v.Output, want)
		}
	})

	t.Run("predicate", func(t *testing.T) {
		pred := trace.Predicate{To: 30 * trace.Second}
		want, err := suite.ReplayFileOpts(path, evalPolicies, experiments.ReplayOptions{Pred: pred})
		if err != nil {
			t.Fatal(err)
		}
		v := submitWait(t, hs.URL, JobSpec{Kind: KindReplay, Trace: "nedit.pct2", Policies: evalPolicies, ToSec: 30})
		if v.State != StateDone {
			t.Fatalf("state = %q, error = %q", v.State, v.Error)
		}
		if v.Output != want {
			t.Errorf("server replay with predicate differs from local:\n--- server ---\n%s\n--- local ---\n%s", v.Output, want)
		}
	})
}

// TestFleetMatchesLocal pins fleet jobs to the local FleetComparison
// rendering.
func TestFleetMatchesLocal(t *testing.T) {
	policies := []string{"base", "tp"}
	cfg := fleet.Config{
		Machines: 20,
		Seed:     experiments.DefaultSeed,
		Session:  trace.FromSeconds(120),
		Workers:  2,
	}
	want, err := experiments.FleetComparison(cfg, policies)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{Workers: 2})
	v := submitWait(t, hs.URL, JobSpec{
		Kind: KindFleet, Machines: 20, DurationSec: 120, Policies: policies, Workers: 2,
	})
	if v.State != StateDone {
		t.Fatalf("state = %q, error = %q", v.State, v.Error)
	}
	if v.Output != want {
		t.Errorf("server fleet differs from local:\n--- server ---\n%s\n--- local ---\n%s", v.Output, want)
	}
	if v.Machines != 20*int64(len(policies)) {
		t.Errorf("Machines progress = %d, want %d", v.Machines, 20*len(policies))
	}
}

// TestConcurrentJobsExactCounters is the server-level exactness test:
// many identical jobs race across the pool (run under -race by ci.sh),
// and the coalesced global counters must equal per-job totals times the
// job count — no delta lost or doubled across pooled contexts.
func TestConcurrentJobsExactCounters(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	// One reference job fixes the per-job totals.
	ref := submitWait(t, hs.URL, JobSpec{Kind: KindEval, App: "nedit", Policies: evalPolicies, Execs: 5})
	if ref.State != StateDone {
		t.Fatalf("reference job: state = %q, error = %q", ref.State, ref.Error)
	}
	if ref.Events == 0 || ref.Execs == 0 || ref.EnergyJ == 0 {
		t.Fatalf("reference job reported no progress: %+v", ref)
	}

	const extra = 12
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := submitWait(t, hs.URL, JobSpec{Kind: KindEval, App: "nedit", Policies: evalPolicies, Execs: 5})
			if v.State != StateDone {
				t.Errorf("job state = %q, error = %q", v.State, v.Error)
			}
			if v.Events != ref.Events || v.Execs != ref.Execs || v.EnergyJ != ref.EnergyJ {
				t.Errorf("job progress %+v differs from reference %+v", v, ref)
			}
		}()
	}
	wg.Wait()

	snap := srv.Counters().Snapshot()
	const jobs = extra + 1
	if want := ref.Events * jobs; snap.Events != want {
		t.Errorf("global Events = %d, want %d", snap.Events, want)
	}
	if want := ref.Execs * jobs; snap.Execs != want {
		t.Errorf("global Execs = %d, want %d", snap.Execs, want)
	}
	if snap.JobsStarted != jobs || snap.JobsDone != jobs || snap.JobsFailed != 0 {
		t.Errorf("job counters: %+v, want %d started/done, 0 failed", snap, jobs)
	}
	if snap.Commits == 0 || snap.Commits >= snap.Adds {
		t.Errorf("Commits = %d for %d adds; coalescing not effective", snap.Commits, snap.Adds)
	}
	// Energy sums float deltas in scheduling order; per-policy totals are
	// identical across identical jobs, so the global total still must be
	// an exact multiple (each job contributes the same finite partials).
	if want := ref.EnergyJ * jobs; snap.EnergyJ < want*0.999999 || snap.EnergyJ > want*1.000001 {
		t.Errorf("global EnergyJ = %g, want ~%g", snap.EnergyJ, want)
	}
}

// TestClientDisconnectCancelsJob: a synchronous client that hangs up
// mid-job must cancel it, and the worker (plus its pooled context) must
// come back to serve later jobs.
func TestClientDisconnectCancelsJob(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 1})

	body, err := json.Marshal(JobSpec{Kind: KindFleet, Machines: 5000, DurationSec: 1800, Policies: []string{"base", "tp", "pcap", "ideal"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the job is running, then hang up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		if j, ok := srv.job("j1"); ok {
			j.mu.Lock()
			running := j.state == StateRunning
			j.mu.Unlock()
			if running {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Error("expected the canceled request to error")
	}

	// The job must reach canceled, not run to completion.
	j, _ := srv.job("j1")
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not wind down after client disconnect")
	}
	if v := j.view(); v.State != StateCanceled {
		t.Errorf("state = %q after disconnect, want %q (error %q)", v.State, StateCanceled, v.Error)
	}

	// The single worker is free again: a follow-up job completes.
	v := submitWait(t, hs.URL, JobSpec{Kind: KindEval, App: "nedit", Policies: []string{"base"}, Execs: 2})
	if v.State != StateDone {
		t.Errorf("follow-up job state = %q, error = %q", v.State, v.Error)
	}
	if snap := srv.Counters().Snapshot(); snap.JobsFailed != 1 {
		t.Errorf("JobsFailed = %d, want 1 (the canceled job)", snap.JobsFailed)
	}
}

// TestJobTimeout: a job whose own timeout elapses fails with a timeout
// error and frees its worker.
func TestJobTimeout(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	v := submitWait(t, hs.URL, JobSpec{
		Kind: KindFleet, Machines: 20000, DurationSec: 1800,
		Policies: []string{"base", "tp", "pcap", "ideal"}, TimeoutSec: 0.05,
	})
	if v.State != StateFailed || !strings.Contains(v.Error, "timeout") {
		t.Fatalf("state = %q, error = %q; want failed with timeout", v.State, v.Error)
	}
	// Worker is free for real work afterwards.
	v = submitWait(t, hs.URL, JobSpec{Kind: KindEval, App: "nedit", Policies: []string{"base"}, Execs: 2})
	if v.State != StateDone {
		t.Errorf("follow-up job state = %q, error = %q", v.State, v.Error)
	}
}

// TestCancelEndpointAndSSE cancels an async job via the cancel endpoint
// while following its event stream, and checks the stream terminates
// with a canceled event.
func TestCancelEndpointAndSSE(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	v := submitAsync(t, hs.URL, JobSpec{
		Kind: KindFleet, Machines: 5000, DurationSec: 1800,
		Policies: []string{"base", "tp", "pcap", "ideal"},
	})

	resp, err := http.Get(hs.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	cresp, err := http.Post(hs.URL+"/jobs/"+v.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()

	stream, err := io.ReadAll(resp.Body) // returns once the job terminates
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stream), "event: canceled") {
		t.Errorf("SSE stream missing terminal canceled event:\n%s", stream)
	}
	final := getJob(t, hs.URL, v.ID)
	if final.State != StateCanceled {
		t.Errorf("state = %q, want canceled (error %q)", final.State, final.Error)
	}
}

// TestQueueBoundsAndValidation: bad specs are rejected up front, and a
// full queue answers 503 without accepting the job.
func TestQueueBoundsAndValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	for _, spec := range []JobSpec{
		{Kind: "nope"},
		{Kind: KindEval},                 // missing app
		{Kind: KindEval, App: "mystery"}, // unknown app
		{Kind: KindReplay},               // missing trace
		{Kind: KindFleet},                // missing machines
		{Kind: KindEval, App: "nedit", Execs: -1},
	} {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", spec, resp.StatusCode)
		}
	}

	// Saturate: one long job occupies the worker, one sits in the queue;
	// the next submission must bounce with 503.
	long := JobSpec{Kind: KindFleet, Machines: 5000, DurationSec: 1800, Policies: []string{"base", "tp", "pcap", "ideal"}}
	running := submitAsync(t, hs.URL, long)
	queued := submitAsync(t, hs.URL, long)
	body, _ := json.Marshal(long)
	resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overflow submission: status %d, want 503", resp.StatusCode)
	}
	for _, id := range []string{running.ID, queued.ID} {
		cresp, err := http.Post(hs.URL+"/jobs/"+id+"/cancel", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		cresp.Body.Close()
	}
}

// TestTraceDirEscapeRejected: path references cannot leave the trace
// directory.
func TestTraceDirEscapeRejected(t *testing.T) {
	dir := t.TempDir()
	_, hs := newTestServer(t, Config{Workers: 1, TraceDir: dir})
	v := submitWait(t, hs.URL, JobSpec{Kind: KindReplay, Trace: "../etc/passwd", Policies: []string{"base"}})
	if v.State != StateFailed || !strings.Contains(v.Error, "escapes") {
		t.Errorf("state = %q, error = %q; want failed escape error", v.State, v.Error)
	}
}

// TestGracefulShutdown: Shutdown rejects new work, finishes the backlog,
// and leaves no workers behind.
func TestGracefulShutdown(t *testing.T) {
	srv, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	v := submitAsync(t, hs.URL, JobSpec{Kind: KindEval, App: "nedit", Policies: []string{"base"}, Execs: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The queued job ran to completion during the drain.
	j, ok := srv.job(v.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if got := j.view(); got.State != StateDone {
		t.Errorf("drained job state = %q, error = %q", got.State, got.Error)
	}

	// New submissions bounce.
	body, _ := json.Marshal(JobSpec{Kind: KindEval, App: "nedit", Policies: []string{"base"}})
	resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submission: status %d, want 503", resp.StatusCode)
	}
	if err := srv.Shutdown(ctx); err == nil {
		t.Error("second Shutdown should report an error")
	}
}

// TestStatsEndpoint sanity-checks the /stats payload.
func TestStatsEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 3})
	submitWait(t, hs.URL, JobSpec{Kind: KindEval, App: "nedit", Policies: []string{"base"}, Execs: 2})
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sv statsView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	if sv.Workers != 3 || sv.JobsDone != 1 || sv.Events == 0 {
		t.Errorf("stats view: %+v", sv)
	}
}

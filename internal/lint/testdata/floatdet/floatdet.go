// Package sim is the floatdet corpus: float folds must run in ID
// order, not map-iteration or goroutine-completion order (DESIGN.md
// §§14, 17). Type-checked as pcapsim/internal/sim so result-affecting
// scoping applies.
package sim

import "sync"

// SumWeights accumulates in map order: the classic violation.
func SumWeights(m map[string]float64) float64 {
	total := 0.0
	for _, w := range m {
		total += w // want "map iteration order"
	}
	return total
}

// ProdWeights spells the fold out; same order dependence.
func ProdWeights(m map[string]float64) float64 {
	p := 1.0
	for _, w := range m {
		p = p * w // want "map iteration order"
	}
	return p
}

type tally struct {
	sum float32
}

// FieldAccum shows a field target: always treated as shared.
func (t *tally) FieldAccum(m map[int]float32) {
	for _, v := range m {
		t.sum += v // want "map iteration order"
	}
}

// CountKeys is integer accumulation: order-insensitive, not floatdet's
// business.
func CountKeys(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// SumOrdered folds a slice in index order: the sanctioned shape.
func SumOrdered(ws []float64) float64 {
	total := 0.0
	for _, w := range ws {
		total += w
	}
	return total
}

// MaxScaled's compound assign hits a per-iteration local, which resets
// each pass; max itself is order-insensitive.
func MaxScaled(m map[string]float64) float64 {
	best := 0.0
	for _, w := range m {
		scaled := w
		scaled *= 2
		if scaled > best {
			best = scaled
		}
	}
	return best
}

// ParallelSum folds in goroutine-completion order (and races, but
// that is the race detector's department — the fold order alone is
// enough to flag).
func ParallelSum(ws []float64) float64 {
	var wg sync.WaitGroup
	total := 0.0
	for _, w := range ws {
		wg.Add(1)
		go func(w float64) {
			defer wg.Done()
			total += w // want "completion order"
		}(w)
	}
	wg.Wait()
	return total
}

// ShardedSum accumulates locally per goroutine and hands the partial to
// a merger: the sanctioned parallel shape.
func ShardedSum(shards [][]float64, out chan float64) {
	for _, sh := range shards {
		go func(sh []float64) {
			local := 0.0
			for _, w := range sh {
				local += w
			}
			out <- local
		}(sh)
	}
}

// SumLoose documents a tolerated aggregate.
func SumLoose(m map[string]float64) float64 {
	total := 0.0
	for _, w := range m {
		//pcaplint:ignore floatdet corpus: diagnostic-only aggregate, tolerance documented
		total += w
	}
	return total
}

// Quickstart: build a PCAP predictor, feed it a hand-made I/O pattern, and
// watch it learn — the paper's Figure 3 walk-through in twenty lines —
// then run a full application workload through the simulator.
package main

import (
	"fmt"

	"pcapsim/internal/core"
	"pcapsim/internal/predictor"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

func main() {
	// --- Part 1: the predictor alone -----------------------------------
	pcap := core.MustNew(core.DefaultConfig(core.VariantBase))
	proc := pcap.NewProcess(1)

	access := func(atSec float64, pc trace.PC) predictor.Decision {
		return proc.OnAccess(predictor.Access{
			Time: trace.FromSeconds(atSec),
			PC:   pc,
			FD:   3,
		})
	}

	fmt.Println("== PCAP learning the path {PC1, PC2, PC1} (paper Figure 3) ==")
	show := func(at float64, pc trace.PC, d predictor.Decision) {
		fmt.Printf("t=%5.1fs pc=0x%x -> shutdown in %v (%s)\n",
			at, uint32(pc), d.Delay.Seconds(), d.Source)
	}
	// First occurrence: every decision comes from the backup timeout.
	for i, at := range []float64{0.1, 0.2, 0.3} {
		pc := []trace.PC{0x1000, 0x2000, 0x1000}[i]
		show(at, pc, access(at, pc))
	}
	// A 20-second idle period passes; the path is now trained.
	for i, at := range []float64{20.1, 20.2, 20.3} {
		pc := []trace.PC{0x1000, 0x2000, 0x1000}[i]
		show(at, pc, access(at, pc))
	}
	fmt.Printf("prediction table: %d entries (%d bytes)\n\n",
		pcap.Table().Len(), pcap.Table().StorageBytes())

	// --- Part 2: a whole application through the simulator -------------
	fmt.Println("== nedit workload: PCAP vs the 10 s timeout predictor ==")
	runner := sim.MustNewRunner(sim.DefaultConfig())
	app, _ := workload.ByName("nedit")
	traces := app.Traces(20040214)

	tp := sim.Policy{
		Name:       "TP",
		NewFactory: func() predictor.Factory { return predictor.NewTimeout(10 * trace.Second) },
	}
	pc := sim.Policy{
		Name:       "PCAP",
		NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) },
		Reuse:      true, // the prediction table survives across executions
	}
	base := sim.Policy{
		Name:       "Base",
		NewFactory: func() predictor.Factory { return predictor.AlwaysOn{} },
	}

	baseRes, err := runner.RunApp(traces, base)
	if err != nil {
		panic(err)
	}
	for _, pol := range []sim.Policy{tp, pc} {
		res, err := runner.RunApp(traces, pol)
		if err != nil {
			panic(err)
		}
		f := res.Global.Fractions()
		saved := 1 - res.Energy.Total()/baseRes.Energy.Total()
		fmt.Printf("%-5s hit %5.1f%%  miss %5.1f%%  energy saved %5.1f%%  shutdowns %d\n",
			pol.Name, 100*f.Hit, 100*f.Miss, 100*saved, res.Cycles)
	}
}

package predictor

import (
	"testing"

	"pcapsim/internal/trace"
)

func TestTimeout(t *testing.T) {
	tp := NewTimeout(10 * trace.Second)
	if tp.Name() != "TP" {
		t.Errorf("name %q", tp.Name())
	}
	if tp.Timeout() != 10*trace.Second {
		t.Errorf("timeout %v", tp.Timeout())
	}
	p := tp.NewProcess(1)
	for i := 0; i < 3; i++ {
		d := p.OnAccess(Access{Time: trace.Time(i) * trace.Second})
		if !d.Shutdown || d.Delay != 10*trace.Second || d.Source != SourcePrimary {
			t.Fatalf("decision %+v", d)
		}
	}
}

func TestTimeoutPanicsOnBadTimer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTimeout(0)
}

func TestOracle(t *testing.T) {
	o := NewOracle(trace.FromSeconds(5.43))
	if o.Name() != "Ideal" {
		t.Errorf("name %q", o.Name())
	}
	p := o.NewProcess(1)
	fa, ok := p.(FutureAware)
	if !ok {
		t.Fatal("oracle process is not FutureAware")
	}
	// Long upcoming gap: immediate shutdown.
	fa.SetNextGap(10*trace.Second, true)
	if d := p.OnAccess(Access{}); !d.Shutdown || d.Delay != 0 || d.Source != SourcePrimary {
		t.Fatalf("long gap decision %+v", d)
	}
	// Short gap: no shutdown.
	fa.SetNextGap(2*trace.Second, true)
	if d := p.OnAccess(Access{}); d.Shutdown {
		t.Fatalf("short gap decision %+v", d)
	}
	// Unknown future: no shutdown.
	fa.SetNextGap(0, false)
	if d := p.OnAccess(Access{}); d.Shutdown {
		t.Fatalf("unknown gap decision %+v", d)
	}
	// Exactly breakeven counts as long.
	fa.SetNextGap(trace.FromSeconds(5.43), true)
	if d := p.OnAccess(Access{}); !d.Shutdown {
		t.Fatal("breakeven-length gap not predicted")
	}
}

func TestOraclePanicsOnBadBreakeven(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewOracle(-1)
}

func TestAlwaysOn(t *testing.T) {
	var a AlwaysOn
	if a.Name() != "Base" {
		t.Errorf("name %q", a.Name())
	}
	p := a.NewProcess(1)
	if d := p.OnAccess(Access{}); d.Shutdown {
		t.Fatalf("AlwaysOn shut down: %+v", d)
	}
}

func TestSourceString(t *testing.T) {
	if SourceNone.String() != "none" || SourcePrimary.String() != "primary" || SourceBackup.String() != "backup" {
		t.Error("source names")
	}
	if Source(9).String() != "source(9)" {
		t.Error("unknown source formatting")
	}
}

package disk

import (
	"fmt"

	"pcapsim/internal/trace"
)

// Machine is an explicit disk state machine that integrates energy over a
// timeline of I/O services and shutdown commands.
//
// It exists both as the engine behind the energy experiments' multi-state
// extension and as an independently testable implementation whose totals
// are cross-checked against the simulator's analytic per-period energy
// accounting.
//
// Time must advance monotonically across calls. The machine charges:
//
//   - BusyPower during I/O service,
//   - IdlePower while spinning idle,
//   - the fixed ShutdownEnergy/SpinUpEnergy per transition (transition
//     *time* is accounted at standby power, so the fixed energies are pure
//     additions, matching Params.ShutdownSavings),
//   - StandbyPower while spun down.
//
// Idle and standby energy is attributed to the IdleShort/IdleLong buckets
// by the caller's classification of the current idle period, supplied to
// Shutdown/Access via the long flag.
type Machine struct {
	params Params
	state  State
	now    trace.Time
	energy EnergyBreakdown
	// spinUpDone is when an in-progress spin-up completes.
	spinUpDone trace.Time
	// shutdownDone is when an in-progress shutdown completes.
	shutdownDone trace.Time
	// longPeriod tells which idle bucket accrues idle/standby energy.
	longPeriod bool
	cycles     int
}

// NewMachine returns a Machine in the idle state at time zero.
func NewMachine(p Params) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Machine{params: p, state: StateIdle}, nil
}

// State returns the current state.
func (m *Machine) State() State { return m.state }

// Now returns the machine's current time.
func (m *Machine) Now() trace.Time { return m.now }

// Energy returns the accumulated energy breakdown.
func (m *Machine) Energy() EnergyBreakdown { return m.energy }

// Cycles returns the number of shutdowns issued.
func (m *Machine) Cycles() int { return m.cycles }

// SetPeriodClass tells the machine whether the idle period now in progress
// is long (≥ breakeven); subsequent idle/standby energy accrues to the
// corresponding bucket.
func (m *Machine) SetPeriodClass(long bool) { m.longPeriod = long }

// advance integrates energy from m.now to t in the current state.
func (m *Machine) advance(t trace.Time) error {
	if t < m.now {
		return fmt.Errorf("disk: time went backwards: %v < %v", t, m.now)
	}
	for m.now < t {
		step := t
		switch m.state {
		case StateShuttingDown:
			if m.shutdownDone < step {
				step = m.shutdownDone
			}
		case StateSpinningUp:
			if m.spinUpDone < step {
				step = m.spinUpDone
			}
		}
		dt := (step - m.now).Seconds()
		switch m.state {
		case StateIdle, StateBusy:
			// Busy intervals are charged by ServeIO; between calls the
			// machine is idle.
			m.chargeIdle(dt * m.params.IdlePower)
		case StateShuttingDown:
			m.chargeIdle(dt * m.params.StandbyPower)
			if step == m.shutdownDone {
				m.state = StateStandby
			}
		case StateStandby:
			m.chargeIdle(dt * m.params.StandbyPower)
		case StateSpinningUp:
			m.chargeIdle(dt * m.params.StandbyPower)
			if step == m.spinUpDone {
				m.state = StateIdle
			}
		}
		m.now = step
	}
	return nil
}

func (m *Machine) chargeIdle(j float64) {
	if m.longPeriod {
		m.energy.IdleLong += j
	} else {
		m.energy.IdleShort += j
	}
}

// Shutdown issues a shutdown command at time t. It is ignored if the disk
// is not spinning idle at t.
func (m *Machine) Shutdown(t trace.Time) error {
	if err := m.advance(t); err != nil {
		return err
	}
	if m.state != StateIdle {
		return nil
	}
	m.state = StateShuttingDown
	m.shutdownDone = t + m.params.ShutdownTime
	m.energy.PowerCycle += m.params.ShutdownEnergy
	m.cycles++
	return nil
}

// ServeIO serves an I/O request arriving at time t that keeps the disk
// busy for service. If the disk is spun down (or in transition) the
// request first waits for the pending transition and a spin-up; the
// spin-up energy is charged. It returns the completion time.
func (m *Machine) ServeIO(t trace.Time, service trace.Time) (trace.Time, error) {
	if service < 0 {
		return 0, fmt.Errorf("disk: negative service time %v", service)
	}
	if err := m.advance(t); err != nil {
		return 0, err
	}
	switch m.state {
	case StateShuttingDown:
		// Must finish spinning down, then spin up.
		if err := m.advance(m.shutdownDone); err != nil {
			return 0, err
		}
		m.beginSpinUp(m.now)
		if err := m.advance(m.spinUpDone); err != nil {
			return 0, err
		}
	case StateStandby:
		m.beginSpinUp(m.now)
		if err := m.advance(m.spinUpDone); err != nil {
			return 0, err
		}
	case StateSpinningUp:
		if err := m.advance(m.spinUpDone); err != nil {
			return 0, err
		}
	}
	// Busy service: charge the differential over idle for the service
	// interval, then advance through it at idle rate via advance.
	start := m.now
	m.state = StateBusy
	if err := m.advance(start + service); err != nil {
		return 0, err
	}
	// advance charged idle power for the interval; top up to busy power.
	m.energy.Busy += service.Seconds() * (m.params.BusyPower - m.params.IdlePower)
	// Reclassify the base idle charge into the busy bucket.
	base := service.Seconds() * m.params.IdlePower
	if m.longPeriod {
		m.energy.IdleLong -= base
	} else {
		m.energy.IdleShort -= base
	}
	m.energy.Busy += base
	m.state = StateIdle
	return m.now, nil
}

func (m *Machine) beginSpinUp(t trace.Time) {
	m.state = StateSpinningUp
	m.spinUpDone = t + m.params.SpinUpTime
	m.energy.PowerCycle += m.params.SpinUpEnergy
}

// Finish advances the machine to time t and returns the final energy
// breakdown.
func (m *Machine) Finish(t trace.Time) (EnergyBreakdown, error) {
	if err := m.advance(t); err != nil {
		return EnergyBreakdown{}, err
	}
	return m.energy, nil
}

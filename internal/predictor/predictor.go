// Package predictor defines the shutdown-predictor framework shared by
// every policy in the simulator, plus the two reference policies the paper
// compares against everywhere: the timeout predictor (TP) and the ideal
// (oracle) predictor.
//
// The model follows the paper's architecture (its Figures 4 and 5): each
// process of an application runs its own per-process predictor instance;
// instances of the same application share learned state (the application's
// prediction table); and a global combiner (package sim) merges the
// per-process decisions into the actual disk shutdown.
package predictor

import (
	"fmt"

	"pcapsim/internal/trace"
)

// Access is one disk access (an I/O that missed the file cache) as seen by
// a per-process predictor.
type Access struct {
	// Time is the arrival time of the access.
	Time trace.Time
	// PC is the program counter that triggered the I/O.
	PC trace.PC
	// FD is the file descriptor used.
	FD trace.FD
	// Access is the operation type.
	Access trace.Access
	// Block is the file location on disk.
	Block int64
}

// Source tells which mechanism produced a decision.
type Source uint8

// Decision sources.
const (
	// SourceNone: no shutdown will be issued for this idle period.
	SourceNone Source = iota
	// SourcePrimary: the policy's own predictor issued the decision.
	SourcePrimary
	// SourceBackup: the backup timeout predictor issued the decision.
	SourceBackup
)

// String returns the source name.
func (s Source) String() string {
	switch s {
	case SourceNone:
		return "none"
	case SourcePrimary:
		return "primary"
	case SourceBackup:
		return "backup"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Decision is what a per-process predictor wants done after an access.
//
// If Shutdown is true, the disk should be shut down Delay after the
// access, unless another access by the same process arrives first (an
// arrival inside Delay cancels the shutdown — this implements both the
// sliding wait-window of dynamic predictors and the timer of timeout
// predictors). Delay is measured from Access.Time.
type Decision struct {
	Shutdown bool
	Delay    trace.Time
	Source   Source
}

// NoShutdown is the decision to keep the disk spinning.
var NoShutdown = Decision{}

// Process is the per-process predictor driven by the simulator. OnAccess
// is called for every disk access of the owning process, in time order,
// and returns the decision for the idle period that follows.
type Process interface {
	OnAccess(a Access) Decision
}

// Factory creates per-process predictor instances for one application.
// Implementations carry the application-wide learned state (e.g. PCAP's
// prediction table); NewProcess is called whenever a process is created.
//
// A Factory is reused across executions of the application to model
// prediction-table reuse; creating a fresh Factory per execution models
// the discard variants (PCAPa, LTa).
type Factory interface {
	// Name returns the short policy name used in tables ("TP", "PCAP", …).
	Name() string
	// NewProcess returns a predictor for a newly created process.
	NewProcess(pid trace.PID) Process
}

// FutureAware is implemented by oracle predictors only. The simulator
// calls SetNextGap with the length of the idle period that will follow the
// upcoming access, immediately before OnAccess. Honest policies must not
// implement it.
type FutureAware interface {
	SetNextGap(gap trace.Time, known bool)
}

// Timeout is the classic timeout predictor (TP): after every access it
// schedules a shutdown Timeout later; any earlier access cancels it. The
// paper uses a 10-second timer.
type Timeout struct {
	timeout trace.Time
}

// NewTimeout returns a TP factory with the given timer. It panics if the
// timeout is not positive.
func NewTimeout(timeout trace.Time) *Timeout {
	if timeout <= 0 {
		panic("predictor: timeout must be positive")
	}
	return &Timeout{timeout: timeout}
}

// Name implements Factory.
func (t *Timeout) Name() string { return "TP" }

// Timeout returns the configured timer value.
func (t *Timeout) Timeout() trace.Time { return t.timeout }

// NewProcess implements Factory.
func (t *Timeout) NewProcess(trace.PID) Process { return timeoutProcess{t.timeout} }

type timeoutProcess struct{ timeout trace.Time }

func (p timeoutProcess) OnAccess(Access) Decision {
	// TP is its own primary mechanism.
	return Decision{Shutdown: true, Delay: p.timeout, Source: SourcePrimary}
}

// Oracle is the ideal predictor: it shuts down immediately at the start of
// every idle period that is at least Breakeven long, and never otherwise.
// It requires future knowledge via FutureAware and exists only to bound
// the attainable energy savings (Figure 8's "Ideal").
type Oracle struct {
	breakeven trace.Time
}

// NewOracle returns an oracle factory for the given breakeven time.
func NewOracle(breakeven trace.Time) *Oracle {
	if breakeven <= 0 {
		panic("predictor: breakeven must be positive")
	}
	return &Oracle{breakeven: breakeven}
}

// Name implements Factory.
func (o *Oracle) Name() string { return "Ideal" }

// NewProcess implements Factory.
func (o *Oracle) NewProcess(trace.PID) Process {
	return &oracleProcess{breakeven: o.breakeven}
}

type oracleProcess struct {
	breakeven trace.Time
	nextGap   trace.Time
	known     bool
}

// SetNextGap implements FutureAware.
func (p *oracleProcess) SetNextGap(gap trace.Time, known bool) {
	p.nextGap = gap
	p.known = known
}

func (p *oracleProcess) OnAccess(Access) Decision {
	if p.known && p.nextGap >= p.breakeven {
		return Decision{Shutdown: true, Delay: 0, Source: SourcePrimary}
	}
	return NoShutdown
}

// AlwaysOn is the base policy: it never shuts the disk down. Figure 8's
// "Base" bar.
type AlwaysOn struct{}

// Name implements Factory.
func (AlwaysOn) Name() string { return "Base" }

// NewProcess implements Factory.
func (AlwaysOn) NewProcess(trace.PID) Process { return alwaysOnProcess{} }

type alwaysOnProcess struct{}

func (alwaysOnProcess) OnAccess(Access) Decision { return NoShutdown }

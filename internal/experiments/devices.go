package experiments

import (
	"fmt"

	"pcapsim/internal/core"
	"pcapsim/internal/disk"
	"pcapsim/internal/sim"
)

// DeviceRow is one device profile's across-application results under the
// timeout predictor and PCAP.
type DeviceRow struct {
	Device    string
	Breakeven float64 // seconds
	// Long is the total number of shutdown opportunities across apps
	// (it grows as breakeven shrinks).
	Long int
	// TPSaved/PCAPSaved/IdealSaved are mean fractions of Base energy
	// eliminated.
	TPSaved, PCAPSaved, IdealSaved float64
	// PCAPMiss is PCAP's mean global misprediction fraction.
	PCAPMiss float64
}

// deviceSuite returns the memoized per-device sub-suite. A sub-suite
// keeps memoization and predictor breakeven configuration consistent with
// the device, while sharing the parent's trace cache: traces are device
// independent, so they are generated once for all devices.
func (s *Suite) deviceSuite(dev disk.Params) (*Suite, error) {
	v, err := s.memo.do("devsuite/"+dev.Name, func() (any, error) {
		cfg := s.cfg
		cfg.Disk = dev
		ds, err := newSharedSuite(s.seed, cfg, s.traces)
		if err != nil {
			return nil, err
		}
		ds.scale = s.scale // sub-suites simulate the same scaled workload
		return ds, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Suite), nil
}

// devicePolicies are the policies evaluated per device.
func (s *Suite) devicePolicies() []sim.Policy {
	return []sim.Policy{s.PolicyBase(), s.PolicyTP(), s.PolicyPCAP(core.VariantBase), s.PolicyIdeal()}
}

// DevicesExperiment evaluates the predictors across device classes (the
// paper's §1 claim that the technique transfers to other I/O devices such
// as wireless interfaces). The breakeven time is the knob that moves: a
// WLAN interface breaks even in under a second, a desktop disk needs
// ~13 s, and each device's predictors are configured with its own
// breakeven.
func (s *Suite) DevicesExperiment() ([]DeviceRow, error) {
	var rows []DeviceRow
	for _, dev := range disk.Devices() {
		ds, err := s.deviceSuite(dev)
		if err != nil {
			return nil, err
		}

		row := DeviceRow{Device: dev.Name, Breakeven: dev.Breakeven.Seconds()}
		n := 0
		for _, app := range ds.Apps() {
			base, err := ds.Run(app, ds.PolicyBase())
			if err != nil {
				return nil, err
			}
			tp, err := ds.Run(app, ds.PolicyTP())
			if err != nil {
				return nil, err
			}
			pcap, err := ds.Run(app, ds.PolicyPCAP(core.VariantBase))
			if err != nil {
				return nil, err
			}
			ideal, err := ds.Run(app, ds.PolicyIdeal())
			if err != nil {
				return nil, err
			}
			bt := base.Energy.Total()
			if bt > 0 {
				row.TPSaved += 1 - tp.Energy.Total()/bt
				row.PCAPSaved += 1 - pcap.Energy.Total()/bt
				row.IdealSaved += 1 - ideal.Energy.Total()/bt
			}
			row.PCAPMiss += pcap.Global.Fractions().Miss
			row.Long += pcap.Global.LongPeriods
			n++
		}
		fn := float64(n)
		row.TPSaved /= fn
		row.PCAPSaved /= fn
		row.IdealSaved /= fn
		row.PCAPMiss /= fn
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDevices renders the device sweep as text.
func (s *Suite) RenderDevices() (string, error) {
	rows, err := s.DevicesExperiment()
	if err != nil {
		return "", err
	}
	t := newTable("Device", "Breakeven", "Opportunities", "TP saved", "PCAP saved", "Ideal saved", "PCAP miss")
	for _, r := range rows {
		t.Row(r.Device, fmt.Sprintf("%.2f s", r.Breakeven), fmt.Sprint(r.Long),
			pct(r.TPSaved), pct(r.PCAPSaved), pct(r.IdealSaved), pct(r.PCAPMiss))
	}
	return "Device sweep (paper §1: the technique transfers across I/O devices)\n\n" + t.String(), nil
}

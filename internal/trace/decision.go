package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Decision-trace format (PCD1): the on-disk record of every global
// shutdown decision a simulation run evaluated, compact enough to stream
// from the simulator's hot loop and checksummed like the v2 trace
// container so corruption never decodes silently.
//
// One DecisionRecord is emitted per evaluated global idle period, in run
// order. The file is a sequence of independent blocks, each carrying a
// struct-of-arrays encoding of up to blockCap records with the same
// column techniques as the v2 event container (uvarint/zigzag delta
// chains for monotonic and near-monotonic integers, RLE for low-cardinality
// bytes, raw little-endian bits for floats) behind a CRC32-IEEE covering
// header and payload. Layout details are in DESIGN.md §13.

// Decision record flag bits.
const (
	// DecisionShutdown is set when the decision (as made, after any
	// counterfactual flip) shuts the disk down at At.
	DecisionShutdown uint8 = 1 << iota
	// DecisionTerminal marks the trailing period of an execution (from
	// the last access to the end of the trace): it has no next arrival,
	// so it is charged energy but never classified.
	DecisionTerminal
	// DecisionFlipped marks a decision inverted by a counterfactual
	// replay; recording runs never set it.
	DecisionFlipped
	// DecisionLong is set when the period's actual idle time reached the
	// drive's breakeven time — a shutdown opportunity.
	DecisionLong
)

// DecisionRecord captures one global shutdown decision: the idle period
// it governs, the access (pid, PC signature) leading into it, what the
// policy decided, and the energy/latency consequence of that decision —
// both as charged and under the counterfactual flip. Field semantics:
//
//   - Start/End delimit the period; End-Start is the actual idle length.
//   - At is the shutdown instant when DecisionShutdown is set; At-Start
//     is how long the policy waited before committing (the predicted-idle
//     confidence point: primary predictions commit after the wait-window,
//     the backup timeout after its timer).
//   - EnergyJ is the non-busy energy charged to the period under the
//     decision as made; EnergyDelta is EnergyJ minus the keep-spinning
//     energy of the same period, so a correct shutdown is negative and a
//     mispredicted one positive.
//   - FlipDelta is the change in the run's total energy if exactly this
//     decision were inverted (shutdown→keep spinning, keep
//     spinning→shutdown at period start). Because decisions never feed
//     back into predictor or cache state, the counterfactual replay's
//     measured energy delta equals FlipDelta up to float summation order
//     (the equivalence argument in DESIGN.md §13).
//   - Wait is the user-visible spin-up latency charged to the decision;
//     FlipWait is the latency change if flipped (negative when flipping
//     removes a wakeup).
type DecisionRecord struct {
	// Index is the decision's global index within the run, counting every
	// evaluated period across executions in run order.
	Index int64
	// Exec is the execution index the period belongs to.
	Exec int32
	// Pid and PC identify the access leading into the period.
	Pid PID
	PC  PC
	// Flags holds the Decision* bits.
	Flags uint8
	// Source is the predictor.Source of the shutdown decision (none /
	// primary / backup) as a raw byte, so the trace package does not
	// depend on the predictor package.
	Source uint8
	// Start, End, At: see above.
	Start Time
	End   Time
	At    Time
	// Wait is the spin-up latency charged to this decision.
	Wait Time
	// FlipWait is the latency change if the decision were flipped.
	FlipWait Time
	// EnergyJ, EnergyDelta, FlipDelta: see above (joules).
	EnergyJ     float64
	EnergyDelta float64
	FlipDelta   float64
}

// Shutdown reports whether the decision shut the disk down.
func (r DecisionRecord) Shutdown() bool { return r.Flags&DecisionShutdown != 0 }

// Terminal reports whether the period is an execution's trailing period.
func (r DecisionRecord) Terminal() bool { return r.Flags&DecisionTerminal != 0 }

// Flipped reports whether a counterfactual replay inverted the decision.
func (r DecisionRecord) Flipped() bool { return r.Flags&DecisionFlipped != 0 }

// Long reports whether the period reached breakeven.
func (r DecisionRecord) Long() bool { return r.Flags&DecisionLong != 0 }

// ActualIdle returns the period's idle length.
func (r DecisionRecord) ActualIdle() Time { return r.End - r.Start }

// DecisionLog is an in-memory DecisionSink: it appends every record to
// Records. Reset truncates the log keeping its capacity, so one log can
// be recycled across runs without reallocating.
type DecisionLog struct {
	Records []DecisionRecord
}

// Record appends rec to the log.
func (l *DecisionLog) Record(rec DecisionRecord) { l.Records = append(l.Records, rec) }

// Reset truncates the log, keeping capacity.
func (l *DecisionLog) Reset() { l.Records = l.Records[:0] }

const (
	decisionFileMagic  = "PCD1"
	decisionBlockMagic = "PCDB"
	// decisionBlockCap is the default number of records per block — the
	// capacity of the encoder's ring buffer.
	decisionBlockCap = 4096
	// decisionColumns is the number of per-block columns.
	decisionColumns = 13
)

// Decision column indices, in on-disk order.
const (
	dcolIndex = iota
	dcolExec
	dcolPid
	dcolPC
	dcolFlags
	dcolSource
	dcolStart
	dcolEnd
	dcolAt
	dcolWait
	dcolFlipWait
	dcolEnergy // EnergyJ, EnergyDelta, FlipDelta interleave here as three columns
	dcolEnergyDelta
)

// DecisionEncoder streams decision records to a PCD1 file. Records
// accumulate in a fixed-capacity ring buffer (the block) and are encoded
// column-wise on flush, so steady-state recording allocates nothing once
// the column buffers reach their high-water marks. The zero-argument
// Record method makes the encoder a sim.DecisionSink directly: I/O errors
// latch and surface at Close (and at every later Record via Err).
type DecisionEncoder struct {
	bw  *bufio.Writer
	err error

	buf []DecisionRecord // the ring: filled to cap, flushed, reused
	// cols are the reusable per-column scratch buffers. EnergyJ,
	// EnergyDelta and FlipDelta share the float column layout but keep
	// separate buffers; dcolEnergyDelta+1 aliases the FlipDelta buffer.
	cols [decisionColumns + 1][]byte
	hdr  []byte
	// crcScratch backs the 4-byte CRC write; a local array would escape
	// through bw.Write and cost one heap allocation per block.
	crcScratch [4]byte
}

// NewDecisionEncoder returns an encoder writing the PCD1 magic and
// subsequent blocks to w.
func NewDecisionEncoder(w io.Writer) (*DecisionEncoder, error) {
	enc := &DecisionEncoder{
		bw:  bufio.NewWriter(w),
		buf: make([]DecisionRecord, 0, decisionBlockCap),
	}
	if _, err := enc.bw.WriteString(decisionFileMagic); err != nil {
		return nil, fmt.Errorf("trace: writing decision magic: %w", err)
	}
	return enc, nil
}

// SetBlockRecords resizes the block ring to n records per block. It must
// be called before the first Record.
func (enc *DecisionEncoder) SetBlockRecords(n int) error {
	if n < 1 {
		return fmt.Errorf("trace: decision block size must be positive, got %d", n)
	}
	if len(enc.buf) != 0 {
		return fmt.Errorf("trace: SetBlockRecords after records were written")
	}
	enc.buf = make([]DecisionRecord, 0, n)
	return nil
}

// Record buffers one decision record, flushing a full block. It
// implements the simulator's DecisionSink; errors latch into Err.
func (enc *DecisionEncoder) Record(rec DecisionRecord) {
	if enc.err != nil {
		return
	}
	enc.buf = append(enc.buf, rec)
	if len(enc.buf) == cap(enc.buf) {
		enc.flush()
	}
}

// Err returns the first error the encoder hit, if any.
func (enc *DecisionEncoder) Err() error { return enc.err }

// Close flushes the final partial block and the underlying writer, and
// returns any latched error.
func (enc *DecisionEncoder) Close() error {
	if enc.err == nil {
		enc.flush()
	}
	if enc.err == nil {
		enc.err = enc.bw.Flush()
	}
	return enc.err
}

// flush encodes the buffered records as one block.
func (enc *DecisionEncoder) flush() {
	n := len(enc.buf)
	if n == 0 {
		return
	}
	for i := range enc.cols {
		enc.cols[i] = enc.cols[i][:0]
	}
	buf := enc.buf

	// Integer columns are delta chains restarting at zero each block, so
	// blocks decode independently. Index and Exec are non-decreasing
	// (uvarint deltas from an explicit base); Pid, PC, Start, At and
	// FlipWait can move either way (zigzag varints); End ≥ Start and
	// Wait ≥ 0 are encoded relative to their floor (uvarint).
	icol := enc.cols[dcolIndex]
	icol = binary.AppendUvarint(icol, uint64(buf[0].Index))
	for i := 1; i < n; i++ {
		icol = binary.AppendUvarint(icol, uint64(buf[i].Index-buf[i-1].Index))
	}
	enc.cols[dcolIndex] = icol

	ecol := enc.cols[dcolExec]
	ecol = binary.AppendUvarint(ecol, uint64(buf[0].Exec))
	for i := 1; i < n; i++ {
		ecol = binary.AppendUvarint(ecol, uint64(buf[i].Exec-buf[i-1].Exec))
	}
	enc.cols[dcolExec] = ecol

	pcol := enc.cols[dcolPid]
	var prevPid int64
	for i := 0; i < n; i++ {
		pcol = binary.AppendVarint(pcol, int64(buf[i].Pid)-prevPid)
		prevPid = int64(buf[i].Pid)
	}
	enc.cols[dcolPid] = pcol

	pccol := enc.cols[dcolPC]
	var prevPC int64
	for i := 0; i < n; i++ {
		pccol = binary.AppendVarint(pccol, int64(buf[i].PC)-prevPC)
		prevPC = int64(buf[i].PC)
	}
	enc.cols[dcolPC] = pccol

	// Flags and Source: RLE of (byte, run length).
	fcol := enc.cols[dcolFlags]
	for i := 0; i < n; {
		j := i + 1
		for j < n && buf[j].Flags == buf[i].Flags {
			j++
		}
		fcol = append(fcol, buf[i].Flags)
		fcol = binary.AppendUvarint(fcol, uint64(j-i))
		i = j
	}
	enc.cols[dcolFlags] = fcol
	srccol := enc.cols[dcolSource]
	for i := 0; i < n; {
		j := i + 1
		for j < n && buf[j].Source == buf[i].Source {
			j++
		}
		srccol = append(srccol, buf[i].Source)
		srccol = binary.AppendUvarint(srccol, uint64(j-i))
		i = j
	}
	enc.cols[dcolSource] = srccol

	scol := enc.cols[dcolStart]
	var prevStart int64
	for i := 0; i < n; i++ {
		scol = binary.AppendVarint(scol, int64(buf[i].Start)-prevStart)
		prevStart = int64(buf[i].Start)
	}
	enc.cols[dcolStart] = scol

	endcol := enc.cols[dcolEnd]
	for i := 0; i < n; i++ {
		endcol = binary.AppendUvarint(endcol, uint64(buf[i].End-buf[i].Start))
	}
	enc.cols[dcolEnd] = endcol

	atcol := enc.cols[dcolAt]
	for i := 0; i < n; i++ {
		atcol = binary.AppendVarint(atcol, int64(buf[i].At)-int64(buf[i].Start))
	}
	enc.cols[dcolAt] = atcol

	wcol := enc.cols[dcolWait]
	for i := 0; i < n; i++ {
		wcol = binary.AppendUvarint(wcol, uint64(buf[i].Wait))
	}
	enc.cols[dcolWait] = wcol

	fwcol := enc.cols[dcolFlipWait]
	for i := 0; i < n; i++ {
		fwcol = binary.AppendVarint(fwcol, int64(buf[i].FlipWait))
	}
	enc.cols[dcolFlipWait] = fwcol

	// Float columns: raw IEEE-754 bits, little endian, 8 bytes each.
	e0, e1, e2 := enc.cols[dcolEnergy], enc.cols[dcolEnergyDelta], enc.cols[dcolEnergyDelta+1]
	for i := 0; i < n; i++ {
		e0 = binary.LittleEndian.AppendUint64(e0, math.Float64bits(buf[i].EnergyJ))
		e1 = binary.LittleEndian.AppendUint64(e1, math.Float64bits(buf[i].EnergyDelta))
		e2 = binary.LittleEndian.AppendUint64(e2, math.Float64bits(buf[i].FlipDelta))
	}
	enc.cols[dcolEnergy], enc.cols[dcolEnergyDelta], enc.cols[dcolEnergyDelta+1] = e0, e1, e2

	hdr := enc.hdr[:0]
	hdr = binary.AppendUvarint(hdr, uint64(n))
	hdr = append(hdr, byte(len(enc.cols)))
	for i := range enc.cols {
		hdr = binary.AppendUvarint(hdr, uint64(len(enc.cols[i])))
	}
	enc.hdr = hdr
	crc := crc32.ChecksumIEEE(hdr)
	for i := range enc.cols {
		crc = crc32.Update(crc, crc32.IEEETable, enc.cols[i])
	}
	enc.bw.WriteString(decisionBlockMagic) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at the Flush below
	enc.bw.Write(hdr)                      //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at the Flush below
	binary.LittleEndian.PutUint32(enc.crcScratch[:], crc)
	enc.bw.Write(enc.crcScratch[:]) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at the Flush below
	for i := range enc.cols {
		enc.bw.Write(enc.cols[i]) //pcaplint:ignore errcheck-lite bufio errors are sticky and surface at the Flush below
	}
	if err := enc.bw.Flush(); err != nil {
		enc.err = fmt.Errorf("trace: writing decision block: %w", err)
	}
	enc.buf = enc.buf[:0]
}

// DecisionDecoder streams DecisionRecords back out of a PCD1 file.
type DecisionDecoder struct {
	br      *bufio.Reader
	err     error
	started bool
	ended   bool

	hdr     []byte
	payload []byte
	scratch [8]byte

	// block decode state
	recs []DecisionRecord
	pos  int
}

// NewDecisionDecoder returns a decoder over r.
func NewDecisionDecoder(r io.Reader) *DecisionDecoder {
	return &DecisionDecoder{br: bufio.NewReader(r)}
}

// Err returns the first decode error, if any.
func (d *DecisionDecoder) Err() error { return d.err }

// fail records a sticky decode error.
func (d *DecisionDecoder) fail(format string, args ...any) {
	d.err = fmt.Errorf("%w: decision trace: %s", ErrBadFormat, fmt.Sprintf(format, args...))
}

// Next returns the next record. ok=false with nil Err means a clean end
// of stream.
func (d *DecisionDecoder) Next() (DecisionRecord, bool) {
	for d.pos >= len(d.recs) {
		if !d.readBlock() {
			return DecisionRecord{}, false
		}
	}
	rec := d.recs[d.pos]
	d.pos++
	return rec, true
}

// ReadAll drains the decoder, appending to dst.
func (d *DecisionDecoder) ReadAll(dst []DecisionRecord) ([]DecisionRecord, error) {
	for {
		rec, ok := d.Next()
		if !ok {
			return dst, d.err
		}
		dst = append(dst, rec)
	}
}

// readBlock decodes the next block into d.recs. false at a clean EOF or
// on error (see Err).
func (d *DecisionDecoder) readBlock() bool {
	if d.err != nil || d.ended {
		return false
	}
	magic := d.scratch[:4]
	if !d.started {
		if _, err := io.ReadFull(d.br, magic); err != nil {
			d.fail("%v", err)
			return false
		}
		if string(magic) != decisionFileMagic {
			d.fail("bad magic %q", magic)
			return false
		}
		d.started = true
	}
	if _, err := io.ReadFull(d.br, magic); err != nil {
		if err == io.EOF {
			d.ended = true // clean boundary between blocks
		} else {
			d.fail("%v", err)
		}
		return false
	}
	if string(magic) != decisionBlockMagic {
		d.fail("bad block magic %q", magic)
		return false
	}
	d.hdr = d.hdr[:0]
	n, ok := d.readUvarintTee()
	if !ok {
		return false
	}
	if n == 0 || n > 1<<24 {
		d.fail("implausible record count %d", n)
		return false
	}
	ncols, err := d.br.ReadByte()
	if err != nil {
		d.fail("%v", err)
		return false
	}
	d.hdr = append(d.hdr, ncols)
	if int(ncols) != decisionColumns+1 {
		d.fail("unsupported column count %d", ncols)
		return false
	}
	var colLen [decisionColumns + 1]uint64
	var total uint64
	for i := range colLen {
		colLen[i], ok = d.readUvarintTee()
		if !ok {
			return false
		}
		if colLen[i] > 1<<30 {
			d.fail("implausible column length %d", colLen[i])
			return false
		}
		total += colLen[i]
	}
	if _, err := io.ReadFull(d.br, d.scratch[4:8]); err != nil {
		d.fail("%v", err)
		return false
	}
	wantCRC := binary.LittleEndian.Uint32(d.scratch[4:8])
	if cap(d.payload) < int(total) {
		d.payload = make([]byte, total)
	}
	d.payload = d.payload[:total]
	if _, err := io.ReadFull(d.br, d.payload); err != nil {
		d.fail("%v", err)
		return false
	}
	crc := crc32.ChecksumIEEE(d.hdr)
	crc = crc32.Update(crc, crc32.IEEETable, d.payload)
	if crc != wantCRC {
		d.fail("block checksum mismatch")
		return false
	}
	return d.decodeBlock(int(n), colLen)
}

// readUvarintTee reads a uvarint, appending its raw bytes to d.hdr for
// the checksum.
func (d *DecisionDecoder) readUvarintTee() (uint64, bool) {
	start := len(d.hdr)
	v, err := binary.ReadUvarint(teeByteReader{d.br, &d.hdr})
	if err != nil {
		d.hdr = d.hdr[:start]
		d.fail("%v", err)
		return 0, false
	}
	return v, true
}

// teeByteReader appends every byte read to *dst.
type teeByteReader struct {
	br  *bufio.Reader
	dst *[]byte
}

func (t teeByteReader) ReadByte() (byte, error) {
	b, err := t.br.ReadByte()
	if err == nil {
		*t.dst = append(*t.dst, b)
	}
	return b, err
}

// decodeBlock expands one checksummed payload into d.recs.
func (d *DecisionDecoder) decodeBlock(n int, colLen [decisionColumns + 1]uint64) bool {
	if cap(d.recs) < n {
		d.recs = make([]DecisionRecord, n)
	}
	d.recs = d.recs[:n]
	d.pos = 0

	// Column start offsets within the payload.
	var off [decisionColumns + 2]int
	for i := range colLen {
		off[i+1] = off[i] + int(colLen[i])
	}
	col := func(i int) []byte { return d.payload[off[i]:off[i+1]] }

	uvarints := func(ci int, set func(i int, v uint64) bool) bool {
		b, p := col(ci), 0
		for i := 0; i < n; i++ {
			v, np := uvarintAt(b, p)
			if np < 0 {
				d.fail("column %d: truncated uvarint", ci)
				return false
			}
			p = np
			if !set(i, v) {
				return false
			}
		}
		if p != len(b) {
			d.fail("column %d: %d trailing bytes", ci, len(b)-p)
			return false
		}
		return true
	}
	varints := func(ci int, set func(i int, v int64)) bool {
		b, p := col(ci), 0
		for i := 0; i < n; i++ {
			v, np := varintAt(b, p)
			if np < 0 {
				d.fail("column %d: truncated varint", ci)
				return false
			}
			p = np
			set(i, v)
		}
		if p != len(b) {
			d.fail("column %d: %d trailing bytes", ci, len(b)-p)
			return false
		}
		return true
	}
	rle := func(ci int, set func(i int, v byte)) bool {
		b, p, i := col(ci), 0, 0
		for i < n {
			if p >= len(b) {
				d.fail("column %d: truncated run", ci)
				return false
			}
			v := b[p]
			p++
			run, np := uvarintAt(b, p)
			if np < 0 || run == 0 || run > uint64(n-i) {
				d.fail("column %d: bad run length", ci)
				return false
			}
			p = np
			for k := 0; k < int(run); k++ {
				set(i, v)
				i++
			}
		}
		if p != len(b) {
			d.fail("column %d: %d trailing bytes", ci, len(b)-p)
			return false
		}
		return true
	}
	floats := func(ci int, set func(i int, v float64)) bool {
		b := col(ci)
		if len(b) != 8*n {
			d.fail("column %d: float column is %d bytes, want %d", ci, len(b), 8*n)
			return false
		}
		for i := 0; i < n; i++ {
			set(i, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
		}
		return true
	}

	recs := d.recs
	prev := int64(0)
	first := true
	if !uvarints(dcolIndex, func(i int, v uint64) bool {
		if first {
			prev, first = int64(v), false
		} else {
			prev += int64(v)
		}
		recs[i].Index = prev
		return true
	}) {
		return false
	}
	prevExec := uint64(0)
	firstExec := true
	if !uvarints(dcolExec, func(i int, v uint64) bool {
		if firstExec {
			prevExec, firstExec = v, false
		} else {
			prevExec += v
		}
		if prevExec > math.MaxInt32 {
			d.fail("execution index overflow")
			return false
		}
		recs[i].Exec = int32(prevExec)
		return true
	}) {
		return false
	}
	var acc int64
	acc = 0
	if !varints(dcolPid, func(i int, v int64) { acc += v; recs[i].Pid = PID(acc) }) {
		return false
	}
	acc = 0
	if !varints(dcolPC, func(i int, v int64) { acc += v; recs[i].PC = PC(acc) }) {
		return false
	}
	if !rle(dcolFlags, func(i int, v byte) { recs[i].Flags = v }) {
		return false
	}
	if !rle(dcolSource, func(i int, v byte) { recs[i].Source = v }) {
		return false
	}
	acc = 0
	if !varints(dcolStart, func(i int, v int64) { acc += v; recs[i].Start = Time(acc) }) {
		return false
	}
	if !uvarints(dcolEnd, func(i int, v uint64) bool {
		recs[i].End = recs[i].Start + Time(v)
		return true
	}) {
		return false
	}
	if !varints(dcolAt, func(i int, v int64) { recs[i].At = recs[i].Start + Time(v) }) {
		return false
	}
	if !uvarints(dcolWait, func(i int, v uint64) bool {
		recs[i].Wait = Time(v)
		return true
	}) {
		return false
	}
	if !varints(dcolFlipWait, func(i int, v int64) { recs[i].FlipWait = Time(v) }) {
		return false
	}
	if !floats(dcolEnergy, func(i int, v float64) { recs[i].EnergyJ = v }) {
		return false
	}
	if !floats(dcolEnergyDelta, func(i int, v float64) { recs[i].EnergyDelta = v }) {
		return false
	}
	if !floats(dcolEnergyDelta+1, func(i int, v float64) { recs[i].FlipDelta = v }) {
		return false
	}
	return true
}

// WriteDecisions encodes recs as one PCD1 stream — the slice-in-memory
// convenience over DecisionEncoder.
func WriteDecisions(w io.Writer, recs []DecisionRecord) error {
	enc, err := NewDecisionEncoder(w)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		enc.Record(rec)
	}
	return enc.Close()
}

// ReadDecisions decodes a whole PCD1 stream.
func ReadDecisions(r io.Reader) ([]DecisionRecord, error) {
	return NewDecisionDecoder(r).ReadAll(nil)
}

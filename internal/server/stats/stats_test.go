package stats

import (
	"sync"
	"testing"
	"time"
)

// TestCoalescedExactSum is the exactness contract under concurrency: N
// writer goroutines, each with its own Local shard and a deliberately
// tiny threshold (so commits interleave heavily), must sum exactly —
// no delta lost, none applied twice — once every shard is flushed. The
// energy deltas are dyadic rationals well inside float64's exact-integer
// range, so the expected total is exact regardless of the order the
// concurrent CAS commits land in. Run under -race by ci.sh.
func TestCoalescedExactSum(t *testing.T) {
	const (
		writers = 8
		adds    = 10_000
	)
	var g Counters
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := NewLocal(&g, Options{Threshold: 7})
			for i := 0; i < adds; i++ {
				l.AddEvents(3)
				l.AddExecs(1)
				if i%5 == 0 {
					l.AddMachines(2)
				}
				l.AddEnergy(0.25)
			}
			l.Flush()
		}(w)
	}
	wg.Wait()

	s := g.Snapshot()
	if want := int64(writers * adds * 3); s.Events != want {
		t.Errorf("Events = %d, want %d", s.Events, want)
	}
	if want := int64(writers * adds); s.Execs != want {
		t.Errorf("Execs = %d, want %d", s.Execs, want)
	}
	if want := int64(writers * (adds / 5) * 2); s.Machines != want {
		t.Errorf("Machines = %d, want %d", s.Machines, want)
	}
	if want := float64(writers*adds) * 0.25; s.EnergyJ != want {
		t.Errorf("EnergyJ = %g, want %g", s.EnergyJ, want)
	}
	// Every add is accounted, and coalescing actually coalesced: far
	// fewer commits than adds.
	wantAdds := int64(writers * (adds*3 + adds/5))
	if s.Adds != wantAdds {
		t.Errorf("Adds = %d, want %d", s.Adds, wantAdds)
	}
	if s.Commits == 0 || s.Commits >= s.Adds {
		t.Errorf("Commits = %d for %d adds; coalescing not effective", s.Commits, s.Adds)
	}
}

// TestThresholdCommit pins the threshold protocol on one shard: the
// global view lags until the pending volume crosses the threshold, then
// absorbs the whole batch in one commit.
func TestThresholdCommit(t *testing.T) {
	var g Counters
	l := NewLocal(&g, Options{Threshold: 10})

	l.AddEvents(4)
	l.AddEvents(5)
	if got := g.Snapshot(); got.Events != 0 || got.Commits != 0 {
		t.Fatalf("before threshold: %+v, want no commits", got)
	}
	if l.Pending() != 9 {
		t.Fatalf("Pending = %d, want 9", l.Pending())
	}
	l.AddEvents(1) // crosses the threshold
	got := g.Snapshot()
	if got.Events != 10 || got.Commits != 1 {
		t.Fatalf("at threshold: %+v, want 10 events in 1 commit", got)
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after commit, want 0", l.Pending())
	}

	// Energy rides along with unit commits, never triggers its own.
	l.AddEnergy(2.5)
	if got := g.Snapshot(); got.EnergyJ != 0 {
		t.Fatalf("energy committed without a unit commit: %+v", got)
	}
	l.AddEvents(100)
	if got := g.Snapshot(); got.EnergyJ != 2.5 || got.Events != 110 {
		t.Fatalf("after ride-along commit: %+v", got)
	}
}

// TestDeadlineCommit drives the deadline path with an injected clock: a
// small pending delta must be committed once the shard has sat on it
// past MaxLag, even though the threshold is far away. The clock is
// consulted only every lagCheckEvery adds, so the test crosses that
// stride.
func TestDeadlineCommit(t *testing.T) {
	now := int64(0)
	var g Counters
	l := NewLocal(&g, Options{
		Threshold: 1 << 30,
		MaxLag:    time.Second,
		NowNanos:  func() int64 { return now },
	})

	for i := 0; i < lagCheckEvery; i++ {
		l.AddEvents(1)
	}
	if got := g.Snapshot(); got.Commits != 0 {
		t.Fatalf("committed before the deadline: %+v", got)
	}
	now += 2 * int64(time.Second)
	for i := 0; i <= lagCheckEvery; i++ {
		l.AddEvents(1)
	}
	got := g.Snapshot()
	if got.Commits != 1 {
		t.Fatalf("Commits = %d after deadline, want 1", got.Commits)
	}
	if got.Events == 0 {
		t.Fatalf("deadline commit carried no events: %+v", got)
	}
}

// TestFlushIsExactAndIdempotent: Flush commits everything pending and a
// second Flush adds nothing.
func TestFlushIsExactAndIdempotent(t *testing.T) {
	var g Counters
	l := NewLocal(&g, Options{Threshold: 1 << 30})
	l.AddEvents(123)
	l.AddExecs(4)
	l.AddMachines(5)
	l.AddEnergy(1.5)
	l.Flush()
	l.Flush()
	got := g.Snapshot()
	if got.Events != 123 || got.Execs != 4 || got.Machines != 5 || got.EnergyJ != 1.5 {
		t.Fatalf("after flush: %+v", got)
	}
	if got.Commits != 1 {
		t.Fatalf("Commits = %d, want 1 (second Flush must be a no-op)", got.Commits)
	}
}

// TestJobCounters covers the direct (non-coalesced) job lifecycle path.
func TestJobCounters(t *testing.T) {
	var g Counters
	g.JobStarted()
	g.JobStarted()
	g.JobDone(false)
	g.JobDone(true)
	got := g.Snapshot()
	if got.JobsStarted != 2 || got.JobsDone != 2 || got.JobsFailed != 1 {
		t.Fatalf("job counters: %+v", got)
	}
}

// TestBaselinesAgree: the three designs count identically — the
// baselines differ from the coalesced design only in synchronization
// cost, which is the entire point of benchmarking them side by side.
func TestBaselinesAgree(t *testing.T) {
	var (
		g  Counters
		a  AtomicCounters
		m  MutexCounters
		wg sync.WaitGroup
	)
	const writers, adds = 4, 1000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := NewLocal(&g, Options{Threshold: 64})
			for i := 0; i < adds; i++ {
				l.AddEvents(2)
				l.AddEnergy(0.5)
				a.AddEvents(2)
				a.AddEnergy(0.5)
				m.AddEvents(2)
				m.AddEnergy(0.5)
			}
			l.Flush()
		}()
	}
	wg.Wait()
	s := g.Snapshot()
	if s.Events != a.Events() || s.Events != m.Events() {
		t.Errorf("event totals disagree: coalesced %d atomic %d mutex %d",
			s.Events, a.Events(), m.Events())
	}
	if s.EnergyJ != a.EnergyJ() || s.EnergyJ != m.EnergyJ() {
		t.Errorf("energy totals disagree: coalesced %g atomic %g mutex %g",
			s.EnergyJ, a.EnergyJ(), m.EnergyJ())
	}
}

package sim

import (
	"math"
	"testing"
)

func TestCountsAccessors(t *testing.T) {
	c := Counts{
		LongPeriods: 10, ShortPeriods: 5,
		HitPrimary: 4, HitBackup: 2,
		MissPrimary: 1, MissBackup: 1,
		NotPredicted: 3,
	}
	if c.Hits() != 6 || c.Misses() != 2 || c.Shutdowns() != 8 {
		t.Errorf("accessors: hits=%d misses=%d shutdowns=%d", c.Hits(), c.Misses(), c.Shutdowns())
	}
	var sum Counts
	sum.Add(c)
	sum.Add(c)
	if sum.LongPeriods != 20 || sum.Hits() != 12 || sum.NotPredicted != 6 {
		t.Errorf("Add: %+v", sum)
	}
}

func TestFractions(t *testing.T) {
	c := Counts{
		LongPeriods: 8,
		HitPrimary:  4, HitBackup: 2,
		MissPrimary: 1, MissBackup: 1,
		NotPredicted: 1,
	}
	f := c.Fractions()
	if math.Abs(f.Hit-0.75) > 1e-12 || math.Abs(f.Miss-0.25) > 1e-12 {
		t.Errorf("fractions %+v", f)
	}
	if math.Abs(f.HitPrimary-0.5) > 1e-12 || math.Abs(f.HitBackup-0.25) > 1e-12 {
		t.Errorf("splits %+v", f)
	}
	if f.String() == "" {
		t.Error("empty String")
	}
	if got := (Counts{}).Fractions(); got != (Fractions{}) {
		t.Errorf("zero counts: %+v", got)
	}
}

// TestFractionsIdentity: Hit + NotPredicted + misses-in-long-periods = 1,
// the invariant DESIGN.md documents for the paper's bar charts.
func TestFractionsIdentity(t *testing.T) {
	c := Counts{
		LongPeriods: 20, ShortPeriods: 10,
		HitPrimary: 9, HitBackup: 3,
		MissPrimary: 6, MissBackup: 0, // 4 in long periods, 2 in short: Counts
		// does not distinguish, so construct the identity directly:
		NotPredicted: 4,
	}
	// hits + notpred ≤ long periods always.
	if c.Hits()+c.NotPredicted > c.LongPeriods {
		t.Fatal("counts cannot exceed long periods")
	}
}

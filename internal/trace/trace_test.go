package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		sec  float64
		want Time
	}{
		{0, 0},
		{1, Second},
		{0.001, Millisecond},
		{0.000001, Microsecond},
		{5.43, 5430000},
		{-1.5, -1500000},
	}
	for _, c := range cases {
		if got := FromSeconds(c.sec); got != c.want {
			t.Errorf("FromSeconds(%g) = %d, want %d", c.sec, got, c.want)
		}
	}
	if got := FromDuration(2500 * time.Millisecond); got != 2500*Millisecond {
		t.Errorf("FromDuration = %d", got)
	}
	if got := (3 * Second).Seconds(); got != 3.0 {
		t.Errorf("Seconds = %g", got)
	}
	if got := (1500 * Millisecond).Duration(); got != 1500*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
	if got := (1200 * Millisecond).String(); got != "1.200000s" {
		t.Errorf("String = %q", got)
	}
}

func TestTimeRoundTrip(t *testing.T) {
	for _, sec := range []float64{0, 0.1, 1.0 / 3, 12345.678901} {
		if got := FromSeconds(sec).Seconds(); got < sec-1e-6 || got > sec+1e-6 {
			t.Errorf("round trip of %g gave %g", sec, got)
		}
	}
}

func TestKindAndAccessStrings(t *testing.T) {
	if KindIO.String() != "io" || KindFork.String() != "fork" || KindExit.String() != "exit" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind formatting")
	}
	names := map[Access]string{
		AccessRead: "read", AccessWrite: "write", AccessOpen: "open", AccessClose: "close",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("access %d = %q, want %q", a, a.String(), want)
		}
	}
	if Access(42).String() != "access(42)" {
		t.Error("unknown access formatting")
	}
}

func testTrace() *Trace {
	return &Trace{
		App: "demo",
		Events: []Event{
			{Time: 0, Pid: 1, Kind: KindIO, Access: AccessOpen, PC: 0x100, FD: 3, Block: 10, Size: 4096},
			{Time: 1000, Pid: 1, Kind: KindFork, Child: 2},
			{Time: 2000, Pid: 2, Kind: KindIO, Access: AccessRead, PC: 0x200, FD: 4, Block: 20, Size: 8192},
			{Time: 3000, Pid: 2, Kind: KindExit},
			{Time: 4000, Pid: 1, Kind: KindIO, Access: AccessWrite, PC: 0x300, FD: 3, Block: 30, Size: 4096},
		},
	}
}

func TestTraceBasics(t *testing.T) {
	tr := testTrace()
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.IOCount() != 3 {
		t.Errorf("IOCount = %d", tr.IOCount())
	}
	if got := tr.Pids(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Pids = %v", got)
	}
	if tr.Duration() != 4000 {
		t.Errorf("Duration = %d", tr.Duration())
	}
	if (&Trace{}).Duration() != 0 {
		t.Error("empty trace duration not zero")
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := testTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if err := (&Trace{}).Validate(); err != nil {
		t.Fatalf("empty trace rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{
			"out of order",
			[]Event{
				{Time: 100, Pid: 1, Kind: KindIO, PC: 1, Access: AccessRead},
				{Time: 50, Pid: 1, Kind: KindIO, PC: 1, Access: AccessRead},
			},
			"before previous",
		},
		{
			"exit of unknown pid",
			[]Event{{Time: 0, Pid: 5, Kind: KindExit}},
			"exit of non-live",
		},
		{
			"fork reuses live pid",
			[]Event{
				{Time: 0, Pid: 1, Kind: KindIO, PC: 1, Access: AccessRead},
				{Time: 1, Pid: 1, Kind: KindFork, Child: 1},
			},
			"", // either reuse or child==parent error is fine
		},
		{
			"io after exit",
			[]Event{
				{Time: 0, Pid: 1, Kind: KindIO, PC: 1, Access: AccessRead},
				{Time: 1, Pid: 1, Kind: KindExit},
				{Time: 2, Pid: 1, Kind: KindIO, PC: 1, Access: AccessRead},
			},
			"",
		},
		{
			"negative size",
			[]Event{{Time: 0, Pid: 1, Kind: KindIO, PC: 1, Access: AccessRead, Size: -1}},
			"negative size",
		},
		{
			"zero pc",
			[]Event{{Time: 0, Pid: 1, Kind: KindIO, Access: AccessRead}},
			"zero PC",
		},
		{
			"unknown kind",
			[]Event{{Time: 0, Pid: 1, Kind: Kind(9)}},
			"unknown kind",
		},
	}
	for _, c := range cases {
		tr := &Trace{App: "x", Events: c.events}
		err := tr.Validate()
		if err == nil {
			// "io after exit": pid 1 exited, then io — treated as implicit
			// root? No: exit removed it from live, so io must fail.
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSortStable(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: 300, Pid: 1, Kind: KindIO, PC: 3, Access: AccessRead},
		{Time: 100, Pid: 1, Kind: KindIO, PC: 1, Access: AccessRead},
		{Time: 100, Pid: 2, Kind: KindIO, PC: 2, Access: AccessRead},
	}}
	tr.SortStable()
	if tr.Events[0].PC != 1 || tr.Events[1].PC != 2 || tr.Events[2].PC != 3 {
		t.Errorf("sorted order wrong: %+v", tr.Events)
	}
}

func TestMerge(t *testing.T) {
	a := []Event{{Time: 1, PC: 1}, {Time: 5, PC: 2}}
	b := []Event{{Time: 2, PC: 3}, {Time: 5, PC: 4}}
	got := Merge(a, b)
	if len(got) != 4 {
		t.Fatalf("merged %d events", len(got))
	}
	wantPCs := []PC{1, 3, 2, 4} // tie at t=5 broken by input order
	for i, e := range got {
		if e.PC != wantPCs[i] {
			t.Errorf("position %d: pc %d, want %d", i, e.PC, wantPCs[i])
		}
	}
	if len(Merge()) != 0 {
		t.Error("empty merge not empty")
	}
	if got := Merge(nil, a); len(got) != 2 {
		t.Errorf("merge with nil: %d", len(got))
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 1500000, Pid: 3, Kind: KindIO, Access: AccessRead, PC: 0xabc, FD: 4, Block: 77, Size: 4096}
	want := "1500000 io 3 read pc=0xabc fd=4 block=77 size=4096"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	f := Event{Time: 10, Pid: 1, Kind: KindFork, Child: 9}
	if f.String() != "10 fork 1 child=9" {
		t.Errorf("fork string %q", f.String())
	}
	x := Event{Time: 20, Pid: 1, Kind: KindExit}
	if x.String() != "20 exit 1" {
		t.Errorf("exit string %q", x.String())
	}
}

package core

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"pcapsim/internal/trace"
)

// Signature is the 4-byte encoded path of I/O-triggering program
// counters: the arithmetic sum (mod 2³²) of the PCs in the path. The
// encoding minimizes storage and makes comparison a single word compare,
// at the cost of possible (never observed in the paper) aliasing between
// permutations of the same PCs.
type Signature uint32

// AddPC returns the signature extended by one program counter.
func (s Signature) AddPC(pc trace.PC) Signature { return s + Signature(pc) }

// Key is a prediction-table key: the path signature, optionally augmented
// with the idle-period history vector (PCAPh) and/or the file descriptor
// of the access preceding the idle period (PCAPf).
type Key struct {
	// Sig is the encoded PC path.
	Sig Signature
	// Hist is the idle-history bit-vector, valid when HasHist.
	Hist uint16
	// HasHist marks history-augmented keys (PCAPh, PCAPfh).
	HasHist bool
	// FD is the file descriptor, valid when HasFD.
	FD trace.FD
	// HasFD marks fd-augmented keys (PCAPf, PCAPfh).
	HasFD bool
}

// String renders the key compactly for debugging and persistence.
func (k Key) String() string {
	s := fmt.Sprintf("sig=0x%08x", uint32(k.Sig))
	if k.HasHist {
		s += fmt.Sprintf(" hist=0b%016b", k.Hist)
	}
	if k.HasFD {
		s += fmt.Sprintf(" fd=%d", int32(k.FD))
	}
	return s
}

// less orders keys deterministically (for stable snapshots).
func (k Key) less(o Key) bool {
	if k.Sig != o.Sig {
		return k.Sig < o.Sig
	}
	if k.Hist != o.Hist {
		return k.Hist < o.Hist
	}
	return k.FD < o.FD
}

// Stats counts prediction-table activity.
type Stats struct {
	// Lookups is the number of probes.
	Lookups int64
	// Hits is the number of probes that matched.
	Hits int64
	// Inserts is the number of new signatures learned.
	Inserts int64
	// Evictions is the number of entries displaced by the LRU bound.
	Evictions int64
}

// Table is a prediction table: a set of trained keys with optional LRU
// bounding. It is safe for concurrent use; the paper shares one table
// among all processes of an application.
type Table struct {
	mu      sync.Mutex
	bound   int
	entries map[Key]*list.Element
	lru     *list.List // of Key; front = most recently used
	stats   Stats
}

// NewTable returns an empty table. A positive bound caps the entry count
// with least-recently-used replacement; zero means unbounded.
func NewTable(bound int) *Table {
	if bound < 0 {
		bound = 0
	}
	return &Table{
		bound:   bound,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
	}
}

// Len returns the number of trained entries (the paper's Table 3 metric).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Lookup probes the table and reports whether key is trained, refreshing
// its LRU position on a match.
func (t *Table) Lookup(key Key) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Lookups++
	el, ok := t.entries[key]
	if ok {
		t.stats.Hits++
		t.lru.MoveToFront(el)
	}
	return ok
}

// Train records key in the table (idempotently), evicting the least
// recently used entry if a bound is configured and exceeded.
func (t *Table) Train(key Key) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[key]; ok {
		t.lru.MoveToFront(el)
		return
	}
	t.entries[key] = t.lru.PushFront(key)
	t.stats.Inserts++
	if t.bound > 0 && len(t.entries) > t.bound {
		oldest := t.lru.Back()
		t.lru.Remove(oldest)
		delete(t.entries, oldest.Value.(Key))
		t.stats.Evictions++
	}
}

// Forget removes key from the table, reporting whether it was present.
// The base paper never unlearns, but changed application behaviour can be
// aged out this way (or by the LRU bound).
func (t *Table) Forget(key Key) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.entries[key]
	if !ok {
		return false
	}
	t.lru.Remove(el)
	delete(t.entries, key)
	return true
}

// Keys returns the trained keys in deterministic (sorted) order.
func (t *Table) Keys() []Key {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// LoadKeys trains all the given keys, preserving their order as
// most-recent-last. Used when restoring a persisted table.
func (t *Table) LoadKeys(keys []Key) {
	for _, k := range keys {
		t.Train(k)
	}
}

// StorageBytes returns the persisted size of the table under the paper's
// encoding: each entry packs into one 4-byte word (the signature; history
// and fd variants fold their context into the stored word the same way
// the signature itself is an additive fold).
func (t *Table) StorageBytes() int { return 4 * t.Len() }

// StateSize reports the number of learned entries; it satisfies the
// simulator's SizedFactory on *PCAP via the method below.
func (p *PCAP) StateSize() int { return p.table.Len() }

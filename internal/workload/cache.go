package workload

import (
	"sync"
	"sync/atomic"

	"pcapsim/internal/trace"
)

// TraceCache memoizes generated execution traces per (application, seed).
// Generation is deterministic — App.Trace is a pure function of
// (seed, execution index) — so the cached slice can be shared read-only by
// any number of concurrent policy runs: traces are replayed, never
// mutated.
//
// The cache is safe for concurrent use. For each (app, seed) pair
// generation runs exactly once; concurrent callers block on the first
// generation and all receive the identical slice. Distinct seeds never
// share an entry.
type TraceCache struct {
	mu   sync.Mutex
	m    map[traceKey]*traceEntry
	gens atomic.Int64
}

type traceKey struct {
	app  string
	seed uint64
}

type traceEntry struct {
	once   sync.Once
	traces []*trace.Trace
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{m: make(map[traceKey]*traceEntry)}
}

// Traces returns all execution traces of app for seed, generating them on
// first use. The returned slice is shared: callers must treat it (and the
// traces it holds) as read-only.
func (c *TraceCache) Traces(app *App, seed uint64) []*trace.Trace {
	c.mu.Lock()
	key := traceKey{app: app.Name, seed: seed}
	e, ok := c.m[key]
	if !ok {
		e = &traceEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.gens.Add(1)
		e.traces = app.Traces(seed)
	})
	return e.traces
}

// Generations reports how many trace generations have actually run — one
// per distinct (app, seed) pair requested, regardless of caller count.
func (c *TraceCache) Generations() int64 { return c.gens.Load() }

// Len returns the number of (app, seed) entries in the cache.
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

package workload

import "pcapsim/internal/trace"

// Stream is a trace.Source that generates an application's executions on
// demand, one at a time, into a single recycled event buffer. Peak memory
// is one execution regardless of how many the workload has — the
// streaming alternative to App.Traces, which pins every execution at
// once. Like all Sources, a Stream is a single-goroutine iterator: share
// the App, not the Stream.
type Stream struct {
	app  *App
	seed uint64
	next int           // next execution index to generate
	cur  []trace.Event // current execution's events (recycled buffer)
	pos  int           // next event within cur
}

// Stream returns a Source over the app's executions (Table 1 counts) for
// seed. It yields exactly the events App.Traces(seed) would materialize,
// in the same order.
func (a *App) Stream(seed uint64) *Stream {
	return &Stream{app: a, seed: seed}
}

// NextExec implements trace.Source. It generates the next execution,
// reusing the previous execution's buffer.
func (s *Stream) NextExec() (string, int, bool) {
	if s.next >= s.app.Executions {
		s.pos = len(s.cur)
		return "", 0, false
	}
	exec := s.next
	s.next++
	s.cur = s.app.generateEvents(s.seed, exec, s.cur)
	s.pos = 0
	return s.app.Name, exec, true
}

// Next implements trace.Source.
func (s *Stream) Next() (trace.Event, bool) {
	if s.pos >= len(s.cur) {
		return trace.Event{}, false
	}
	e := s.cur[s.pos]
	s.pos++
	return e, true
}

// ExecEvents implements trace.ExecSlicer: the current execution is already
// materialized in the recycled buffer, so consumers can borrow it without
// copying. The slice is invalidated by the next NextExec.
func (s *Stream) ExecEvents() []trace.Event {
	events := s.cur[s.pos:]
	s.pos = len(s.cur)
	return events
}

// Err implements trace.Source; generation cannot fail.
func (s *Stream) Err() error { return nil }

// Reset implements trace.Source, rewinding to execution 0. Regeneration
// is deterministic, so a replay is identical to the first pass.
func (s *Stream) Reset() error {
	s.next = 0
	s.cur = s.cur[:0]
	s.pos = 0
	return nil
}

package experiments

import (
	"fmt"

	"pcapsim/internal/prefetch"
	"pcapsim/internal/workload"
)

// PrefetchRow is one application's readahead comparison: demand-fetch
// baseline vs PC-blind readahead vs PC-keyed readahead.
type PrefetchRow struct {
	App string
	// BaseMiss is the demand-fetch miss rate.
	BaseMiss float64
	// Global / PC are the two prefetchers' results.
	Global, PC prefetch.Result
}

// prefetchCacheBlocks sizes the readahead evaluation cache (1 MB of 4 KB
// blocks — a page-cache-scale readahead window rather than the tiny
// file-cache of the shutdown study).
const prefetchCacheBlocks = 256

// prefetchDegree is how many blocks a confident stream fetches ahead.
const prefetchDegree = 8

// prefetchRow evaluates one application's readahead comparison, memoized
// so matrix workers and the driver share the evaluation.
func (s *Suite) prefetchRow(app *workload.App) (PrefetchRow, error) {
	v, err := s.memo.do("prefetch/"+app.Name, func() (any, error) {
		// Three passes, three fresh sources: sources are single-use
		// single-goroutine iterators.
		base, err := prefetch.EvaluateSource(s.SourceFor(app), prefetchCacheBlocks, prefetch.None{})
		if err != nil {
			return nil, err
		}
		global, err := prefetch.EvaluateSource(s.SourceFor(app), prefetchCacheBlocks, prefetch.NewGlobalReadahead(prefetchDegree))
		if err != nil {
			return nil, err
		}
		pc, err := prefetch.EvaluateSource(s.SourceFor(app), prefetchCacheBlocks, prefetch.NewPCReadahead(prefetchDegree))
		if err != nil {
			return nil, err
		}
		return PrefetchRow{
			App:      app.Name,
			BaseMiss: base.MissRate(),
			Global:   global,
			PC:       pc,
		}, nil
	})
	if err != nil {
		return PrefetchRow{}, err
	}
	return v.(PrefetchRow), nil
}

// Prefetch evaluates the paper's §7 prefetching direction on every
// application: per-PC stream contexts against a PC-blind sequential
// readahead.
func (s *Suite) Prefetch() ([]PrefetchRow, error) {
	var rows []PrefetchRow
	for _, app := range s.Apps() {
		row, err := s.prefetchRow(app)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPrefetch renders the comparison as text.
func (s *Suite) RenderPrefetch() (string, error) {
	rows, err := s.Prefetch()
	if err != nil {
		return "", err
	}
	t := newTable("App", "Demand miss", "Readahead miss", "PC miss", "Readahead acc", "PC acc")
	for _, r := range rows {
		t.Row(r.App, pct(r.BaseMiss), pct(r.Global.MissRate()), pct(r.PC.MissRate()),
			pct(r.Global.Accuracy()), pct(r.PC.Accuracy()))
	}
	return fmt.Sprintf("PC-based prefetching (paper §7 future work): block miss rates, "+
		"%d-block cache, degree %d\n\n", prefetchCacheBlocks, prefetchDegree) + t.String(), nil
}

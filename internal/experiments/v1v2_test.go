package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

// encodeApp writes every execution of app to w in the requested format
// ("v1" or "v2") and returns the encoded size in bytes.
func encodeApp(t *testing.T, w *bytes.Buffer, traces []*trace.Trace, format string) int {
	t.Helper()
	start := w.Len()
	for _, tr := range traces {
		var err error
		switch format {
		case "v1":
			err = trace.WriteBinary(w, tr)
		case "v2":
			err = trace.WriteColumnar(w, tr)
		default:
			t.Fatalf("unknown format %q", format)
		}
		if err != nil {
			t.Fatalf("%s encode of %s/%d: %v", format, tr.App, tr.Execution, err)
		}
	}
	return w.Len() - start
}

// TestV1V2Equivalence is the differential gate for the columnar format:
// for every workload app, the v1 and v2 encodings of the same executions
// must decode to identical events, the v2 file must be at most 60% of the
// v1 size, and RunSource over a v2 round trip must produce results
// %+v-identical to RunApp over the in-memory traces for every policy.
// Under -short (the ci.sh -race pass) the app × policy matrix is trimmed.
func TestV1V2Equivalence(t *testing.T) {
	s, err := NewSuite(DefaultSeed, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	apps := s.Apps()
	policies := []string{"base", "tp", "lt", "lta", "pcap", "pcaph", "pcapf", "pcapfh", "pcapa", "ideal"}
	if testing.Short() {
		apps = apps[:2]
		policies = []string{"base", "tp", "pcap", "ideal"}
	}

	for _, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			traces := s.Traces(app)

			var v1, v2 bytes.Buffer
			v1Size := encodeApp(t, &v1, traces, "v1")
			v2Size := encodeApp(t, &v2, traces, "v2")

			// Event-for-event decode equivalence, against each other and
			// against the in-memory originals.
			d1, err := trace.Collect(trace.NewDecoder(bytes.NewReader(v1.Bytes())))
			if err != nil {
				t.Fatalf("v1 decode: %v", err)
			}
			d2, err := trace.Collect(trace.NewBlockSource(bytes.NewReader(v2.Bytes())))
			if err != nil {
				t.Fatalf("v2 decode: %v", err)
			}
			if len(d1) != len(traces) || len(d2) != len(traces) {
				t.Fatalf("decoded %d (v1) / %d (v2) executions, want %d", len(d1), len(d2), len(traces))
			}
			for i := range traces {
				if !reflect.DeepEqual(d1[i], traces[i]) {
					t.Fatalf("v1 round trip of %s/%d diverges from the original", app.Name, i)
				}
				if !reflect.DeepEqual(d2[i], traces[i]) {
					t.Fatalf("v2 round trip of %s/%d diverges from the original", app.Name, i)
				}
			}

			// Size gate: the columnar container must stay at or below 60% of
			// the v1 encoding for every app (acceptance criterion).
			if ratio := float64(v2Size) / float64(v1Size); ratio > 0.60 {
				t.Errorf("v2 size %d is %.1f%% of v1 size %d, want <= 60%%", v2Size, 100*ratio, v1Size)
			} else {
				t.Logf("v2 %d bytes = %.1f%% of v1 %d bytes", v2Size, 100*ratio, v1Size)
			}

			// Simulation equivalence: RunSource over the v2 byte stream must
			// match RunApp over the in-memory traces for every policy.
			runner := sim.MustNewRunner(s.Config())
			for _, name := range policies {
				pol, ok := s.PolicyByName(name)
				if !ok {
					t.Fatalf("unknown policy %q", name)
				}
				want, err := runner.RunApp(traces, pol)
				if err != nil {
					t.Fatalf("RunApp under %s: %v", pol.Name, err)
				}
				got, err := runner.RunSource(trace.NewBlockSource(bytes.NewReader(v2.Bytes())), pol)
				if err != nil {
					t.Fatalf("RunSource(v2) under %s: %v", pol.Name, err)
				}
				if w, g := fmt.Sprintf("%+v", want), fmt.Sprintf("%+v", got); w != g {
					t.Errorf("RunSource over v2 diverges from RunApp under %s\nwant %s\ngot  %s", pol.Name, w, g)
				}
			}
		})
	}
}

// TestReplayFileMatchesRunApp closes the loop on the CLI replay path: a
// v2 file written by the tracegen path and replayed through
// Suite.ReplaySource yields the same table as replaying the in-memory
// slice source.
func TestReplayFileMatchesRunApp(t *testing.T) {
	s, err := NewSuite(DefaultSeed, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("nedit")
	traces := s.Traces(app)
	var v2 bytes.Buffer
	encodeApp(t, &v2, traces, "v2")

	policies := []string{"base", "tp", "pcap", "ideal"}
	fromFile, err := s.ReplaySource(trace.NewBlockSource(bytes.NewReader(v2.Bytes())), policies)
	if err != nil {
		t.Fatal(err)
	}
	fromSlice, err := s.ReplaySource(trace.NewSliceSource(traces...), policies)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile != fromSlice {
		t.Errorf("replay over v2 bytes diverges from replay over the slice source:\n%s\nvs\n%s", fromFile, fromSlice)
	}
	if _, err := s.ReplaySource(trace.NewSliceSource(traces...), []string{"nope"}); err == nil {
		t.Error("ReplaySource accepted an unknown policy name")
	}
}

package lint

import "strings"

// resultAffectingPackages are the packages whose code can perturb
// experiment output: everything on the path from workload generation
// through simulation to the reported tables and figures. The detmap and
// nondet-source analyzers only fire here — cmd/* and internal/rng are
// deliberately outside (a CLI may read the clock for progress output, and
// internal/rng is the one sanctioned randomness seam).
var resultAffectingPackages = map[string]bool{
	"internal/sim":          true,
	"internal/core":         true,
	"internal/fscache":      true,
	"internal/experiments":  true,
	"internal/workload":     true,
	"internal/trace":        true,
	"internal/predictor":    true,
	"internal/prefetch":     true,
	"internal/ltree":        true,
	"internal/hypothesis":   true,
	"internal/fleet":        true,
	"internal/server":       true,
	"internal/server/stats": true,
}

// resultAffecting reports whether the module-relative package path is in
// the result-affecting set.
func resultAffecting(relPath string) bool {
	return resultAffectingPackages[relPath]
}

// errcheckScope reports whether errcheck-lite covers the package: the
// codec and persistence layers (a swallowed error silently corrupts trace
// or state files), the daemon's writers (a dropped Write/Flush error on
// the SSE stream masks a client disconnect and keeps a dead job
// streaming), and every command.
func errcheckScope(relPath string) bool {
	return relPath == "internal/trace" || relPath == "internal/persist" ||
		relPath == "internal/server" || relPath == "internal/server/stats" ||
		strings.HasPrefix(relPath, "cmd/")
}

package lint

// An intra-procedural control-flow graph over go/ast function bodies,
// plus the forward-dataflow fixed point the flow-sensitive analyzers
// (poolsafe v2, ctxflow) run over it. Stdlib-only, like the rest of the
// framework: no SSA, no golang.org/x/tools/go/cfg — the graph is built
// directly from the statement structure, which is all the analyzers
// need (DESIGN.md §17).
//
// Construction rules:
//
//   - A CFGBlock holds a straight-line run of statements and the
//     condition/tag expressions evaluated on entry to a branch. Edges
//     cover if/else, for (cond/post/back edge), range, switch and
//     type-switch (including fallthrough), select (one edge per comm
//     clause; no fall-past edge unless the select could complete),
//     goto, and labeled break/continue.
//   - Return statements and falling off the end of the body edge into a
//     single Return sink block; panic(), os.Exit, runtime.Goexit and
//     Fatal-family calls edge into a distinct Panic sink, so analyses
//     can require properties on non-panic exits only.
//   - defer statements are ordinary nodes in their block and are also
//     collected in Defers. For a forward analysis this models defers as
//     exit-edge actions: a deferred call influences exactly the exits
//     reachable from its registration point, which is when it runs.
//   - Code made unreachable by return/goto/panic still gets blocks (so
//     labels inside it resolve), but those blocks have no predecessors
//     and a forward dataflow never visits them.
//
// The builder is syntax-directed and makes no attempt to prune
// infeasible paths (`if false { ... }` keeps both edges); analyzers
// over-approximate reachability, which is the sound direction for the
// must-reach-Put and must-see-cancellation checks built on top.

import (
	"go/ast"
	"go/types"
)

// A CFGBlock is one basic block: statements that execute in sequence
// with branching only at the end.
type CFGBlock struct {
	// Index is the block's position in FuncCFG.Blocks.
	Index int
	// Kind is "" for ordinary blocks, "entry" for the entry block, and
	// "return" / "panic" for the two exit sinks.
	Kind string
	// Nodes holds the block's statements and branch-head expressions
	// (if/for conditions, switch tags, ranged expressions) in execution
	// order. Node subtrees never overlap across or within blocks: a
	// statement's sub-blocks own their nodes, so an analysis may
	// ast.Inspect each node exactly once.
	Nodes []ast.Node
	// Head, when non-nil, is the range or select statement this block
	// is the header of. The statement's body is not in Nodes — its
	// sub-blocks carry it.
	Head  ast.Stmt
	Succs []*CFGBlock
	Preds []*CFGBlock
}

// A FuncCFG is the control-flow graph of one function body.
type FuncCFG struct {
	Entry *CFGBlock
	// Return is the sink every return statement and the fall-off-end
	// path edge into.
	Return *CFGBlock
	// Panic is the sink for panic/os.Exit/runtime.Goexit/Fatal* calls.
	Panic  *CFGBlock
	Blocks []*CFGBlock
	// Defers lists every defer statement in the body, in source order.
	Defers []*ast.DeferStmt
	// Loops maps each for/range statement to its header and exit
	// blocks, for analyses that reason about back edges.
	Loops map[ast.Stmt]*LoopBlocks
}

// LoopBlocks names the structural blocks of one loop.
type LoopBlocks struct {
	// Header is the back-edge target: the condition block of a for,
	// the per-iteration block of a range.
	Header *CFGBlock
	// After is the loop's normal exit (cond-false or break target).
	After *CFGBlock
}

// BuildCFG constructs the CFG of one function body. info is used to
// recognize terminal calls (panic, os.Exit, Fatal*) so they edge into
// the panic sink instead of falling through.
func BuildCFG(info *types.Info, body *ast.BlockStmt) *FuncCFG {
	b := &cfgBuilder{
		info: info,
		g: &FuncCFG{
			Loops: make(map[ast.Stmt]*LoopBlocks),
		},
		labels: make(map[string]*CFGBlock),
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Return = b.newBlock("return")
	b.g.Panic = b.newBlock("panic")
	b.cur = b.g.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Return)
	}
	for _, pg := range b.gotos {
		if target := b.labels[pg.label]; target != nil && pg.from != nil {
			b.edge(pg.from, target)
		}
	}
	return b.g
}

// CFG returns the memoized control-flow graph for a function body in
// this pass's package. Analyzers for one package run on one goroutine,
// so the per-package cache needs no locking.
func (p *Pass) CFG(body *ast.BlockStmt) *FuncCFG {
	if p.Pkg.cfgs == nil {
		p.Pkg.cfgs = make(map[*ast.BlockStmt]*FuncCFG)
	}
	g := p.Pkg.cfgs[body]
	if g == nil {
		g = BuildCFG(p.Pkg.Info, body)
		p.Pkg.cfgs[body] = g
	}
	return g
}

type branchTarget struct {
	label  string
	target *CFGBlock
}

type pendingGoto struct {
	from  *CFGBlock
	label string
}

type cfgBuilder struct {
	info *types.Info
	g    *FuncCFG
	// cur is the block under construction; nil after a jump, when the
	// following code is unreachable.
	cur    *CFGBlock
	breaks []branchTarget
	conts  []branchTarget
	labels map[string]*CFGBlock
	gotos  []pendingGoto
	// pendingLabel is the label of an enclosing LabeledStmt, consumed
	// by the next loop/switch/select so labeled break/continue resolve.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *CFGBlock {
	blk := &CFGBlock{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target; following code is
// unreachable until a new block starts.
func (b *cfgBuilder) jump(target *CFGBlock) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// start begins filling target, linking it from the current block if
// control can reach it by falling through.
func (b *cfgBuilder) start(target *CFGBlock) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = target
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		// Unreachable statement: give it a predecessor-less block so
		// labels inside it still resolve.
		b.cur = b.newBlock("")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue to the innermost matching target.
func findTarget(stack []branchTarget, label string) *CFGBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].target
		}
	}
	return nil
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.takeLabel()
		b.stmts(st.List)
	case *ast.ReturnStmt:
		b.add(st)
		b.jump(b.g.Return)
	case *ast.ExprStmt:
		b.add(st)
		if isTerminalCall(b.info, st.X) {
			b.jump(b.g.Panic)
		}
	case *ast.DeferStmt:
		b.add(st)
		b.g.Defers = append(b.g.Defers, st)
	case *ast.BranchStmt:
		b.branch(st)
	case *ast.IfStmt:
		b.takeLabel()
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(st, b.takeLabel())
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.switchBody(st.Body, label, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Assign)
		b.switchBody(st.Body, label, false)
	case *ast.SelectStmt:
		b.selectStmt(st, b.takeLabel())
	case *ast.LabeledStmt:
		b.labeledStmt(st)
	case nil:
		// nothing
	default:
		// AssignStmt, DeclStmt, GoStmt, SendStmt, IncDecStmt,
		// EmptyStmt: straight-line nodes.
		b.takeLabel()
		b.add(s)
	}
}

func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	switch st.Tok.String() {
	case "break":
		label := ""
		if st.Label != nil {
			label = st.Label.Name
		}
		if target := findTarget(b.breaks, label); target != nil {
			b.add(st)
			b.jump(target)
			return
		}
		b.add(st)
		b.cur = nil
	case "continue":
		label := ""
		if st.Label != nil {
			label = st.Label.Name
		}
		if target := findTarget(b.conts, label); target != nil {
			b.add(st)
			b.jump(target)
			return
		}
		b.add(st)
		b.cur = nil
	case "goto":
		b.add(st)
		if st.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: st.Label.Name})
		}
		b.cur = nil
	case "fallthrough":
		// Recorded as a node; switchBody adds the edge to the next
		// case body.
		b.add(st)
	}
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	b.add(st.Cond)
	cond := b.cur
	after := b.newBlock("")
	// The then edge is added first: cond.Succs[0] is always the then
	// branch (poolsafe's comma-ok handling relies on this).
	then := b.newBlock("")
	b.edge(cond, then)
	b.cur = then
	b.stmts(st.Body.List)
	b.jump(after)
	if st.Else != nil {
		els := b.newBlock("")
		b.edge(cond, els)
		b.cur = els
		b.stmt(st.Else)
		b.jump(after)
	} else {
		b.edge(cond, after)
	}
	if len(after.Preds) > 0 {
		b.cur = after
	} else {
		b.cur = nil
	}
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt, label string) {
	if st.Init != nil {
		b.stmt(st.Init)
	}
	header := b.newBlock("")
	b.start(header)
	if st.Cond != nil {
		b.add(st.Cond)
	}
	after := b.newBlock("")
	latch := header
	if st.Post != nil {
		latch = b.newBlock("")
	}
	b.g.Loops[st] = &LoopBlocks{Header: header, After: after}
	if st.Cond != nil {
		b.edge(header, after)
	}
	body := b.newBlock("")
	b.edge(header, body)
	b.breaks = append(b.breaks, branchTarget{label, after})
	b.conts = append(b.conts, branchTarget{label, latch})
	b.cur = body
	b.stmts(st.Body.List)
	b.jump(latch)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	if st.Post != nil {
		if len(latch.Preds) > 0 {
			b.cur = latch
			b.add(st.Post)
			b.jump(header)
		}
	}
	if len(after.Preds) > 0 {
		b.cur = after
	} else {
		b.cur = nil
	}
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, label string) {
	header := b.newBlock("")
	b.start(header)
	// The header owns the ranged expression; the RangeStmt itself is
	// recorded as Head (appending it to Nodes would nest the whole
	// body's subtree into the header).
	header.Head = st
	header.Nodes = append(header.Nodes, st.X)
	after := b.newBlock("")
	b.g.Loops[st] = &LoopBlocks{Header: header, After: after}
	b.edge(header, after)
	body := b.newBlock("")
	b.edge(header, body)
	b.breaks = append(b.breaks, branchTarget{label, after})
	b.conts = append(b.conts, branchTarget{label, header})
	b.cur = body
	b.stmts(st.Body.List)
	b.jump(header)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	b.cur = after
}

// switchBody builds the clause blocks of a switch or type switch.
// head (the current block) holds the tag; every case body is a
// successor of it. allowFallthrough is false for type switches.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, allowFallthrough bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock("")
		b.cur = head
	}
	after := b.newBlock("")
	b.breaks = append(b.breaks, branchTarget{label, after})
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		clause, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, clause)
		if clause.List == nil {
			hasDefault = true
		}
	}
	bodies := make([]*CFGBlock, len(clauses))
	for i, clause := range clauses {
		bodies[i] = b.newBlock("")
		// The case expressions, not the CaseClause (whose subtree would
		// duplicate the body statements appended below).
		for _, e := range clause.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
		b.edge(head, bodies[i])
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, clause := range clauses {
		b.cur = bodies[i]
		b.stmts(clause.Body)
		// A fallthrough as the clause's final statement continues into
		// the next case body instead of leaving the switch.
		if allowFallthrough && i+1 < len(clauses) && endsInFallthrough(clause.Body) {
			b.jump(bodies[i+1])
		} else {
			b.jump(after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if len(after.Preds) > 0 {
		b.cur = after
	} else {
		b.cur = nil
	}
}

func endsInFallthrough(body []ast.Stmt) bool {
	for i := len(body) - 1; i >= 0; i-- {
		s := body[i]
		for {
			if ls, ok := s.(*ast.LabeledStmt); ok {
				s = ls.Stmt
				continue
			}
			break
		}
		if _, ok := s.(*ast.EmptyStmt); ok {
			continue
		}
		br, ok := s.(*ast.BranchStmt)
		return ok && br.Tok.String() == "fallthrough"
	}
	return false
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt, label string) {
	// The select head is marked via Head — ctxflow treats its presence
	// as a cancellation point. The clause blocks own the comm
	// statements and bodies.
	if b.cur == nil {
		b.cur = b.newBlock("")
	}
	if b.cur.Head != nil {
		// The current block already heads a range/select; give the
		// select its own block.
		next := b.newBlock("")
		b.edge(b.cur, next)
		b.cur = next
	}
	b.cur.Head = st
	head := b.cur
	after := b.newBlock("")
	b.breaks = append(b.breaks, branchTarget{label, after})
	for _, cs := range st.Body.List {
		clause, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("")
		if clause.Comm != nil {
			blk.Nodes = append(blk.Nodes, clause.Comm)
		}
		b.edge(head, blk)
		b.cur = blk
		b.stmts(clause.Body)
		b.jump(after)
	}
	// A select always runs exactly one clause (select{} blocks
	// forever), so there is no head→after edge.
	b.breaks = b.breaks[:len(b.breaks)-1]
	if len(after.Preds) > 0 {
		b.cur = after
	} else {
		b.cur = nil
	}
}

func (b *cfgBuilder) labeledStmt(st *ast.LabeledStmt) {
	target := b.newBlock("")
	b.start(target)
	b.labels[st.Label.Name] = target
	b.pendingLabel = st.Label.Name
	b.stmt(st.Stmt)
	b.pendingLabel = ""
}

// --- analyses over the graph --------------------------------------------

// Forward runs an iterative forward dataflow to a fixed point. transfer
// computes a block's out-state from its in-state; join merges states at
// control-flow merges (it must be monotone: join(a,b) moves toward a
// fixed point, e.g. boolean OR for a may-analysis). It returns the
// in-state per block index and which blocks are reachable from entry.
func (g *FuncCFG) Forward(entry uint8, join func(a, b uint8) uint8, transfer func(blk *CFGBlock, in uint8) uint8) (in []uint8, reachable []bool) {
	in = make([]uint8, len(g.Blocks))
	reachable = make([]bool, len(g.Blocks))
	in[g.Entry.Index] = entry
	reachable[g.Entry.Index] = true
	worklist := []*CFGBlock{g.Entry}
	for len(worklist) > 0 {
		blk := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		out := transfer(blk, in[blk.Index])
		for _, s := range blk.Succs {
			if !reachable[s.Index] {
				reachable[s.Index] = true
				in[s.Index] = out
				worklist = append(worklist, s)
			} else if j := join(in[s.Index], out); j != in[s.Index] {
				in[s.Index] = j
				worklist = append(worklist, s)
			}
		}
	}
	return in, reachable
}

// NaturalLoop returns the block set of the natural loop with the given
// header: the header plus every block that can reach one of the
// header's back edges without passing through the header. A
// cancellation point inside this set is, by construction, reachable on
// the back edge.
func (g *FuncCFG) NaturalLoop(header *CFGBlock) []bool {
	inLoop := make([]bool, len(g.Blocks))
	inLoop[header.Index] = true
	var stack []*CFGBlock
	for _, src := range g.backEdgeSources(header) {
		if !inLoop[src.Index] {
			inLoop[src.Index] = true
			stack = append(stack, src)
		}
	}
	// Walk predecessors backward until the header.
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range blk.Preds {
			if !inLoop[p.Index] {
				inLoop[p.Index] = true
				stack = append(stack, p)
			}
		}
	}
	return inLoop
}

// backEdgeSources returns the sources of back edges targeting header: a
// DFS from entry classifies an edge u→v as a back edge when v is still
// on the DFS stack. Plain reachability would misclassify the entry edge
// of a loop nested inside another loop, so the stack discipline matters.
func (g *FuncCFG) backEdgeSources(header *CFGBlock) []*CFGBlock {
	var (
		sources []*CFGBlock
		color   = make([]uint8, len(g.Blocks)) // 0 white, 1 on stack, 2 done
	)
	type frame struct {
		blk  *CFGBlock
		next int
	}
	stack := []frame{{blk: g.Entry}}
	color[g.Entry.Index] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.blk.Succs) {
			s := f.blk.Succs[f.next]
			f.next++
			switch color[s.Index] {
			case 0:
				color[s.Index] = 1
				stack = append(stack, frame{blk: s})
			case 1:
				if s == header {
					sources = append(sources, f.blk)
				}
			}
			continue
		}
		color[f.blk.Index] = 2
		stack = stack[:len(stack)-1]
	}
	return sources
}

// reachableFrom returns the blocks reachable from start by forward
// edges.
func (g *FuncCFG) reachableFrom(start *CFGBlock) []bool {
	seen := make([]bool, len(g.Blocks))
	seen[start.Index] = true
	stack := []*CFGBlock{start}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

// raceDetectorEnabled is flipped by race_test.go under `go test -race`.
var raceDetectorEnabled bool

// seedTraceV2 is a representative trace exercising every kind, negative
// FDs/blocks, PC locality and pid interleaving.
func seedTraceV2() *Trace {
	t := &Trace{App: "seed", Execution: 2}
	now := Time(0)
	for i := 0; i < 100; i++ {
		now += Time(1000 + i%7)
		switch {
		case i%17 == 3:
			t.Events = append(t.Events, Event{Time: now, Pid: PID(1 + i%3), Kind: KindFork, Child: PID(10 + i)})
		case i%23 == 7:
			t.Events = append(t.Events, Event{Time: now, Pid: PID(10 + i - 4), Kind: KindExit})
		default:
			t.Events = append(t.Events, Event{
				Time:   now,
				Pid:    PID(1 + i%3),
				Kind:   KindIO,
				Access: Access(i % 4),
				PC:     PC(0x1000 + 16*(i%5)),
				FD:     FD(3 - i%6), // includes negatives
				Block:  int64(1<<20 + i*8 - (i%11)*1000),
				Size:   int32(4096),
			})
		}
	}
	return t
}

func encodeV2(t testing.TB, tr *Trace, blockEvents int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc, err := NewBlockEncoder(&buf, tr.App, tr.Execution, len(tr.Events))
	if err != nil {
		t.Fatal(err)
	}
	if blockEvents > 0 {
		if err := enc.SetBlockEvents(blockEvents); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range tr.Events {
		if err := enc.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestColumnarRoundTrip(t *testing.T) {
	orig := seedTraceV2()
	for _, blockEvents := range []int{0, 1, 7, 64, 4096} {
		data := encodeV2(t, orig, blockEvents)
		got, err := Collect(NewBlockSource(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("blockEvents=%d: %v", blockEvents, err)
		}
		if len(got) != 1 || !tracesEqual(orig, got[0]) {
			t.Fatalf("blockEvents=%d: round trip mismatch", blockEvents)
		}
	}
}

func TestColumnarRoundTripEmpty(t *testing.T) {
	orig := &Trace{App: "empty", Execution: 0}
	data := encodeV2(t, orig, 0)
	src := NewBlockSource(bytes.NewReader(data))
	app, exec, ok := src.NextExec()
	if !ok || app != "empty" || exec != 0 {
		t.Fatalf("NextExec = %q, %d, %v", app, exec, ok)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("Next on empty execution returned an event")
	}
	if _, _, ok := src.NextExec(); ok {
		t.Fatal("second NextExec succeeded")
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestColumnarMultiExecution(t *testing.T) {
	a := seedTraceV2()
	b := seedTraceV2()
	b.App, b.Execution = "other", 5
	var buf bytes.Buffer
	for _, tr := range []*Trace{a, b} {
		if err := WriteColumnar(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Collect(NewBlockSource(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !tracesEqual(a, got[0]) || !tracesEqual(b, got[1]) {
		t.Fatal("multi-execution round trip mismatch")
	}
}

// TestColumnarMatchesV1 decodes the same trace through both codecs and
// compares event-for-event.
func TestColumnarMatchesV1(t *testing.T) {
	orig := seedTraceV2()
	var v1 bytes.Buffer
	if err := WriteBinary(&v1, orig); err != nil {
		t.Fatal(err)
	}
	fromV1, err := Collect(NewDecoder(bytes.NewReader(v1.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	fromV2, err := Collect(NewBlockSource(bytes.NewReader(encodeV2(t, orig, 16))))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromV1) != 1 || len(fromV2) != 1 || !tracesEqual(fromV1[0], fromV2[0]) {
		t.Fatal("v1 and v2 decode disagree")
	}
}

// TestColumnarEveryFlippedBitErrors corrupts the encoding one byte at a
// time: every flip must surface as a decode error (CRCs cover both header
// regions and all column payloads), and flips inside block regions must
// name the block.
func TestColumnarEveryFlippedBitErrors(t *testing.T) {
	orig := seedTraceV2()
	data := encodeV2(t, orig, 32)
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x40
		got, err := Collect(NewBlockSource(bytes.NewReader(corrupt)))
		if err == nil {
			// A flip may not be silently absorbed: it must either fail or
			// (never) decode to the same events. Anything else is silent
			// corruption.
			if len(got) == 1 && tracesEqual(orig, got[0]) {
				t.Fatalf("flip at byte %d produced an identical decode without error", i)
			}
			t.Fatalf("flip at byte %d decoded silently to different events", i)
		}
	}
}

func TestColumnarCorruptBlockNamesIndex(t *testing.T) {
	orig := seedTraceV2()
	data := encodeV2(t, orig, 32) // several blocks
	// Find the second block's magic and flip a byte well inside it.
	first := bytes.Index(data, []byte(blockMagic))
	second := bytes.Index(data[first+1:], []byte(blockMagic))
	if first < 0 || second < 0 {
		t.Fatal("expected at least two blocks")
	}
	pos := first + 1 + second + 20
	corrupt := append([]byte(nil), data...)
	corrupt[pos] ^= 0x01
	_, err := Collect(NewBlockSource(bytes.NewReader(corrupt)))
	if err == nil {
		t.Fatal("corrupt block decoded without error")
	}
	if !strings.Contains(err.Error(), "block 1") {
		t.Fatalf("error does not name block 1: %v", err)
	}
}

func TestColumnarTruncationErrors(t *testing.T) {
	orig := seedTraceV2()
	data := encodeV2(t, orig, 32)
	for _, cut := range []int{1, 4, 6, 10, len(data) / 3, len(data) - 1} {
		if _, err := Collect(NewBlockSource(bytes.NewReader(data[:cut]))); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}

func TestBlockEncoderErrors(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewBlockEncoder(&buf, "x", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(Event{Time: 100}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(Event{Time: 50}); err == nil {
		t.Fatal("out-of-order Write succeeded")
	}
	if err := enc.Close(); err == nil {
		t.Fatal("Close with missing events succeeded")
	}

	enc, _ = NewBlockEncoder(&buf, "x", 0, 1)
	if err := enc.Write(Event{Kind: Kind(9)}); err == nil {
		t.Fatal("unknown kind Write succeeded")
	}

	enc, _ = NewBlockEncoder(&buf, "x", 0, 0)
	if err := enc.Write(Event{}); err == nil {
		t.Fatal("Write past declared count succeeded")
	}
	if _, err := NewBlockEncoder(&buf, "x", -1, 0); err == nil {
		t.Fatal("negative exec accepted")
	}
	if _, err := NewBlockEncoder(&buf, "x", 0, -1); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestBlockEncoderSetBlockEventsAfterWrite(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewBlockEncoder(&buf, "x", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(Event{}); err != nil {
		t.Fatal(err)
	}
	if err := enc.SetBlockEvents(8); err == nil {
		t.Fatal("SetBlockEvents after Write succeeded")
	}
}

// TestBlockDecoderFrames drives the frame-level interface directly and
// checks the per-block stats.
func TestBlockDecoderFrames(t *testing.T) {
	orig := seedTraceV2()
	data := encodeV2(t, orig, 32)
	d := NewBlockDecoder(bytes.NewReader(data))
	app, exec, ok := d.NextExec()
	if !ok || app != orig.App || exec != orig.Execution {
		t.Fatalf("NextExec = %q, %d, %v", app, exec, ok)
	}
	if got := int(d.Count()); got != len(orig.Events) {
		t.Fatalf("Count = %d, want %d", got, len(orig.Events))
	}
	events := 0
	blocks := 0
	for {
		f, ok := d.NextFrame()
		if !ok {
			break
		}
		st := d.BlockStats()
		if st.Index != blocks {
			t.Fatalf("block index %d, want %d", st.Index, blocks)
		}
		if st.Events != f.Len() {
			t.Fatalf("stats events %d != frame len %d", st.Events, f.Len())
		}
		sum := 0
		for _, c := range st.ColBytes {
			sum += c
		}
		if sum != st.PayloadBytes {
			t.Fatalf("column bytes sum %d != payload %d", sum, st.PayloadBytes)
		}
		for i := 0; i < f.Len(); i++ {
			if got, want := f.Event(i), orig.Events[events]; got != want {
				t.Fatalf("event %d: got %+v, want %+v", events, got, want)
			}
			events++
		}
		blocks++
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if events != len(orig.Events) {
		t.Fatalf("decoded %d events, want %d", events, len(orig.Events))
	}
	if want := (len(orig.Events) + 31) / 32; blocks != want {
		t.Fatalf("decoded %d blocks, want %d", blocks, want)
	}
}

// TestBlockSourceReset replays a stream twice and expects identical
// events.
func TestBlockSourceReset(t *testing.T) {
	orig := seedTraceV2()
	src := NewBlockSource(bytes.NewReader(encodeV2(t, orig, 16)))
	first, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	second, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || len(second) != 1 || !tracesEqual(first[0], second[0]) {
		t.Fatal("replay after Reset differs")
	}
}

// TestBlockSourceSteadyStateAllocs: after a warmup pass, replaying the
// stream through Reset must not allocate — the frame, its columns, the
// payload buffer and the app-name string are all recycled.
func TestBlockSourceSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates and sync.Pool sheds items under it; the non-race pass enforces the count")
	}
	orig := seedTraceV2()
	src := NewBlockSource(bytes.NewReader(encodeV2(t, orig, 16)))
	drain := func() {
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
		for {
			_, _, ok := src.NextExec()
			if !ok {
				break
			}
			for {
				if _, ok := src.Next(); !ok {
					break
				}
			}
		}
		if err := src.Err(); err != nil {
			t.Fatal(err)
		}
	}
	drain() // warmup: frame and scratch reach their high-water marks
	avg := testing.AllocsPerRun(50, drain)
	// The frame transits the package pool between streams; a GC emptying
	// the pool mid-run can charge the occasional re-allocation, so allow
	// a small fraction rather than exactly zero.
	if avg > 0.5 {
		t.Fatalf("steady-state decode allocates %.2f allocs per pass, want 0", avg)
	}
}

func TestSniffedSource(t *testing.T) {
	orig := seedTraceV2()
	var v1, v2, txt bytes.Buffer
	if err := WriteBinary(&v1, orig); err != nil {
		t.Fatal(err)
	}
	if err := WriteColumnar(&v2, orig); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&txt, orig); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"v1": v1.Bytes(), "v2": v2.Bytes(), "text": txt.Bytes()} {
		src, err := NewSniffedSource(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Collect(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 1 || !tracesEqual(orig, got[0]) {
			t.Fatalf("%s: sniffed decode mismatch", name)
		}
	}
}

package experiments

import (
	"fmt"
	"strings"

	"pcapsim/internal/disk"
	"pcapsim/internal/fleet"
	"pcapsim/internal/sim"
)

// Fleet-scale evaluation: the per-app experiments above reproduce the
// paper's single-machine figures; the fleet row asks what the same
// policies do across a whole machine population — heterogeneous devices,
// per-machine app mixes, staggered sessions — using internal/fleet's
// shared-clock engine. It is rendered by the CLI's -fleet mode and is not
// part of ExperimentNames: the golden suite output stays pinned to the
// paper's figures.

// FleetPolicy resolves a replay policy name ("base", "tp", "pcap", …) to
// a device-parameterized fleet policy factory. Predictor thresholds
// (breakeven, wait window) are derived per device, the same way the
// device-sweep experiment rebuilds its per-device sub-suites, so a
// heterogeneous fleet runs each machine's policy calibrated to its own
// drive.
func FleetPolicy(name string, base sim.Config) (func(disk.Params) (sim.Policy, error), error) {
	if base == (sim.Config{}) {
		base = sim.DefaultConfig()
	}
	// Validate the name once, up front, against the base device.
	probe, err := NewSuite(DefaultSeed, base)
	if err != nil {
		return nil, err
	}
	if _, ok := probe.PolicyByName(name); !ok {
		return nil, fmt.Errorf("experiments: unknown policy %q (have %s)",
			name, strings.Join(ReplayPolicyNames(), ","))
	}
	return func(dev disk.Params) (sim.Policy, error) {
		cfg := base
		cfg.Disk = dev
		ds, err := NewSuite(DefaultSeed, cfg)
		if err != nil {
			return sim.Policy{}, fmt.Errorf("experiments: fleet policy %q for %q: %w", name, dev.Name, err)
		}
		pol, _ := ds.PolicyByName(name)
		return pol, nil
	}, nil
}

// FleetResults runs one fleet per named policy over an identical machine
// population — the same seed fixes every machine's arrival, device and
// workload, so the runs differ only in policy — and returns one result
// per policy, in order. Config fields other than Policy pass through
// untouched, so callers wire Observe (per-machine accounting) and
// Interrupt (cancellation) straight into the engine.
func FleetResults(cfg fleet.Config, policyNames []string) ([]*fleet.Result, error) {
	return FleetResultsObserved(cfg, policyNames, nil)
}

// FleetResultsObserved is FleetResults with a per-policy completion hook:
// observe (when non-nil) receives each policy's aggregate result as soon
// as its fleet run finishes, on the calling goroutine — the daemon's
// per-policy progress stream.
func FleetResultsObserved(cfg fleet.Config, policyNames []string, observe func(name string, res *fleet.Result)) ([]*fleet.Result, error) {
	if len(policyNames) == 0 {
		return nil, fmt.Errorf("experiments: fleet comparison needs at least one policy")
	}
	results := make([]*fleet.Result, 0, len(policyNames))
	for _, name := range policyNames {
		pf, err := FleetPolicy(name, cfg.Base)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Policy = pf
		f, err := fleet.New(c)
		if err != nil {
			return nil, err
		}
		res, err := f.Run()
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		if observe != nil {
			observe(name, res)
		}
	}
	return results, nil
}

// RenderFleetComparison renders per-policy fleet results as each
// aggregate report followed by a cross-policy summary table. Savings are
// relative to the always-on Base fleet when it is among the policies,
// else to the first. policyNames must be the list the results were run
// under, in the same order.
func RenderFleetComparison(policyNames []string, results []*fleet.Result) string {
	var b strings.Builder
	for _, res := range results {
		b.WriteString(res.Render())
		b.WriteString("\n")
	}
	baseIdx := 0
	for i, name := range policyNames {
		if strings.EqualFold(name, "base") {
			baseIdx = i
			break
		}
	}
	baseEnergy := results[baseIdx].Energy.Total()
	b.WriteString("policy       energy (J)    saved   shutdowns    hit%    wakeups   wait (s)\n")
	for _, res := range results {
		saved := 0.0
		if baseEnergy > 0 {
			saved = 100 * (1 - res.Energy.Total()/baseEnergy)
		}
		hitPct := 0.0
		if sd := res.Global.Shutdowns(); sd > 0 {
			hitPct = 100 * float64(res.Global.Hits()) / float64(sd)
		}
		fmt.Fprintf(&b, "%-10s %12.1f %7.1f%% %11d %6.1f%% %10d %10.1f\n",
			res.Policy, res.Energy.Total(), saved,
			res.Global.Shutdowns(), hitPct, res.Wakeups, res.WaitTime.Seconds())
	}
	return b.String()
}

// FleetComparison is FleetResults followed by RenderFleetComparison —
// the CLI's -fleet output.
func FleetComparison(cfg fleet.Config, policyNames []string) (string, error) {
	results, err := FleetResults(cfg, policyNames)
	if err != nil {
		return "", err
	}
	return RenderFleetComparison(policyNames, results), nil
}

package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The corpora under testdata/ are this repo's stand-in for
// golang.org/x/tools' analysistest: each corpus file marks expected
// findings with `// want "regex"` trailing comments, or
// `// want +N "regex"` on a nearby line when the finding's own line
// already carries a directive comment. Every corpus holds at least one
// true positive, one true negative, and one suppressed finding per
// analyzer.

// corpusFset and corpusImporter are shared across corpus tests: the
// source importer re-checks stdlib packages from $GOROOT/src, which is
// the dominant cost, and its cache lives inside the importer instance.
var (
	corpusFset     = token.NewFileSet()
	corpusImporter = importer.ForCompiler(corpusFset, "source", nil)
)

// loadCorpus parses and type-checks testdata/<dir> as if it were the
// module package pcapsim/<relPath>, so analyzer scoping (resultAffecting,
// errcheckScope) applies exactly as it would on real code.
func loadCorpus(t *testing.T, dir, relPath string) (*Module, *Package) {
	t.Helper()
	absDir, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(absDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(corpusFset, filepath.Join(absDir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files in %s", absDir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	path := "pcapsim/" + relPath
	conf := types.Config{Importer: corpusImporter}
	tpkg, err := conf.Check(path, corpusFset, files, info)
	if err != nil {
		t.Fatalf("type-checking corpus %s: %v", dir, err)
	}
	pkg := &Package{Path: path, RelPath: relPath, Dir: absDir, Files: files, Types: tpkg, Info: info}
	mod := &Module{
		Root:          absDir,
		Path:          "pcapsim",
		Fset:          corpusFset,
		Packages:      []*Package{pkg},
		ownerTransfer: ownerTransferFuncs(info, files),
	}
	return mod, pkg
}

var wantRe = regexp.MustCompile(`//\s*want\s+(?:\+(\d+)\s+)?"(.*)"\s*$`)

type wantMark struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants extracts every `// want` expectation from the corpus's
// comments. The optional `+N` offset moves the expected line N lines
// below the comment, for findings whose own line is occupied by a
// directive under test.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []wantMark {
	t.Helper()
	var wants []wantMark
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[2], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, wantMark{
					file: pos.Filename,
					line: pos.Line + offset,
					re:   re,
					raw:  m[2],
				})
			}
		}
	}
	return wants
}

// runCorpus runs the analyzers over one corpus package and checks the
// findings against its want marks, in both directions: every finding
// must be wanted, every want must be found.
func runCorpus(t *testing.T, dir, relPath string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	mod, pkg := loadCorpus(t, dir, relPath)
	got := runPackage(mod, pkg, analyzers, KnownNames())
	sortFindings(got)
	wants := collectWants(t, mod.Fset, pkg.Files)
	for _, f := range got {
		matched := false
		for i := range wants {
			w := &wants[i]
			if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", filepath.Base(w.file), w.line, w.raw)
		}
	}
	return got
}

func TestDetMapCorpus(t *testing.T) {
	runCorpus(t, "detmap", "internal/sim", DetMap)
}

func TestNondetSourceCorpus(t *testing.T) {
	runCorpus(t, "nondet", "internal/sim", NondetSource)
}

func TestPoolSafeCorpus(t *testing.T) {
	runCorpus(t, "poolsafe", "internal/pool", PoolSafe)
}

func TestErrcheckLiteCorpus(t *testing.T) {
	runCorpus(t, "errcheck", "internal/trace", ErrcheckLite)
}

func TestCtxFlowCorpus(t *testing.T) {
	runCorpus(t, "ctxflow", "internal/sim", CtxFlow)
}

func TestGoroLeakCorpus(t *testing.T) {
	runCorpus(t, "goroleak", "internal/trace", GoroLeak)
}

func TestFloatDetCorpus(t *testing.T) {
	runCorpus(t, "floatdet", "internal/sim", FloatDet)
}

// TestFrameworkDirectives runs no analyzers at all: every expected
// finding comes from the directive layer itself — unknown analyzer
// names, missing reasons, unknown verbs, misplaced owner-transfer.
func TestFrameworkDirectives(t *testing.T) {
	got := runCorpus(t, "framework", "internal/framework")
	for _, f := range got {
		if f.Analyzer != FrameworkName {
			t.Errorf("framework corpus produced a non-framework finding: %s", f)
		}
	}
	if len(got) == 0 {
		t.Fatal("framework corpus produced no directive errors")
	}
}

// TestScopedAnalyzersSkipOtherPackages pins the scoping contract: the
// same corpus that fires in a result-affecting package is silent when
// type-checked as a package outside the analyzer's scope.
func TestScopedAnalyzersSkipOtherPackages(t *testing.T) {
	mod, pkg := loadCorpus(t, "nondet", "internal/lint")
	if got := runPackage(mod, pkg, []*Analyzer{NondetSource}, KnownNames()); len(got) != 0 {
		t.Errorf("nondet-source fired outside result-affecting packages: %v", got)
	}
	mod, pkg = loadCorpus(t, "errcheck", "internal/sim")
	if got := runPackage(mod, pkg, []*Analyzer{ErrcheckLite}, KnownNames()); len(got) != 0 {
		t.Errorf("errcheck-lite fired outside its scope: %v", got)
	}
}

// TestTreeIsClean is the merge gate in miniature: the repository itself
// must lint clean with every analyzer enabled.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(root, All(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("tree not pcaplint-clean: %s", f)
	}
}

// TestRunModuleFindsSeededViolation proves the non-zero-exit acceptance
// path end to end: a fresh module with a true positive in a checked
// package produces findings through the same RunModule entry point
// cmd/pcaplint uses.
func TestRunModuleFindsSeededViolation(t *testing.T) {
	root := t.TempDir()
	writeFile := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module pcapsim\n\ngo 1.21\n")
	writeFile("internal/sim/bad.go", `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	findings, err := RunModule(root, All(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("seeded time.Now in internal/sim produced no findings")
	}
	f := findings[0]
	if f.Analyzer != "nondet-source" || f.File != "internal/sim/bad.go" {
		t.Errorf("unexpected finding for seeded violation: %+v", f)
	}
}

func TestSelect(t *testing.T) {
	names := func(as []*Analyzer) string {
		out := make([]string, len(as))
		for i, a := range as {
			out[i] = a.Name
		}
		return strings.Join(out, ",")
	}
	got, err := Select("", "")
	if err != nil || names(got) != "detmap,nondet-source,poolsafe,errcheck-lite,ctxflow,goroleak,floatdet" {
		t.Errorf("Select(\"\", \"\") = %s, %v", names(got), err)
	}
	got, err = Select("poolsafe,detmap", "")
	if err != nil || names(got) != "detmap,poolsafe" {
		t.Errorf("Select(only) = %s, %v", names(got), err)
	}
	got, err = Select("", "errcheck-lite,ctxflow,goroleak,floatdet")
	if err != nil || names(got) != "detmap,nondet-source,poolsafe" {
		t.Errorf("Select(skip) = %s, %v", names(got), err)
	}
	if _, err := Select("nosuch", ""); err == nil {
		t.Error("Select with unknown -only name did not fail")
	}
	if _, err := Select("", "nosuch"); err == nil {
		t.Error("Select with unknown -skip name did not fail")
	}
	if _, err := Select("detmap", "detmap"); err == nil {
		t.Error("Select excluding everything did not fail")
	}
}

package experiments

import (
	"fmt"
	"testing"

	"pcapsim/internal/disk"
	"pcapsim/internal/fleet"
	"pcapsim/internal/sim"
	"pcapsim/internal/workload"
)

// fleetOfOne builds a 1-machine fleet pinned to one app on the paper's
// drive, running the app's full recorded execution count.
func fleetOfOne(t *testing.T, app *workload.App, policy string) *fleet.Fleet {
	t.Helper()
	pf, err := FleetPolicy(policy, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fleet.New(fleet.Config{
		Machines:   1,
		Seed:       DefaultSeed,
		Executions: app.Executions,
		Mix:        []fleet.AppShare{{Name: app.Name, Weight: 1}},
		Devices:    []fleet.DeviceShare{{Device: disk.FujitsuMHF2043AT(), Weight: 1}},
		Base:       sim.DefaultConfig(),
		Policy:     pf,
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetOfOneEqualsRunApp is the fleet engine's ground truth: a fleet
// of exactly one machine running one app's full execution sequence must
// produce an AppResult identical — %+v-identical, floats included — to
// Runner.RunApp over the same generated traces, for every app and every
// suite policy. The fleet layers (mix source, shared-clock heap, lazy
// activation, fold) may add nothing and lose nothing.
func TestFleetOfOneEqualsRunApp(t *testing.T) {
	apps := workload.Apps()
	policies := ReplayPolicyNames()
	if testing.Short() {
		apps = apps[3:5] // xemacs, nedit: the small workloads
		policies = []string{"base", "tp", "lt", "pcap", "ideal"}
	}
	runner := sim.MustNewRunner(sim.DefaultConfig())
	suite := NewDefaultSuite()
	for _, app := range apps {
		for _, policy := range policies {
			t.Run(app.Name+"/"+policy, func(t *testing.T) {
				f := fleetOfOne(t, app, policy)
				var got sim.AppResult
				cfg := f.Config()
				cfg.Observe = func(id int, res *sim.AppResult) { got = *res }
				f, err := fleet.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Run(); err != nil {
					t.Fatal(err)
				}

				// The reference run uses the machine's derived workload
				// seed: the fleet machine and RunApp must consume the same
				// generated traces.
				seed := f.Spec(0).WorkloadSeed
				pol, ok := suite.PolicyByName(policy)
				if !ok {
					t.Fatalf("unknown policy %q", policy)
				}
				want, err := runner.RunApp(app.Traces(seed), pol)
				if err != nil {
					t.Fatal(err)
				}
				if g, w := fmt.Sprintf("%+v", got), fmt.Sprintf("%+v", *want); g != w {
					t.Errorf("fleet-of-one diverges from RunApp:\n got %s\nwant %s", g, w)
				}
			})
		}
	}
}

// TestFleetDeterminism checks the fleet's cross-worker contract: the
// rendered aggregate report of a heterogeneous, staggered fleet is
// byte-identical at 1, 4 and 8 workers.
func TestFleetDeterminism(t *testing.T) {
	machines := 120
	if testing.Short() {
		machines = 40
	}
	pf, err := FleetPolicy("pcap", sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		f, err := fleet.New(fleet.Config{
			Machines: machines,
			Seed:     DefaultSeed,
			Session:  600 * 1e6, // 10 virtual minutes
			Policy:   pf,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	want := render(1)
	for _, workers := range []int{4, 8} {
		if got := render(workers); got != want {
			t.Errorf("fleet report differs between 1 and %d workers:\n%d workers:\n%s\n1 worker:\n%s",
				workers, workers, got, want)
		}
	}
}

package hypothesis

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// validSpec is the canonical form of a representative spec (matching
// examples/pcap-vs-timeout.json in shape).
const validSpec = `{
  "name": "pcap-beats-timeout",
  "hypothesis": "PCAP saves energy vs a 10s timeout on xemacs",
  "app": "xemacs",
  "candidate": "pcap",
  "baseline": "tp",
  "criteria": [
    {
      "metric": "savings_pct",
      "op": ">=",
      "value": 5
    }
  ],
  "counterfactual": {
    "flip": "worst",
    "topn": 3
  }
}
`

func TestParseValidSpec(t *testing.T) {
	s, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "pcap-beats-timeout" || s.App != "xemacs" || s.Candidate != "pcap" {
		t.Fatalf("parsed spec = %+v", s)
	}
	if s.seed() == 0 || s.scale() != 1 {
		t.Fatalf("effective seed/scale = %d/%d", s.seed(), s.scale())
	}
}

// TestEncodeIsFixedPoint: Encode∘Parse must be the identity on canonical
// encodings — the property the fuzz target generalizes.
func TestEncodeIsFixedPoint(t *testing.T) {
	s, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(e1)
	if err != nil {
		t.Fatalf("re-parse of canonical encoding: %v", err)
	}
	e2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatalf("encode is not a fixed point:\n%s\nvs\n%s", e1, e2)
	}
}

func TestParseRejects(t *testing.T) {
	mutate := func(f func(s string) string) []byte { return []byte(f(validSpec)) }
	cases := []struct {
		name string
		in   []byte
		want string // substring of the error
	}{
		{"empty", nil, "parsing spec"},
		{"garbage", []byte("not json"), "parsing spec"},
		{"unknown field", mutate(func(s string) string {
			return strings.Replace(s, `"name"`, `"nom"`, 1)
		}), "unknown field"},
		{"trailing data", append([]byte(validSpec), []byte("{}")...), "trailing data"},
		{"no name", mutate(func(s string) string {
			return strings.Replace(s, `"pcap-beats-timeout"`, `""`, 1)
		}), "needs a name"},
		{"no hypothesis", mutate(func(s string) string {
			return strings.Replace(s, `"PCAP saves energy vs a 10s timeout on xemacs"`, `""`, 1)
		}), "hypothesis statement"},
		{"unknown app", mutate(func(s string) string {
			return strings.Replace(s, `"xemacs"`, `"notepad"`, 1)
		}), "unknown app"},
		{"unknown policy", mutate(func(s string) string {
			return strings.Replace(s, `"pcap"`, `"magic"`, 1)
		}), "unknown candidate policy"},
		{"unknown metric", mutate(func(s string) string {
			return strings.Replace(s, `"savings_pct"`, `"vibes"`, 1)
		}), "unknown metric"},
		{"unknown op", mutate(func(s string) string {
			return strings.Replace(s, `">="`, `"~="`, 1)
		}), "unknown op"},
		{"no criteria", mutate(func(s string) string {
			return strings.Replace(s, `"criteria": [
    {
      "metric": "savings_pct",
      "op": ">=",
      "value": 5
    }
  ]`, `"criteria": []`, 1)
		}), "at least one criterion"},
		{"bad flip", mutate(func(s string) string {
			return strings.Replace(s, `"worst"`, `"best"`, 1)
		}), "counterfactual flip"},
		{"unknown device", mutate(func(s string) string {
			return strings.Replace(s, `"app": "xemacs",`, `"app": "xemacs", "device": "SSD",`, 1)
		}), "unknown device"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestExampleSpecIsCanonical: the committed example spec must parse,
// validate, and already be in canonical encoding — the file users copy
// from should round-trip byte-identically.
func TestExampleSpecIsCanonical(t *testing.T) {
	data, err := os.ReadFile("../../examples/pcap-vs-timeout.json")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, data) {
		t.Fatalf("examples/pcap-vs-timeout.json is not canonical; want:\n%s", enc)
	}
	if s.App != "xemacs" || s.Candidate != "pcap" || s.Baseline != "tp" {
		t.Fatalf("example spec targets %s: %s vs %s", s.App, s.Candidate, s.Baseline)
	}
}

func TestDeviceByName(t *testing.T) {
	if _, ok := DeviceByName("generic 802.11 interface"); !ok {
		t.Error("WLAN device not found by exact name")
	}
	if _, ok := DeviceByName("GENERIC 802.11 INTERFACE"); !ok {
		t.Error("device lookup is not case-insensitive")
	}
	if _, ok := DeviceByName("floppy"); ok {
		t.Error("unknown device resolved")
	}
}

func TestMetricNamesSorted(t *testing.T) {
	names := MetricNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("metric registry not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func FuzzExperimentSpec(f *testing.F) {
	f.Add([]byte(validSpec))
	f.Add([]byte(`{"name":"n","hypothesis":"h","app":"mozilla","candidate":"lt","baseline":"base","seed":7,"scale":2,"device":"generic 2.5\" mobile disk","criteria":[{"metric":"wakeups","op":"<","value":100,"tolerance":0}]}`))
	f.Add([]byte(`{"name":"n","hypothesis":"h","app":"impress","candidate":"ideal","baseline":"pcapa","criteria":[{"metric":"hit_pct","op":"==","value":80,"tolerance":5}],"counterfactual":{"flip":"index","index":3,"topn":1}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"name":`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // arbitrary bytes must error cleanly, never panic
		}
		e1, err := s.Encode()
		if err != nil {
			t.Fatalf("valid spec failed to encode: %v", err)
		}
		s2, err := Parse(e1)
		if err != nil {
			t.Fatalf("canonical encoding failed to re-parse: %v\n%s", err, e1)
		}
		e2, err := s2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encode→decode→encode is not byte-identical:\n%s\nvs\n%s", e1, e2)
		}
	})
}

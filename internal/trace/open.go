package trace

import (
	"io"
	"os"
)

// Format sniffing: every tool accepts v1 binary, v2 columnar and text
// traces interchangeably by looking at the leading magic bytes.

// NewSniffedSource returns a streaming Source over r, selecting the
// decoder from the leading four bytes: "PCTR" is the v1 binary format,
// "PCT2" the v2 columnar format, anything else the text format. The
// reader is rewound to the start before the decoder is built.
func NewSniffedSource(r io.ReadSeeker) (Source, error) {
	var magic [4]byte
	n, err := io.ReadFull(r, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	switch {
	case n == len(magic) && string(magic[:]) == binaryMagic:
		return NewDecoder(r), nil
	case n == len(magic) && string(magic[:]) == blockFileMagic:
		return NewBlockSource(r), nil
	default:
		return NewTextDecoder(r), nil
	}
}

// OpenOptions tune OpenTraceFileOpts.
type OpenOptions struct {
	// Workers > 0 selects the parallel decode pipeline (ParallelSource)
	// for v2 columnar files, with that many decode workers; other
	// formats fall back to their sequential decoders. Workers < 0
	// selects the pipeline with GOMAXPROCS workers.
	Workers int
	// Pred restricts the stream to matching events. On v2 files with an
	// index footer, non-matching blocks are skipped without being read
	// (predicate pushdown); the surviving stream is then filtered
	// exactly, so every format yields the same events.
	Pred Predicate
}

// FileSource is a Source over an opened trace file; Close releases the
// file handle.
type FileSource struct {
	Source
	inner Source // unwrapped decoder, owning any pipeline resources
	f     *os.File
}

// Close stops any decode pipeline and closes the underlying file.
func (fs *FileSource) Close() error {
	if c, ok := fs.inner.(io.Closer); ok {
		_ = c.Close()
	}
	return fs.f.Close()
}

// Name returns the path the source was opened from.
func (fs *FileSource) Name() string { return fs.f.Name() }

// OpenTraceFile opens path and returns a streaming, resettable Source
// over it, sniffing the format (v1 binary, v2 columnar or text) from the
// file's first bytes. The caller owns the Close.
func OpenTraceFile(path string) (*FileSource, error) {
	return OpenTraceFileOpts(path, OpenOptions{})
}

// OpenTraceFileOpts is OpenTraceFile with decode options: parallel
// block decode and predicate pushdown for v2 files, exact filtering
// everywhere. The zero OpenOptions is exactly OpenTraceFile.
func OpenTraceFileOpts(path string, opts OpenOptions) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := newSourceOpts(f, opts)
	if err != nil {
		// The sniff failure is the error worth reporting; nothing was
		// written, so the close cannot lose data.
		_ = f.Close()
		return nil, err
	}
	return &FileSource{Source: FilterEvents(src, opts.Pred), inner: src, f: f}, nil
}

// newSourceOpts sniffs r and builds the decoder opts ask for: the
// parallel pipeline and/or pushdown on v2 streams, the plain sniffed
// decoder otherwise. The returned source is unfiltered — callers
// compose FilterEvents for exact predicate semantics.
func newSourceOpts(r io.ReadSeeker, opts OpenOptions) (Source, error) {
	var magic [4]byte
	n, err := io.ReadFull(r, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == len(magic) && string(magic[:]) == blockFileMagic {
		if opts.Workers != 0 {
			ps := NewParallelSource(r, opts.Workers)
			ps.SetPredicate(opts.Pred)
			return ps, nil
		}
		bs := NewBlockSource(r)
		bs.SetPredicate(opts.Pred)
		return bs, nil
	}
	return NewSniffedSource(r)
}

package experiments

import (
	"fmt"
	"strings"

	"pcapsim/internal/core"
	"pcapsim/internal/disk"
	"pcapsim/internal/sim"
)

// AccuracyCell is one (application, policy) accuracy bar of Figures 6, 7,
// 9 and 10.
type AccuracyCell struct {
	App    string
	Policy string
	// Counts are the raw outcomes; Frac normalizes to long idle periods.
	Counts sim.Counts
	Frac   sim.Fractions
}

// AccuracyFigure is a whole accuracy figure: apps × policies, plus the
// across-application average (each app weighted equally, as the paper
// averages).
type AccuracyFigure struct {
	Title    string
	Policies []string
	Cells    []AccuracyCell
	Average  map[string]sim.Fractions
}

// accuracyFigure runs all policies over all apps and extracts either the
// local or the global counts.
func (s *Suite) accuracyFigure(title string, pols []sim.Policy, local bool) (*AccuracyFigure, error) {
	fig := &AccuracyFigure{Title: title, Average: make(map[string]sim.Fractions)}
	for _, p := range pols {
		fig.Policies = append(fig.Policies, p.Name)
	}
	sums := make(map[string]*avgAcc)
	for _, app := range s.Apps() {
		for _, p := range pols {
			res, err := s.Run(app, p)
			if err != nil {
				return nil, err
			}
			c := res.Global
			if local {
				c = res.Local
			}
			cell := AccuracyCell{App: app.Name, Policy: p.Name, Counts: c, Frac: c.Fractions()}
			fig.Cells = append(fig.Cells, cell)
			if sums[p.Name] == nil {
				sums[p.Name] = &avgAcc{}
			}
			sums[p.Name].add(cell.Frac)
		}
	}
	for name, a := range sums {
		fig.Average[name] = a.mean()
	}
	return fig, nil
}

// avgAcc averages Fractions across applications.
type avgAcc struct {
	sum sim.Fractions
	n   int
}

func (a *avgAcc) add(f sim.Fractions) {
	a.sum.Hit += f.Hit
	a.sum.HitPrimary += f.HitPrimary
	a.sum.HitBackup += f.HitBackup
	a.sum.Miss += f.Miss
	a.sum.MissPrimary += f.MissPrimary
	a.sum.MissBackup += f.MissBackup
	a.sum.NotPredicted += f.NotPredicted
	a.n++
}

func (a *avgAcc) mean() sim.Fractions {
	if a.n == 0 {
		return sim.Fractions{}
	}
	n := float64(a.n)
	return sim.Fractions{
		Hit:          a.sum.Hit / n,
		HitPrimary:   a.sum.HitPrimary / n,
		HitBackup:    a.sum.HitBackup / n,
		Miss:         a.sum.Miss / n,
		MissPrimary:  a.sum.MissPrimary / n,
		MissBackup:   a.sum.MissBackup / n,
		NotPredicted: a.sum.NotPredicted / n,
	}
}

// fig67Policies are Figures 6 and 7's bars: TP, LT and PCAP.
func (s *Suite) fig67Policies() []sim.Policy {
	return []sim.Policy{s.PolicyTP(), s.PolicyLT(), s.PolicyPCAP(core.VariantBase)}
}

// fig9Policies are Figure 9's bars: the PCAP optimization variants.
func (s *Suite) fig9Policies() []sim.Policy {
	return []sim.Policy{
		s.PolicyPCAP(core.VariantBase), s.PolicyPCAP(core.VariantH),
		s.PolicyPCAP(core.VariantF), s.PolicyPCAP(core.VariantFH),
	}
}

// fig10Policies are Figure 10's bars: table reuse vs discard.
func (s *Suite) fig10Policies() []sim.Policy {
	return []sim.Policy{
		s.PolicyPCAP(core.VariantBase), s.PolicyPCAPa(),
		s.PolicyLT(), s.PolicyLTa(),
	}
}

// Fig6 reproduces Figure 6: local shutdown predictor accuracy for TP, LT
// and PCAP.
func (s *Suite) Fig6() (*AccuracyFigure, error) {
	return s.accuracyFigure("Figure 6: local shutdown predictor", s.fig67Policies(), true)
}

// Fig7 reproduces Figure 7: global shutdown predictor accuracy for TP, LT
// and PCAP.
func (s *Suite) Fig7() (*AccuracyFigure, error) {
	return s.accuracyFigure("Figure 7: global shutdown predictor", s.fig67Policies(), false)
}

// Fig9 reproduces Figure 9: PCAP optimizations (history, file descriptor),
// global predictor, with primary/backup splits.
func (s *Suite) Fig9() (*AccuracyFigure, error) {
	return s.accuracyFigure("Figure 9: predictor optimizations", s.fig9Policies(), false)
}

// Fig10 reproduces Figure 10: prediction-table reuse (PCAP vs PCAPa, LT
// vs LTa), global predictor, with primary/backup splits.
func (s *Suite) Fig10() (*AccuracyFigure, error) {
	return s.accuracyFigure("Figure 10: predictor table reuse", s.fig10Policies(), false)
}

// Render renders an accuracy figure as text, one row per (app, policy),
// with hit/miss split by deciding mechanism.
func (f *AccuracyFigure) Render() string {
	t := newTable("App", "Policy", "Hit", "Hit prim", "Hit bkup", "Miss", "Miss prim", "Miss bkup", "Not pred", "Long periods")
	lastApp := ""
	for _, c := range f.Cells {
		app := c.App
		if app == lastApp {
			app = ""
		} else {
			lastApp = c.App
		}
		t.Row(app, c.Policy, pct(c.Frac.Hit), pct(c.Frac.HitPrimary), pct(c.Frac.HitBackup),
			pct(c.Frac.Miss), pct(c.Frac.MissPrimary), pct(c.Frac.MissBackup),
			pct(c.Frac.NotPredicted), fmt.Sprint(c.Counts.LongPeriods))
	}
	for _, name := range f.Policies {
		a := f.Average[name]
		t.Row("average", name, pct(a.Hit), pct(a.HitPrimary), pct(a.HitBackup),
			pct(a.Miss), pct(a.MissPrimary), pct(a.MissBackup), pct(a.NotPredicted), "")
	}
	return f.Title + "\n\n" + t.String()
}

// EnergyCell is one (application, policy) bar of Figure 8.
type EnergyCell struct {
	App    string
	Policy string
	// Energy is the absolute breakdown in joules.
	Energy disk.EnergyBreakdown
	// BaseTotal is the Base policy's total for the app, the normalization
	// denominator.
	BaseTotal float64
	// Cycles is the number of shutdowns performed.
	Cycles int
}

// Normalized returns the breakdown as fractions of the Base total.
func (c EnergyCell) Normalized() (busy, idleShort, idleLong, powerCycle, total float64) {
	if c.BaseTotal <= 0 {
		return
	}
	b := c.BaseTotal
	return c.Energy.Busy / b, c.Energy.IdleShort / b, c.Energy.IdleLong / b,
		c.Energy.PowerCycle / b, c.Energy.Total() / b
}

// Savings returns the fraction of Base energy eliminated.
func (c EnergyCell) Savings() float64 {
	if c.BaseTotal <= 0 {
		return 0
	}
	return 1 - c.Energy.Total()/c.BaseTotal
}

// EnergyFigure is Figure 8: apps × policies energy distributions.
type EnergyFigure struct {
	Policies []string
	Cells    []EnergyCell
	// AverageSavings is the across-application mean savings per policy.
	AverageSavings map[string]float64
}

// fig8Policies are the paper's five bars, in order.
func (s *Suite) fig8Policies() []sim.Policy {
	return []sim.Policy{
		s.PolicyBase(), s.PolicyIdeal(), s.PolicyTP(), s.PolicyLT(), s.PolicyPCAP(core.VariantBase),
	}
}

// Fig8 reproduces Figure 8: the energy distribution under Base, Ideal,
// TP, LT and PCAP.
func (s *Suite) Fig8() (*EnergyFigure, error) {
	return s.energyFigure(s.fig8Policies())
}

// energyFigure runs the given policies and normalizes each app's bars to
// its Base total.
func (s *Suite) energyFigure(pols []sim.Policy) (*EnergyFigure, error) {
	fig := &EnergyFigure{AverageSavings: make(map[string]float64)}
	for _, p := range pols {
		fig.Policies = append(fig.Policies, p.Name)
	}
	counts := make(map[string]int)
	for _, app := range s.Apps() {
		base, err := s.Run(app, s.PolicyBase())
		if err != nil {
			return nil, err
		}
		baseTotal := base.Energy.Total()
		for _, p := range pols {
			res, err := s.Run(app, p)
			if err != nil {
				return nil, err
			}
			cell := EnergyCell{
				App: app.Name, Policy: p.Name,
				Energy: res.Energy, BaseTotal: baseTotal, Cycles: res.Cycles,
			}
			fig.Cells = append(fig.Cells, cell)
			fig.AverageSavings[p.Name] += cell.Savings()
			counts[p.Name]++
		}
	}
	for _, p := range pols {
		if n := counts[p.Name]; n > 0 {
			fig.AverageSavings[p.Name] /= float64(n)
		}
	}
	return fig, nil
}

// Render renders the energy figure as text.
func (f *EnergyFigure) Render() string {
	t := newTable("App", "Policy", "Busy", "Idle<BE", "Idle>BE", "Pwr cycle", "Total", "Saved", "Shutdowns")
	lastApp := ""
	for _, c := range f.Cells {
		app := c.App
		if app == lastApp {
			app = ""
		} else {
			lastApp = c.App
		}
		busy, is, il, pc, tot := c.Normalized()
		t.Row(app, c.Policy, pct(busy), pct(is), pct(il), pct(pc), pct(tot),
			pct(c.Savings()), fmt.Sprint(c.Cycles))
	}
	var avg strings.Builder
	for _, name := range f.Policies {
		fmt.Fprintf(&avg, "  %s: %s", name, pct(f.AverageSavings[name]))
	}
	return "Figure 8: energy distribution (fractions of Base energy)\n\n" +
		t.String() + "\naverage savings:" + avg.String() + "\n"
}

package sim

import (
	"pcapsim/internal/disk"
	"pcapsim/internal/trace"
)

// This file provides a second, independent energy engine built on the
// explicit disk state machine (disk.Machine) instead of the runner's
// analytic per-period accounting. The two engines make slightly different
// modelling choices — the machine delays I/O service until a pending
// spin-up completes and charges standby power through transitions, while
// the analytic engine keeps trace timestamps fixed — so their totals
// differ by a small, bounded amount per power cycle. Comparing them
// cross-validates both implementations (see TestEnginesAgree) and
// quantifies the cost of the fixed-timestamp simplification.

// MachineEnergy replays the given execution traces through disk.Machine
// under the policy's *recorded* shutdown decisions and returns the total
// energy breakdown. It runs the regular simulation first (to obtain the
// shutdown schedule via the PeriodHook) and then drives the state machine
// with that schedule.
func (r *Runner) MachineEnergy(traces []*trace.Trace, pol Policy) (disk.EnergyBreakdown, error) {
	type shutdownCmd struct {
		exec int
		at   trace.Time
	}
	var schedule []shutdownCmd
	// Capture the shutdown schedule by driving the extracted machine
	// layer directly with a capture hook — the same prepare/step path as
	// RunApp, without mutating r (whose PeriodHook may be owned by a
	// concurrent caller) and without hand-assembling a scratch Runner.
	m, err := r.newMachine(trace.NewSliceSource(traces...), pol, nil)
	if err != nil {
		return disk.EnergyBreakdown{}, err
	}
	m.hook = func(p PeriodRecord) {
		if p.Shutdown {
			schedule = append(schedule, shutdownCmd{exec: p.Execution, at: p.At})
		}
	}
	for {
		if _, ok := m.nextTime(); !ok {
			break
		}
		m.step()
	}
	if _, err := m.finish(); err != nil {
		return disk.EnergyBreakdown{}, err
	}

	var total disk.EnergyBreakdown
	si := 0 // schedule cursor
	for _, tr := range traces {
		ex, err := prepare(tr, r.cfg.Cache)
		if err != nil {
			return disk.EnergyBreakdown{}, err
		}
		m, err := disk.NewMachine(r.cfg.Disk)
		if err != nil {
			return disk.EnergyBreakdown{}, err
		}
		// Interleave accesses and scheduled shutdowns in time order. The
		// machine re-times service after spin-ups, so its clock can run
		// ahead of the trace; commands are clamped to its present.
		clamp := func(t trace.Time) trace.Time {
			if now := m.Now(); t < now {
				return now
			}
			return t
		}
		for i, a := range ex.accesses {
			if _, err := m.ServeIO(clamp(a.Time), r.serviceTime(a)); err != nil {
				return disk.EnergyBreakdown{}, err
			}
			// Classify the idle period that now begins, then execute the
			// shutdowns scheduled strictly inside it (a shutdown stamped
			// at this access's own time belongs to this period — the
			// oracle shuts down at the instant the period starts).
			next := ex.end
			if i+1 < len(ex.accesses) {
				next = ex.accesses[i+1].Time
			}
			m.SetPeriodClass(next-a.Time >= r.cfg.Disk.Breakeven)
			for si < len(schedule) && schedule[si].exec == tr.Execution && schedule[si].at < next {
				if err := m.Shutdown(clamp(schedule[si].at)); err != nil {
					return disk.EnergyBreakdown{}, err
				}
				si++
			}
		}
		// Drop any leftover commands of this execution (stamped at or
		// after the final event).
		for si < len(schedule) && schedule[si].exec == tr.Execution {
			si++
		}
		end := ex.end
		if m.Now() > end {
			end = m.Now()
		}
		e, err := m.Finish(end)
		if err != nil {
			return disk.EnergyBreakdown{}, err
		}
		total.Add(e)
	}
	return total, nil
}

// EngineDivergenceBound returns the maximum per-cycle energy discrepancy
// expected between the analytic and machine engines: the machine charges
// standby power through both transitions and delays service by the
// spin-up time (idle power there), while the analytic engine does
// neither.
func EngineDivergenceBound(p disk.Params, cycles int) float64 {
	perCycle := p.StandbyPower*p.CycleTime().Seconds() +
		p.IdlePower*p.SpinUpTime.Seconds()
	if perCycle < 0 {
		return 0
	}
	return float64(cycles)*perCycle + 1e-6
}

package workload

import (
	"sync"
	"testing"

	"pcapsim/internal/trace"
)

// sameSlice reports whether two trace slices are the identical backing
// array (the sharing guarantee, stronger than deep equality).
func sameSlice(a, b []*trace.Trace) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// TestTraceCache drives the memoization contract table-style: for every
// (app, seed) workload below, concurrent callers must observe exactly one
// generation and receive the identical slice.
func TestTraceCache(t *testing.T) {
	cases := []struct {
		name    string
		app     string
		seed    uint64
		callers int
	}{
		{name: "nedit-single-caller", app: "nedit", seed: 1, callers: 1},
		{name: "nedit-concurrent", app: "nedit", seed: 2, callers: 16},
		{name: "xemacs-concurrent", app: "xemacs", seed: 2, callers: 8},
		{name: "nedit-default-seed", app: "nedit", seed: 20040214, callers: 4},
	}
	c := NewTraceCache()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			app, ok := ByName(tc.app)
			if !ok {
				t.Fatalf("unknown app %s", tc.app)
			}
			before := c.Generations()
			results := make([][]*trace.Trace, tc.callers)
			var wg sync.WaitGroup
			for i := range results {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					results[i] = c.Traces(app, tc.seed)
				}()
			}
			wg.Wait()
			for i, r := range results {
				if len(r) != app.Executions {
					t.Fatalf("caller %d: %d traces, want %d", i, len(r), app.Executions)
				}
				if !sameSlice(r, results[0]) {
					t.Errorf("caller %d received a different slice than caller 0", i)
				}
			}
			if got := c.Generations(); got != before+1 {
				t.Errorf("generations went %d -> %d, want exactly one generation", before, got)
			}
			// A repeat call is a pure cache hit.
			if again := c.Traces(app, tc.seed); !sameSlice(again, results[0]) {
				t.Error("repeat call returned a different slice")
			}
			if got := c.Generations(); got != before+1 {
				t.Errorf("repeat call regenerated: %d generations, want %d", got, before+1)
			}
		})
	}
}

// TestTraceCacheSeedIsolation checks that distinct seeds never share cache
// entries, and that the traces they produce really differ.
func TestTraceCacheSeedIsolation(t *testing.T) {
	c := NewTraceCache()
	app, _ := ByName("nedit")
	a := c.Traces(app, 1)
	b := c.Traces(app, 2)
	if sameSlice(a, b) {
		t.Fatal("seeds 1 and 2 share a cache entry")
	}
	if c.Len() != 2 {
		t.Fatalf("cache has %d entries, want 2", c.Len())
	}
	if c.Generations() != 2 {
		t.Fatalf("%d generations, want 2", c.Generations())
	}
	// Seed changes the user behaviour, so event streams must diverge.
	differ := false
	for i := range a {
		if a[i].Len() != b[i].Len() {
			differ = true
			break
		}
	}
	if !differ {
		// Same lengths everywhere is suspicious but possible; compare times.
	outer:
		for i := range a {
			for j := range a[i].Events {
				if a[i].Events[j].Time != b[i].Events[j].Time {
					differ = true
					break outer
				}
			}
		}
	}
	if !differ {
		t.Error("seeds 1 and 2 generated identical traces")
	}
}

// TestTraceCacheAppIsolation checks that different apps get separate
// entries under the same seed.
func TestTraceCacheAppIsolation(t *testing.T) {
	c := NewTraceCache()
	nedit, _ := ByName("nedit")
	xemacs, _ := ByName("xemacs")
	a := c.Traces(nedit, 7)
	b := c.Traces(xemacs, 7)
	if sameSlice(a, b) {
		t.Fatal("nedit and xemacs share a cache entry")
	}
	if a[0].App != "nedit" || b[0].App != "xemacs" {
		t.Fatalf("mislabelled traces: %s / %s", a[0].App, b[0].App)
	}
	if c.Generations() != 2 {
		t.Fatalf("%d generations, want 2", c.Generations())
	}
}

// TestTraceCacheDeterminism checks that a cold cache regenerates
// byte-identical traces — the property the experiment engine's
// determinism contract rests on.
func TestTraceCacheDeterminism(t *testing.T) {
	app, _ := ByName("nedit")
	a := NewTraceCache().Traces(app, 42)
	b := NewTraceCache().Traces(app, 42)
	if len(a) != len(b) {
		t.Fatalf("trace counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Events) != len(b[i].Events) {
			t.Fatalf("exec %d: event counts differ", i)
		}
		for j := range a[i].Events {
			if a[i].Events[j] != b[i].Events[j] {
				t.Fatalf("exec %d event %d differs: %v vs %v", i, j, a[i].Events[j], b[i].Events[j])
			}
		}
	}
}

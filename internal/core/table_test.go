package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"pcapsim/internal/trace"
)

func TestTableBasics(t *testing.T) {
	tab := NewTable(0)
	k := Key{Sig: 0x1234}
	if tab.Lookup(k) {
		t.Fatal("empty table matched")
	}
	tab.Train(k)
	if !tab.Lookup(k) {
		t.Fatal("trained key not found")
	}
	if tab.Len() != 1 {
		t.Errorf("len %d", tab.Len())
	}
	tab.Train(k) // idempotent
	if tab.Len() != 1 {
		t.Errorf("len after retrain %d", tab.Len())
	}
	st := tab.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Inserts != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestTableKeyDistinctions(t *testing.T) {
	tab := NewTable(0)
	tab.Train(Key{Sig: 1})
	cases := []Key{
		{Sig: 1, HasHist: true},
		{Sig: 1, HasFD: true},
		{Sig: 1, Hist: 1, HasHist: true},
		{Sig: 1, FD: 1, HasFD: true},
		{Sig: 2},
	}
	for _, k := range cases {
		if tab.Lookup(k) {
			t.Errorf("key %v matched plain sig entry", k)
		}
	}
}

func TestTableLRUBound(t *testing.T) {
	tab := NewTable(2)
	tab.Train(Key{Sig: 1})
	tab.Train(Key{Sig: 2})
	tab.Lookup(Key{Sig: 1}) // refresh 1; 2 is now LRU
	tab.Train(Key{Sig: 3})  // evicts 2
	if tab.Len() != 2 {
		t.Fatalf("len %d", tab.Len())
	}
	if tab.Lookup(Key{Sig: 2}) {
		t.Error("LRU victim still present")
	}
	if !tab.Lookup(Key{Sig: 1}) || !tab.Lookup(Key{Sig: 3}) {
		t.Error("survivors missing")
	}
	if tab.Stats().Evictions != 1 {
		t.Errorf("evictions %d", tab.Stats().Evictions)
	}
}

func TestTableForget(t *testing.T) {
	tab := NewTable(0)
	tab.Train(Key{Sig: 7})
	if !tab.Forget(Key{Sig: 7}) {
		t.Error("forget reported absent")
	}
	if tab.Forget(Key{Sig: 7}) {
		t.Error("double forget reported present")
	}
	if tab.Len() != 0 {
		t.Errorf("len %d", tab.Len())
	}
}

func TestTableKeysSortedDeterministically(t *testing.T) {
	tab := NewTable(0)
	keys := []Key{
		{Sig: 3}, {Sig: 1, FD: 2, HasFD: true}, {Sig: 1, FD: 1, HasFD: true},
		{Sig: 2, Hist: 5, HasHist: true}, {Sig: 2, Hist: 1, HasHist: true},
	}
	for _, k := range keys {
		tab.Train(k)
	}
	got := tab.Keys()
	for i := 1; i < len(got); i++ {
		if got[i].less(got[i-1]) {
			t.Fatalf("keys not sorted: %v", got)
		}
	}
	// Deterministic across calls.
	again := tab.Keys()
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("key order unstable")
		}
	}
}

func TestLoadKeys(t *testing.T) {
	tab := NewTable(0)
	tab.LoadKeys([]Key{{Sig: 1}, {Sig: 2}, {Sig: 1}})
	if tab.Len() != 2 {
		t.Errorf("len %d", tab.Len())
	}
}

func TestStorageBytes(t *testing.T) {
	tab := NewTable(0)
	for i := 0; i < 139; i++ {
		tab.Train(Key{Sig: Signature(i)})
	}
	// The paper: 139 entries consume 556 bytes at 4 bytes per entry.
	if got := tab.StorageBytes(); got != 556 {
		t.Errorf("storage %d bytes, want 556", got)
	}
}

func TestSignatureAddPC(t *testing.T) {
	var s Signature
	s = s.AddPC(0xfffffffe).AddPC(3)
	if s != 1 {
		t.Errorf("wrap-around sum = %d, want 1 (mod 2^32)", s)
	}
}

// TestTableQuickMatchesMapModel checks the table against a plain map+order
// model under random operations, including LRU bounding.
func TestTableQuickMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const bound = 8
		tab := NewTable(bound)
		type entry struct{ key Key }
		var order []entry // front = most recent
		find := func(k Key) int {
			for i, e := range order {
				if e.key == k {
					return i
				}
			}
			return -1
		}
		for op := 0; op < 300; op++ {
			k := Key{Sig: Signature(r.Intn(16)), FD: trace.FD(r.Intn(2)), HasFD: true}
			switch r.Intn(3) {
			case 0: // train
				tab.Train(k)
				if i := find(k); i >= 0 {
					order = append(order[:i], order[i+1:]...)
				}
				order = append([]entry{{k}}, order...)
				if len(order) > bound {
					order = order[:bound]
				}
			case 1: // lookup
				want := find(k) >= 0
				if tab.Lookup(k) != want {
					return false
				}
				if i := find(k); i >= 0 {
					e := order[i]
					order = append(order[:i], order[i+1:]...)
					order = append([]entry{e}, order...)
				}
			case 2: // forget
				want := find(k) >= 0
				if tab.Forget(k) != want {
					return false
				}
				if i := find(k); i >= 0 {
					order = append(order[:i], order[i+1:]...)
				}
			}
			if tab.Len() != len(order) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTableConcurrentAccess hammers one shared table from many goroutines
// (the paper's multiprocess setting); run with -race.
func TestTableConcurrentAccess(t *testing.T) {
	tab := NewTable(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{Sig: Signature(i % 100)}
				switch i % 3 {
				case 0:
					tab.Train(k)
				case 1:
					tab.Lookup(k)
				case 2:
					if i%30 == 2 {
						tab.Forget(k)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() > 64 {
		t.Fatalf("bound violated under concurrency: %d", tab.Len())
	}
	_ = tab.Keys()
	_ = tab.Stats()
}

// TestPCAPConcurrentProcesses drives several per-process predictors of the
// same application concurrently; run with -race.
func TestPCAPConcurrentProcesses(t *testing.T) {
	p := MustNew(DefaultConfig(VariantFH))
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			proc := p.NewProcess(trace.PID(g))
			now := 0.0
			for i := 0; i < 1500; i++ {
				gap := 2.0
				if i%5 == 0 {
					gap = 30
				}
				now += gap
				proc.OnAccess(access(now, trace.PC(0x100*(i%9+1)), trace.FD(g)))
			}
		}(g)
	}
	wg.Wait()
	if p.StateSize() == 0 {
		t.Fatal("no training under concurrency")
	}
}

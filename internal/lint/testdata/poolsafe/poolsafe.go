// Package poolsafetest is the poolsafe analyzer's corpus. poolsafe runs
// in every package, so the corpus import path does not matter.
package poolsafetest

import (
	"errors"
	"sync"
)

type buf struct{ b []byte }

type holder struct{ b *buf }

var pool sync.Pool

var errBoom = errors.New("boom")

func use(*buf) {}

func stash(*buf) {}

// MissingPutOnError is a true positive: the error path returns without
// putting the value back.
func MissingPutOnError(fail bool) error {
	b := pool.Get().(*buf)
	if fail {
		return errBoom // want "does not reach Put before this return"
	}
	pool.Put(b)
	return nil
}

// StoreInField is a true positive: a field store gives the pooled value
// a second owner.
func StoreInField(h *holder) {
	b := pool.Get().(*buf)
	h.b = b // want "stored into field"
	pool.Put(b)
}

// Leak is a true positive: returning a pooled value from an unannotated
// function hands out an object the pool may recycle.
func Leak() *buf {
	b := pool.Get().(*buf)
	return b // want "is returned"
}

// Dropped is a true positive: the value goes out of scope without ever
// reaching Put.
func Dropped() {
	b := pool.Get().(*buf) // want "goes out of scope without Put"
	b.b = b.b[:0]
}

// DeferPut is a true negative: the deferred Put covers every path.
func DeferPut(fail bool) error {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	if fail {
		return errBoom
	}
	use(b)
	return nil
}

// PutBoth is a true negative: each path puts before leaving.
func PutBoth(fail bool) error {
	b := pool.Get().(*buf)
	if fail {
		pool.Put(b)
		return errBoom
	}
	use(b)
	pool.Put(b)
	return nil
}

// CommaOk is a true negative: the comma-ok idiom with the value consumed
// inside its scope.
func CommaOk() {
	if b, ok := pool.Get().(*buf); ok {
		use(b)
		pool.Put(b)
	}
}

// release takes ownership of b and returns it to the pool.
//
//pcaplint:owner-transfer
func release(b *buf) {
	pool.Put(b)
}

// Transfer is a true negative: handing the value to an owner-transfer
// function satisfies the Put obligation.
func Transfer() {
	b := pool.Get().(*buf)
	use(b)
	release(b)
}

// getBuf is a true negative: an annotated accessor may hand the pooled
// value to its caller.
//
//pcaplint:owner-transfer
func getBuf() *buf {
	if b, ok := pool.Get().(*buf); ok {
		return b
	}
	return &buf{}
}

// Reuse keeps the corpus honest about the accessor being used.
func Reuse() {
	b := getBuf()
	use(b)
	release(b)
}

// Suppressed documents a consumption path the structural analysis
// cannot follow and silences the analyzer with a reason.
func Suppressed() {
	b := pool.Get().(*buf) //pcaplint:ignore poolsafe stash registers the value with a finalizer that Puts it
	stash(b)
}

// Package errchecktest is the errcheck-lite analyzer's corpus. The
// corpus is type-checked as if it were one of the covered packages
// (internal/trace, internal/persist, cmd/*).
package errchecktest

import (
	"fmt"
	"os"
	"strings"
)

type enc struct{}

func (e *enc) Close() error { return nil }

func (e *enc) Flush() error { return nil }

func (e *enc) Write(p []byte) (int, error) { return len(p), nil }

func work() (int, error) { return 0, nil }

// Drops is a true positive three ways: a bare statement call, a
// deferred Close, and a constructed-then-discarded error.
func Drops(e *enc) {
	e.Flush()             // want "error returned by e.Flush is dropped"
	defer e.Close()       // want "error returned by deferred e.Close is dropped"
	fmt.Errorf("ignored") // want "error returned by fmt.Errorf is dropped"
}

// DropsWrite is a true positive: a dropped Write error loses data
// silently.
func DropsWrite(e *enc, p []byte) {
	e.Write(p) // want "error returned by e.Write is dropped"
}

// DropsFprintf is a true positive: writing to an arbitrary writer (not
// stdout/stderr) can fail meaningfully.
func DropsFprintf(f *os.File) {
	fmt.Fprintf(f, "header\n") // want "error returned by fmt.Fprintf is dropped"
}

// Checks is a true negative for every accepted pattern: checked errors,
// explicit blank assignment, stdout/stderr printers, and never-failing
// strings.Builder writes.
func Checks(e *enc) error {
	if err := e.Close(); err != nil {
		return err
	}
	n, err := work()
	if err != nil || n < 0 {
		return err
	}
	_ = e.Flush() // explicit, visible discard
	fmt.Println("done")
	fmt.Fprintln(os.Stderr, "done")
	var sb strings.Builder
	sb.WriteString("ok")
	return nil
}

// SuppressedClose carries a suppressed finding with its mandatory
// reason.
func SuppressedClose(e *enc) {
	defer e.Close() //pcaplint:ignore errcheck-lite read path; a close failure cannot lose data
}

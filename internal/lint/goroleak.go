package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every goroutine spawned in a result-affecting
// package to carry a visible join or cancellation discipline. The
// simulator's parallel sections (trace decode workers, experiment
// pools, fleet shards, server workers) all follow one of a small set of
// shapes; a goroutine following none of them is either leaked — alive
// past the work it was spawned for, holding its captures — or joined
// through a side channel the reader cannot audit.
//
// Accepted disciplines, checked over the goroutine's body (a function
// literal, or the declaration body of a same-package callee):
//
//   - wg.Done() — directly or deferred — on a WaitGroup-rooted object
//     that some function in the package calls Wait() on;
//   - a select statement (quit-channel and context-driven workers);
//   - ranging over a channel (producer-consumer workers end at close);
//   - a ctx.Done()/ctx.Err() probe;
//   - receiving from any channel (quit/tick signals);
//   - a completion channel: the body sends on or closes a channel local
//     to the spawning function, which the spawner receives from.
//
// A go statement whose callee cannot be resolved to a body in this
// package (a func-typed value, an external function) is flagged: its
// discipline, if any, is invisible at the spawn site. Approximation
// notes live in DESIGN.md §17.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutine with no visible join or cancellation discipline",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	if !resultAffecting(pass.Pkg.RelPath) {
		return
	}
	decls := packageFuncDecls(pass.Pkg)
	waited := waitedObjects(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs, enclosingFuncBody(stack[:len(stack)-1]), decls, waited)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, gs *ast.GoStmt, spawner *ast.BlockStmt, decls map[types.Object]*ast.FuncDecl, waited map[types.Object]bool) {
	info := pass.Pkg.Info
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := calleeFunc(info, gs.Call); fn != nil {
		if fd := decls[fn]; fd != nil {
			body = fd.Body
		}
	}
	if body == nil {
		pass.Reportf(gs.Pos(), "goroutine body is not visible here (func value or external callee); spawn a literal or same-package worker so its join/cancel discipline can be checked (DESIGN.md §17)")
		return
	}
	if goroutineDisciplined(info, body, spawner, gs, waited) {
		return
	}
	pass.Reportf(gs.Pos(), "goroutine has no visible join or cancellation discipline (WaitGroup.Done with a package-visible Wait, select, channel receive/range, ctx probe, or completion channel); DESIGN.md §17")
}

// goroutineDisciplined scans the goroutine body for any accepted
// discipline.
func goroutineDisciplined(info *types.Info, body *ast.BlockStmt, spawner *ast.BlockStmt, gs *ast.GoStmt, waited map[types.Object]bool) bool {
	ok := false
	var completionChans []types.Object
	shallowInspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch m := n.(type) {
		case *ast.SelectStmt:
			ok = true
		case *ast.UnaryExpr:
			// Any receive: quit channels, tick channels, ctx.Done().
			if m.Op == token.ARROW {
				ok = true
			}
		case *ast.RangeStmt:
			if tv, found := info.Types[m.X]; found {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ok = true
				}
			}
		case *ast.CallExpr:
			if isCtxProbe(info, m) {
				ok = true
				return false
			}
			if sel, isSel := ast.Unparen(m.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Done" {
				if obj := rootObject(info, sel.X); obj != nil && waited[obj] {
					ok = true
					return false
				}
			}
			// close(ch) on a spawner-local channel may be a completion
			// signal; collect and check against the spawner below.
			if id, isIdent := ast.Unparen(m.Fun).(*ast.Ident); isIdent {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" && len(m.Args) == 1 {
					if obj := rootObject(info, m.Args[0]); obj != nil {
						completionChans = append(completionChans, obj)
					}
				}
			}
		case *ast.SendStmt:
			if obj := rootObject(info, m.Chan); obj != nil {
				completionChans = append(completionChans, obj)
			}
		}
		return !ok
	})
	if ok {
		return true
	}
	// Completion-channel shape: the spawner receives from a channel the
	// goroutine signals on.
	if spawner == nil {
		return false
	}
	for _, ch := range completionChans {
		if spawnerReceivesFrom(info, spawner, gs, ch) {
			return true
		}
	}
	return false
}

// spawnerReceivesFrom reports whether the spawning function, outside the
// go statement itself, receives from or ranges over the channel object.
func spawnerReceivesFrom(info *types.Info, spawner *ast.BlockStmt, gs *ast.GoStmt, ch types.Object) bool {
	found := false
	ast.Inspect(spawner, func(n ast.Node) bool {
		if found || n == gs {
			return false
		}
		switch m := n.(type) {
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && rootObject(info, m.X) == ch {
				found = true
			}
		case *ast.RangeStmt:
			if rootObject(info, m.X) == ch {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootObject resolves an expression to the variable or field object it
// names: `wg` to the local, `s.wg` to the field.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// waitedObjects collects every object the package calls Wait() on.
// Done() in a goroutine only counts as a join when someone visibly
// waits.
func waitedObjects(pkg *Package) map[types.Object]bool {
	waited := make(map[types.Object]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Wait" {
				return true
			}
			if obj := rootObject(pkg.Info, sel.X); obj != nil {
				waited[obj] = true
			}
			return true
		})
	}
	return waited
}

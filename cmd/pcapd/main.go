// Command pcapd serves the simulator over HTTP: policy evaluation,
// trace replay and fleet jobs as JSON, on a bounded worker pool with
// pooled job contexts and coalesced live counters (internal/server).
//
// Usage:
//
//	pcapd -addr :8080 -workers 4 -traces ./traces
//	pcapd -addr 127.0.0.1:0 -addrfile pcapd.addr   # scripts read the bound address
//
// Endpoints:
//
//	POST /jobs            submit a job spec; ?wait=1 blocks until it finishes
//	GET  /jobs/{id}       poll a job
//	GET  /jobs/{id}/events  follow a job as Server-Sent Events
//	POST /jobs/{id}/cancel  cancel a job
//	POST /traces          upload a trace file, returns a reference ID
//	GET  /stats           live counters (jobs, events, energy) + pool state
//	GET  /healthz         liveness probe
//
// A job's output is byte-identical to the equivalent pcapsim run: the
// daemon calls the same library entry points over the same sources.
// SIGINT/SIGTERM drain gracefully — new submissions are rejected, the
// backlog finishes (bounded by -drain), then running jobs are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pcapsim/internal/server"
)

func main() {
	var (
		addrFlag     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFileFlag = flag.String("addrfile", "", "write the bound listen address to this file (for scripts using port 0)")
		workersFlag  = flag.Int("workers", 0, "job worker pool size (0 = one per CPU)")
		queueFlag    = flag.Int("queue", 64, "maximum queued jobs before submissions get 503")
		timeoutFlag  = flag.Duration("timeout", 5*time.Minute, "default per-job timeout (a spec's timeout_sec overrides)")
		tracesFlag   = flag.String("traces", "", "directory job specs may reference trace files from (empty = uploads only)")
		drainFlag    = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace before running jobs are canceled")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		Workers:        *workersFlag,
		QueueDepth:     *queueFlag,
		DefaultTimeout: *timeoutFlag,
		TraceDir:       *tracesFlag,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFileFlag != "" {
		if err := os.WriteFile(*addrFileFlag, []byte(bound+"\n"), 0o644); err != nil {
			fatal(fmt.Errorf("-addrfile: %w", err))
		}
	}
	fmt.Fprintf(os.Stderr, "pcapd: listening on %s (workers=%d queue=%d)\n", bound, srv.Config().Workers, *queueFlag)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "pcapd: %s, draining (up to %s)\n", s, *drainFlag)
	case err := <-serveErr:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pcapd: http shutdown:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pcapd: job pool shutdown:", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "pcapd: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcapd:", err)
	os.Exit(1)
}

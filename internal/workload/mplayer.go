package workload

// Mplayer: the media player. It fills an 8 MB buffer at startup, then
// keeps it full with periodic refill reads until the movie's file is
// exhausted; the movie finishes playing from the buffer, giving one long
// drain idle period at the end, closed out by the exit-time config write.
// Users occasionally pause at a chapter. Refill gaps sit *below* the
// predictors' wait-window, so mid-movie I/O is filtered noise — what
// PCAP must learn is the (kind-specific, fixed-length) cumulative PC path
// of a whole movie.
//
// The user watches clips from a small fixed library (the movie catalog),
// which is what bounds PCAP's table (Table 3: 24 entries) the same way
// real users re-watch content of a few characteristic lengths.

// Mplayer I/O call sites.
const (
	mplPCLibOpen  = 0x41f1950c
	mplPCCodecRd  = 0x459f63b4
	mplPCMovOpen  = 0x082666f8
	mplPCFill     = 0x08081bf4
	mplPCRefill   = 0x081e5c50
	mplPCSubRead  = 0x4951fd48 // subtitle/audio demux helper
	mplPCSubBulk  = 0x49b0814c
	mplPCConfOpen = 0x08267b60
	mplPCConfWr   = 0x08145c08
)

// movieKind is one clip in the library.
type movieKind struct {
	// refills is the fixed number of refill bursts (movie length).
	refills int
	// chapters are refill indices where a pause can happen.
	chapters []int
	// subtitled movies make the demux helper read periodically.
	subtitled bool
}

// movieCatalog is the fixed clip library, identical across executions.
var movieCatalog = []movieKind{
	{refills: 240, chapters: []int{90, 170}, subtitled: false},
	{refills: 330, chapters: []int{120, 230}, subtitled: true},
	{refills: 420, chapters: []int{150, 300}, subtitled: false},
	{refills: 520, chapters: []int{180, 360}, subtitled: true},
	{refills: 600, chapters: []int{220, 430}, subtitled: false},
	{refills: 180, chapters: []int{80}, subtitled: true},
}

func init() {
	register(&App{
		Name:       "mplayer",
		Executions: 31,
		Describe: "Media player: buffer fill, sub-wait-window refill reads, chapter " +
			"pauses, one long buffer-drain idle at the movie's end.",
		generate: genMplayer,
	})
}

func genMplayer(b *B) {
	root := b.Root()
	intraLo, intraHi := 0.002, 0.006

	// Launch: codec and config loads.
	b.AdvanceRange(0.05, 0.2)
	b.Path(root, 3, []Site{O(mplPCLibOpen), R(mplPCCodecRd)}, intraLo, intraHi)
	b.Advance(b.R.Range(intraLo, intraHi))
	b.Burst(root, R(mplPCCodecRd), 3, 180, intraLo, intraHi)

	// The demux helper handles audio/subtitles.
	b.AdvanceRange(0.02, 0.08)
	helper := b.Fork(root)
	b.AdvanceRange(0.02, 0.06)
	b.Burst(helper, R(mplPCSubBulk), 3, 30, intraLo, intraHi)

	// Sometimes the user browses before pressing play: a long idle right
	// after startup.
	if b.R.Bool(0.3) {
		b.Advance(b.R.Range(8, 45))
	} else {
		b.AdvanceRange(0.2, 0.9)
	}

	movie := &movieCatalog[b.R.Intn(len(movieCatalog))]

	// Open the movie and fill the 8 MB buffer (2048 4 KB blocks).
	b.Path(root, 4, []Site{O(mplPCMovOpen), R(mplPCFill)}, intraLo, intraHi)
	b.Advance(b.R.Range(intraLo, intraHi))
	b.Burst(root, R(mplPCFill), 4, 2000, intraLo, intraHi)

	// Decide the pause (at most one per viewing).
	pauseAt := -1
	if b.R.Bool(0.38) {
		pauseAt = movie.chapters[b.R.Intn(len(movie.chapters))]
	}

	// Playback: refill bursts every ~0.7 s — below the wait-window, so
	// they are filtered by every dynamic predictor.
	for i := 0; i < movie.refills; i++ {
		b.Advance(b.R.Range(0.55, 0.85))
		b.Burst(root, R(mplPCRefill), 4, 36, intraLo, intraHi)
		if movie.subtitled && i%70 == 35 {
			b.AdvanceRange(0.01, 0.03)
			b.Burst(helper, R(mplPCSubRead), 5, 4, intraLo, intraHi)
		}
		if i == pauseAt {
			// Chapter pause: a long idle period mid-movie.
			b.Advance(b.R.Range(7, 90))
		}
	}

	// The movie plays out of the buffer: the drain idle, ended by the
	// exit-time config write-out.
	b.Advance(b.R.Range(25, 70))
	b.Path(root, 6, []Site{O(mplPCConfOpen), W(mplPCConfWr)}, intraLo, intraHi)
	b.AdvanceRange(0.03, 0.1)
	b.Exit(helper)
	b.AdvanceRange(0.02, 0.08)
	b.Exit(root)
}

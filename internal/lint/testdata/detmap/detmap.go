// Package detmaptest is the detmap analyzer's corpus: each `want`
// comment marks an expected finding on its line (see corpus_test.go).
// The corpus is type-checked as if it were a result-affecting package.
package detmaptest

import "sort"

// SumFloats is a true positive: float accumulation depends on visit
// order through rounding.
func SumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "order-sensitive"
		total += v
	}
	return total
}

// FirstKey is a true positive: an early exit returns whichever key the
// randomized iteration happens to visit first.
func FirstKey(m map[string]int) (string, bool) {
	for k := range m { // want "order-sensitive"
		return k, true
	}
	return "", false
}

// KeysUnsorted is a true positive: the collected keys are never sorted,
// so callers see them in randomized order.
func KeysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "not sorted afterwards"
		out = append(out, k)
	}
	return out
}

// AppendValues is a true positive: values are collected into a slice in
// iteration order and handed out unsorted.
func AppendValues(m map[string]int, out []int) []int {
	for _, v := range m { // want "not sorted afterwards"
		out = append(out, v)
	}
	return out
}

// Invert is a true negative: the body only writes map elements, and map
// contents do not depend on insertion order.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// CountLarge is a true negative: integer accumulation is exact and
// commutative.
func CountLarge(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 10 {
			n++
		}
	}
	return n
}

// Keys is a true negative: the canonical collect-then-sort pattern.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Recycle carries a suppressed finding: the free-list order is
// unobservable, which the analysis cannot prove, so the loop documents
// why and silences the analyzer.
func Recycle(m map[string]*int, free []*int) []*int {
	//pcaplint:ignore detmap free-list order is unobservable; entries are fully reset before reuse
	for _, p := range m {
		free = append(free, p)
	}
	return free
}

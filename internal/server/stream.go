package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Streamed progress: GET /jobs/{id}/events serves the job's lifecycle as
// Server-Sent Events. Each observable change (state transition, finished
// policy run) emits one "progress" event whose data is the job's View;
// the final event is named after the terminal state and carries the full
// view including Output. The stream is change-driven — watchers park on
// the job's change channel, no polling — so an idle job costs nothing.

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if _, ok := w.(http.Flusher); !ok {
		httpError(w, http.StatusNotImplemented, "response writer cannot stream")
		return
	}
	// Flush through the controller, not the bare Flusher: its Flush
	// returns the transport error a dead client produces, where
	// http.Flusher.Flush would swallow it and leave this loop parked on
	// the change channel for one more (pointless) event.
	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	for {
		// Snapshot after grabbing the change channel: changes landing
		// between the two are covered by the snapshot and re-delivered
		// (harmlessly) by the already-closed channel.
		_, changed := job.watch()
		v := job.view()
		terminal := v.State == StateDone || v.State == StateFailed || v.State == StateCanceled
		name := "progress"
		if terminal {
			name = v.State
		}
		if err := writeEvent(w, name, v); err != nil {
			return // client went away
		}
		if err := rc.Flush(); err != nil {
			return // client went away mid-flush
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame.
func writeEvent(w http.ResponseWriter, name string, v View) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
	return err
}

package lint

import (
	"go/ast"
	"go/types"
)

// NondetSource forbids reading nondeterministic inputs — wall clock,
// globally-seeded randomness, the process environment — and formatting
// raw maps with fmt inside result-affecting packages. The reproduction's
// contract is that a (seed, configuration) pair fully determines every
// byte of output; any of these sources smuggles hidden state into a
// result. Only internal/rng (the sanctioned seeded-randomness seam) and
// cmd/* (progress output, environment-driven flags) may touch them.
//
// Seeded constructors (rand.New, rand.NewSource, rand.NewZipf, ...) are
// allowed: determinism comes from the caller-supplied seed. Methods on a
// *rand.Rand value are likewise fine.
var NondetSource = &Analyzer{
	Name: "nondet-source",
	Doc:  "wall-clock, global math/rand, os env, or fmt-on-a-map in a result-affecting package",
	Run:  runNondetSource,
}

// randConstructors are the math/rand (and /v2) package-level functions
// that merely build seeded generators.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// fmtFormatters are the fmt functions whose arguments end up rendered;
// passing a map to one bakes fmt's rendering into results.
var fmtFormatters = map[string]bool{
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

func runNondetSource(pass *Pass) {
	if !resultAffecting(pass.Pkg.RelPath) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkgPath, name := fn.Pkg().Path(), fn.Name()
			isMethod := fn.Type().(*types.Signature).Recv() != nil
			switch {
			case pkgPath == "time" && !isMethod && (name == "Now" || name == "Since" || name == "Until"):
				pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulated time must come from the trace", name)
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !isMethod && !randConstructors[name]:
				pass.Reportf(call.Pos(), "global %s.%s uses process-global random state; draw from a seeded *rand.Rand (see internal/rng)", fn.Pkg().Name(), name)
			case pkgPath == "os" && !isMethod && (name == "Getenv" || name == "LookupEnv" || name == "Environ"):
				pass.Reportf(call.Pos(), "os.%s makes results depend on the environment; thread configuration through explicit parameters", name)
			case pkgPath == "fmt" && !isMethod && fmtFormatters[name]:
				for _, arg := range call.Args {
					tv, ok := info.Types[arg]
					if !ok || tv.Type == nil {
						continue
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(arg.Pos(), "formatting map %s with fmt.%s bakes fmt's map rendering into output; render entries explicitly from sorted keys", types.ExprString(arg), name)
					}
				}
			}
			return true
		})
	}
}

// calleeFunc resolves a call's static callee, or nil for builtins,
// conversions, and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

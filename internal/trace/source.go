package trace

import "fmt"

// Pull-based event streaming.
//
// A Source is the streaming counterpart of a []*Trace workload: it yields
// the events of one or more executions in time order, one event per pull,
// so consumers (the simulator, the inspection tools, the codec) never need
// the whole workload — or even a whole execution — resident in memory.
// Sources are single-goroutine iterators: share the factory (an App, a
// TraceCache), never a Source value.

// Source is a pull-based iterator over the events of a workload: a
// sequence of executions, each an event stream in non-decreasing time
// order.
//
// The protocol is two-level. NextExec advances to the next execution and
// returns its identity; Next then yields that execution's events until it
// returns ok=false. Calling NextExec before the current execution is
// drained discards its remaining events. After any ok=false, Err reports
// whether the stream ended or failed.
type Source interface {
	// NextExec advances to the next execution, returning the application
	// name and execution index. ok=false means the workload is exhausted
	// or the source failed (see Err).
	NextExec() (app string, exec int, ok bool)
	// Next returns the next event of the current execution. ok=false
	// means the execution is drained or the source failed (see Err).
	Next() (Event, bool)
	// Err returns the first error the source encountered, or nil.
	Err() error
	// Reset rewinds the source to the beginning of the workload. Sources
	// over non-seekable inputs return an error.
	Reset() error
}

// ExecSlicer is implemented by sources whose current execution is already
// materialized (SliceSource, the workload generator's per-execution
// buffer). ExecEvents returns the remaining events of the current
// execution as a single shared slice and exhausts the execution; callers
// must treat the slice as read-only and must not retain it past the next
// NextExec. The simulator uses it to skip re-buffering events that are
// already in memory.
type ExecSlicer interface {
	ExecEvents() []Event
}

// ExecAppender is the batch counterpart of ExecSlicer for sources that
// decode into reusable internal state rather than holding a lendable
// slice (BlockSource over its pooled frame). AppendExec appends the
// remaining events of the current execution to buf and exhausts the
// execution; the returned slice is caller-owned. Drain prefers it over
// the event-at-a-time Next loop.
type ExecAppender interface {
	AppendExec(buf []Event) []Event
}

// SliceSource adapts materialized traces to the Source interface — the
// back-compatibility bridge between []*Trace workloads and streaming
// consumers. The traces are shared read-only, never copied.
type SliceSource struct {
	traces []*Trace
	cur    int // index of the current execution; -1 before the first NextExec
	pos    int // next event within the current execution
}

// NewSliceSource returns a Source over the given traces, in order.
func NewSliceSource(traces ...*Trace) *SliceSource {
	return &SliceSource{traces: traces, cur: -1}
}

// NextExec implements Source.
func (s *SliceSource) NextExec() (string, int, bool) {
	if s.cur+1 >= len(s.traces) {
		s.cur = len(s.traces)
		return "", 0, false
	}
	s.cur++
	s.pos = 0
	t := s.traces[s.cur]
	return t.App, t.Execution, true
}

// Next implements Source.
func (s *SliceSource) Next() (Event, bool) {
	if s.cur < 0 || s.cur >= len(s.traces) || s.pos >= len(s.traces[s.cur].Events) {
		return Event{}, false
	}
	e := s.traces[s.cur].Events[s.pos]
	s.pos++
	return e, true
}

// ExecEvents implements ExecSlicer.
func (s *SliceSource) ExecEvents() []Event {
	if s.cur < 0 || s.cur >= len(s.traces) {
		return nil
	}
	events := s.traces[s.cur].Events[s.pos:]
	s.pos = len(s.traces[s.cur].Events)
	return events
}

// Err implements Source.
func (s *SliceSource) Err() error { return nil }

// Reset implements Source.
func (s *SliceSource) Reset() error {
	s.cur = -1
	s.pos = 0
	return nil
}

// Drain consumes the remaining events of src's current execution into buf
// (reusing its capacity) and returns the filled slice. Sources that
// already hold the execution in memory (ExecSlicer) are returned as-is,
// without copying.
func Drain(src Source, buf []Event) []Event {
	if es, ok := src.(ExecSlicer); ok {
		return es.ExecEvents()
	}
	if ea, ok := src.(ExecAppender); ok {
		return ea.AppendExec(buf[:0])
	}
	buf = buf[:0]
	for {
		e, ok := src.Next()
		if !ok {
			return buf
		}
		buf = append(buf, e)
	}
}

// Collect materializes every remaining execution of src as traces —
// the inverse of NewSliceSource, for tests and tools that need slices.
func Collect(src Source) ([]*Trace, error) {
	var out []*Trace
	for {
		app, exec, ok := src.NextExec()
		if !ok {
			break
		}
		t := &Trace{App: app, Execution: exec}
		for {
			e, ok := src.Next()
			if !ok {
				break
			}
			t.Events = append(t.Events, e)
		}
		out = append(out, t)
	}
	return out, src.Err()
}

// mergeSource time-merges several sources execution by execution.
type mergeSource struct {
	srcs []Source
	head []Event // current head event per input
	ok   []bool  // head validity per input
	err  error
}

// MergeSources merges several sources into one: execution k of the output
// is the time-ordered merge of execution k of every input, with ties
// broken by input order (matching Merge over slices). The inputs must
// yield the same number of executions; the merged execution takes its
// app name and index from the first input.
func MergeSources(srcs ...Source) Source {
	return &mergeSource{
		srcs: srcs,
		head: make([]Event, len(srcs)),
		ok:   make([]bool, len(srcs)),
	}
}

func (m *mergeSource) NextExec() (string, int, bool) {
	if m.err != nil || len(m.srcs) == 0 {
		return "", 0, false
	}
	app, exec := "", 0
	advanced := 0
	for i, s := range m.srcs {
		a, x, ok := s.NextExec()
		if ok {
			advanced++
			if i == 0 {
				app, exec = a, x
			}
			m.head[i], m.ok[i] = s.Next()
		} else {
			m.ok[i] = false
			if err := s.Err(); err != nil && m.err == nil {
				m.err = err
			}
		}
	}
	if advanced == 0 {
		return "", 0, false
	}
	if advanced < len(m.srcs) && m.err == nil {
		m.err = fmt.Errorf("trace: merge inputs yield different execution counts")
		return "", 0, false
	}
	return app, exec, m.err == nil
}

func (m *mergeSource) Next() (Event, bool) {
	if m.err != nil {
		return Event{}, false
	}
	best := -1
	for i := range m.srcs {
		if !m.ok[i] {
			continue
		}
		if best == -1 || m.head[i].Time < m.head[best].Time {
			best = i
		}
	}
	if best == -1 {
		return Event{}, false
	}
	e := m.head[best]
	m.head[best], m.ok[best] = m.srcs[best].Next()
	return e, true
}

func (m *mergeSource) Err() error {
	if m.err != nil {
		return m.err
	}
	for _, s := range m.srcs {
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (m *mergeSource) Reset() error {
	for _, s := range m.srcs {
		if err := s.Reset(); err != nil {
			return err
		}
	}
	m.err = nil
	for i := range m.ok {
		m.ok[i] = false
	}
	return nil
}

// limitSource caps each execution at n events.
type limitSource struct {
	src  Source
	n    int
	left int
}

// Limit returns a source yielding at most n events per execution of src
// (the head of each execution — traceinspect's -head over a stream).
func Limit(src Source, n int) Source {
	if n < 0 {
		n = 0
	}
	return &limitSource{src: src, n: n}
}

func (l *limitSource) NextExec() (string, int, bool) {
	l.left = l.n
	return l.src.NextExec()
}

func (l *limitSource) Next() (Event, bool) {
	if l.left <= 0 {
		return Event{}, false
	}
	l.left--
	return l.src.Next()
}

func (l *limitSource) Err() error { return l.src.Err() }

func (l *limitSource) Reset() error {
	l.left = 0
	return l.src.Reset()
}

// limitExecsSource caps the workload at its first n executions.
type limitExecsSource struct {
	src  Source
	n    int
	seen int
}

// LimitExecs returns a source yielding only the first n executions of
// src — the workload-level counterpart of Limit, used to carve bounded
// jobs out of large workloads (pcapd's per-job execution cap). Events
// within the surviving executions pass through unchanged, including the
// inner source's batch paths.
func LimitExecs(src Source, n int) Source {
	if n < 0 {
		n = 0
	}
	return &limitExecsSource{src: src, n: n}
}

func (l *limitExecsSource) NextExec() (string, int, bool) {
	if l.seen >= l.n {
		return "", 0, false
	}
	app, exec, ok := l.src.NextExec()
	if ok {
		l.seen++
	}
	return app, exec, ok
}

func (l *limitExecsSource) Next() (Event, bool) { return l.src.Next() }

// AppendExec implements ExecAppender so the wrapper does not demote the
// inner source's batch decode path to event-at-a-time pulls.
func (l *limitExecsSource) AppendExec(buf []Event) []Event {
	if es, ok := l.src.(ExecSlicer); ok {
		return append(buf, es.ExecEvents()...)
	}
	if ea, ok := l.src.(ExecAppender); ok {
		return ea.AppendExec(buf)
	}
	for {
		e, ok := l.src.Next()
		if !ok {
			return buf
		}
		buf = append(buf, e)
	}
}

func (l *limitExecsSource) Err() error { return l.src.Err() }

func (l *limitExecsSource) Reset() error {
	l.seen = 0
	return l.src.Reset()
}

// scaleSource repeats a workload n times.
type scaleSource struct {
	src  Source
	n    int   // total passes
	pass int   // current pass, 0-based
	exec int   // next output execution index
	err  error // sticky local error (failed Reset between passes)
}

// Scale returns a source that yields the executions of src n times over —
// an N×-repeated workload for stress and scaling runs. Execution indices
// are renumbered sequentially from 0 across the passes. Repetition r
// warps every timestamp by the deterministic stretch t → t + (t/1024)·r,
// modelling run-to-run timing drift: repeated sessions keep their I/O
// structure (PC paths, burst shapes) but never replay microsecond-
// identical think times. Pass 0 is the identity, and Scale(src, 1)
// returns src itself, so a 1× scaled workload is byte-for-byte the
// original. src must support Reset for n > 1.
func Scale(src Source, n int) Source {
	if n <= 1 {
		return src
	}
	return &scaleSource{src: src, n: n}
}

// warpTime applies pass r's timestamp stretch. Integer arithmetic keeps
// the warp deterministic and (weakly) monotone, preserving non-decreasing
// event order within an execution.
func warpTime(t Time, r int) Time {
	if t < 0 {
		return t
	}
	return t + (t/1024)*Time(r)
}

// WarpTime is pass r's deterministic timestamp stretch, t → t +
// (t/1024)·r — the drift model Scale applies between repetitions,
// exported so other repeat-replay layers (fleet trace replay) warp
// identically.
func WarpTime(t Time, r int) Time { return warpTime(t, r) }

func (s *scaleSource) NextExec() (string, int, bool) {
	if s.err != nil {
		return "", 0, false
	}
	for {
		app, _, ok := s.src.NextExec()
		if ok {
			exec := s.exec
			s.exec++
			return app, exec, true
		}
		if err := s.src.Err(); err != nil {
			return "", 0, false
		}
		if s.pass+1 >= s.n {
			return "", 0, false
		}
		if err := s.src.Reset(); err != nil {
			s.err = fmt.Errorf("trace: scale pass %d: %w", s.pass+1, err)
			return "", 0, false
		}
		s.pass++
	}
}

func (s *scaleSource) Next() (Event, bool) {
	e, ok := s.src.Next()
	if !ok {
		return Event{}, false
	}
	e.Time = warpTime(e.Time, s.pass)
	return e, true
}

func (s *scaleSource) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.src.Err()
}

func (s *scaleSource) Reset() error {
	if err := s.src.Reset(); err != nil {
		return err
	}
	s.pass = 0
	s.exec = 0
	s.err = nil
	return nil
}

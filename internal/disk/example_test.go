package disk_test

import (
	"fmt"

	"pcapsim/internal/disk"
	"pcapsim/internal/trace"
)

// Example shows the breakeven arithmetic on the paper's drive: a 4-second
// idle period loses energy when the disk is shut down, a 60-second one
// saves it.
func Example() {
	d := disk.FujitsuMHF2043AT()
	fmt.Printf("cycle energy: %.2f J\n", d.CycleEnergy())
	fmt.Printf("4 s off: %+.2f J\n", d.ShutdownSavings(trace.FromSeconds(4)))
	fmt.Printf("60 s off: %+.2f J\n", d.ShutdownSavings(trace.FromSeconds(60)))
	// Output:
	// cycle energy: 4.76 J
	// 4 s off: -1.18 J
	// 60 s off: +44.74 J
}

// ExampleMachine drives the state machine through a shutdown and wake-up.
func ExampleMachine() {
	m, _ := disk.NewMachine(disk.FujitsuMHF2043AT())
	m.Shutdown(10 * trace.Second)
	fmt.Println("state:", m.State())
	done, _ := m.ServeIO(60*trace.Second, 100*trace.Millisecond)
	fmt.Println("served at:", done.Duration()) // delayed by the 1.6 s spin-up
	fmt.Println("cycles:", m.Cycles())
	// Output:
	// state: shutting-down
	// served at: 1m1.7s
	// cycles: 1
}

package fscache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pcapsim/internal/trace"
)

func newTestCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ioEvent(at trace.Time, pid trace.PID, acc trace.Access, block int64, size int32) trace.Event {
	return trace.Event{
		Time: at, Pid: pid, Kind: trace.KindIO,
		Access: acc, PC: 0x1000, FD: 3, Block: block, Size: size,
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Blocks() != 64 {
		t.Errorf("256 KB / 4 KB should be 64 blocks, got %d", cfg.Blocks())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 1024, BlockSize: 0, FlushInterval: trace.Second, WakeInterval: trace.Second},
		{SizeBytes: 100, BlockSize: 4096, FlushInterval: trace.Second, WakeInterval: trace.Second},
		{SizeBytes: 8192, BlockSize: 4096, FlushInterval: 0, WakeInterval: trace.Second},
		{SizeBytes: 8192, BlockSize: 4096, FlushInterval: trace.Second, WakeInterval: 0},
		// A size that is not a whole number of blocks must be rejected, not
		// silently truncated by Blocks().
		{SizeBytes: 10000, BlockSize: 4096, FlushInterval: trace.Second, WakeInterval: trace.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestConfigRejectsPartialBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SizeBytes += 1 // 256 KB + 1 byte: not a multiple of 4 KB
	if err := cfg.Validate(); err == nil {
		t.Fatal("non-multiple SizeBytes accepted")
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a non-multiple SizeBytes")
	}
	// Exact multiples of any block size pass and divide exactly.
	cfg.SizeBytes = 7 * cfg.BlockSize
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Blocks() != 7 {
		t.Errorf("Blocks() = %d, want 7", cfg.Blocks())
	}
}

func TestReadMissThenHit(t *testing.T) {
	c := newTestCache(t)
	out, err := c.Apply(ioEvent(0, 1, trace.AccessRead, 10, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("cold read produced %d accesses", len(out))
	}
	out, err = c.Apply(ioEvent(1000, 1, trace.AccessRead, 10, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("warm read produced %d accesses", len(out))
	}
	st := c.Stats()
	if st.Reads != 2 || st.ReadHits != 1 || st.DiskReads != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestMultiBlockReadSpans(t *testing.T) {
	c := newTestCache(t)
	out, err := c.Apply(ioEvent(0, 1, trace.AccessRead, 100, 3*4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("3-block read produced %d accesses", len(out))
	}
	for i, e := range out {
		if e.Block != 100+int64(i) {
			t.Errorf("access %d block %d", i, e.Block)
		}
	}
}

func TestWriteIsAbsorbed(t *testing.T) {
	c := newTestCache(t)
	out, err := c.Apply(ioEvent(0, 1, trace.AccessWrite, 5, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("write-back cache emitted %d accesses for a write", len(out))
	}
	if c.DirtyLen() != 1 {
		t.Errorf("dirty blocks = %d", c.DirtyLen())
	}
}

func TestLRUEvictionWritesBackDirty(t *testing.T) {
	c := newTestCache(t)
	// Dirty one block, then stream reads through the whole cache.
	if _, err := c.Apply(ioEvent(0, 7, trace.AccessWrite, 999, 4096)); err != nil {
		t.Fatal(err)
	}
	var wb []trace.Event
	for i := 0; i < 64; i++ {
		out, err := c.Apply(ioEvent(trace.Time(i+1), 1, trace.AccessRead, int64(i), 4096))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range out {
			if e.Access == trace.AccessWrite {
				wb = append(wb, e)
			}
		}
	}
	if len(wb) != 1 {
		t.Fatalf("expected exactly one write-back, got %d", len(wb))
	}
	if wb[0].Block != 999 || wb[0].PC != KernelFlushPC || wb[0].Pid != KernelFlushPID {
		t.Errorf("write-back event %+v", wb[0])
	}
	if c.Stats().EvictionWrites != 1 {
		t.Errorf("eviction writes = %d", c.Stats().EvictionWrites)
	}
	if c.Len() != 64 {
		t.Errorf("cache holds %d blocks, want 64", c.Len())
	}
}

func TestFlushDaemonAgesDirtyBlocks(t *testing.T) {
	c := newTestCache(t)
	if _, err := c.Apply(ioEvent(trace.Second, 4, trace.AccessWrite, 50, 4096)); err != nil {
		t.Fatal(err)
	}
	// Before the age threshold nothing flushes.
	if out := c.Advance(29 * trace.Second); len(out) != 0 {
		t.Fatalf("premature flush: %d events", len(out))
	}
	// The first wake at or after dirtied+30s writes the block. Wakes land
	// on the 5 s grid, so the flush occurs at t=35 s.
	out := c.Advance(60 * trace.Second)
	if len(out) != 1 {
		t.Fatalf("flush events = %d", len(out))
	}
	e := out[0]
	if e.Time != 35*trace.Second {
		t.Errorf("flush at %v, want 35 s", e.Time)
	}
	if e.Pid != KernelFlushPID || e.PC != KernelFlushPC || e.Access != trace.AccessWrite || e.Block != 50 {
		t.Errorf("flush event %+v", e)
	}
	if c.Stats().FlushWrites != 1 {
		t.Errorf("flush writes = %d", c.Stats().FlushWrites)
	}
	// Once flushed, the block is clean: no further flushes.
	if out := c.Advance(120 * trace.Second); len(out) != 0 {
		t.Fatalf("re-flush of clean block: %d events", len(out))
	}
}

func TestRedirtyResetsNothing(t *testing.T) {
	// Re-dirtying an already-dirty block keeps the original age (the
	// paper's 30-second timer flushes data that has been dirty that long).
	c := newTestCache(t)
	if _, err := c.Apply(ioEvent(0, 1, trace.AccessWrite, 9, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(ioEvent(25*trace.Second, 1, trace.AccessWrite, 9, 4096)); err != nil {
		t.Fatal(err)
	}
	out := c.Advance(40 * trace.Second)
	if len(out) != 1 || out[0].Time != 30*trace.Second {
		t.Fatalf("flush events %v", out)
	}
}

func TestOpenIsMetadataRead(t *testing.T) {
	c := newTestCache(t)
	out, err := c.Apply(ioEvent(0, 1, trace.AccessOpen, 200, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Access != trace.AccessOpen {
		t.Fatalf("open produced %v", out)
	}
	// Second open of the same file hits the cached metadata.
	out, err = c.Apply(ioEvent(1, 1, trace.AccessOpen, 200, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("warm open produced %d accesses", len(out))
	}
}

func TestCloseIsFree(t *testing.T) {
	c := newTestCache(t)
	out, err := c.Apply(ioEvent(0, 1, trace.AccessClose, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("close generated disk traffic")
	}
}

func TestApplyRejectsNonIO(t *testing.T) {
	c := newTestCache(t)
	if _, err := c.Apply(trace.Event{Kind: trace.KindFork}); err == nil {
		t.Fatal("fork accepted by Apply")
	}
}

func TestFilterPreservesOrderAndLifecycle(t *testing.T) {
	c := newTestCache(t)
	events := []trace.Event{
		ioEvent(trace.Second, 1, trace.AccessWrite, 1, 4096),
		{Time: 2 * trace.Second, Pid: 1, Kind: trace.KindFork, Child: 2},
		ioEvent(3*trace.Second, 2, trace.AccessRead, 2, 4096),
		{Time: 50 * trace.Second, Pid: 2, Kind: trace.KindExit},
		ioEvent(60*trace.Second, 1, trace.AccessRead, 3, 4096),
	}
	out, err := c.Filter(events)
	if err != nil {
		t.Fatal(err)
	}
	var last trace.Time
	forks, exits, flushes := 0, 0, 0
	for _, e := range out {
		if e.Time < last {
			t.Fatalf("out of order at %v < %v", e.Time, last)
		}
		last = e.Time
		switch {
		case e.Kind == trace.KindFork:
			forks++
		case e.Kind == trace.KindExit:
			exits++
		case e.Pid == KernelFlushPID:
			flushes++
		}
	}
	if forks != 1 || exits != 1 {
		t.Errorf("lifecycle events lost: forks=%d exits=%d", forks, exits)
	}
	// The write at t=1 must have flushed before the read at t=60.
	if flushes != 1 {
		t.Errorf("flush events = %d", flushes)
	}
}

func TestQuickCacheInvariants(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, _ := New(cfg)
		now := trace.Time(0)
		for i := 0; i < 300; i++ {
			now += trace.Time(r.Int63n(int64(2 * trace.Second)))
			acc := trace.AccessRead
			if r.Intn(3) == 0 {
				acc = trace.AccessWrite
			}
			out, err := c.Apply(ioEvent(now, 1, acc, int64(r.Intn(200)), 4096))
			if err != nil {
				return false
			}
			// The cache never exceeds capacity and never emits events
			// timestamped in the future.
			if c.Len() > cfg.Blocks() {
				return false
			}
			for _, e := range out {
				if e.Time > now {
					return false
				}
			}
		}
		st := c.Stats()
		return st.ReadHits <= st.Reads && st.DiskReads <= st.Reads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package workload

// Nedit: the quick-fix editor and the paper's only single-process
// application. The user pops it open to correct source code during a
// compile or bug fix: open the file, maybe scroll around, edit for one
// long stretch, save and quit. "Nedit does not show repetitive behavior
// since once a file is modified it is saved and nedit is closed" — within
// an execution there is exactly one shutdown opportunity, so prediction
//-table reuse across executions is what makes it predictable at all.

// Nedit I/O call sites.
const (
	nedPCInit     = 0x082204ec
	nedPCRcRead   = 0x080993c0
	nedPCFileOpen = 0x0826ee28
	nedPCFileRead = 0x080b5080
	nedPCScroll   = 0x0815e730
	nedPCBackup   = 0x0820f6e8
	nedPCSaveWr   = 0x082ca1e4
	nedPCExitWr   = 0x0827d4d8
)

func init() {
	register(&App{
		Name:       "nedit",
		Executions: 29,
		Describe: "Single-process quick-fix editor: open a source file, one long edit " +
			"period, save, quit.",
		generate: genNedit,
	})
}

func genNedit(b *B) {
	root := b.Root()
	intraLo, intraHi := 0.006, 0.03

	// Launch: read ~/.nedit and syntax patterns.
	b.AdvanceRange(0.05, 0.2)
	b.Path(root, 3, []Site{O(nedPCInit), R(nedPCRcRead)}, intraLo, intraHi)
	b.Advance(b.R.Range(intraLo, intraHi))
	b.Burst(root, R(nedPCRcRead), 3, 40, intraLo, intraHi)

	// Open the source file.
	b.AdvanceRange(0.3, 0.9)
	b.Path(root, 4, []Site{O(nedPCFileOpen), R(nedPCFileRead)}, intraLo, intraHi)
	// The file body: a read burst whose length is one of two fixed size
	// classes (a short fix vs a larger source file). Burst lengths must be
	// drawn from a fixed set because every access's PC is summed into the
	// path signature — free-running counts would splinter nedit's table.
	b.Advance(b.R.Range(intraLo, intraHi))
	fileBlocks := 60
	if b.R.Bool(0.4) {
		fileBlocks = 120
	}
	b.Burst(root, R(nedPCFileRead), 4, fileBlocks, intraLo, intraHi)

	// Scroll to the right spot: zero to three quick scroll bursts, paced
	// under the predictors' wait-window (the user is flipping pages, not
	// pausing). The scroll count is the only path variety nedit has,
	// which keeps its prediction table tiny (Table 3: 6 entries).
	scrolls := b.R.Intn(3)
	for s := 0; s < scrolls; s++ {
		b.AdvanceRange(0.35, 0.95)
		b.Burst(root, R(nedPCScroll), 4, 20, intraLo, intraHi)
	}

	// The one long idle period: the user edits the file. The mixture
	// includes edits short enough that the timeout predictor cannot
	// profit from them.
	switch {
	case b.R.Bool(0.25):
		b.Advance(b.R.Range(6.5, 10))
	case b.R.Bool(0.07):
		b.Advance(b.R.Range(10.3, 15.2))
	default:
		b.Advance(b.R.Range(25, 900))
	}

	// Save: create the backup file (a metadata miss ends the idle
	// period), then write the buffer out, and quit.
	b.Path(root, 5, []Site{O(nedPCBackup), W(nedPCSaveWr)}, intraLo, intraHi)
	b.Advance(b.R.Range(intraLo, intraHi))
	b.Burst(root, W(nedPCSaveWr), 5, 30+b.R.Intn(30), intraLo, intraHi)
	b.AdvanceRange(0.4, 1.2)
	b.IO(root, W(nedPCExitWr), 3, b.FreshBlocks(1))
	b.AdvanceRange(0.05, 0.15)
	b.Exit(root)
}

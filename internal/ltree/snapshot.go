package ltree

// NodeState records one trained tree node for persistence. History holds
// the idle-class path from the root (bit 0 = most recent class) and Depth
// how many of its bits are meaningful.
type NodeState struct {
	History uint32 `json:"history"`
	Depth   int    `json:"depth"`
	Counter int    `json:"counter"`
	Visits  int    `json:"visits"`
}

// Snapshot returns every trained node in deterministic depth-first order,
// suitable for persisting an application's tree across executions.
func (t *Tree) Snapshot() []NodeState {
	var out []NodeState
	t.snapshotWalk(func(history uint32, depth, counter, visits int) {
		out = append(out, NodeState{History: history, Depth: depth, Counter: counter, Visits: visits})
	})
	return out
}

// Restore loads a snapshot into the tree, merging with any existing
// state: restored counters and visits overwrite node values, and missing
// interior nodes are created.
func (t *Tree) Restore(nodes []NodeState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ns := range nodes {
		n := t.root
		for d := 0; d < ns.Depth; d++ {
			bit := ns.History >> uint(d) & 1
			if n.children[bit] == nil {
				n.children[bit] = &node{}
				t.nodes++
			}
			n = n.children[bit]
		}
		n.counter = ns.Counter
		n.visits = ns.Visits
	}
}

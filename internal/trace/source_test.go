package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// mkTrace builds a small valid trace for source tests.
func mkTrace(app string, exec int, n int) *Trace {
	t := &Trace{App: app, Execution: exec}
	for i := 0; i < n; i++ {
		t.Events = append(t.Events, Event{
			Time: Time(i) * Millisecond, Pid: 1, Kind: KindIO,
			Access: AccessRead, PC: 0x1000 + PC(i), FD: 3, Block: int64(i), Size: 4096,
		})
	}
	return t
}

// collectSource drains a source into traces, failing the test on error.
func collectSource(t *testing.T, src Source) []*Trace {
	t.Helper()
	out, err := Collect(src)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return out
}

func TestSliceSourceRoundTrip(t *testing.T) {
	traces := []*Trace{mkTrace("a", 0, 3), mkTrace("a", 1, 0), mkTrace("b", 2, 5)}
	src := NewSliceSource(traces...)
	got := collectSource(t, src)
	if len(got) != 3 {
		t.Fatalf("got %d executions, want 3", len(got))
	}
	for i, tr := range got {
		if tr.App != traces[i].App || tr.Execution != traces[i].Execution {
			t.Errorf("exec %d header = %s/%d, want %s/%d", i, tr.App, tr.Execution, traces[i].App, traces[i].Execution)
		}
		if !reflect.DeepEqual(tr.Events, traces[i].Events) && len(traces[i].Events) > 0 {
			t.Errorf("exec %d events differ", i)
		}
	}
	// Reset replays identically.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	again := collectSource(t, src)
	if len(again) != len(got) {
		t.Fatalf("after reset: %d executions, want %d", len(again), len(got))
	}
}

func TestSliceSourceExecEvents(t *testing.T) {
	tr := mkTrace("a", 0, 4)
	src := NewSliceSource(tr)
	if _, _, ok := src.NextExec(); !ok {
		t.Fatal("NextExec failed")
	}
	// Consume one event, then take the rest as a slice.
	if _, ok := src.Next(); !ok {
		t.Fatal("Next failed")
	}
	rest := src.ExecEvents()
	if len(rest) != 3 {
		t.Fatalf("ExecEvents returned %d events, want 3", len(rest))
	}
	if &rest[0] != &tr.Events[1] {
		t.Error("ExecEvents should share the trace's backing array")
	}
	if _, ok := src.Next(); ok {
		t.Error("Next should report drained after ExecEvents")
	}
}

func TestMergeSourcesMatchesSliceMerge(t *testing.T) {
	a := &Trace{App: "a", Execution: 0, Events: []Event{
		{Time: 0, Pid: 1, Kind: KindIO, Access: AccessRead, PC: 1, Size: 1},
		{Time: 5, Pid: 1, Kind: KindIO, Access: AccessRead, PC: 2, Size: 1},
		{Time: 5, Pid: 1, Kind: KindIO, Access: AccessRead, PC: 3, Size: 1},
	}}
	b := &Trace{App: "b", Execution: 0, Events: []Event{
		{Time: 3, Pid: 2, Kind: KindIO, Access: AccessRead, PC: 4, Size: 1},
		{Time: 5, Pid: 2, Kind: KindIO, Access: AccessRead, PC: 5, Size: 1},
	}}
	want := Merge(a.Events, b.Events)
	src := MergeSources(NewSliceSource(a), NewSliceSource(b))
	app, _, ok := src.NextExec()
	if !ok || app != "a" {
		t.Fatalf("NextExec = %q, %v; want a, true", app, ok)
	}
	var got []Event
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, e)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged stream differs from slice Merge:\n got %v\nwant %v", got, want)
	}
}

func TestMergeSourcesMismatchedExecutions(t *testing.T) {
	src := MergeSources(
		NewSliceSource(mkTrace("a", 0, 1), mkTrace("a", 1, 1)),
		NewSliceSource(mkTrace("b", 0, 1)),
	)
	n := 0
	for {
		_, _, ok := src.NextExec()
		if !ok {
			break
		}
		n++
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
	}
	if src.Err() == nil {
		t.Error("mismatched execution counts should surface via Err")
	}
}

func TestLimit(t *testing.T) {
	src := Limit(NewSliceSource(mkTrace("a", 0, 5), mkTrace("a", 1, 1)), 2)
	got := collectSource(t, src)
	if len(got) != 2 {
		t.Fatalf("got %d executions, want 2", len(got))
	}
	if len(got[0].Events) != 2 || len(got[1].Events) != 1 {
		t.Errorf("event counts = %d, %d; want 2, 1", len(got[0].Events), len(got[1].Events))
	}
}

func TestLimitExecs(t *testing.T) {
	traces := []*Trace{mkTrace("a", 0, 5), mkTrace("a", 1, 3), mkTrace("a", 2, 4)}
	src := LimitExecs(NewSliceSource(traces...), 2)
	got := collectSource(t, src)
	if len(got) != 2 {
		t.Fatalf("got %d executions, want 2", len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Events, traces[i].Events) {
			t.Errorf("exec %d events differ from the unlimited source", i)
		}
	}
	// Reset restores the full budget.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if again := collectSource(t, src); len(again) != 2 {
		t.Fatalf("after reset: %d executions, want 2", len(again))
	}
	// The batch path delivers the same events as the pull path.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := src.NextExec(); !ok {
		t.Fatal("NextExec failed after reset")
	}
	batch := src.(ExecAppender).AppendExec(nil)
	if !reflect.DeepEqual(batch, traces[0].Events) {
		t.Errorf("AppendExec differs from the source events")
	}
	// Zero and negative caps yield an empty workload.
	for _, n := range []int{0, -1} {
		if got := collectSource(t, LimitExecs(NewSliceSource(traces...), n)); len(got) != 0 {
			t.Errorf("LimitExecs(%d): %d executions, want 0", n, len(got))
		}
	}
}

func TestScaleIdentityAtOne(t *testing.T) {
	src := NewSliceSource(mkTrace("a", 0, 2))
	if Scale(src, 1) != Source(src) {
		t.Error("Scale(src, 1) must return src unchanged")
	}
	if Scale(src, 0) != Source(src) {
		t.Error("Scale(src, 0) must return src unchanged")
	}
}

func TestScaleRepeatsAndWarps(t *testing.T) {
	traces := []*Trace{mkTrace("a", 0, 3), mkTrace("a", 1, 2)}
	src := Scale(NewSliceSource(traces...), 3)
	got := collectSource(t, src)
	if len(got) != 6 {
		t.Fatalf("got %d executions, want 6", len(got))
	}
	for i, tr := range got {
		if tr.Execution != i {
			t.Errorf("execution %d renumbered as %d", i, tr.Execution)
		}
		base := traces[i%2]
		if tr.App != base.App || len(tr.Events) != len(base.Events) {
			t.Fatalf("execution %d does not repeat %s/%d", i, base.App, base.Execution)
		}
		pass := i / 2
		for j, e := range tr.Events {
			want := warpTime(base.Events[j].Time, pass)
			if e.Time != want {
				t.Errorf("exec %d event %d time = %v, want %v", i, j, e.Time, want)
			}
			// Everything but the timestamp is preserved.
			we := base.Events[j]
			we.Time = e.Time
			if e != we {
				t.Errorf("exec %d event %d mutated beyond time: %v vs %v", i, j, e, we)
			}
		}
		// Warped streams stay in non-decreasing time order.
		for j := 1; j < len(tr.Events); j++ {
			if tr.Events[j].Time < tr.Events[j-1].Time {
				t.Errorf("exec %d events out of order after warp", i)
			}
		}
	}
	// Pass 0 is the identity; later passes stretch.
	if got[0].Events[1].Time != traces[0].Events[1].Time {
		t.Error("pass 0 must not warp timestamps")
	}
	if got[4].Events[2].Time <= traces[0].Events[2].Time {
		t.Error("pass 2 should stretch timestamps")
	}
}

func TestScaleReset(t *testing.T) {
	src := Scale(NewSliceSource(mkTrace("a", 0, 2)), 2)
	first := collectSource(t, src)
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	second := collectSource(t, src)
	if !reflect.DeepEqual(first, second) {
		t.Error("Scale replay after Reset differs")
	}
}

func TestDecoderStreamsConcatenatedTraces(t *testing.T) {
	traces := []*Trace{mkTrace("moz", 0, 4), mkTrace("moz", 1, 0), mkTrace("ned", 7, 2)}
	var buf bytes.Buffer
	for _, tr := range traces {
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	got := collectSource(t, d)
	if len(got) != 3 {
		t.Fatalf("decoded %d executions, want 3", len(got))
	}
	for i, tr := range got {
		want := traces[i]
		if tr.App != want.App || tr.Execution != want.Execution || len(tr.Events) != len(want.Events) {
			t.Fatalf("execution %d = %s/%d (%d events), want %s/%d (%d)",
				i, tr.App, tr.Execution, len(tr.Events), want.App, want.Execution, len(want.Events))
		}
		for j := range tr.Events {
			if tr.Events[j] != want.Events[j] {
				t.Errorf("execution %d event %d = %v, want %v", i, j, tr.Events[j], want.Events[j])
			}
		}
	}
	// Seekable input: Reset replays the whole stream.
	if err := d.Reset(); err != nil {
		t.Fatal(err)
	}
	if again := collectSource(t, d); len(again) != 3 {
		t.Fatalf("after reset: %d executions, want 3", len(again))
	}
}

func TestDecoderTruncatedStream(t *testing.T) {
	tr := mkTrace("a", 0, 10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	d := NewDecoder(bytes.NewReader(cut))
	if _, _, ok := d.NextExec(); !ok {
		t.Fatal("NextExec should succeed on an intact header")
	}
	n := 0
	for {
		if _, ok := d.Next(); !ok {
			break
		}
		n++
	}
	if d.Err() == nil {
		t.Fatal("truncated stream must surface an error")
	}
	if !errors.Is(d.Err(), ErrBadFormat) {
		t.Errorf("error %v should wrap ErrBadFormat", d.Err())
	}
	if n >= 10 {
		t.Errorf("decoded %d events from a truncated stream of 10", n)
	}
}

func TestDecoderEmptyInputCleanEnd(t *testing.T) {
	d := NewDecoder(bytes.NewReader(nil))
	if _, _, ok := d.NextExec(); ok {
		t.Fatal("NextExec on empty input should report exhaustion")
	}
	if err := d.Err(); err != nil {
		t.Fatalf("empty input is a clean (zero-execution) stream, got %v", err)
	}
}

func TestDecoderSkipsUndrainedExecution(t *testing.T) {
	var buf bytes.Buffer
	for _, tr := range []*Trace{mkTrace("a", 0, 5), mkTrace("b", 1, 2)} {
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	if _, _, ok := d.NextExec(); !ok {
		t.Fatal("first NextExec failed")
	}
	d.Next() // consume one of five, then skip ahead
	app, exec, ok := d.NextExec()
	if !ok || app != "b" || exec != 1 {
		t.Fatalf("skip-ahead NextExec = %s/%d/%v, want b/1/true", app, exec, ok)
	}
	if got := collectEvents(d); len(got) != 2 {
		t.Errorf("second execution yielded %d events, want 2", len(got))
	}
}

func collectEvents(src Source) []Event {
	var out []Event
	for {
		e, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestEncoderMatchesWriteBinary(t *testing.T) {
	tr := mkTrace("mozilla", 3, 50)
	tr.Events = append(tr.Events, Event{Time: 60 * Millisecond, Pid: 1, Kind: KindFork, Child: 2})
	tr.Events = append(tr.Events, Event{Time: 61 * Millisecond, Pid: 2, Kind: KindExit})

	var direct bytes.Buffer
	if err := WriteBinary(&direct, tr); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	enc, err := NewEncoder(&streamed, tr.App, tr.Execution, len(tr.Events))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := enc.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), streamed.Bytes()) {
		t.Error("streaming encoder output differs from WriteBinary")
	}
}

func TestEncoderCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, "a", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Write(Event{Kind: KindExit, Pid: 1}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err == nil {
		t.Error("Close with missing events should fail")
	}
	enc2, _ := NewEncoder(&buf, "a", 0, 0)
	if err := enc2.Write(Event{Kind: KindExit, Pid: 1}); err == nil {
		t.Error("Write past the declared count should fail")
	}
}

func TestTextDecoderSingleTrace(t *testing.T) {
	tr := mkTrace("xemacs", 4, 6)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d := NewTextDecoder(bytes.NewReader(buf.Bytes()))
	got := collectSource(t, d)
	if len(got) != 1 {
		t.Fatalf("decoded %d executions, want 1", len(got))
	}
	want, err := ReadText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].App != want.App || got[0].Execution != want.Execution {
		t.Errorf("header %s/%d, want %s/%d", got[0].App, got[0].Execution, want.App, want.Execution)
	}
	if !reflect.DeepEqual(got[0].Events, want.Events) {
		t.Error("streamed text events differ from ReadText")
	}
}

func TestTextDecoderConcatenated(t *testing.T) {
	var buf bytes.Buffer
	for _, tr := range []*Trace{mkTrace("a", 0, 2), mkTrace("b", 3, 1)} {
		if err := WriteText(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	d := NewTextDecoder(bytes.NewReader(buf.Bytes()))
	got := collectSource(t, d)
	if len(got) != 2 {
		t.Fatalf("decoded %d executions, want 2", len(got))
	}
	if got[0].App != "a" || got[1].App != "b" || got[1].Execution != 3 {
		t.Errorf("headers = %s/%d, %s/%d", got[0].App, got[0].Execution, got[1].App, got[1].Execution)
	}
	if len(got[0].Events) != 2 || len(got[1].Events) != 1 {
		t.Errorf("event counts = %d, %d; want 2, 1", len(got[0].Events), len(got[1].Events))
	}
}

func TestTextDecoderBadLine(t *testing.T) {
	d := NewTextDecoder(strings.NewReader("# pcap-trace v1\n# app a exec 0\nnot an event\n"))
	for {
		_, _, ok := d.NextExec()
		if !ok {
			break
		}
		for {
			if _, ok := d.Next(); !ok {
				break
			}
		}
	}
	if d.Err() == nil {
		t.Error("malformed event line should surface via Err")
	}
}

func TestValidatorMatchesTraceValidate(t *testing.T) {
	valid := mkTrace("a", 0, 4)
	valid.Events = append(valid.Events,
		Event{Time: 10 * Millisecond, Pid: 1, Kind: KindFork, Child: 2},
		Event{Time: 11 * Millisecond, Pid: 2, Kind: KindIO, Access: AccessRead, PC: 9, Size: 1},
		Event{Time: 12 * Millisecond, Pid: 2, Kind: KindExit},
	)
	invalid := []*Trace{
		{App: "x", Events: []Event{{Time: 5}, {Time: 3}}},                                                 // time order
		{App: "x", Events: []Event{{Time: 1, Pid: 3, Kind: KindFork, Child: 3}}},                          // self fork
		{App: "x", Events: []Event{{Time: 1, Pid: 3, Kind: KindIO, Access: AccessRead}}},                  // zero PC
		{App: "x", Events: []Event{{Time: 1, Pid: 3, Kind: KindIO, PC: 1, Size: -1}}},                     // negative size
		{App: "x", Execution: 2, Events: []Event{{Time: 1, Pid: 3, Kind: Kind(9)}}},                       // unknown kind
		{App: "x", Events: []Event{{Time: 1, Pid: 3, Kind: KindExit}, {Time: 2, Pid: 3, Kind: KindExit}}}, // double exit
	}
	for _, tr := range append([]*Trace{valid}, invalid...) {
		want := tr.Validate()
		v := NewValidator(tr.App, tr.Execution)
		var got error
		for _, e := range tr.Events {
			if got = v.Event(e); got != nil {
				break
			}
		}
		switch {
		case (want == nil) != (got == nil):
			t.Errorf("trace %v: Validate = %v, Validator = %v", tr.Events, want, got)
		case want != nil && want.Error() != got.Error():
			t.Errorf("message drift: Validate %q vs Validator %q", want, got)
		}
	}
}

func TestCollectRoundTripsSliceSource(t *testing.T) {
	traces := []*Trace{mkTrace("a", 0, 3), mkTrace("b", 1, 2)}
	got, err := Collect(NewSliceSource(traces...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].App != "a" || got[1].App != "b" {
		t.Fatalf("collect mismatch: %v", got)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Events, traces[i].Events) {
			t.Errorf("execution %d events differ", i)
		}
	}
}

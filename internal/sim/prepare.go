package sim

import (
	"fmt"

	"pcapsim/internal/fscache"
	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

// procInfo tracks one process's lifetime and access stream within an
// execution.
type procInfo struct {
	pid   trace.PID
	start trace.Time
	// exit is the exit time; hasExit reports whether the process exited
	// within the trace.
	exit    trace.Time
	hasExit bool
	// accesses are indices into execution.accesses belonging to this pid.
	accesses []int
}

// liveAt reports whether the process exists (has started, has not exited)
// at time t.
func (p *procInfo) liveAt(t trace.Time) bool {
	return p.start <= t && (!p.hasExit || p.exit > t)
}

// recycle clears the procInfo for reuse, keeping its accesses capacity.
func (p *procInfo) recycle() {
	*p = procInfo{accesses: p.accesses[:0]}
}

// execution is one application execution prepared for simulation: the
// trace filtered through the file cache into disk accesses, partitioned by
// process.
type execution struct {
	app string
	// index is the execution's position within the workload.
	index int
	// accesses is the merged disk-access stream in time order.
	accesses []trace.Event
	// nextLocal[i] is the index (into accesses) of the next access by the
	// same process after accesses[i], or -1.
	nextLocal []int
	// procs maps pid to lifetime and access info.
	procs map[trace.PID]*procInfo
	// exits lists processes' exit events sorted by time.
	exits []trace.Event
	// totalIOs is the pre-cache I/O event count.
	totalIOs int
	// cacheStats is the file cache activity for this execution.
	cacheStats fscache.Stats
	// end is the time of the last trace event.
	end trace.Time
}

// runState is the pooled per-run scratch space of one RunSource call: the
// drain buffer, the file cache (arena reset, not reallocated, between
// executions), the filtered-event buffer, the prepared execution with all
// of its slices and maps, and the runner-loop working set (per-pid
// predictors, standing decisions, the service-completion schedule).
//
// Ownership discipline: a runState is owned by exactly one RunSource call
// at a time (Runner keeps a sync.Pool of them), and everything inside it
// is overwritten at the next execution's prepare — so nothing reachable
// from a runState may be retained across executions, matching the
// trace.Source borrowing contract for drained event slices.
type runState struct {
	buf      []trace.Event // drain buffer for purely streaming sources
	view     trace.Trace   // reused Trace header over the drained events
	cache    *fscache.Cache
	filtered []trace.Event
	ex       execution
	procFree []*procInfo // recycled procInfo values

	// runExecution working set.
	serviceEnd []trace.Time
	preds      map[trace.PID]predictor.Process
	dec        map[trace.PID]decisionState
	decided    []trace.PID
}

// getState fetches a runState compatible with the runner's configuration.
// The caller takes ownership and must pair it with putState.
//
//pcaplint:owner-transfer
func (r *Runner) getState() *runState {
	if rs, ok := r.statePool.Get().(*runState); ok {
		return rs
	}
	return &runState{
		preds: make(map[trace.PID]predictor.Process),
		dec:   make(map[trace.PID]decisionState),
	}
}

// putState returns a runState to the pool for the next RunSource call.
func (r *Runner) putState(rs *runState) {
	// Drop predictor references so pooled states do not pin a finished
	// run's learned state, and let go of the last drained event slice (it
	// may be on loan from the source); the containers themselves are kept.
	clear(rs.preds)
	clear(rs.dec)
	rs.view.Events = nil
	r.statePool.Put(rs)
}

// prepare filters one execution trace through the run's file cache and
// indexes the resulting disk accesses for the runner, reusing every buffer
// from the previous execution.
func (rs *runState) prepare(tr *trace.Trace, cacheCfg fscache.Config) (*execution, error) {
	if rs.cache == nil {
		cache, err := fscache.New(cacheCfg)
		if err != nil {
			return nil, err
		}
		rs.cache = cache
	} else {
		rs.cache.Reset()
	}
	filtered, err := rs.cache.FilterInto(rs.filtered[:0], tr.Events)
	if err != nil {
		return nil, fmt.Errorf("sim: filtering %s/%d: %w", tr.App, tr.Execution, err)
	}
	rs.filtered = filtered

	ex := &rs.ex
	// Free-list order only decides which recycled procInfo serves which
	// pid next execution; every field is reset on reuse, so results are
	// unaffected.
	//pcaplint:ignore detmap free-list order is invisible: procInfos are fully reset on reuse
	for _, p := range ex.procs {
		p.recycle()
		rs.procFree = append(rs.procFree, p)
	}
	if ex.procs == nil {
		ex.procs = make(map[trace.PID]*procInfo)
	} else {
		clear(ex.procs)
	}
	ex.app = tr.App
	ex.index = tr.Execution
	ex.accesses = ex.accesses[:0]
	ex.exits = ex.exits[:0]
	ex.totalIOs = 0
	ex.cacheStats = rs.cache.Stats()
	ex.end = tr.Duration()

	for _, e := range tr.Events {
		if e.IsIO() {
			ex.totalIOs++
		}
	}
	proc := func(pid trace.PID) *procInfo {
		p, ok := ex.procs[pid]
		if !ok {
			// First sighting without a fork: a root process, alive from
			// the start of the execution.
			p = rs.newProc(pid)
			ex.procs[pid] = p
		}
		return p
	}
	for _, e := range filtered {
		switch e.Kind {
		case trace.KindFork:
			proc(e.Pid)
			child, ok := ex.procs[e.Child]
			if !ok {
				child = rs.newProc(e.Child)
				ex.procs[e.Child] = child
			}
			child.start = e.Time
		case trace.KindExit:
			p := proc(e.Pid)
			p.exit = e.Time
			p.hasExit = true
			ex.exits = append(ex.exits, e)
		case trace.KindIO:
			p := proc(e.Pid)
			idx := len(ex.accesses)
			ex.accesses = append(ex.accesses, e)
			p.accesses = append(p.accesses, idx)
		}
	}
	// Index each access's successor within its own process.
	ex.nextLocal = ex.nextLocal[:0]
	for range ex.accesses {
		ex.nextLocal = append(ex.nextLocal, -1)
	}
	// Each access index belongs to exactly one pid, so the writes below
	// hit disjoint nextLocal slots regardless of iteration order.
	//pcaplint:ignore detmap per-pid access indices are disjoint, so write order cannot matter
	for _, p := range ex.procs {
		for j := 0; j+1 < len(p.accesses); j++ {
			ex.nextLocal[p.accesses[j]] = p.accesses[j+1]
		}
	}
	return ex, nil
}

// prepare prepares one execution with fresh, unpooled state — the seam
// for cold paths (the machine-engine cross-validator) that work outside a
// RunSource loop.
func prepare(tr *trace.Trace, cacheCfg fscache.Config) (*execution, error) {
	return (&runState{}).prepare(tr, cacheCfg)
}

// newProc takes a procInfo from the free list (or allocates one) and
// labels it with pid.
func (rs *runState) newProc(pid trace.PID) *procInfo {
	if n := len(rs.procFree); n > 0 {
		p := rs.procFree[n-1]
		rs.procFree = rs.procFree[:n-1]
		p.pid = pid
		return p
	}
	return &procInfo{pid: pid}
}

package core_test

import (
	"fmt"

	"pcapsim/internal/core"
	"pcapsim/internal/predictor"
	"pcapsim/internal/trace"
)

// Example replays the paper's Figure 3: the path {PC1, PC2, PC1} trains on
// its first long idle period and predicts on the second.
func Example() {
	pcap := core.MustNew(core.DefaultConfig(core.VariantBase))
	proc := pcap.NewProcess(1)

	access := func(atSec float64, pc trace.PC) predictor.Decision {
		return proc.OnAccess(predictor.Access{Time: trace.FromSeconds(atSec), PC: pc, FD: 3})
	}

	// First occurrence of the path — training.
	access(0.1, 0x1000)
	access(0.2, 0x2000)
	d := access(0.3, 0x1000)
	fmt.Println("first occurrence:", d.Source)

	// A 20-second idle period passes; the same path recurs.
	access(20.1, 0x1000)
	access(20.2, 0x2000)
	d = access(20.3, 0x1000)
	fmt.Printf("second occurrence: %s, shutdown in %v\n", d.Source, d.Delay.Duration())
	fmt.Println("table entries:", pcap.Table().Len())

	// Output:
	// first occurrence: backup
	// second occurrence: primary, shutdown in 1s
	// table entries: 1
}

// ExampleConfig_variants shows how the history and file-descriptor
// augmentations change the table key.
func ExampleConfig_variants() {
	for _, v := range []core.Variant{core.VariantBase, core.VariantH, core.VariantF, core.VariantFH} {
		fmt.Printf("%-7s history=%v fd=%v\n", v, v.UsesHistory(), v.UsesFD())
	}
	// Output:
	// PCAP    history=false fd=false
	// PCAPh   history=true fd=false
	// PCAPf   history=false fd=true
	// PCAPfh  history=true fd=true
}

// ExampleTable_bounded shows LRU replacement under a table bound.
func ExampleTable_bounded() {
	tab := core.NewTable(2)
	tab.Train(core.Key{Sig: 1})
	tab.Train(core.Key{Sig: 2})
	tab.Train(core.Key{Sig: 3}) // evicts sig 1
	fmt.Println("entries:", tab.Len())
	fmt.Println("sig 1 present:", tab.Lookup(core.Key{Sig: 1}))
	fmt.Println("sig 3 present:", tab.Lookup(core.Key{Sig: 3}))
	// Output:
	// entries: 2
	// sig 1 present: false
	// sig 3 present: true
}

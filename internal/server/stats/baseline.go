package stats

import (
	"math"
	"sync"
	"sync/atomic"
)

// Measured baselines for the coalescing design. Both implement the same
// counting surface as a Local-over-Counters pair but pay shared-state
// synchronization on every add — the designs pcapd deliberately does
// not use on its hot path. They are kept as first-class code (not test
// fixtures) so the counter micro-benchmarks and the exactness tests can
// compare all three side by side, and so the recorded overhead numbers
// in EXPERIMENTS.md stay reproducible against the very code they
// measured.

// AtomicCounters is the naive shared-atomic design: every add is an
// atomic RMW on globally shared cache lines (a CAS loop for the float).
type AtomicCounters struct {
	events     atomic.Int64
	execs      atomic.Int64
	energyBits atomic.Uint64
}

// AddEvents records n simulated events.
func (a *AtomicCounters) AddEvents(n int64) { a.events.Add(n) }

// AddExecs records n simulated executions.
func (a *AtomicCounters) AddExecs(n int64) { a.execs.Add(n) }

// AddEnergy records j joules.
func (a *AtomicCounters) AddEnergy(j float64) { addFloat(&a.energyBits, j) }

// Events returns the event total.
func (a *AtomicCounters) Events() int64 { return a.events.Load() }

// Execs returns the execution total.
func (a *AtomicCounters) Execs() int64 { return a.execs.Load() }

// EnergyJ returns the energy total.
func (a *AtomicCounters) EnergyJ() float64 { return math.Float64frombits(a.energyBits.Load()) }

// MutexCounters is the lock-per-add design.
type MutexCounters struct {
	mu     sync.Mutex
	events int64
	execs  int64
	energy float64
}

// AddEvents records n simulated events.
func (m *MutexCounters) AddEvents(n int64) {
	m.mu.Lock()
	m.events += n
	m.mu.Unlock()
}

// AddExecs records n simulated executions.
func (m *MutexCounters) AddExecs(n int64) {
	m.mu.Lock()
	m.execs += n
	m.mu.Unlock()
}

// AddEnergy records j joules.
func (m *MutexCounters) AddEnergy(j float64) {
	m.mu.Lock()
	m.energy += j
	m.mu.Unlock()
}

// Events returns the event total.
func (m *MutexCounters) Events() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// Execs returns the execution total.
func (m *MutexCounters) Execs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.execs
}

// EnergyJ returns the energy total.
func (m *MutexCounters) EnergyJ() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.energy
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format
//
//	magic  "PCTR" (4 bytes)
//	version uint16 (little endian) = 1
//	app     uvarint length + bytes
//	exec    uvarint
//	count   uvarint (number of events)
//	events  delta-encoded records:
//	    dt     uvarint (time delta in µs from previous event)
//	    pid    uvarint
//	    kind   byte
//	    KindIO:   access byte, pc uvarint, fd varint, block varint, size varint
//	    KindFork: child uvarint
//	    KindExit: (nothing)
//
// Delta timing plus varints keeps multi-hundred-thousand-event traces
// compact without pulling in any non-stdlib dependency.

const (
	binaryMagic   = "PCTR"
	binaryVersion = 1
)

// ErrBadFormat is returned when decoding input that is not a valid binary
// trace.
var ErrBadFormat = errors.New("trace: bad format")

// WriteBinary encodes the trace to w in the binary trace format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var v2 [2]byte
	binary.LittleEndian.PutUint16(v2[:], binaryVersion)
	if _, err := bw.Write(v2[:]); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(t.App)))
	bw.WriteString(t.App)
	writeUvarint(bw, uint64(t.Execution))
	writeUvarint(bw, uint64(len(t.Events)))
	var prev Time
	for i, e := range t.Events {
		if e.Time < prev {
			return fmt.Errorf("trace: event %d out of order; call SortStable before encoding", i)
		}
		writeUvarint(bw, uint64(e.Time-prev))
		prev = e.Time
		writeUvarint(bw, uint64(e.Pid))
		bw.WriteByte(byte(e.Kind))
		switch e.Kind {
		case KindIO:
			bw.WriteByte(byte(e.Access))
			writeUvarint(bw, uint64(e.PC))
			writeVarint(bw, int64(e.FD))
			writeVarint(bw, e.Block)
			writeVarint(bw, int64(e.Size))
		case KindFork:
			writeUvarint(bw, uint64(e.Child))
		case KindExit:
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace previously encoded with WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	var v2 [2]byte
	if _, err := io.ReadFull(br, v2[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if v := binary.LittleEndian.Uint16(v2[:]); v != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("%w: app name too long (%d)", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	exec, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	t := &Trace{App: string(name), Execution: int(exec)}
	if count < 1<<20 {
		t.Events = make([]Event, 0, count)
	}
	var prev Time
	for i := uint64(0); i < count; i++ {
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
		}
		pid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
		}
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
		}
		e := Event{Time: prev + Time(dt), Pid: PID(pid), Kind: Kind(kindByte)}
		prev = e.Time
		switch e.Kind {
		case KindIO:
			accessByte, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
			}
			e.Access = Access(accessByte)
			pc, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
			}
			e.PC = PC(pc)
			fd, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
			}
			e.FD = FD(fd)
			block, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
			}
			e.Block = block
			size, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
			}
			e.Size = int32(size)
		case KindFork:
			child, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, i, err)
			}
			e.Child = PID(child)
		case KindExit:
		default:
			return nil, fmt.Errorf("%w: event %d has unknown kind %d", ErrBadFormat, i, kindByte)
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

// WriteText encodes the trace in a line-oriented, human-readable format:
//
//	# pcap-trace v1
//	# app <name> exec <n>
//	<time-µs> io <pid> <access> pc=0x<hex> fd=<n> block=<n> size=<n>
//	<time-µs> fork <pid> child=<pid>
//	<time-µs> exit <pid>
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# pcap-trace v1\n# app %s exec %d\n", t.App, t.Execution)
	for _, e := range t.Events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a trace in the text format written by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			// "# app <name> exec <n>"
			if len(fields) >= 5 && fields[1] == "app" && fields[3] == "exec" {
				t.App = fields[2]
				exec, err := strconv.Atoi(fields[4])
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad exec: %v", line, err)
				}
				t.Execution = exec
			}
			continue
		}
		e, err := parseTextEvent(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseTextEvent(text string) (Event, error) {
	fields := strings.Fields(text)
	if len(fields) < 3 {
		return Event{}, fmt.Errorf("too few fields in %q", text)
	}
	us, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad time: %v", err)
	}
	pid, err := strconv.ParseInt(fields[2], 10, 32)
	if err != nil {
		return Event{}, fmt.Errorf("bad pid: %v", err)
	}
	e := Event{Time: Time(us), Pid: PID(pid)}
	switch fields[1] {
	case "fork":
		e.Kind = KindFork
		if len(fields) < 4 {
			return Event{}, fmt.Errorf("fork missing child in %q", text)
		}
		child, err := parseKV(fields[3], "child")
		if err != nil {
			return Event{}, err
		}
		e.Child = PID(child)
	case "exit":
		e.Kind = KindExit
	case "io":
		e.Kind = KindIO
		if len(fields) < 8 {
			return Event{}, fmt.Errorf("io event has too few fields in %q", text)
		}
		switch fields[3] {
		case "read":
			e.Access = AccessRead
		case "write":
			e.Access = AccessWrite
		case "open":
			e.Access = AccessOpen
		case "close":
			e.Access = AccessClose
		default:
			return Event{}, fmt.Errorf("unknown access %q", fields[3])
		}
		pc, err := parseKV(fields[4], "pc")
		if err != nil {
			return Event{}, err
		}
		e.PC = PC(pc)
		fd, err := parseKV(fields[5], "fd")
		if err != nil {
			return Event{}, err
		}
		e.FD = FD(fd)
		block, err := parseKV(fields[6], "block")
		if err != nil {
			return Event{}, err
		}
		e.Block = block
		size, err := parseKV(fields[7], "size")
		if err != nil {
			return Event{}, err
		}
		e.Size = int32(size)
	default:
		return Event{}, fmt.Errorf("unknown event kind %q", fields[1])
	}
	return e, nil
}

func parseKV(field, key string) (int64, error) {
	prefix := key + "="
	if !strings.HasPrefix(field, prefix) {
		return 0, fmt.Errorf("expected %s=..., got %q", key, field)
	}
	val := field[len(prefix):]
	if strings.HasPrefix(val, "0x") || strings.HasPrefix(val, "0X") {
		v, err := strconv.ParseUint(val[2:], 16, 64)
		return int64(v), err
	}
	return strconv.ParseInt(val, 10, 64)
}

// Package frameworktest exercises the directive layer itself: malformed
// suppressions must be findings, so stale or typo'd ignores cannot rot
// silently. Each `want +N` comment expects a finding N lines below it (gofmt keeps
// a blank comment line between prose and each directive).
package frameworktest

// want +2 "unknown analyzer \"nosuchanalyzer\""
//
//pcaplint:ignore nosuchanalyzer this analyzer was renamed away
func Stale() {}

// want +2 "needs a reason"
//
//pcaplint:ignore detmap
func Reasonless() {}

// want +2 "needs an analyzer name"
//
//pcaplint:ignore
func Nameless() {}

// want +2 "unknown pcaplint directive"
//
//pcaplint:silence detmap because
func BadVerb() {}

// want +2 "must be in a function declaration's doc comment"
//
//pcaplint:owner-transfer
var notAFunction = 1

var _ = notAFunction

// Editor session study: runs the xemacs workload — the paper's canonical
// aliasing scenario, where the user opens several files in a row and only
// the last open is followed by a long editing period — under every
// predictor family, and prints a side-by-side comparison of prediction
// accuracy and energy.
package main

import (
	"fmt"

	"pcapsim/internal/core"
	"pcapsim/internal/ltree"
	"pcapsim/internal/predictor"
	"pcapsim/internal/sim"
	"pcapsim/internal/trace"
	"pcapsim/internal/workload"
)

func main() {
	runner := sim.MustNewRunner(sim.DefaultConfig())
	app, _ := workload.ByName("xemacs")
	traces := app.Traces(20040214)
	fmt.Printf("xemacs: %d recorded executions\n\n", len(traces))

	policies := []sim.Policy{
		{Name: "Base", NewFactory: func() predictor.Factory { return predictor.AlwaysOn{} }},
		{
			Name:         "Ideal",
			NewFactory:   func() predictor.Factory { return predictor.NewOracle(runner.Config().Disk.Breakeven) },
			GlobalOracle: true,
		},
		{Name: "TP", NewFactory: func() predictor.Factory { return predictor.NewTimeout(10 * trace.Second) }},
		{Name: "LT", NewFactory: func() predictor.Factory { return ltree.MustNew(ltree.DefaultConfig()) }, Reuse: true},
		{Name: "PCAP", NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantBase)) }, Reuse: true},
		{Name: "PCAPh", NewFactory: func() predictor.Factory { return core.MustNew(core.DefaultConfig(core.VariantH)) }, Reuse: true},
	}

	var baseTotal float64
	fmt.Printf("%-6s %8s %8s %8s %10s %10s %9s\n",
		"policy", "hit", "miss", "notpred", "saved", "shutdowns", "entries")
	for _, pol := range policies {
		res, err := runner.RunApp(traces, pol)
		if err != nil {
			panic(err)
		}
		if pol.Name == "Base" {
			baseTotal = res.Energy.Total()
		}
		f := res.Global.Fractions()
		saved := 0.0
		if baseTotal > 0 {
			saved = 1 - res.Energy.Total()/baseTotal
		}
		entries := ""
		if res.StateEntries >= 0 {
			entries = fmt.Sprint(res.StateEntries)
		}
		fmt.Printf("%-6s %7.1f%% %7.1f%% %7.1f%% %9.1f%% %10d %9s\n",
			pol.Name, 100*f.Hit, 100*f.Miss, 100*f.NotPredicted, 100*saved, res.Cycles, entries)
	}

	fmt.Println("\nNote how PCAP converts the timeout predictor's 'not predicted'")
	fmt.Println("periods into immediate shutdowns once its table is trained, and")
	fmt.Println("how the history variant (PCAPh) trims the save-as aliasing misses.")
}

package disk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pcapsim/internal/trace"
)

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(FujitsuMHF2043AT())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineRejectsBadParams(t *testing.T) {
	p := FujitsuMHF2043AT()
	p.BusyPower = -1
	if _, err := NewMachine(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestMachineIdleEnergy(t *testing.T) {
	m := newTestMachine(t)
	m.SetPeriodClass(true)
	e, err := m.Finish(10 * trace.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * 0.95
	if math.Abs(e.IdleLong-want) > 1e-9 {
		t.Errorf("idle energy %g, want %g", e.IdleLong, want)
	}
	if e.Busy != 0 || e.PowerCycle != 0 || e.IdleShort != 0 {
		t.Errorf("unexpected buckets: %+v", e)
	}
}

func TestMachineServeIO(t *testing.T) {
	m := newTestMachine(t)
	done, err := m.ServeIO(2*trace.Second, 500*trace.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done != 2*trace.Second+500*trace.Millisecond {
		t.Errorf("completion at %v", done)
	}
	e, err := m.Finish(3 * trace.Second)
	if err != nil {
		t.Fatal(err)
	}
	wantBusy := 0.5 * 2.2
	if math.Abs(e.Busy-wantBusy) > 1e-9 {
		t.Errorf("busy %g, want %g", e.Busy, wantBusy)
	}
	wantIdle := (3 - 0.5) * 0.95
	if math.Abs(e.IdleShort+e.IdleLong-wantIdle) > 1e-9 {
		t.Errorf("idle %g, want %g", e.IdleShort+e.IdleLong, wantIdle)
	}
}

func TestMachineShutdownCycle(t *testing.T) {
	p := FujitsuMHF2043AT()
	m := newTestMachine(t)
	if err := m.Shutdown(trace.Second); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateShuttingDown {
		t.Fatalf("state %v after shutdown", m.State())
	}
	// An access during standby spins the disk back up: completion is
	// delayed by the spin-up time.
	done, err := m.ServeIO(10*trace.Second, 100*trace.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	wantDone := 10*trace.Second + p.SpinUpTime + 100*trace.Millisecond
	if done != wantDone {
		t.Errorf("completion %v, want %v", done, wantDone)
	}
	if m.Cycles() != 1 {
		t.Errorf("cycles = %d", m.Cycles())
	}
	e := m.Energy()
	if math.Abs(e.PowerCycle-p.CycleEnergy()) > 1e-9 {
		t.Errorf("power cycle energy %g, want %g", e.PowerCycle, p.CycleEnergy())
	}
}

func TestMachineShutdownWhileBusyIgnored(t *testing.T) {
	m := newTestMachine(t)
	// Shut down, then request again mid-transition: the second is a no-op.
	if err := m.Shutdown(trace.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(trace.Second + 100*trace.Millisecond); err != nil {
		t.Fatal(err)
	}
	if m.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1", m.Cycles())
	}
}

func TestMachineAccessDuringShutdownTransition(t *testing.T) {
	p := FujitsuMHF2043AT()
	m := newTestMachine(t)
	if err := m.Shutdown(0); err != nil {
		t.Fatal(err)
	}
	// Arrives halfway through the shutdown transition: the disk must
	// finish spinning down, then spin up.
	done, err := m.ServeIO(300*trace.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := p.ShutdownTime + p.SpinUpTime
	if done != want {
		t.Errorf("completion %v, want %v", done, want)
	}
}

func TestMachineTimeMonotonicity(t *testing.T) {
	m := newTestMachine(t)
	if _, err := m.ServeIO(5*trace.Second, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ServeIO(trace.Second, 0); err == nil {
		t.Fatal("time reversal accepted")
	}
	if _, err := m.ServeIO(6*trace.Second, -trace.Second); err == nil {
		t.Fatal("negative service accepted")
	}
}

// TestMachineMatchesAnalytic drives the machine over a random access/idle
// schedule and cross-checks total energy against an independently computed
// analytic sum.
func TestMachineMatchesAnalytic(t *testing.T) {
	p := FujitsuMHF2043AT()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, _ := NewMachine(p)
		now := trace.Time(0)
		var analytic float64
		cycles := 0
		for i := 0; i < 30; i++ {
			gap := trace.FromSeconds(10 + 40*r.Float64())
			shutdownAt := trace.Time(-1)
			if r.Intn(2) == 0 {
				shutdownAt = now + trace.FromSeconds(1+2*r.Float64())
			}
			next := now + gap
			if shutdownAt >= 0 {
				if err := m.Shutdown(shutdownAt); err != nil {
					return false
				}
				cycles++
				analytic += (shutdownAt - now).Seconds() * p.IdlePower
				analytic += p.CycleEnergy()
				// Standby power runs from the shutdown command through the
				// spin-up that the next access triggers.
				analytic += (next - shutdownAt + p.SpinUpTime).Seconds() * p.StandbyPower
				// The service completes after spin-up; the machine then
				// idles until we account the next interval from `done`.
			} else {
				analytic += gap.Seconds() * p.IdlePower
			}
			done, err := m.ServeIO(next, 0)
			if err != nil {
				return false
			}
			now = done
		}
		e, err := m.Finish(now)
		if err != nil {
			return false
		}
		if m.Cycles() != cycles {
			return false
		}
		return math.Abs(e.Total()-analytic) < 1e-6*math.Max(1, analytic)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMachineEnergyNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, _ := NewMachine(FujitsuMHF2043AT())
		now := trace.Time(0)
		for i := 0; i < 50; i++ {
			now += trace.Time(r.Int63n(int64(20 * trace.Second)))
			switch r.Intn(3) {
			case 0:
				if err := m.Shutdown(now); err != nil {
					return false
				}
			default:
				done, err := m.ServeIO(now, trace.Time(r.Int63n(int64(trace.Second))))
				if err != nil {
					return false
				}
				now = done
			}
			e := m.Energy()
			if e.Busy < 0 || e.IdleShort < 0 || e.IdleLong < 0 || e.PowerCycle < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

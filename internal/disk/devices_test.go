package disk

import (
	"testing"

	"pcapsim/internal/trace"
)

// TestCatalogValid checks every profile in the fleet catalog is a
// physically sensible parameter set with a derived (not asserted)
// breakeven: Validate passes, the breakeven equals ComputeBreakeven, and
// the breakeven is never below the transition cycle time.
func TestCatalogValid(t *testing.T) {
	for _, p := range Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if p.Name == FujitsuMHF2043AT().Name {
				// The paper's drive uses Table 2's published breakeven,
				// which is its own calibration.
				return
			}
			if got, want := p.Breakeven, p.ComputeBreakeven(); got != want {
				t.Errorf("Breakeven = %v, ComputeBreakeven() = %v", got, want)
			}
			if p.Breakeven < p.CycleTime() {
				t.Errorf("Breakeven %v below cycle time %v", p.Breakeven, p.CycleTime())
			}
		})
	}
}

// TestCatalogDistinct checks the catalog profiles are distinct by name
// and that the catalog is a strict superset of the evaluated Devices()
// set in the same leading order — the device-sweep experiment's rows must
// not move when the fleet catalog grows.
func TestCatalogDistinct(t *testing.T) {
	cat := Catalog()
	seen := make(map[string]bool, len(cat))
	for _, p := range cat {
		if seen[p.Name] {
			t.Errorf("duplicate catalog device %q", p.Name)
		}
		seen[p.Name] = true
	}
	dev := Devices()
	if len(cat) < len(dev)+3 {
		t.Fatalf("catalog has %d profiles, want at least %d", len(cat), len(dev)+3)
	}
	for i, p := range dev {
		if cat[i].Name != p.Name {
			t.Errorf("catalog[%d] = %q, want evaluated device %q", i, cat[i].Name, p.Name)
		}
	}
}

// TestCatalogBreakevenSpread checks the fleet catalog actually spans
// device classes: the spread of breakeven times across profiles is what
// makes a heterogeneous fleet exercise the predictors differently per
// machine.
func TestCatalogBreakevenSpread(t *testing.T) {
	lo, hi := trace.Time(0), trace.Time(0)
	for i, p := range Catalog() {
		if i == 0 || p.Breakeven < lo {
			lo = p.Breakeven
		}
		if p.Breakeven > hi {
			hi = p.Breakeven
		}
	}
	if hi < 10*lo {
		t.Errorf("breakeven spread too narrow: min %v, max %v (want ≥10x)", lo, hi)
	}
	if e := Enterprise10K(); e.Breakeven < trace.FromSeconds(15) {
		t.Errorf("enterprise breakeven %v implausibly low", e.Breakeven)
	}
	if a := AggressiveMobile(); a.Breakeven > trace.FromSeconds(5) {
		t.Errorf("aggressive-mobile breakeven %v implausibly high", a.Breakeven)
	}
	if a := AggressiveMobile(); a.LowPowerIdlePower <= 0 {
		t.Error("aggressive-mobile drive should expose a low-power idle state")
	}
}

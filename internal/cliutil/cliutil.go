// Package cliutil keeps the trace-handling commands (pcapsim, tracegen,
// traceinspect) word-for-word consistent: the -from/-to/-pid/-pcfrom/
// -pcto filter block is registered from one place, and errors about a
// missing, unreadable or malformed trace argument are phrased by one
// helper. A user who learns one command's flags and error shapes has
// learned them all.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"time"

	"pcapsim/internal/trace"
)

// TraceFormats spells the writable on-disk trace formats, as used in
// -format help text and unknown-format errors.
const TraceFormats = "binary, v2 or text"

// TraceFormatsAuto is TraceFormats plus the sniffing pseudo-format that
// read-side commands accept.
const TraceFormatsAuto = "binary, v2, text or auto"

// UnknownFormatError is the shared error for a -format value outside
// the accepted set (pass TraceFormats or TraceFormatsAuto as want).
func UnknownFormatError(format, want string) error {
	return fmt.Errorf("unknown trace format %q (want %s)", format, want)
}

// MissingTraceError is the shared error for a command invoked without
// its required trace-file argument.
func MissingTraceError(usage string) error {
	return fmt.Errorf("missing trace file argument\nusage: %s", usage)
}

// TraceFileError wraps an error reading or decoding the trace file at
// path so every command reports it as "trace file <path>: <cause>". A
// *fs.PathError for the same path is unwrapped first — the path would
// otherwise appear twice.
func TraceFileError(path string, err error) error {
	var pe *fs.PathError
	if errors.As(err, &pe) && pe.Path == path {
		err = pe.Err
	}
	return fmt.Errorf("trace file %s: %w", path, err)
}

// OpenTrace opens the trace file argument read-only, phrasing failures
// through TraceFileError.
func OpenTrace(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, TraceFileError(path, err)
	}
	return f, nil
}

// PredicateFlags is the shared event-filter flag block. Register it,
// parse flags, then assemble the trace.Predicate with Predicate().
type PredicateFlags struct {
	From, To     time.Duration
	Pid          int
	PCFrom, PCTo string
}

// Register installs -from/-to/-pid/-pcfrom/-pcto on the default flag
// set. prefix qualifies each help string ("with -replay: " for pcapsim,
// "" for traceinspect) without changing the shared wording after it.
func (p *PredicateFlags) Register(prefix string) {
	flag.DurationVar(&p.From, "from", 0, prefix+"keep only events at or after this trace time")
	flag.DurationVar(&p.To, "to", 0, prefix+"keep only events at or before this trace time (0 = unbounded)")
	flag.IntVar(&p.Pid, "pid", 0, prefix+"keep only events of this process id")
	flag.StringVar(&p.PCFrom, "pcfrom", "", prefix+"keep only I/O events with program counter >= this value (hex with 0x)")
	flag.StringVar(&p.PCTo, "pcto", "", prefix+"keep only I/O events with program counter <= this value (hex with 0x)")
}

// Predicate assembles the filter, parsing the program-counter bounds
// (decimal or 0x-hex).
func (p *PredicateFlags) Predicate() (trace.Predicate, error) {
	pred := trace.Predicate{
		From: trace.FromSeconds(p.From.Seconds()),
		To:   trace.FromSeconds(p.To.Seconds()),
		Pid:  trace.PID(p.Pid),
	}
	var err error
	if pred.PCFrom, err = parsePC(p.PCFrom, "-pcfrom"); err != nil {
		return trace.Predicate{}, err
	}
	if pred.PCTo, err = parsePC(p.PCTo, "-pcto"); err != nil {
		return trace.Predicate{}, err
	}
	return pred, nil
}

// parsePC parses a program-counter flag value (decimal or 0x-hex).
func parsePC(s, flagName string) (trace.PC, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("%s: bad program counter %q: %w", flagName, s, err)
	}
	return trace.PC(v), nil
}

package sim

import (
	"fmt"

	"pcapsim/internal/predictor"
)

// Policy describes how a shutdown policy is instantiated over the multiple
// executions of an application.
type Policy struct {
	// Name labels the policy in results ("TP", "PCAP", "PCAPa", …).
	Name string
	// NewFactory returns a fresh application-wide predictor factory.
	NewFactory func() predictor.Factory
	// Reuse keeps one factory — and therefore its learned state, such as
	// PCAP's prediction table — alive across executions, modelling the
	// paper's prediction-table reuse. When false, a fresh factory is
	// created for every execution (the paper's PCAPa / LTa).
	Reuse bool
	// RoundTrip, if non-nil and Reuse is set, is invoked between
	// executions to serialize and restore the factory — exercising the
	// initialization-file persistence path end to end. It returns the
	// factory to use for the next execution.
	RoundTrip func(f predictor.Factory) (predictor.Factory, error)
	// GlobalOracle marks the ideal predictor: the runner bypasses the
	// per-process combiner and shuts down exactly at the start of every
	// long global idle period.
	GlobalOracle bool
}

// Validate checks the policy is well-formed.
func (p Policy) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("sim: policy needs a name")
	}
	if p.NewFactory == nil && !p.GlobalOracle {
		return fmt.Errorf("sim: policy %s needs a factory", p.Name)
	}
	if p.RoundTrip != nil && !p.Reuse {
		return fmt.Errorf("sim: policy %s sets RoundTrip without Reuse", p.Name)
	}
	return nil
}

// SizedFactory is implemented by factories that can report the size of
// their learned state in entries (PCAP table entries, LT tree nodes);
// used for the paper's Table 3.
type SizedFactory interface {
	StateSize() int
}

package experiments

import (
	"fmt"
	"strings"
)

// RenderBars renders an accuracy figure as horizontal stacked bars in the
// visual idiom of the paper's Figures 6/7/9/10: per application, one bar
// per policy composed of hit (█ primary, ▓ backup), not-predicted (░) and
// misses (× primary, ÷ backup) stacked beyond the 100% mark, with a
// column marker at 100%.
func (f *AccuracyFigure) RenderBars() string {
	const scale = 2.0 // percent per character cell
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", f.Title)
	fmt.Fprintf(&b, "legend: █ hit(primary)  ▓ hit(backup)  ░ not predicted  × miss(primary)  ÷ miss(backup)  | = 100%%\n\n")

	lastApp := ""
	for _, c := range f.Cells {
		if c.App != lastApp {
			if lastApp != "" {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "%s (%d long idle periods)\n", c.App, c.Counts.LongPeriods)
			lastApp = c.App
		}
		fr := c.Frac
		cells := func(x float64) int { return int(100*x/scale + 0.5) }
		var sb strings.Builder
		sb.WriteString(strings.Repeat("█", cells(fr.HitPrimary)))
		sb.WriteString(strings.Repeat("▓", cells(fr.HitBackup)))
		sb.WriteString(strings.Repeat("░", cells(fr.NotPredicted)))
		// Pad or truncate so the 100% marker aligns.
		line := sb.String()
		runes := []rune(line)
		full := int(100 / scale)
		if len(runes) > full {
			runes = runes[:full]
		}
		for len(runes) < full {
			runes = append(runes, ' ')
		}
		miss := strings.Repeat("×", cells(fr.MissPrimary)) + strings.Repeat("÷", cells(fr.MissBackup))
		fmt.Fprintf(&b, "  %-7s %s|%s  hit %5.1f%%  miss %5.1f%%\n",
			c.Policy, string(runes), miss, 100*fr.Hit, 100*fr.Miss)
	}
	return b.String()
}

package sim

import "fmt"

// Counts accumulates shutdown-prediction outcomes over idle periods.
//
// Classification follows the paper's accounting: fractions are normalized
// to the number of *long* idle periods (those at least breakeven long —
// the shutdown opportunities of Table 1). A long period yields exactly one
// of Hit (shutdown whose device-off time reached breakeven), Miss
// (energy-negative shutdown) or NotPredicted; shutdowns issued inside
// short periods add further Misses on top, which is why the paper's bars
// can exceed 100%.
type Counts struct {
	// LongPeriods is the number of idle periods ≥ breakeven.
	LongPeriods int
	// ShortPeriods is the number of idle periods < breakeven (informational).
	ShortPeriods int
	// HitPrimary / HitBackup split correct shutdowns by deciding mechanism.
	HitPrimary int
	HitBackup  int
	// MissPrimary / MissBackup split mispredicted (energy-negative)
	// shutdowns by deciding mechanism.
	MissPrimary int
	MissBackup  int
	// NotPredicted is long periods with no shutdown at all.
	NotPredicted int
}

// Hits returns all correct shutdowns.
func (c Counts) Hits() int { return c.HitPrimary + c.HitBackup }

// Misses returns all mispredicted shutdowns.
func (c Counts) Misses() int { return c.MissPrimary + c.MissBackup }

// Shutdowns returns the total number of issued shutdowns.
func (c Counts) Shutdowns() int { return c.Hits() + c.Misses() }

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.LongPeriods += o.LongPeriods
	c.ShortPeriods += o.ShortPeriods
	c.HitPrimary += o.HitPrimary
	c.HitBackup += o.HitBackup
	c.MissPrimary += o.MissPrimary
	c.MissBackup += o.MissBackup
	c.NotPredicted += o.NotPredicted
}

// Fractions is Counts normalized to the number of long idle periods,
// matching the y-axes of the paper's Figures 6, 7, 9 and 10.
type Fractions struct {
	Hit          float64
	HitPrimary   float64
	HitBackup    float64
	Miss         float64
	MissPrimary  float64
	MissBackup   float64
	NotPredicted float64
}

// Fractions normalizes the counts. With zero long periods all fractions
// are zero.
func (c Counts) Fractions() Fractions {
	if c.LongPeriods == 0 {
		return Fractions{}
	}
	n := float64(c.LongPeriods)
	return Fractions{
		Hit:          float64(c.Hits()) / n,
		HitPrimary:   float64(c.HitPrimary) / n,
		HitBackup:    float64(c.HitBackup) / n,
		Miss:         float64(c.Misses()) / n,
		MissPrimary:  float64(c.MissPrimary) / n,
		MissBackup:   float64(c.MissBackup) / n,
		NotPredicted: float64(c.NotPredicted) / n,
	}
}

// String renders the headline fractions compactly.
func (f Fractions) String() string {
	return fmt.Sprintf("hit=%.1f%% miss=%.1f%% notpred=%.1f%%",
		100*f.Hit, 100*f.Miss, 100*f.NotPredicted)
}

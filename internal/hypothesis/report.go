package hypothesis

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Render formats the result as a deterministic text report: same result,
// same bytes — the report is diffable and goldenable like every other
// renderer in this repo.
func Render(res *Result) string {
	var b strings.Builder
	spec := res.Spec
	fmt.Fprintf(&b, "Hypothesis: %s\n", spec.Name)
	fmt.Fprintf(&b, "  %s\n", spec.Hypothesis)
	device := spec.Device
	if device == "" {
		device = "Fujitsu MHF 2043AT (paper)"
	}
	fmt.Fprintf(&b, "App: %s  Candidate: %s  Baseline: %s  Seed: %d  Scale: %d\n",
		spec.App, spec.Candidate, spec.Baseline, spec.seed(), spec.scale())
	fmt.Fprintf(&b, "Device: %s\n", device)
	fmt.Fprintf(&b, "Run: %d executions, %d disk accesses, %d decisions\n\n",
		res.Candidate.Executions, res.Candidate.DiskAccesses, res.Decisions)

	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "Metric\tValue\n")
	for _, m := range res.Metrics {
		fmt.Fprintf(tw, "%s\t%.4f\n", m.Name, m.Value)
	}
	tw.Flush()
	b.WriteString("\n")

	fmt.Fprintf(tw, "Criterion\tActual\tResult\n")
	for _, c := range res.Criteria {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		want := fmt.Sprintf("%s %s %g", c.Metric, c.Op, c.Value)
		if c.Tolerance > 0 {
			want += fmt.Sprintf(" ±%g", c.Tolerance)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%s\n", want, c.Actual, verdict)
	}
	tw.Flush()
	b.WriteString("\n")

	fmt.Fprintf(&b, "Decision attribution (top %d by energy saved if flipped):\n", len(res.Attribution))
	fmt.Fprintf(tw, "Rank\tDecision\tExec\tPid\tPC\tStart\tIdle\tMade\tFlip ΔE (J)\tFlip Δwait (s)\n")
	for i, rec := range res.Attribution {
		made := "spin"
		if rec.Shutdown() {
			made = "shutdown"
		}
		fmt.Fprintf(tw, "%d\t#%d\t%d\t%d\t0x%x\t%s\t%s\t%s\t%+.4f\t%+.4f\n",
			i+1, rec.Index, rec.Exec, rec.Pid, uint32(rec.PC),
			rec.Start, rec.ActualIdle(), made, rec.FlipDelta, rec.FlipWait.Seconds())
	}
	tw.Flush()

	if cf := res.Counterfactual; cf != nil {
		b.WriteString("\n")
		fmt.Fprintf(&b, "Counterfactual: decision #%d flipped and replayed\n", cf.Record.Index)
		fmt.Fprintf(tw, "\tPredicted\tMeasured\n")
		fmt.Fprintf(tw, "Energy ΔJ\t%+.6f\t%+.6f\n", cf.PredictedEnergyDelta, cf.MeasuredEnergyDelta)
		fmt.Fprintf(tw, "Wait Δs\t%+.6f\t%+.6f\n", cf.PredictedWaitDelta.Seconds(), cf.MeasuredWaitDelta.Seconds())
		tw.Flush()
		match := "attribution matches replay"
		if !cf.Matches {
			match = "ATTRIBUTION MISMATCH"
		}
		fmt.Fprintf(&b, "Replay energy: %.4f J (%s)\n", cf.ReplayEnergyJ, match)
	}

	verdict := "SUPPORTED"
	if !res.Supported {
		verdict = "REFUTED"
	}
	fmt.Fprintf(&b, "\nVERDICT: %s — %q\n", verdict, spec.Hypothesis)
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
)

// textTable renders aligned plain-text tables for the CLI and
// EXPERIMENTS.md.
type textTable struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *textTable { return &textTable{header: header} }

func (t *textTable) Row(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

func (t *textTable) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Package is one parsed and type-checked module package.
type Package struct {
	// Path is the full import path (module path + "/" + RelPath).
	Path string
	// RelPath is the module-root-relative path ("internal/sim",
	// "cmd/pcaplint"); analyzers scope themselves with it.
	RelPath string
	// Dir is the absolute directory.
	Dir string
	// Files are the package's non-test files, parsed with comments.
	Files []*ast.File
	// Types and Info hold the go/types results.
	Types *types.Package
	Info  *types.Info
	// cfgs memoizes Pass.CFG per function body. Analyzers for one
	// package run sequentially on one goroutine, so no lock.
	cfgs map[*ast.BlockStmt]*FuncCFG
}

// A Module is the loaded repository: every non-test package, parsed and
// type-checked in dependency order.
type Module struct {
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	Fset *token.FileSet
	// Packages is in dependency order: a package appears after
	// everything it imports from the module.
	Packages []*Package
	// ownerTransfer collects //pcaplint:owner-transfer functions across
	// the whole module, so annotations work cross-package.
	ownerTransfer map[types.Object]bool
}

// IsOwnerTransfer reports whether obj is a function annotated
// //pcaplint:owner-transfer.
func (m *Module) IsOwnerTransfer(obj types.Object) bool {
	return obj != nil && m.ownerTransfer[obj]
}

// LoadModule parses and type-checks every non-test package under root.
// Directories named testdata or vendor, and names starting with "." or
// "_", are skipped, matching the go tool. Stdlib imports are resolved by
// the source importer shipped with the toolchain, so the loader needs no
// precompiled export data and no third-party dependencies.
func LoadModule(root string) (*Module, error) {
	return LoadModuleWorkers(root, runtime.GOMAXPROCS(0))
}

// LoadModuleWorkers is LoadModule with an explicit type-check worker
// count. Parsing is sequential (it shares one FileSet and is cheap);
// type-checking is scheduled over the package DAG so independent
// packages check concurrently. The source importer the stdlib chain
// rests on is NOT safe for concurrent use, so every Import — and the
// module-result map it consults — is serialized behind one mutex;
// parallelism comes from the checkers' own work, which dominates once
// the stdlib is warm. workers < 2 falls back to the plain sequential
// loop. The resulting Module is identical either way: packages are
// collected in dependency order after all checks complete.
func LoadModuleWorkers(root string, workers int) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	mod := &Module{
		Root:          root,
		Path:          modPath,
		Fset:          fset,
		ownerTransfer: make(map[types.Object]bool),
	}

	byPath := make(map[string]*Package)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + rel
		}
		pkg := byPath[importPath]
		if pkg == nil {
			pkg = &Package{Path: importPath, RelPath: rel, Dir: dir}
			byPath[importPath] = pkg
		}
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if err != nil {
		return nil, err
	}

	order, err := sortPackages(byPath, modPath)
	if err != nil {
		return nil, err
	}

	imp := &lockedImporter{chain: chainImporter{
		module: make(map[string]*types.Package),
		std:    importer.ForCompiler(fset, "source", nil),
	}}
	if workers > 1 && len(order) > 1 {
		err = checkParallel(fset, order, byPath, modPath, imp, workers)
	} else {
		err = checkSequential(fset, order, imp)
	}
	if err != nil {
		return nil, err
	}
	// Single-threaded epilogue: the Module's package order and the
	// owner-transfer set are assembled identically at any worker count.
	for _, pkg := range order {
		for obj := range ownerTransferFuncs(pkg.Info, pkg.Files) {
			mod.ownerTransfer[obj] = true
		}
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// checkOne type-checks a single package, publishing the result to the
// importer's module map for its dependents.
func checkOne(fset *token.FileSet, pkg *Package, imp *lockedImporter) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	imp.publish(pkg.Path, tpkg)
	return nil
}

func checkSequential(fset *token.FileSet, order []*Package, imp *lockedImporter) error {
	for _, pkg := range order {
		if err := checkOne(fset, pkg, imp); err != nil {
			return err
		}
	}
	return nil
}

// checkParallel schedules type-checking over the module-internal import
// DAG: a package becomes ready when its last in-module dependency
// completes. A failed package poisons its dependents — they complete
// without checking — and the topologically first failure is returned,
// matching the error the sequential loop would have produced.
func checkParallel(fset *token.FileSet, order []*Package, byPath map[string]*Package, modPath string, imp *lockedImporter, workers int) error {
	deps := make(map[string][]string, len(order))
	dependents := make(map[string][]string, len(order))
	remaining := make(map[string]int, len(order))
	for _, pkg := range order {
		ds := moduleDeps(pkg, byPath, modPath)
		deps[pkg.Path] = ds
		remaining[pkg.Path] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], pkg.Path)
		}
	}

	var (
		mu     sync.Mutex
		failed = make(map[string]bool)  // own or inherited failure
		errs   = make(map[string]error) // own type-check errors only
		ready  = make(chan *Package, len(order))
		done   = make(chan struct{}, len(order))
	)
	for _, pkg := range order {
		if remaining[pkg.Path] == 0 {
			ready <- pkg
		}
	}
	finish := func(pkg *Package, err error) {
		mu.Lock()
		if err != nil {
			failed[pkg.Path] = true
			errs[pkg.Path] = err
		}
		for _, d := range dependents[pkg.Path] {
			remaining[d]--
			if remaining[d] == 0 {
				ready <- byPath[d]
			}
		}
		mu.Unlock()
		done <- struct{}{}
	}
	if workers > len(order) {
		workers = len(order)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pkg := range ready {
				mu.Lock()
				poisoned := false
				for _, d := range deps[pkg.Path] {
					if failed[d] {
						poisoned = true
						break
					}
				}
				if poisoned {
					failed[pkg.Path] = true
				}
				mu.Unlock()
				if poisoned {
					finish(pkg, nil)
					continue
				}
				finish(pkg, checkOne(fset, pkg, imp))
			}
		}()
	}
	for range order {
		<-done
	}
	close(ready)
	wg.Wait()
	// Deterministic error selection: the first failure in topo order is
	// what the sequential loop would have hit.
	for _, pkg := range order {
		if err := errs[pkg.Path]; err != nil {
			return err
		}
	}
	return nil
}

// moduleDeps lists pkg's module-internal imports that exist in the
// module, sorted.
func moduleDeps(pkg *Package, byPath map[string]*Package, modPath string) []string {
	set := make(map[string]bool)
	for _, file := range pkg.Files {
		for _, spec := range file.Imports {
			dep, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if (dep == modPath || strings.HasPrefix(dep, modPath+"/")) && byPath[dep] != nil {
				set[dep] = true
			}
		}
	}
	return sortedNames(set)
}

// sortPackages orders packages so every module-internal import precedes
// its importer, failing on import cycles.
func sortPackages(byPath map[string]*Package, modPath string) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(byPath))
	var order []*Package
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s -> %s", strings.Join(stack, " -> "), path)
		}
		state[path] = visiting
		pkg := byPath[path]
		deps := make(map[string]bool)
		for _, file := range pkg.Files {
			for _, spec := range file.Imports {
				dep, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if dep == modPath || strings.HasPrefix(dep, modPath+"/") {
					if byPath[dep] == nil {
						return fmt.Errorf("lint: %s imports %s, which has no Go files in the module", path, dep)
					}
					deps[dep] = true
				}
			}
		}
		for _, dep := range sortedNames(deps) {
			if err := visit(dep, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves module-internal imports from the packages the
// loader has already checked and everything else (the standard library)
// through the toolchain's source importer.
type chainImporter struct {
	module map[string]*types.Package
	std    types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := c.module[path]; ok {
		return pkg, nil
	}
	return c.std.Import(path)
}

// lockedImporter serializes every Import behind one mutex: the source
// importer underneath keeps unguarded internal caches (and parses into
// the shared FileSet), so concurrent checkers must take turns through
// it. The same mutex guards the module-result map.
type lockedImporter struct {
	mu    sync.Mutex
	chain chainImporter
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chain.Import(path)
}

// publish records a completed module package for later imports.
func (l *lockedImporter) publish(path string, pkg *types.Package) {
	l.mu.Lock()
	l.chain.module[path] = pkg
	l.mu.Unlock()
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", path)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

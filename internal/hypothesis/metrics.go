package hypothesis

import (
	"math"

	"pcapsim/internal/sim"
)

// The metric registry: every value a criterion can test, computed from
// the candidate and baseline runs. A sorted slice (not a map) so every
// iteration — validation messages, report rendering — is deterministic.

type metricDef struct {
	name string
	doc  string
	eval func(cand, base *sim.AppResult) float64
}

// pct returns part/whole as a percentage, 0 for an empty whole.
func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}

// metricDefs is kept sorted by name.
var metricDefs = []metricDef{
	{"baseline_energy_j", "baseline total energy (J)",
		func(cand, base *sim.AppResult) float64 { return base.Energy.Total() }},
	{"baseline_wait_s", "baseline total spin-up wait (s)",
		func(cand, base *sim.AppResult) float64 { return base.WaitTime.Seconds() }},
	{"candidate_energy_j", "candidate total energy (J)",
		func(cand, base *sim.AppResult) float64 { return cand.Energy.Total() }},
	{"candidate_wait_s", "candidate total spin-up wait (s)",
		func(cand, base *sim.AppResult) float64 { return cand.WaitTime.Seconds() }},
	{"hit_pct", "candidate correct shutdowns per long idle period (%)",
		func(cand, base *sim.AppResult) float64 { return pct(cand.Global.Hits(), cand.Global.LongPeriods) }},
	{"miss_pct", "candidate mispredicted shutdowns per long idle period (%)",
		func(cand, base *sim.AppResult) float64 { return pct(cand.Global.Misses(), cand.Global.LongPeriods) }},
	{"notpred_pct", "candidate unpredicted long idle periods (%)",
		func(cand, base *sim.AppResult) float64 { return pct(cand.Global.NotPredicted, cand.Global.LongPeriods) }},
	{"savings_pct", "candidate energy savings vs baseline (%)",
		func(cand, base *sim.AppResult) float64 {
			total := base.Energy.Total()
			if total == 0 {
				return 0
			}
			return (1 - cand.Energy.Total()/total) * 100
		}},
	{"shutdowns", "candidate shutdowns performed",
		func(cand, base *sim.AppResult) float64 { return float64(cand.Cycles) }},
	{"wakeups", "candidate accesses that waited for a spin-up",
		func(cand, base *sim.AppResult) float64 { return float64(cand.Wakeups) }},
}

// MetricNames returns the metric registry's names in sorted order.
func MetricNames() []string {
	names := make([]string, len(metricDefs))
	for i, m := range metricDefs {
		names[i] = m.name
	}
	return names
}

// knownMetric reports whether name is in the registry.
func knownMetric(name string) bool {
	for _, m := range metricDefs {
		if m.name == name {
			return true
		}
	}
	return false
}

// Metric is one computed metric value.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// computeMetrics evaluates the whole registry, in registry (sorted)
// order.
func computeMetrics(cand, base *sim.AppResult) []Metric {
	out := make([]Metric, len(metricDefs))
	for i, m := range metricDefs {
		out[i] = Metric{Name: m.name, Value: m.eval(cand, base)}
	}
	return out
}

// metricValue looks a computed metric up by name.
func metricValue(metrics []Metric, name string) (float64, bool) {
	for _, m := range metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// CriterionResult is one evaluated success criterion.
type CriterionResult struct {
	Criterion
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

// evaluate applies the criterion's operator.
func (c Criterion) evaluate(actual float64) bool {
	switch c.Op {
	case ">=":
		return actual >= c.Value
	case ">":
		return actual > c.Value
	case "<=":
		return actual <= c.Value
	case "<":
		return actual < c.Value
	case "==":
		return math.Abs(actual-c.Value) <= c.Tolerance
	case "!=":
		return math.Abs(actual-c.Value) > c.Tolerance
	default:
		return false
	}
}

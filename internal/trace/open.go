package trace

import (
	"io"
	"os"
)

// Format sniffing: every tool accepts v1 binary, v2 columnar and text
// traces interchangeably by looking at the leading magic bytes.

// NewSniffedSource returns a streaming Source over r, selecting the
// decoder from the leading four bytes: "PCTR" is the v1 binary format,
// "PCT2" the v2 columnar format, anything else the text format. The
// reader is rewound to the start before the decoder is built.
func NewSniffedSource(r io.ReadSeeker) (Source, error) {
	var magic [4]byte
	n, err := io.ReadFull(r, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	switch {
	case n == len(magic) && string(magic[:]) == binaryMagic:
		return NewDecoder(r), nil
	case n == len(magic) && string(magic[:]) == blockFileMagic:
		return NewBlockSource(r), nil
	default:
		return NewTextDecoder(r), nil
	}
}

// FileSource is a Source over an opened trace file; Close releases the
// file handle.
type FileSource struct {
	Source
	f *os.File
}

// Close closes the underlying file.
func (fs *FileSource) Close() error { return fs.f.Close() }

// Name returns the path the source was opened from.
func (fs *FileSource) Name() string { return fs.f.Name() }

// OpenTraceFile opens path and returns a streaming, resettable Source
// over it, sniffing the format (v1 binary, v2 columnar or text) from the
// file's first bytes. The caller owns the Close.
func OpenTraceFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := NewSniffedSource(f)
	if err != nil {
		// The sniff failure is the error worth reporting; nothing was
		// written, so the close cannot lose data.
		_ = f.Close()
		return nil, err
	}
	return &FileSource{Source: src, f: f}, nil
}

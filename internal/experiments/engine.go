package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"pcapsim/internal/core"
	"pcapsim/internal/disk"
	"pcapsim/internal/sim"
	"pcapsim/internal/workload"
)

// The parallel experiment engine.
//
// Every result in the suite is memoized behind a singleflight cache keyed
// by a deterministic name, and every experiment decomposes into Tasks that
// do nothing but warm those caches. RunMatrix fans the tasks across a
// worker pool; the renderers then read exclusively from warm caches in a
// fixed serial order. Because each task is a pure function of (seed,
// config) and tasks share no mutable state, the rendered output is
// byte-identical at any worker count — same seed, same bytes, whether the
// suite ran serially or on every core.

// memo is a singleflight-style result cache: the first caller of a key
// computes it, concurrent callers of the same key block on that
// computation, and every caller observes the same value and error.
type memo struct {
	mu sync.Mutex
	m  map[string]*memoEntry
}

type memoEntry struct {
	once sync.Once
	val  any
	err  error
}

// do returns the memoized value for key, computing it with fn on first
// use. fn runs exactly once per key even under concurrent callers.
func (c *memo) do(key string, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*memoEntry)
	}
	e, ok := c.m[key]
	if !ok {
		e = &memoEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// Task is one memoizable unit of the evaluation matrix — typically one
// (application, policy) simulation cell, a trace generation, or one
// derived per-application experiment row.
type Task struct {
	// Name identifies the unit ("run/mozilla/PCAP", "traces/nedit", …).
	Name string
	run  func() error
}

// ExperimentNames returns every experiment in the canonical order the CLI
// renders them.
func ExperimentNames() []string {
	return []string{
		"table1", "table2", "table3",
		"fig6", "fig7", "fig8", "fig9", "fig10",
		"tpsweep", "multistate", "predictors", "devices", "prefetch",
	}
}

// taskList accumulates tasks, deduplicating by name so experiments that
// share cells (e.g. every figure's Base runs) enqueue them once.
type taskList struct {
	seen  map[string]bool
	tasks []Task
}

func (l *taskList) add(name string, run func() error) {
	if l.seen == nil {
		l.seen = make(map[string]bool)
	}
	if l.seen[name] {
		return
	}
	l.seen[name] = true
	l.tasks = append(l.tasks, Task{Name: name, run: run})
}

// addRun enqueues one simulation cell on suite target (the main suite or a
// per-device sub-suite, disambiguated by prefix).
func (l *taskList) addRun(prefix string, target *Suite, app *workload.App, pol sim.Policy) {
	l.add(prefix+"run/"+app.Name+"/"+pol.Name, func() error {
		_, err := target.Run(app, pol)
		return err
	})
}

// Tasks returns the full evaluation matrix: every cell of every
// experiment, deduplicated, in deterministic order.
func (s *Suite) Tasks() ([]Task, error) { return s.TasksFor(ExperimentNames()...) }

// TasksFor returns the cells needed by the named experiments. Trace
// generation tasks come first so a worker pool warms all six applications'
// traces concurrently before the simulation cells need them.
func (s *Suite) TasksFor(exps ...string) ([]Task, error) {
	known := make(map[string]bool)
	for _, e := range ExperimentNames() {
		known[e] = true
	}
	var l taskList
	needsTraces := false
	for _, e := range exps {
		if !known[e] {
			return nil, fmt.Errorf("experiments: unknown experiment %q", e)
		}
		if e != "table2" {
			needsTraces = true
		}
	}
	// In on-demand mode there is no pinned slice to warm — every run
	// streams its own regeneration — so the warm-up tasks are skipped.
	if needsTraces && !s.traces.OnDemand() {
		for _, app := range s.Apps() {
			app := app
			l.add("traces/"+app.Name, func() error {
				s.Traces(app)
				return nil
			})
		}
	}
	for _, e := range exps {
		if err := s.appendTasks(&l, e); err != nil {
			return nil, err
		}
	}
	return l.tasks, nil
}

// appendTasks enqueues one experiment's cells.
func (s *Suite) appendTasks(l *taskList, exp string) error {
	grid := func(pols []sim.Policy) {
		for _, app := range s.Apps() {
			for _, p := range pols {
				l.addRun("", s, app, p)
			}
		}
	}
	perApp := func(kind string, run func(app *workload.App) error) {
		for _, app := range s.Apps() {
			app := app
			l.add(kind+"/"+app.Name, func() error { return run(app) })
		}
	}
	switch exp {
	case "table1":
		grid([]sim.Policy{s.PolicyBase()})
	case "table2":
		// Pure configuration rendering: nothing to simulate.
	case "table3":
		grid(s.table3Policies())
	case "fig6", "fig7":
		grid(s.fig67Policies())
	case "fig8":
		grid(s.fig8Policies())
	case "fig9":
		grid(s.fig9Policies())
	case "fig10":
		grid(s.fig10Policies())
	case "tpsweep":
		pols := []sim.Policy{s.PolicyBase()}
		pols = append(pols, s.tpSweepPolicies()...)
		grid(pols)
	case "multistate":
		grid([]sim.Policy{s.PolicyBase(), s.PolicyPCAP(core.VariantBase)})
		perApp("multistate", func(app *workload.App) error {
			_, err := s.multiStateRow(app)
			return err
		})
	case "predictors":
		grid(append([]sim.Policy{s.PolicyBase()}, s.predictorPolicies()...))
	case "devices":
		for _, dev := range disk.Devices() {
			ds, err := s.deviceSuite(dev)
			if err != nil {
				return err
			}
			for _, app := range ds.Apps() {
				for _, p := range ds.devicePolicies() {
					l.addRun("dev/"+dev.Name+"/", ds, app, p)
				}
			}
		}
	case "prefetch":
		perApp("prefetch", func(app *workload.App) error {
			_, err := s.prefetchRow(app)
			return err
		})
	default:
		return fmt.Errorf("experiments: unknown experiment %q", exp)
	}
	return nil
}

// RunMatrix fans the evaluation matrix of the named experiments (all of
// them when none are given) across parallel workers, warming every
// memoized cell. parallel < 1 selects GOMAXPROCS. The subsequent
// renderers read the warm caches serially, so output is byte-identical to
// a fully serial run.
func (s *Suite) RunMatrix(parallel int, exps ...string) error {
	if len(exps) == 0 {
		exps = ExperimentNames()
	}
	tasks, err := s.TasksFor(exps...)
	if err != nil {
		return err
	}
	return RunTasks(tasks, parallel)
}

// RunTasks executes tasks on a pool of parallel workers and returns the
// first error in task order (deterministic regardless of which worker hit
// it first).
func RunTasks(tasks []Task, parallel int) error {
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(tasks) {
		parallel = len(tasks)
	}
	if parallel <= 1 {
		for _, t := range tasks {
			if err := t.run(); err != nil {
				return fmt.Errorf("experiments: task %s: %w", t.Name, err)
			}
		}
		return nil
	}
	errs := make([]error, len(tasks))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = tasks[i].run()
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("experiments: task %s: %w", tasks[i].Name, err)
		}
	}
	return nil
}

// RenderExperiment renders one named experiment as text. Accuracy figures
// render as stacked bars instead of tables when bars is set.
func (s *Suite) RenderExperiment(name string, bars bool) (string, error) {
	renderAcc := func(f *AccuracyFigure, err error) (string, error) {
		if err != nil {
			return "", err
		}
		if bars {
			return f.RenderBars(), nil
		}
		return f.Render(), nil
	}
	switch name {
	case "table1":
		return s.RenderTable1()
	case "table2":
		return s.RenderTable2(), nil
	case "table3":
		return s.RenderTable3()
	case "fig6":
		return renderAcc(s.Fig6())
	case "fig7":
		return renderAcc(s.Fig7())
	case "fig8":
		f, err := s.Fig8()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	case "fig9":
		return renderAcc(s.Fig9())
	case "fig10":
		return renderAcc(s.Fig10())
	case "tpsweep":
		return s.RenderTPSweep()
	case "multistate":
		return s.RenderMultiState()
	case "predictors":
		return s.RenderPredictors()
	case "devices":
		return s.RenderDevices()
	case "prefetch":
		return s.RenderPrefetch()
	default:
		return "", fmt.Errorf("experiments: unknown experiment %q", name)
	}
}

// RenderAll renders the named experiments (all of them when none are
// given) in canonical order, separated by blank lines — the CLI's full
// output and the differential determinism test's unit of comparison.
func (s *Suite) RenderAll(bars bool, names ...string) (string, error) {
	if len(names) == 0 {
		names = ExperimentNames()
	}
	var b strings.Builder
	for _, name := range names {
		out, err := s.RenderExperiment(name, bars)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}

package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// seedDecisions builds a deterministic, varied record set: multiple
// executions, mixed flags and sources, negative deltas, zero and large
// times — every column shape the codec distinguishes.
func seedDecisions(n int) []DecisionRecord {
	recs := make([]DecisionRecord, n)
	// Small multiplicative congruential generator: deterministic variety
	// without math/rand.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 16
	}
	var t Time
	exec := int32(0)
	for i := range recs {
		if i > 0 && next()%17 == 0 {
			exec++
			t = 0 // per-execution clocks restart
		}
		gap := Time(next() % 5_000_000)
		start := t
		t += gap + 1
		rec := DecisionRecord{
			Index:  int64(i),
			Exec:   exec,
			Pid:    PID(100 + next()%5),
			PC:     PC(0x400000 + next()%1024*8),
			Source: uint8(next() % 3),
			Start:  start,
			End:    t,
			Wait:   Time(next() % 2_000_000),
		}
		if next()%2 == 0 {
			rec.Flags |= DecisionShutdown
			rec.At = start + Time(next()%uint64(gap+1))
		}
		if next()%11 == 0 {
			rec.Flags |= DecisionTerminal
		}
		if gap > 2_000_000 {
			rec.Flags |= DecisionLong
		}
		rec.EnergyJ = float64(next()%1000) / 7
		rec.EnergyDelta = rec.EnergyJ - float64(next()%1000)/3
		rec.FlipDelta = -rec.EnergyDelta / 2
		rec.FlipWait = Time(next()%1_000_000) - 500_000
		recs[i] = rec
	}
	return recs
}

func TestDecisionCodecRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 100, 5000} {
		recs := seedDecisions(n)
		var buf bytes.Buffer
		if err := WriteDecisions(&buf, recs); err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		got, err := ReadDecisions(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("n=%d: decoded records differ from originals", n)
		}
	}
}

func TestDecisionCodecSmallBlocks(t *testing.T) {
	recs := seedDecisions(1000)
	var buf bytes.Buffer
	enc, err := NewDecisionEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetBlockRecords(7); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		enc.Record(rec)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecisions(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("multi-block decode differs from originals")
	}
}

func TestDecisionCodecEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDecisions(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecisions(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream decoded %d records", len(got))
	}
}

func TestDecisionCodecRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("not a decision trace"),
		[]byte("PCD1PCDBgarbage"),
		[]byte("PCD2"),
	} {
		if _, err := ReadDecisions(bytes.NewReader(in)); err == nil {
			t.Errorf("decode of %q succeeded", in)
		} else if !errors.Is(err, ErrBadFormat) {
			t.Errorf("decode of %q: error %v is not ErrBadFormat", in, err)
		}
	}
}

// TestDecisionCodecTruncation: every proper prefix that cuts into a block
// must error; a prefix ending exactly at a block boundary is a clean EOF.
func TestDecisionCodecTruncation(t *testing.T) {
	recs := seedDecisions(64)
	var buf bytes.Buffer
	enc, err := NewDecisionEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetBlockRecords(16); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		enc.Record(rec)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		got, err := ReadDecisions(bytes.NewReader(data[:cut]))
		if err != nil {
			continue
		}
		// A clean decode of a prefix must have stopped at a block
		// boundary: record count is a multiple of the block size.
		if len(got)%16 != 0 || len(got) >= len(recs) {
			t.Fatalf("prefix of %d bytes decoded cleanly to %d records", cut, len(got))
		}
	}
}

// TestDecisionCodecBitFlips mirrors the v2 block contract: flipping any
// single bit of a valid encoding must surface as a decode error — the
// magic check or a CRC mismatch — never as silently different records.
func TestDecisionCodecBitFlips(t *testing.T) {
	recs := seedDecisions(48)
	var buf bytes.Buffer
	enc, err := NewDecisionEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetBlockRecords(16); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		enc.Record(rec)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 0; i < len(data)*8; i++ {
		mut := append([]byte(nil), data...)
		mut[i/8] ^= 1 << (i % 8)
		got, err := ReadDecisions(bytes.NewReader(mut))
		if err == nil && reflect.DeepEqual(got, recs) {
			t.Fatalf("bit flip at %d decoded cleanly to the original records", i)
		}
		if err == nil {
			t.Fatalf("bit flip at %d decoded cleanly (%d records)", i, len(got))
		}
	}
}

func TestDecisionLog(t *testing.T) {
	var log DecisionLog
	for _, rec := range seedDecisions(10) {
		log.Record(rec)
	}
	if len(log.Records) != 10 {
		t.Fatalf("log holds %d records, want 10", len(log.Records))
	}
	log.Reset()
	if len(log.Records) != 0 || cap(log.Records) < 10 {
		t.Fatal("Reset must truncate keeping capacity")
	}
}

func TestDecisionRecordFlags(t *testing.T) {
	rec := DecisionRecord{Flags: DecisionShutdown | DecisionLong, Start: 10, End: 40}
	if !rec.Shutdown() || !rec.Long() || rec.Terminal() || rec.Flipped() {
		t.Fatal("flag accessors disagree with bits")
	}
	if rec.ActualIdle() != 30 {
		t.Fatalf("ActualIdle = %v, want 30", rec.ActualIdle())
	}
}

// TestDecisionEncoderSteadyStateAllocs: once the block ring and column
// buffers reach their high-water marks, recording must not allocate.
func TestDecisionEncoderSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; the non-race pass enforces the count")
	}
	recs := seedDecisions(256)
	enc, err := NewDecisionEncoder(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetBlockRecords(64); err != nil {
		t.Fatal(err)
	}
	write := func() {
		for _, rec := range recs {
			enc.Record(rec)
		}
	}
	write() // warmup: ring and columns reach their high-water marks
	avg := testing.AllocsPerRun(20, write)
	if avg > 0.5 {
		t.Fatalf("steady-state recording allocates %.2f allocs per pass, want 0", avg)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
}
